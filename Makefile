GO ?= go

.PHONY: ci build vet test test-short race fuzz bench

# ci is the gate every change must pass: compile everything, vet
# everything, run the full test suite, and run the short suite under the
# race detector (the build pipeline fans out per-method work since -j).
ci: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# test-short skips the full-scale soak tests.
test-short:
	$(GO) test -short ./...

# race runs the short suite under the race detector; the parallel
# per-method stages (compile, analysis, outline, verify) must stay clean.
race:
	$(GO) test -race -short ./...

# fuzz gives the serialization and lint fuzzers a short budget each.
fuzz:
	$(GO) test ./internal/oat -run xxx -fuzz FuzzUnmarshal -fuzztime 20s
	$(GO) test ./internal/oat -run xxx -fuzz FuzzUnmarshalLint -fuzztime 20s

# bench regenerates the paper's tables and figures.
bench:
	$(GO) test -bench=. -benchmem .
