GO ?= go

.PHONY: ci build vet lint test test-short race fuzz bench bench-obs bench-cache bench-smoke serve-smoke replay-smoke fleet-smoke bench-serve reoutline-smoke bench-reoutline

# ci is the gate every change must pass: compile everything, lint
# everything (vet always, staticcheck when installed), run the full test
# suite, run the short suite under the race detector (the build pipeline
# fans out per-method work since -j), smoke the observability benchmarks,
# smoke the serving daemon, replay the fixed-seed workload with its
# asserted served/rejected counts, smoke the multi-daemon fleet against a
# shared calibrocached, and smoke the post-hoc re-outlining pipeline.
ci: build lint test race bench-smoke serve-smoke replay-smoke fleet-smoke reoutline-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus staticcheck (pinned in scripts/lint.sh) when the
# staticcheck binary is on PATH; hermetic builders without it still get
# the vet pass.
lint:
	GO=$(GO) sh scripts/lint.sh

test:
	$(GO) test ./...

# test-short skips the full-scale soak tests.
test-short:
	$(GO) test -short ./...

# race runs the short suite under the race detector; the parallel
# per-method stages (compile, analysis, outline, verify) must stay
# clean, as must the fleet layer's concurrent surfaces (remote-tier
# breaker, cacheserver long-poll waiters, cross-daemon single-flight).
race:
	$(GO) test -race -short ./...

# fuzz gives the serialization, lint, call-graph, and remote-cache wire
# fuzzers a short budget each. FuzzRemoteFrame attacks the client half of
# the cache protocol (hostile server responses), FuzzRemoteRequest the
# server half (hostile client requests).
fuzz:
	$(GO) test ./internal/oat -run xxx -fuzz FuzzUnmarshal -fuzztime 20s
	$(GO) test ./internal/oat -run xxx -fuzz FuzzUnmarshalLint -fuzztime 20s
	$(GO) test ./internal/cache -run xxx -fuzz FuzzCacheEntry -fuzztime 20s
	$(GO) test ./internal/cache -run xxx -fuzz FuzzRemoteFrame -fuzztime 20s
	$(GO) test ./internal/cache/cacheserver -run xxx -fuzz FuzzRemoteRequest -fuzztime 20s
	$(GO) test ./internal/analysis -run xxx -fuzz FuzzCallGraph -fuzztime 20s
	$(GO) test ./internal/reoutline -run xxx -fuzz FuzzLift -fuzztime 20s

# bench regenerates the paper's tables and figures.
bench:
	$(GO) test -bench=. -benchmem .

# bench-obs measures the parallel-build and telemetry benchmarks and
# appends a timestamped run (ns/op per case, extra metrics, host CPU
# count) to BENCH_obs.json via cmd/benchjson -append, so the scaling
# history across commits stays diffable instead of each run clobbering
# the last.
bench-obs:
	$(GO) test -run xxx -bench 'BenchmarkCompileWorkers|BenchmarkBuildTraced' -benchmem . \
		| $(GO) run ./cmd/benchjson -append -o BENCH_obs.json

# bench-cache measures the cold-vs-warm compilation cache benchmark on
# the largest app and archives the results (warm/cold ns/op plus the warm
# hit rate) in BENCH_cache.json via cmd/benchjson.
bench-cache:
	$(GO) test -run xxx -bench 'BenchmarkBuildColdVsWarm' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_cache.json

# bench-smoke is the ci guard for the same benchmarks: one iteration each
# at the -short scale, proving they still run — plus the -j scaling
# assertion (BenchmarkCompileScalingSmoke), which fails the build if a
# j=8 compile stops beating j=1 by at least 1.5x. The assertion
# self-skips on hosts with fewer than 4 CPUs, where the ladder is
# legitimately flat.
bench-smoke:
	$(GO) test -short -run xxx -bench 'BenchmarkCompileWorkers|BenchmarkCompileScalingSmoke|BenchmarkBuildTraced|BenchmarkBuildColdVsWarm' -benchtime 1x . >/dev/null

# serve-smoke boots calibrod on a random port, drives one job end to end
# via calibroctl, checks /healthz and /metrics, and requires a clean
# SIGTERM drain.
serve-smoke:
	GO=$(GO) sh scripts/serve_smoke.sh

# replay-smoke replays the fixed-seed calibroload workload against a
# fresh daemon and asserts the exact served/413 split the seed dictates,
# plus the prom exposition, a per-job trace, and the JSON event log.
replay-smoke:
	GO=$(GO) sh scripts/replay_smoke.sh

# fleet-smoke boots one calibrocached and two calibrod daemons sharing it
# as a remote cache tier, replays the fixed-seed workload twice (single
# daemon, then routed across the fleet), and asserts the identical
# served/413 split plus actual cross-daemon artifact hits.
fleet-smoke:
	GO=$(GO) sh scripts/fleet_smoke.sh

# reoutline-smoke builds the fixed-seed app without link-time outlining,
# re-outlines it post hoc through the calibro CLI, and asserts savings,
# the gap to the link-time build, lint-clean output, provenance in
# oatdump, and the -debloat composition.
reoutline-smoke:
	GO=$(GO) sh scripts/reoutline_smoke.sh

# bench-reoutline measures the post-hoc re-outlining pass per ladder app
# (bytes saved plus per-stage wall clocks) and appends a timestamped run
# to BENCH_reoutline.json via cmd/benchjson -append.
bench-reoutline:
	$(GO) test -run xxx -bench 'BenchmarkReoutline' -benchmem ./internal/reoutline \
		| $(GO) run ./cmd/benchjson -append -o BENCH_reoutline.json

# bench-serve replays the seeded serving workload at full scale and
# appends client-observed latency percentiles, queue wait, cache hit
# rate, and served/rejected counts to BENCH_serve.json (host CPU count
# stamped alongside, via cmd/benchjson -append).
bench-serve:
	GO=$(GO) sh scripts/bench_serve.sh
