package calibro

// Ablation benchmarks for the design decisions DESIGN.md §4 calls out:
// minimum repeat length, the benefit-model threshold, the hot-set coverage
// fraction, the number of parallel trees, and multi-round outlining. Each
// prints a small sweep table; none corresponds to a paper table — they
// probe *why* the design is what it is.

import (
	"fmt"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/oat"
	"repro/internal/outline"
	"repro/internal/report"
)

// ablationApp returns a mid-size app bundle (Taobao) for the sweeps.
func ablationApp(b *testing.B) *appBundle {
	return suite(b)[1]
}

func outlineWith(b *testing.B, ab *appBundle, opts outline.Options) (*oat.Image, *outline.Stats) {
	methods, err := codegen.Compile(ab.app, codegen.Options{CTO: true, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	blobs, stats, err := outline.Run(methods, opts)
	if err != nil {
		b.Fatal(err)
	}
	img, err := oat.Link(methods, blobs)
	if err != nil {
		b.Fatal(err)
	}
	return img, stats
}

// BenchmarkAblationMinLength sweeps the minimum repeat length (§3.3
// defaults to 2: the Figure 2 model already rejects unprofitable repeats,
// so raising the floor only loses coverage).
func BenchmarkAblationMinLength(b *testing.B) {
	ab := ablationApp(b)
	base := build(b, ab, "baseline").TextBytes()
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: minimum repeat length vs reduction",
			Header: []string{"min length", "text bytes", "reduction", "functions"},
		}
		var first float64
		for _, minLen := range []int{2, 3, 4, 6, 8} {
			img, stats := outlineWith(b, ab, outline.Options{MinLength: minLen})
			red := float64(base-img.TextBytes()) / float64(base)
			if minLen == 2 {
				first = red
			}
			t.AddRow(fmt.Sprint(minLen), fmt.Sprint(img.TextBytes()),
				report.Pct(red), fmt.Sprint(stats.OutlinedFunctions))
		}
		if i == 0 {
			fmt.Println(t)
		}
		b.ReportMetric(100*first, "minlen2-reduction-%")
	}
}

// BenchmarkAblationMinBenefit sweeps the Figure 2 benefit threshold.
func BenchmarkAblationMinBenefit(b *testing.B) {
	ab := ablationApp(b)
	base := build(b, ab, "baseline").TextBytes()
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: benefit threshold (Figure 2 model) vs reduction",
			Header: []string{"min benefit", "reduction", "functions", "occurrences"},
		}
		for _, minB := range []int{1, 2, 4, 8, 16, 32} {
			img, stats := outlineWith(b, ab, outline.Options{MinBenefit: minB})
			t.AddRow(fmt.Sprint(minB),
				report.Reduction(base, img.TextBytes()),
				fmt.Sprint(stats.OutlinedFunctions), fmt.Sprint(stats.OutlinedOccurrences))
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

// BenchmarkAblationRounds sweeps multi-round outlining: later rounds
// recover fragments the greedy first pass left behind, with diminishing
// returns.
func BenchmarkAblationRounds(b *testing.B) {
	ab := ablationApp(b)
	base := build(b, ab, "baseline").TextBytes()
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: outlining rounds vs reduction",
			Header: []string{"rounds", "reduction", "functions", "net words saved"},
		}
		for _, rounds := range []int{1, 2, 3, 4} {
			img, stats := outlineWith(b, ab, outline.Options{Rounds: rounds})
			t.AddRow(fmt.Sprint(rounds),
				report.Reduction(base, img.TextBytes()),
				fmt.Sprint(stats.OutlinedFunctions), fmt.Sprint(stats.NetWordsSaved()))
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

// BenchmarkAblationHotFraction sweeps the §3.4.2 hot-set coverage rule
// (the paper uses 80% of execution time): larger fractions protect more
// code, trading size for speed.
func BenchmarkAblationHotFraction(b *testing.B) {
	ab := ablationApp(b)
	baseline := build(b, ab, "baseline")
	baseCycles, _, _ := runScript(b, baseline.Image, ab.script)
	prof, err := CollectProfile(baseline.Image, ab.script)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: hot-set coverage fraction vs size and cycles (§3.4.2, paper uses 0.80)",
			Header: []string{"coverage", "hot methods", "reduction", "cycle degradation"},
		}
		for _, frac := range []float64{0, 0.5, 0.8, 0.95} {
			cfg := core.CTOLTBOPl(8)
			if frac > 0 {
				cfg.HotFilter = true
				cfg.Profile = prof
				cfg.HotFraction = frac
			}
			res, err := core.Build(ab.app, cfg)
			if err != nil {
				b.Fatal(err)
			}
			cycles, _, _ := runScript(b, res.Image, ab.script)
			hotN := 0
			if frac > 0 {
				hotN = len(prof.HotSet(frac))
			}
			t.AddRow(fmt.Sprintf("%.2f", frac), fmt.Sprint(hotN),
				report.Reduction(baseline.TextBytes(), res.TextBytes()),
				report.Pct(float64(cycles-baseCycles)/float64(baseCycles)))
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

// BenchmarkAblationTreeCount extends the §3.4.1 trade-off to a full sweep
// (the paper evaluates 8 trees and mentions the trade-off is tunable).
func BenchmarkAblationTreeCount(b *testing.B) {
	ab := ablationApp(b)
	base := build(b, ab, "baseline").TextBytes()
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: paralleled suffix tree count vs reduction and outline time (§3.4.1)",
			Header: []string{"trees", "reduction", "tree build", "detect"},
		}
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			img, stats := outlineWith(b, ab, outline.Options{Parallel: k})
			t.AddRow(fmt.Sprint(k),
				report.Reduction(base, img.TextBytes()),
				stats.TreeBuild.Round(100_000).String(), stats.Detect.Round(100_000).String())
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

// BenchmarkAblationDetector compares the repeat-detection backends: the
// paper's suffix tree vs a suffix array. Both find identical repeat
// families (tested in internal/outline); the trade-off is construction
// time vs memory — the resource the paper's global tree exhausts.
func BenchmarkAblationDetector(b *testing.B) {
	ab := ablationApp(b)
	base := build(b, ab, "baseline").TextBytes()
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: detection backend (suffix tree vs suffix array, global scope)",
			Header: []string{"backend", "reduction", "build", "detect"},
		}
		for _, d := range []struct {
			name string
			kind outline.DetectorKind
		}{{"suffix tree", outline.DetectorSuffixTree}, {"suffix array", outline.DetectorSuffixArray}} {
			img, stats := outlineWith(b, ab, outline.Options{Detector: d.kind})
			t.AddRow(d.name,
				report.Reduction(base, img.TextBytes()),
				stats.TreeBuild.Round(100_000).String(),
				stats.Detect.Round(100_000).String())
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

// BenchmarkAblationDedup measures how much of the PlOpti loss cross-tree
// function deduplication recovers.
func BenchmarkAblationDedup(b *testing.B) {
	ab := ablationApp(b)
	base := build(b, ab, "baseline").TextBytes()
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: cross-tree function deduplication (extension beyond the paper)",
			Header: []string{"configuration", "reduction", "functions"},
		}
		for _, cfg := range []struct {
			name  string
			trees int
			dedup bool
		}{
			{"1 tree", 1, false},
			{"8 trees", 8, false},
			{"8 trees + dedup", 8, true},
		} {
			img, stats := outlineWith(b, ab, outline.Options{Parallel: cfg.trees, DedupFunctions: cfg.dedup})
			t.AddRow(cfg.name,
				report.Reduction(base, img.TextBytes()),
				fmt.Sprint(stats.OutlinedFunctions))
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

// BenchmarkAblationCostModel re-measures the Table 7 cycle degradation
// under the two emulator cost models: the default in-order model charges
// every extra bl/br a cycle, while the out-of-order preset (closer to the
// paper's Tensor G2) hides transfer costs and leaves the I-cache as
// outlining's main price. This quantifies how much of the Table 7 gap in
// EXPERIMENTS.md is cost model rather than algorithm.
func BenchmarkAblationCostModel(b *testing.B) {
	ab := ablationApp(b)
	baseline := build(b, ab, "baseline")
	plopti := build(b, ab, "plopti")
	hfopti := build(b, ab, "hfopti")
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nAblation: cycle degradation under different core models (paper: +1.51% / +0.90%)",
			Header: []string{"core model", "PlOpti degradation", "PlOpti+HfOpti degradation"},
		}
		for _, cm := range []struct {
			name  string
			costs emu.CostModel
		}{
			{"in-order (default)", emu.InOrderCosts},
			{"out-of-order (Tensor-G2-like)", emu.OutOfOrderCosts},
		} {
			measure := func(res *BuildResult) int64 {
				m := emu.New(res.Image)
				m.Costs = cm.costs
				var cycles int64
				for _, r := range ab.script {
					out, err := m.Run(r.Entry, r.Args[:])
					if err != nil {
						b.Fatal(err)
					}
					cycles += out.Cycles
				}
				return cycles
			}
			base := measure(baseline)
			pl := measure(plopti)
			hf := measure(hfopti)
			t.AddRow(cm.name,
				report.Pct(float64(pl-base)/float64(base)),
				report.Pct(float64(hf-base)/float64(base)))
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}
