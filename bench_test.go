package calibro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4). Each BenchmarkTableN/BenchmarkFigureN prints the
// corresponding table in the paper's layout (rows = configurations,
// columns = the six apps) and reports its headline number as a custom
// metric.
//
// Scale: apps are generated at CALIBRO_SCALE (default 0.25; `-short` uses
// 0.05) of the ~1:220 reproduction scale. Ratios, not absolute sizes, are
// the reproduction target; see EXPERIMENTS.md for the recorded comparison
// against the paper.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/outline"
	"repro/internal/report"
	"repro/internal/suffixtree"
)

func benchScale() float64 {
	if s := os.Getenv("CALIBRO_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	if testing.Short() {
		return 0.05
	}
	return 0.25
}

// scriptRounds is the paper's "run the test script 20 times".
const scriptRounds = 20

type appBundle struct {
	prof   AppProfile
	app    *App
	man    *AppManifest
	script []ScriptRun
}

type buildKey struct {
	app    string
	config string
}

var bench struct {
	mu     sync.Mutex
	scale  float64
	apps   []*appBundle
	builds map[buildKey]*BuildResult
	profs  map[string]*Profile
}

// suite generates the six apps once per scale.
func suite(tb testing.TB) []*appBundle {
	bench.mu.Lock()
	defer bench.mu.Unlock()
	s := benchScale()
	if bench.apps != nil && bench.scale == s {
		return bench.apps
	}
	bench.scale = s
	bench.apps = nil
	bench.builds = map[buildKey]*BuildResult{}
	bench.profs = map[string]*Profile{}
	for _, prof := range AppProfiles(s) {
		app, man, err := GenerateApp(prof)
		if err != nil {
			tb.Fatal(err)
		}
		bench.apps = append(bench.apps, &appBundle{
			prof: prof, app: app, man: man,
			script: Script(man, scriptRounds, 1),
		})
	}
	return bench.apps
}

// build memoizes builds per (app, config name).
func build(tb testing.TB, ab *appBundle, name string) *BuildResult {
	bench.mu.Lock()
	defer bench.mu.Unlock()
	key := buildKey{ab.prof.Name, name}
	if r, ok := bench.builds[key]; ok {
		return r
	}
	var res *BuildResult
	var err error
	switch name {
	case "baseline":
		res, err = Build(ab.app, Baseline())
	case "cto":
		res, err = Build(ab.app, CTOOnly())
	case "ltbo":
		res, err = Build(ab.app, CTOLTBO())
	case "plopti":
		res, err = Build(ab.app, CTOLTBOPl(8))
	case "hfopti":
		var p *Profile
		res, p, err = ProfileGuidedBuild(ab.app, CTOLTBOPl(8), ab.script)
		bench.profs[ab.prof.Name] = p
	default:
		tb.Fatalf("unknown config %q", name)
	}
	if err != nil {
		tb.Fatal(err)
	}
	bench.builds[key] = res
	return res
}

// runScript executes the app's script on an image, summing measurements.
func runScript(tb testing.TB, img *Image, script []ScriptRun) (cycles, insts int64, residentBytes int64) {
	var maxPages int
	for _, r := range script {
		out, err := Execute(img, r.Entry, r.Args[:])
		if err != nil {
			tb.Fatal(err)
		}
		cycles += out.Cycles
		insts += out.Insts
		if p := out.CodePages + out.DataPages; p > maxPages {
			maxPages = p
		}
	}
	return cycles, insts, int64(maxPages) * 4096
}

func appNames(apps []*appBundle) []string {
	names := make([]string, len(apps))
	for i, ab := range apps {
		names[i] = ab.prof.Name
	}
	return names
}

// BenchmarkTable1_EstimatedRedundancy reproduces the §2.2 estimated code
// size reduction ratios (paper: avg 25.4%).
func BenchmarkTable1_EstimatedRedundancy(b *testing.B) {
	apps := suite(b)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nTable 1: estimated code size reduction ratios (paper avg: 25.4%)",
			Header: append([]string{""}, append(appNames(apps), "AVG")...),
		}
		row := []string{"Estimated reduction"}
		var sum float64
		for _, ab := range apps {
			res := build(b, ab, "baseline")
			a := AnalyzeRedundancy(res, false)
			row = append(row, report.Pct(a.EstimatedReduction))
			sum += a.EstimatedReduction
		}
		avg := sum / float64(len(apps))
		row = append(row, report.Pct(avg))
		t.AddRow(row...)
		if i == 0 {
			fmt.Println(t)
		}
		b.ReportMetric(100*avg, "avg-est-reduction-%")
	}
}

// BenchmarkFigure3_LengthVsRepeats reproduces the sequence-length vs
// number-of-repeats distribution for the WeChat app (Observation 2: short
// sequences dominate).
func BenchmarkFigure3_LengthVsRepeats(b *testing.B) {
	apps := suite(b)
	var wechat *appBundle
	for _, ab := range apps {
		if ab.prof.Name == "Wechat" {
			wechat = ab
		}
	}
	res := build(b, wechat, "baseline")
	for i := 0; i < b.N; i++ {
		a := AnalyzeRedundancy(res, false)
		lengths := make([]int, 0, len(a.OccurrencesByLength))
		for l := range a.OccurrencesByLength {
			lengths = append(lengths, l)
		}
		sort.Ints(lengths)
		var short, long, max int64
		for _, l := range lengths {
			occ := a.OccurrencesByLength[l]
			if l <= 4 {
				short += occ
			} else if l >= 10 {
				long += occ
			}
			if occ > max {
				max = occ
			}
		}
		if i == 0 {
			fmt.Println("\nFigure 3: sequence length vs number of repeats (Wechat)")
			for _, l := range lengths {
				if l > 20 {
					break
				}
				occ := a.OccurrencesByLength[l]
				fmt.Printf("  len %2d %9d |%s\n", l, occ, bar(occ, max, 40))
			}
		}
		b.ReportMetric(float64(short)/float64(long+1), "short-vs-long-ratio")
	}
}

func bar(v, max int64, width int) string {
	n := int(v * int64(width) / max)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// BenchmarkFigure4_PatternCounts reproduces the ART-specific pattern site
// counts (paper WeChat: java-call 1006k, stack-check 173k, allocObject
// 217k — ratios 5.8 : 1.0 : 1.25 per stack check).
func BenchmarkFigure4_PatternCounts(b *testing.B) {
	apps := suite(b)
	var wechat *appBundle
	for _, ab := range apps {
		if ab.prof.Name == "Wechat" {
			wechat = ab
		}
	}
	res := build(b, wechat, "baseline")
	for i := 0; i < b.N; i++ {
		pc := CountPatterns(res)
		if i == 0 {
			fmt.Println("\nFigure 4: ART-specific repetitive pattern sites (Wechat)")
			fmt.Printf("  Java function call pattern:   %6d sites (paper: 1006k, ratio 5.8x stack checks)\n", pc.JavaCall)
			fmt.Printf("  stack overflow check pattern: %6d sites (paper: 173k)\n", pc.StackCheck)
			fmt.Printf("  pAllocObjectResolved pattern: %6d sites (paper: 217k, ratio 1.25x)\n", pc.NativeAlloc)
		}
		b.ReportMetric(float64(pc.JavaCall)/float64(pc.StackCheck), "javacall-per-stackcheck")
	}
}

// BenchmarkTable4_CodeSize reproduces the on-disk code size reductions
// (paper: CTO+LTBO 19.19%, +PlOpti 16.40%, +PlOpti+HfOpti 15.19%).
func BenchmarkTable4_CodeSize(b *testing.B) {
	apps := suite(b)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nTable 4: code size reduction of the OAT text segment",
			Header: append([]string{""}, append(appNames(apps), "AVG")...),
		}
		configs := []string{"baseline", "cto", "ltbo", "plopti", "hfopti"}
		sizes := map[string][]int{}
		for _, cfg := range configs {
			row := []string{rowName(cfg)}
			for _, ab := range apps {
				res := build(b, ab, cfg)
				sizes[cfg] = append(sizes[cfg], res.TextBytes())
				row = append(row, report.Bytes(res.TextBytes()))
			}
			row = append(row, "/")
			t.AddRow(row...)
		}
		var avgRed = map[string]float64{}
		for _, cfg := range configs[1:] {
			row := []string{rowName(cfg) + " reduction"}
			var sum float64
			for k := range apps {
				r := float64(sizes["baseline"][k]-sizes[cfg][k]) / float64(sizes["baseline"][k])
				row = append(row, report.Pct(r))
				sum += r
			}
			avgRed[cfg] = sum / float64(len(apps))
			row = append(row, report.Pct(avgRed[cfg]))
			t.AddRow(row...)
		}
		if i == 0 {
			fmt.Println(t)
			fmt.Println("paper: CTO 3.56%, CTO+LTBO 19.19%, +PlOpti 16.40%, +PlOpti+HfOpti 15.19%")
		}
		b.ReportMetric(100*avgRed["ltbo"], "ltbo-reduction-%")
		b.ReportMetric(100*avgRed["plopti"], "plopti-reduction-%")
		b.ReportMetric(100*avgRed["hfopti"], "hfopti-reduction-%")
	}
}

func rowName(cfg string) string {
	switch cfg {
	case "baseline":
		return "Baseline"
	case "cto":
		return "CTO"
	case "ltbo":
		return "CTO+LTBO"
	case "plopti":
		return "CTO+LTBO+PlOpti"
	case "hfopti":
		return "CTO+LTBO+PlOpti+HfOpti"
	}
	return cfg
}

// BenchmarkTable5_Memory reproduces the resident-memory reduction during
// the scripted runs (paper: CTO 2.03%, CTO+LTBO 6.82%).
func BenchmarkTable5_Memory(b *testing.B) {
	apps := suite(b)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nTable 5: memory usage during the scripted workload",
			Header: append([]string{""}, append(appNames(apps), "AVG")...),
		}
		configs := []string{"baseline", "cto", "ltbo"}
		resident := map[string][]int64{}
		for _, cfg := range configs {
			row := []string{rowName(cfg)}
			for _, ab := range apps {
				res := build(b, ab, cfg)
				_, _, mem := runScript(b, res.Image, ab.script)
				resident[cfg] = append(resident[cfg], mem)
				row = append(row, report.Bytes(int(mem)))
			}
			row = append(row, "/")
			t.AddRow(row...)
		}
		var avgLTBO float64
		for _, cfg := range configs[1:] {
			row := []string{rowName(cfg) + " reduction"}
			var sum float64
			for k := range apps {
				r := float64(resident["baseline"][k]-resident[cfg][k]) / float64(resident["baseline"][k])
				row = append(row, report.Pct(r))
				sum += r
			}
			avg := sum / float64(len(apps))
			if cfg == "ltbo" {
				avgLTBO = avg
			}
			row = append(row, report.Pct(avg))
			t.AddRow(row...)
		}
		if i == 0 {
			fmt.Println(t)
			fmt.Println("paper: CTO 2.03%, CTO+LTBO 6.82%")
		}
		b.ReportMetric(100*avgLTBO, "ltbo-memory-reduction-%")
	}
}

// BenchmarkTable6_BuildTime reproduces the build-time growth (paper:
// single-tree CTO+LTBO +489.5%, +PlOpti +70.8%).
func BenchmarkTable6_BuildTime(b *testing.B) {
	apps := suite(b)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nTable 6: building time",
			Header: append([]string{""}, append(appNames(apps), "AVG")...),
		}
		configs := []string{"baseline", "ltbo", "plopti"}
		times := map[string][]float64{}
		for _, cfg := range configs {
			row := []string{rowName(cfg)}
			for _, ab := range apps {
				res := build(b, ab, cfg)
				d := res.WallTime
				times[cfg] = append(times[cfg], d.Seconds())
				row = append(row, report.Dur(d))
			}
			row = append(row, "/")
			t.AddRow(row...)
		}
		var growthLTBO, growthPl float64
		for _, cfg := range configs[1:] {
			row := []string{rowName(cfg) + " growth"}
			var sum float64
			for k := range apps {
				g := (times[cfg][k] - times["baseline"][k]) / times["baseline"][k]
				row = append(row, report.Pct(g))
				sum += g
			}
			avg := sum / float64(len(apps))
			if cfg == "ltbo" {
				growthLTBO = avg
			} else {
				growthPl = avg
			}
			row = append(row, report.Pct(avg))
			t.AddRow(row...)
		}
		if i == 0 {
			fmt.Println(t)
			// Per-stage breakdown: the times Result records are parallel
			// wall clocks, so this is where the -j worker pool shows up.
			st := &report.Table{
				Title:  fmt.Sprintf("per-stage wall time, CTO+LTBO+PlOpti at -j %d", build(b, apps[0], "plopti").Workers),
				Header: append([]string{""}, appNames(apps)...),
			}
			stages := []struct {
				name string
				get  func(*BuildResult) float64
			}{
				{"compile", func(r *BuildResult) float64 { return r.CompileTime.Seconds() }},
				{"outline", func(r *BuildResult) float64 { return r.OutlineTime.Seconds() }},
				{"link", func(r *BuildResult) float64 { return r.LinkTime.Seconds() }},
			}
			for _, s := range stages {
				row := []string{s.name}
				for _, ab := range apps {
					row = append(row, fmt.Sprintf("%.3fs", s.get(build(b, ab, "plopti"))))
				}
				st.AddRow(row...)
			}
			fmt.Println(st)
			fmt.Printf("paper: CTO+LTBO +489.5%%, CTO+LTBO+PlOpti +70.8%% (on %d-thread host %s)\n",
				runtime.NumCPU(), runtime.GOARCH)
		}
		b.ReportMetric(100*growthLTBO, "ltbo-build-growth-%")
		b.ReportMetric(100*growthPl, "plopti-build-growth-%")
	}
}

// BenchmarkTable7_Cycles reproduces the runtime performance degradation in
// CPU cycles (paper: +1.51% without HfOpti, +0.90% with).
func BenchmarkTable7_Cycles(b *testing.B) {
	apps := suite(b)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:  "\nTable 7: runtime performance (total CPU cycles over the scripted workload)",
			Header: append([]string{""}, append(appNames(apps), "AVG")...),
		}
		configs := []string{"baseline", "plopti", "hfopti"}
		cycles := map[string][]int64{}
		for _, cfg := range configs {
			row := []string{rowName(cfg)}
			for _, ab := range apps {
				res := build(b, ab, cfg)
				c, _, _ := runScript(b, res.Image, ab.script)
				cycles[cfg] = append(cycles[cfg], c)
				row = append(row, report.Count(c))
			}
			row = append(row, "/")
			t.AddRow(row...)
		}
		var degPl, degHf float64
		for _, cfg := range configs[1:] {
			row := []string{rowName(cfg) + " degradation"}
			var sum float64
			for k := range apps {
				d := float64(cycles[cfg][k]-cycles["baseline"][k]) / float64(cycles["baseline"][k])
				row = append(row, report.Pct(d))
				sum += d
			}
			avg := sum / float64(len(apps))
			if cfg == "plopti" {
				degPl = avg
			} else {
				degHf = avg
			}
			row = append(row, report.Pct(avg))
			t.AddRow(row...)
		}
		if i == 0 {
			fmt.Println(t)
			fmt.Println("paper: CTO+LTBO+PlOpti +1.51%, +HfOpti +0.90%")
		}
		b.ReportMetric(100*degPl, "plopti-cycle-degradation-%")
		b.ReportMetric(100*degHf, "hfopti-cycle-degradation-%")
	}
}

// --- component microbenchmarks ---

// BenchmarkSuffixTreeBuild measures Ukkonen construction throughput on a
// whole-app instruction sequence.
func BenchmarkSuffixTreeBuild(b *testing.B) {
	apps := suite(b)
	res := build(b, apps[1], "baseline") // Taobao, the smallest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := outline.Analyze(res.Methods, true)
		if a.TotalWords == 0 {
			b.Fatal("no code")
		}
	}
}

// BenchmarkCompile measures the dex2oat-like pipeline.
func BenchmarkCompile(b *testing.B) {
	apps := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(apps[1].app, Baseline()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileWorkers isolates the compile stage across the -j ladder
// on the WeChat app. On a multi-core host throughput should rise with j;
// on a single-CPU host the ladder flattens (the pool degrades to a bounded
// serial walk) and only the allocation numbers are meaningful — which is
// why BENCH_obs.json records host_cpus next to every run.
func BenchmarkCompileWorkers(b *testing.B) {
	apps := suite(b)
	var wechat *appBundle
	for _, ab := range apps {
		if ab.prof.Name == "Wechat" {
			wechat = ab
		}
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			// ReportAllocs up front so allocs/op lands in the archived
			// numbers even without -benchmem; ResetTimer drops the suite
			// lookup and any earlier sub-benchmark's state from this
			// sub-benchmark's clock, so methods/s divides compile time
			// only — the j=8 column used to silently absorb whatever ran
			// before the timer started.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				methods, err := codegen.Compile(wechat.app, codegen.Options{
					CTO: true, Optimize: true, Workers: j,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(methods) != len(wechat.app.Methods) {
					b.Fatal("short compile")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(wechat.app.Methods))*float64(b.N)/b.Elapsed().Seconds(), "methods/s")
		})
	}
}

// BenchmarkCompileScalingSmoke is the -j scaling regression guard wired
// into `make bench-smoke`: on a host with at least 4 CPUs, a j=8 compile
// of the WeChat app must beat j=1 by at least 1.5x (the target is ~2x;
// the slack absorbs CI noise). Before the de-allocation and de-contention
// work the ladder was flat — j=8 reached just 1.08x of j=1 — because the
// build spent over a third of its cycles in GC feeding ~339k allocations
// per build, so extra workers mostly contended on the allocator. Fewer
// than 4 CPUs skips: the assertion would measure the host, not the code.
func BenchmarkCompileScalingSmoke(b *testing.B) {
	if runtime.NumCPU() < 4 {
		b.Skipf("scaling assertion needs >= 4 CPUs, host has %d", runtime.NumCPU())
	}
	apps := suite(b)
	var wechat *appBundle
	for _, ab := range apps {
		if ab.prof.Name == "Wechat" {
			wechat = ab
		}
	}
	compileAt := func(j int) float64 {
		best := math.MaxFloat64
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			if _, err := codegen.Compile(wechat.app, codegen.Options{
				CTO: true, Optimize: true, Workers: j,
			}); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0).Seconds(); d < best {
				best = d
			}
		}
		return best
	}
	for i := 0; i < b.N; i++ {
		speedup := compileAt(1) / compileAt(8)
		b.ReportMetric(speedup, "j8-speedup-x")
		if speedup < 1.5 {
			b.Fatalf("j=8 compile speedup is %.2fx over j=1, want >= 1.5x: the -j ladder has re-flattened", speedup)
		}
	}
}

// BenchmarkBuildTraced measures the telemetry overhead on a full
// CTO+LTBO+PlOpti build of the WeChat app: the nil (no-op) tracer against
// a live one recording every span and counter. The contract is that the
// nil case is free — its per-span cost is a nil check — and the live case
// stays a small fraction of the build; the sub-benchmark ns/op ratio is
// the number to watch.
func BenchmarkBuildTraced(b *testing.B) {
	apps := suite(b)
	var wechat *appBundle
	for _, ab := range apps {
		if ab.prof.Name == "Wechat" {
			wechat = ab
		}
	}
	for _, bc := range []struct {
		name   string
		tracer *Tracer
	}{
		{"tracer=noop", nil},
		{"tracer=live", NewTracer()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := CTOLTBOPl(8)
			cfg.Workers = 8
			cfg.Tracer = bc.tracer
			for i := 0; i < b.N; i++ {
				if _, err := Build(wechat.app, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildColdVsWarm measures what the compilation cache buys on a
// full CTO+LTBO+PlOpti build of the largest app (Kuaishou): "cold" builds
// into a fresh cache every iteration (compile + populate), "warm" builds
// from a pre-populated one (every method decoded, zero code generation).
// The warm/cold ns/op ratio is the headline; the warm case also reports
// its hit rate, which must be 100%.
func BenchmarkBuildColdVsWarm(b *testing.B) {
	apps := suite(b)
	var kuaishou *appBundle
	for _, ab := range apps {
		if ab.prof.Name == "Kuaishou" {
			kuaishou = ab
		}
	}
	cfg := CTOLTBOPl(8)
	cfg.Workers = 8
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run := cfg
			run.Cache, _ = NewCache("")
			if _, err := Build(kuaishou.app, run); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		run := cfg
		run.Cache, _ = NewCache("")
		if _, err := Build(kuaishou.app, run); err != nil { // populate
			b.Fatal(err)
		}
		before := run.Cache.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Build(kuaishou.app, run); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s := run.Cache.Stats()
		hits, misses := s.Hits-before.Hits, s.Misses-before.Misses
		b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit-rate-%")
	})
}

// BenchmarkOutlineGlobal measures LTBO with one global suffix tree.
func BenchmarkOutlineGlobal(b *testing.B) {
	apps := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(apps[1].app, CTOLTBO()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutlineParallel8 measures LTBO with 8 partitioned trees.
func BenchmarkOutlineParallel8(b *testing.B) {
	apps := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(apps[1].app, CTOLTBOPl(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuffixTreeScaling demonstrates the §3.4.1 mechanism behind
// Table 6: suffix-tree construction cost per symbol grows with sequence
// length as the working set falls out of cache — the effect that makes one
// global tree over millions of instructions far slower than K small trees,
// and that dominates on the paper's 8 GB device. Run the sub-benchmarks
// and compare ns/symbol across sizes.
func BenchmarkSuffixTreeScaling(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20, 1 << 21} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Instruction-like symbol stream: modest alphabet with heavy
			// reuse plus unique separators sprinkled like basic blocks.
			seq := make([]uint32, n)
			state := uint32(12345)
			sep := uint32(1 << 20)
			for i := range seq {
				state = state*1664525 + 1013904223
				if i%12 == 11 {
					sep++
					seq[i] = sep
				} else {
					seq[i] = state % 4096
				}
			}
			sep++
			seq[n-1] = sep // unique final symbol so every suffix has a leaf
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree := suffixtree.Build(seq)
				if tree.NumLeaves() != n {
					b.Fatal("bad tree")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/symbol")
		})
	}
}

// BenchmarkEmulator measures emulated instruction throughput.
func BenchmarkEmulator(b *testing.B) {
	apps := suite(b)
	res := build(b, apps[1], "baseline")
	run := apps[1].script[0]
	var insts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Execute(res.Image, run.Entry, run.Args[:])
		if err != nil {
			b.Fatal(err)
		}
		insts += out.Insts
	}
	b.ReportMetric(float64(insts)/float64(b.N), "insts/op")
}

// BenchmarkTable3_Setup prints the experimental setup in the Table 3
// layout: ours is the emulated device configuration standing in for the
// Pixel 7.
func BenchmarkTable3_Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			t := &report.Table{
				Title:  "\nTable 3: experimental setup (emulated device standing in for the Pixel 7)",
				Header: []string{"parameter", "configuration"},
			}
			t.AddRow("Experiment device", "internal/emu AArch64-subset emulator")
			t.AddRow("I-cache", "32 KiB direct-mapped, 64 B lines, 20-cycle fill")
			t.AddRow("Call/branch cost", "+1 cycle (bl/blr/br/ret, taken branches)")
			t.AddRow("Memory model", "4 KiB page touch tracking; 1 MiB guarded stack; bump heap")
			t.AddRow("Android version", "modeled ART ABI (abi package)")
			t.AddRow("Test set", fmt.Sprintf("6 synthetic app profiles at scale %.2f (~1:220 of the paper)", benchScale()))
			t.AddRow("Host", fmt.Sprintf("%s/%s, %d CPUs", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()))
			fmt.Println(t)
		}
	}
}
