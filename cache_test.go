package calibro

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// cacheLadder is the config half of the differential matrix — the same
// four-rung evaluation ladder the lint ladder pins.
func cacheLadder() []struct {
	name string
	cfg  func() Config
} {
	return []struct {
		name string
		cfg  func() Config
	}{
		{"Baseline", Baseline},
		{"CTOOnly", CTOOnly},
		{"CTOLTBO", CTOLTBO},
		{"CTOLTBOPl8", func() Config { return CTOLTBOPl(8) }},
	}
}

// cachedBuild builds app under cfg with the given cache and worker count
// and returns the result plus the marshaled image bytes.
func cachedBuild(t *testing.T, app *App, cfg Config, cc *Cache, workers int) (*BuildResult, []byte) {
	t.Helper()
	cfg.Workers = workers
	cfg.Cache = cc
	res, err := Build(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalImage(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	return res, data
}

// TestColdWarmDifferential is the pin for the cache's hard contract:
// caching changes scheduling and work, never output. For every app
// profile under every ladder config it builds cold (empty cache), twice
// warm from the populated cache at -j 1 and -j 8, cold again at -j 8
// into a second fresh cache, and entirely without a cache — all five
// images must be byte-identical. The warm image is then executed on the
// emulator against the hgraph interpreter to confirm the decoded
// artifacts behave, not just compare.
func TestColdWarmDifferential(t *testing.T) {
	apps := AppProfiles(0.03)
	ladder := cacheLadder()
	if testing.Short() {
		apps = apps[:2]
		ladder = ladder[:2]
	}
	for _, prof := range apps {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			app, man, err := GenerateApp(prof)
			if err != nil {
				t.Fatal(err)
			}
			script := Script(man, 2, 1)
			for _, c := range ladder {
				_, plain := cachedBuild(t, app, c.cfg(), nil, 1)

				// Content addressing deduplicates byte-identical methods
				// (the workload's redundancy is the paper's premise), so a
				// cold build misses once per DISTINCT key and hits on the
				// duplicates; a warm build hits on every method.
				n := int64(app.NumMethods())
				cacheA, _ := NewCache("")
				_, cold1 := cachedBuild(t, app, c.cfg(), cacheA, 1)
				sc := cacheA.Stats()
				if sc.Misses != int64(sc.Entries) || sc.Hits+sc.Misses != n {
					t.Errorf("%s: cold build stats %+v, want %d distinct misses of %d methods",
						c.name, sc, sc.Entries, n)
				}
				warmRes, warm1 := cachedBuild(t, app, c.cfg(), cacheA, 1)
				if sw := cacheA.Stats(); sw.Hits-sc.Hits != n || sw.Misses != sc.Misses {
					t.Errorf("%s: warm build stats %+v after cold %+v, want %d fresh hits", c.name, sw, sc, n)
				}
				_, warm8 := cachedBuild(t, app, c.cfg(), cacheA, 8)

				cacheB, _ := NewCache("")
				_, cold8 := cachedBuild(t, app, c.cfg(), cacheB, 8)

				for _, v := range []struct {
					name string
					data []byte
				}{
					{"cold -j1", cold1}, {"warm -j1", warm1},
					{"warm -j8", warm8}, {"cold -j8", cold8},
				} {
					if !bytes.Equal(v.data, plain) {
						t.Errorf("%s: %s image differs from uncached build (%d vs %d bytes)",
							c.name, v.name, len(v.data), len(plain))
					}
				}

				// The warm image must not just match bytes — it must run,
				// and agree with the interpreter on every observable.
				for _, run := range script {
					want, err := Interpret(app, run.Entry, run.Args[:])
					if err != nil {
						t.Fatal(err)
					}
					got, err := Execute(warmRes.Image, run.Entry, run.Args[:])
					if err != nil {
						t.Fatalf("%s: execute m%d: %v", c.name, run.Entry, err)
					}
					if got.Ret != want.Ret || got.Exc != want.Exc || !reflect.DeepEqual(got.Log, want.Log) {
						t.Fatalf("%s: warm image diverges from interpreter on m%d", c.name, run.Entry)
					}
				}
			}
		})
	}
}

// TestWarmBuildHasNoCodegenSpans pins the telemetry side of a fully warm
// build: every method is served from the cache, so the compile task
// category must be entirely absent from the snapshot and the cache
// counters must show a 100% hit rate.
func TestWarmBuildHasNoCodegenSpans(t *testing.T) {
	app := wechatApp(t)
	cc, _ := NewCache("")
	cachedBuild(t, app, CTOLTBOPl(8), cc, 4) // populate

	tracer := NewTracer()
	cfg := CTOLTBOPl(8)
	cfg.Tracer = tracer
	cachedBuild(t, app, cfg, cc, 4)
	snap := tracer.Snapshot()

	if ts, ok := snap.Tasks["compile"]; ok {
		t.Errorf("warm build recorded %d codegen spans; want none", ts.Count)
	}
	n := int64(app.NumMethods())
	if snap.Counters["cache.hits"] != n {
		t.Errorf("cache.hits = %d, want %d", snap.Counters["cache.hits"], n)
	}
	if snap.Counters["cache.misses"] != 0 {
		t.Errorf("cache.misses = %d, want 0", snap.Counters["cache.misses"])
	}
	if snap.Counters["cache.bytes_served"] == 0 {
		t.Error("cache.bytes_served = 0 on a fully warm build")
	}
}

// TestCorruptCacheDirDegrades damages every persisted entry of an on-disk
// cache and rebuilds over it: the build must silently recompile (never
// error), produce a byte-identical lint-clean image, and count the
// corruption in the stats.
func TestCorruptCacheDirDegrades(t *testing.T) {
	app := wechatApp(t)
	dir := t.TempDir()

	cc, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, pristine := cachedBuild(t, app, CTOLTBOPl(8), cc, 4)

	// One file per distinct key; duplicate methods share an entry.
	distinct := cc.Len()
	files, err := filepath.Glob(filepath.Join(dir, "*.cce"))
	if err != nil || len(files) != distinct {
		t.Fatalf("expected %d entry files, got %d (%v)", distinct, len(files), err)
	}
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0xFF
		if err := os.WriteFile(f, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, rebuilt := cachedBuild(t, app, CTOLTBOPl(8), warm, 4)
	if !bytes.Equal(rebuilt, pristine) {
		t.Errorf("rebuild over corrupt cache differs (%d vs %d bytes)", len(rebuilt), len(pristine))
	}
	if findings := LintImage(res.Image); len(findings) != 0 {
		t.Errorf("rebuilt image has %d lint findings", len(findings))
	}
	// Every distinct key read the damaged file at least once; duplicate
	// methods may race the healing Put and read it again or hit the
	// freshly healed in-memory entry, so the bounds are inexact only for
	// the duplicates.
	s := warm.Stats()
	if s.Corrupt < int64(distinct) {
		t.Errorf("Corrupt = %d, want >= %d", s.Corrupt, distinct)
	}
	if s.Misses < int64(distinct) || s.Hits+s.Misses != int64(app.NumMethods()) {
		t.Errorf("corrupt rebuild stats %+v", s)
	}

	// The recompile healed the directory: a third instance compiles warm.
	healed, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, again := cachedBuild(t, app, CTOLTBOPl(8), healed, 4)
	if !bytes.Equal(again, pristine) {
		t.Error("healed cache serves a different image")
	}
	if s := healed.Stats(); s.Hits != int64(app.NumMethods()) || s.Corrupt != 0 {
		t.Errorf("healed cache stats %+v, want all hits", s)
	}
}

// TestDiskCacheWarmAcrossProcesses simulates the cross-process warm
// start the -cache-dir flag exists for: a second cache instance over the
// same directory serves every method from disk and reproduces the image.
func TestDiskCacheWarmAcrossProcesses(t *testing.T) {
	app := wechatApp(t)
	dir := t.TempDir()

	first, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, cold := cachedBuild(t, app, CTOLTBOPl(8), first, 4)

	second, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, warm := cachedBuild(t, app, CTOLTBOPl(8), second, 4)
	if !bytes.Equal(warm, cold) {
		t.Errorf("cross-process warm image differs (%d vs %d bytes)", len(warm), len(cold))
	}
	// Every method hits; at least one disk read per distinct key (a
	// duplicate racing the promotion may read the file again, so DiskHits
	// can exceed the distinct count but never the method count).
	s := second.Stats()
	n, distinct := int64(app.NumMethods()), int64(first.Len())
	if s.Hits != n || s.Misses != 0 {
		t.Errorf("stats %+v, want %d hits", s, n)
	}
	if s.DiskHits < distinct || s.DiskHits > n {
		t.Errorf("DiskHits = %d, want between %d and %d", s.DiskHits, distinct, n)
	}
}
