// Package calibro is a Go reproduction of "Calibro: Compilation-Assisted
// Linking-Time Binary Code Outlining for Code Size Reduction in Android
// Applications" (CGO 2025).
//
// The package exposes the complete pipeline the paper describes — a
// dex2oat-like compiler with compilation-time outlining (CTO) of the three
// ART-specific repetitive patterns, a linking-time binary outliner (LTBO)
// driven by compile-time metadata, paralleled suffix trees, and
// hot-function filtering — together with everything needed to evaluate it:
// a synthetic Android app generator, an AArch64-subset emulator with cycle
// and resident-memory models, and a simpleperf-style profiler.
//
// # Quick start
//
//	app, man, _ := calibro.GenerateApp(calibro.AppProfiles(0.25)[5]) // WeChat
//	base, _ := calibro.Build(app, calibro.Baseline())
//	opt, _ := calibro.Build(app, calibro.FullOptimization(8))
//	fmt.Printf("text: %d -> %d bytes\n", base.TextBytes(), opt.TextBytes())
//
// Correctness of every transformation is checkable by construction: a
// built image can be executed (Execute) and compared against the reference
// bytecode interpreter (Interpret) on the same inputs.
package calibro

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/hgraph"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/outline"
	"repro/internal/profiler"
	"repro/internal/reoutline"
	"repro/internal/workload"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// App is a synthetic Android application: dex files plus the
	// program-wide method table.
	App = dex.App
	// MethodID indexes the app-wide method table.
	MethodID = dex.MethodID
	// AppProfile parameterizes the synthetic app generator.
	AppProfile = workload.Profile
	// AppManifest records generation ground truth (drivers, hot methods).
	AppManifest = workload.Manifest
	// Config selects the build configuration (CTO/LTBO/PlOpti/HfOpti).
	Config = core.Config
	// BuildResult is a completed build: the OAT image plus statistics.
	BuildResult = core.Result
	// Image is a linked OAT image.
	Image = oat.Image
	// OutlineStats reports what the link-time outliner did.
	OutlineStats = outline.Stats
	// Analysis is the §2.2 redundancy study output.
	Analysis = outline.Analysis
	// PatternCounts counts the Figure 4 ART-specific pattern sites.
	PatternCounts = outline.PatternCounts
	// RunResult is the observable outcome and measurements of an emulated
	// execution.
	RunResult = emu.Result
	// InterpResult is the reference interpreter's outcome.
	InterpResult = hgraph.Result
	// Profile is a collected execution profile.
	Profile = profiler.Profile
	// ScriptRun is one scripted operation (entry method + arguments).
	ScriptRun = workload.Run
	// Exception enumerates modeled runtime exceptions.
	Exception = hgraph.Exception
	// Finding is one oatlint diagnostic.
	Finding = analysis.Finding
	// FindingSeverity grades a lint finding.
	FindingSeverity = analysis.Severity
	// LintReport is the full static-analyzer output: findings at every
	// severity plus per-method summaries.
	LintReport = analysis.Report
	// CFG is a control-flow graph recovered from linked code.
	CFG = analysis.CFG
	// Tracer records build telemetry — hierarchical spans, per-task worker
	// lanes, and counters — when assigned to Config.Tracer. A nil Tracer is
	// the no-op tracer: every method is nil-safe and records nothing.
	Tracer = obs.Tracer
	// TelemetrySnapshot is the aggregated metrics view of a Tracer: stage
	// totals, per-category task distributions, queue waits, worker
	// occupancy, and counters.
	TelemetrySnapshot = obs.Snapshot
	// Cache is the content-addressed compilation cache. Assigned to
	// Config.Cache it lets warm rebuilds skip per-method code generation
	// for every method whose bytecode, referenced-method signatures, and
	// codegen knobs are unchanged; the linked image stays byte-identical
	// to a cold build's.
	Cache = cache.Cache
	// CacheStats is a point-in-time view of a Cache's hit/miss/byte
	// counters.
	CacheStats = cache.Stats
	// CallGraph is the whole-image interprocedural call graph recovered
	// from a linked image's machine code.
	CallGraph = analysis.CallGraph
	// RootSet configures where reachability starts (explicit entry
	// points and/or no-caller inference).
	RootSet = analysis.RootSet
	// Reachability classifies every image region live or dead under a
	// root set.
	Reachability = analysis.Reachability
	// DebloatConfig configures DebloatImage.
	DebloatConfig = core.DebloatConfig
	// DebloatStats reports what a debloat pass removed.
	DebloatStats = analysis.DebloatStats
	// ReoutlineConfig configures ReoutlineImage.
	ReoutlineConfig = core.ReoutlineConfig
	// ReoutlineStats reports what a post-hoc re-outlining pass did.
	ReoutlineStats = reoutline.Stats
	// LintRule is one named verifier check in the oatlint rule registry.
	LintRule = analysis.Rule
	// LintRuleSpec selects which rules a lint run evaluates and at what
	// severity (the oatlint -rules grammar).
	LintRuleSpec = analysis.RuleSpec
)

// Exceptions raised by the modeled runtime.
const (
	ExcNone          = hgraph.ExcNone
	ExcNullPointer   = hgraph.ExcNullPointer
	ExcArrayBounds   = hgraph.ExcArrayBounds
	ExcStackOverflow = hgraph.ExcStackOverflow
)

// Lint finding severities.
const (
	SevInfo  = analysis.SevInfo
	SevWarn  = analysis.SevWarn
	SevError = analysis.SevError
)

// GenerateApp builds a synthetic application from a profile.
func GenerateApp(p AppProfile) (*App, *AppManifest, error) {
	return workload.Generate(p)
}

// AppProfiles returns the paper's six benchmark apps (Toutiao, Taobao,
// Fanqie, Meituan, Kuaishou, Wechat) at the given scale factor; 1.0 is the
// full ~1:220 reproduction scale.
func AppProfiles(scale float64) []AppProfile { return workload.Apps(scale) }

// AppProfileByName looks up one of the six benchmark apps.
func AppProfileByName(name string, scale float64) (AppProfile, bool) {
	return workload.AppByName(name, scale)
}

// Script builds the scripted operation sequence used by the memory and
// performance experiments.
func Script(man *AppManifest, rounds int, seed int64) []ScriptRun {
	return workload.Script(man, rounds, seed)
}

// Build compiles and links an app under the given configuration. The
// per-method stages (compile, outline, rewrite verification, image lint)
// fan out on Config.Workers goroutines — <= 0 selects GOMAXPROCS — and
// the linked image is byte-identical for every width.
func Build(app *App, cfg Config) (*BuildResult, error) { return core.Build(app, cfg) }

// BuildCtx is Build with cooperative cancellation: every parallel stage
// checks ctx before starting each per-method task, so a cancelled or
// deadline-expired context stops the build promptly and returns ctx.Err().
// A build that completes is byte-identical to Build's — the context
// changes scheduling, never output. This is what calibrod threads each
// job's deadline through.
func BuildCtx(ctx context.Context, app *App, cfg Config) (*BuildResult, error) {
	return core.BuildCtx(ctx, app, cfg)
}

// ProfileGuidedBuild runs the Figure 6 loop: build, profile the script,
// rebuild with hot-function filtering.
func ProfileGuidedBuild(app *App, cfg Config, script []ScriptRun) (*BuildResult, *Profile, error) {
	return core.ProfileGuidedBuild(app, cfg, script)
}

// Configuration constructors mirroring the paper's evaluation ladder.
var (
	// Baseline is the original AOSP configuration with all available code
	// size optimization enabled.
	Baseline = core.Baseline
	// CTOOnly adds compilation-time outlining of the ART patterns.
	CTOOnly = core.CTOOnly
	// CTOLTBO adds linking-time binary outlining with one global tree.
	CTOLTBO = core.CTOLTBO
	// CTOLTBOPl uses K paralleled suffix trees (PlOpti).
	CTOLTBOPl = core.CTOLTBOPl
)

// FullOptimization is CTO+LTBO+PlOpti; pair with ProfileGuidedBuild to add
// HfOpti.
func FullOptimization(trees int) Config { return core.CTOLTBOPl(trees) }

// NewCache returns a compilation cache for Config.Cache. With dir == ""
// the cache lives in memory and dies with the process — enough to make
// the second build of a ProfileGuidedBuild, or any rebuild in the same
// process, compile warm. A non-empty dir persists every entry to that
// directory (created if needed) for cross-process warm starts; corrupt or
// version-skewed files are detected by checksum and read as misses, so a
// damaged cache can slow a build down but never break it.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return cache.New(), nil
	}
	return cache.NewDir(dir)
}

// NewTracer returns a live build tracer. Assign it to Config.Tracer before
// Build; afterwards Tracer.WriteTrace exports a Perfetto-loadable Chrome
// trace and Tracer.Snapshot / Tracer.WriteMetrics aggregate the metrics.
// Tracing never changes the built image: output is byte-identical with a
// live tracer, a nil tracer, and any Config.Workers value.
func NewTracer() *Tracer { return obs.New() }

// Execute runs a built image on the emulated device.
func Execute(img *Image, entry MethodID, args []int64) (RunResult, error) {
	return emu.New(img).Run(entry, args)
}

// Interpret runs the reference bytecode interpreter, the semantic oracle
// every binary transformation is validated against.
func Interpret(app *App, entry MethodID, args []int64) (InterpResult, error) {
	ip := &hgraph.Interp{App: app, MaxDepth: 10_000}
	return ip.Run(entry, args)
}

// CollectProfile profiles a script on an image (simpleperf stand-in).
func CollectProfile(img *Image, script []ScriptRun) (*Profile, error) {
	return profiler.Collect(img, script, 0)
}

// AnalyzeRedundancy performs the §2.2 code-redundancy study on a build.
// bounded=false reproduces the idealized Table 1 estimate; bounded=true
// applies the outliner's correctness constraints.
func AnalyzeRedundancy(res *BuildResult, bounded bool) *Analysis {
	return outline.Analyze(res.Methods, bounded)
}

// CountPatterns counts the Figure 4 ART-specific pattern sites in a
// (pre-CTO) build.
func CountPatterns(res *BuildResult) PatternCounts {
	return outline.CountPatterns(res.Methods)
}

// LintImage statically verifies a linked image — CFG recovery,
// control-flow integrity, and the stack/register dataflow checks — and
// returns the findings that should block loading it (warnings and
// errors). It needs nothing but the image, so it works on untrusted or
// cached images long after the build that produced them.
func LintImage(img *Image) []Finding { return analysis.Lint(img) }

// LintImageParallel is LintImage with an explicit worker count (<= 0
// selects GOMAXPROCS); findings and their order do not depend on it.
func LintImageParallel(img *Image, workers int) []Finding {
	return analysis.LintParallel(img, workers)
}

// AnalyzeImage runs the same verifier and returns the full report,
// including advisory findings and per-method CFG statistics.
func AnalyzeImage(img *Image) *LintReport { return analysis.Analyze(img) }

// AnalyzeImageParallel is AnalyzeImage with an explicit worker count
// (<= 0 selects GOMAXPROCS); the report does not depend on it.
func AnalyzeImageParallel(img *Image, workers int) *LintReport {
	return analysis.AnalyzeParallel(img, workers)
}

// RecoverCFG reconstructs one method's control-flow graph from a linked
// image's decoded instructions, with any findings recovery produced.
func RecoverCFG(img *Image, id MethodID) (*CFG, []Finding) {
	return analysis.MethodCFG(img, id)
}

// BuildCallGraph recovers the whole-image interprocedural call graph from
// a linked image's machine code: direct calls, outlined-call edges
// replayed through the outlined bodies, and java-call dispatch resolved
// from the materialized ArtMethod constants. Unresolvable sites become
// conservative unknown edges and advisory findings, never guesses.
func BuildCallGraph(img *Image) (*CallGraph, []Finding) {
	return analysis.BuildCallGraph(img)
}

// DebloatImage rewrites a linked image, removing every method body,
// outlined function, and thunk provably unreachable from the configured
// roots. It refuses unsound inputs, removes nothing on analysis
// imprecision, and re-verifies its output with the full lint. The pass is
// idempotent: debloating a debloated image is byte-identical.
func DebloatImage(img *Image, cfg DebloatConfig) (*Image, *DebloatStats, error) {
	return core.DebloatImage(img, cfg)
}

// ReoutlineImage re-outlines an already-linked image with no access to
// compile-time state: it lifts every precisely-recovered method back into
// rewritable form (inlining existing outlined bodies), re-runs the suffix
// detector, relinks preserving region order, and re-verifies the result
// against the input with the paired equivalence rules. Imprecise methods
// are byte-preserved. The pass is idempotent: re-outlining a re-outlined
// image is byte-identical.
func ReoutlineImage(img *Image, cfg ReoutlineConfig) (*Image, *ReoutlineStats, error) {
	return core.ReoutlineImage(img, cfg)
}

// LintRules lists the registered oatlint rules in registration order.
func LintRules() []LintRule { return analysis.Rules() }

// ParseLintRules parses the oatlint -rules grammar into a rule spec:
// comma-separated directives ("all", "legacy", "interproc", NAME, -NAME,
// NAME=info|warn|error) applied onto the default legacy set.
func ParseLintRules(spec string) (*LintRuleSpec, error) {
	return analysis.ParseRuleSpec(spec)
}

// LintWithRules runs the pluggable rule engine over an image: the spec
// selects and re-grades rules (nil means the legacy set, reproducing
// AnalyzeImage exactly), and roots configures the interprocedural rules
// (the zero RootSet means no-caller inference).
func LintWithRules(img *Image, spec *LintRuleSpec, roots RootSet) (*LintReport, error) {
	return analysis.RunRules(context.Background(), img, spec, roots, 0, nil)
}

// MarshalImage serializes an image to the on-disk ELF OAT format.
func MarshalImage(img *Image) ([]byte, error) { return img.Marshal() }

// UnmarshalImage parses a serialized OAT image.
func UnmarshalImage(data []byte) (*Image, error) { return oat.Unmarshal(data) }

// MarshalApp serializes an app to the binary dex container format.
func MarshalApp(app *App) ([]byte, error) { return dex.Marshal(app) }

// UnmarshalApp parses a binary dex container.
func UnmarshalApp(data []byte) (*App, error) { return dex.UnmarshalApp(data) }

// Assemble parses the smali-like text format into an app.
func Assemble(src string) (*App, error) { return dex.ParseText(src) }

// Disassemble renders an app in the smali-like text format.
func Disassemble(app *App) string { return dex.DumpText(app) }
