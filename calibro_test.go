package calibro

import (
	"reflect"
	"testing"
)

// TestPublicAPIEndToEnd exercises the full public surface the way the
// README quick start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	prof, ok := AppProfileByName("Taobao", 0.03)
	if !ok {
		t.Fatal("profile lookup failed")
	}
	app, man, err := GenerateApp(prof)
	if err != nil {
		t.Fatal(err)
	}
	script := Script(man, 2, 1)

	base, err := Build(app, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := ProfileGuidedBuild(app, FullOptimization(4), script)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TextBytes() >= base.TextBytes() {
		t.Errorf("no reduction: %d >= %d", opt.TextBytes(), base.TextBytes())
	}
	if opt.Outline == nil || opt.Outline.OutlinedFunctions == 0 {
		t.Error("no outlining happened")
	}

	// Behaviour equivalence through the public API.
	for _, run := range script {
		want, err := Interpret(app, run.Entry, run.Args[:])
		if err != nil {
			t.Fatal(err)
		}
		for _, img := range []*Image{base.Image, opt.Image} {
			got, err := Execute(img, run.Entry, run.Args[:])
			if err != nil {
				t.Fatal(err)
			}
			if got.Ret != want.Ret || got.Exc != want.Exc || !reflect.DeepEqual(got.Log, want.Log) {
				t.Fatalf("execution diverges from interpreter")
			}
		}
	}

	// Analysis APIs.
	a := AnalyzeRedundancy(base, false)
	if a.EstimatedReduction <= 0 {
		t.Error("no estimated redundancy")
	}
	pc := CountPatterns(base)
	if pc.JavaCall == 0 || pc.StackCheck == 0 {
		t.Errorf("pattern counting inert: %+v", pc)
	}

	// Serialization round trip.
	data, err := MarshalImage(opt.Image)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Text, opt.Image.Text) {
		t.Error("image text did not round trip")
	}
	res, err := Execute(back, script[0].Entry, script[0].Args[:])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Interpret(app, script[0].Entry, script[0].Args[:])
	if res.Ret != want.Ret {
		t.Error("unmarshaled image misbehaves")
	}

	// Profiling API.
	p, err := CollectProfile(base.Image, script)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples == 0 || len(p.HotSet(0.8)) == 0 {
		t.Error("profiler inert")
	}
}

func TestExceptionsExported(t *testing.T) {
	if ExcNone.String() != "none" || ExcNullPointer.String() != "null-pointer" ||
		ExcArrayBounds.String() != "array-bounds" || ExcStackOverflow.String() != "stack-overflow" {
		t.Error("exception names broken")
	}
}

// TestFullScaleKuaishou is the soak test: the largest app at full
// reproduction scale through the complete pipeline, with behavioural
// verification. Skipped under -short.
func TestFullScaleKuaishou(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale soak test")
	}
	prof, _ := AppProfileByName("Kuaishou", 1.0)
	app, man, err := GenerateApp(prof)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(app, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	script := Script(man, 2, 1)
	opt, _, err := ProfileGuidedBuild(app, FullOptimization(8), script)
	if err != nil {
		t.Fatal(err)
	}
	red := float64(base.TextBytes()-opt.TextBytes()) / float64(base.TextBytes())
	if red < 0.10 || red > 0.35 {
		t.Errorf("full-scale reduction %.2f%% outside the plausible band", 100*red)
	}
	t.Logf("Kuaishou full scale: %d -> %d bytes (%.2f%%), %d methods, %d outlined functions",
		base.TextBytes(), opt.TextBytes(), 100*red, app.NumMethods(), opt.Outline.OutlinedFunctions)
	for _, r := range script[:2] {
		want, err := Interpret(app, r.Entry, r.Args[:])
		if err != nil {
			t.Fatal(err)
		}
		got, err := Execute(opt.Image, r.Entry, r.Args[:])
		if err != nil {
			t.Fatal(err)
		}
		if want.Ret != got.Ret || want.Exc != got.Exc || len(want.Log) != len(got.Log) {
			t.Fatal("full-scale image diverges from interpreter")
		}
	}
}

// TestAssembleDisassemble exercises the text-format public API.
func TestAssembleDisassemble(t *testing.T) {
	app, err := Assemble(`
.app T
.file f.dex
.class LX
.method m regs=2 ins=1
    mul v0, v1, v1
    return v0
.end method
.end class
.end file
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Interpret(app, 0, []int64{9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 81 {
		t.Errorf("ret = %d", res.Ret)
	}
	back, err := Assemble(Disassemble(app))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalApp(back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalApp(data); err != nil {
		t.Fatal(err)
	}
}

// TestLintPublicAPI exercises the oatlint surface: LintImage on a clean
// build, AnalyzeImage statistics, and per-method CFG recovery.
func TestLintPublicAPI(t *testing.T) {
	app, err := Assemble(`
.app L
.file f.dex
.class LX
.method m regs=3 ins=1
    const v0, 7
    if-lt v2, v0, :low
    mul v1, v2, v0
    return v1
  :low
    return v0
.end method
.end class
.end file
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(app, CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	if fs := LintImage(res.Image); len(fs) != 0 {
		t.Fatalf("clean image has findings: %v", fs)
	}
	rep := AnalyzeImage(res.Image)
	if len(rep.Methods) != 1 || rep.Methods[0].Blocks < 3 {
		t.Errorf("report: %+v", rep.Methods)
	}
	cfg, fs := RecoverCFG(res.Image, 0)
	for _, f := range fs {
		if f.Severity >= SevWarn {
			t.Errorf("CFG recovery: %s", f)
		}
	}
	if cfg == nil || len(cfg.Blocks) < 3 {
		t.Fatalf("expected a branching CFG, got %+v", cfg)
	}

	// A corrupted image produces findings through the same surface.
	res.Image.Text[res.Image.Methods[0].Offset/4] = 0xFFFF_FFFF
	if fs := LintImage(res.Image); len(fs) == 0 {
		t.Error("corrupted image lints clean")
	}
}
