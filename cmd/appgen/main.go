// Command appgen generates a synthetic application and prints its shape:
// the dex-level statistics, the pattern-site densities the workload is
// calibrated to, and (with -dump) selected method bodies. It exists to make
// the experiment inputs inspectable.
//
// Usage:
//
//	appgen -app Meituan -scale 0.1 [-dump 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/outline"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("appgen: ")
	var (
		appName = flag.String("app", "Wechat", "app profile name")
		scale   = flag.Float64("scale", 0.1, "scale factor")
		seed    = flag.Int64("seed", 0, "override the profile seed")
		methods = flag.Int("methods", 0, "override the method count")
		dump    = flag.Int("dump", 0, "print the bytecode of this many methods")
		outPath = flag.String("o", "", "write the app in the binary dex container format")
		text    = flag.Bool("text", false, "dump the whole app in the smali-like text format")
	)
	flag.Parse()

	prof, ok := workload.AppByName(*appName, *scale)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}
	if *seed != 0 {
		prof.Seed = *seed
	}
	if *methods != 0 {
		prof.Methods = *methods
	}
	app, man, err := workload.Generate(prof)
	if err != nil {
		log.Fatal(err)
	}
	st := app.CollectStats()
	fmt.Printf("%s: %d methods (%d native), %d classes, %d dex instructions\n",
		app.Name, st.Methods, st.Native, st.Classes, st.Insns)
	fmt.Printf("drivers: %v\nhot kernels: %d methods\n", man.Drivers, len(man.Hot))

	compiled, err := codegen.Compile(app, codegen.Options{Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	var words int
	for _, cm := range compiled {
		words += len(cm.Code)
	}
	pc := outline.CountPatterns(compiled)
	n := float64(st.Methods - st.Native)
	fmt.Printf("compiled: %d instruction words (%.1f per method)\n", words, float64(words)/n)
	fmt.Printf("pattern densities per method: java-call %.2f, stack-check %.2f, allocObject %.2f\n",
		float64(pc.JavaCall)/n, float64(pc.StackCheck)/n, float64(pc.NativeAlloc)/n)
	fmt.Printf("(paper WeChat: 5.78, 0.99, 1.25)\n")

	if *text {
		fmt.Print(dex.DumpText(app))
	}
	if *outPath != "" {
		data, err := dex.Marshal(app)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *outPath, len(data))
	}

	for id := 0; id < *dump && id < len(app.Methods); id++ {
		m := app.Methods[id]
		fmt.Printf("\nmethod m%d %s (regs=%d ins=%d native=%v):\n", id, m.FullName(), m.NumRegs, m.NumIns, m.Native)
		for addr, in := range m.Code {
			fmt.Printf("  %4d: %v\n", addr, in)
		}
	}
}
