// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark results can be archived and diffed across
// commits. Every input line is echoed to stdout unchanged — the command
// sits transparently at the end of a pipe — and the parsed results are
// written to the -o file (default benchmarks.json).
//
// Usage:
//
//	go test -bench=. . | benchjson -o BENCH.json            # overwrite
//	go test -bench=. . | benchjson -append -o BENCH.json    # accumulate
//
// Without -append the file holds one flat {"results": [...]} document and
// every invocation replaces it. With -append the file holds a history:
// {"runs": [{"time", "host_cpus", "go_max_procs", "go_version", "note",
// "results"}, ...]} and every invocation adds one timestamped run. A flat
// legacy file is migrated in place: its results become the first run
// (with no timestamp or host metadata, since none were recorded). The
// host_cpus field is what makes wall-clock numbers comparable across
// machines — a flat -j ladder on a 1-CPU builder is expected, not a
// regression, and without the CPU count next to the numbers that is
// indistinguishable from the scaling bug the ladder exists to catch.
//
// Parsed per benchmark: the name (with the trailing -GOMAXPROCS tag
// kept, since it is part of the measurement), iteration count, ns/op,
// and any extra metrics reported with b.ReportMetric (bytes/op, allocs/op,
// methods/s, ...).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchLine matches one result line: name, iterations, ns/op, and the
// remainder holding optional extra metrics.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// extraMetric matches one "<value> <unit>" pair in the remainder.
var extraMetric = regexp.MustCompile(`([0-9.]+) (\S+)`)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// run is one archived benchmark invocation in append mode.
type run struct {
	Time       string   `json:"time,omitempty"` // RFC 3339 UTC; empty for migrated legacy results
	HostCPUs   int      `json:"host_cpus,omitempty"`
	GoMaxProcs int      `json:"go_max_procs,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Note       string   `json:"note,omitempty"`
	Results    []result `json:"results"`
}

// document is both on-disk shapes: exactly one of Results (flat,
// overwrite mode) or Runs (history, append mode) is populated.
type document struct {
	Results []result `json:"results,omitempty"`
	Runs    []run    `json:"runs,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "benchmarks.json", "write the parsed results to this file")
	appendMode := flag.Bool("append", false, "append a timestamped run to -o instead of overwriting it")
	note := flag.String("note", "", "free-form label stored with the run (append mode only)")
	flag.Parse()

	results := parseStdin()
	if len(results) == 0 {
		log.Fatal("no benchmark results on stdin")
	}

	var doc document
	if *appendMode {
		doc = loadHistory(*out)
		doc.Runs = append(doc.Runs, run{
			Time:       time.Now().UTC().Format(time.RFC3339),
			HostCPUs:   runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			Note:       *note,
			Results:    results,
		})
	} else {
		doc = document{Results: results}
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	if *appendMode {
		fmt.Fprintf(os.Stderr, "benchjson: appended run %d (%d results) to %s\n",
			len(doc.Runs), len(results), *out)
	} else {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}

// parseStdin echoes every line and collects the benchmark result lines.
func parseStdin() []result {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, em := range extraMetric.FindAllStringSubmatch(strings.TrimSpace(m[4]), -1) {
			v, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[em[2]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return results
}

// loadHistory reads an existing archive for append mode. A missing file
// starts an empty history; a legacy flat document is migrated into the
// first run so old baselines stay diffable against new entries. Anything
// unparseable is fatal rather than silently clobbered.
func loadHistory(path string) document {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return document{}
	}
	if err != nil {
		log.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		log.Fatalf("existing %s is not a benchjson document: %v", path, err)
	}
	if len(doc.Results) > 0 {
		doc.Runs = append([]run{{
			Note:    "migrated from pre-append flat archive; host metadata unrecorded",
			Results: doc.Results,
		}}, doc.Runs...)
		doc.Results = nil
	}
	return doc
}
