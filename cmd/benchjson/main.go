// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark results can be archived and diffed across
// commits. Every input line is echoed to stdout unchanged — the command
// sits transparently at the end of a pipe — and the parsed results are
// written to the -o file (default benchmarks.json).
//
// Usage:
//
//	go test -bench=. . | benchjson -o BENCH.json
//
// Parsed per benchmark: the name (with the trailing -GOMAXPROCS tag
// kept, since it is part of the measurement), iteration count, ns/op,
// and any extra metrics reported with b.ReportMetric (bytes/op, allocs/op,
// methods/s, ...).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one result line: name, iterations, ns/op, and the
// remainder holding optional extra metrics.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// extraMetric matches one "<value> <unit>" pair in the remainder.
var extraMetric = regexp.MustCompile(`([0-9.]+) (\S+)`)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Results []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "benchmarks.json", "write the parsed results to this file")
	flag.Parse()

	doc := document{Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, em := range extraMetric.FindAllStringSubmatch(strings.TrimSpace(m[4]), -1) {
			v, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[em[2]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Fatal("no benchmark results on stdin")
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}
