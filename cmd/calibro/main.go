// Command calibro builds a synthetic Android application under a selected
// optimization configuration and reports code size, build time, outlining
// statistics, and (optionally) runtime cycle counts and memory usage
// measured on the emulated device.
//
// Usage:
//
//	calibro -app Wechat [-scale 0.25] [-config baseline|cto|ltbo|plopti|hfopti]
//	        [-trees 8] [-j N] [-runs 20] [-measure] [-o out.oat]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibro: ")
	var (
		appName = flag.String("app", "Wechat", "app profile name (Toutiao, Taobao, Fanqie, Meituan, Kuaishou, Wechat)")
		inPath  = flag.String("i", "", "build this dex container file instead of generating an app")
		scale   = flag.Float64("scale", 0.25, "app scale factor (1.0 = full reproduction scale)")
		config  = flag.String("config", "plopti", "baseline | cto | ltbo | plopti | hfopti")
		trees   = flag.Int("trees", 8, "parallel suffix trees for plopti/hfopti")
		workers = flag.Int("j", 0, "build worker goroutines; 0 = all CPUs (output is identical for every value)")
		rounds  = flag.Int("rounds", 1, "outlining rounds")
		dedup   = flag.Bool("dedup", false, "merge identical outlined functions across trees")
		runs    = flag.Int("runs", 20, "scripted runs for profiling/measurement")
		measure = flag.Bool("measure", false, "run the script on the emulator and report cycles/memory")
		outPath = flag.String("o", "", "write the linked OAT image to this file")
	)
	flag.Parse()

	var app *dex.App
	var man *workload.Manifest
	if *inPath != "" {
		data, err := os.ReadFile(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		if len(data) >= 4 && string(data[:4]) == "dex\n" {
			app, err = dex.UnmarshalApp(data)
		} else {
			app, err = dex.ParseText(string(data))
		}
		if err != nil {
			log.Fatal(err)
		}
		// Convention: the leading methods are the activities; smaller
		// hand-written apps may have fewer than three.
		n := 3
		if app.NumMethods() < n {
			n = app.NumMethods()
		}
		man = &workload.Manifest{}
		for i := 0; i < n; i++ {
			man.Drivers = append(man.Drivers, dex.MethodID(i))
		}
	} else {
		prof, ok := workload.AppByName(*appName, *scale)
		if !ok {
			log.Fatalf("unknown app %q", *appName)
		}
		var err error
		app, man, err = workload.Generate(prof)
		if err != nil {
			log.Fatal(err)
		}
	}
	stats := app.CollectStats()
	fmt.Printf("app %s: %d methods (%d native), %d dex instructions\n",
		app.Name, stats.Methods, stats.Native, stats.Insns)

	script := workload.Script(man, *runs, 1)
	tune := func(c core.Config) core.Config {
		c.Rounds = *rounds
		c.DedupFunctions = *dedup
		c.Workers = *workers
		return c
	}
	var res *core.Result
	var err error
	switch *config {
	case "baseline":
		res, err = core.Build(app, tune(core.Baseline()))
	case "cto":
		res, err = core.Build(app, tune(core.CTOOnly()))
	case "ltbo":
		res, err = core.Build(app, tune(core.CTOLTBO()))
	case "plopti":
		res, err = core.Build(app, tune(core.CTOLTBOPl(*trees)))
	case "hfopti":
		res, _, err = core.ProfileGuidedBuild(app, tune(core.CTOLTBOPl(*trees)), script)
	default:
		log.Fatalf("unknown config %q", *config)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("config %s: text %s, build %s at -j %d (compile %s, outline %s, link %s)\n",
		*config, report.Bytes(res.TextBytes()), report.Dur(res.TotalTime()), res.Workers,
		report.Dur(res.CompileTime), report.Dur(res.OutlineTime), report.Dur(res.LinkTime))
	if s := res.Outline; s != nil {
		fmt.Printf("outlining: %d candidates, %d functions, %d occurrences, net %d words saved\n",
			s.CandidateMethods, s.OutlinedFunctions, s.OutlinedOccurrences, s.NetWordsSaved())
	}

	if *measure {
		m := emu.New(res.Image)
		var cycles, insts int64
		pages := 0
		for _, r := range script {
			out, err := m.Run(r.Entry, r.Args[:])
			if err != nil {
				log.Fatalf("run m%d: %v", r.Entry, err)
			}
			cycles += out.Cycles
			insts += out.Insts
			if out.CodePages+out.DataPages > pages {
				pages = out.CodePages + out.DataPages
			}
		}
		fmt.Printf("measured: %s cycles, %s instructions over %d runs; peak resident %s\n",
			report.Count(cycles), report.Count(insts), len(script),
			report.Bytes(pages*4096))
	}

	if *outPath != "" {
		data, err := res.Image.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%s on disk)\n", *outPath, report.Bytes(len(data)))
	}
}
