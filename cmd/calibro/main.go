// Command calibro builds a synthetic Android application under a selected
// optimization configuration and reports code size, build time, outlining
// statistics, and (optionally) runtime cycle counts and memory usage
// measured on the emulated device.
//
// Usage:
//
//	calibro -app Wechat [-scale 0.25] [-config baseline|cto|ltbo|plopti|hfopti]
//	        [-trees 8] [-shards 1] [-j N] [-runs 20] [-measure] [-o out.oat]
//	        [-trace t.json] [-metrics m.json] [-stats] [-pprof cpu.out|mem.out]
//	        [-cache] [-cache-dir DIR] [-remote-cache URL]
//	calibro -debloat app.oat [-roots 0,1,2] [-reoutline] [-o smaller.oat]
//	calibro -app Wechat -config cto -reoutline [-o out.oat]
//
// Telemetry: -trace writes a Chrome trace-event JSON of the whole build
// (open in Perfetto or chrome://tracing; worker lanes appear as threads),
// -metrics writes the flat metrics snapshot (per-stage totals, per-method
// p50/p95/max, pool queue wait, outline counters), -stats prints a
// one-screen telemetry table, and -pprof collects a runtime/pprof profile
// of the process (a file name starting with "mem" selects a heap
// snapshot, anything else a CPU profile).
//
// Caching: -cache routes the compile stage through an in-memory
// content-addressed compilation cache (the hfopti rebuild then compiles
// warm); -cache-dir persists the cache to a directory so the next calibro
// invocation with unchanged inputs skips per-method code generation
// entirely; -remote-cache additionally consults a shared calibrocached
// store, so one machine's compile warms every machine's. The linked image
// is byte-identical with the cache cold, warm, remote, or absent.
//
// Debloating: -debloat takes an already linked OAT image instead of
// building one, removes every method body, outlined function, and thunk
// provably unreachable from the -roots method set (default: every method
// with no recovered caller), re-verifies the result with the full oatlint
// pass, and writes the smaller image with -o. The pass refuses unsound
// inputs and removes nothing when the analysis is imprecise.
//
// Re-outlining: -reoutline additionally runs the post-hoc re-outliner on
// whatever image the invocation produced — the freshly built one, or the
// debloated one when composed with -debloat. The pass lifts every method
// the legality mask admits back into rewritable form, re-runs the
// link-time detector over it, relinks, and re-verifies against the input
// with the paired lint rules; methods it cannot prove liftable ride
// through byte-for-byte.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/workload"
)

// errUsage marks a flag-parse failure the flag package already reported;
// main exits 2 without printing it again.
var errUsage = errors.New("usage error")

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibro: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the testable entry point: the whole build-and-report flow with
// its output on out and every failure returned rather than fatal'd.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibro", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		appName = fs.String("app", "Wechat", "app profile name (Toutiao, Taobao, Fanqie, Meituan, Kuaishou, Wechat)")
		inPath  = fs.String("i", "", "build this dex container file instead of generating an app")
		scale   = fs.Float64("scale", 0.25, "app scale factor (1.0 = full reproduction scale)")
		config  = fs.String("config", "plopti", "baseline | cto | ltbo | plopti | hfopti")
		trees   = fs.Int("trees", 8, "parallel suffix trees for plopti/hfopti")
		shards  = fs.Int("shards", 1, "detection shards per tree; 1 = exact global structure, N>=2 parallelizes detection (Table 6 tradeoff)")
		workers = fs.Int("j", 0, "build worker goroutines; 0 = all CPUs (output is identical for every value)")
		rounds  = fs.Int("rounds", 1, "outlining rounds")
		dedup   = fs.Bool("dedup", false, "merge identical outlined functions across trees")
		runs    = fs.Int("runs", 20, "scripted runs for profiling/measurement")
		measure = fs.Bool("measure", false, "run the script on the emulator and report cycles/memory")
		outPath = fs.String("o", "", "write the linked OAT image to this file")

		tracePath   = fs.String("trace", "", "write a Chrome trace-event JSON of the build to this file (Perfetto-loadable)")
		metricsPath = fs.String("metrics", "", "write the flat metrics snapshot JSON to this file")
		statsFlag   = fs.Bool("stats", false, "print the build telemetry table")
		pprofPath   = fs.String("pprof", "", "collect a runtime/pprof profile (mem* = heap at exit, otherwise CPU)")

		cacheFlag   = fs.Bool("cache", false, "compile through an in-memory compilation cache (hfopti's rebuild compiles warm)")
		cacheDir    = fs.String("cache-dir", "", "persist the compilation cache in this directory for cross-process warm rebuilds (implies -cache)")
		remoteCache = fs.String("remote-cache", "", "calibrocached base URL to share compilations with a fleet (implies -cache); failures degrade to misses")

		debloatPath = fs.String("debloat", "", "debloat this existing OAT image instead of building: remove code unreachable from -roots and write the result to -o")
		rootsSpec   = fs.String("roots", "", "comma-separated method IDs rooting the debloat reachability (default: no-caller inference)")
		reoutline   = fs.Bool("reoutline", false, "additionally re-outline the produced image post hoc (after the build, or after -debloat)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	var cc *cache.Cache
	if *cacheDir != "" {
		var err error
		if cc, err = cache.NewDir(*cacheDir); err != nil {
			return err
		}
	} else if *cacheFlag || *remoteCache != "" {
		cc = cache.New()
	}
	if cc != nil && *remoteCache != "" {
		cc.SetRemote(cache.NewRemote(cache.RemoteConfig{URL: *remoteCache}))
	}

	var stopProfile func() error
	if *pprofPath != "" {
		stop, err := obs.StartProfile(*pprofPath)
		if err != nil {
			return err
		}
		stopProfile = stop
	}

	var tracer *obs.Tracer
	if *tracePath != "" || *metricsPath != "" || *statsFlag {
		tracer = obs.New()
	}

	if *debloatPath != "" {
		if err := runDebloat(out, *debloatPath, *rootsSpec, *outPath, *reoutline, *workers, tracer); err != nil {
			return err
		}
		return flushTelemetry(out, tracer, *tracePath, *metricsPath, *statsFlag, stopProfile, *pprofPath)
	}

	var app *dex.App
	var man *workload.Manifest
	if *inPath != "" {
		data, err := os.ReadFile(*inPath)
		if err != nil {
			return err
		}
		if len(data) >= 4 && string(data[:4]) == "dex\n" {
			app, err = dex.UnmarshalApp(data)
		} else {
			app, err = dex.ParseText(string(data))
		}
		if err != nil {
			return err
		}
		// Convention: the leading methods are the activities; smaller
		// hand-written apps may have fewer than three.
		n := 3
		if app.NumMethods() < n {
			n = app.NumMethods()
		}
		man = &workload.Manifest{}
		for i := 0; i < n; i++ {
			man.Drivers = append(man.Drivers, dex.MethodID(i))
		}
	} else {
		prof, ok := workload.AppByName(*appName, *scale)
		if !ok {
			return fmt.Errorf("unknown app %q", *appName)
		}
		var err error
		app, man, err = workload.Generate(prof)
		if err != nil {
			return err
		}
	}
	stats := app.CollectStats()
	fmt.Fprintf(out, "app %s: %d methods (%d native), %d dex instructions\n",
		app.Name, stats.Methods, stats.Native, stats.Insns)

	script := workload.Script(man, *runs, 1)
	tune := func(c core.Config) core.Config {
		c.Rounds = *rounds
		c.DetectShards = *shards
		c.DedupFunctions = *dedup
		c.Workers = *workers
		c.Tracer = tracer
		c.Cache = cc
		return c
	}
	var res *core.Result
	var err error
	switch *config {
	case "baseline":
		res, err = core.Build(app, tune(core.Baseline()))
	case "cto":
		res, err = core.Build(app, tune(core.CTOOnly()))
	case "ltbo":
		res, err = core.Build(app, tune(core.CTOLTBO()))
	case "plopti":
		res, err = core.Build(app, tune(core.CTOLTBOPl(*trees)))
	case "hfopti":
		res, _, err = core.ProfileGuidedBuild(app, tune(core.CTOLTBOPl(*trees)), script)
	default:
		return fmt.Errorf("unknown config %q", *config)
	}
	if err != nil {
		return err
	}
	if *reoutline {
		img, err := applyReoutline(out, res.Image, *workers, tracer)
		if err != nil {
			return err
		}
		res.Image = img
	}

	fmt.Fprintf(out, "config %s: text %s, build %s at -j %d (compile %s, outline %s, link %s; stage sum %s)\n",
		*config, report.Bytes(res.TextBytes()), report.Dur(res.WallTime), res.Workers,
		report.Dur(res.CompileTime), report.Dur(res.OutlineTime), report.Dur(res.LinkTime),
		report.Dur(res.StageTime()))
	if s := res.Outline; s != nil {
		fmt.Fprintf(out, "outlining: %d candidates, %d functions, %d occurrences, net %d words saved\n",
			s.CandidateMethods, s.OutlinedFunctions, s.OutlinedOccurrences, s.NetWordsSaved())
	}
	if cc != nil {
		s := cc.Stats()
		fmt.Fprintf(out, "cache: %d hits (%d from disk), %d misses, %d entries, %s stored",
			s.Hits, s.DiskHits, s.Misses, s.Entries, report.Bytes(int(s.BytesStored)))
		if s.Corrupt > 0 {
			fmt.Fprintf(out, "; %d corrupt entries recompiled", s.Corrupt)
		}
		fmt.Fprintln(out)
	}

	if *measure {
		m := emu.New(res.Image)
		var cycles, insts int64
		pages := 0
		for _, r := range script {
			ro, err := m.Run(r.Entry, r.Args[:])
			if err != nil {
				return fmt.Errorf("run m%d: %v", r.Entry, err)
			}
			cycles += ro.Cycles
			insts += ro.Insts
			if ro.CodePages+ro.DataPages > pages {
				pages = ro.CodePages + ro.DataPages
			}
		}
		fmt.Fprintf(out, "measured: %s cycles, %s instructions over %d runs; peak resident %s\n",
			report.Count(cycles), report.Count(insts), len(script),
			report.Bytes(pages*4096))
	}

	if *outPath != "" {
		data, err := res.Image.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%s on disk)\n", *outPath, report.Bytes(len(data)))
	}

	return flushTelemetry(out, tracer, *tracePath, *metricsPath, *statsFlag, stopProfile, *pprofPath)
}

// flushTelemetry writes the telemetry outputs shared by the build and
// debloat paths: the -stats table, the -trace and -metrics files, and
// the -pprof profile.
func flushTelemetry(out io.Writer, tracer *obs.Tracer, tracePath, metricsPath string, statsFlag bool, stopProfile func() error, pprofPath string) error {
	if statsFlag {
		printTelemetry(out, tracer.Snapshot())
	}
	if tracePath != "" {
		if err := writeFileWith(tracePath, tracer.WriteTrace); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote trace %s\n", tracePath)
	}
	if metricsPath != "" {
		if err := writeFileWith(metricsPath, tracer.WriteMetrics); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics %s\n", metricsPath)
	}
	if stopProfile != nil {
		if err := stopProfile(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote profile %s\n", pprofPath)
	}
	return nil
}

// runDebloat implements -debloat: parse an existing OAT image, remove
// everything unreachable from the root set, report what was removed,
// optionally re-outline the survivor, and (with -o) write the smaller
// image.
func runDebloat(out io.Writer, inPath, rootsSpec, outPath string, reoutline bool, workers int, tracer *obs.Tracer) error {
	data, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	img, err := oat.Unmarshal(data)
	if err != nil {
		return err
	}
	cfg := core.DebloatConfig{Workers: workers, Tracer: tracer}
	if strings.TrimSpace(rootsSpec) == "" {
		cfg.NoCallerRoots = true
	} else {
		for _, part := range strings.Split(rootsSpec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			id, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				return fmt.Errorf("bad -roots entry %q: %v", part, err)
			}
			cfg.Roots = append(cfg.Roots, dex.MethodID(id))
		}
	}
	sp := tracer.Start("stage", "debloat").Arg("methods", int64(len(img.Methods)))
	res, stats, err := core.DebloatImage(img, cfg)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "debloat: text %s -> %s (%d bytes removed)\n",
		report.Bytes(stats.TextBefore), report.Bytes(stats.TextAfter),
		stats.TextBefore-stats.TextAfter)
	fmt.Fprintf(out, "removed: %d/%d methods, %d/%d outlined functions, %d/%d thunks\n",
		stats.MethodsRemoved, stats.MethodsTotal,
		stats.BlobsRemoved, stats.BlobsTotal,
		stats.ThunksRemoved, stats.ThunksTotal)
	if stats.Imprecise {
		fmt.Fprintln(out, "debloat: analysis was imprecise; everything kept")
	}
	if reoutline {
		if res, err = applyReoutline(out, res, workers, tracer); err != nil {
			return err
		}
	}
	if outPath != "" {
		data, err := res.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%s on disk)\n", outPath, report.Bytes(len(data)))
	}
	return nil
}

// applyReoutline runs the post-hoc re-outliner on an image and reports
// what it did, returning the rewritten image.
func applyReoutline(out io.Writer, img *oat.Image, workers int, tracer *obs.Tracer) (*oat.Image, error) {
	res, st, err := core.ReoutlineImage(img, core.ReoutlineConfig{Workers: workers, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "reoutline: text %s -> %s (%d bytes saved)\n",
		report.Bytes(st.TextBefore), report.Bytes(st.TextAfter), st.Saved())
	fmt.Fprintf(out, "reoutline: %d/%d methods lifted (%d frozen, %d stubs), %d functions created, %d retained, %d merged\n",
		st.MethodsLifted, st.MethodsTotal, st.MethodsFrozen, st.MethodsStub,
		st.BlobsCreated, st.BlobsRetained, st.BlobsDeduped)
	return res, nil
}

// writeFileWith streams an exporter into a freshly created file.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// usDur renders a microsecond count for the telemetry table. Below a
// second the report.Dur m/s style collapses everything to "0.0s", so
// small values switch to milliseconds.
func usDur(us int64) string {
	d := time.Duration(us) * time.Microsecond
	if d < time.Second && d > -time.Second {
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	}
	return report.Dur(d)
}

// printTelemetry renders the one-screen build telemetry table: stage wall
// clocks, per-category task distributions with their queue waits, worker
// occupancy, and the recorded counters.
func printTelemetry(out io.Writer, snap *obs.Snapshot) {
	t := &report.Table{
		Title:  "\nbuild telemetry",
		Header: []string{"span", "count", "total", "p50", "p95", "max"},
	}
	stages := make([]string, 0, len(snap.Stages))
	for name := range snap.Stages {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	for _, name := range stages {
		t.AddRow("stage "+name, "1", usDur(snap.Stages[name]), "", "", "")
	}
	cats := make([]string, 0, len(snap.Tasks))
	for cat := range snap.Tasks {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		ts := snap.Tasks[cat]
		t.AddRow(cat, fmt.Sprint(ts.Count), usDur(ts.TotalUS), usDur(ts.P50US), usDur(ts.P95US), usDur(ts.MaxUS))
		if qs, ok := snap.QueueWait[cat]; ok {
			t.AddRow("  queue wait", "", usDur(qs.TotalUS), usDur(qs.P50US), usDur(qs.P95US), usDur(qs.MaxUS))
		}
	}
	fmt.Fprintln(out, t)

	if len(snap.Workers) > 0 {
		w := &report.Table{
			Title:  "worker occupancy",
			Header: []string{"lane", "tasks", "busy", "of wall"},
		}
		for _, lo := range snap.Workers {
			w.AddRow(fmt.Sprintf("worker %d", lo.Lane), fmt.Sprint(lo.Tasks),
				usDur(lo.BusyUS), report.Pct(lo.Busy))
		}
		fmt.Fprintln(out, w)
	}

	if len(snap.Counters) > 0 {
		c := &report.Table{
			Title:  "counters",
			Header: []string{"counter", "value"},
		}
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c.AddRow(name, report.Count(snap.Counters[name]))
		}
		fmt.Fprintln(out, c)
	}
}
