package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/workload"
)

func TestRunUnknownApp(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-app", "NotAnApp"}, &buf)
	if err == nil || !strings.Contains(err.Error(), `unknown app "NotAnApp"`) {
		t.Fatalf("err = %v, want unknown app", err)
	}
}

func TestRunUnknownConfig(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-app", "Taobao", "-scale", "0.05", "-config", "turbo"}, &buf)
	if err == nil || !strings.Contains(err.Error(), `unknown config "turbo"`) {
		t.Fatalf("err = %v, want unknown config", err)
	}
}

func TestRunBadInputFile(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-i", filepath.Join(t.TempDir(), "nope.dex")}, &buf)
	if err == nil {
		t.Fatal("missing input file did not error")
	}
}

// TestRunHappyPath builds a marshaled container through the full CLI flow
// and checks the report lines land on the provided writer.
func TestRunHappyPath(t *testing.T) {
	prof, ok := workload.AppByName("Taobao", 0.05)
	if !ok {
		t.Fatal("Taobao profile missing")
	}
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	data, err := dex.Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "app.dex")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "app.oat")
	var buf strings.Builder
	if err := run([]string{"-i", in, "-config", "cto", "-o", out}, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	got := buf.String()
	for _, want := range []string{"app Taobao:", "config cto:", "wrote " + out} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("image file not written: %v", err)
	}
}

// TestRunDebloat drives the -debloat path end to end: build an image
// through the normal CLI flow, then debloat it rooted at the first
// activity and check the smaller image parses and reports removal.
func TestRunDebloat(t *testing.T) {
	prof, ok := workload.AppByName("Taobao", 0.05)
	if !ok {
		t.Fatal("Taobao profile missing")
	}
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	data, err := dex.Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "app.dex")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, "full.oat")
	var buf strings.Builder
	if err := run([]string{"-i", in, "-config", "ltbo", "-o", full}, &buf); err != nil {
		t.Fatalf("build: %v\noutput:\n%s", err, buf.String())
	}

	small := filepath.Join(dir, "small.oat")
	buf.Reset()
	if err := run([]string{"-debloat", full, "-roots", "0", "-o", small}, &buf); err != nil {
		t.Fatalf("debloat: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "debloat: text") || !strings.Contains(buf.String(), "removed:") {
		t.Errorf("debloat report missing:\n%s", buf.String())
	}
	fullData, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	smallData, err := os.ReadFile(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(smallData) > len(fullData) {
		t.Errorf("debloated image grew on disk: %d -> %d bytes", len(fullData), len(smallData))
	}
	if _, err := oat.Unmarshal(smallData); err != nil {
		t.Errorf("debloated image does not parse: %v", err)
	}

	// A malformed -roots entry is an error, not a silent default.
	if err := run([]string{"-debloat", full, "-roots", "zero"}, &strings.Builder{}); err == nil {
		t.Error("bad -roots entry did not error")
	}
}
