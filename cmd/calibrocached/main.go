// Command calibrocached is the fleet artifact store: a standalone daemon
// serving the content-addressed cache protocol that calibrod and calibro
// consume as their remote tier (-remote-cache). One calibrocached in
// front of a disk directory lets N daemons share compiled methods and
// whole build artifacts, and hosts the claim table their cross-daemon
// single-flight coalesces on.
//
// Usage:
//
//	calibrocached [-addr host:port] [-dir DIR] [-max-entries N]
//	              [-max-bytes N] [-claim-ttl d] [-max-body N]
//
// The store is the same two-tier (memory + optional disk) cache the
// compiler uses locally; -dir makes entries survive restarts. /metrics
// serves counters as JSON and, with ?format=prom, in the Prometheus text
// exposition format. On SIGINT/SIGTERM the daemon shuts down cleanly and
// exits 0 — clients degrade to building locally, never to failing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/cacheserver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibrocached:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibrocached", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", "127.0.0.1:7740", "listen address (port 0 picks a free port)")
		dir        = fs.String("dir", "", "persist entries in this directory; memory-only when empty")
		maxEntries = fs.Int("max-entries", 0, "evict oldest entries beyond this count; 0 = unbounded")
		maxBytes   = fs.Int64("max-bytes", 0, "evict oldest entries beyond this many bytes; 0 = unbounded")
		claimTTL   = fs.Duration("claim-ttl", time.Minute, "single-flight claim expiry; an unfulfilled claim frees up after this")
		maxBody    = fs.Int64("max-body", 0, "PUT body size limit in bytes; 0 = 256MiB default")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var store *cache.Cache
	if *dir != "" {
		var err error
		if store, err = cache.NewDir(*dir); err != nil {
			return err
		}
	} else {
		store = cache.New()
	}
	if *maxEntries > 0 || *maxBytes > 0 {
		store.SetLimits(*maxEntries, *maxBytes)
	}

	srv := cacheserver.New(cacheserver.Config{
		Store:    store,
		ClaimTTL: *claimTTL,
		MaxBody:  *maxBody,
	})

	// Listen before announcing, so -addr :0 resolves to the real port and
	// scripts can scrape it from the first output line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "calibrocached: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-httpErr:
		return err
	case <-ctx.Done():
	}
	stop()

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(out, "calibrocached: bye")
	return nil
}
