// Command calibroctl is the calibrod client: submit build, debloat, and
// reoutline jobs, wait for them, and fetch their artifacts over the
// daemon's HTTP API.
//
// Usage:
//
//	calibroctl [-addr host:port] <command> [flags]
//
// Commands:
//
//	submit   submit a job, print its ID
//	wait     long-poll a job until it is terminal
//	status   print a job's status JSON
//	stats    print a finished job's build stats JSON
//	fetch    download a finished job's OAT image
//	lint     print a finished job's lint findings
//	trace    print a job's lifecycle trace (Chrome trace JSON)
//	cancel   cancel a job
//	health   print the daemon's /healthz
//	metrics  print the daemon's /metrics (-prom for Prometheus text)
//
// submit prints the bare job ID on stdout so shells can do
// `id=$(calibroctl submit -app Taobao)`; everything else prints JSON.
// Exit status is 0 on success, 1 when a waited job ends non-done, 2 on
// usage or transport errors.
//
// Fleet mode: -fleet takes a comma-separated daemon list and routes each
// submit by consistent hash of its app/config/version, so repeat builds
// of the same app land on the same daemon's warm cache. A fleet submit
// prints ID@ADDR, and every job command accepts that form back — the
// address rides inside the ID, so `calibroctl -fleet ... wait $(...)`
// needs no extra bookkeeping. With a shared -remote-cache behind the
// daemons, a job landing on the "wrong" daemon still hits fleet-wide.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(errOut io.Writer) {
	fmt.Fprintln(errOut, `usage: calibroctl [-addr host:port | -fleet a:p,b:p,...] <command> [flags]

commands:
  submit   -app NAME | -dex FILE  [-config C] [-scale F] [-trees N] [-shards N]
           [-rounds N] [-dedup] [-j N] [-runs N] [-verify] [-lint] [-timeout d]
           [-version N] [-delta F]
           -kind debloat|reoutline -oat FILE  [-roots 0,1,2] rewrites an
           existing image instead of building one
  wait     JOB [-poll d]
  status   JOB
  stats    JOB
  fetch    JOB -o FILE
  lint     JOB
  trace    JOB
  cancel   JOB
  health
  metrics  [-prom]`)
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("calibroctl", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.Usage = func() { usage(errOut) }
	addr := fs.String("addr", "127.0.0.1:7723", "calibrod address")
	fleetList := fs.String("fleet", "", "comma-separated calibrod addresses; submits route by consistent hash, job IDs become ID@ADDR")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage(errOut)
		return 2
	}
	c := &client{base: "http://" + *addr, out: out, errOut: errOut}
	if *fleetList != "" {
		c.ring = fleet.New(fleet.ParseList(*fleetList), 0)
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(rest)
	case "wait":
		var st *jobStatus
		if st, err = c.wait(rest); err == nil && st.State != "done" {
			fmt.Fprintf(errOut, "calibroctl: job %s: %s: %s\n", st.ID, st.State, st.Error)
			return 1
		}
	case "status":
		err = c.getJSON1(rest, "status", "")
	case "stats":
		err = c.getJSON1(rest, "stats", "/stats")
	case "lint":
		err = c.getJSON1(rest, "lint", "/lint")
	case "trace":
		err = c.getJSON1(rest, "trace", "/trace")
	case "fetch":
		err = c.fetch(rest)
	case "cancel":
		err = c.cancel(rest)
	case "health":
		err = c.getJSON("/healthz")
	case "metrics":
		err = c.metrics(rest)
	default:
		fmt.Fprintf(errOut, "calibroctl: unknown command %q\n", cmd)
		usage(errOut)
		return 2
	}
	if err != nil {
		fmt.Fprintln(errOut, "calibroctl:", err)
		return 2
	}
	return 0
}

// jobStatus mirrors serve.JobStatus loosely; the client only steers on
// the state machine.
type jobStatus struct {
	ID    string          `json:"id"`
	State string          `json:"state"`
	Error string          `json:"error"`
	Stats json.RawMessage `json:"stats"`
}

type client struct {
	base   string
	ring   *fleet.Ring // nil outside fleet mode
	out    io.Writer
	errOut io.Writer
}

// jobBase resolves a job operand: an ID@ADDR form (what fleet submits
// print) carries its daemon inside, a bare ID goes to -addr.
func (c *client) jobBase(id string) (base, bare string) {
	if i := strings.LastIndexByte(id, '@'); i >= 0 {
		return "http://" + id[i+1:], id[:i]
	}
	return c.base, id
}

// apiErr turns a non-2xx response into an error carrying the server's
// message.
func apiErr(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(c.errOut)
	var (
		app     = fs.String("app", "", "benchmark app profile (Toutiao, Taobao, Fanqie, Meituan, Kuaishou, Wechat)")
		dexFile = fs.String("dex", "", "submit this dex container or assembly-text file instead of a profile")
		kind    = fs.String("kind", "", "job kind: build (default), debloat, reoutline")
		oatFile = fs.String("oat", "", "serialized OAT image a debloat or reoutline job rewrites")
		roots   = fs.String("roots", "", "comma-separated reachability root method IDs (debloat)")
		config  = fs.String("config", "plopti", "ladder config: baseline|cto|ltbo|plopti|hfopti")
		scale   = fs.Float64("scale", 0, "app scale; 0 = server default")
		trees   = fs.Int("trees", 0, "parallel suffix trees; 0 = server default")
		shards  = fs.Int("shards", 0, "detection shards per tree; 0/1 = exact global structure")
		rounds  = fs.Int("rounds", 0, "outlining rounds; 0 = default")
		dedup   = fs.Bool("dedup", false, "merge identical outlined functions")
		workers = fs.Int("j", 0, "per-build worker goroutines; 0 = server default")
		runs    = fs.Int("runs", 0, "hfopti profiling runs; 0 = server default")
		verify  = fs.Bool("verify", false, "fail the build on lint findings")
		lint    = fs.Bool("lint", false, "lint the image and attach findings")
		timeout = fs.Duration("timeout", 0, "job deadline; 0 = server maximum")
		version = fs.Int("version", 0, "app-update version of the profile; 0 = base release")
		delta   = fs.Float64("delta", 0, "fraction of methods changed per version step; 0 = server default 0.10")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := map[string]any{}
	if *kind != "" {
		req["kind"] = *kind
	}
	if *oatFile == "" {
		// Rewrite kinds take an image, not a ladder config.
		req["config"] = *config
	}
	if *app != "" {
		req["app"] = *app
	}
	if *dexFile != "" {
		data, err := os.ReadFile(*dexFile)
		if err != nil {
			return err
		}
		req["dex"] = data
	}
	if *oatFile != "" {
		data, err := os.ReadFile(*oatFile)
		if err != nil {
			return err
		}
		req["oat"] = data
	}
	if *roots != "" {
		var ids []uint32
		for _, s := range strings.Split(*roots, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return fmt.Errorf("parsing -roots: %w", err)
			}
			ids = append(ids, uint32(n))
		}
		req["roots"] = ids
	}
	if *scale > 0 {
		req["scale"] = *scale
	}
	if *trees > 0 {
		req["trees"] = *trees
	}
	if *shards > 1 {
		req["shards"] = *shards
	}
	if *rounds > 0 {
		req["rounds"] = *rounds
	}
	if *dedup {
		req["dedup"] = true
	}
	if *workers > 0 {
		req["workers"] = *workers
	}
	if *runs > 0 {
		req["runs"] = *runs
	}
	if *verify {
		req["verify"] = true
	}
	if *lint {
		req["lint"] = true
	}
	if *timeout > 0 {
		req["timeout_ms"] = timeout.Milliseconds()
	}
	if *version > 0 {
		req["version"] = *version
	}
	if *delta > 0 {
		req["delta"] = *delta
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	base, suffix := c.base, ""
	if c.ring != nil {
		// Route by what steers the build, so repeat submits of one
		// app/config/version always land on the same daemon's warm cache.
		key := *app + "|" + *config + "|v" + strconv.Itoa(*version)
		if *dexFile != "" {
			key = "dex|" + *dexFile
		}
		if *oatFile != "" {
			key = *kind + "|" + *oatFile
		}
		if a := c.ring.Pick(key); a != "" {
			base, suffix = "http://"+a, "@"+a
		}
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return apiErr(resp)
	}
	var st jobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Fprintln(c.out, st.ID+suffix)
	return nil
}

// jobArg parses the leading JOB operand of a subcommand.
func jobArg(fs *flag.FlagSet, args []string) (string, []string, error) {
	if len(args) == 0 || len(args[0]) == 0 || args[0][0] == '-' {
		return "", nil, fmt.Errorf("%s: job ID required", fs.Name())
	}
	return args[0], args[1:], nil
}

func (c *client) wait(args []string) (*jobStatus, error) {
	fs := flag.NewFlagSet("wait", flag.ContinueOnError)
	fs.SetOutput(c.errOut)
	id, rest, err := jobArg(fs, args)
	if err != nil {
		return nil, err
	}
	poll := fs.Duration("poll", 5*time.Second, "long-poll window per request")
	if err := fs.Parse(rest); err != nil {
		return nil, err
	}
	base, bare := c.jobBase(id)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=%s", base, bare, *poll))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, apiErr(resp)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done", "failed", "canceled":
			enc := json.NewEncoder(c.out)
			enc.SetIndent("", "  ")
			enc.Encode(st) //nolint:errcheck
			return &st, nil
		}
	}
}

// getJSON1 relays GET /jobs/JOB<suffix> to stdout.
func (c *client) getJSON1(args []string, name, suffix string) error {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(c.errOut)
	id, rest, err := jobArg(fs, args)
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	base, bare := c.jobBase(id)
	return c.getJSONAt(base, "/jobs/"+bare+suffix)
}

// getJSON relays one GET endpoint's body to stdout.
func (c *client) getJSON(path string) error {
	return c.getJSONAt(c.base, path)
}

// getJSONAt relays one GET endpoint of a specific daemon to stdout.
func (c *client) getJSONAt(base, path string) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	_, err = io.Copy(c.out, resp.Body)
	resp.Body.Close()
	return err
}

// metrics relays /metrics, optionally in the Prometheus text format.
func (c *client) metrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	fs.SetOutput(c.errOut)
	prom := fs.Bool("prom", false, "fetch the Prometheus text exposition instead of JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *prom {
		return c.getJSON("/metrics?format=prom")
	}
	return c.getJSON("/metrics")
}

func (c *client) fetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ContinueOnError)
	fs.SetOutput(c.errOut)
	id, rest, err := jobArg(fs, args)
	if err != nil {
		return err
	}
	outPath := fs.String("o", "", "write the image to this file (required)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("fetch: -o FILE is required")
	}
	base, bare := c.jobBase(id)
	resp, err := http.Get(base + "/jobs/" + bare + "/image")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		resp.Body.Close()
		return err
	}
	n, err := io.Copy(f, resp.Body)
	resp.Body.Close()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "wrote %s (%d bytes)\n", *outPath, n)
	return nil
}

func (c *client) cancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ContinueOnError)
	fs.SetOutput(c.errOut)
	id, rest, err := jobArg(fs, args)
	if err != nil {
		return err
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	base, bare := c.jobBase(id)
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+bare, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	_, err = io.Copy(c.out, resp.Body)
	resp.Body.Close()
	return err
}
