// Command calibrod is the compile-as-a-service daemon: the Calibro
// pipeline behind an HTTP job API. Jobs name a benchmark app profile (or
// carry a serialized dex payload), pick an evaluation-ladder
// configuration, and run on a fixed pool of build workers behind a
// bounded queue — a full queue rejects submits with 429 rather than
// buffering without bound. All jobs share one content-addressed
// compilation cache and one telemetry tracer, both exported at /metrics.
//
// Usage:
//
//	calibrod [-addr host:port] [-queue N] [-jobs N] [-j N]
//	         [-max-job-time d] [-scale f] [-cache] [-cache-dir DIR]
//	         [-cache-max-entries N] [-cache-max-bytes N]
//	         [-remote-cache URL] [-remote-timeout d] [-fleet-wait d]
//	         [-drain-timeout d] [-log FILE] [-max-body N] [-retention N]
//
// -remote-cache points at a calibrocached store shared by the fleet:
// method compilations and whole-build artifacts are fetched from and
// published to it, and identical in-flight builds coalesce across
// daemons. Every remote failure degrades to a cache miss.
//
// -log enables structured JSON job and access logs ("-" for stderr);
// logging is off by default and strictly observational — images are
// byte-identical with it on or off. /metrics?format=prom exposes the
// serving counters in the Prometheus text format; GET /jobs/{id}/trace
// serves one job's lifecycle as Chrome trace JSON.
//
// On SIGINT/SIGTERM the daemon stops admission, drains queued and
// running jobs (up to -drain-timeout, then force-cancels), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibrod:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibrod", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", "127.0.0.1:7723", "listen address (port 0 picks a free port)")
		queueDepth   = fs.Int("queue", 16, "job queue depth; submits beyond it get HTTP 429")
		jobs         = fs.Int("jobs", 2, "concurrent builds")
		buildWorkers = fs.Int("j", 0, "per-build worker goroutines; 0 = all CPUs")
		maxJobTime   = fs.Duration("max-job-time", 2*time.Minute, "per-job deadline cap, measured from submission")
		scale        = fs.Float64("scale", 0.25, "default app scale for jobs that do not set one")
		useCache     = fs.Bool("cache", true, "share a compilation cache across jobs")
		cacheDir     = fs.String("cache-dir", "", "persist the cache in this directory (implies -cache)")
		cacheMaxEnt  = fs.Int("cache-max-entries", 0, "evict oldest cache entries beyond this count; 0 = unbounded")
		cacheMaxB    = fs.Int64("cache-max-bytes", 0, "evict oldest cache entries beyond this many bytes; 0 = unbounded")
		remoteCache  = fs.String("remote-cache", "", "calibrocached base URL; shares the cache and coalesces builds across daemons (implies -cache)")
		remoteTO     = fs.Duration("remote-timeout", 0, "per-request deadline against the remote cache; 0 = 2s default")
		fleetWait    = fs.Duration("fleet-wait", 0, "how long a coalesced job waits for a peer's build before building locally; 0 = 30s default")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long to let jobs finish on shutdown before force-cancelling")
		logPath      = fs.String("log", "", "write JSON-lines job/access logs to this file (\"-\" = stderr); off when empty")
		maxBody      = fs.Int64("max-body", 0, "submit body size limit in bytes; over it is HTTP 413; 0 = 64MiB default")
		retention    = fs.Int("retention", 0, "terminal jobs kept pollable before FIFO eviction; 0 = 1024, negative = unbounded")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg := serve.Config{
		QueueDepth:   *queueDepth,
		Workers:      *jobs,
		BuildWorkers: *buildWorkers,
		MaxJobTime:   *maxJobTime,
		Scale:        *scale,
		Tracer:       obs.New(),
		MaxBody:      *maxBody,
		Retention:    *retention,
	}
	if *logPath != "" {
		w := io.Writer(os.Stderr)
		if *logPath != "-" {
			f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		cfg.Log = serve.NewEventLogger(w)
	}
	if *useCache || *cacheDir != "" || *remoteCache != "" {
		var c *cache.Cache
		if *cacheDir != "" {
			var err error
			if c, err = cache.NewDir(*cacheDir); err != nil {
				return err
			}
		} else {
			c = cache.New()
		}
		if *cacheMaxEnt > 0 || *cacheMaxB > 0 {
			c.SetLimits(*cacheMaxEnt, *cacheMaxB)
		}
		if *remoteCache != "" {
			// The remote tier slots above memory/disk and, via the serve
			// layer, enables whole-build artifact sharing and cross-daemon
			// single-flight. Strict degrade-to-miss: a dead or flaky
			// calibrocached costs hit rate, never a build.
			c.SetRemote(cache.NewRemote(cache.RemoteConfig{
				URL:     *remoteCache,
				Timeout: *remoteTO,
			}))
			cfg.FleetWait = *fleetWait
		}
		cfg.Cache = c
	}

	srv := serve.New(cfg)
	// Listen before announcing, so -addr :0 resolves to the real port and
	// scripts can scrape it from the first output line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "calibrod: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-httpErr:
		return err
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(out, "calibrod: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(out, "calibrod: drain incomplete, jobs cancelled: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(out, "calibrod: bye")
	return nil
}
