// Command calibroload replays a seeded, realistic serving workload
// against a live calibrod and reports what the daemon's own counters
// cannot: the latency the *client* saw, under the traffic shape a build
// farm actually faces. The generator is deterministic from -seed:
//
//   - app popularity is Zipf-distributed over the benchmark profiles
//     (a few apps dominate, the tail is cold — what makes a cache
//     interesting), with the adversarial "Obfuscated" profile in the
//     tail;
//   - arrivals are open-loop Poisson at -rate: submits fire on the
//     schedule whether or not earlier jobs finished, so queueing delay
//     is measured instead of hidden (closed-loop clients self-throttle
//     and flatter the server);
//   - every -update-every submits, one popular app ships an update
//     (version bump regenerating -delta of its methods), so the cache
//     sees the warm-majority/cold-delta mix of real release traffic;
//   - a -hostile fraction of submits are oversized bodies, exercising
//     the daemon's -max-body bound (deterministic 413s when the bound is
//     below -hostile-bytes).
//
// The report prints served/failed/rejected totals, client-observed
// latency and queue-wait percentiles (from the same bounded histogram
// type the daemon uses), and the daemon's cache hit rate over the run.
// With -bench the summary line is formatted like `go test -bench`
// output, so `calibroload ... | benchjson -append -o BENCH_serve.json`
// archives runs with host metadata:
//
//	BenchmarkServeReplay/apps=7/rate=20 <served> <mean> ns/op \
//	    <p50_us> p50_us <p95_us> p95_us ... <rejected> rejected
//
// Fleet mode: -fleet replays the identical plan against several daemons,
// routing each submit through the same consistent-hash ring calibroctl
// uses (affinity by app@version; hostile bodies go to the first daemon).
// The reported hit rate then sums all daemons' counters, and the bench
// name gains a /fleet=N component.
//
// Exit status 0 when every submit was answered (even with 4xx), 1 on
// transport errors or when nothing was served.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibroload:", err)
		os.Exit(1)
	}
}

// event is one planned submit. The whole plan is generated up front from
// the seed, single-threaded, so the request mix is a pure function of
// the flags — replaying a seed replays the workload.
type event struct {
	at      time.Duration
	app     string
	version int
	hostile bool
}

type counters struct {
	mu       sync.Mutex
	served   int
	failed   int
	canceled int
	r413     int
	r429     int
	r503     int
	r400     int
	errs     int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibroload", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", "127.0.0.1:7723", "calibrod address")
		fleetList    = fs.String("fleet", "", "comma-separated calibrod addresses; submits route by consistent hash of app@version")
		seed         = fs.Int64("seed", 1, "workload seed; same seed, same request mix")
		n            = fs.Int("n", 60, "total submits to replay")
		rate         = fs.Float64("rate", 20, "mean arrival rate, submits/second (Poisson)")
		scale        = fs.Float64("scale", 0, "app scale sent with each job; 0 = server default")
		config       = fs.String("config", "ltbo", "ladder config for every job")
		updateEvery  = fs.Int("update-every", 16, "submits between app-update version bumps; 0 = no updates")
		delta        = fs.Float64("delta", 0.1, "fraction of methods changed per update")
		hostile      = fs.Float64("hostile", 0.1, "fraction of submits sent as oversized bodies")
		hostileBytes = fs.Int("hostile-bytes", 128<<10, "payload size of a hostile submit")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-job client-side wait bound")
		bench        = fs.Bool("bench", false, "print a go test -bench style summary line for benchjson")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	// One daemon, or a consistent-hash fleet. The plan below is a pure
	// function of the seed either way, so the request mix — and with
	// deep-enough queues the served/413 split — is routing-independent.
	bases := []string{"http://" + *addr}
	var ring *fleet.Ring
	if *fleetList != "" {
		addrs := fleet.ParseList(*fleetList)
		ring = fleet.New(addrs, 0)
		bases = bases[:0]
		for _, a := range ring.Addrs() {
			bases = append(bases, "http://"+a)
		}
		if len(bases) == 0 {
			return fmt.Errorf("-fleet lists no addresses")
		}
	}

	// App roster: the six paper apps by Zipf popularity, the adversarial
	// obfuscated profile as the least popular tail entry.
	var apps []string
	for _, p := range workload.Apps(1) {
		apps = append(apps, p.Name)
	}
	apps = append(apps, "Obfuscated")

	plan := buildPlan(*seed, *n, *rate, apps, *updateEvery, *hostile)

	// baseFor routes one event: hostile bodies and the single-daemon case
	// go to the first base, everything else by app@version affinity.
	baseFor := func(ev event) string {
		if ring == nil || ev.hostile {
			return bases[0]
		}
		return "http://" + ring.Pick(fmt.Sprintf("%s@v%d", ev.app, ev.version))
	}

	hitsBefore, missesBefore, _ := cacheCounts(bases)

	var (
		cnt      counters
		latency  obs.Histogram // client-observed submit -> terminal, µs
		queueWt  obs.Histogram // daemon-reported queue wait, µs
		wg       sync.WaitGroup
		sem      = make(chan struct{}, 64) // fd bound, far above any sane queue depth
		started  = time.Now()
		hostileB = bytes.Repeat([]byte{0xA5}, *hostileBytes)
	)
	for _, ev := range plan {
		wg.Add(1)
		go func(ev event) {
			defer wg.Done()
			// Open loop: fire at the scheduled offset regardless of how
			// many earlier requests are still in flight.
			time.Sleep(time.Until(started.Add(ev.at)))
			sem <- struct{}{}
			defer func() { <-sem }()
			replayOne(baseFor(ev), ev, *scale, *config, *delta, *timeout, hostileB,
				&cnt, &latency, &queueWt)
		}(ev)
	}
	wg.Wait()
	wall := time.Since(started)

	hitsAfter, missesAfter, cacheErr := cacheCounts(bases)
	hitRate := 0.0
	if lookups := (hitsAfter - hitsBefore) + (missesAfter - missesBefore); cacheErr == nil && lookups > 0 {
		hitRate = float64(hitsAfter-hitsBefore) / float64(lookups)
	}

	rejected := cnt.r413 + cnt.r429 + cnt.r503 + cnt.r400
	fmt.Fprintf(out, "calibroload: seed=%d n=%d wall=%s\n", *seed, *n, wall.Round(time.Millisecond))
	fmt.Fprintf(out, "calibroload: served=%d failed=%d canceled=%d rejected=%d (413=%d 429=%d 503=%d 400=%d) errors=%d\n",
		cnt.served, cnt.failed, cnt.canceled, rejected, cnt.r413, cnt.r429, cnt.r503, cnt.r400, cnt.errs)
	ls, qs := latency.Stats(), queueWt.Stats()
	fmt.Fprintf(out, "calibroload: latency_us p50=%d p95=%d p99=%d max=%d\n",
		ls.P50US, ls.P95US, ls.P99US, ls.MaxUS)
	fmt.Fprintf(out, "calibroload: queue_wait_us p50=%d p95=%d p99=%d max=%d\n",
		qs.P50US, qs.P95US, qs.P99US, qs.MaxUS)
	fmt.Fprintf(out, "calibroload: cache_hit_rate=%.3f\n", hitRate)

	if *bench {
		mean := 0.0
		if ls.Count > 0 {
			mean = float64(ls.TotalUS) * 1e3 / float64(ls.Count)
		}
		name := fmt.Sprintf("BenchmarkServeReplay/apps=%d/rate=%g", len(apps), *rate)
		if ring != nil {
			name += fmt.Sprintf("/fleet=%d", len(bases))
		}
		fmt.Fprintf(out,
			name+" %d %.1f ns/op"+
				" %d p50_us %d p95_us %d p99_us %d max_us"+
				" %d qwait_p95_us %.3f hit_rate %d served %d rejected\n",
			cnt.served, mean,
			ls.P50US, ls.P95US, ls.P99US, ls.MaxUS,
			qs.P95US, hitRate, cnt.served, rejected)
	}
	if cnt.errs > 0 {
		return fmt.Errorf("%d submits hit transport errors", cnt.errs)
	}
	if cnt.served == 0 {
		return fmt.Errorf("no job was served")
	}
	return nil
}

// buildPlan derives the full request schedule from the seed. One
// sequential RNG draws everything, so the plan is deterministic and
// independent of replay timing.
func buildPlan(seed int64, n int, rate float64, apps []string, updateEvery int, hostileFrac float64) []event {
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, 1.3, 1.0, uint64(len(apps)-1))
	versions := make(map[string]int)
	plan := make([]event, 0, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		// Poisson arrivals: exponential inter-arrival gaps at the mean
		// rate.
		at += time.Duration(r.ExpFloat64() / rate * float64(time.Second))
		ev := event{at: at, hostile: r.Float64() < hostileFrac}
		if !ev.hostile {
			ev.app = apps[int(zipf.Uint64())]
			if updateEvery > 0 && i > 0 && i%updateEvery == 0 {
				// An app ships an update: its next submits compile the
				// new version (cold delta over a warm majority).
				versions[ev.app]++
			}
			ev.version = versions[ev.app]
		}
		plan = append(plan, ev)
	}
	return plan
}

// replayOne drives one planned submit to a terminal answer.
func replayOne(base string, ev event, scale float64, config string, delta float64,
	timeout time.Duration, hostileBody []byte,
	cnt *counters, latency, queueWt *obs.Histogram) {

	var body []byte
	if ev.hostile {
		req, _ := json.Marshal(map[string]any{"dex": hostileBody})
		body = req
	} else {
		req := map[string]any{"app": ev.app, "config": config}
		if scale > 0 {
			req["scale"] = scale
		}
		if ev.version > 0 {
			req["version"] = ev.version
			req["delta"] = delta
		}
		body, _ = json.Marshal(req)
	}

	start := time.Now()
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		cnt.bump(func(c *counters) { c.errs++ })
		return
	}
	var st struct {
		ID          string `json:"id"`
		State       string `json:"state"`
		QueueWaitUS int64  `json:"queue_wait_us"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusRequestEntityTooLarge:
		cnt.bump(func(c *counters) { c.r413++ })
		return
	case http.StatusTooManyRequests:
		cnt.bump(func(c *counters) { c.r429++ })
		return
	case http.StatusServiceUnavailable:
		cnt.bump(func(c *counters) { c.r503++ })
		return
	case http.StatusBadRequest:
		cnt.bump(func(c *counters) { c.r400++ })
		return
	default:
		cnt.bump(func(c *counters) { c.errs++ })
		return
	}
	if decErr != nil {
		cnt.bump(func(c *counters) { c.errs++ })
		return
	}

	deadline := start.Add(timeout)
	for {
		wait := time.Until(deadline)
		if wait <= 0 {
			cnt.bump(func(c *counters) { c.errs++ })
			return
		}
		if wait > 5*time.Second {
			wait = 5 * time.Second
		}
		presp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=%s", base, st.ID, wait.Round(time.Millisecond)))
		if err != nil {
			cnt.bump(func(c *counters) { c.errs++ })
			return
		}
		decErr = json.NewDecoder(presp.Body).Decode(&st)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK || decErr != nil {
			cnt.bump(func(c *counters) { c.errs++ })
			return
		}
		switch st.State {
		case "done":
			latency.Observe(time.Since(start).Microseconds())
			queueWt.Observe(st.QueueWaitUS)
			cnt.bump(func(c *counters) { c.served++ })
			return
		case "failed":
			cnt.bump(func(c *counters) { c.failed++ })
			return
		case "canceled":
			cnt.bump(func(c *counters) { c.canceled++ })
			return
		}
	}
}

func (c *counters) bump(f func(*counters)) {
	c.mu.Lock()
	f(c)
	c.mu.Unlock()
}

// cacheCounts sums the cache hit/miss counters across every daemon's
// JSON metrics endpoint, so the reported hit rate is the fleet's.
func cacheCounts(bases []string) (hits, misses int64, err error) {
	for _, base := range bases {
		h, m, err := cacheCounts1(base)
		if err != nil {
			return 0, 0, err
		}
		hits += h
		misses += m
	}
	return hits, misses, nil
}

func cacheCounts1(base string) (hits, misses int64, err error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var m struct {
		Cache *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, 0, err
	}
	if m.Cache == nil {
		return 0, 0, fmt.Errorf("daemon runs uncached")
	}
	return m.Cache.Hits, m.Cache.Misses, nil
}
