// Command oatdump inspects an OAT image produced by cmd/calibro -o: the
// section layout (pattern thunks, outlined functions, method code),
// per-method LTBO metadata, stack maps, and disassembly.
//
// Usage:
//
//	oatdump -i app.oat [-method 12] [-disasm] [-thunks]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/oat"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes the dump to
// out, and returns the process exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("oatdump", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		in       = fs.String("i", "", "input OAT image (required)")
		methodID = fs.Int("method", -1, "dump one method in full (disassembly + metadata)")
		disasm   = fs.Bool("disasm", false, "disassemble every method")
		thunks   = fs.Bool("thunks", false, "disassemble thunks and outlined functions")
		verify   = fs.Bool("verify", false, "run loader-style integrity checks")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fs.Usage()
		return 2
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(errOut, "oatdump:", err)
		return 1
	}
	img, err := oat.Unmarshal(data)
	if err != nil {
		fmt.Fprintln(errOut, "oatdump:", err)
		return 1
	}

	fmt.Fprintf(out, "OAT image: %s text, %d methods, %d pattern thunks, %d outlined functions\n",
		report.Bytes(img.TextBytes()), len(img.Methods), len(img.Thunks), len(img.Outlined))

	if *verify {
		if err := img.Validate(); err != nil {
			fmt.Fprintln(errOut, "oatdump: integrity check failed:", err)
			return 1
		}
		fmt.Fprintln(out, "integrity checks passed")
	}

	if *thunks {
		dumpFuncs := func(kind string, funcs []oat.FuncRecord) {
			for _, f := range funcs {
				// Outlined bodies carry their provenance in the symbol
				// kind: created by the link-time outliner, or by a later
				// post-hoc reoutline pass over the sealed image.
				prov := ""
				if kind == "outlined" {
					prov = " [link-time]"
					if k, _ := codegen.UnpackSym(f.Sym); k == codegen.SymKindReoutlined {
						prov = " [reoutlined]"
					}
				}
				fmt.Fprintf(out, "\n%s %s%s at +%#x (%d bytes):\n", kind, codegen.SymName(f.Sym), prov, f.Offset, f.Size)
				words := img.Text[f.Offset/4 : (f.Offset+f.Size)/4]
				for _, line := range a64.Disassemble(words, int(abi.TextBase)+f.Offset) {
					fmt.Fprintln(out, "  "+line)
				}
			}
		}
		dumpFuncs("thunk", img.Thunks)
		dumpFuncs("outlined", img.Outlined)
	}

	for _, m := range img.Methods {
		if *methodID >= 0 && int(m.ID) != *methodID {
			continue
		}
		flags := ""
		if m.Meta.IsNative {
			flags += " native"
		}
		if m.Meta.HasIndirectJump {
			flags += " indirect-jump"
		}
		fmt.Fprintf(out, "\nmethod m%d at +%#x: %d bytes%s\n", m.ID, m.Offset, m.Size, flags)
		fmt.Fprintf(out, "  %d PC-relative sites, %d terminators, %d embedded-data ranges, %d slow-path ranges, %d stack map entries\n",
			len(m.Meta.PCRel), len(m.Meta.Terminators), len(m.Meta.EmbeddedData),
			len(m.Meta.Slowpaths), len(m.StackMap))
		if *disasm || int(m.ID) == *methodID {
			inData := func(off int) bool {
				for _, d := range m.Meta.EmbeddedData {
					if d.Contains(off) {
						return true
					}
				}
				return false
			}
			words := img.MethodCode(m.ID)
			if words == nil && m.Size != 0 {
				// Unmarshal accepts records Validate would reject;
				// MethodCode refuses to slice them.
				fmt.Fprintf(out, "  <method record is outside the text segment; run -verify>\n")
				continue
			}
			for i, line := range a64.Disassemble(words, int(abi.TextBase)+m.Offset) {
				tag := ""
				if inData(i * 4) {
					tag = "   ; embedded data"
				}
				for _, s := range m.StackMap {
					if s.NativeOff == i*4 {
						tag += fmt.Sprintf("   ; safepoint dexpc=%d", s.DexPC)
					}
				}
				fmt.Fprintln(out, "  "+line+tag)
			}
		}
	}
	return 0
}
