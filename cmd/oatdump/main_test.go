package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	calibro "repro"
)

var update = flag.Bool("update", false, "rewrite the golden file")

const dumpTestSrc = `
.app Dump
.file classes.dex
.class LMain
.method helper regs=3 ins=2
    add v0, v1, v2
    return v0
.end method
.method run regs=4 ins=1
    const v0, 5
    invoke v1, LMain.helper (v3, v0)
    if-lt v0, v3, :big
    return v1
  :big
    add v1, v1, v0
    return v1
.end method
.end class
.end file
`

func writeTestImage(t *testing.T) string {
	t.Helper()
	app, err := calibro.Assemble(dumpTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibro.Build(app, calibro.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	data, err := calibro.MarshalImage(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.oat")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDumpGolden pins the full oatdump output (summary, thunks, method
// metadata, and one method's disassembly) on a deterministic build of the
// small assembled app. Regenerate with `go test ./cmd/oatdump -update`.
func TestDumpGolden(t *testing.T) {
	path := writeTestImage(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-i", path, "-thunks", "-verify", "-method", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	golden := filepath.Join("testdata", "dump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s (regenerate with -update):\n got:\n%s\nwant:\n%s",
			golden, out.String(), string(want))
	}
}

// dumpOutlineSrc repeats one long arithmetic body across methods so the
// link-time outliner reliably creates outlined functions to dump.
const dumpOutlineSrc = `
.app DumpOutline
.file classes.dex
.class LMain
.method f1 regs=6 ins=2
    add v0, v4, v5
    sub v1, v0, v4
    add v2, v1, v0
    add v3, v2, v1
    sub v0, v3, v2
    add v1, v0, v3
    return v1
.end method
.method f2 regs=6 ins=2
    add v0, v4, v5
    sub v1, v0, v4
    add v2, v1, v0
    add v3, v2, v1
    sub v0, v3, v2
    add v1, v0, v3
    return v1
.end method
.method f3 regs=6 ins=2
    add v0, v4, v5
    sub v1, v0, v4
    add v2, v1, v0
    add v3, v2, v1
    sub v0, v3, v2
    add v1, v0, v3
    return v1
.end method
.end class
.end file
`

// TestDumpProvenanceGolden pins the outlined-body provenance tags: a
// link-time build dumps its outlined functions as [link-time]; the same
// image re-outlined post hoc dumps them as [reoutlined]. Regenerate with
// `go test ./cmd/oatdump -update`.
func TestDumpProvenanceGolden(t *testing.T) {
	app, err := calibro.Assemble(dumpOutlineSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibro.Build(app, calibro.CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	reout, _, err := calibro.ReoutlineImage(res.Image, calibro.ReoutlineConfig{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		golden string
		img    interface {
			Marshal() ([]byte, error)
		}
		tag string
	}{
		{"dump_linktime.golden", res.Image, "[link-time]"},
		{"dump_reoutlined.golden", reout, "[reoutlined]"},
	}
	for _, tc := range cases {
		data, err := tc.img.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "app.oat")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errOut bytes.Buffer
		if code := run([]string{"-i", path, "-thunks", "-verify"}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d; stderr: %s", tc.golden, code, errOut.String())
		}
		if !strings.Contains(out.String(), tc.tag) {
			t.Errorf("%s: dump has no %s outlined body:\n%s", tc.golden, tc.tag, out.String())
		}
		golden := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("output differs from %s (regenerate with -update):\n got:\n%s\nwant:\n%s",
				golden, out.String(), string(want))
		}
	}
}

func TestDumpDisasmFlag(t *testing.T) {
	path := writeTestImage(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-i", path, "-disasm"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"OAT image:", "method m0", "method m1", "ret"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("disassembly output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDumpCorruptMethodRecord dumps an image whose method record passes
// parsing but not Validate: the record points outside the text segment.
// The dumper must survive it — MethodCode returns nil instead of letting
// a slice expression panic — and -verify must reject the same image.
func TestDumpCorruptMethodRecord(t *testing.T) {
	path := writeTestImage(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img, err := calibro.UnmarshalImage(data)
	if err != nil {
		t.Fatal(err)
	}
	img.Methods[1].Size = 1 << 30 // far beyond the text segment
	corrupt, err := calibro.MarshalImage(img)
	if err != nil {
		t.Fatal(err)
	}
	corruptPath := filepath.Join(t.TempDir(), "corrupt.oat")
	if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-i", corruptPath, "-disasm"}, &out, &errOut); code != 0 {
		t.Fatalf("disasm of corrupt image: exit %d; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "outside the text segment") {
		t.Errorf("dump does not flag the corrupt record:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-i", corruptPath, "-verify"}, &out, &errOut); code != 1 {
		t.Errorf("-verify accepted the corrupt image (exit %d)", code)
	}
}

func TestDumpUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-i", filepath.Join(t.TempDir(), "missing.oat")}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
