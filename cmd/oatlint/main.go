// Command oatlint statically verifies a linked OAT image from the bytes
// alone: it recovers per-method and per-outlined-function control-flow
// graphs, checks control-flow integrity (branch targets, bl callees,
// outlined-function shape), and runs the dataflow pass proving
// stack-pointer balance and callee-saved register discipline on every
// path. Unlike `oatdump -verify`, which performs the loader's shallow
// structural checks, oatlint re-derives the §3.5 safety argument with no
// access to any compile-time state — so it can vet cached or untrusted
// images.
//
// Usage:
//
//	oatlint [-v] [-rule name] [-rules spec] [-orig pre.oat] [-roots ids]
//	        [-json] [-callgraph] [-reach] [-j N] [-trace t.json]
//	        [-metrics m.json] [-pprof cpu.out|mem.out] app.oat
//
// Per-method checks run on -j worker goroutines (0 = all CPUs); findings
// and their order are identical for every -j. -rules selects and
// re-grades checks through the pluggable rule engine ("all", "legacy",
// "interproc", NAME, -NAME, NAME=info|warn|error, comma-separated); its
// default output is byte-identical to the classic path. -orig supplies
// the pre-pass image for the paired equivalence rules
// (reoutlined-body-equivalent, lift-frozen-untouched), which verify a
// re-outlined image against the one it was produced from; without it
// those rules have nothing to compare and stay silent. -roots supplies
// the reachability root set for the interprocedural rules and reports as
// comma-separated method IDs (default: every method with no recovered
// caller). -callgraph prints the recovered whole-image call graph and
// -reach the reachability report. -json emits the findings as a JSON
// array (rule id, severity, method, pc) instead of text. -trace writes a
// Chrome trace-event JSON of the analysis (per-method spans on worker
// lanes; Perfetto-loadable), -metrics the aggregated metrics snapshot,
// and -pprof a runtime/pprof profile ("mem*" = heap, otherwise CPU).
// Exit status is 0 when the image is clean, 1 when there are findings,
// and 2 on usage or I/O errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it lints the image named by args,
// writes findings to out, and returns the process exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("oatlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: oatlint [-v] [-rule name] [-rules spec] [-orig pre.oat] [-roots ids] [-json] [-callgraph] [-reach] [-j N] [-trace t.json] [-metrics m.json] [-pprof out] app.oat")
		fs.PrintDefaults()
	}
	var (
		verbose = fs.Bool("v", false, "report advisory findings and per-method statistics")
		rule    = fs.String("rule", "", "only report findings under this rule")
		rules   = fs.String("rules", "", "rule-engine spec: all|legacy|interproc|NAME|-NAME|NAME=info|warn|error, comma-separated")
		origIn  = fs.String("orig", "", "pre-pass image for the paired equivalence rules (reoutlined-body-equivalent, lift-frozen-untouched); implies -rules all when -rules is unset")
		roots   = fs.String("roots", "", "comma-separated method IDs rooting reachability (default: no-caller inference)")
		asJSON  = fs.Bool("json", false, "emit findings as a JSON array instead of text")
		dumpCG  = fs.Bool("callgraph", false, "print the recovered whole-image call graph")
		dumpRch = fs.Bool("reach", false, "print the reachability report for the root set")
		workers = fs.Int("j", 0, "analysis worker goroutines; 0 = all CPUs (findings are identical for every value)")

		tracePath   = fs.String("trace", "", "write a Chrome trace-event JSON of the analysis to this file")
		metricsPath = fs.String("metrics", "", "write the flat metrics snapshot JSON to this file")
		pprofPath   = fs.String("pprof", "", "collect a runtime/pprof profile (mem* = heap at exit, otherwise CPU)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var stopProfile func() error
	if *pprofPath != "" {
		stop, err := obs.StartProfile(*pprofPath)
		if err != nil {
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
		stopProfile = stop
	}
	var tracer *obs.Tracer
	if *tracePath != "" || *metricsPath != "" {
		tracer = obs.New()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errOut, "oatlint:", err)
		return 2
	}
	img, err := oat.Unmarshal(data)
	if err != nil {
		fmt.Fprintln(errOut, "oatlint:", err)
		return 2
	}

	rootSet, err := parseRoots(*roots)
	if err != nil {
		fmt.Fprintln(errOut, "oatlint:", err)
		return 2
	}

	var orig *oat.Image
	if *origIn != "" {
		origData, err := os.ReadFile(*origIn)
		if err != nil {
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
		if orig, err = oat.Unmarshal(origData); err != nil {
			fmt.Fprintln(errOut, "oatlint: -orig:", err)
			return 2
		}
		if *rules == "" {
			*rules = "all"
		}
	}

	sp := tracer.Start("stage", "lint").Arg("methods", int64(len(img.Methods)))
	var rep *analysis.Report
	if *rules == "" {
		rep = analysis.AnalyzeTraced(img, *workers, tracer)
	} else {
		spec, err := analysis.ParseRuleSpec(*rules)
		if err != nil {
			sp.End()
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
		if orig != nil {
			rep, err = analysis.RunRulesPaired(context.Background(), img, orig, spec, rootSet, *workers, tracer)
		} else {
			rep, err = analysis.RunRules(context.Background(), img, spec, rootSet, *workers, tracer)
		}
		if err != nil {
			sp.End()
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
	}
	sp.End()
	if code := writeTelemetry(tracer, *tracePath, *metricsPath, stopProfile, errOut); code != 0 {
		return code
	}

	if *dumpCG || *dumpRch {
		cg, _ := analysis.BuildCallGraph(img)
		if *dumpCG {
			if err := cg.WriteDump(out); err != nil {
				fmt.Fprintln(errOut, "oatlint:", err)
				return 2
			}
		}
		if *dumpRch {
			if err := cg.Reachable(rootSet).WriteReport(out, cg); err != nil {
				fmt.Fprintln(errOut, "oatlint:", err)
				return 2
			}
		}
	}

	blocking := 0
	var selected []analysis.Finding
	for _, f := range rep.Findings {
		if f.Severity >= analysis.SevWarn {
			blocking++
		}
		if *rule != "" && f.Rule != *rule {
			continue
		}
		if f.Severity >= analysis.SevWarn || *verbose || *asJSON {
			selected = append(selected, f)
		}
	}
	if *asJSON {
		if code := writeJSONFindings(out, errOut, selected); code != 0 {
			return code
		}
		if blocking > 0 {
			return 1
		}
		return 0
	}
	for _, f := range selected {
		fmt.Fprintln(out, f)
	}

	if *verbose {
		var insts, blocks, dead, calls int
		for _, m := range rep.Methods {
			insts += m.Insts
			blocks += m.Blocks
			dead += m.DeadBlocks
			calls += m.Calls
		}
		fmt.Fprintf(out, "%s text: %d methods (%d instructions, %d blocks, %d dead, %d call sites), %d thunks, %d outlined functions\n",
			report.Bytes(rep.TextBytes), len(rep.Methods), insts, blocks, dead, calls,
			rep.Thunks, rep.Outlined)
	}

	if blocking > 0 {
		plural := "s"
		if blocking == 1 {
			plural = ""
		}
		fmt.Fprintf(out, "oatlint: %d finding%s\n", blocking, plural)
		return 1
	}
	fmt.Fprintln(out, "oatlint: image is clean")
	return 0
}

// writeTelemetry flushes the trace, metrics, and pprof outputs; any write
// failure is an I/O error (exit 2).
func writeTelemetry(tracer *obs.Tracer, tracePath, metricsPath string, stopProfile func() error, errOut io.Writer) int {
	export := func(path string, write func(w io.Writer) error) int {
		if path == "" {
			return 0
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
		return 0
	}
	if code := export(tracePath, tracer.WriteTrace); code != 0 {
		return code
	}
	if code := export(metricsPath, tracer.WriteMetrics); code != 0 {
		return code
	}
	if stopProfile != nil {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(errOut, "oatlint:", err)
			return 2
		}
	}
	return 0
}

// parseRoots parses the -roots flag: comma-separated method IDs. The
// empty string selects the conservative default (no-caller inference).
func parseRoots(s string) (analysis.RootSet, error) {
	if strings.TrimSpace(s) == "" {
		return analysis.DefaultRoots(), nil
	}
	var roots analysis.RootSet
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return roots, fmt.Errorf("bad -roots entry %q: %v", part, err)
		}
		roots.Methods = append(roots.Methods, dex.MethodID(id))
	}
	return roots, nil
}

// findingJSON is one finding on the -json wire: the stable rule ID, the
// severity name, the method slot (-1 for thunk/blob/image-level
// findings), and the byte offset within the method or region (-1 when
// not positional).
type findingJSON struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Method   int    `json:"method"`
	PC       int    `json:"pc"`
	Msg      string `json:"msg"`
}

// writeJSONFindings emits the findings as an indented JSON array; an
// empty selection renders as [] so consumers always get valid JSON.
func writeJSONFindings(out, errOut io.Writer, findings []analysis.Finding) int {
	arr := make([]findingJSON, 0, len(findings))
	for _, f := range findings {
		method := int(f.Method)
		if f.Method == analysis.NoMethod {
			method = -1
		}
		arr = append(arr, findingJSON{
			Rule:     f.Rule,
			Severity: f.Severity.String(),
			Method:   method,
			PC:       f.Off,
			Msg:      f.Msg,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(arr); err != nil {
		fmt.Fprintln(errOut, "oatlint:", err)
		return 2
	}
	return 0
}
