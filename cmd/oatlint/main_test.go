package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	calibro "repro"
	"repro/internal/a64"
)

// lintTestSrc is a small two-method app in the smali-like text format;
// enough to produce calls, branches, and CTO thunks.
const lintTestSrc = `
.app Lint
.file classes.dex
.class LMain
.method helper regs=3 ins=2
    add v0, v1, v2
    return v0
.end method
.method run regs=4 ins=1
    const v0, 5
    invoke v1, LMain.helper (v3, v0)
    if-lt v0, v3, :big
    return v1
  :big
    add v1, v1, v0
    return v1
.end method
.end class
.end file
`

// writeTestImage assembles, builds, and marshals the test app.
func writeTestImage(t *testing.T, corrupt bool) string {
	t.Helper()
	app, err := calibro.Assemble(lintTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibro.Build(app, calibro.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	if corrupt {
		// Break the first method's prologue word: decodes nowhere.
		res.Image.Text[res.Image.Methods[0].Offset/a64.WordSize] = 0xFFFF_FFFF
	}
	data, err := calibro.MarshalImage(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.oat")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanImage(t *testing.T) {
	path := writeTestImage(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on a clean image; output:\n%s%s", code, out.String(), errOut.String())
	}
	if got := out.String(); got != "oatlint: image is clean\n" {
		t.Errorf("output %q", got)
	}
}

func TestLintCorruptImage(t *testing.T) {
	path := writeTestImage(t, true)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on a corrupted image, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[decode]") || !strings.Contains(out.String(), "m0+0") {
		t.Errorf("findings do not name the method and offset:\n%s", out.String())
	}
}

func TestLintVerbose(t *testing.T) {
	path := writeTestImage(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"-v", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2 methods") ||
		!strings.Contains(out.String(), "outlined functions") {
		t.Errorf("verbose summary missing:\n%s", out.String())
	}
}

func TestLintRuleFilter(t *testing.T) {
	path := writeTestImage(t, true)
	var out, errOut bytes.Buffer
	run([]string{"-rule", "sp-balance", path}, &out, &errOut)
	if strings.Contains(out.String(), "[decode]") {
		t.Errorf("-rule filter leaked other rules:\n%s", out.String())
	}
}

func TestLintUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.oat")}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.oat")
	if err := os.WriteFile(bad, []byte("not an oat image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Errorf("unparsable file: exit %d, want 2", code)
	}
}

var update = flag.Bool("update", false, "regenerate golden files")

// TestLintJSONGolden pins the -json wire format byte for byte on a
// corrupted image. Regenerate with -update on an intentional change.
func TestLintJSONGolden(t *testing.T) {
	path := writeTestImage(t, true)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on a corrupted image, want 1; stderr: %s", code, errOut.String())
	}
	var parsed []struct {
		Rule     string `json:"rule"`
		Severity string `json:"severity"`
		Method   int    `json:"method"`
		PC       int    `json:"pc"`
		Msg      string `json:"msg"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(parsed) == 0 {
		t.Fatal("corrupted image produced no JSON findings")
	}
	for _, f := range parsed {
		if f.Rule == "" || f.Severity == "" {
			t.Errorf("finding missing rule or severity: %+v", f)
		}
	}
	golden := filepath.Join("testdata", "findings_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from golden file (regenerate with -update)\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestLintJSONClean: a clean image yields an empty-but-valid JSON array
// and exit 0.
func TestLintJSONClean(t *testing.T) {
	path := writeTestImage(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on a clean image; stderr: %s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output %q, want []", got)
	}
}

// TestLintReportModes exercises -callgraph and -reach on a clean image.
func TestLintReportModes(t *testing.T) {
	path := writeTestImage(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"-callgraph", "-reach", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "callgraph:") {
		t.Errorf("-callgraph printed no call-graph header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "reachability:") {
		t.Errorf("-reach printed no reachability header:\n%s", out.String())
	}
}

// TestLintRulesFlag drives the rule engine from the CLI: rooting
// reachability at the leaf method makes the entry method unreachable, and
// regrading the rule to error turns that into a failing exit.
func TestLintRulesFlag(t *testing.T) {
	path := writeTestImage(t, false)

	// helper is m0, run is m1; rooted at m1 everything is live.
	var out, errOut bytes.Buffer
	if code := run([]string{"-rules", "interproc", "-roots", "1", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with all-live roots; output:\n%s%s", code, out.String(), errOut.String())
	}

	// Rooted at m0 only, m1 is unreachable; regraded to error it blocks.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "unreachable-method=error", "-roots", "0", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[unreachable-method]") || !strings.Contains(out.String(), "m1") {
		t.Errorf("unreachable finding missing or misattributed:\n%s", out.String())
	}

	// A typo in the spec is a usage error, not a silently weaker lint.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-rules", "bogus-rule", path}, &out, &errOut); code != 2 {
		t.Errorf("exit %d on a bad -rules spec, want 2", code)
	}
}

// TestLintPairedOrig drives the paired equivalence rules from the CLI: a
// re-outlined image checked with -orig against its input must come out
// clean, and a tampered re-outlined image must be caught by the
// reoutlined-body-equivalent rule.
func TestLintPairedOrig(t *testing.T) {
	app, err := calibro.Assemble(lintTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibro.Build(app, calibro.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	reout, _, err := calibro.ReoutlineImage(res.Image, calibro.ReoutlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, img *calibro.Image) string {
		data, err := calibro.MarshalImage(img)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	origPath := write("orig.oat", res.Image)
	reoutPath := write("reout.oat", reout)

	var out, errOut bytes.Buffer
	if code := run([]string{"-orig", origPath, reoutPath}, &out, &errOut); code != 0 {
		t.Fatalf("paired lint of a sound reoutline: exit %d; output:\n%s%s", code, out.String(), errOut.String())
	}

	// Swap two instruction words inside the first method: still a valid
	// image by the unpaired rules' lights is too much to ask, but the
	// paired replay must flag the divergence from the original either way.
	bad := *reout
	bad.Text = append([]uint32(nil), reout.Text...)
	w := bad.Methods[0].Offset / 4
	bad.Text[w+1], bad.Text[w+2] = bad.Text[w+2], bad.Text[w+1]
	badPath := write("bad.oat", &bad)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-orig", origPath, badPath}, &out, &errOut); code != 1 {
		t.Fatalf("paired lint of a tampered reoutline: exit %d, want 1; output:\n%s%s", code, out.String(), errOut.String())
	}
}
