package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	calibro "repro"
	"repro/internal/a64"
)

// lintTestSrc is a small two-method app in the smali-like text format;
// enough to produce calls, branches, and CTO thunks.
const lintTestSrc = `
.app Lint
.file classes.dex
.class LMain
.method helper regs=3 ins=2
    add v0, v1, v2
    return v0
.end method
.method run regs=4 ins=1
    const v0, 5
    invoke v1, LMain.helper (v3, v0)
    if-lt v0, v3, :big
    return v1
  :big
    add v1, v1, v0
    return v1
.end method
.end class
.end file
`

// writeTestImage assembles, builds, and marshals the test app.
func writeTestImage(t *testing.T, corrupt bool) string {
	t.Helper()
	app, err := calibro.Assemble(lintTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibro.Build(app, calibro.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	if corrupt {
		// Break the first method's prologue word: decodes nowhere.
		res.Image.Text[res.Image.Methods[0].Offset/a64.WordSize] = 0xFFFF_FFFF
	}
	data, err := calibro.MarshalImage(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.oat")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanImage(t *testing.T) {
	path := writeTestImage(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on a clean image; output:\n%s%s", code, out.String(), errOut.String())
	}
	if got := out.String(); got != "oatlint: image is clean\n" {
		t.Errorf("output %q", got)
	}
}

func TestLintCorruptImage(t *testing.T) {
	path := writeTestImage(t, true)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on a corrupted image, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[decode]") || !strings.Contains(out.String(), "m0+0") {
		t.Errorf("findings do not name the method and offset:\n%s", out.String())
	}
}

func TestLintVerbose(t *testing.T) {
	path := writeTestImage(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"-v", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2 methods") ||
		!strings.Contains(out.String(), "outlined functions") {
		t.Errorf("verbose summary missing:\n%s", out.String())
	}
}

func TestLintRuleFilter(t *testing.T) {
	path := writeTestImage(t, true)
	var out, errOut bytes.Buffer
	run([]string{"-rule", "sp-balance", path}, &out, &errOut)
	if strings.Contains(out.String(), "[decode]") {
		t.Errorf("-rule filter leaked other rules:\n%s", out.String())
	}
}

func TestLintUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.oat")}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.oat")
	if err := os.WriteFile(bad, []byte("not an oat image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Errorf("unparsable file: exit %d, want 2", code)
	}
}
