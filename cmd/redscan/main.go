// Command redscan reproduces the paper's §2.2 redundancy analysis on a
// synthetic app: it compiles the app at the baseline configuration, builds
// a suffix tree over the binary code, and reports the estimated code-size
// reduction (Table 1), the sequence-length/repeat-count distribution
// (Figure 3), and the hottest repeated patterns (Observation 3, Figure 4).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/outline"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("redscan: ")
	var (
		appName = flag.String("app", "Wechat", "app profile name")
		scale   = flag.Float64("scale", 0.25, "app scale factor")
		bounded = flag.Bool("bounded", false, "apply the outliner's correctness constraints to the scan")
		top     = flag.Int("top", 5, "how many top repeats to disassemble")
	)
	flag.Parse()

	prof, ok := workload.AppByName(*appName, *scale)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}
	app, _, err := workload.Generate(prof)
	if err != nil {
		log.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{Optimize: true})
	if err != nil {
		log.Fatal(err)
	}

	a := outline.Analyze(methods, *bounded)
	fmt.Printf("%s: %d instruction words of binary code\n", app.Name, a.TotalWords)
	fmt.Printf("estimated reduction ratio (Table 1 model): %s (%d words)\n",
		report.Pct(a.EstimatedReduction), a.EstimatedSavedWords)

	fmt.Println("\nsequence length vs number of repeats (Figure 3):")
	lengths := make([]int, 0, len(a.OccurrencesByLength))
	for l := range a.OccurrencesByLength {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		if l > 24 {
			fmt.Printf("  (lengths above 24 omitted: %d more)\n", len(lengths)-24)
			break
		}
		fmt.Printf("  len %2d: %8s occurrences in %d families\n",
			l, report.Count(a.OccurrencesByLength[l]), a.RepeatFamilies[l])
	}

	pc := outline.CountPatterns(methods)
	fmt.Println("\nART-specific pattern sites (Figure 4):")
	fmt.Printf("  Java function call (ldr x30,[x0,#entry]; blr x30):  %s\n", report.Count(int64(pc.JavaCall)))
	fmt.Printf("  stack overflow check (sub x16,sp,#0x2000; ldr wzr): %s\n", report.Count(int64(pc.StackCheck)))
	fmt.Printf("  pAllocObjectResolved call (ldr x30,[x19,#o]; blr):  %s (all entrypoints: %s)\n",
		report.Count(int64(pc.NativeAlloc)), report.Count(int64(pc.NativeCall)))

	fmt.Println("\ntop repeated sequences:")
	for i, r := range a.Top {
		if i >= *top {
			break
		}
		fmt.Printf("  #%d: length %d, %d occurrences\n", i+1, r.Length, r.Count)
		for _, line := range a64.Disassemble(r.Words, 0) {
			fmt.Printf("      %s\n", line)
		}
	}
}
