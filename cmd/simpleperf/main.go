// Command simpleperf mimics the profiling step of the paper's Figure 6
// workflow: run the scripted workload on an emulated device, sample the
// program counter, and report the per-function cycle attribution plus the
// hot set that hot-function filtering would protect.
//
// Usage:
//
//	simpleperf -app Kuaishou [-scale 0.1] [-runs 20] [-top 15] [-coverage 0.8]
//	           [-json profile.json]
//
// -json dumps the full profile — every sampled function, not just the
// -top table — plus the hot set at the configured coverage, as a JSON
// document for downstream tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/profiler"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simpleperf: ")
	var (
		appName  = flag.String("app", "Wechat", "app profile name")
		scale    = flag.Float64("scale", 0.1, "app scale factor")
		runs     = flag.Int("runs", 20, "scripted rounds")
		top      = flag.Int("top", 15, "functions to list")
		coverage = flag.Float64("coverage", 0.8, "hot-set cycle coverage fraction")
		period   = flag.Int64("period", 0, "sampling period in instructions (0 = default)")
		jsonPath = flag.String("json", "", "dump the full profile and hot set as JSON to this file")
	)
	flag.Parse()

	prof, ok := workload.AppByName(*appName, *scale)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}
	app, man, err := workload.Generate(prof)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Build(app, core.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	script := workload.Script(man, *runs, 1)
	p, err := profiler.Collect(res.Image, script, *period)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %s samples over %d scripted operations (%s in shared code)\n",
		app.Name, report.Count(p.TotalSamples), len(script), report.Count(p.OtherSamples))

	hot := p.HotSet(*coverage)
	var methodTotal int64
	for _, f := range p.Functions {
		methodTotal += f.Samples
	}
	t := &report.Table{
		Title:  fmt.Sprintf("\ntop functions (hot set: %d methods cover %.0f%% of samples)", len(hot), 100**coverage),
		Header: []string{"method", "samples", "share", "cumulative", "hot"},
	}
	var cum int64
	for i, f := range p.Functions {
		if i >= *top {
			break
		}
		cum += f.Samples
		mark := ""
		if hot[f.Method] {
			mark = "*"
		}
		t.AddRow(app.Methods[f.Method].FullName(),
			fmt.Sprint(f.Samples),
			report.Pct(float64(f.Samples)/float64(methodTotal)),
			report.Pct(float64(cum)/float64(methodTotal)),
			mark)
	}
	fmt.Println(t)
	fmt.Printf("generator planted %d hot kernels; profiler hot set holds %d methods\n",
		len(man.Hot), len(hot))

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, app, p, hot, *coverage); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote profile %s\n", *jsonPath)
	}
}

// profileJSON is the -json document: the complete sample attribution (the
// printed table truncates at -top; this does not) and the hot set at the
// configured coverage.
type profileJSON struct {
	App          string         `json:"app"`
	TotalSamples int64          `json:"total_samples"`
	OtherSamples int64          `json:"other_samples"`
	Coverage     float64        `json:"coverage"`
	HotSet       []int          `json:"hot_set"`
	Functions    []functionJSON `json:"functions"`
}

type functionJSON struct {
	Method  int    `json:"method"`
	Name    string `json:"name"`
	Samples int64  `json:"samples"`
}

func writeJSON(path string, app *dex.App, p *profiler.Profile, hot map[dex.MethodID]bool, coverage float64) error {
	doc := profileJSON{
		App:          app.Name,
		TotalSamples: p.TotalSamples,
		OtherSamples: p.OtherSamples,
		Coverage:     coverage,
		HotSet:       []int{},
	}
	for id := range hot {
		doc.HotSet = append(doc.HotSet, int(id))
	}
	sort.Ints(doc.HotSet)
	for _, f := range p.Functions {
		doc.Functions = append(doc.Functions, functionJSON{
			Method:  int(f.Method),
			Name:    app.Methods[f.Method].FullName(),
			Samples: f.Samples,
		})
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
