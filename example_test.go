package calibro_test

import (
	"fmt"

	calibro "repro"
)

// Example runs the full pipeline on a small app and shows the paper's
// headline effect: the outlined binary is substantially smaller and behaves
// identically.
func Example() {
	prof, _ := calibro.AppProfileByName("Taobao", 0.03)
	app, man, err := calibro.GenerateApp(prof)
	if err != nil {
		panic(err)
	}

	baseline, err := calibro.Build(app, calibro.Baseline())
	if err != nil {
		panic(err)
	}
	optimized, err := calibro.Build(app, calibro.FullOptimization(8))
	if err != nil {
		panic(err)
	}

	smaller := optimized.TextBytes() < baseline.TextBytes()
	fmt.Println("optimized is smaller:", smaller)

	run := calibro.Script(man, 1, 1)[0]
	want, _ := calibro.Interpret(app, run.Entry, run.Args[:])
	got, _ := calibro.Execute(optimized.Image, run.Entry, run.Args[:])
	fmt.Println("same result:", want.Ret == got.Ret && want.Exc == got.Exc)
	// Output:
	// optimized is smaller: true
	// same result: true
}
