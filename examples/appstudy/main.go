// Appstudy reproduces the paper's §2.2 code-redundancy analysis across the
// six benchmark applications: the estimated reduction ratios of Table 1,
// the sequence-length/repeat distribution of Figure 3, and the ART-specific
// pattern counts of Figure 4 / Observation 3.
//
// Run with: go run ./examples/appstudy [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	calibro "repro"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.1, "app scale factor")
	flag.Parse()

	fmt.Println("Code redundancy study (paper §2.2, Table 1, Figures 3-4)")
	fmt.Printf("%-10s %12s %14s %10s %10s %10s\n",
		"app", "text words", "est.reduction", "java-call", "stackchk", "allocObj")

	var total float64
	apps := calibro.AppProfiles(*scale)
	var wechat *calibro.Analysis
	for _, prof := range apps {
		app, _, err := calibro.GenerateApp(prof)
		if err != nil {
			log.Fatal(err)
		}
		res, err := calibro.Build(app, calibro.Baseline())
		if err != nil {
			log.Fatal(err)
		}
		a := calibro.AnalyzeRedundancy(res, false)
		pc := calibro.CountPatterns(res)
		fmt.Printf("%-10s %12d %13.2f%% %10d %10d %10d\n",
			prof.Name, a.TotalWords, 100*a.EstimatedReduction,
			pc.JavaCall, pc.StackCheck, pc.NativeAlloc)
		total += a.EstimatedReduction
		if prof.Name == "Wechat" {
			wechat = a
		}
	}
	fmt.Printf("%-10s %12s %13.2f%%   (paper: 25.4%% average)\n", "AVG", "", 100*total/float64(len(apps)))

	// Figure 3 for the WeChat app: most repeats are short, and shorter
	// sequences repeat more often (Observation 2).
	fmt.Println("\nWeChat sequence length vs total repeats (Figure 3):")
	lengths := make([]int, 0, len(wechat.OccurrencesByLength))
	for l := range wechat.OccurrencesByLength {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	var maxOcc int64
	for _, l := range lengths {
		if wechat.OccurrencesByLength[l] > maxOcc {
			maxOcc = wechat.OccurrencesByLength[l]
		}
	}
	for _, l := range lengths {
		if l > 16 {
			break
		}
		occ := wechat.OccurrencesByLength[l]
		bar := int(occ * 50 / maxOcc)
		fmt.Printf("  len %2d %8d |%s\n", l, occ, repeatRune('#', bar))
	}

	fmt.Println("\nhottest repeated sequence in WeChat (Observation 3):")
	if len(wechat.Top) > 0 {
		t := wechat.Top[0]
		fmt.Printf("  length %d, %d occurrences\n", t.Length, t.Count)
	}
}

func repeatRune(r rune, n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = r
	}
	return string(out)
}
