// Hotfilter demonstrates the Figure 6 profile-guided workflow: build with
// full outlining, profile the scripted workload with the simpleperf
// stand-in, rebuild with the hottest functions (80% of cycles) excluded
// from outlining, and compare run-time cycle counts and code size across
// the three binaries — the paper's Table 7 trade-off on one app.
//
// Run with: go run ./examples/hotfilter [-app Kuaishou] [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	calibro "repro"
)

func main() {
	log.SetFlags(0)
	appName := flag.String("app", "Kuaishou", "app profile name")
	scale := flag.Float64("scale", 0.1, "app scale factor")
	runs := flag.Int("runs", 10, "scripted rounds")
	flag.Parse()

	prof, ok := calibro.AppProfileByName(*appName, *scale)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}
	app, man, err := calibro.GenerateApp(prof)
	if err != nil {
		log.Fatal(err)
	}
	script := calibro.Script(man, *runs, 7)

	baseline, err := calibro.Build(app, calibro.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	outlined, err := calibro.Build(app, calibro.FullOptimization(8))
	if err != nil {
		log.Fatal(err)
	}
	filtered, profile, err := calibro.ProfileGuidedBuild(app, calibro.FullOptimization(8), script)
	if err != nil {
		log.Fatal(err)
	}

	hot := profile.HotSet(0.8)
	fmt.Printf("%s: profiler attributes 80%% of cycles to %d of %d sampled functions\n",
		prof.Name, len(hot), len(profile.Functions))
	planted := 0
	for _, id := range man.Hot {
		if hot[id] {
			planted++
		}
	}
	fmt.Printf("(%d of the %d generator-planted hot kernels were found)\n\n", planted, len(man.Hot))

	measure := func(name string, b *calibro.BuildResult) int64 {
		var cycles int64
		for _, r := range script {
			out, err := calibro.Execute(b.Image, r.Entry, r.Args[:])
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			cycles += out.Cycles
		}
		return cycles
	}

	base := measure("baseline", baseline)
	fmt.Printf("%-22s text %8d B   cycles %12d\n", "baseline", baseline.TextBytes(), base)
	for _, row := range []struct {
		name string
		b    *calibro.BuildResult
	}{{"outlined (no HfOpti)", outlined}, {"outlined + HfOpti", filtered}} {
		c := measure(row.name, row.b)
		fmt.Printf("%-22s text %8d B   cycles %12d   (+%.2f%% over baseline)\n",
			row.name, row.b.TextBytes(), c, 100*float64(c-base)/float64(base))
	}
	fmt.Println("\nHot-function filtering trades a little code size for most of the")
	fmt.Println("performance degradation, the §3.4.2 result.")
}
