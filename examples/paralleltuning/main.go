// Paralleltuning sweeps the number of paralleled suffix trees (the §3.4.1
// optimization) and reports the build-time vs code-size-reduction trade-off
// the paper discusses at the end of §4.4: "the trade-offs between building
// time and the code size reduction can be selected by adjusting the number
// of paralleled suffix trees".
//
// Run with: go run ./examples/paralleltuning [-app Toutiao] [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"log"

	calibro "repro"
)

func main() {
	log.SetFlags(0)
	appName := flag.String("app", "Toutiao", "app profile name")
	scale := flag.Float64("scale", 0.2, "app scale factor")
	flag.Parse()

	prof, ok := calibro.AppProfileByName(*appName, *scale)
	if !ok {
		log.Fatalf("unknown app %q", *appName)
	}
	app, _, err := calibro.GenerateApp(prof)
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := calibro.Build(app, calibro.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline: %d bytes of text, built in %v\n\n",
		prof.Name, baseline.TextBytes(), baseline.WallTime.Round(1e6))
	fmt.Printf("%6s %12s %12s %14s %12s\n", "trees", "text bytes", "reduction", "outline time", "functions")

	for _, k := range []int{1, 2, 4, 6, 8, 16, 32} {
		res, err := calibro.Build(app, calibro.CTOLTBOPl(k))
		if err != nil {
			log.Fatal(err)
		}
		red := 100 * float64(baseline.TextBytes()-res.TextBytes()) / float64(baseline.TextBytes())
		fmt.Printf("%6d %12d %11.2f%% %14v %12d\n",
			k, res.TextBytes(), red, res.OutlineTime.Round(1e5), res.Outline.OutlinedFunctions)
	}
	fmt.Println("\nOne global tree captures the most redundancy but is slowest;")
	fmt.Println("partitioned trees trade a little reduction for much faster builds (§3.4.1).")
}
