// Quickstart: generate a small synthetic Android app, build it at the
// baseline and fully optimized configurations, verify that the optimized
// binary behaves identically, and show what the outliner did.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"reflect"

	calibro "repro"
)

func main() {
	log.SetFlags(0)

	// A small app: ~120 methods of the WeChat profile shape.
	prof, _ := calibro.AppProfileByName("Wechat", 0.07)
	app, man, err := calibro.GenerateApp(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d methods\n", prof.Name, app.NumMethods())

	// Build the paper's configuration ladder.
	baseline, err := calibro.Build(app, calibro.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	script := calibro.Script(man, 5, 1)
	optimized, profile, err := calibro.ProfileGuidedBuild(app, calibro.FullOptimization(8), script)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline text:  %7d bytes\n", baseline.TextBytes())
	fmt.Printf("optimized text: %7d bytes (%.2f%% smaller)\n",
		optimized.TextBytes(),
		100*float64(baseline.TextBytes()-optimized.TextBytes())/float64(baseline.TextBytes()))
	if s := optimized.Outline; s != nil {
		fmt.Printf("outliner: %d functions created, %d call sites rewritten, net %d instruction words saved\n",
			s.OutlinedFunctions, s.OutlinedOccurrences, s.NetWordsSaved())
	}
	fmt.Printf("profiler found %d hot methods (top 80%% of cycles)\n", len(profile.HotSet(0.8)))

	// Behaviour equivalence: interpreter vs both binaries on every
	// scripted operation.
	for _, run := range script {
		want, err := calibro.Interpret(app, run.Entry, run.Args[:])
		if err != nil {
			log.Fatal(err)
		}
		for name, img := range map[string]*calibro.Image{"baseline": baseline.Image, "optimized": optimized.Image} {
			got, err := calibro.Execute(img, run.Entry, run.Args[:])
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if got.Ret != want.Ret || got.Exc != want.Exc || !reflect.DeepEqual(got.Log, want.Log) {
				log.Fatalf("%s image diverges from the reference interpreter", name)
			}
		}
	}
	fmt.Printf("verified: %d scripted operations behave identically on both binaries\n", len(script))
}
