// Textapp demonstrates driving the pipeline from hand-written bytecode in
// the smali-like text format: assemble, build with full optimization, run
// on the emulated device, and disassemble what the outliner produced.
//
// Run with: go run ./examples/textapp
package main

import (
	"fmt"
	"log"

	calibro "repro"
	"repro/internal/a64"
	"repro/internal/dex"
)

const program = `
.app TextDemo
.file classes.dex
.class LDemo
.method main regs=4 ins=2
    # Compute checksum(n) * factor, logging intermediate values.
    invoke v0, LDemo.checksum (v2, v3)
    invoke-native v0, pLogValue (v0, v0)
    invoke v1, LDemo.scale (v0, v3)
    invoke-native v1, pLogValue (v1, v1)
    return v1
.end method
.method checksum regs=5 ins=1
    const v0, 0
    move v1, v4
  :loop
    if-eqz v1, :done
    mul v2, v1, v1
    add v0, v0, v2
    add-lit v1, v1, -1
    goto :loop
  :done
    return v0
.end method
.method scale regs=4 ins=2
    shl v0, v2, v3
    const v1, 1
    shr v1, v0, v1
    add v0, v0, v1
    return v0
.end method
.end class
.end file
`

func main() {
	log.SetFlags(0)
	app, err := dex.ParseText(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d methods\n", app.Name, app.NumMethods())

	baseline, err := calibro.Build(app, calibro.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := calibro.Build(app, calibro.FullOptimization(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("text: %d -> %d bytes\n", baseline.TextBytes(), optimized.TextBytes())

	args := []int64{0, 0, 5, 2} // main(v2=5, v3=2)
	want, err := calibro.Interpret(app, 0, []int64{5, 2})
	if err != nil {
		log.Fatal(err)
	}
	got, err := calibro.Execute(optimized.Image, 0, []int64{5, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter: ret=%d log=%v\n", want.Ret, want.Log)
	fmt.Printf("emulator:    ret=%d log=%v (%d cycles)\n", got.Ret, got.Log, got.Cycles)
	_ = args

	fmt.Println("\ncompiled checksum kernel (first 24 instructions):")
	code := optimized.Image.MethodCode(1)
	if len(code) > 24 {
		code = code[:24]
	}
	for _, line := range a64.Disassemble(code, 0) {
		fmt.Println("  " + line)
	}
}
