// Package a64 models the subset of the AArch64 (A64) instruction set that
// the Android Runtime's code generator emits for compiled dex methods, with
// bit-exact machine encodings.
//
// The subset covers the instructions Calibro has to understand:
//
//   - data-processing immediate: ADD/ADDS/SUB/SUBS (with optional LSL #12),
//     MOVZ/MOVN/MOVK
//   - data-processing register: ADD/ADDS/SUB/SUBS, AND/ORR/EOR
//   - loads/stores: LDR/STR (unsigned immediate, 32/64-bit), LDP/STP
//     (signed offset, pre- and post-index), LDR (PC-relative literal)
//   - branches: B, BL, B.cond, CBZ/CBNZ, TBZ/TBNZ, BR, BLR, RET
//   - PC-relative address formation: ADR, ADRP
//   - NOP and BRK
//
// Instructions are represented by the symbolic Inst type; Encode and Decode
// convert between Inst and 32-bit instruction words. Branch and literal
// displacements are held as byte offsets relative to the instruction's own
// address, exactly as needed by the link-time patcher: after outlining moves
// code, the patcher recomputes the byte offset and re-encodes the word.
//
// The package is deliberately strict: Encode rejects immediates that do not
// fit their field, and Decode refuses words outside the subset (returning
// ok=false) so that embedded data in a code stream is never silently
// misinterpreted as an instruction — the exact failure mode that motivates
// Calibro's compile-time metadata.
package a64

// WordSize is the size in bytes of every A64 instruction.
const WordSize = 4
