package a64

import "fmt"

// Label names a position in an Asm program that is bound at most once.
// Branch instructions may target labels before they are bound.
type Label int

// Range is a half-open byte range [Start, End) within a code stream.
type Range struct {
	Start int
	End   int
}

// Len returns the length of the range in bytes.
func (r Range) Len() int { return r.End - r.Start }

// Contains reports whether the byte offset off falls inside the range.
func (r Range) Contains(off int) bool { return off >= r.Start && off < r.End }

// Reloc records a resolved intra-program PC-relative reference: the byte
// offset of the referring instruction and the byte offset of its target.
type Reloc struct {
	InstOff   int
	TargetOff int
}

// ExtRef records a call site whose target is a symbol outside the program
// (an outlining thunk, another method's code, an ART stub). The displacement
// field of the instruction is left zero; the linker binds it.
type ExtRef struct {
	InstOff int
	Symbol  int
}

// Program is the finalized output of an Asm: encoded words plus the
// relocation information the compile-time metadata collector consumes.
type Program struct {
	Words  []uint32
	PCRel  []Reloc // intra-program PC-relative references
	Ext    []ExtRef
	Data   []Range // embedded (non-instruction) byte ranges
	Labels []int   // label -> byte offset
}

// Size returns the program size in bytes.
func (p *Program) Size() int { return len(p.Words) * WordSize }

type asmItem struct {
	inst    Inst
	label   Label // target label, or -1
	symbol  int   // external symbol, or -1
	raw     bool  // raw data word in inst.Imm
	diffLo  bool  // low word of a label-difference entry
	diffHi  bool  // high word of a label-difference entry
	target  Label // label-difference: target label
	baseLbl Label // label-difference: base label
}

// Asm builds one method's code stream: instructions, label-targeted
// branches, external call sites, and embedded data words. The zero value is
// ready to use.
type Asm struct {
	items  []asmItem
	labels []int // label -> item index, -1 if unbound
}

// PC returns the byte offset the next emitted item will occupy.
func (a *Asm) PC() int { return len(a.items) * WordSize }

// Reset empties the assembler while keeping its item and label backing
// arrays, so a pooled Asm reused across methods stops allocating once it
// has grown to the largest method seen.
func (a *Asm) Reset() {
	a.items = a.items[:0]
	a.labels = a.labels[:0]
}

// NewLabel allocates an unbound label.
func (a *Asm) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

// Bind binds l to the current position. Binding twice panics: it is always
// a code-generator bug.
func (a *Asm) Bind(l Label) {
	if a.labels[l] != -1 {
		panic(fmt.Sprintf("a64: label %d bound twice", l))
	}
	a.labels[l] = len(a.items)
}

// Inst appends a fully specified instruction and returns its byte offset.
func (a *Asm) Inst(i Inst) int {
	off := a.PC()
	a.items = append(a.items, asmItem{inst: i, label: -1, symbol: -1})
	return off
}

// InstTo appends a PC-relative instruction whose displacement will resolve
// to the offset of label l at Finalize time.
func (a *Asm) InstTo(i Inst, l Label) int {
	if !i.Op.IsPCRel() {
		panic(fmt.Sprintf("a64: InstTo with non-PC-relative op %s", i.Op))
	}
	off := a.PC()
	a.items = append(a.items, asmItem{inst: i, label: l, symbol: -1})
	return off
}

// BlSym appends a BL whose target is the external symbol sym.
func (a *Asm) BlSym(sym int) int {
	off := a.PC()
	a.items = append(a.items, asmItem{inst: Inst{Op: OpBl}, label: -1, symbol: sym})
	return off
}

// Raw appends one embedded data word (a literal-pool entry or inline
// constant) and returns its byte offset.
func (a *Asm) Raw(w uint32) int {
	off := a.PC()
	a.items = append(a.items, asmItem{inst: Inst{Imm: int64(w)}, label: -1, symbol: -1, raw: true})
	return off
}

// Raw64 appends one 64-bit embedded data value as two little-endian words.
func (a *Asm) Raw64(v uint64) int {
	off := a.Raw(uint32(v))
	a.Raw(uint32(v >> 32))
	return off
}

// RawLabelDiff appends a 64-bit embedded data value that resolves at
// Finalize time to offset(target) - offset(base): the entry format of
// jump tables for indirect branches.
func (a *Asm) RawLabelDiff(target, base Label) int {
	off := a.PC()
	a.items = append(a.items,
		asmItem{label: -1, symbol: -1, raw: true, diffLo: true, target: target, baseLbl: base},
		asmItem{label: -1, symbol: -1, raw: true, diffHi: true, target: target, baseLbl: base},
	)
	return off
}

// Finalize resolves labels, encodes every instruction, and returns the
// completed program.
func (a *Asm) Finalize() (*Program, error) {
	// Count the relocation records first so every output slice is allocated
	// exactly once at its final size (the records escape into the compiled
	// method's metadata, so they cannot be pooled).
	var nPCRel, nExt, nData int
	prevRaw := false
	for _, it := range a.items {
		if it.raw {
			if !prevRaw {
				nData++
			}
			prevRaw = true
			continue
		}
		prevRaw = false
		if it.label != -1 {
			nPCRel++
		} else if it.symbol != -1 {
			nExt++
		} else if it.inst.Op.IsPCRel() {
			nPCRel++
		}
	}
	p := &Program{
		Words:  make([]uint32, len(a.items)),
		Labels: make([]int, len(a.labels)),
	}
	if nPCRel > 0 {
		p.PCRel = make([]Reloc, 0, nPCRel)
	}
	if nExt > 0 {
		p.Ext = make([]ExtRef, 0, nExt)
	}
	if nData > 0 {
		p.Data = make([]Range, 0, nData)
	}
	for l, idx := range a.labels {
		if idx == -1 {
			return nil, fmt.Errorf("a64: label %d never bound", l)
		}
		p.Labels[l] = idx * WordSize
	}
	var dataStart = -1
	flushData := func(end int) {
		if dataStart != -1 {
			p.Data = append(p.Data, Range{Start: dataStart, End: end})
			dataStart = -1
		}
	}
	for idx, it := range a.items {
		off := idx * WordSize
		if it.raw {
			if dataStart == -1 {
				dataStart = off
			}
			switch {
			case it.diffLo:
				diff := int64(p.Labels[it.target] - p.Labels[it.baseLbl])
				p.Words[idx] = uint32(uint64(diff))
			case it.diffHi:
				diff := int64(p.Labels[it.target] - p.Labels[it.baseLbl])
				p.Words[idx] = uint32(uint64(diff) >> 32)
			default:
				p.Words[idx] = uint32(it.inst.Imm)
			}
			continue
		}
		flushData(off)
		inst := it.inst
		if it.label != -1 {
			target := p.Labels[it.label]
			inst.Imm = int64(target - off)
			p.PCRel = append(p.PCRel, Reloc{InstOff: off, TargetOff: target})
		} else if it.symbol != -1 {
			inst.Imm = 0
			p.Ext = append(p.Ext, ExtRef{InstOff: off, Symbol: it.symbol})
		} else if inst.Op.IsPCRel() {
			// Explicit-displacement PC-relative instruction: record the
			// implied target so the metadata stays complete.
			p.PCRel = append(p.PCRel, Reloc{InstOff: off, TargetOff: off + int(inst.Imm)})
		}
		w, err := Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("at offset %#x: %w", off, err)
		}
		p.Words[idx] = w
	}
	flushData(len(a.items) * WordSize)
	return p, nil
}

// Disassemble renders the words of a code stream one instruction per line,
// marking undecodable words as data. It is a debugging aid used by oatdump.
func Disassemble(words []uint32, base int) []string {
	lines := make([]string, 0, len(words))
	for idx, w := range words {
		off := base + idx*WordSize
		if i, ok := Decode(w); ok {
			lines = append(lines, fmt.Sprintf("%#08x: %08x  %s", off, w, i))
		} else {
			lines = append(lines, fmt.Sprintf("%#08x: %08x  .word", off, w))
		}
	}
	return lines
}
