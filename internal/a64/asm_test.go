package a64

import (
	"strings"
	"testing"
)

func TestAsmForwardBackwardLabels(t *testing.T) {
	var a Asm
	top := a.NewLabel()
	exit := a.NewLabel()

	a.Bind(top)
	a.Inst(Inst{Op: OpSubsImm, Sf: true, Rd: X0, Rn: X0, Imm: 1}) // subs x0, x0, #1
	a.InstTo(Inst{Op: OpCbz, Sf: true, Rd: X0}, exit)             // forward
	a.InstTo(Inst{Op: OpB}, top)                                  // backward
	a.Bind(exit)
	a.Inst(Inst{Op: OpRet, Rn: LR})

	p, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 16 {
		t.Fatalf("Size = %d, want 16", p.Size())
	}
	cbz, ok := Decode(p.Words[1])
	if !ok || cbz.Op != OpCbz || cbz.Imm != 8 {
		t.Errorf("cbz = %+v, want forward +8", cbz)
	}
	b, ok := Decode(p.Words[2])
	if !ok || b.Op != OpB || b.Imm != -8 {
		t.Errorf("b = %+v, want backward -8", b)
	}
	wantRel := []Reloc{{InstOff: 4, TargetOff: 12}, {InstOff: 8, TargetOff: 0}}
	if len(p.PCRel) != len(wantRel) {
		t.Fatalf("PCRel = %v, want %v", p.PCRel, wantRel)
	}
	for i, r := range wantRel {
		if p.PCRel[i] != r {
			t.Errorf("PCRel[%d] = %v, want %v", i, p.PCRel[i], r)
		}
	}
	if p.Labels[top] != 0 || p.Labels[exit] != 12 {
		t.Errorf("label offsets = %v", p.Labels)
	}
}

func TestAsmExternalRefsAndData(t *testing.T) {
	var a Asm
	lit := a.NewLabel()
	a.BlSym(42)
	a.InstTo(Inst{Op: OpLdrLit, Sf: true, Rd: X1}, lit)
	a.Inst(Inst{Op: OpRet, Rn: LR})
	a.Bind(lit)
	a.Raw(0xDEADBEEF)
	a.Raw(0x00000000)

	p, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ext) != 1 || p.Ext[0] != (ExtRef{InstOff: 0, Symbol: 42}) {
		t.Errorf("Ext = %v", p.Ext)
	}
	if len(p.Data) != 1 || p.Data[0] != (Range{Start: 12, End: 20}) {
		t.Errorf("Data = %v", p.Data)
	}
	if p.Words[3] != 0xDEADBEEF {
		t.Errorf("raw word = %#x", p.Words[3])
	}
	// The BL placeholder displacement is zero until the linker binds it.
	bl, ok := Decode(p.Words[0])
	if !ok || bl.Op != OpBl || bl.Imm != 0 {
		t.Errorf("bl placeholder = %+v", bl)
	}
	ldr, ok := Decode(p.Words[1])
	if !ok || ldr.Imm != 8 {
		t.Errorf("ldr literal displacement = %+v", ldr)
	}
}

func TestAsmUnboundLabel(t *testing.T) {
	var a Asm
	l := a.NewLabel()
	a.InstTo(Inst{Op: OpB}, l)
	if _, err := a.Finalize(); err == nil {
		t.Fatal("Finalize with unbound label succeeded")
	}
}

func TestAsmDoubleBindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double bind")
		}
	}()
	var a Asm
	l := a.NewLabel()
	a.Bind(l)
	a.Bind(l)
}

func TestAsmInstToRequiresPCRel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on InstTo with non-PC-relative op")
		}
	}()
	var a Asm
	l := a.NewLabel()
	a.Bind(l)
	a.InstTo(Inst{Op: OpNop}, l)
}

func TestAsmEncodeErrorSurfaces(t *testing.T) {
	var a Asm
	a.Inst(Inst{Op: OpAddImm, Imm: 99999})
	if _, err := a.Finalize(); err == nil {
		t.Fatal("Finalize with unencodable inst succeeded")
	} else if !strings.Contains(err.Error(), "offset 0x0") {
		t.Errorf("error %q does not locate the instruction", err)
	}
}

func TestDisassemble(t *testing.T) {
	words := []uint32{
		MustEncode(Inst{Op: OpNop}),
		0xFFFFFFFF, // data
		MustEncode(Inst{Op: OpRet, Rn: LR}),
	}
	lines := Disassemble(words, 0x1000)
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "nop") || !strings.Contains(lines[0], "0x00001000") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], ".word") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "ret") {
		t.Errorf("line 2 = %q", lines[2])
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Start: 8, End: 16}
	if r.Len() != 8 {
		t.Errorf("Len = %d", r.Len())
	}
	for off, want := range map[int]bool{7: false, 8: true, 15: true, 16: false} {
		if r.Contains(off) != want {
			t.Errorf("Contains(%d) = %v", off, !want)
		}
	}
}

func TestAsmRaw64AndLabelDiff(t *testing.T) {
	var a Asm
	table := a.NewLabel()
	target := a.NewLabel()
	a.InstTo(Inst{Op: OpAdr, Rd: X0}, table)
	a.Inst(Inst{Op: OpRet, Rn: LR})
	a.Bind(table)
	a.RawLabelDiff(target, table)
	a.Raw64(0x0123456789ABCDEF)
	a.Bind(target)
	a.Inst(Inst{Op: OpNop})

	p, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Table at word 2; entry = offset(target) - offset(table) = 24-8 = 16.
	lo := uint64(p.Words[2]) | uint64(p.Words[3])<<32
	if lo != 16 {
		t.Errorf("label diff = %d, want 16", lo)
	}
	if v := uint64(p.Words[4]) | uint64(p.Words[5])<<32; v != 0x0123456789ABCDEF {
		t.Errorf("raw64 = %#x", v)
	}
	if len(p.Data) != 1 || p.Data[0].Start != 8 || p.Data[0].End != 24 {
		t.Errorf("data ranges = %v", p.Data)
	}
}
