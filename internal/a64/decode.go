package a64

import "fmt"

// signExtend interprets the low bits of v as a signed integer of the given
// width.
func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode interprets w as an A64 instruction word. It returns ok=false for
// any word outside the modeled subset — including words that are valid
// AArch64 but unused by the ART code generator, and arbitrary embedded data.
func Decode(w uint32) (Inst, bool) {
	sf := w>>31 == 1
	rd := Reg(w & 0x1F)
	rn := Reg((w >> 5) & 0x1F)
	rm := Reg((w >> 16) & 0x1F)

	// System instructions first: their fixed patterns would otherwise be
	// shadowed by broad masks below.
	if w == 0xD503201F {
		return Inst{Op: OpNop}, true
	}
	if w&0xFFE0001F == 0xD4200000 {
		return Inst{Op: OpBrk, Imm: int64((w >> 5) & 0xFFFF)}, true
	}
	switch w & 0xFFFFFC1F {
	case 0xD61F0000:
		return Inst{Op: OpBr, Rn: rn}, true
	case 0xD63F0000:
		return Inst{Op: OpBlr, Rn: rn}, true
	case 0xD65F0000:
		return Inst{Op: OpRet, Rn: rn}, true
	}

	// Add/subtract immediate: bits 28..23 == 100010.
	if (w>>23)&0x3F == 0x22 {
		i := Inst{Sf: sf, Rd: rd, Rn: rn, Imm: int64((w >> 10) & 0xFFF), Shift12: w>>22&1 == 1}
		switch (w >> 29) & 3 { // op:S
		case 0:
			i.Op = OpAddImm
		case 1:
			i.Op = OpAddsImm
		case 2:
			i.Op = OpSubImm
		case 3:
			i.Op = OpSubsImm
		}
		return i, true
	}

	// Move wide immediate: bits 28..23 == 100101.
	if (w>>23)&0x3F == 0x25 {
		i := Inst{Sf: sf, Rd: rd, Imm: int64((w >> 5) & 0xFFFF), HW: uint8((w >> 21) & 3)}
		switch (w >> 29) & 3 {
		case 0:
			i.Op = OpMovn
		case 2:
			i.Op = OpMovz
		case 3:
			i.Op = OpMovk
		default:
			return Inst{}, false
		}
		if !sf && i.HW > 1 {
			return Inst{}, false
		}
		return i, true
	}

	// Add/subtract shifted register: bits 28..24 == 01011, shift amount 0.
	if (w>>24)&0x1F == 0x0B {
		if (w>>10)&0x3F != 0 || (w>>22)&3 != 0 || (w>>21)&1 != 0 {
			return Inst{}, false // shifted/extended forms not modeled
		}
		i := Inst{Sf: sf, Rd: rd, Rn: rn, Rm: rm}
		switch (w >> 29) & 3 {
		case 0:
			i.Op = OpAddReg
		case 1:
			i.Op = OpAddsReg
		case 2:
			i.Op = OpSubReg
		case 3:
			i.Op = OpSubsReg
		}
		return i, true
	}

	// Logical shifted register: bits 28..24 == 01010, N==0, shift 0.
	if (w>>24)&0x1F == 0x0A {
		if (w>>10)&0x3F != 0 || (w>>21)&7 != 0 {
			return Inst{}, false
		}
		i := Inst{Sf: sf, Rd: rd, Rn: rn, Rm: rm}
		switch (w >> 29) & 3 {
		case 0:
			i.Op = OpAndReg
		case 1:
			i.Op = OpOrrReg
		case 2:
			i.Op = OpEorReg
		default:
			return Inst{}, false // ANDS not modeled
		}
		return i, true
	}

	// MUL (MADD with Ra=zr) and variable shifts.
	switch w & 0x7FE0FC00 {
	case 0x1B007C00:
		return Inst{Op: OpMul, Sf: sf, Rd: rd, Rn: rn, Rm: rm}, true
	case 0x1AC02000:
		return Inst{Op: OpLslReg, Sf: sf, Rd: rd, Rn: rn, Rm: rm}, true
	case 0x1AC02400:
		return Inst{Op: OpLsrReg, Sf: sf, Rd: rd, Rn: rn, Rm: rm}, true
	}

	// Load/store register, unsigned immediate: bits 29..24 == 111001.
	if (w>>24)&0x3F == 0x39 {
		size := (w >> 30) & 3
		opc := (w >> 22) & 3
		if size < 2 || opc > 1 {
			return Inst{}, false // byte/half and signed forms not modeled
		}
		scale := int64(4)
		if size == 3 {
			scale = 8
		}
		i := Inst{Sf: size == 3, Rd: rd, Rn: rn, Imm: int64((w>>10)&0xFFF) * scale}
		if opc == 1 {
			i.Op = OpLdrImm
		} else {
			i.Op = OpStrImm
		}
		return i, true
	}

	// Load/store register offset (64-bit, LSL #3 only).
	switch w & 0xFFE0FC00 {
	case 0xF8607800:
		return Inst{Op: OpLdrReg, Sf: true, Rd: rd, Rn: rn, Rm: rm}, true
	case 0xF8207800:
		return Inst{Op: OpStrReg, Sf: true, Rd: rd, Rn: rn, Rm: rm}, true
	}

	// Load/store pair, 64-bit.
	switch w & 0xFFC00000 {
	case 0xA9000000, 0xA9400000, 0xA9800000, 0xA9C00000, 0xA8800000, 0xA8C00000:
		i := Inst{Rd: rd, Rn: rn, Rt2: Reg((w >> 10) & 0x1F), Imm: signExtend((w>>15)&0x7F, 7) * 8}
		if w>>22&1 == 1 {
			i.Op = OpLdp
		} else {
			i.Op = OpStp
		}
		switch w & 0xFF800000 {
		case 0xA9000000:
			i.Index = IndexOffset
		case 0xA9800000:
			i.Index = IndexPre
		case 0xA8800000:
			i.Index = IndexPost
		}
		return i, true
	}

	// LDR literal.
	switch w & 0xFF000000 {
	case 0x18000000, 0x58000000:
		return Inst{Op: OpLdrLit, Sf: w>>30&1 == 1, Rd: rd, Imm: signExtend((w>>5)&0x7FFFF, 19) * WordSize}, true
	}

	// Unconditional immediate branches.
	switch w & 0xFC000000 {
	case 0x14000000:
		return Inst{Op: OpB, Imm: signExtend(w&0x3FFFFFF, 26) * WordSize}, true
	case 0x94000000:
		return Inst{Op: OpBl, Imm: signExtend(w&0x3FFFFFF, 26) * WordSize}, true
	}

	// Conditional branch.
	if w&0xFF000010 == 0x54000000 {
		return Inst{Op: OpBCond, Cond: Cond(w & 0xF), Imm: signExtend((w>>5)&0x7FFFF, 19) * WordSize}, true
	}

	// Compare-and-branch.
	switch w & 0x7F000000 {
	case 0x34000000:
		return Inst{Op: OpCbz, Sf: sf, Rd: rd, Imm: signExtend((w>>5)&0x7FFFF, 19) * WordSize}, true
	case 0x35000000:
		return Inst{Op: OpCbnz, Sf: sf, Rd: rd, Imm: signExtend((w>>5)&0x7FFFF, 19) * WordSize}, true
	case 0x36000000, 0x37000000:
		i := Inst{Rd: rd, Bit: uint8(w>>31<<5 | w>>19&0x1F), Imm: signExtend((w>>5)&0x3FFF, 14) * WordSize}
		if w>>24&0x7F == 0x37 {
			i.Op = OpTbnz
		} else {
			i.Op = OpTbz
		}
		return i, true
	}

	// PC-relative address formation.
	switch w & 0x9F000000 {
	case 0x10000000:
		return Inst{Op: OpAdr, Rd: rd, Imm: signExtend((w>>29&3)|(w>>5&0x7FFFF)<<2, 21)}, true
	case 0x90000000:
		return Inst{Op: OpAdrp, Rd: rd, Imm: signExtend((w>>29&3)|(w>>5&0x7FFFF)<<2, 21) << 12}, true
	}

	return Inst{}, false
}

// PatchRel re-encodes the PC-relative displacement of the instruction word w
// to newOff (a byte offset from the instruction itself; for ADRP a byte
// offset between pages). It returns the patched word. The word must decode
// to a PC-relative instruction in the subset.
func PatchRel(w uint32, newOff int64) (uint32, error) {
	i, ok := Decode(w)
	if !ok || !i.Op.IsPCRel() {
		return 0, errNotPCRel(w)
	}
	i.Imm = newOff
	return Encode(i)
}

type notPCRelError uint32

func errNotPCRel(w uint32) error { return notPCRelError(w) }

// Error names the offending word: this message is the only diagnostic a
// failed patch surfaces, so it must say *what* refused to patch.
func (e notPCRelError) Error() string {
	return fmt.Sprintf("a64: word %#08x is not a PC-relative instruction in the modeled subset", uint32(e))
}
