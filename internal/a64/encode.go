package a64

import "fmt"

// encErr builds a descriptive encoding error.
func encErr(i Inst, format string, args ...any) error {
	return fmt.Errorf("a64: encode %s: %s", i.Op, fmt.Sprintf(format, args...))
}

func (i Inst) sfBit() uint32 {
	if i.Sf {
		return 1 << 31
	}
	return 0
}

// fitsSigned reports whether v fits in a signed field of the given width.
func fitsSigned(v int64, bits uint) bool {
	limit := int64(1) << (bits - 1)
	return v >= -limit && v < limit
}

// branchImm encodes a byte displacement into a word-scaled signed field.
func branchImm(i Inst, bits uint) (uint32, error) {
	if i.Imm%WordSize != 0 {
		return 0, encErr(i, "displacement %#x not word aligned", i.Imm)
	}
	words := i.Imm / WordSize
	if !fitsSigned(words, bits) {
		return 0, encErr(i, "displacement %#x out of range for imm%d", i.Imm, bits)
	}
	return uint32(words) & (1<<bits - 1), nil
}

// Encode converts i to its 32-bit machine encoding.
func Encode(i Inst) (uint32, error) {
	if !i.Rd.Valid() || !i.Rn.Valid() || !i.Rm.Valid() || !i.Rt2.Valid() {
		return 0, encErr(i, "register out of range")
	}
	rd, rn, rm, rt2 := uint32(i.Rd), uint32(i.Rn), uint32(i.Rm), uint32(i.Rt2)

	switch i.Op {
	case OpAddImm, OpAddsImm, OpSubImm, OpSubsImm:
		if i.Imm < 0 || i.Imm > 0xFFF {
			return 0, encErr(i, "imm12 %d out of range", i.Imm)
		}
		var base uint32
		switch i.Op {
		case OpAddImm:
			base = 0x11000000
		case OpAddsImm:
			base = 0x31000000
		case OpSubImm:
			base = 0x51000000
		case OpSubsImm:
			base = 0x71000000
		}
		w := base | i.sfBit() | uint32(i.Imm)<<10 | rn<<5 | rd
		if i.Shift12 {
			w |= 1 << 22
		}
		return w, nil

	case OpMovz, OpMovn, OpMovk:
		if i.Imm < 0 || i.Imm > 0xFFFF {
			return 0, encErr(i, "imm16 %d out of range", i.Imm)
		}
		maxHW := uint8(3)
		if !i.Sf {
			maxHW = 1
		}
		if i.HW > maxHW {
			return 0, encErr(i, "hw %d out of range", i.HW)
		}
		var base uint32
		switch i.Op {
		case OpMovn:
			base = 0x12800000
		case OpMovz:
			base = 0x52800000
		case OpMovk:
			base = 0x72800000
		}
		return base | i.sfBit() | uint32(i.HW)<<21 | uint32(i.Imm)<<5 | rd, nil

	case OpAddReg, OpAddsReg, OpSubReg, OpSubsReg:
		var base uint32
		switch i.Op {
		case OpAddReg:
			base = 0x0B000000
		case OpAddsReg:
			base = 0x2B000000
		case OpSubReg:
			base = 0x4B000000
		case OpSubsReg:
			base = 0x6B000000
		}
		return base | i.sfBit() | rm<<16 | rn<<5 | rd, nil

	case OpAndReg, OpOrrReg, OpEorReg:
		var base uint32
		switch i.Op {
		case OpAndReg:
			base = 0x0A000000
		case OpOrrReg:
			base = 0x2A000000
		case OpEorReg:
			base = 0x4A000000
		}
		return base | i.sfBit() | rm<<16 | rn<<5 | rd, nil

	case OpMul:
		base := uint32(0x1B007C00)
		return base | i.sfBit() | rm<<16 | rn<<5 | rd, nil

	case OpLslReg, OpLsrReg:
		base := uint32(0x1AC02000)
		if i.Op == OpLsrReg {
			base = 0x1AC02400
		}
		return base | i.sfBit() | rm<<16 | rn<<5 | rd, nil

	case OpLdrImm, OpStrImm:
		scale := int64(4)
		base := uint32(0xB9000000)
		if i.Sf {
			scale = 8
			base = 0xF9000000
		}
		if i.Op == OpLdrImm {
			base |= 1 << 22
		}
		if i.Imm < 0 || i.Imm%scale != 0 || i.Imm/scale > 0xFFF {
			return 0, encErr(i, "offset %d invalid for scale %d", i.Imm, scale)
		}
		return base | uint32(i.Imm/scale)<<10 | rn<<5 | rd, nil

	case OpLdrReg, OpStrReg:
		base := uint32(0xF8207800)
		if i.Op == OpLdrReg {
			base = 0xF8607800
		}
		return base | rm<<16 | rn<<5 | rd, nil

	case OpLdp, OpStp:
		if i.Imm%8 != 0 || !fitsSigned(i.Imm/8, 7) {
			return 0, encErr(i, "pair offset %d invalid", i.Imm)
		}
		imm7 := uint32(i.Imm/8) & 0x7F
		var base uint32
		switch i.Index {
		case IndexOffset:
			base = 0xA9000000
		case IndexPre:
			base = 0xA9800000
		case IndexPost:
			base = 0xA8800000
		default:
			return 0, encErr(i, "bad index mode %d", i.Index)
		}
		if i.Op == OpLdp {
			base |= 1 << 22
		}
		return base | imm7<<15 | rt2<<10 | rn<<5 | rd, nil

	case OpLdrLit:
		imm, err := branchImm(i, 19)
		if err != nil {
			return 0, err
		}
		base := uint32(0x18000000)
		if i.Sf {
			base = 0x58000000
		}
		return base | imm<<5 | rd, nil

	case OpB, OpBl:
		imm, err := branchImm(i, 26)
		if err != nil {
			return 0, err
		}
		base := uint32(0x14000000)
		if i.Op == OpBl {
			base = 0x94000000
		}
		return base | imm, nil

	case OpBCond:
		if i.Cond > NV {
			return 0, encErr(i, "bad condition %d", i.Cond)
		}
		imm, err := branchImm(i, 19)
		if err != nil {
			return 0, err
		}
		return 0x54000000 | imm<<5 | uint32(i.Cond), nil

	case OpCbz, OpCbnz:
		imm, err := branchImm(i, 19)
		if err != nil {
			return 0, err
		}
		base := uint32(0x34000000)
		if i.Op == OpCbnz {
			base = 0x35000000
		}
		return base | i.sfBit() | imm<<5 | rd, nil

	case OpTbz, OpTbnz:
		if i.Bit > 63 {
			return 0, encErr(i, "bit %d out of range", i.Bit)
		}
		imm, err := branchImm(i, 14)
		if err != nil {
			return 0, err
		}
		base := uint32(0x36000000)
		if i.Op == OpTbnz {
			base = 0x37000000
		}
		return base | uint32(i.Bit>>5)<<31 | uint32(i.Bit&0x1F)<<19 | imm<<5 | rd, nil

	case OpBr, OpBlr, OpRet:
		var base uint32
		switch i.Op {
		case OpBr:
			base = 0xD61F0000
		case OpBlr:
			base = 0xD63F0000
		case OpRet:
			base = 0xD65F0000
		}
		return base | rn<<5, nil

	case OpAdr:
		if !fitsSigned(i.Imm, 21) {
			return 0, encErr(i, "adr displacement %#x out of range", i.Imm)
		}
		imm := uint32(i.Imm) & 0x1FFFFF
		return 0x10000000 | (imm&3)<<29 | (imm>>2)<<5 | rd, nil

	case OpAdrp:
		if i.Imm%4096 != 0 {
			return 0, encErr(i, "adrp displacement %#x not page aligned", i.Imm)
		}
		pages := i.Imm >> 12
		if !fitsSigned(pages, 21) {
			return 0, encErr(i, "adrp displacement %#x out of range", i.Imm)
		}
		imm := uint32(pages) & 0x1FFFFF
		return 0x90000000 | (imm&3)<<29 | (imm>>2)<<5 | rd, nil

	case OpNop:
		return 0xD503201F, nil

	case OpBrk:
		if i.Imm < 0 || i.Imm > 0xFFFF {
			return 0, encErr(i, "imm16 %d out of range", i.Imm)
		}
		return 0xD4200000 | uint32(i.Imm)<<5, nil
	}
	return 0, encErr(i, "unencodable op")
}

// MustEncode is Encode for immediates known to fit; it panics on error and
// is intended for code-generator templates with constant operands.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
