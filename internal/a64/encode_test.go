package a64

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// golden encodings were cross-checked against GNU binutils output for the
// same assembly text.
func TestGoldenEncodings(t *testing.T) {
	tests := []struct {
		name string
		inst Inst
		want uint32
		text string
	}{
		{"ret", Inst{Op: OpRet, Rn: LR}, 0xD65F03C0, "ret"},
		{"nop", Inst{Op: OpNop}, 0xD503201F, "nop"},
		{"blr x30", Inst{Op: OpBlr, Rn: LR}, 0xD63F03C0, "blr x30"},
		{"br x16", Inst{Op: OpBr, Rn: IP0}, 0xD61F0200, "br x16"},
		{
			"stp x29, x30, [sp, #-32]!",
			Inst{Op: OpStp, Rd: FP, Rt2: LR, Rn: SP, Imm: -32, Index: IndexPre},
			0xA9BE7BFD, "stp x29, x30, [sp, #-32]!",
		},
		{
			"ldp x29, x30, [sp], #32",
			Inst{Op: OpLdp, Rd: FP, Rt2: LR, Rn: SP, Imm: 32, Index: IndexPost},
			0xA8C27BFD, "ldp x29, x30, [sp], #32",
		},
		{
			"ldr x30, [x0, #32]",
			Inst{Op: OpLdrImm, Sf: true, Rd: LR, Rn: X0, Imm: 32},
			0xF940101E, "ldr x30, [x0, #32]",
		},
		{
			"sub x16, sp, #0x2000",
			Inst{Op: OpSubImm, Sf: true, Rd: IP0, Rn: SP, Imm: 2, Shift12: true},
			0xD1400BF0, "sub x16, sp, #2, lsl #12",
		},
		{
			"ldr wzr, [x16]",
			Inst{Op: OpLdrImm, Rd: XZR, Rn: IP0},
			0xB940021F, "ldr wzr, [x16]",
		},
		{
			"cbz w0, #+0xc",
			Inst{Op: OpCbz, Rd: X0, Imm: 0xc},
			0x34000060, "cbz w0, #+0xc",
		},
		{
			"mov x3, x4",
			Inst{Op: OpOrrReg, Sf: true, Rd: X3, Rn: XZR, Rm: X4},
			0xAA0403E3, "mov x3, x4",
		},
		{
			"b.ne #+8",
			Inst{Op: OpBCond, Cond: NE, Imm: 8},
			0x54000041, "b.ne #+0x8",
		},
		{
			"adrp x0, #0x1000",
			Inst{Op: OpAdrp, Rd: X0, Imm: 0x1000},
			0xB0000000, "adrp x0, #+0x1000",
		},
		{
			"movz x0, #1",
			Inst{Op: OpMovz, Sf: true, Rd: X0, Imm: 1},
			0xD2800020, "movz x0, #1",
		},
		{
			"bl #0",
			Inst{Op: OpBl},
			0x94000000, "bl #+0x0",
		},
		{
			"b #-4",
			Inst{Op: OpB, Imm: -4},
			0x17FFFFFF, "b #-0x4",
		},
		{
			"cmp w2, w1",
			Inst{Op: OpSubsReg, Rd: XZR, Rn: X2, Rm: X1},
			0x6B01005F, "cmp w2, w1",
		},
		{
			"tbnz x5, #33, #+16",
			Inst{Op: OpTbnz, Rd: X5, Bit: 33, Imm: 16},
			0xB7080085, "tbnz x5, #33, #+0x10",
		},
		{
			"brk #0",
			Inst{Op: OpBrk},
			0xD4200000, "brk #0x0",
		},
		{
			"mul x1, x2, x3",
			Inst{Op: OpMul, Sf: true, Rd: X1, Rn: X2, Rm: X3},
			0x9B037C41, "mul x1, x2, x3",
		},
		{
			"lsl x0, x1, x2",
			Inst{Op: OpLslReg, Sf: true, Rd: X0, Rn: X1, Rm: X2},
			0x9AC22020, "lsl x0, x1, x2",
		},
		{
			"lsr x5, x6, x7",
			Inst{Op: OpLsrReg, Sf: true, Rd: X5, Rn: X6, Rm: X7},
			0x9AC724C5, "lsr x5, x6, x7",
		},
		{
			"ldr x0, [x1, x2, lsl #3]",
			Inst{Op: OpLdrReg, Sf: true, Rd: X0, Rn: X1, Rm: X2},
			0xF8627820, "ldr x0, [x1, x2, lsl #3]",
		},
		{
			"str x5, [x9, x10, lsl #3]",
			Inst{Op: OpStrReg, Sf: true, Rd: X5, Rn: X9, Rm: X10},
			0xF82A7925, "str x5, [x9, x10, lsl #3]",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.inst)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if got != tt.want {
				t.Errorf("Encode = %#08x, want %#08x", got, tt.want)
			}
			dec, ok := Decode(got)
			if !ok {
				t.Fatalf("Decode(%#08x) failed", got)
			}
			if dec != tt.inst {
				t.Errorf("Decode = %+v, want %+v", dec, tt.inst)
			}
			if s := tt.inst.String(); s != tt.text {
				t.Errorf("String = %q, want %q", s, tt.text)
			}
		})
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpAddImm, Imm: 4096},                 // imm12 overflow
		{Op: OpAddImm, Imm: -1},                   // negative imm12
		{Op: OpMovz, Imm: 1 << 16},                // imm16 overflow
		{Op: OpMovz, HW: 2},                       // hw too large for W form
		{Op: OpB, Imm: 2},                         // unaligned displacement
		{Op: OpB, Imm: 1 << 30},                   // imm26 overflow
		{Op: OpBCond, Imm: 1 << 22},               // imm19 overflow
		{Op: OpTbz, Bit: 64},                      // bit out of range
		{Op: OpTbz, Imm: 1 << 17},                 // imm14 overflow
		{Op: OpLdrImm, Sf: true, Imm: 4},          // not multiple of 8
		{Op: OpLdrImm, Imm: 3},                    // not multiple of 4
		{Op: OpLdrImm, Sf: true, Imm: 8 * 4096},   // imm12 overflow after scaling
		{Op: OpLdp, Imm: 4},                       // pair offset not multiple of 8
		{Op: OpLdp, Imm: 8 * 64},                  // imm7 overflow
		{Op: OpAdr, Imm: 1 << 21},                 // out of ±1MiB
		{Op: OpAdrp, Imm: 4096 + 1},               // not page aligned
		{Op: OpAdrp, Imm: int64(4096) << 21},      // out of range
		{Op: OpBrk, Imm: 1 << 16},                 // imm16 overflow
		{Op: OpInvalid},                           // not encodable
		{Op: OpAddImm, Rd: 32},                    // register out of range
		{Op: OpLdp, Imm: 8, Index: IndexMode(99)}, // bad index mode
	}
	for _, inst := range bad {
		if w, err := Encode(inst); err == nil {
			t.Errorf("Encode(%+v) = %#08x, want error", inst, w)
		}
	}
}

// TestDecodeRejectsJunk feeds words that are either invalid AArch64 or
// outside the modeled subset and checks none decode.
func TestDecodeRejectsJunk(t *testing.T) {
	junk := []uint32{
		0x00000000,         // UDF-like
		0xFFFFFFFF,         // not an instruction
		0x1E604000,         // FMOV (FP not modeled)
		0x9B030C41,         // MADD with accumulator (only MUL form modeled)
		0x9BC37C41,         // UMULH (not modeled)
		0x1AC32841,         // ASRV (arithmetic shift not modeled)
		0xD5033FDF,         // ISB (system, not NOP)
		0x38401C41,         // LDRB post-index (byte loads not modeled)
		0x8B20C041,         // ADD extended register (not modeled)
		0xAA140694,         // ORR with shift amount != 0
		0x12C00001,         // MOVN w with hw=2 (invalid form)
		0x54000050 | 1<<4,  // B.cond with bit4 set
		0xD4200001,         // BRK with nonzero low bits
		0x7A000000,         // ANDS-class / unmodeled
		0xA9200000 | 1<<26, // SIMD pair
	}
	for _, w := range junk {
		if inst, ok := Decode(w); ok {
			t.Errorf("Decode(%#08x) = %v, want not ok", w, inst)
		}
	}
}

// randInst builds a random canonical instruction in the modeled subset.
func randInst(r *rand.Rand) Inst {
	reg := func() Reg { return Reg(r.Intn(32)) }
	word := func(n int64) int64 { return (r.Int63n(2*n) - n) * WordSize }
	ops := []Op{
		OpAddImm, OpAddsImm, OpSubImm, OpSubsImm, OpMovz, OpMovn, OpMovk,
		OpAddReg, OpAddsReg, OpSubReg, OpSubsReg, OpAndReg, OpOrrReg, OpEorReg,
		OpMul, OpLslReg, OpLsrReg,
		OpLdrImm, OpStrImm, OpLdrReg, OpStrReg, OpLdp, OpStp, OpLdrLit,
		OpB, OpBl, OpBCond, OpCbz, OpCbnz, OpTbz, OpTbnz, OpBr, OpBlr, OpRet,
		OpAdr, OpAdrp, OpNop, OpBrk,
	}
	op := ops[r.Intn(len(ops))]
	i := Inst{Op: op}
	switch op {
	case OpAddImm, OpAddsImm, OpSubImm, OpSubsImm:
		i.Sf = r.Intn(2) == 0
		i.Rd, i.Rn = reg(), reg()
		i.Imm = r.Int63n(4096)
		i.Shift12 = r.Intn(2) == 0
	case OpMovz, OpMovn, OpMovk:
		i.Sf = r.Intn(2) == 0
		i.Rd = reg()
		i.Imm = r.Int63n(1 << 16)
		if i.Sf {
			i.HW = uint8(r.Intn(4))
		} else {
			i.HW = uint8(r.Intn(2))
		}
	case OpAddReg, OpAddsReg, OpSubReg, OpSubsReg, OpAndReg, OpOrrReg, OpEorReg,
		OpMul, OpLslReg, OpLsrReg:
		i.Sf = r.Intn(2) == 0
		i.Rd, i.Rn, i.Rm = reg(), reg(), reg()
	case OpLdrImm, OpStrImm:
		i.Sf = r.Intn(2) == 0
		i.Rd, i.Rn = reg(), reg()
		scale := int64(4)
		if i.Sf {
			scale = 8
		}
		i.Imm = r.Int63n(4096) * scale
	case OpLdrReg, OpStrReg:
		i.Sf = true
		i.Rd, i.Rn, i.Rm = reg(), reg(), reg()
	case OpLdp, OpStp:
		i.Rd, i.Rt2, i.Rn = reg(), reg(), reg()
		i.Imm = (r.Int63n(128) - 64) * 8
		i.Index = IndexMode(r.Intn(3))
	case OpLdrLit:
		i.Sf = r.Intn(2) == 0
		i.Rd = reg()
		i.Imm = word(1 << 18)
	case OpB, OpBl:
		i.Imm = word(1 << 25)
	case OpBCond:
		i.Cond = Cond(r.Intn(16))
		i.Imm = word(1 << 18)
	case OpCbz, OpCbnz:
		i.Sf = r.Intn(2) == 0
		i.Rd = reg()
		i.Imm = word(1 << 18)
	case OpTbz, OpTbnz:
		i.Rd = reg()
		i.Bit = uint8(r.Intn(64))
		i.Imm = word(1 << 13)
	case OpBr, OpBlr, OpRet:
		i.Rn = reg()
	case OpAdr:
		i.Imm = r.Int63n(1<<21) - 1<<20
	case OpAdrp:
		i.Imm = (r.Int63n(1<<21) - 1<<20) * 4096
	case OpBrk:
		i.Imm = r.Int63n(1 << 16)
	}
	return i
}

// TestEncodeDecodeRoundTrip: decode(encode(i)) == i for canonical insts.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		i := randInst(r)
		w, err := Encode(i)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", i, err)
		}
		got, ok := Decode(w)
		if !ok {
			t.Fatalf("Decode(%#08x) from %+v failed", w, i)
		}
		if got != i {
			t.Fatalf("round trip: got %+v, want %+v (word %#08x)", got, i, w)
		}
	}
}

// TestDecodeEncodeRoundTrip: for any word that decodes, re-encoding the
// decoded instruction reproduces the word bit for bit. Run via
// testing/quick over random words.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	f := func(w uint32) bool {
		i, ok := Decode(w)
		if !ok {
			return true // out-of-subset words are fine
		}
		back, err := Encode(i)
		return err == nil && back == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100000}); err != nil {
		t.Error(err)
	}
}

// TestPatchRel verifies displacement rewriting for every PC-relative op.
func TestPatchRel(t *testing.T) {
	cases := []Inst{
		{Op: OpB, Imm: 64},
		{Op: OpBl, Imm: -64},
		{Op: OpBCond, Cond: LT, Imm: 128},
		{Op: OpCbz, Sf: true, Rd: X3, Imm: 256},
		{Op: OpCbnz, Rd: X7, Imm: -8},
		{Op: OpTbz, Rd: X2, Bit: 17, Imm: 32},
		{Op: OpTbnz, Rd: X9, Bit: 60, Imm: -32},
		{Op: OpLdrLit, Sf: true, Rd: X4, Imm: 1024},
		{Op: OpAdr, Rd: X1, Imm: 12},
		{Op: OpAdrp, Rd: X1, Imm: 8192},
	}
	for _, i := range cases {
		w := MustEncode(i)
		newOff := int64(-2048)
		if i.Op == OpAdrp {
			newOff = -4096 * 3
		}
		patched, err := PatchRel(w, newOff)
		if err != nil {
			t.Fatalf("PatchRel(%s): %v", i, err)
		}
		got, ok := Decode(patched)
		if !ok {
			t.Fatalf("patched word %#08x does not decode", patched)
		}
		want := i
		want.Imm = newOff
		if got != want {
			t.Errorf("PatchRel(%s) = %+v, want %+v", i, got, want)
		}
	}

	// Non-PC-relative words must be rejected, and the diagnostic — the
	// only thing a failed patch surfaces — must name the offending word.
	if _, err := PatchRel(MustEncode(Inst{Op: OpNop}), 4); err == nil {
		t.Error("PatchRel(nop) succeeded, want error")
	} else if !strings.Contains(err.Error(), "0xd503201f") {
		t.Errorf("PatchRel(nop) error %q does not name the word 0xd503201f", err)
	}
	if _, err := PatchRel(0xFFFFFFFF, 4); err == nil {
		t.Error("PatchRel(junk) succeeded, want error")
	} else if !strings.Contains(err.Error(), "0xffffffff") {
		t.Errorf("PatchRel(junk) error %q does not name the word 0xffffffff", err)
	}
	// Out-of-range new displacement must surface the encoder's error.
	if _, err := PatchRel(MustEncode(Inst{Op: OpBCond, Imm: 4}), 1<<40); err == nil {
		t.Error("PatchRel with huge displacement succeeded, want error")
	}
}

func TestCondInvert(t *testing.T) {
	pairs := [][2]Cond{{EQ, NE}, {HS, LO}, {MI, PL}, {VS, VC}, {HI, LS}, {GE, LT}, {GT, LE}}
	for _, p := range pairs {
		if p[0].Invert() != p[1] || p[1].Invert() != p[0] {
			t.Errorf("Invert pair %v broken", p)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	pcRel := map[Op]bool{OpB: true, OpBl: true, OpBCond: true, OpCbz: true, OpCbnz: true,
		OpTbz: true, OpTbnz: true, OpLdrLit: true, OpAdr: true, OpAdrp: true}
	branches := map[Op]bool{OpB: true, OpBl: true, OpBCond: true, OpCbz: true, OpCbnz: true,
		OpTbz: true, OpTbnz: true, OpBr: true, OpBlr: true, OpRet: true}
	terminators := map[Op]bool{OpB: true, OpBr: true, OpRet: true, OpBrk: true}
	for op := OpInvalid; op < opMax; op++ {
		if got := op.IsPCRel(); got != pcRel[op] {
			t.Errorf("%s.IsPCRel() = %v", op, got)
		}
		if got := op.IsBranch(); got != branches[op] {
			t.Errorf("%s.IsBranch() = %v", op, got)
		}
		if got := op.IsTerminator(); got != terminators[op] {
			t.Errorf("%s.IsTerminator() = %v", op, got)
		}
	}
}
