package a64

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode checks the decode/re-encode identity on arbitrary words: any
// word the decoder accepts must re-encode to exactly the same bits, and
// the decoder must never panic on junk (the "embedded data misread as
// instructions" hazard of §3.2).
func FuzzDecode(f *testing.F) {
	seed := []uint32{
		0xD65F03C0, // ret
		0xA9BE7BFD, // stp x29, x30, [sp, #-32]!
		0xF940101E, // ldr x30, [x0, #32]
		0xD63F03C0, // blr x30
		0x94000000, // bl
		0x54000041, // b.ne
		0xF8627820, // ldr x0, [x1, x2, lsl #3]
		0xDEADBEEF, // junk
		0x00000000,
		0xFFFFFFFF,
	}
	for _, w := range seed {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], w)
		f.Add(b[:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		w := binary.LittleEndian.Uint32(data)
		inst, ok := Decode(w)
		if !ok {
			return
		}
		back, err := Encode(inst)
		if err != nil {
			t.Fatalf("decoded %#08x to %v but cannot re-encode: %v", w, inst, err)
		}
		if back != w {
			t.Fatalf("decode/encode not identity: %#08x -> %v -> %#08x", w, inst, back)
		}
		_ = inst.String() // must not panic
	})
}

// FuzzPatchRel checks that displacement patching either fails cleanly or
// produces a word whose decoded displacement is the requested one.
func FuzzPatchRel(f *testing.F) {
	f.Add(uint32(0x14000000), int64(64))
	f.Add(uint32(0x54000041), int64(-8))
	f.Add(uint32(0xD503201F), int64(4))
	f.Fuzz(func(t *testing.T, w uint32, off int64) {
		off &^= 3 // word aligned
		patched, err := PatchRel(w, off)
		if err != nil {
			return
		}
		inst, ok := Decode(patched)
		if !ok {
			t.Fatalf("patched word %#08x does not decode", patched)
		}
		if inst.Imm != off {
			t.Fatalf("patched displacement %#x, want %#x", inst.Imm, off)
		}
	})
}
