package a64

import "fmt"

// Op identifies an operation in the modeled A64 subset.
type Op uint8

// Operations. Immediate and register forms of arithmetic are distinct ops
// because their encodings live in different instruction classes.
const (
	OpInvalid Op = iota

	// Data-processing, immediate.
	OpAddImm  // ADD  Rd, Rn, #imm{, LSL #12}
	OpAddsImm // ADDS Rd, Rn, #imm{, LSL #12}
	OpSubImm  // SUB  Rd, Rn, #imm{, LSL #12}
	OpSubsImm // SUBS Rd, Rn, #imm{, LSL #12} (CMP when Rd=ZR)
	OpMovz    // MOVZ Rd, #imm16{, LSL #(16*hw)}
	OpMovn    // MOVN Rd, #imm16{, LSL #(16*hw)}
	OpMovk    // MOVK Rd, #imm16{, LSL #(16*hw)}

	// Data-processing, register (no shifted operands modeled).
	OpAddReg  // ADD  Rd, Rn, Rm
	OpAddsReg // ADDS Rd, Rn, Rm (CMN when Rd=ZR)
	OpSubReg  // SUB  Rd, Rn, Rm
	OpSubsReg // SUBS Rd, Rn, Rm (CMP when Rd=ZR)
	OpAndReg  // AND  Rd, Rn, Rm
	OpOrrReg  // ORR  Rd, Rn, Rm (MOV when Rn=ZR)
	OpEorReg  // EOR  Rd, Rn, Rm
	OpMul     // MUL  Rd, Rn, Rm (MADD with Ra=ZR)
	OpLslReg  // LSLV Rd, Rn, Rm
	OpLsrReg  // LSRV Rd, Rn, Rm

	// Loads and stores.
	OpLdrImm // LDR Rt, [Rn, #imm] (unsigned offset; 32- or 64-bit by Sf)
	OpStrImm // STR Rt, [Rn, #imm]
	OpLdrReg // LDR Rt, [Rn, Rm, LSL #3] (64-bit register offset)
	OpStrReg // STR Rt, [Rn, Rm, LSL #3]
	OpLdp    // LDP Rt, Rt2, [Rn, #imm] (64-bit; Index selects mode)
	OpStp    // STP Rt, Rt2, [Rn, #imm]
	OpLdrLit // LDR Rt, #rel (PC-relative literal; 32- or 64-bit by Sf)

	// Branches.
	OpB     // B #rel
	OpBl    // BL #rel
	OpBCond // B.cond #rel
	OpCbz   // CBZ Rt, #rel
	OpCbnz  // CBNZ Rt, #rel
	OpTbz   // TBZ Rt, #bit, #rel
	OpTbnz  // TBNZ Rt, #bit, #rel
	OpBr    // BR Rn
	OpBlr   // BLR Rn
	OpRet   // RET Rn

	// PC-relative address formation.
	OpAdr  // ADR Rd, #rel
	OpAdrp // ADRP Rd, #relpage

	// System.
	OpNop // NOP
	OpBrk // BRK #imm16

	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAddImm:  "add", OpAddsImm: "adds", OpSubImm: "sub", OpSubsImm: "subs",
	OpMovz: "movz", OpMovn: "movn", OpMovk: "movk",
	OpAddReg: "add", OpAddsReg: "adds", OpSubReg: "sub", OpSubsReg: "subs",
	OpAndReg: "and", OpOrrReg: "orr", OpEorReg: "eor",
	OpMul: "mul", OpLslReg: "lsl", OpLsrReg: "lsr",
	OpLdrImm: "ldr", OpStrImm: "str", OpLdrReg: "ldr", OpStrReg: "str",
	OpLdp: "ldp", OpStp: "stp", OpLdrLit: "ldr",
	OpB: "b", OpBl: "bl", OpBCond: "b", OpCbz: "cbz", OpCbnz: "cbnz",
	OpTbz: "tbz", OpTbnz: "tbnz", OpBr: "br", OpBlr: "blr", OpRet: "ret",
	OpAdr: "adr", OpAdrp: "adrp",
	OpNop: "nop", OpBrk: "brk",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IndexMode selects the addressing mode of LDP/STP.
type IndexMode uint8

const (
	IndexOffset IndexMode = iota // [Rn, #imm]
	IndexPre                     // [Rn, #imm]!
	IndexPost                    // [Rn], #imm
)

// Inst is one decoded (or to-be-encoded) instruction.
//
// Field use depends on Op:
//
//   - Rd: destination of data-processing and ADR/ADRP; transfer register of
//     loads/stores and CBZ/CBNZ/TBZ/TBNZ (the architectural Rt).
//   - Rn: first source / base register / target of BR/BLR/RET.
//   - Rm: second source register.
//   - Rt2: second transfer register of LDP/STP.
//   - Imm: immediate. For arithmetic-immediate ops it is the raw unsigned
//     imm12 (before any LSL #12); for MOVZ/MOVN/MOVK the raw imm16; for
//     loads/stores the byte offset; for all PC-relative ops (branches,
//     LDR literal, ADR, ADRP, BRK aside) the *byte* displacement from the
//     instruction's own address (for ADRP, from the instruction's page).
//   - Shift12: arithmetic immediate shifted left by 12.
//   - HW: the 16-bit chunk index of MOVZ/MOVN/MOVK (shift = 16*HW).
//   - Cond: condition of B.cond.
//   - Bit: bit number tested by TBZ/TBNZ (0..63).
//   - Sf: 64-bit operation when true. Branch, ADR/ADRP, LDP/STP, BR/BLR/RET,
//     NOP and BRK ignore Sf (LDP/STP are modeled 64-bit only).
//   - Index: LDP/STP addressing mode.
type Inst struct {
	Op      Op
	Rd      Reg
	Rn      Reg
	Rm      Reg
	Rt2     Reg
	Imm     int64
	Shift12 bool
	HW      uint8
	Cond    Cond
	Bit     uint8
	Sf      bool
	Index   IndexMode
}

// IsPCRel reports whether the op encodes a PC-relative displacement that
// must be re-patched when the distance between the instruction and its
// target changes. Note that per the paper (§3.2) BL is excluded from
// link-time patching — its target is a function label bound after
// outlining — but it is still PC-relative in encoding terms; callers that
// need the paper's patch set should additionally exclude OpBl.
func (op Op) IsPCRel() bool {
	switch op {
	case OpB, OpBl, OpBCond, OpCbz, OpCbnz, OpTbz, OpTbnz, OpLdrLit, OpAdr, OpAdrp:
		return true
	}
	return false
}

// IsBranch reports whether the op transfers control.
func (op Op) IsBranch() bool {
	switch op {
	case OpB, OpBl, OpBCond, OpCbz, OpCbnz, OpTbz, OpTbnz, OpBr, OpBlr, OpRet:
		return true
	}
	return false
}

// IsTerminator reports whether the op ends a basic block: unconditional
// control transfer with no fall-through. Conditional branches also
// terminate blocks in the CFG sense, and the ART metadata collector records
// them too; this predicate covers the instruction-level definition used by
// the outliner (a repeat may not *contain* any branch).
func (op Op) IsTerminator() bool {
	switch op {
	case OpB, OpBr, OpRet, OpBrk:
		return true
	}
	return false
}

// regSize returns the operand-size prefix register printer for i.
func (i Inst) gpName(r Reg, r31 string) string {
	if i.Sf {
		return r.xName(r31)
	}
	return r.wName(r31)
}

// String renders the instruction in GNU-assembler-like syntax. PC-relative
// displacements print as "#+0x..." / "#-0x..." byte offsets.
func (i Inst) String() string {
	rel := func(v int64) string {
		if v < 0 {
			return fmt.Sprintf("#-0x%x", -v)
		}
		return fmt.Sprintf("#+0x%x", v)
	}
	switch i.Op {
	case OpAddImm, OpAddsImm, OpSubImm, OpSubsImm:
		name := i.Op.String()
		rdCtx, rnCtx := "sp", "sp"
		if i.Op == OpAddsImm || i.Op == OpSubsImm {
			rdCtx = i.zrName()
			if i.Rd == 31 {
				// CMP / CMN alias.
				alias := "cmp"
				if i.Op == OpAddsImm {
					alias = "cmn"
				}
				return fmt.Sprintf("%s %s, #%d%s", alias, i.gpName(i.Rn, "sp"), i.Imm, i.shiftSuffix())
			}
		}
		return fmt.Sprintf("%s %s, %s, #%d%s", name, i.gpName(i.Rd, rdCtx), i.gpName(i.Rn, rnCtx), i.Imm, i.shiftSuffix())
	case OpMovz, OpMovn, OpMovk:
		if i.HW == 0 {
			return fmt.Sprintf("%s %s, #%d", i.Op, i.gpName(i.Rd, i.zrName()), i.Imm)
		}
		return fmt.Sprintf("%s %s, #%d, lsl #%d", i.Op, i.gpName(i.Rd, i.zrName()), i.Imm, 16*int(i.HW))
	case OpAddReg, OpAndReg, OpEorReg, OpMul, OpLslReg, OpLsrReg:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.gpName(i.Rd, i.zrName()), i.gpName(i.Rn, i.zrName()), i.gpName(i.Rm, i.zrName()))
	case OpSubReg:
		return fmt.Sprintf("sub %s, %s, %s", i.gpName(i.Rd, i.zrName()), i.gpName(i.Rn, i.zrName()), i.gpName(i.Rm, i.zrName()))
	case OpAddsReg, OpSubsReg:
		if i.Rd == 31 {
			alias := "cmp"
			if i.Op == OpAddsReg {
				alias = "cmn"
			}
			return fmt.Sprintf("%s %s, %s", alias, i.gpName(i.Rn, i.zrName()), i.gpName(i.Rm, i.zrName()))
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.gpName(i.Rd, i.zrName()), i.gpName(i.Rn, i.zrName()), i.gpName(i.Rm, i.zrName()))
	case OpOrrReg:
		if i.Rn == 31 {
			return fmt.Sprintf("mov %s, %s", i.gpName(i.Rd, i.zrName()), i.gpName(i.Rm, i.zrName()))
		}
		return fmt.Sprintf("orr %s, %s, %s", i.gpName(i.Rd, i.zrName()), i.gpName(i.Rn, i.zrName()), i.gpName(i.Rm, i.zrName()))
	case OpLdrReg, OpStrReg:
		return fmt.Sprintf("%s %s, [%s, %s, lsl #3]", i.Op, i.Rd.xName("xzr"), i.Rn.xName("sp"), i.Rm.xName("xzr"))
	case OpLdrImm, OpStrImm:
		if i.Imm == 0 {
			return fmt.Sprintf("%s %s, [%s]", i.Op, i.gpName(i.Rd, i.zrName()), i.Rn.xName("sp"))
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.gpName(i.Rd, i.zrName()), i.Rn.xName("sp"), i.Imm)
	case OpLdp, OpStp:
		switch i.Index {
		case IndexPre:
			return fmt.Sprintf("%s %s, %s, [%s, #%d]!", i.Op, i.Rd.xName("xzr"), i.Rt2.xName("xzr"), i.Rn.xName("sp"), i.Imm)
		case IndexPost:
			return fmt.Sprintf("%s %s, %s, [%s], #%d", i.Op, i.Rd.xName("xzr"), i.Rt2.xName("xzr"), i.Rn.xName("sp"), i.Imm)
		default:
			if i.Imm == 0 {
				return fmt.Sprintf("%s %s, %s, [%s]", i.Op, i.Rd.xName("xzr"), i.Rt2.xName("xzr"), i.Rn.xName("sp"))
			}
			return fmt.Sprintf("%s %s, %s, [%s, #%d]", i.Op, i.Rd.xName("xzr"), i.Rt2.xName("xzr"), i.Rn.xName("sp"), i.Imm)
		}
	case OpLdrLit:
		return fmt.Sprintf("ldr %s, %s", i.gpName(i.Rd, i.zrName()), rel(i.Imm))
	case OpB, OpBl:
		return fmt.Sprintf("%s %s", i.Op, rel(i.Imm))
	case OpBCond:
		return fmt.Sprintf("b.%s %s", i.Cond, rel(i.Imm))
	case OpCbz, OpCbnz:
		return fmt.Sprintf("%s %s, %s", i.Op, i.gpName(i.Rd, i.zrName()), rel(i.Imm))
	case OpTbz, OpTbnz:
		return fmt.Sprintf("%s %s, #%d, %s", i.Op, i.Rd.xName("xzr"), i.Bit, rel(i.Imm))
	case OpBr, OpBlr:
		return fmt.Sprintf("%s %s", i.Op, i.Rn.xName("xzr"))
	case OpRet:
		if i.Rn == LR {
			return "ret"
		}
		return fmt.Sprintf("ret %s", i.Rn.xName("xzr"))
	case OpAdr, OpAdrp:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd.xName("xzr"), rel(i.Imm))
	case OpNop:
		return "nop"
	case OpBrk:
		return fmt.Sprintf("brk #0x%x", i.Imm)
	}
	return "invalid"
}

func (i Inst) zrName() string {
	if i.Sf {
		return "xzr"
	}
	return "wzr"
}

func (i Inst) shiftSuffix() string {
	if i.Shift12 {
		return ", lsl #12"
	}
	return ""
}
