package a64

import "fmt"

// Reg is an A64 register number in the range [0, 31].
//
// Register 31 is context dependent: it names SP in addressing and
// arithmetic-immediate contexts and XZR/WZR elsewhere. The Inst printer
// resolves the context; the encoder only cares about the 5-bit number.
type Reg uint8

// Named registers used by the ART code generator.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16 // IP0, first intra-procedure-call scratch register
	X17 // IP1, second intra-procedure-call scratch register
	X18 // platform register
	X19 // ART thread register (holds Thread*)
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29 // frame pointer
	X30 // link register
	XZR // zero register / SP, depending on context
)

// Aliases that make code-generator call sites read like ART sources.
const (
	IP0 = X16
	IP1 = X17
	TR  = X19 // ART thread register
	FP  = X29
	LR  = X30
	SP  = XZR // encoded as 31; printers use context to pick "sp"
)

// Valid reports whether r is an encodable register number.
func (r Reg) Valid() bool { return r <= 31 }

// xName returns the 64-bit register name, with reg 31 shown as given.
func (r Reg) xName(r31 string) string {
	if r == 31 {
		return r31
	}
	return fmt.Sprintf("x%d", r)
}

// wName returns the 32-bit register name, with reg 31 shown as given.
func (r Reg) wName(r31 string) string {
	if r == 31 {
		return r31
	}
	return fmt.Sprintf("w%d", r)
}

// Cond is an A64 condition code as used by B.cond.
type Cond uint8

// Condition codes in encoding order.
const (
	EQ Cond = iota
	NE
	HS
	LO
	MI
	PL
	VS
	VC
	HI
	LS
	GE
	LT
	GT
	LE
	AL
	NV
)

var condNames = [...]string{
	"eq", "ne", "hs", "lo", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Invert returns the logically inverted condition (EQ<->NE, LT<->GE, ...).
func (c Cond) Invert() Cond { return c ^ 1 }
