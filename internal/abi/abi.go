// Package abi fixes the memory-layout contract between the code generator
// (internal/codegen), the linker (internal/oat, internal/outline), and the
// runtime emulator (internal/emu). It mirrors the corner of the ART ABI that
// Calibro's patterns depend on: where ArtMethod structures live, where the
// entry point sits inside an ArtMethod, how the thread register reaches the
// runtime entrypoint table, and how objects and stacks are laid out.
package abi

const (
	// TextBase is the virtual address at which the OAT text segment is
	// mapped by the loader.
	TextBase = 0x0010_0000

	// ArtMethodBase is the virtual address of the ArtMethod table. Each
	// dex method's ArtMethod lives at ArtMethodBase + id*ArtMethodStride.
	ArtMethodBase   = 0x4000_0000
	ArtMethodStride = 64

	// EntryPointOffset is the byte offset of the compiled-code entry point
	// inside an ArtMethod, the #offset of the paper's Java-call pattern
	// (Figure 4a). The paper's 32-bit ART uses 20; the 64-bit layout keeps
	// it 8-byte aligned.
	EntryPointOffset = 32

	// ThreadBase is the value the loader places in the thread register
	// (x19). dex.NativeFunc.EntrypointOffset offsets are relative to it.
	ThreadBase = 0x5000_0000

	// NativeStubBase is the address region where runtime entrypoints
	// "live"; a branch to NativeStubBase + k*NativeStubStride is handled
	// by the emulator as native function k.
	NativeStubBase   = 0x6000_0000
	NativeStubStride = 16

	// HeapBase and HeapLimit bound the bump allocator (64 MiB).
	HeapBase  = 0x2000_0000
	HeapLimit = 0x2400_0000

	// StackTop is the initial stack pointer; the stack grows down toward
	// StackLimit. The StackGuard bytes directly above StackLimit form the
	// guard region whose touch faults (1 MiB stack total).
	StackTop   = 0x1800_0000
	StackLimit = 0x17F0_0000
	StackGuard = 0x2000 // 8 KiB, the constant in the Figure 4c pattern

	// ObjectHeaderSize is the byte size of the heap object header (one
	// length word); fields/elements follow at 8-byte stride.
	ObjectHeaderSize = 8

	// PageSize is the granularity of the resident-memory model (Table 5).
	PageSize = 4096
)

// FieldOffset converts a field/element slot index to its byte offset from
// the object base.
func FieldOffset(slot int64) int64 { return ObjectHeaderSize + 8*slot }

// ArtMethodAddr returns the ArtMethod address for a method ID.
func ArtMethodAddr(id uint32) int64 { return ArtMethodBase + int64(id)*ArtMethodStride }

// NativeStubAddr returns the fake code address of runtime entrypoint k.
func NativeStubAddr(k int) int64 { return NativeStubBase + int64(k)*NativeStubStride }
