// Package analysis is oatlint: a standalone static verifier for linked
// OAT images. It takes only a linked *oat.Image — no compile-time
// Snapshot, no symbol side tables — and re-establishes the §3.5
// well-formedness argument from the bytes alone: it reconstructs
// per-method and per-outlined-function control-flow graphs from the
// decoded A64 words, validates control-flow integrity (every branch
// lands on an instruction boundary of its own method, every bl lands on
// a region head, nothing enters the middle of an outlined function, and
// every outlined function is straight-line code ending in br x30), and
// runs an abstract-interpretation dataflow pass proving stack-pointer
// balance, callee-saved register discipline, and link-register integrity
// on every path — including paths that route through outlined calls.
//
// Where outline.VerifyRewrite is the link-time, metadata-assisted check
// (it needs the pre-outlining snapshot), this package is the load-time,
// image-only check: it can lint an image that was marshaled to disk,
// cached, shipped, and unmarshaled by a different process.
package analysis

import (
	"context"
	"fmt"

	"repro/internal/a64"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/par"
)

// MethodSummary is the analyzer's per-method accounting, exposed for
// tooling (oatlint -v) and tests.
type MethodSummary struct {
	ID         dex.MethodID
	Insts      int // decoded instruction words
	DataWords  int // embedded-data words
	Blocks     int // recovered basic blocks
	DeadBlocks int // blocks unreachable from the entry
	Calls      int // bl/blr sites
}

// Report is the full analyzer output: every finding at every severity,
// plus per-method summaries and image-level statistics.
type Report struct {
	Findings  []Finding
	Methods   []MethodSummary
	Thunks    int
	Outlined  int
	TextBytes int
}

// ErrorCount returns the number of findings at SevError.
func (r *Report) ErrorCount() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// Analyze verifies a linked image and returns the full report. It never
// panics on malformed input: every structural defect becomes a finding.
// Per-method passes run on runtime.GOMAXPROCS(0) workers; use
// AnalyzeParallel to pick the width explicitly.
func Analyze(img *oat.Image) *Report { return AnalyzeParallel(img, 0) }

// AnalyzeParallel is Analyze with an explicit worker count (<= 0 selects
// GOMAXPROCS). Each method gets its own finding sink, and per-method
// findings are merged back in method-region order — the order a serial
// walk produces — so the report is byte-identical for every width.
func AnalyzeParallel(img *oat.Image, workers int) *Report {
	return AnalyzeTraced(img, workers, nil)
}

// AnalyzeTraced is AnalyzeParallel with telemetry: one span per analyzed
// method (category "lint", on the worker lane that ran it) plus finding
// counters on the tracer. A nil tracer records nothing; the report is
// byte-identical either way.
func AnalyzeTraced(img *oat.Image, workers int, tracer *obs.Tracer) *Report {
	// context.Background() never cancels, so the error is impossible.
	rep, _ := AnalyzeCtx(context.Background(), img, workers, tracer)
	return rep
}

// AnalyzeCtx is AnalyzeTraced with cooperative cancellation: the
// per-method pool checks ctx before every method, so a cancelled or
// deadline-expired context stops the analysis promptly and returns
// (nil, ctx.Err()). With an un-cancellable context the report is exactly
// AnalyzeTraced's. Findings come back in canonical (method, offset, rule)
// order regardless of the worker width.
func AnalyzeCtx(ctx context.Context, img *oat.Image, workers int, tracer *obs.Tracer) (*Report, error) {
	rep, _, err := analyzeImage(ctx, img, workers, tracer)
	if err != nil {
		return nil, err
	}
	sortFindings(rep.Findings)
	return rep, nil
}

// analyzeImage runs the full per-method verification and returns the
// report together with the layout it was computed over, unsorted. The
// rule engine and the call-graph builder reuse the layout (and its
// decoded blob index) so whole-image passes never re-derive or duplicate
// the structural findings.
func analyzeImage(ctx context.Context, img *oat.Image, workers int, tracer *obs.Tracer) (*Report, *layout, error) {
	var fs findings
	l := buildLayout(img, &fs)

	// Shared code first: thunks and outlined functions are verified once,
	// and the decoded blob bodies feed the per-method dataflow replay.
	// From here on the layout (including the blob index) is read-only.
	for _, r := range l.regions {
		switch r.kind {
		case regionThunk:
			l.checkThunk(r, &fs)
		case regionBlob:
			l.checkBlob(r, &fs)
		}
	}

	rep := &Report{
		Thunks:    len(img.Thunks),
		Outlined:  len(img.Outlined),
		TextBytes: img.TextBytes(),
	}
	var mregions []region
	for _, r := range l.regions {
		if r.kind == regionMethod {
			mregions = append(mregions, r)
		}
	}
	type methodResult struct {
		fs  findings
		sum MethodSummary
	}
	observer := tracer.PoolObserver("lint", func(i int) string {
		return methodName(img.Methods[mregions[i].method].ID)
	})
	results, err := par.MapObsCtx(ctx, workers, len(mregions), observer, func(i int) (*methodResult, error) {
		res := &methodResult{}
		mc := newMethodCtx(l, mregions[i], &res.fs)
		mc.checkMetadata()
		mc.recoverCFG()
		mc.runDataflow()
		res.sum = mc.summary()
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, res := range results {
		fs.list = append(fs.list, res.fs.list...)
		rep.Methods = append(rep.Methods, res.sum)
	}
	rep.Findings = fs.list
	if tracer != nil {
		tracer.Count("lint.findings", int64(len(fs.list)))
		tracer.Count("lint.methods", int64(len(mregions)))
	}
	return rep, l, nil
}

// Lint verifies a linked image and returns the findings that matter: all
// warnings and errors, suppressing advisory (SevInfo) output. A loader
// that wants a go/no-go answer checks len(Lint(img)) == 0.
func Lint(img *oat.Image) []Finding { return LintParallel(img, 0) }

// LintParallel is Lint with an explicit worker count (<= 0 selects
// GOMAXPROCS). Finding order does not depend on the width.
func LintParallel(img *oat.Image, workers int) []Finding {
	return LintTraced(img, workers, nil)
}

// LintTraced is LintParallel with per-method telemetry recorded on the
// tracer; see AnalyzeTraced. Findings are identical either way.
func LintTraced(img *oat.Image, workers int, tracer *obs.Tracer) []Finding {
	out, _ := LintCtx(context.Background(), img, workers, tracer)
	return out
}

// LintCtx is LintTraced with cooperative cancellation; see AnalyzeCtx.
func LintCtx(ctx context.Context, img *oat.Image, workers int, tracer *obs.Tracer) ([]Finding, error) {
	rep, err := AnalyzeCtx(ctx, img, workers, tracer)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, f := range rep.Findings {
		if f.Severity >= SevWarn {
			out = append(out, f)
		}
	}
	return out, nil
}

// checkMetadata cross-checks the serialized LTBO metadata against the
// code it describes. The metadata is what the link-time rewriter trusts,
// so a disagreement means a future outlining pass over this image would
// corrupt it even though the code itself still runs.
func (mc *methodCtx) checkMetadata() {
	for _, rel := range mc.rec.Meta.PCRel {
		if rel.InstOff < 0 || rel.InstOff%a64.WordSize != 0 || rel.InstOff >= mc.r.size {
			mc.errf(rel.InstOff, RuleMetadata, "PC-relative record outside the method")
			continue
		}
		w := rel.InstOff / a64.WordSize
		if !mc.decoded[w] {
			mc.errf(rel.InstOff, RuleMetadata, "PC-relative record covers a non-instruction word")
			continue
		}
		inst := mc.insts[w]
		if !inst.Op.IsPCRel() {
			mc.errf(rel.InstOff, RuleMetadata,
				"PC-relative record covers %s, which is not PC-relative", inst.Op)
			continue
		}
		// The recorded target must match what the encoded displacement
		// says; adrp works in 4K pages and is excluded from the exact
		// comparison.
		if inst.Op != a64.OpAdrp && rel.InstOff+int(inst.Imm) != rel.TargetOff {
			mc.errf(rel.InstOff, RuleMetadata,
				"recorded target %#x disagrees with encoded displacement (%#x)",
				rel.TargetOff, rel.InstOff+int(inst.Imm))
		}
	}

	// The reverse direction: every decoded PC-relative instruction other
	// than bl (calls are external references, not intra-method relocs)
	// should have a record, or the rewriter will move code out from under
	// it.
	recorded := make(map[int]bool, len(mc.rec.Meta.PCRel))
	for _, rel := range mc.rec.Meta.PCRel {
		recorded[rel.InstOff] = true
	}
	for w := range mc.words {
		if !mc.decoded[w] {
			continue
		}
		inst := mc.insts[w]
		if inst.Op.IsPCRel() && inst.Op != a64.OpBl && !recorded[w*a64.WordSize] {
			mc.warnf(w*a64.WordSize, RuleMetadata,
				"%s has no PC-relative record; outlining this method would break it", inst.Op)
		}
	}

	for _, t := range mc.rec.Meta.Terminators {
		if t < 0 || t%a64.WordSize != 0 || t >= mc.r.size {
			mc.errf(t, RuleMetadata, "terminator record outside the method")
			continue
		}
		// The collector records every control transfer: branches, calls,
		// returns, and the brk of a slowpath trap.
		w := t / a64.WordSize
		if !mc.decoded[w] || !(mc.insts[w].Op.IsBranch() || mc.insts[w].Op == a64.OpBrk) {
			mc.errf(t, RuleMetadata, "terminator record does not cover a control-transfer instruction")
		}
	}

	for _, sp := range mc.rec.Meta.Slowpaths {
		if sp.Start < 0 || sp.End < sp.Start || sp.End > mc.r.size {
			mc.errf(sp.Start, RuleMetadata,
				"slowpath range [%#x,%#x) outside the method", sp.Start, sp.End)
		}
	}

	for _, sm := range mc.rec.StackMap {
		if sm.NativeOff < 0 || sm.NativeOff%a64.WordSize != 0 || sm.NativeOff >= mc.r.size {
			mc.errf(sm.NativeOff, RuleSafepoint, "stack map entry outside the method")
			continue
		}
		w := sm.NativeOff / a64.WordSize
		if !mc.decoded[w] || (mc.insts[w].Op != a64.OpBl && mc.insts[w].Op != a64.OpBlr) {
			mc.errf(sm.NativeOff, RuleSafepoint,
				"stack map entry does not sit on a call instruction")
		}
	}
}

// summary collects the per-method statistics after all passes ran.
func (mc *methodCtx) summary() MethodSummary {
	s := MethodSummary{ID: mc.id(), Calls: mc.calls}
	for w := range mc.words {
		switch {
		case mc.data[w]:
			s.DataWords++
		case mc.decoded[w]:
			s.Insts++
		}
	}
	if mc.cfg != nil {
		s.Blocks = len(mc.cfg.Blocks)
		for bi := range mc.cfg.Blocks {
			if bi < len(mc.reach) && !mc.reach[bi] {
				s.DeadBlocks++
			}
		}
	}
	return s
}

func dexID(i int) dex.MethodID { return dex.MethodID(i) }

func methodName(id dex.MethodID) string { return fmt.Sprintf("m%d", id) }
