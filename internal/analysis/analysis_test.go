package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/a64"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/oat"
)

// findInst locates the first instruction in method m matching pred,
// returning its method-relative byte offset.
func findInst(t *testing.T, img *oat.Image, m int, pred func(a64.Inst) bool) int {
	t.Helper()
	rec := img.Methods[m]
	for w := 0; w < rec.Size/a64.WordSize; w++ {
		word := img.Text[rec.Offset/a64.WordSize+w]
		if inst, ok := a64.Decode(word); ok && pred(inst) {
			return w * a64.WordSize
		}
	}
	t.Fatalf("m%d: no matching instruction", m)
	return -1
}

// findMethodWith returns the index of the first method containing an
// instruction matching pred.
func findMethodWith(img *oat.Image, pred func(a64.Inst) bool) int {
	for m, rec := range img.Methods {
		for w := 0; w < rec.Size/a64.WordSize; w++ {
			if inst, ok := a64.Decode(img.Text[rec.Offset/a64.WordSize+w]); ok && pred(inst) {
				return m
			}
		}
	}
	return -1
}

// setWord rewrites one word of method m at byte offset off.
func setWord(img *oat.Image, m, off int, word uint32) {
	img.Text[(img.Methods[m].Offset+off)/a64.WordSize] = word
}

// wantFinding asserts that linting the image produces at least one
// finding under rule naming the given method and offset.
func wantFinding(t *testing.T, img *oat.Image, rule string, m dex.MethodID, off int) {
	t.Helper()
	findings := analysis.Lint(img)
	for _, f := range findings {
		if f.Rule == rule && f.Method == m && f.Off == off {
			t.Logf("finding: %s", f)
			return
		}
	}
	t.Errorf("no [%s] finding for m%d+%#x; got %d findings:", rule, m, off, len(findings))
	for i, f := range findings {
		if i == 8 {
			break
		}
		t.Errorf("  %s", f)
	}
}

// TestCorruptBranch flips a conditional branch to a displacement that
// escapes the method: the acceptance criterion's "deliberately corrupted
// image" case. The finding must name the method and the offset.
func TestCorruptBranch(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	m := findMethodWith(img, func(i a64.Inst) bool { return i.Op == a64.OpBCond })
	if m < 0 {
		t.Fatal("no conditional branch in any method")
	}
	off := findInst(t, img, m, func(i a64.Inst) bool { return i.Op == a64.OpBCond })
	word := img.Text[(img.Methods[m].Offset+off)/a64.WordSize]
	patched, err := a64.PatchRel(word, -1<<18) // far before any method
	if err != nil {
		t.Fatal(err)
	}
	setWord(img, m, off, patched)
	wantFinding(t, img, analysis.RuleBranchTarget, dex.MethodID(m), off)
}

// TestCorruptBranchMisaligned points a branch displacement such that the
// recorded metadata and the code disagree — the single-bit-flip case:
// even when the flipped target still lands on some instruction boundary,
// the metadata cross-check catches it.
func TestCorruptBranchMetadata(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	// Find a method with a recorded local branch and move its target by
	// one word: still in-method, still aligned, but no longer what the
	// metadata promises.
	for m, rec := range img.Methods {
		for _, rel := range rec.Meta.PCRel {
			w := (rec.Offset + rel.InstOff) / a64.WordSize
			inst, ok := a64.Decode(img.Text[w])
			if !ok || inst.Op != a64.OpB {
				continue
			}
			newOff := inst.Imm - a64.WordSize
			if rel.InstOff+int(newOff) <= 0 {
				continue
			}
			patched, err := a64.PatchRel(img.Text[w], newOff)
			if err != nil {
				continue
			}
			img.Text[w] = patched
			wantFinding(t, img, analysis.RuleMetadata, dex.MethodID(m), rel.InstOff)
			return
		}
	}
	t.Fatal("no recorded unconditional branch found")
}

// TestCorruptBlobExit replaces an outlined function's br x30 exit with a
// ret: the blob no longer returns through the canonical exit and must be
// flagged, and every method is still analyzed without the replay.
func TestCorruptBlobExit(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	if len(img.Outlined) == 0 {
		t.Fatal("build produced no outlined functions")
	}
	f := img.Outlined[0]
	last := (f.Offset + f.Size - a64.WordSize) / a64.WordSize
	img.Text[last] = a64.MustEncode(a64.Inst{Op: a64.OpRet, Rn: a64.LR})
	var hit bool
	for _, fd := range analysis.Lint(img) {
		if fd.Rule == analysis.RuleBlobShape && fd.Method == analysis.NoMethod {
			hit = true
		}
	}
	if !hit {
		t.Error("corrupted outlined-function exit produced no blob-shape finding")
	}
}

// TestCorruptCallIntoBlobInterior retargets a bl so it lands in the
// middle of an outlined function.
func TestCorruptCallIntoBlobInterior(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	var blob *oat.FuncRecord
	for i := range img.Outlined {
		if img.Outlined[i].Size > 2*a64.WordSize {
			blob = &img.Outlined[i]
			break
		}
	}
	if blob == nil {
		t.Fatal("no multi-instruction outlined function")
	}
	m := findMethodWith(img, func(i a64.Inst) bool { return i.Op == a64.OpBl })
	off := findInst(t, img, m, func(i a64.Inst) bool { return i.Op == a64.OpBl })
	abs := img.Methods[m].Offset + off
	patched, err := a64.PatchRel(
		img.Text[abs/a64.WordSize], int64(blob.Offset+a64.WordSize-abs))
	if err != nil {
		t.Fatal(err)
	}
	setWord(img, m, off, patched)
	wantFinding(t, img, analysis.RuleBlobEntry, dex.MethodID(m), off)
}

// TestCorruptEpilogue shrinks the frame-release of one method's
// epilogue, leaving sp unbalanced at ret.
func TestCorruptEpilogue(t *testing.T) {
	img := buildApp(t, core.Baseline())
	isRelease := func(i a64.Inst) bool {
		return i.Op == a64.OpLdp && i.Index == a64.IndexPost && i.Rn == 31 && i.Imm > 16
	}
	m := findMethodWith(img, isRelease)
	if m < 0 {
		t.Fatal("no frame-releasing epilogue found")
	}
	off := findInst(t, img, m, isRelease)
	word := img.Text[(img.Methods[m].Offset+off)/a64.WordSize]
	inst, _ := a64.Decode(word)
	inst.Imm -= 16
	setWord(img, m, off, a64.MustEncode(inst))
	var hit bool
	for _, f := range analysis.Lint(img) {
		if f.Rule == analysis.RuleSPBalance && f.Method == dex.MethodID(m) {
			hit = true
		}
	}
	if !hit {
		t.Error("unbalanced epilogue produced no sp-balance finding")
	}
}

// TestCorruptCalleeSaved turns a callee-saved restore into a restore of
// the wrong register, so x20's entry value never comes back.
func TestCorruptCalleeSaved(t *testing.T) {
	img := buildApp(t, core.Baseline())
	isRestore := func(i a64.Inst) bool {
		return i.Op == a64.OpLdp && i.Index == a64.IndexOffset && i.Rn == 31 &&
			i.Rd == a64.Reg(20)
	}
	m := findMethodWith(img, isRestore)
	if m < 0 {
		t.Fatal("no x20 restore found")
	}
	off := findInst(t, img, m, isRestore)
	word := img.Text[(img.Methods[m].Offset+off)/a64.WordSize]
	inst, _ := a64.Decode(word)
	inst.Rd = a64.Reg(9) // restore into a scratch reg instead
	setWord(img, m, off, a64.MustEncode(inst))
	var hit bool
	for _, f := range analysis.Lint(img) {
		if f.Rule == analysis.RuleCalleeSaved && f.Method == dex.MethodID(m) {
			hit = true
		}
	}
	if !hit {
		t.Error("clobbered callee-saved restore produced no finding")
	}
}

// TestCorruptRecord pushes a method record past the text end.
func TestCorruptRecord(t *testing.T) {
	img := buildApp(t, core.Baseline())
	img.Methods[3].Size = img.TextBytes() // extends past the end
	var hit bool
	for _, f := range analysis.Lint(img) {
		if f.Rule == analysis.RuleRecord {
			hit = true
		}
	}
	if !hit {
		t.Error("oversized method record produced no record finding")
	}
}

// TestCorruptUndecodable stomps an instruction word with garbage.
func TestCorruptUndecodable(t *testing.T) {
	img := buildApp(t, core.CTOOnly())
	rec := img.Methods[5]
	// Offset 0 is the prologue stp: never embedded data.
	setWord(img, 5, 0, 0xFFFFFFFF)
	_ = rec
	wantFinding(t, img, analysis.RuleDecode, dex.MethodID(5), 0)
}

// TestMethodCFG exercises the public per-method CFG entry point.
func TestMethodCFG(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	m := findMethodWith(img, func(i a64.Inst) bool { return i.Op == a64.OpBCond })
	cfg, findings := analysis.MethodCFG(img, dex.MethodID(m))
	for _, f := range findings {
		if f.Severity >= analysis.SevWarn {
			t.Errorf("unexpected: %s", f)
		}
	}
	if cfg == nil || len(cfg.Blocks) < 2 {
		t.Fatalf("m%d: expected a branching CFG, got %+v", m, cfg)
	}
	if cfg.Blocks[0].Start != 0 {
		t.Errorf("entry block starts at %#x", cfg.Blocks[0].Start)
	}
	// Every successor index must be valid, and some block must branch.
	branching := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s < 0 || s >= len(cfg.Blocks) {
				t.Fatalf("successor %d out of range", s)
			}
		}
		if b.Term == a64.OpBCond {
			branching = true
		}
	}
	if !branching {
		t.Error("no conditional block terminator recovered")
	}
}

// TestFindingString pins the diagnostic rendering tooling greps on.
func TestFindingString(t *testing.T) {
	f := analysis.Finding{
		Severity: analysis.SevError, Method: 12, Off: 0x48,
		Rule: analysis.RuleSPBalance, Msg: "oops",
	}
	if got := f.String(); got != "m12+0x48: error [sp-balance] oops" {
		t.Errorf("Finding.String() = %q", got)
	}
	g := analysis.Finding{
		Severity: analysis.SevWarn, Method: analysis.NoMethod, Off: -1,
		Rule: analysis.RuleRecord, Msg: "bad table",
	}
	if got := g.String(); !strings.HasPrefix(got, "image: warn") {
		t.Errorf("image-level Finding.String() = %q", got)
	}
}

// TestSeverityNames pins severity rendering.
func TestSeverityNames(t *testing.T) {
	if analysis.SevInfo.String() != "info" || analysis.SevWarn.String() != "warn" ||
		analysis.SevError.String() != "error" {
		t.Error("severity names broken")
	}
}
