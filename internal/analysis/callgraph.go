package analysis

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/par"
)

// The call-graph walk lifts the per-method analysis to the whole image: it
// classifies every call site of every method, recovering the callee of the
// ART Java-call pattern by abstract constant propagation. A Java call
// materializes the callee's ArtMethod address into x0 (movz/movn/movk)
// and then either bl's the java_entry thunk or inlines the
// `ldr lr, [x0, #EntryPointOffset]; blr lr` pair — so tracking 16-bit
// constant chunks per register, plus "value loaded from the entry-point
// field of ArtMethod(id)", resolves the callee without any compile-time
// metadata. Outlined calls are replayed through the blob body exactly as
// the dataflow pass does, so a materialization the outliner moved into an
// outlined function still resolves.
//
// Anything the walk cannot prove becomes an EdgeUnknown, and reachability
// treats an unknown edge as "may call anything" — the conservative
// direction for debloat.

// EdgeKind classifies one recovered call edge.
type EdgeKind uint8

const (
	// EdgeMethod is a resolved call to a method: a direct bl to a method
	// head, a Java call whose ArtMethod constant was recovered, or a blr
	// through a loaded entry point.
	EdgeMethod EdgeKind = iota
	// EdgeOutlined is a bl into an outlined function.
	EdgeOutlined
	// EdgeThunk is a bl into a CTO pattern thunk (java_entry with an
	// unresolved receiver is reported as EdgeUnknown instead).
	EdgeThunk
	// EdgeRuntime is a call that leaves the text segment for the modeled
	// runtime (native entrypoint stubs); it cannot reach a method.
	EdgeRuntime
	// EdgeUnknown is a call whose target could not be resolved; the
	// reachability analysis treats it as possibly calling every method.
	EdgeUnknown
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeMethod:
		return "method"
	case EdgeOutlined:
		return "outlined"
	case EdgeThunk:
		return "thunk"
	case EdgeRuntime:
		return "runtime"
	default:
		return "unknown"
	}
}

// Edge is one recovered call site.
type Edge struct {
	Off    int // call-site byte offset within the caller
	Kind   EdgeKind
	Target dex.MethodID // EdgeMethod: the callee
	Sym    int          // EdgeOutlined / EdgeThunk: the callee symbol
	// Entry marks an indirect call dispatched through the entry-point
	// field of an ArtMethod (`ldr lr, [x0, #EntryPointOffset]; blr lr`).
	// Such a call is layout-independent — the runtime resolves the target
	// address from the method table, not from a constant baked into the
	// code — which is what lets the post-hoc re-outliner relocate the
	// callee. A blr edge without Entry that still resolves into the text
	// segment went through a materialized absolute address and pins its
	// target in place.
	Entry bool
}

// CGNode is the per-method view of the call graph.
type CGNode struct {
	ID      dex.MethodID
	Size    int // byte size of the method region; 0 marks a debloated stub
	Edges   []Edge
	Unknown bool // at least one EdgeUnknown
	Corrupt bool // record malformed: edges unrecoverable, modeled as unknown
}

// CGBlob is the per-outlined-function view. A well-formed outlined
// function is straight-line code and has no out-edges; edges appear only
// on corrupt images and feed the recursive-outline-cycle rule.
type CGBlob struct {
	Sym    int
	Offset int
	Size   int
	Edges  []Edge
}

// CallGraph is the whole-image call graph. Nodes is indexed by method
// table slot; Blobs lists the well-formed outlined-function records in
// table order.
type CallGraph struct {
	Nodes []CGNode
	Blobs []CGBlob

	blobIndex map[int]int // blob text offset -> Blobs index
	thunkSyms []int       // thunk record symbols, in region order
}

// NumEdges returns the total recovered call-site count.
func (cg *CallGraph) NumEdges() int {
	n := 0
	for _, nd := range cg.Nodes {
		n += len(nd.Edges)
	}
	for _, b := range cg.Blobs {
		n += len(b.Edges)
	}
	return n
}

// BuildCallGraph recovers the whole-image call graph. It never panics on
// malformed input: corrupt records degrade to findings plus conservative
// (Corrupt/Unknown) nodes. The findings include the record-table and
// blob-shape diagnostics the layout pass produces, so a standalone caller
// sees every structural reason an edge is missing.
func BuildCallGraph(img *oat.Image) (*CallGraph, []Finding) {
	return BuildCallGraphCtx(context.Background(), img, 0)
}

// BuildCallGraphCtx is BuildCallGraph with cooperative cancellation and an
// explicit worker count (<= 0 selects GOMAXPROCS). The graph and findings
// are byte-identical for every width.
func BuildCallGraphCtx(ctx context.Context, img *oat.Image, workers int) (*CallGraph, []Finding) {
	var fs findings
	l := buildLayout(img, &fs)
	for _, r := range l.regions {
		if r.kind == regionBlob {
			l.checkBlob(r, &fs)
		}
	}
	cg, err := buildCallGraphFrom(ctx, l, workers, &fs)
	if err != nil {
		return nil, nil
	}
	sortFindings(fs.list)
	return cg, fs.list
}

// buildCallGraphFrom walks an already-indexed layout (blob bodies decoded)
// and appends only the walk's own findings — the engine shares one layout
// between the per-method pass and this walk, so record/blob findings are
// not duplicated here.
func buildCallGraphFrom(ctx context.Context, l *layout, workers int, fs *findings) (*CallGraph, error) {
	img := l.img
	cg := &CallGraph{
		Nodes:     make([]CGNode, len(img.Methods)),
		blobIndex: map[int]int{},
	}
	for _, r := range l.regions {
		switch r.kind {
		case regionBlob:
			cg.blobIndex[r.off] = len(cg.Blobs)
			cg.Blobs = append(cg.Blobs, CGBlob{Sym: r.sym, Offset: r.off, Size: r.size})
		case regionThunk:
			cg.thunkSyms = append(cg.thunkSyms, r.sym)
		}
	}

	// Every method not represented by a well-formed region is corrupt:
	// its calls are unrecoverable, so reachability must assume the worst.
	var mregions []region
	present := make([]bool, len(img.Methods))
	for _, r := range l.regions {
		if r.kind == regionMethod {
			mregions = append(mregions, r)
			present[r.method] = true
		}
	}
	for i := range img.Methods {
		cg.Nodes[i] = CGNode{ID: img.Methods[i].ID}
		if !present[i] {
			cg.Nodes[i].Corrupt = true
			cg.Nodes[i].Unknown = true
		}
	}

	type walkResult struct {
		fs   findings
		node CGNode
	}
	results, err := par.MapCtx(ctx, workers, len(mregions), func(i int) (*walkResult, error) {
		res := &walkResult{}
		res.node = walkMethod(l, mregions[i], &res.fs)
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		cg.Nodes[mregions[i].method] = res.node
		fs.list = append(fs.list, res.fs.list...)
	}

	// Blob out-edges exist only on corrupt images (a well-formed outlined
	// function is straight-line); they are what makes an outline cycle
	// representable at all.
	for bi := range cg.Blobs {
		b := &cg.Blobs[bi]
		words := img.Text[b.Offset/a64.WordSize : (b.Offset+b.Size)/a64.WordSize]
		for w, word := range words {
			inst, ok := a64.Decode(word)
			if !ok || (inst.Op != a64.OpBl && inst.Op != a64.OpB) {
				continue
			}
			abs := b.Offset + w*a64.WordSize + int(inst.Imm)
			if r, ok := l.at(abs); ok && abs == r.off {
				switch r.kind {
				case regionMethod:
					b.Edges = append(b.Edges, Edge{Off: w * a64.WordSize, Kind: EdgeMethod, Target: dexID(r.method)})
				case regionBlob:
					b.Edges = append(b.Edges, Edge{Off: w * a64.WordSize, Kind: EdgeOutlined, Sym: r.sym})
				}
			}
		}
	}
	return cg, nil
}

// Abstract register values for the constant-propagation walk.
const (
	valUnknown uint8 = iota
	valConst         // v holds the 64-bit constant
	valEntry         // value loaded from ArtMethod(v).entry_point
)

type absVal struct {
	kind uint8
	v    int64
}

// walkState is the per-block abstract register file.
type walkState [31]absVal

// walkMethod recovers one method's call edges. It decodes the region
// directly (via the bounds-checked layout, never a raw record) so a
// truncated or corrupt record can only have produced a finding upstream,
// never a panic here.
func walkMethod(l *layout, r region, fs *findings) CGNode {
	node := CGNode{ID: l.img.Methods[r.method].ID, Size: r.size}
	rec := l.img.Methods[r.method]
	words := l.words(r)
	n := len(words)

	data := make([]bool, n)
	for _, d := range rec.Meta.EmbeddedData {
		if d.Start < 0 || d.End < d.Start || d.End > r.size || d.Start%a64.WordSize != 0 {
			continue // the per-method pass reports this
		}
		for w := d.Start / a64.WordSize; w < d.End/a64.WordSize; w++ {
			data[w] = true
		}
	}
	insts := make([]a64.Inst, n)
	decoded := make([]bool, n)
	writesTR := false
	for w, word := range words {
		if data[w] {
			continue
		}
		if inst, ok := a64.Decode(word); ok {
			insts[w], decoded[w] = inst, true
			if writesReg(inst, a64.TR) {
				writesTR = true
			}
		}
	}

	// Leaders reset the abstract state: constants only flow within a
	// basic block, which is all the ART calling patterns need.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for w := 0; w < n; w++ {
		if !decoded[w] {
			if w+1 < n {
				leader[w+1] = true
			}
			continue
		}
		inst := insts[w]
		if blockEnder(inst.Op) && w+1 < n {
			leader[w+1] = true
		}
		switch inst.Op {
		case a64.OpB, a64.OpBCond, a64.OpCbz, a64.OpCbnz, a64.OpTbz, a64.OpTbnz:
			if t := w*a64.WordSize + int(inst.Imm); t >= 0 && t < r.size && t%a64.WordSize == 0 {
				leader[t/a64.WordSize] = true
			}
		}
	}

	// The thread register is reserved: if the method never writes x19 it
	// holds ThreadBase everywhere, which is how inline runtime-entrypoint
	// loads (`ldr lr, [x19, #off]`) resolve to runtime stubs, not methods.
	var entry walkState
	if !writesTR {
		entry[a64.TR] = absVal{kind: valConst, v: abi.ThreadBase}
	}

	st := entry
	for w := 0; w < n; w++ {
		if leader[w] {
			st = entry
		}
		if !decoded[w] {
			continue
		}
		walkTransfer(l, r, &node, fs, &st, w*a64.WordSize, insts[w])
	}
	for _, e := range node.Edges {
		if e.Kind == EdgeUnknown {
			node.Unknown = true
			break
		}
	}
	return node
}

// walkTransfer applies one instruction to the abstract register file,
// recording a call edge when the instruction is a call.
func walkTransfer(l *layout, r region, node *CGNode, fs *findings, st *walkState, off int, inst a64.Inst) {
	setUnknown := func(reg a64.Reg) {
		if reg < 31 {
			st[reg] = absVal{}
		}
	}
	switch inst.Op {
	case a64.OpMovz:
		if inst.Rd < 31 {
			st[inst.Rd] = absVal{kind: valConst, v: narrowVal(inst.Sf, inst.Imm<<(16*int64(inst.HW)))}
		}
	case a64.OpMovn:
		if inst.Rd < 31 {
			st[inst.Rd] = absVal{kind: valConst, v: narrowVal(inst.Sf, ^(inst.Imm << (16 * int64(inst.HW))))}
		}
	case a64.OpMovk:
		if inst.Rd < 31 {
			if old := st[inst.Rd]; old.kind == valConst {
				shift := 16 * int64(inst.HW)
				st[inst.Rd] = absVal{kind: valConst, v: narrowVal(inst.Sf, old.v&^(0xFFFF<<shift)|inst.Imm<<shift)}
			} else {
				st[inst.Rd] = absVal{}
			}
		}
	case a64.OpLdrImm:
		if inst.Rd >= 31 {
			return
		}
		// A load from a known constant base may be an ArtMethod
		// entry-point read or a thread-register entrypoint-table read.
		if inst.Rn != 31 && inst.Sf {
			if base := st[inst.Rn]; base.kind == valConst {
				addr := base.v + inst.Imm
				if id, ok := artMethodEntryField(addr); ok {
					st[inst.Rd] = absVal{kind: valEntry, v: int64(id)}
					return
				}
				if k, ok := threadEntrypoint(addr); ok {
					st[inst.Rd] = absVal{kind: valConst, v: abi.NativeStubAddr(k)}
					return
				}
			}
		}
		st[inst.Rd] = absVal{}

	case a64.OpBl:
		node.Edges = append(node.Edges, classifyBl(l, r, node, fs, st, off, inst))
	case a64.OpBlr:
		node.Edges = append(node.Edges, classifyBlr(l, r, fs, st, off, inst))

	default:
		for reg := a64.Reg(0); reg < 31; reg++ {
			if writesReg(inst, reg) {
				setUnknown(reg)
			}
		}
	}
}

// clobberCallRegs applies the AAPCS effect of a real call to the abstract
// register file: caller-saved x0..x17 and the link register are gone.
func clobberCallRegs(st *walkState) {
	for reg := 0; reg <= 17; reg++ {
		st[reg] = absVal{}
	}
	st[a64.LR] = absVal{}
}

// classifyBl resolves a direct call site.
func classifyBl(l *layout, r region, node *CGNode, fs *findings, st *walkState, off int, inst a64.Inst) Edge {
	abs := r.off + off + int(inst.Imm)
	tr, ok := l.at(abs)
	if !ok || abs != tr.off {
		reportDanglingCall(l, fs, dexID(r.method), off, abs, ok)
		clobberCallRegs(st)
		return Edge{Off: off, Kind: EdgeUnknown}
	}
	switch tr.kind {
	case regionMethod:
		clobberCallRegs(st)
		return Edge{Off: off, Kind: EdgeMethod, Target: dexID(tr.method)}
	case regionBlob:
		// Replay the outlined body: it is the caller's own straight-line
		// code and may carry part of a callee materialization.
		if info := l.blobs[tr.off]; info != nil && info.ok {
			for _, bi := range info.insts[:len(info.insts)-1] {
				walkTransfer(l, r, node, fs, st, off, bi)
			}
		} else {
			clobberCallRegs(st)
		}
		return Edge{Off: off, Kind: EdgeOutlined, Sym: tr.sym}
	default: // thunk
		kind, _ := codegen.UnpackSym(tr.sym)
		if kind == codegen.SymKindJavaEntry {
			edge := resolveJavaCall(l, fs, dexID(r.method), off, st[a64.X0])
			// A resolved java call still flows through the thunk: keep
			// its symbol on the edge so reachability keeps the thunk.
			edge.Sym = tr.sym
			clobberCallRegs(st)
			return edge
		}
		clobberCallRegs(st)
		return Edge{Off: off, Kind: EdgeThunk, Sym: tr.sym}
	}
}

// classifyBlr resolves an indirect call site from the abstract value of
// its target register.
func classifyBlr(l *layout, r region, fs *findings, st *walkState, off int, inst a64.Inst) Edge {
	val := absVal{}
	if inst.Rn < 31 {
		val = st[inst.Rn]
	}
	defer clobberCallRegs(st)
	switch val.kind {
	case valEntry:
		edge := resolveJavaCall(l, fs, dexID(r.method), off, absVal{kind: valConst, v: abi.ArtMethodAddr(uint32(val.v))})
		edge.Entry = true
		return edge
	case valConst:
		text := int64(l.img.TextBytes())
		if val.v < abi.TextBase || val.v >= abi.TextBase+text {
			return Edge{Off: off, Kind: EdgeRuntime}
		}
		abs := int(val.v - abi.TextBase)
		tr, ok := l.at(abs)
		if !ok || abs != tr.off {
			reportDanglingCall(l, fs, dexID(r.method), off, abs, ok)
			return Edge{Off: off, Kind: EdgeUnknown}
		}
		switch tr.kind {
		case regionMethod:
			return Edge{Off: off, Kind: EdgeMethod, Target: dexID(tr.method)}
		case regionBlob:
			return Edge{Off: off, Kind: EdgeOutlined, Sym: tr.sym}
		default:
			return Edge{Off: off, Kind: EdgeThunk, Sym: tr.sym}
		}
	default:
		fs.add(SevInfo, dexID(r.method), off, RuleCallGraph,
			"indirect call with unresolved target; reachability treats it as calling every method")
		return Edge{Off: off, Kind: EdgeUnknown}
	}
}

// resolveJavaCall cross-checks a recovered ArtMethod constant against the
// record table and produces the method edge.
func resolveJavaCall(l *layout, fs *findings, caller dex.MethodID, off int, x0 absVal) Edge {
	if x0.kind != valConst {
		fs.add(SevInfo, caller, off, RuleCallGraph,
			"java call with unresolved ArtMethod; reachability treats it as calling every method")
		return Edge{Off: off, Kind: EdgeUnknown}
	}
	id, ok := artMethodID(x0.v)
	if !ok {
		fs.add(SevError, caller, off, RuleCallGraph,
			"java call through %#x, which is not an ArtMethod address", x0.v)
		return Edge{Off: off, Kind: EdgeUnknown}
	}
	if int(id) >= len(l.img.Methods) {
		fs.add(SevError, caller, off, RuleCallGraph,
			"java call to m%d, which has no record (table holds %d methods)", id, len(l.img.Methods))
		return Edge{Off: off, Kind: EdgeUnknown}
	}
	return Edge{Off: off, Kind: EdgeMethod, Target: id}
}

// reportDanglingCall files the call-into-removed-range finding: the call
// target is inside the text segment but in no region (a gap a rewriting
// pass left behind), or outside the segment entirely.
func reportDanglingCall(l *layout, fs *findings, caller dex.MethodID, off, abs int, inText bool) {
	if abs >= 0 && abs < l.img.TextBytes() {
		if _, ok := l.at(abs); !ok {
			fs.add(SevError, caller, off, RuleCallRemoved,
				"call target +%#x lies in a removed range of the text segment", abs)
			return
		}
		if !inText {
			return
		}
		// Interior of a live region: the per-method pass owns that
		// diagnostic (call-target/blob-entry); record only the edge here.
		fs.add(SevInfo, caller, off, RuleCallGraph,
			"call enters a region interior at +%#x; edge unresolved", abs)
		return
	}
	fs.add(SevError, caller, off, RuleCallRemoved,
		"call target +%#x is outside the text segment", abs)
}

// artMethodID maps an ArtMethod base address to its method ID.
func artMethodID(addr int64) (dex.MethodID, bool) {
	if addr < abi.ArtMethodBase || (addr-abi.ArtMethodBase)%abi.ArtMethodStride != 0 {
		return 0, false
	}
	return dex.MethodID((addr - abi.ArtMethodBase) / abi.ArtMethodStride), true
}

// artMethodEntryField reports whether addr is the entry-point field of
// some ArtMethod, and which.
func artMethodEntryField(addr int64) (dex.MethodID, bool) {
	if addr < abi.ArtMethodBase {
		return 0, false
	}
	if (addr-abi.ArtMethodBase)%abi.ArtMethodStride != abi.EntryPointOffset {
		return 0, false
	}
	return dex.MethodID((addr - abi.ArtMethodBase) / abi.ArtMethodStride), true
}

// threadEntrypoint reports whether addr is an entry of the thread
// register's runtime entrypoint table, mirroring the emulator's model.
func threadEntrypoint(addr int64) (int, bool) {
	off := addr - abi.ThreadBase
	if off < 0x200 || off >= 0x1000 || off%8 != 0 {
		return 0, false
	}
	k := int((off - 0x200) / 8)
	if k >= dex.NumNativeFuncs {
		return 0, false
	}
	return k, true
}

// narrowVal mirrors the emulator's 32/64-bit register write semantics.
func narrowVal(sf bool, v int64) int64 {
	if sf {
		return v
	}
	return int64(uint32(v))
}

// WriteDump renders the call graph as deterministic text, one line per
// method that has edges, in table order with edges in call-site order.
// Tooling (oatlint -callgraph) and the golden tests consume this format.
func (cg *CallGraph) WriteDump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "callgraph: %d methods, %d outlined, %d edges\n",
		len(cg.Nodes), len(cg.Blobs), cg.NumEdges()); err != nil {
		return err
	}
	for _, nd := range cg.Nodes {
		if nd.Corrupt {
			if _, err := fmt.Fprintf(w, "m%d: corrupt record\n", nd.ID); err != nil {
				return err
			}
			continue
		}
		if len(nd.Edges) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "m%d:", nd.ID); err != nil {
			return err
		}
		for _, e := range nd.Edges {
			var s string
			switch e.Kind {
			case EdgeMethod:
				s = fmt.Sprintf(" m%d", e.Target)
			case EdgeOutlined, EdgeThunk:
				s = " " + codegen.SymName(e.Sym)
			case EdgeRuntime:
				s = " runtime"
			default:
				s = " ?"
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	for _, b := range cg.Blobs {
		if len(b.Edges) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s: %d edges (malformed outlined body)\n",
			codegen.SymName(b.Sym), len(b.Edges)); err != nil {
			return err
		}
	}
	return nil
}

// MethodCallees returns the deduplicated, sorted method-callee list of one
// node — the shape tests and reports compare against ground truth.
func (cg *CallGraph) MethodCallees(id dex.MethodID) []dex.MethodID {
	if int(id) >= len(cg.Nodes) {
		return nil
	}
	seen := map[dex.MethodID]bool{}
	var out []dex.MethodID
	for _, e := range cg.Nodes[id].Edges {
		if e.Kind == EdgeMethod && !seen[e.Target] {
			seen[e.Target] = true
			out = append(out, e.Target)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
