package analysis_test

import (
	"io"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/oat"
	"repro/internal/workload"
)

// FuzzCallGraph feeds mutated serialized images through the parser and
// the interprocedural walk: whatever Unmarshal accepts, call-graph
// construction and reachability must process without panicking, and the
// graph they produce must stay internally consistent — every edge within
// its node, every target within the tables. Structural garbage surfaces
// as findings and conservative nodes, never as a crash.
func FuzzCallGraph(f *testing.F) {
	app, _, err := workload.Generate(workload.Profile{
		Name: "fuzz", Seed: 11, Methods: 25,
		NativeFrac: 0.1, SwitchFrac: 0.1,
	})
	if err != nil {
		f.Fatal(err)
	}
	res, err := core.Build(app, core.CTOLTBO())
	if err != nil {
		f.Fatal(err)
	}
	data, err := res.Image.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	// Targeted corruptions: a flipped branch bit, a stomped record table,
	// a truncated text section.
	if len(data) > 512 {
		for _, off := range []int{200, len(data) / 2, len(data) - 64} {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x40
			f.Add(mut)
		}
		f.Add(data[:len(data)/2])
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		img, err := oat.Unmarshal(b)
		if err != nil {
			return
		}
		cg, findings := analysis.BuildCallGraph(img)
		if len(cg.Nodes) != len(img.Methods) {
			t.Fatalf("graph covers %d of %d methods", len(cg.Nodes), len(img.Methods))
		}
		if len(cg.Blobs) != len(img.Outlined) {
			t.Fatalf("graph covers %d of %d outlined functions", len(cg.Blobs), len(img.Outlined))
		}
		checkEdges := func(what string, size int, edges []analysis.Edge) {
			for _, e := range edges {
				if e.Off < 0 || e.Off >= size {
					t.Fatalf("%s: edge site +%#x outside its %d-byte region", what, e.Off, size)
				}
				if e.Kind == analysis.EdgeMethod && int(e.Target) >= len(img.Methods) {
					t.Fatalf("%s: edge target m%d outside the %d-entry method table", what, e.Target, len(img.Methods))
				}
			}
		}
		for i, nd := range cg.Nodes {
			checkEdges("method node", nd.Size, nd.Edges)
			if int(nd.ID) != i {
				t.Fatalf("node %d carries ID %d", i, nd.ID)
			}
		}
		for _, bl := range cg.Blobs {
			checkEdges("blob node", bl.Size, bl.Edges)
		}
		for _, fd := range findings {
			_ = fd.String() // rendering must not panic either
		}
		reach := cg.Reachable(analysis.DefaultRoots())
		if err := reach.WriteReport(io.Discard, cg); err != nil {
			t.Fatal(err)
		}
		if err := cg.WriteDump(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
}
