package analysis_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/hgraph"
	"repro/internal/oat"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "regenerate golden files")

// buildAppFull generates the corruption-test app and builds it, returning
// the bytecode alongside the image so tests can compare recovered
// structure against generation-time ground truth.
func buildAppFull(t *testing.T, cfg core.Config) (*dex.App, *workload.Manifest, *oat.Image) {
	t.Helper()
	app, man, err := workload.Generate(workload.Profile{
		Name: "lint", Seed: 42, Methods: 40,
		NativeFrac: 0.05, SwitchFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app, man, res.Image
}

// irCallees is compiler-pipeline ground truth: the invoke targets that
// survive IR optimization and reach the emitter. Raw bytecode is the
// wrong oracle — the optimizer folds constant-guarded branches, so some
// bytecode invokes never make it into the binary. Every ladder
// configuration runs the optimizer (OptimizeIR), so the oracle does too.
func irCallees(t *testing.T, app *dex.App, id dex.MethodID) map[dex.MethodID]bool {
	t.Helper()
	m := app.Methods[id]
	out := map[dex.MethodID]bool{}
	if m.Native {
		return out
	}
	g, err := hgraph.Build(m)
	if err != nil {
		t.Fatalf("m%d: %v", id, err)
	}
	hgraph.Optimize(g)
	for _, b := range g.Blocks {
		for _, in := range b.Insns {
			if in.Op == dex.OpInvoke {
				out[in.Method] = true
			}
		}
	}
	return out
}

// TestCallGraphMatchesBytecode pins the walk's exactness on clean builds:
// the recovered method-call edges of every method under every ladder
// configuration equal its bytecode invoke targets — no misses (soundness)
// and no spurious edges (precision) — and nothing is left unresolved.
func TestCallGraphMatchesBytecode(t *testing.T) {
	for _, c := range ladderConfigs() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			app, _, img := buildAppFull(t, c.cfg)
			cg, findings := analysis.BuildCallGraph(img)
			for _, f := range findings {
				if f.Severity >= analysis.SevWarn {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for id := range img.Methods {
				nd := cg.Nodes[id]
				if nd.Corrupt {
					t.Fatalf("m%d marked corrupt on a clean build", id)
				}
				if nd.Unknown {
					t.Errorf("m%d has an unresolved edge on a clean build", id)
				}
				want := irCallees(t, app, dex.MethodID(id))
				got := cg.MethodCallees(dex.MethodID(id))
				if len(got) != len(want) {
					t.Errorf("m%d: recovered %d callees, bytecode has %d", id, len(got), len(want))
					continue
				}
				for _, callee := range got {
					if !want[callee] {
						t.Errorf("m%d: spurious edge to m%d", id, callee)
					}
				}
			}
		})
	}
}

// TestCallGraphDeterminism pins satellite 1 for the new passes: the graph
// dump and the findings are byte-identical across worker widths.
func TestCallGraphDeterminism(t *testing.T) {
	_, _, img := buildAppFull(t, core.CTOLTBOPl(4))
	var dumps [3]bytes.Buffer
	var finds [3][]analysis.Finding
	for i, workers := range []int{1, 3, 8} {
		cg, fs := analysis.BuildCallGraphCtx(t.Context(), img, workers)
		if err := cg.WriteDump(&dumps[i]); err != nil {
			t.Fatal(err)
		}
		finds[i] = fs
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(dumps[0].Bytes(), dumps[i].Bytes()) {
			t.Errorf("dump differs between 1 worker and %d workers", []int{1, 3, 8}[i])
		}
		if len(finds[0]) != len(finds[i]) {
			t.Fatalf("finding count differs across widths: %d vs %d", len(finds[0]), len(finds[i]))
		}
		for j := range finds[0] {
			if finds[0][j] != finds[i][j] {
				t.Errorf("finding %d differs across widths: %v vs %v", j, finds[0][j], finds[i][j])
			}
		}
	}
}

// TestAnalyzeDeterminism pins satellite 1 for the legacy pass: the full
// report's findings are identical across worker widths (the sort at the
// boundary, not scheduling luck, fixes the order).
func TestAnalyzeDeterminism(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	// Corrupt a couple of words so there are findings to order.
	img.Text[len(img.Text)/2] = 0xFFFFFFFF
	img.Text[len(img.Text)/3] = 0xFFFFFFFF
	base := analysis.AnalyzeParallel(img, 1).Findings
	if len(base) == 0 {
		t.Fatal("corruption produced no findings")
	}
	for _, workers := range []int{2, 5, 16} {
		got := analysis.AnalyzeParallel(img, workers).Findings
		if len(got) != len(base) {
			t.Fatalf("worker width %d: %d findings, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("worker width %d: finding %d = %v, want %v", workers, i, got[i], base[i])
			}
		}
	}
}

// TestCallGraphCorruptRecord extends the corrupt-image degradation
// contract to call-graph construction: a truncated record must surface as
// a finding and a conservative node, never a panic — and reachability
// over it must refuse to classify anything dead.
func TestCallGraphCorruptRecord(t *testing.T) {
	_, man, img := buildAppFull(t, core.CTOLTBO())
	img.Methods[5].Size = img.TextBytes() * 2 // truncated/overflowing record
	cg, findings := analysis.BuildCallGraph(img)
	var recordFinding bool
	for _, f := range findings {
		if f.Rule == analysis.RuleRecord && f.Severity == analysis.SevError {
			recordFinding = true
		}
	}
	if !recordFinding {
		t.Error("truncated record produced no record finding")
	}
	if !cg.Nodes[5].Corrupt {
		t.Error("truncated record's node not marked corrupt")
	}
	reach := cg.Reachable(analysis.RootSet{Methods: man.Drivers})
	if !reach.Imprecise {
		t.Error("reachability over a corrupt image claims precision")
	}
	for i, live := range reach.LiveMethods {
		if !live && img.Methods[i].Size > 0 {
			t.Errorf("m%d classified dead on an imprecise analysis", i)
		}
	}
	if _, _, err := analysis.Debloat(img, analysis.RootSet{Methods: man.Drivers}); err == nil {
		t.Error("debloat accepted a corrupt image")
	}
}

// TestCallGraphStompedWord checks per-site degradation: an undecodable
// word inside one method degrades that method's edges, not the process.
func TestCallGraphStompedWord(t *testing.T) {
	_, _, img := buildAppFull(t, core.CTOLTBO())
	img.Text[img.Methods[4].Offset/4] = 0xFFFFFFFF
	cg, _ := analysis.BuildCallGraph(img)
	if len(cg.Nodes) != len(img.Methods) {
		t.Fatalf("graph covers %d of %d methods", len(cg.Nodes), len(img.Methods))
	}
}

// TestReachabilityZeroFalsePositives is the acceptance guarantee the
// debloat loop rests on: every method the optimized IR can reach from
// the drivers — a superset of what any run of the hgraph differential
// tests exercises — must be classified live by the binary-level analysis.
func TestReachabilityZeroFalsePositives(t *testing.T) {
	for _, c := range ladderConfigs() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			app, man, img := buildAppFull(t, c.cfg)
			cg, _ := analysis.BuildCallGraph(img)
			reach := cg.Reachable(analysis.RootSet{Methods: man.Drivers})

			// IR-level closure from the drivers: a superset of anything the
			// hgraph interpreter can exercise at run time.
			live := map[dex.MethodID]bool{}
			var work []dex.MethodID
			for _, d := range man.Drivers {
				live[d] = true
				work = append(work, d)
			}
			for len(work) > 0 {
				id := work[len(work)-1]
				work = work[:len(work)-1]
				for callee := range irCallees(t, app, id) {
					if !live[callee] {
						live[callee] = true
						work = append(work, callee)
					}
				}
			}
			for id := range live {
				if !reach.LiveMethods[id] {
					t.Errorf("m%d is IR-reachable but classified dead", id)
				}
			}
		})
	}
}

// TestCallGraphGolden pins the dump format and the recovered structure of
// one ladder app end to end. Regenerate with -update on an intentional
// change.
func TestCallGraphGolden(t *testing.T) {
	prof := workload.Apps(0.03)[0]
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, core.CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	cg, _ := analysis.BuildCallGraph(res.Image)
	var buf bytes.Buffer
	if err := cg.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "callgraph_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("call-graph dump drifted from golden file (regenerate with -update)\ngot %d bytes, want %d", buf.Len(), len(want))
	}
}
