package analysis

import (
	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
)

// CFG is the control-flow graph recovered from one method's linked code.
// Blocks are in ascending address order; the block containing offset 0 is
// the entry. Embedded-data words (literal pools, jump tables) belong to no
// block.
type CFG struct {
	Blocks []Block
}

// Block is one basic block: a maximal straight-line run of instructions.
type Block struct {
	Start int    // byte offset of the first instruction, method-relative
	End   int    // byte offset one past the last instruction
	Succs []int  // successor block indices
	Term  a64.Op // control transfer ending the block; OpInvalid on fall-through splits
}

// NumInsts returns the instruction count of the block.
func (b Block) NumInsts() int { return (b.End - b.Start) / a64.WordSize }

// MethodCFG recovers the control-flow graph of one method of a linked
// image, along with any findings the recovery itself produced (decode
// failures, branch-target violations, unresolvable indirect branches).
func MethodCFG(img *oat.Image, id dex.MethodID) (*CFG, []Finding) {
	var fs findings
	l := buildLayout(img, &fs)
	for _, r := range l.regions {
		if r.kind == regionBlob {
			l.checkBlob(r, &findings{}) // populate blob index, discard findings
		}
	}
	for _, r := range l.regions {
		if r.kind == regionMethod && r.method == int(id) {
			mc := newMethodCtx(l, r, &fs)
			mc.recoverCFG()
			return mc.cfg, fs.list
		}
	}
	fs.add(SevError, id, -1, RuleRecord, "method has no well-formed record")
	return nil, fs.list
}

// methodCtx holds the per-method decoding state shared by the CFI, CFG,
// and dataflow passes.
type methodCtx struct {
	l   *layout
	r   region
	rec oat.MethodRecord
	fs  *findings

	words   []uint32
	data    []bool     // word marked embedded data by the LTBO metadata
	insts   []a64.Inst // valid where decoded[w]
	decoded []bool

	sound       bool          // every non-data word decodes; deep passes are meaningful
	switchSuccs map[int][]int // br word index -> resolved target word indices
	cfg         *CFG
	blockAt     []int // word index -> block index, -1 for data/none
	reach       []bool
	calls       int
}

func newMethodCtx(l *layout, r region, fs *findings) *methodCtx {
	rec := l.img.Methods[r.method]
	n := r.size / a64.WordSize
	mc := &methodCtx{
		l: l, r: r, rec: rec, fs: fs,
		words:       l.words(r),
		data:        make([]bool, n),
		insts:       make([]a64.Inst, n),
		decoded:     make([]bool, n),
		sound:       true,
		switchSuccs: map[int][]int{},
	}
	for _, d := range rec.Meta.EmbeddedData {
		if d.Start < 0 || d.End < d.Start || d.End > r.size || d.Start%a64.WordSize != 0 {
			mc.errf(d.Start, RuleMetadata, "embedded-data range [%#x,%#x) out of method bounds", d.Start, d.End)
			continue
		}
		for w := d.Start / a64.WordSize; w < d.End/a64.WordSize; w++ {
			mc.data[w] = true
		}
	}
	for w, word := range mc.words {
		if mc.data[w] {
			continue
		}
		inst, ok := a64.Decode(word)
		if !ok {
			mc.errf(w*a64.WordSize, RuleDecode,
				"word %#08x outside embedded data does not decode", word)
			mc.sound = false
			continue
		}
		mc.insts[w] = inst
		mc.decoded[w] = true
	}
	return mc
}

func (mc *methodCtx) id() dex.MethodID { return mc.rec.ID }

func (mc *methodCtx) errf(off int, rule, format string, args ...any) {
	mc.fs.add(SevError, mc.id(), off, rule, format, args...)
}

func (mc *methodCtx) warnf(off int, rule, format string, args ...any) {
	mc.fs.add(SevWarn, mc.id(), off, rule, format, args...)
}

// blockEnder reports whether the op terminates a basic block. Calls (bl,
// blr) fall through to the next instruction and do not end blocks.
func blockEnder(op a64.Op) bool {
	switch op {
	case a64.OpB, a64.OpBCond, a64.OpCbz, a64.OpCbnz, a64.OpTbz, a64.OpTbnz,
		a64.OpBr, a64.OpRet, a64.OpBrk:
		return true
	}
	return false
}

// condBranch reports whether the op is a conditional branch (falls through
// when untaken).
func condBranch(op a64.Op) bool {
	switch op {
	case a64.OpBCond, a64.OpCbz, a64.OpCbnz, a64.OpTbz, a64.OpTbnz:
		return true
	}
	return false
}

// checkCFI validates every control transfer (§3.5 / the tentpole's rule
// set) and resolves indirect branches, recording findings as it goes. It
// must run before recoverCFG: block successors depend on the resolved
// switch tables.
func (mc *methodCtx) checkCFI() {
	n := len(mc.words)
	for w := 0; w < n; w++ {
		if !mc.decoded[w] {
			continue
		}
		inst := mc.insts[w]
		off := w * a64.WordSize
		switch inst.Op {
		case a64.OpB, a64.OpBCond, a64.OpCbz, a64.OpCbnz, a64.OpTbz, a64.OpTbnz:
			mc.checkLocalBranch(off, inst)
		case a64.OpBl:
			mc.calls++
			mc.checkCall(off, inst)
		case a64.OpBlr:
			mc.calls++
		case a64.OpBr:
			if targets, ok := mc.resolveSwitch(w); ok {
				mc.switchSuccs[w] = targets
			}
			if !mc.rec.Meta.HasIndirectJump {
				mc.warnf(off, RuleMetadata,
					"method contains a computed branch but HasIndirectJump is unset")
			}
		case a64.OpLdrLit, a64.OpAdr:
			mc.checkLiteral(off, inst)
		}
	}
}

// checkLocalBranch enforces the intra-method rule: the target lands on an
// instruction boundary inside the same method, never on data and never in
// another region.
func (mc *methodCtx) checkLocalBranch(off int, inst a64.Inst) {
	target := off + int(inst.Imm)
	if target < 0 || target >= mc.r.size {
		where := "outside the text segment"
		if r, ok := mc.l.at(mc.r.off + target); ok {
			if r.kind == regionBlob {
				mc.errf(off, RuleBlobEntry, "%s branches into %s",
					inst.Op, codegen.SymName(r.sym))
				return
			}
			where = "into " + describeRegion(r)
		}
		mc.errf(off, RuleBranchTarget, "%s target %#x escapes the method (size %#x) %s",
			inst.Op, target, mc.r.size, where)
		return
	}
	if target%a64.WordSize != 0 {
		mc.errf(off, RuleBranchTarget, "%s target %#x is not an instruction boundary", inst.Op, target)
		return
	}
	if mc.data[target/a64.WordSize] {
		mc.errf(off, RuleBranchTarget, "%s target %#x lands in embedded data", inst.Op, target)
	}
}

// checkCall enforces the bl rule: the callee is a method entry, a pattern
// thunk head, or an outlined-function head — never the interior of any
// region.
func (mc *methodCtx) checkCall(off int, inst a64.Inst) {
	abs := mc.r.off + off + int(inst.Imm)
	r, ok := mc.l.at(abs)
	if !ok {
		mc.errf(off, RuleCallTarget, "bl target %#x is outside every code region", abs)
		return
	}
	if abs == r.off {
		return // a head of some region: legal callee
	}
	switch r.kind {
	case regionBlob:
		mc.errf(off, RuleBlobEntry, "bl enters %s at interior offset %#x",
			codegen.SymName(r.sym), abs-r.off)
	default:
		mc.errf(off, RuleCallTarget, "bl enters %s at interior offset %#x",
			describeRegion(r), abs-r.off)
	}
}

// checkLiteral validates PC-relative data references: LDR (literal) and
// ADR must point inside the method; pointing outside its embedded-data
// ranges means code is being read as data.
func (mc *methodCtx) checkLiteral(off int, inst a64.Inst) {
	target := off + int(inst.Imm)
	if target < 0 || target+a64.WordSize > mc.r.size {
		mc.errf(off, RuleLiteral, "%s target %#x outside the method", inst.Op, target)
		return
	}
	if target%a64.WordSize == 0 && !mc.data[target/a64.WordSize] {
		mc.warnf(off, RuleLiteral, "%s target %#x is not embedded data", inst.Op, target)
	}
}

// resolveSwitch recovers the targets of a computed branch by matching the
// code generator's packed-switch idiom:
//
//	subs xzr, xI, #n      ; bound check
//	b.hs fallthrough
//	adr  x16, table
//	ldr  x17, [x16, xI, lsl #3]
//	add  x17, x16, x17
//	br   x17
//
// and reading the n 8-byte table entries (target - table displacements)
// out of the embedded data. This is the one place CFG recovery needs an
// idiom: everything else follows from instruction decoding alone.
func (mc *methodCtx) resolveSwitch(w int) ([]int, bool) {
	off := w * a64.WordSize
	fail := func(format string, args ...any) ([]int, bool) {
		mc.errf(off, RuleIndirect, "unresolvable computed branch: "+format, args...)
		return nil, false
	}
	if w < 5 {
		return fail("no room for the switch idiom before it")
	}
	for i := w - 5; i < w; i++ {
		if !mc.decoded[i] {
			return fail("preceding word at %#x is not an instruction", i*a64.WordSize)
		}
	}
	br, add, ldr, adr, bcc, subs :=
		mc.insts[w], mc.insts[w-1], mc.insts[w-2], mc.insts[w-3], mc.insts[w-4], mc.insts[w-5]
	switch {
	case br.Rn != a64.IP1:
		return fail("br through x%d, want x17", br.Rn)
	case add.Op != a64.OpAddReg || add.Rd != a64.IP1 || add.Rn != a64.IP0 || add.Rm != a64.IP1:
		return fail("missing table-base add")
	case ldr.Op != a64.OpLdrReg || ldr.Rd != a64.IP1 || ldr.Rn != a64.IP0:
		return fail("missing table load")
	case adr.Op != a64.OpAdr || adr.Rd != a64.IP0:
		return fail("missing table adr")
	case bcc.Op != a64.OpBCond || bcc.Cond != a64.HS:
		return fail("missing bound-check branch")
	case subs.Op != a64.OpSubsImm || subs.Rd != 31 || subs.Shift12:
		return fail("missing bound-check compare")
	}
	table := (w-3)*a64.WordSize + int(adr.Imm)
	count := int(subs.Imm)
	if table < 0 || table%a64.WordSize != 0 || table+8*count > mc.r.size {
		return fail("table [%#x,%#x) outside the method", table, table+8*count)
	}
	targets := make([]int, 0, count)
	for i := 0; i < count; i++ {
		lo, hi := table/a64.WordSize+2*i, table/a64.WordSize+2*i+1
		if !mc.data[lo] || !mc.data[hi] {
			return fail("table entry %d at %#x is not embedded data", i, table+8*i)
		}
		disp := int64(mc.words[lo]) | int64(mc.words[hi])<<32
		t := table + int(disp)
		if t < 0 || t >= mc.r.size || t%a64.WordSize != 0 || mc.data[t/a64.WordSize] {
			return fail("table entry %d target %#x is not an instruction of the method", i, t)
		}
		targets = append(targets, t/a64.WordSize)
	}
	return targets, true
}

// recoverCFG builds the basic-block graph. checkCFI has populated the
// switch successor map; block successors that would leave the instruction
// stream (falling into data, off the method end) produce findings here.
func (mc *methodCtx) recoverCFG() {
	if mc.cfg != nil {
		return
	}
	mc.checkCFI()
	n := len(mc.words)
	leader := make([]bool, n+1)
	leader[0] = true
	for w := 0; w < n; w++ {
		if !mc.decoded[w] {
			leader[w+1] = true // data/undecodable runs break blocks
			continue
		}
		inst := mc.insts[w]
		if blockEnder(inst.Op) {
			leader[w+1] = true
		}
		switch inst.Op {
		case a64.OpB, a64.OpBCond, a64.OpCbz, a64.OpCbnz, a64.OpTbz, a64.OpTbnz:
			t := w*a64.WordSize + int(inst.Imm)
			if t >= 0 && t < mc.r.size && t%a64.WordSize == 0 {
				leader[t/a64.WordSize] = true
			}
		case a64.OpBr:
			for _, t := range mc.switchSuccs[w] {
				leader[t] = true
			}
		}
	}

	cfg := &CFG{}
	mc.blockAt = make([]int, n)
	for i := range mc.blockAt {
		mc.blockAt[i] = -1
	}
	for w := 0; w < n; {
		if !mc.decoded[w] {
			w++
			continue
		}
		start := w
		for {
			mc.blockAt[w] = len(cfg.Blocks)
			if blockEnder(mc.insts[w].Op) || w+1 >= n || leader[w+1] || !mc.decoded[w+1] {
				break
			}
			w++
		}
		cfg.Blocks = append(cfg.Blocks, Block{
			Start: start * a64.WordSize,
			End:   (w + 1) * a64.WordSize,
		})
		w++
	}

	// Successor edges, now that block indices are final.
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		last := b.End/a64.WordSize - 1
		inst := mc.insts[last]
		fall := func() {
			next := b.End / a64.WordSize
			switch {
			case next >= n:
				mc.errf(b.End-a64.WordSize, RuleBranchTarget,
					"control falls off the end of the method")
			case !mc.decoded[next]:
				mc.errf(b.End-a64.WordSize, RuleBranchTarget,
					"control falls through into embedded data at %#x", b.End)
			default:
				b.Succs = append(b.Succs, mc.blockAt[next])
			}
		}
		local := func() {
			t := last*a64.WordSize + int(inst.Imm)
			if t >= 0 && t < mc.r.size && t%a64.WordSize == 0 && mc.blockAt[t/a64.WordSize] >= 0 {
				b.Succs = append(b.Succs, mc.blockAt[t/a64.WordSize])
			}
		}
		switch {
		case inst.Op == a64.OpB:
			b.Term = inst.Op
			local()
		case condBranch(inst.Op):
			b.Term = inst.Op
			local()
			fall()
		case inst.Op == a64.OpBr:
			b.Term = inst.Op
			for _, t := range mc.switchSuccs[last] {
				if mc.blockAt[t] >= 0 {
					b.Succs = append(b.Succs, mc.blockAt[t])
				}
			}
		case inst.Op == a64.OpRet, inst.Op == a64.OpBrk:
			b.Term = inst.Op
		default:
			fall() // block split by a leader or a data run
		}
	}
	mc.cfg = cfg
	mc.markReachable()
}

// markReachable walks the CFG from the entry block and reports dead code.
func (mc *methodCtx) markReachable() {
	mc.reach = make([]bool, len(mc.cfg.Blocks))
	if len(mc.cfg.Blocks) == 0 {
		if mc.r.size > 0 && !mc.data[0] {
			mc.errf(0, RuleDecode, "method has no recoverable instructions")
		}
		return
	}
	if mc.cfg.Blocks[0].Start != 0 {
		mc.errf(0, RuleBranchTarget, "method entry at offset 0 is not an instruction")
		return
	}
	work := []int{0}
	mc.reach[0] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range mc.cfg.Blocks[bi].Succs {
			if !mc.reach[s] {
				mc.reach[s] = true
				work = append(work, s)
			}
		}
	}
	for bi, b := range mc.cfg.Blocks {
		if !mc.reach[bi] {
			mc.fs.add(SevInfo, mc.id(), b.Start, RuleDeadCode,
				"unreachable block of %d instructions", b.NumInsts())
		}
	}
}

func describeRegion(r region) string {
	if r.kind == regionMethod {
		return methodName(dexID(r.method))
	}
	return codegen.SymName(r.sym)
}
