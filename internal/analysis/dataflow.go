package analysis

import (
	"sort"

	"repro/internal/a64"
	"repro/internal/codegen"
)

// The dataflow pass abstractly interprets every path through the
// recovered CFG, tracking three facts the ABI demands at every ret:
//
//   - stack-pointer balance: the frame allocated at entry is released on
//     every return path, and no two paths reach the same block with
//     different sp adjustments;
//   - callee-saved discipline: x19..x29 hold their entry values at ret,
//     which forces the save/restore pairs to match across every path,
//     including the ones that route through outlined functions;
//   - link-register integrity: the x30 that ret jumps through is the
//     caller's return address, not a leftover from an intervening call.
//
// The abstraction is deliberately small: sp is an exact byte delta from
// entry, each register is either clean (still holds its entry value) or
// dirty, and the only memory modeled is the method's own frame, as a map
// from entry-relative sp offsets to the callee-saved register whose entry
// value was spilled there. Calls clobber the AAPCS caller-saved set;
// calls into outlined functions replay the blob body inline, because an
// outlined prologue/epilogue fragment saves or restores registers on the
// caller's behalf.

// spUnknown poisons the sp delta after an untracked sp write.
const spUnknown = int64(-1) << 62

// calleeSavedMask covers x19..x29: the registers a method must preserve.
// x18 is the platform register; x30 is tracked separately as the link
// register.
const calleeSavedMask = 0x3FF8_0000

// callerSavedMask covers x0..x17, clobbered by any real call.
const callerSavedMask = 0x0003_FFFF

// absState is the abstract machine state at one program point.
type absState struct {
	sp    int64             // sp delta from method entry, in bytes
	dirty uint32            // bit r: xr no longer holds its entry value
	slots map[int64]a64.Reg // entry-relative frame offset -> reg saved there
}

func newEntryState() *absState {
	return &absState{slots: map[int64]a64.Reg{}}
}

func (s *absState) clone() *absState {
	c := &absState{sp: s.sp, dirty: s.dirty, slots: make(map[int64]a64.Reg, len(s.slots))}
	for k, v := range s.slots {
		c.slots[k] = v
	}
	return c
}

// mergeInto folds s into dst, reporting whether dst changed and whether
// the stack deltas disagree (the caller turns that into a finding).
func (s *absState) mergeInto(dst *absState) (changed, spConflict bool) {
	if dst.sp != s.sp {
		if dst.sp != spUnknown {
			spConflict = dst.sp != s.sp && s.sp != spUnknown
			if s.sp == spUnknown || spConflict {
				dst.sp = spUnknown
				changed = true
			}
		}
	}
	if d := dst.dirty | s.dirty; d != dst.dirty {
		dst.dirty = d
		changed = true
	}
	for k, v := range dst.slots {
		if s.slots[k] != v {
			delete(dst.slots, k)
			changed = true
		}
	}
	return changed, spConflict
}

func (s *absState) markDirty(r a64.Reg) {
	if r < 31 {
		s.dirty |= 1 << r
	}
}

func (s *absState) isClean(r a64.Reg) bool { return r < 31 && s.dirty&(1<<r) == 0 }

// store models a write of reg to the frame slot at entry-relative offset.
// Only a clean callee-saved (or link/frame) register produces a tracked
// save; anything else kills whatever the slot held.
func (s *absState) store(addr int64, reg a64.Reg) {
	if reg < 31 && s.isClean(reg) && (calleeSavedMask|1<<a64.LR)&(1<<reg) != 0 {
		s.slots[addr] = reg
	} else {
		delete(s.slots, addr)
	}
}

// load models a read of the frame slot at addr into reg: restoring a
// register from its own saved entry value makes it clean again.
func (s *absState) load(addr int64, reg a64.Reg) {
	if reg >= 31 {
		return
	}
	if saved, ok := s.slots[addr]; ok && saved == reg {
		s.dirty &^= 1 << reg
		return
	}
	s.markDirty(reg)
}

// clobberCall applies the AAPCS effect of a call whose callee is opaque:
// caller-saved registers and the link register are gone; sp, the frame,
// and callee-saved registers are preserved.
func (s *absState) clobberCall() {
	s.dirty |= callerSavedMask | 1<<a64.LR
}

// transfer applies one instruction. It returns false when the state after
// the instruction is meaningless (sp lost), which poisons the path.
func (mc *methodCtx) transfer(s *absState, off int, inst a64.Inst) bool {
	isSP := func(r a64.Reg) bool { return r == 31 }
	switch inst.Op {
	case a64.OpAddImm, a64.OpSubImm:
		imm := inst.Imm
		if inst.Shift12 {
			imm <<= 12
		}
		if inst.Op == a64.OpSubImm {
			imm = -imm
		}
		switch {
		case isSP(inst.Rd) && isSP(inst.Rn):
			if s.sp != spUnknown {
				s.sp += imm
			}
		case isSP(inst.Rd):
			mc.errf(off, RuleSPBalance, "sp written from x%d; stack depth untrackable", inst.Rn)
			s.sp = spUnknown
			return false
		default:
			s.markDirty(inst.Rd)
		}

	case a64.OpAddsImm, a64.OpSubsImm,
		a64.OpAddReg, a64.OpAddsReg, a64.OpSubReg, a64.OpSubsReg,
		a64.OpAndReg, a64.OpOrrReg, a64.OpEorReg,
		a64.OpMul, a64.OpLslReg, a64.OpLsrReg,
		a64.OpMovz, a64.OpMovn, a64.OpMovk,
		a64.OpAdr, a64.OpAdrp, a64.OpLdrLit, a64.OpLdrReg:
		s.markDirty(inst.Rd) // Rd==31 is ZR for these classes: markDirty ignores it

	case a64.OpLdrImm:
		if isSP(inst.Rn) && inst.Sf && s.sp != spUnknown {
			s.load(s.sp+inst.Imm, inst.Rd)
		} else {
			s.markDirty(inst.Rd)
		}

	case a64.OpStrImm:
		if isSP(inst.Rn) && s.sp != spUnknown {
			if inst.Sf {
				s.store(s.sp+inst.Imm, inst.Rd)
			} else {
				delete(s.slots, s.sp+inst.Imm)
			}
		}

	case a64.OpStrReg:
		// Store through a computed address: object memory, not the frame.

	case a64.OpLdp, a64.OpStp:
		if !isSP(inst.Rn) {
			if inst.Op == a64.OpLdp {
				s.markDirty(inst.Rd)
				s.markDirty(inst.Rt2)
			} else if inst.Index != a64.IndexOffset {
				s.markDirty(inst.Rn) // writeback to a non-sp base
			}
			break
		}
		if s.sp == spUnknown {
			s.markDirty(inst.Rd)
			s.markDirty(inst.Rt2)
			break
		}
		base := s.sp
		if inst.Index == a64.IndexPre {
			s.sp += inst.Imm
			base = s.sp
		} else if inst.Index == a64.IndexOffset {
			base += inst.Imm
		}
		if inst.Op == a64.OpStp {
			s.store(base, inst.Rd)
			s.store(base+8, inst.Rt2)
		} else {
			s.load(base, inst.Rd)
			s.load(base+8, inst.Rt2)
		}
		if inst.Index == a64.IndexPost {
			s.sp += inst.Imm
		}

	case a64.OpBl:
		s.markDirty(a64.LR)
		abs := mc.r.off + off + int(inst.Imm)
		if info, ok := mc.l.blobs[abs]; ok && info.ok {
			// An outlined function is the caller's own straight-line code:
			// replay its body (minus the trailing br x30) on the state.
			for _, bi := range info.insts[:len(info.insts)-1] {
				mc.transfer(s, off, bi)
			}
		} else {
			s.clobberCall()
		}

	case a64.OpBlr:
		s.clobberCall()

	case a64.OpRet:
		mc.checkRet(s, off, inst)

	case a64.OpB, a64.OpBCond, a64.OpCbz, a64.OpCbnz, a64.OpTbz, a64.OpTbnz,
		a64.OpBr, a64.OpBrk, a64.OpNop:
		// No register or stack effect.
	}
	return true
}

// checkRet enforces the return-path invariants.
func (mc *methodCtx) checkRet(s *absState, off int, inst a64.Inst) {
	if s.sp != 0 && s.sp != spUnknown {
		mc.errf(off, RuleSPBalance,
			"ret with sp adjusted by %+d bytes: the entry frame is not released", s.sp)
	}
	if !s.isClean(inst.Rn) {
		mc.errf(off, RuleLinkReg, "ret through x%d, which no longer holds the return address", inst.Rn)
	}
	if bad := s.dirty & calleeSavedMask; bad != 0 {
		mc.errf(off, RuleCalleeSaved,
			"callee-saved %s not restored to entry values on this path", regList(bad))
	}
}

// runDataflow drives the worklist to a fixpoint over the recovered CFG.
// It requires a sound decode (checkCFI found every word an instruction)
// and a recovered CFG.
func (mc *methodCtx) runDataflow() {
	if !mc.sound || mc.cfg == nil || len(mc.cfg.Blocks) == 0 {
		return
	}
	mc.checkStackProbe()

	n := len(mc.cfg.Blocks)
	in := make([]*absState, n)
	in[0] = newEntryState()
	spReported := make([]bool, n)
	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	steps := 0
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		if steps++; steps > 4*n+64 {
			return // defensive bound; the lattice converges long before this
		}
		st := in[bi].clone()
		b := mc.cfg.Blocks[bi]
		okPath := true
		for w := b.Start / a64.WordSize; w < b.End/a64.WordSize; w++ {
			if !mc.transfer(st, w*a64.WordSize, mc.insts[w]) {
				okPath = false
				break
			}
		}
		if !okPath {
			continue
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = st.clone()
				if !queued[succ] {
					work = append(work, succ)
					queued[succ] = true
				}
				continue
			}
			changed, conflict := st.mergeInto(in[succ])
			if conflict && !spReported[succ] {
				spReported[succ] = true
				mc.errf(mc.cfg.Blocks[succ].Start, RuleSPBalance,
					"paths reach this block with different sp adjustments")
			}
			if changed && !queued[succ] {
				work = append(work, succ)
				queued[succ] = true
			}
		}
	}
}

// checkStackProbe verifies that a method which makes real calls performs
// the stack-overflow guard probe (Figure 4c) before its first call: either
// the CTO thunk call or the inline sub/ldr pair. Calls into outlined
// functions do not grow the stack and need no probe.
func (mc *methodCtx) checkStackProbe() {
	probe, firstCall := -1, -1
	for w := 0; w < len(mc.words); w++ {
		if !mc.decoded[w] {
			continue
		}
		inst := mc.insts[w]
		off := w * a64.WordSize
		switch inst.Op {
		case a64.OpBl:
			abs := mc.r.off + off + int(inst.Imm)
			if r, ok := mc.l.at(abs); ok && abs == r.off {
				switch r.kind {
				case regionThunk:
					if kind, _ := codegen.UnpackSym(r.sym); kind == codegen.SymKindStackCheck {
						if probe < 0 {
							probe = off
						}
						continue
					}
				case regionBlob:
					continue
				}
			}
			if firstCall < 0 {
				firstCall = off
			}
		case a64.OpBlr:
			if firstCall < 0 {
				firstCall = off
			}
		case a64.OpSubImm:
			// sub x16, sp, #guard, lsl #12 ; ldr wzr, [x16]
			if inst.Rd == a64.IP0 && inst.Rn == 31 && inst.Shift12 &&
				w+1 < len(mc.words) && mc.decoded[w+1] {
				next := mc.insts[w+1]
				if next.Op == a64.OpLdrImm && next.Rd == 31 && next.Rn == a64.IP0 && probe < 0 {
					probe = off
				}
			}
		}
	}
	if firstCall < 0 {
		return // leaf: no probe required
	}
	switch {
	case probe < 0:
		mc.errf(firstCall, RuleStackProbe,
			"method makes calls but never probes the stack guard")
	case probe > firstCall:
		mc.errf(firstCall, RuleStackProbe,
			"first call at %#x precedes the stack guard probe at %#x", firstCall, probe)
	}
}

// regList renders a register bitmask for diagnostics.
func regList(mask uint32) string {
	var regs []int
	for r := 0; r < 31; r++ {
		if mask&(1<<r) != 0 {
			regs = append(regs, r)
		}
	}
	sort.Ints(regs)
	out := ""
	for i, r := range regs {
		if i > 0 {
			out += ","
		}
		out += "x" + itoa(r)
	}
	return out
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}
