package analysis

import (
	"context"
	"fmt"

	"repro/internal/a64"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
)

// Debloat is the reachability-driven rewrite pass: it takes an existing
// linked image — not a compile — and emits a smaller one with every
// provably-dead method body, orphaned outlined function, and unreferenced
// thunk removed.
//
// The safety argument has three legs:
//
//  1. Admission: an image with any error-severity lint finding is
//     refused. On an admitted image every bl lands on a region head
//     (the call-target rule), which is what makes relocation patching
//     total rather than heuristic.
//  2. Conservatism: removal is driven by Reachable, whose dead
//     classification is "provably dead" — any unresolved edge keeps the
//     whole image live, so the worst failure mode is removing nothing.
//  3. Re-verification: the emitted image is run through oat.Validate and
//     the full lint; a warning or error fails the debloat instead of
//     shipping a corrupt image.
//
// Method records are never deleted or renumbered — the method table is
// indexed by dex.MethodID, and every materialized ArtMethod address in
// live code encodes an ID. A dead method keeps its table slot as a
// zero-size stub record at the end of the text segment.
//
// Only bl sites need relocation patching: every other PC-relative
// instruction is intra-method (the branch-target and literal rules
// enforce this) and moves with its method, and thunk/blob bodies contain
// no PC-relative code at all. The rebuild preserves region order, so
// debloating an already-debloated image is the identity — the idempotence
// the tests pin.

// DebloatStats reports what a debloat removed.
type DebloatStats struct {
	MethodsTotal   int // method records in the table
	MethodsRemoved int // bodies replaced by zero-size stubs this pass
	BlobsTotal     int
	BlobsRemoved   int
	ThunksTotal    int
	ThunksRemoved  int
	TextBefore     int // bytes
	TextAfter      int // bytes
	Imprecise      bool
	// DeadMethods lists the IDs stubbed out this pass, ascending.
	DeadMethods []dex.MethodID
}

// Debloat rewrites an image keeping only code reachable from roots.
func Debloat(img *oat.Image, roots RootSet) (*oat.Image, *DebloatStats, error) {
	return DebloatCtx(context.Background(), img, roots, 0, nil)
}

// DebloatCtx is Debloat with cooperative cancellation, an explicit
// analysis worker count, and telemetry. The output image is byte-
// identical for every worker width.
func DebloatCtx(ctx context.Context, img *oat.Image, roots RootSet, workers int, tracer *obs.Tracer) (*oat.Image, *DebloatStats, error) {
	if len(roots.Methods) == 0 && !roots.NoCallers {
		roots = DefaultRoots()
	}

	// Admission: the full per-method verification, plus the call-graph
	// walk's own error findings (a call into a removed range).
	rep, lay, err := analyzeImage(ctx, img, workers, tracer)
	if err != nil {
		return nil, nil, err
	}
	sortFindings(rep.Findings)
	for _, f := range rep.Findings {
		if f.Severity == SevError {
			return nil, nil, fmt.Errorf("analysis: refusing to debloat an unsound image: %s", f)
		}
	}
	var cgfs findings
	cg, err := buildCallGraphFrom(ctx, lay, workers, &cgfs)
	if err != nil {
		return nil, nil, err
	}
	sortFindings(cgfs.list)
	for _, f := range cgfs.list {
		if f.Severity == SevError {
			return nil, nil, fmt.Errorf("analysis: refusing to debloat an unsound image: %s", f)
		}
	}

	reach := cg.Reachable(roots)
	stats := &DebloatStats{
		MethodsTotal: len(img.Methods),
		BlobsTotal:   len(img.Outlined),
		ThunksTotal:  len(img.Thunks),
		TextBefore:   img.TextBytes(),
		Imprecise:    reach.Imprecise,
	}

	// Rebuild the text segment in original region order, keeping live
	// regions. Order preservation is what makes the pass idempotent.
	out := &oat.Image{}
	newOff := map[int]int{} // old region offset -> new offset
	keepRegion := func(r region) bool {
		switch r.kind {
		case regionThunk:
			return reach.LiveThunks[r.sym]
		case regionBlob:
			bi, ok := cg.blobIndexOf(r.sym)
			return ok && reach.LiveBlobs[bi]
		default:
			return r.size > 0 && reach.LiveMethods[r.method]
		}
	}
	for _, r := range lay.regions {
		if !keepRegion(r) {
			continue
		}
		newOff[r.off] = len(out.Text) * a64.WordSize
		out.Text = append(out.Text, lay.words(r)...)
	}

	for _, f := range img.Thunks {
		if reach.LiveThunks[f.Sym] {
			out.Thunks = append(out.Thunks, oat.FuncRecord{Sym: f.Sym, Offset: newOff[f.Offset], Size: f.Size})
		} else {
			stats.ThunksRemoved++
		}
	}
	for i, f := range img.Outlined {
		if reach.LiveBlobs[i] {
			out.Outlined = append(out.Outlined, oat.FuncRecord{Sym: f.Sym, Offset: newOff[f.Offset], Size: f.Size})
		} else {
			stats.BlobsRemoved++
		}
	}
	end := out.TextBytes()
	out.Methods = make([]oat.MethodRecord, len(img.Methods))
	for i, m := range img.Methods {
		if reach.LiveMethods[i] {
			out.Methods[i] = oat.MethodRecord{
				ID: m.ID, Offset: newOff[m.Offset], Size: m.Size,
				Meta: m.Meta, StackMap: m.StackMap,
			}
			continue
		}
		// Stub: the slot survives (ArtMethod addressing depends on it),
		// the body does not. Already-stubbed records are not re-counted.
		out.Methods[i] = oat.MethodRecord{ID: m.ID, Offset: end, Size: 0}
		if m.Size > 0 {
			stats.MethodsRemoved++
			stats.DeadMethods = append(stats.DeadMethods, m.ID)
		}
	}

	// Patch every live method's bl sites: the only relocations that cross
	// region boundaries. Admission guarantees each target is a live
	// region head, so the new-offset lookup is total.
	for i, m := range img.Methods {
		if !reach.LiveMethods[i] {
			continue
		}
		data := make([]bool, m.Size/a64.WordSize)
		for _, d := range m.Meta.EmbeddedData {
			for w := d.Start / a64.WordSize; w < d.End/a64.WordSize; w++ {
				data[w] = true
			}
		}
		no := out.Methods[i].Offset
		for w := 0; w < m.Size/a64.WordSize; w++ {
			if data[w] {
				continue
			}
			word := img.Text[m.Offset/a64.WordSize+w]
			inst, ok := a64.Decode(word)
			if !ok || inst.Op != a64.OpBl {
				continue
			}
			oldAbs := m.Offset + w*a64.WordSize + int(inst.Imm)
			nt, ok := newOff[oldAbs]
			if !ok {
				return nil, nil, fmt.Errorf("analysis: debloat internal error: live m%d calls removed region +%#x", m.ID, oldAbs)
			}
			patched, err := a64.PatchRel(word, int64(nt-(no+w*a64.WordSize)))
			if err != nil {
				return nil, nil, fmt.Errorf("analysis: debloat repatching m%d+%#x: %w", m.ID, w*a64.WordSize, err)
			}
			out.Text[no/a64.WordSize+w] = patched
		}
	}

	stats.TextAfter = out.TextBytes()

	// Re-verification: the emitted image must pass the loader checks and
	// the full lint, or the debloat fails instead of shipping it.
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("analysis: debloat produced an invalid image: %w", err)
	}
	lint, err := LintCtx(ctx, out, workers, tracer)
	if err != nil {
		return nil, nil, err
	}
	if len(lint) > 0 {
		return nil, nil, fmt.Errorf("analysis: debloat produced a lintable image: %s", lint[0])
	}
	if tracer != nil {
		tracer.Count("debloat.methods_removed", int64(stats.MethodsRemoved))
		tracer.Count("debloat.bytes_removed", int64(stats.TextBefore-stats.TextAfter))
	}
	return out, stats, nil
}
