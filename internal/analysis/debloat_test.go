package analysis_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/hgraph"
	"repro/internal/oat"
	"repro/internal/workload"
)

// diffRuns runs a script against the reference interpreter and an image,
// failing on any observable divergence (return value, exception, log).
// This is the acceptance check behind debloat: removal must never change
// what the scripted workload computes.
func diffRuns(t *testing.T, what string, app *dex.App, img *oat.Image, runs []workload.Run) {
	t.Helper()
	for i, run := range runs {
		ip := &hgraph.Interp{App: app, MaxDepth: 10_000}
		want, err := ip.Run(run.Entry, run.Args[:])
		if err != nil {
			t.Fatalf("%s: run %d: interp: %v", what, i, err)
		}
		got, err := emu.New(img).Run(run.Entry, run.Args[:])
		if err != nil {
			t.Fatalf("%s: run %d: emu: %v", what, i, err)
		}
		if got.Ret != want.Ret || got.Exc != want.Exc || !reflect.DeepEqual(got.Log, want.Log) {
			t.Errorf("%s: run %d (m%d): ret=%d exc=%v log=%v, want ret=%d exc=%v log=%v",
				what, i, run.Entry, got.Ret, got.Exc, got.Log, want.Ret, want.Exc, want.Log)
		}
	}
}

// TestDebloatLadder is the debloat acceptance gate over the full
// evaluation ladder: for every app profile under every configuration, the
// pass must emit a strictly-smaller-or-equal image that lints clean, is
// byte-identical when debloated again (idempotence), and preserves the
// scripted workload's observable behavior against the reference
// interpreter — i.e. zero false-positive unreachable classifications for
// anything the differential tests exercise.
func TestDebloatLadder(t *testing.T) {
	for _, prof := range workload.Apps(ladderScale()) {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			app, man, err := workload.Generate(prof)
			if err != nil {
				t.Fatal(err)
			}
			roots := analysis.RootSet{Methods: man.Drivers}
			runs := workload.Script(man, 2, 1)
			for _, c := range ladderConfigs() {
				res, err := core.Build(app, c.cfg)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				out, stats, err := analysis.Debloat(res.Image, roots)
				if err != nil {
					t.Fatalf("%s: debloat: %v", c.name, err)
				}
				if stats.Imprecise {
					t.Errorf("%s: reachability imprecise on a clean build", c.name)
				}
				if stats.TextAfter > stats.TextBefore {
					t.Errorf("%s: debloat grew text: %d -> %d bytes", c.name, stats.TextBefore, stats.TextAfter)
				}
				if out.TextBytes() != stats.TextAfter {
					t.Errorf("%s: stats.TextAfter=%d, image has %d", c.name, stats.TextAfter, out.TextBytes())
				}
				if len(out.Methods) != len(res.Image.Methods) {
					t.Fatalf("%s: debloat renumbered the method table: %d -> %d records",
						c.name, len(res.Image.Methods), len(out.Methods))
				}

				// Idempotence: a second pass removes nothing and the image
				// round-trips byte-identically.
				out2, stats2, err := analysis.Debloat(out, roots)
				if err != nil {
					t.Fatalf("%s: re-debloat: %v", c.name, err)
				}
				if stats2.MethodsRemoved != 0 || stats2.BlobsRemoved != 0 || stats2.ThunksRemoved != 0 {
					t.Errorf("%s: second debloat removed more: %d methods, %d blobs, %d thunks",
						c.name, stats2.MethodsRemoved, stats2.BlobsRemoved, stats2.ThunksRemoved)
				}
				b1, err := out.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				b2, err := out2.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b1, b2) {
					t.Errorf("%s: debloat is not idempotent: %d vs %d bytes", c.name, len(b1), len(b2))
				}

				diffRuns(t, c.name, app, out, runs)
			}
		})
	}
}

// debloatText is a hand-written app with a method no root reaches:
// method IDs are assignment order, so used=0, orphan=1, main=2.
const debloatText = `
.app Deb
.file classes.dex
.class LMain
.method used regs=2 ins=2
    add v0, v0, v1
    return v0
.end method
.method orphan regs=2 ins=2
    mul v0, v0, v1
    return v0
.end method
.method main regs=3 ins=2
    invoke v0, LMain.used (v1, v2)
    invoke-native v0, pLogValue (v0, v0)
    return v0
.end method
.end class
.end file
`

// TestDebloatRemovesUncalled pins that debloat actually deletes: an
// explicitly uncalled method is stubbed out under explicit roots, kept
// under the conservative default root set, and the survivor still runs.
func TestDebloatRemovesUncalled(t *testing.T) {
	app, err := dex.ParseText(debloatText)
	if err != nil {
		t.Fatal(err)
	}
	const used, orphan, main = dex.MethodID(0), dex.MethodID(1), dex.MethodID(2)
	res, err := core.Build(app, core.CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}

	out, stats, err := analysis.Debloat(res.Image, analysis.RootSet{Methods: []dex.MethodID{main}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Methods[orphan].Size != 0 {
		t.Errorf("orphan kept %d bytes of code", out.Methods[orphan].Size)
	}
	if out.Methods[used].Size == 0 || out.Methods[main].Size == 0 {
		t.Error("a live method was stubbed out")
	}
	if stats.MethodsRemoved != 1 || len(stats.DeadMethods) != 1 || stats.DeadMethods[0] != orphan {
		t.Errorf("stats: removed=%d dead=%v, want orphan only", stats.MethodsRemoved, stats.DeadMethods)
	}
	if stats.TextAfter >= stats.TextBefore {
		t.Errorf("removal did not shrink text: %d -> %d", stats.TextBefore, stats.TextAfter)
	}
	diffRuns(t, "explicit roots", app, out, []workload.Run{
		{Entry: main, Args: [2]int64{3, 4}},
		{Entry: main, Args: [2]int64{-7, 11}},
	})

	// Under the default no-caller roots the orphan is itself a root: the
	// conservative root set only deletes orphaned clusters that *are*
	// called, by other dead code.
	_, dstats, err := analysis.Debloat(res.Image, analysis.DefaultRoots())
	if err != nil {
		t.Fatal(err)
	}
	if dstats.MethodsRemoved != 0 {
		t.Errorf("default roots removed %d methods from a fully-rooted image", dstats.MethodsRemoved)
	}
}
