package analysis

import (
	"fmt"
	"sort"

	"repro/internal/dex"
)

// Severity grades a finding.
type Severity uint8

// Severities, in increasing order of gravity. Info findings are advisory
// (dead code, statistics); Warn findings indicate metadata that a later
// binary pass could trip over; Error findings indicate an image that is
// structurally unsound and must not be loaded.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

var sevNames = [...]string{"info", "warn", "error"}

func (s Severity) String() string {
	if int(s) < len(sevNames) {
		return sevNames[s]
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Rules name the invariant a finding violates. Each rule string is stable:
// tooling may filter on it.
const (
	// RuleRecord: a method/thunk/outlined record is out of bounds,
	// misaligned, overlapping another record, or out of table order.
	RuleRecord = "record"
	// RuleDecode: a word outside the embedded-data ranges does not decode
	// as an instruction of the modeled A64 subset.
	RuleDecode = "decode"
	// RuleBranchTarget: a conditional or unconditional PC-relative branch
	// does not land on an instruction boundary inside its own method.
	RuleBranchTarget = "branch-target"
	// RuleCallTarget: a bl does not land on a method entry, a pattern-thunk
	// head, or an outlined-function head.
	RuleCallTarget = "call-target"
	// RuleBlobEntry: a branch or call enters the middle of an outlined
	// function.
	RuleBlobEntry = "blob-entry"
	// RuleIndirect: a computed branch (br) cannot be resolved against the
	// switch-table idiom, so control-flow integrity cannot be established.
	RuleIndirect = "indirect"
	// RuleBlobShape: an outlined function is not straight-line code ending
	// in a single br x30, or clobbers x30/sp on the way there.
	RuleBlobShape = "blob-shape"
	// RuleSPBalance: the stack pointer is not balanced — the frame
	// allocated at entry is not released on some ret path, or two paths
	// reach the same block with different sp adjustments.
	RuleSPBalance = "sp-balance"
	// RuleStackProbe: a method that makes calls does not perform the
	// stack-overflow guard probe before its first call.
	RuleStackProbe = "stack-probe"
	// RuleCalleeSaved: a callee-saved register (x19..x29) does not hold its
	// entry value on some ret path.
	RuleCalleeSaved = "callee-saved"
	// RuleLinkReg: ret executes while x30 holds something other than the
	// caller's return address.
	RuleLinkReg = "link-reg"
	// RuleSafepoint: a stack map entry does not sit on a call instruction.
	RuleSafepoint = "safepoint"
	// RuleMetadata: the LTBO metadata disagrees with the code it describes
	// (a recorded PC-relative site whose displacement points elsewhere, a
	// missing record, an out-of-range offset, an unset indirect-jump flag).
	RuleMetadata = "metadata"
	// RuleLiteral: a PC-relative literal load or address formation targets
	// bytes outside the method's embedded-data ranges.
	RuleLiteral = "literal"
	// RuleDeadCode: instruction words unreachable from the method entry.
	RuleDeadCode = "dead-code"
	// RuleCallGraph: advisory notes from whole-image call-graph
	// construction — call sites whose target the abstract-constant walk
	// could not resolve, or java calls through malformed ArtMethod
	// addresses.
	RuleCallGraph = "callgraph"
	// RuleUnreachable: a method the reachability analysis proves no root
	// can reach; a debloat pass may stub it out.
	RuleUnreachable = "unreachable-method"
	// RuleDeadOutline: an outlined function no live method calls.
	RuleDeadOutline = "dead-outline-body"
	// RuleCallRemoved: a call whose target lies in no recorded region —
	// a range a rewriting pass removed without repatching callers — or
	// outside the text segment entirely.
	RuleCallRemoved = "call-into-removed-range"
	// RuleOutlineCycle: the call graph contains a cycle through an
	// outlined function, which the §3.3 shape (straight-line, no calls)
	// forbids; an image with one can re-enter a blob recursively with a
	// clobbered return address.
	RuleOutlineCycle = "recursive-outline-cycle"
	// RuleReoutlinedBody: in a paired run (oatlint -orig, or the
	// re-outliner's self-check), a method of the new image does not
	// flatten to the same instruction stream as its counterpart in the
	// original image — inlining every outlined call and normalizing
	// PC-relative displacements to logical targets yields different code.
	RuleReoutlinedBody = "reoutlined-body-equivalent"
	// RuleLiftFrozen: in a paired run, a method the lift legality mask
	// froze (native, indirect-jump, unknown call target, or a
	// layout-pinned indirect call) was modified beyond the permitted
	// re-binding of bl displacements to relocated region heads.
	RuleLiftFrozen = "lift-frozen-untouched"
)

// NoMethod marks findings that concern a thunk, an outlined function, or
// the image as a whole rather than one method.
const NoMethod = ^dex.MethodID(0)

// Finding is one verifier diagnostic, machine-readable by design: tests
// assert on empty finding lists, and tooling filters on Rule and Severity.
type Finding struct {
	Severity Severity
	Method   dex.MethodID // NoMethod for thunk/blob/image-level findings
	Off      int          // byte offset within the method (or region); -1 if not positional
	Rule     string
	Msg      string
}

func (f Finding) String() string {
	where := "image"
	if f.Method != NoMethod {
		where = fmt.Sprintf("m%d", f.Method)
	}
	if f.Off >= 0 {
		where += fmt.Sprintf("+%#x", f.Off)
	}
	return fmt.Sprintf("%s: %s [%s] %s", where, f.Severity, f.Rule, f.Msg)
}

// findings accumulates diagnostics.
type findings struct {
	list []Finding
}

func (fs *findings) add(sev Severity, m dex.MethodID, off int, rule, format string, args ...any) {
	fs.list = append(fs.list, Finding{
		Severity: sev, Method: m, Off: off, Rule: rule,
		Msg: fmt.Sprintf(format, args...),
	})
}

// sortFindings puts a finding list into the canonical report order:
// (method, offset, rule, severity, message). Image-level findings
// (NoMethod, the all-ones ID) sort last by comparing IDs as unsigned.
// Every public entry point sorts at the boundary, which is what makes
// reports byte-identical across worker widths and across the legacy and
// rule-engine paths.
func sortFindings(list []Finding) {
	sort.Slice(list, func(a, b int) bool {
		x, y := &list[a], &list[b]
		if x.Method != y.Method {
			return uint32(x.Method) < uint32(y.Method)
		}
		if x.Off != y.Off {
			return x.Off < y.Off
		}
		if x.Rule != y.Rule {
			return x.Rule < y.Rule
		}
		if x.Severity != y.Severity {
			return x.Severity < y.Severity
		}
		return x.Msg < y.Msg
	})
}
