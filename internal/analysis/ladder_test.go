package analysis_test

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/oat"
	"repro/internal/workload"
)

// ladderScale shrinks the six app profiles for the exhaustive lint run;
// the full-scale pass is exercised by the soak test in the root package.
func ladderScale() float64 {
	if testing.Short() {
		return 0.03
	}
	return 0.12
}

func ladderConfigs() []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"Baseline", core.Baseline()},
		{"CTOOnly", core.CTOOnly()},
		{"CTOLTBO", core.CTOLTBO()},
		{"CTOLTBOPl8", core.CTOLTBOPl(8)},
	}
}

// TestLintLadder is the acceptance gate: every app profile under every
// configuration of the evaluation ladder must lint clean, both straight
// out of the linker and after a Marshal/Unmarshal round trip (the state
// an untrusted cached image arrives in). This makes the analyzer a
// regression oracle for every future codegen or outliner change.
func TestLintLadder(t *testing.T) {
	for _, prof := range workload.Apps(ladderScale()) {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			app, _, err := workload.Generate(prof)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range ladderConfigs() {
				res, err := core.Build(app, c.cfg)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				assertClean(t, c.name+" linked", res.Image)

				blob, err := res.Image.Marshal()
				if err != nil {
					t.Fatalf("%s: marshal: %v", c.name, err)
				}
				img2, err := oat.Unmarshal(blob)
				if err != nil {
					t.Fatalf("%s: unmarshal: %v", c.name, err)
				}
				assertClean(t, c.name+" round-tripped", img2)
			}
		})
	}
}

func assertClean(t *testing.T, what string, img *oat.Image) {
	t.Helper()
	findings := analysis.Lint(img)
	for i, f := range findings {
		if i == 12 {
			t.Errorf("... and %d more", len(findings)-i)
			break
		}
		t.Errorf("%s: %s", what, f)
	}
}

// TestAnalyzeReport sanity-checks the report statistics on one build.
func TestAnalyzeReport(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	rep := analysis.Analyze(img)
	if len(rep.Methods) != len(img.Methods) {
		t.Fatalf("report covers %d methods, image has %d", len(rep.Methods), len(img.Methods))
	}
	if rep.Outlined == 0 {
		t.Error("CTOLTBO build produced no outlined functions")
	}
	if rep.TextBytes != img.TextBytes() {
		t.Errorf("TextBytes %d != %d", rep.TextBytes, img.TextBytes())
	}
	var insts, calls int
	for i, m := range rep.Methods {
		if m.ID != img.Methods[i].ID {
			t.Fatalf("summary %d is for m%d", i, m.ID)
		}
		if m.Blocks == 0 {
			t.Errorf("m%d recovered no blocks", m.ID)
		}
		insts += m.Insts
		calls += m.Calls
	}
	if insts == 0 || calls == 0 {
		t.Fatalf("implausible totals: %d instructions, %d calls", insts, calls)
	}
	if n := rep.ErrorCount(); n != 0 {
		t.Errorf("clean build reports %d errors", n)
	}
}

// buildApp compiles a small single app for the corruption tests.
func buildApp(t *testing.T, cfg core.Config) *oat.Image {
	t.Helper()
	app, _, err := workload.Generate(workload.Profile{
		Name: "lint", Seed: 42, Methods: 40,
		NativeFrac: 0.05, SwitchFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Image
}

func ExampleLint() {
	app, _, err := workload.Generate(workload.Profile{Name: "ex", Seed: 7, Methods: 25})
	if err != nil {
		panic(err)
	}
	res, err := core.Build(app, core.CTOLTBO())
	if err != nil {
		panic(err)
	}
	fmt.Println(len(analysis.Lint(res.Image)))
	// Output: 0
}
