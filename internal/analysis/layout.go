package analysis

import (
	"sort"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/oat"
)

// regionKind classifies a span of the text segment.
type regionKind uint8

const (
	regionThunk regionKind = iota
	regionBlob
	regionMethod
)

func (k regionKind) String() string {
	switch k {
	case regionThunk:
		return "thunk"
	case regionBlob:
		return "outlined function"
	default:
		return "method"
	}
}

// region is one laid-out code object.
type region struct {
	kind   regionKind
	sym    int // thunk/blob symbol
	method int // method table index, -1 otherwise
	off    int // byte offset in text
	size   int // byte size
}

// layout indexes a linked image for address classification: which region a
// text offset falls in, and which offsets are legal bl targets.
type layout struct {
	img     *oat.Image
	regions []region // sorted by offset; only well-formed records
	heads   map[int]int
	blobs   map[int]*blobInfo // blob text offset -> decoded body
}

// blobInfo is the decoded form of one outlined function, used both for the
// blob's own shape checks and to replay its effect at every call site
// during the dataflow pass.
type blobInfo struct {
	sym   int
	insts []a64.Inst // decoded body, including the trailing br x30
	ok    bool       // shape checks passed; safe to replay at call sites
}

// buildLayout validates the record tables and constructs the address
// index. Malformed records produce findings and are excluded from the
// index so later passes can assume well-formed regions.
func buildLayout(img *oat.Image, fs *findings) *layout {
	l := &layout{
		img:   img,
		heads: map[int]int{},
		blobs: map[int]*blobInfo{},
	}
	size := img.TextBytes()
	wellFormed := func(what string, off, sz int) bool {
		if off < 0 || sz < 0 || off%a64.WordSize != 0 || sz%a64.WordSize != 0 || off+sz > size {
			fs.add(SevError, NoMethod, -1, RuleRecord,
				"%s record [%d,%d) outside text of %d bytes or misaligned", what, off, off+sz, size)
			return false
		}
		return true
	}
	for _, f := range img.Thunks {
		if wellFormed(codegen.SymName(f.Sym), f.Offset, f.Size) {
			l.regions = append(l.regions, region{kind: regionThunk, sym: f.Sym, method: -1, off: f.Offset, size: f.Size})
		}
	}
	for _, f := range img.Outlined {
		if wellFormed(codegen.SymName(f.Sym), f.Offset, f.Size) {
			l.regions = append(l.regions, region{kind: regionBlob, sym: f.Sym, method: -1, off: f.Offset, size: f.Size})
		}
	}
	for i, m := range img.Methods {
		if m.ID != dexID(i) {
			fs.add(SevError, NoMethod, -1, RuleRecord, "method table slot %d holds m%d", i, m.ID)
			continue
		}
		if wellFormed(methodName(m.ID), m.Offset, m.Size) {
			l.regions = append(l.regions, region{kind: regionMethod, method: i, off: m.Offset, size: m.Size})
		}
	}
	sort.Slice(l.regions, func(a, b int) bool { return l.regions[a].off < l.regions[b].off })
	for i := 1; i < len(l.regions); i++ {
		prev, cur := l.regions[i-1], l.regions[i]
		if cur.off < prev.off+prev.size {
			fs.add(SevError, NoMethod, cur.off, RuleRecord,
				"%s at +%#x overlaps %s ending at +%#x",
				cur.kind, cur.off, prev.kind, prev.off+prev.size)
		}
	}
	for _, r := range l.regions {
		if r.size > 0 {
			l.heads[r.off] = int(r.kind) // value unused; presence marks a head
		}
	}
	return l
}

// at classifies a text byte offset: the region containing it, if any.
func (l *layout) at(off int) (region, bool) {
	i := sort.Search(len(l.regions), func(i int) bool {
		return l.regions[i].off+l.regions[i].size > off
	})
	if i < len(l.regions) && off >= l.regions[i].off {
		return l.regions[i], true
	}
	return region{}, false
}

// words returns the text words of a region.
func (l *layout) words(r region) []uint32 {
	return l.img.Text[r.off/a64.WordSize : (r.off+r.size)/a64.WordSize]
}

// checkThunk verifies a pattern thunk: every word decodes, no word writes
// sp or the frame pointer, and the thunk exits through a terminator (br to
// a register, or ret) as the CTO patterns require.
func (l *layout) checkThunk(r region, fs *findings) {
	words := l.words(r)
	name := codegen.SymName(r.sym)
	if len(words) == 0 {
		fs.add(SevError, NoMethod, r.off, RuleRecord, "%s is empty", name)
		return
	}
	for w, word := range words {
		inst, ok := a64.Decode(word)
		if !ok {
			fs.add(SevError, NoMethod, r.off+w*a64.WordSize, RuleDecode,
				"%s word %#08x does not decode", name, word)
			return
		}
		if writesSP(inst) {
			fs.add(SevError, NoMethod, r.off+w*a64.WordSize, RuleBlobShape,
				"%s modifies sp", name)
		}
	}
	last, _ := a64.Decode(words[len(words)-1])
	if last.Op != a64.OpBr && last.Op != a64.OpRet {
		fs.add(SevError, NoMethod, r.off+(len(words)-1)*a64.WordSize, RuleBlobShape,
			"%s ends in %s, not a br/ret exit", name, last.Op)
	}
}

// checkBlob verifies the §3.3 shape of an outlined function — single-entry
// single-exit straight-line code: every word decodes, no instruction
// before the last transfers control, is PC-relative, or clobbers x30/sp,
// and the last instruction is exactly br x30. A blob that passes is safe
// to replay inline at call sites during the dataflow pass.
func (l *layout) checkBlob(r region, fs *findings) *blobInfo {
	words := l.words(r)
	name := codegen.SymName(r.sym)
	info := &blobInfo{sym: r.sym}
	l.blobs[r.off] = info
	if len(words) == 0 {
		fs.add(SevError, NoMethod, r.off, RuleRecord, "%s is empty", name)
		return info
	}
	ok := true
	for w, word := range words {
		inst, decoded := a64.Decode(word)
		if !decoded {
			fs.add(SevError, NoMethod, r.off+w*a64.WordSize, RuleDecode,
				"%s word %#08x does not decode", name, word)
			ok = false
			break
		}
		info.insts = append(info.insts, inst)
		off := r.off + w*a64.WordSize
		if w == len(words)-1 {
			if inst.Op != a64.OpBr || inst.Rn != a64.LR {
				fs.add(SevError, NoMethod, off, RuleBlobShape,
					"%s ends in %q, want br x30", name, inst)
				ok = false
			}
			break
		}
		switch {
		case inst.Op.IsBranch():
			fs.add(SevError, NoMethod, off, RuleBlobShape,
				"%s contains control transfer %q before its exit", name, inst)
			ok = false
		case inst.Op.IsPCRel():
			fs.add(SevError, NoMethod, off, RuleBlobShape,
				"%s contains PC-relative %q, unpatchable once outlined", name, inst)
			ok = false
		case writesReg(inst, a64.LR):
			fs.add(SevError, NoMethod, off, RuleBlobShape,
				"%s clobbers x30 before br x30", name)
			ok = false
		case writesSP(inst):
			fs.add(SevError, NoMethod, off, RuleBlobShape, "%s modifies sp", name)
			ok = false
		}
	}
	info.ok = ok && len(info.insts) == len(words)
	return info
}

// writesSP reports whether the instruction modifies the stack pointer:
// add/sub immediate with Rd=31 (SP in that encoding class), or a pre/post
// indexed load/store pair with writeback to an sp base.
func writesSP(i a64.Inst) bool {
	switch i.Op {
	case a64.OpAddImm, a64.OpSubImm:
		return i.Rd == 31
	case a64.OpLdp, a64.OpStp:
		return i.Index != a64.IndexOffset && i.Rn == 31
	}
	return false
}

// writesReg reports whether the instruction writes general-purpose
// register r (r != 31; register 31 writes are SP/ZR special cases handled
// by writesSP).
func writesReg(i a64.Inst, r a64.Reg) bool {
	if r == 31 {
		return false
	}
	switch i.Op {
	case a64.OpAddImm, a64.OpSubImm, a64.OpAddsImm, a64.OpSubsImm,
		a64.OpMovz, a64.OpMovn, a64.OpMovk,
		a64.OpAddReg, a64.OpAddsReg, a64.OpSubReg, a64.OpSubsReg,
		a64.OpAndReg, a64.OpOrrReg, a64.OpEorReg,
		a64.OpMul, a64.OpLslReg, a64.OpLsrReg,
		a64.OpLdrImm, a64.OpLdrReg, a64.OpLdrLit,
		a64.OpAdr, a64.OpAdrp:
		return i.Rd == r
	case a64.OpLdp:
		return i.Rd == r || i.Rt2 == r || (i.Index != a64.IndexOffset && i.Rn == r)
	case a64.OpStp:
		return i.Index != a64.IndexOffset && i.Rn == r
	case a64.OpBl, a64.OpBlr:
		return r == a64.LR
	}
	return false
}

// textAddr converts a text byte offset to its mapped virtual address.
func textAddr(off int) int64 { return abi.TextBase + int64(off) }
