package analysis

import (
	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
)

// The lift legality mask: which methods of a linked image the post-hoc
// re-outliner (internal/reoutline) may rewrite, and which it must carry
// through byte-for-byte. The mask is shared between the pass itself and
// the lift-frozen-untouched lint rule, so the verifier checks exactly the
// contract the rewriter promises.
//
// A method is liftable when every one of its call sites can be re-bound
// after the layout changes:
//
//   - a bl to a method head, a pattern thunk, or an outlined-function
//     head is symbolic after lifting — the relink re-encodes the
//     displacement against the target's new offset;
//   - a blr dispatched through the entry-point field of an ArtMethod
//     (Edge.Entry) or through the thread's runtime-entrypoint table
//     (EdgeRuntime) reads its target from a table at run time, so no
//     address in the code pins it.
//
// Everything else freezes the method: native and indirect-jump methods
// (the same protections link-time outlining honors), corrupt or stubbed
// records, calls whose target the abstract walk could not resolve, and
// indirect calls through materialized absolute addresses. Frozen methods
// keep their exact bytes modulo the bl displacement re-binding the
// lift-frozen-untouched rule permits.

// LiftFrozen computes the per-method freeze mask of an image under its
// call graph, indexed by method-table slot. The re-outliner may freeze
// additional methods for defensive reasons (a lift step it cannot prove
// safe); it must never lift a method this mask freezes.
func LiftFrozen(img *oat.Image, cg *CallGraph) []bool {
	frozen := make([]bool, len(img.Methods))
	for i := range img.Methods {
		rec := &img.Methods[i]
		node := &cg.Nodes[i]
		if rec.Size == 0 || rec.Meta.IsNative || rec.Meta.HasIndirectJump || node.Corrupt {
			frozen[i] = true
			continue
		}
		for _, e := range node.Edges {
			if !liftableEdge(img, rec, e) {
				frozen[i] = true
				break
			}
		}
	}
	return frozen
}

// liftableEdge reports whether one recovered call site survives a layout
// change after lifting.
func liftableEdge(img *oat.Image, rec *oat.MethodRecord, e Edge) bool {
	w := (rec.Offset + e.Off) / a64.WordSize
	if e.Off%a64.WordSize != 0 || w < 0 || w >= len(img.Text) {
		return false
	}
	inst, ok := a64.Decode(img.Text[w])
	if !ok {
		return false
	}
	switch inst.Op {
	case a64.OpBl:
		// A direct call is symbolic after lifting whenever its target is
		// a region head the relink tracks. An EdgeUnknown that still
		// carries a thunk symbol is the java_entry pattern with an
		// unresolved receiver: the bl itself targets the thunk, which is
		// re-bindable regardless of who the thunk dispatches to.
		if e.Kind == EdgeOutlined || e.Kind == EdgeMethod {
			return true
		}
		return thunkSymKind(e.Sym)
	case a64.OpBlr:
		// Only table-dispatched indirect calls are layout-independent.
		// blr through anything but the link register never comes out of
		// the compiler and lands outside the lift contract.
		if inst.Rn != a64.LR {
			return false
		}
		switch e.Kind {
		case EdgeRuntime:
			return true
		case EdgeMethod:
			return e.Entry
		default:
			return false
		}
	}
	return false
}

// thunkSymKind reports whether sym names a CTO pattern thunk.
func thunkSymKind(sym int) bool {
	kind, _ := codegen.UnpackSym(sym)
	return kind == codegen.SymKindJavaEntry || kind == codegen.SymKindNativeEP ||
		kind == codegen.SymKindStackCheck
}

// PinnedIndirect scans for an indirect call that resolved to a target
// inside the text segment through a materialized absolute address — a
// blr whose register was built by movz/movk rather than loaded from a
// runtime table. Freezing the calling method preserves its bytes but not
// the address baked into them: if any other region moves past the
// target, the constant goes stale. The re-outliner therefore refuses the
// whole image when one exists. Returns the first such site in table
// order.
func PinnedIndirect(img *oat.Image, cg *CallGraph) (dex.MethodID, int, bool) {
	for i := range cg.Nodes {
		rec := &img.Methods[i]
		for _, e := range cg.Nodes[i].Edges {
			w := (rec.Offset + e.Off) / a64.WordSize
			if e.Off%a64.WordSize != 0 || w < 0 || w >= len(img.Text) {
				continue
			}
			inst, ok := a64.Decode(img.Text[w])
			if !ok || inst.Op != a64.OpBlr {
				continue
			}
			switch e.Kind {
			case EdgeOutlined, EdgeThunk:
				return cg.Nodes[i].ID, e.Off, true
			case EdgeMethod:
				if !e.Entry {
					return cg.Nodes[i].ID, e.Off, true
				}
			}
		}
	}
	return 0, 0, false
}
