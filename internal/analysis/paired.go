package analysis

import (
	"fmt"

	"repro/internal/a64"
	"repro/internal/par"
)

// The paired rules: interprocedural checks over an (original, rewritten)
// image pair that prove a binary rewrite — debloat composed with
// re-outlining, or re-outlining alone — preserved program meaning at the
// instruction level. Both run only when RunRulesPaired supplies an
// original image; on single-image runs they emit nothing, so enabling
// them in "all"/"interproc" specs never perturbs existing reports.

// flatTok is one token of a method's flattened instruction stream. Two
// methods are equivalent when their token streams are equal: outlined
// calls expand to the callee body, calls reduce to the identity of their
// target region, and PC-relative instructions reduce to their opcode
// (displacement zeroed) plus the flat index of their target — exactly
// the properties a correct outline/inline/relayout round-trip preserves.
type flatTok struct {
	kind uint8  // tokWord, tokPCRel, tokCallMethod, tokCallThunk, tokDangling
	word uint32 // tokWord: the raw word; tokPCRel: the word with displacement zeroed
	a    int64  // tokPCRel: flat target index; calls: target identity; tokDangling: absolute target
}

const (
	tokWord uint8 = iota
	tokPCRel
	tokCallMethod
	tokCallThunk
	tokDangling
)

// flattenMethod expands one method into its flat token stream. It reports
// ok=false when the method calls a malformed outlined body, which makes
// the stream undefined.
func flattenMethod(lay *layout, mi int) ([]flatTok, bool) {
	img := lay.img
	rec := &img.Methods[mi]
	words := img.MethodCode(rec.ID)
	if rec.Size == 0 {
		return nil, true
	}
	if words == nil {
		return nil, false
	}
	n := len(words)
	data := make([]bool, n)
	for _, d := range rec.Meta.EmbeddedData {
		if d.Start < 0 || d.End < d.Start || d.End > rec.Size || d.Start%a64.WordSize != 0 {
			continue
		}
		for w := d.Start / a64.WordSize; w < d.End/a64.WordSize; w++ {
			data[w] = true
		}
	}

	// inlined[w] is the body the bl at w expands to (nil when the word is
	// not a bl to an outlined-function head).
	inlined := make([][]uint32, n)
	for w := 0; w < n; w++ {
		if data[w] {
			continue
		}
		inst, ok := a64.Decode(words[w])
		if !ok || inst.Op != a64.OpBl {
			continue
		}
		abs := rec.Offset + w*a64.WordSize + int(inst.Imm)
		r, ok := lay.at(abs)
		if !ok || abs != r.off || r.kind != regionBlob {
			continue
		}
		info := lay.blobs[r.off]
		if info == nil || !info.ok {
			return nil, false
		}
		inlined[w] = img.Text[r.off/a64.WordSize : (r.off+r.size)/a64.WordSize-1]
	}

	// Pass 1: flat index of every old word, so PC-relative tokens can name
	// their targets in layout-free coordinates. A PC-relative target is a
	// separator at outline time, so it is never interior to an expanded
	// region on either side of a comparison.
	flatIdx := make([]int, n+1)
	fl := 0
	for w := 0; w < n; w++ {
		flatIdx[w] = fl
		if body := inlined[w]; body != nil {
			fl += len(body)
		} else {
			fl++
		}
	}
	flatIdx[n] = fl

	out := make([]flatTok, 0, fl)
	for w := 0; w < n; w++ {
		if body := inlined[w]; body != nil {
			for _, bw := range body {
				out = append(out, flatTok{kind: tokWord, word: bw})
			}
			continue
		}
		if data[w] {
			out = append(out, flatTok{kind: tokWord, word: words[w]})
			continue
		}
		inst, ok := a64.Decode(words[w])
		if !ok {
			out = append(out, flatTok{kind: tokWord, word: words[w]})
			continue
		}
		if inst.Op == a64.OpBl {
			abs := rec.Offset + w*a64.WordSize + int(inst.Imm)
			r, ok := lay.at(abs)
			if !ok || abs != r.off {
				out = append(out, flatTok{kind: tokDangling, a: int64(abs)})
				continue
			}
			switch r.kind {
			case regionMethod:
				out = append(out, flatTok{kind: tokCallMethod, a: int64(r.method)})
			default: // thunk
				out = append(out, flatTok{kind: tokCallThunk, a: int64(r.sym)})
			}
			continue
		}
		if inst.Op.IsPCRel() {
			zeroed, err := a64.PatchRel(words[w], 0)
			if err != nil {
				out = append(out, flatTok{kind: tokWord, word: words[w]})
				continue
			}
			toff := w*a64.WordSize + int(inst.Imm)
			if toff >= 0 && toff <= rec.Size && toff%a64.WordSize == 0 {
				out = append(out, flatTok{kind: tokPCRel, word: zeroed, a: int64(flatIdx[toff/a64.WordSize])})
			} else {
				// Leaves the method: compare by absolute target.
				out = append(out, flatTok{kind: tokDangling, word: zeroed,
					a: int64(rec.Offset + w*a64.WordSize + int(inst.Imm))})
			}
			continue
		}
		out = append(out, flatTok{kind: tokWord, word: words[w]})
	}
	return out, true
}

// reoutlinedBodyRule proves flatten-equivalence of every method across a
// paired run: expanding outlined calls and normalizing PC-relative
// displacements must reproduce the original stream exactly. This is the
// interprocedural analogue of outline.VerifyRewrite — it needs no
// compile-time snapshot, only the two images.
type reoutlinedBodyRule struct{}

func (reoutlinedBodyRule) Name() string { return RuleReoutlinedBody }
func (reoutlinedBodyRule) Doc() string {
	return "a rewritten method does not flatten to its original instruction stream (paired runs only)"
}
func (reoutlinedBodyRule) Interprocedural() bool { return true }
func (reoutlinedBodyRule) Run(rc *RuleContext) {
	if rc.orig == nil {
		return
	}
	if _, err := rc.Analysis(); err != nil {
		rc.fail(err)
		return
	}
	newLay, origLay := rc.lay, rc.origLayout()
	if len(rc.img.Methods) != len(rc.orig.Methods) {
		rc.emit(Finding{Severity: SevError, Method: NoMethod, Off: -1, Rule: RuleReoutlinedBody,
			Msg: fmt.Sprintf("method table changed size: %d -> %d", len(rc.orig.Methods), len(rc.img.Methods))})
		return
	}
	results, err := par.MapCtx(rc.ctx, rc.workers, len(rc.img.Methods), func(i int) (*findings, error) {
		fs := &findings{}
		compareFlattened(origLay, newLay, i, fs)
		return fs, nil
	})
	if err != nil {
		rc.fail(err)
		return
	}
	for _, fs := range results {
		for _, f := range fs.list {
			rc.emit(f)
		}
	}
}

// compareFlattened checks flatten-equivalence of one method slot.
func compareFlattened(origLay, newLay *layout, mi int, fs *findings) {
	id := origLay.img.Methods[mi].ID
	o, ok1 := flattenMethod(origLay, mi)
	n, ok2 := flattenMethod(newLay, mi)
	if !ok1 || !ok2 {
		fs.add(SevWarn, id, -1, RuleReoutlinedBody,
			"cannot flatten: a called outlined body is malformed")
		return
	}
	if len(o) != len(n) {
		fs.add(SevError, id, -1, RuleReoutlinedBody,
			"flattened stream changed length: %d -> %d words", len(o), len(n))
		return
	}
	for k := range o {
		if o[k] != n[k] {
			fs.add(SevError, id, -1, RuleReoutlinedBody,
				"flattened streams diverge at flat word %d", k)
			return
		}
	}
}

// liftFrozenRule proves the freeze contract of a paired run: every method
// the lift legality mask (LiftFrozen) froze on the original image is
// byte-identical in the new image, except that a bl word may differ when
// both the old and new displacement resolve to the head of the same
// region — the re-binding a relayout forces on even untouched callers.
type liftFrozenRule struct{}

func (liftFrozenRule) Name() string { return RuleLiftFrozen }
func (liftFrozenRule) Doc() string {
	return "a lift-frozen method was modified beyond bl re-binding (paired runs only)"
}
func (liftFrozenRule) Interprocedural() bool { return true }
func (liftFrozenRule) Run(rc *RuleContext) {
	if rc.orig == nil {
		return
	}
	origCG, err := rc.origCallGraph()
	if err != nil {
		rc.fail(err)
		return
	}
	if _, err := rc.Analysis(); err != nil {
		rc.fail(err)
		return
	}
	if len(rc.img.Methods) != len(rc.orig.Methods) {
		rc.emit(Finding{Severity: SevError, Method: NoMethod, Off: -1, Rule: RuleLiftFrozen,
			Msg: fmt.Sprintf("method table changed size: %d -> %d", len(rc.orig.Methods), len(rc.img.Methods))})
		return
	}
	newLay, origLay := rc.lay, rc.origLayout()
	frozen := LiftFrozen(rc.orig, origCG)
	for i, fz := range frozen {
		if !fz {
			continue
		}
		orec, nrec := &rc.orig.Methods[i], &rc.img.Methods[i]
		if orec.Size != nrec.Size {
			rc.emit(Finding{Severity: SevError, Method: orec.ID, Off: -1, Rule: RuleLiftFrozen,
				Msg: fmt.Sprintf("frozen method resized: %d -> %d bytes", orec.Size, nrec.Size)})
			continue
		}
		if orec.Size == 0 {
			continue
		}
		ow, nw := rc.orig.MethodCode(orec.ID), rc.img.MethodCode(nrec.ID)
		if ow == nil || nw == nil {
			rc.emit(Finding{Severity: SevWarn, Method: orec.ID, Off: -1, Rule: RuleLiftFrozen,
				Msg: "cannot compare: method record malformed"})
			continue
		}
		for w := range ow {
			if ow[w] == nw[w] {
				continue
			}
			if !sameBlRebinding(origLay, newLay, orec.Offset, nrec.Offset, w, ow[w], nw[w]) {
				rc.emit(Finding{Severity: SevError, Method: orec.ID, Off: w * a64.WordSize, Rule: RuleLiftFrozen,
					Msg: fmt.Sprintf("frozen method word changed (%#08x -> %#08x) beyond bl re-binding", ow[w], nw[w])})
				break
			}
		}
	}
}

// sameBlRebinding reports whether a changed word is a bl in both images
// whose old and new displacements resolve to the head of the same region
// (same kind and same method/symbol identity).
func sameBlRebinding(origLay, newLay *layout, ooff, noff, w int, oword, nword uint32) bool {
	oi, ok1 := a64.Decode(oword)
	ni, ok2 := a64.Decode(nword)
	if !ok1 || !ok2 || oi.Op != a64.OpBl || ni.Op != a64.OpBl {
		return false
	}
	oabs := ooff + w*a64.WordSize + int(oi.Imm)
	nabs := noff + w*a64.WordSize + int(ni.Imm)
	or, ok1 := origLay.at(oabs)
	nr, ok2 := newLay.at(nabs)
	if !ok1 || !ok2 || oabs != or.off || nabs != nr.off || or.kind != nr.kind {
		return false
	}
	if or.kind == regionMethod {
		return or.method == nr.method
	}
	return or.sym == nr.sym
}
