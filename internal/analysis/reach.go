package analysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/codegen"
	"repro/internal/dex"
)

// RootSet configures where reachability starts. The two sources compose:
// explicit Methods name the known entry points (an app's drivers, a
// profiler's hot set, a JNI registration table), and NoCallers adds every
// method the call graph records no caller for — the conservative stand-in
// for "externally visible" when no export metadata survives in the image.
type RootSet struct {
	// Methods are explicit entry points, by method ID.
	Methods []dex.MethodID
	// NoCallers, when set, roots every method with no recovered incoming
	// method edge. A method only called through an edge the walk failed
	// to resolve is then still a root, so NoCallers never converts
	// imprecision into deletion.
	NoCallers bool
}

// DefaultRoots is the root set for an image with no side information:
// every method without a recovered caller is an entry point. Under it,
// reachability can only remove methods that are called — and only by
// methods that are themselves unreachable — which is exactly the orphaned
// cluster a prior rewrite leaves behind.
func DefaultRoots() RootSet { return RootSet{NoCallers: true} }

// Reachability classifies every image region as live or dead under a
// root set.
type Reachability struct {
	Roots RootSet

	// LiveMethods is indexed by method-table slot. A zero-size stub
	// record is never live: it has no code to keep.
	LiveMethods []bool
	// LiveBlobs is indexed parallel to CallGraph.Blobs.
	LiveBlobs []bool
	// LiveThunks maps thunk symbol -> referenced by live code.
	LiveThunks map[int]bool

	// Imprecise reports that a live node had an unresolved or corrupt
	// edge. The classification is then fully conservative: everything is
	// live, and a debloat pass must not delete anything.
	Imprecise bool
}

// Reachable runs the worklist closure from roots over the call graph.
// Soundness contract: the recovered graph over-approximates runtime
// behavior edge-by-edge, and any residue of doubt — an EdgeUnknown, a
// corrupt record, a malformed blob with out-edges — flips Imprecise and
// keeps the whole image live. Dead therefore means provably dead.
func (cg *CallGraph) Reachable(roots RootSet) *Reachability {
	r := &Reachability{
		Roots:       roots,
		LiveMethods: make([]bool, len(cg.Nodes)),
		LiveBlobs:   make([]bool, len(cg.Blobs)),
		LiveThunks:  map[int]bool{},
	}

	var work []int // method slots to visit
	rootMethod := func(id dex.MethodID) {
		i := int(id)
		if i < 0 || i >= len(cg.Nodes) || r.LiveMethods[i] {
			return
		}
		if cg.Nodes[i].Size == 0 && !cg.Nodes[i].Corrupt {
			return // already a stub; nothing to keep live
		}
		r.LiveMethods[i] = true
		work = append(work, i)
	}
	for _, id := range roots.Methods {
		rootMethod(id)
	}
	if roots.NoCallers {
		called := make([]bool, len(cg.Nodes))
		for _, nd := range cg.Nodes {
			for _, e := range nd.Edges {
				if e.Kind == EdgeMethod && int(e.Target) < len(called) {
					called[e.Target] = true
				}
			}
		}
		for _, b := range cg.Blobs {
			for _, e := range b.Edges {
				if e.Kind == EdgeMethod && int(e.Target) < len(called) {
					called[e.Target] = true
				}
			}
		}
		for i := range cg.Nodes {
			if !called[i] {
				rootMethod(dexID(i))
			}
		}
	}

	liveBlob := func(bi int) {
		if bi < 0 || bi >= len(r.LiveBlobs) || r.LiveBlobs[bi] {
			return
		}
		r.LiveBlobs[bi] = true
		// Blob out-edges exist only on malformed images; a blob calling
		// anything is beyond the model, so go imprecise as well as
		// following the edges.
		for _, e := range cg.Blobs[bi].Edges {
			r.Imprecise = true
			switch e.Kind {
			case EdgeMethod:
				rootMethod(e.Target)
			case EdgeOutlined:
				if obi, ok := cg.blobIndexOf(e.Sym); ok {
					r.LiveBlobs[obi] = true
				}
			}
		}
	}

	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		nd := &cg.Nodes[i]
		if nd.Corrupt || nd.Unknown {
			r.Imprecise = true
		}
		for _, e := range nd.Edges {
			// A resolved java call routed through the java_entry thunk
			// carries the thunk symbol alongside the method target (an
			// EdgeOutlined Sym names a blob, not a thunk).
			if e.Sym != 0 && e.Kind != EdgeOutlined {
				r.LiveThunks[e.Sym] = true
			}
			switch e.Kind {
			case EdgeMethod:
				if t := int(e.Target); t >= 0 && t < len(cg.Nodes) && !r.LiveMethods[t] {
					if cg.Nodes[t].Size > 0 || cg.Nodes[t].Corrupt {
						r.LiveMethods[t] = true
						work = append(work, t)
					}
				}
			case EdgeOutlined:
				if bi, ok := cg.blobIndexOf(e.Sym); ok {
					liveBlob(bi)
				}
			case EdgeThunk:
				r.LiveThunks[e.Sym] = true
			case EdgeUnknown:
				r.Imprecise = true
			}
		}
	}

	if r.Imprecise {
		// Full conservatism: nothing may be deleted.
		for i := range r.LiveMethods {
			if cg.Nodes[i].Size > 0 || cg.Nodes[i].Corrupt {
				r.LiveMethods[i] = true
			}
		}
		for i := range r.LiveBlobs {
			r.LiveBlobs[i] = true
		}
		for _, sym := range cg.thunkSyms {
			r.LiveThunks[sym] = true
		}
	}
	return r
}

// blobIndexOf maps a blob symbol to its Blobs index.
func (cg *CallGraph) blobIndexOf(sym int) (int, bool) {
	for i, b := range cg.Blobs {
		if b.Sym == sym {
			return i, true
		}
	}
	return 0, false
}

// DeadMethods returns the slots classified dead, ascending. Zero-size
// stubs are not listed: they are already deleted.
func (r *Reachability) DeadMethods(cg *CallGraph) []dex.MethodID {
	var out []dex.MethodID
	for i, live := range r.LiveMethods {
		if !live && cg.Nodes[i].Size > 0 && !cg.Nodes[i].Corrupt {
			out = append(out, dexID(i))
		}
	}
	return out
}

// DeadBlobs returns the indexes of dead outlined functions, ascending.
func (r *Reachability) DeadBlobs() []int {
	var out []int
	for i, live := range r.LiveBlobs {
		if !live {
			out = append(out, i)
		}
	}
	return out
}

// WriteReport renders the deterministic reachability report consumed by
// oatlint -reach.
func (r *Reachability) WriteReport(w io.Writer, cg *CallGraph) error {
	liveM, stubs := 0, 0
	for i, live := range r.LiveMethods {
		switch {
		case live:
			liveM++
		case cg.Nodes[i].Size == 0 && !cg.Nodes[i].Corrupt:
			stubs++
		}
	}
	liveB := 0
	for _, live := range r.LiveBlobs {
		if live {
			liveB++
		}
	}
	rootDesc := fmt.Sprintf("%d explicit", len(r.Roots.Methods))
	if r.Roots.NoCallers {
		rootDesc += " + no-caller inference"
	}
	if _, err := fmt.Fprintf(w, "reachability: roots %s, precise=%v\n", rootDesc, !r.Imprecise); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "methods: %d live, %d dead, %d stubs\n",
		liveM, len(r.LiveMethods)-liveM-stubs, stubs); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "outlined: %d live, %d dead\n",
		liveB, len(r.LiveBlobs)-liveB); err != nil {
		return err
	}
	for _, id := range r.DeadMethods(cg) {
		if _, err := fmt.Fprintf(w, "dead m%d (%d bytes)\n", id, cg.Nodes[id].Size); err != nil {
			return err
		}
	}
	for _, bi := range r.DeadBlobs() {
		b := cg.Blobs[bi]
		if _, err := fmt.Fprintf(w, "dead %s (%d bytes)\n", codegen.SymName(b.Sym), b.Size); err != nil {
			return err
		}
	}
	syms := make([]int, 0, len(r.LiveThunks))
	for sym := range r.LiveThunks {
		syms = append(syms, sym)
	}
	sort.Ints(syms)
	for _, sym := range syms {
		if _, err := fmt.Fprintf(w, "live thunk %s\n", codegen.SymName(sym)); err != nil {
			return err
		}
	}
	return nil
}
