package analysis

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/codegen"
	"repro/internal/oat"
	"repro/internal/obs"
)

// The rule engine makes oatlint pluggable: every check is a named Rule in
// a registry, enabled and re-graded per run by a RuleSpec (the -rules
// flag). The legacy per-method checks are ported as filter rules over ONE
// shared verification pass, so the engine with its default spec produces
// byte-identical output to the legacy Analyze path — the parity the
// determinism tests pin. The interprocedural rules (unreachable-method,
// dead-outline-body, call-into-removed-range, recursive-outline-cycle)
// are engine-only: they need the whole-image call graph, which the
// RuleContext builds lazily over the same shared layout so structural
// findings are never duplicated.

// Rule is one verifier check, addressable by name.
type Rule interface {
	// Name is the stable rule ID findings carry in their Rule field.
	Name() string
	// Doc is a one-line description for -rules=help output.
	Doc() string
	// Interprocedural reports whether the rule needs the whole-image call
	// graph; such rules are off by default and enabled via -rules.
	Interprocedural() bool
	// Run evaluates the rule, emitting findings through the context.
	Run(rc *RuleContext)
}

// RuleContext is what a Rule sees: the image under analysis plus lazily
// built, memoized whole-image artifacts shared by every rule in the run.
type RuleContext struct {
	ctx     context.Context
	img     *oat.Image
	workers int
	tracer  *obs.Tracer
	roots   RootSet

	rep    *Report
	lay    *layout
	repErr error
	ran    bool

	cg         *CallGraph
	cgFindings []Finding

	reach *Reachability

	// orig is the pre-pass image of a paired run (oatlint -orig, or the
	// re-outliner's self-check); nil on single-image runs, in which case
	// the paired rules emit nothing. Its layout and call graph are built
	// lazily like the primary image's.
	orig    *oat.Image
	origLay *layout
	origCG  *CallGraph

	spec *RuleSpec
	out  findings
	err  error
}

// Image returns the image under analysis.
func (rc *RuleContext) Image() *oat.Image { return rc.img }

// Orig returns the original (pre-pass) image of a paired run, or nil.
func (rc *RuleContext) Orig() *oat.Image { return rc.orig }

// origLayout returns the memoized layout of the original image, with blob
// bodies decoded. Structural findings on the original image are not the
// paired rules' business — the original was linted in its own run — so
// they are discarded here.
func (rc *RuleContext) origLayout() *layout {
	if rc.origLay == nil && rc.orig != nil {
		var fs findings
		rc.origLay = buildLayout(rc.orig, &fs)
		for _, r := range rc.origLay.regions {
			if r.kind == regionBlob {
				rc.origLay.checkBlob(r, &fs)
			}
		}
	}
	return rc.origLay
}

// origCallGraph returns the memoized call graph of the original image.
func (rc *RuleContext) origCallGraph() (*CallGraph, error) {
	if rc.origCG == nil && rc.orig != nil {
		var fs findings
		cg, err := buildCallGraphFrom(rc.ctx, rc.origLayout(), rc.workers, &fs)
		if err != nil {
			return nil, err
		}
		rc.origCG = cg
	}
	return rc.origCG, nil
}

// Analysis returns the shared per-method verification pass (layout,
// thunk/blob checks, CFG recovery, dataflow), running it on first use.
func (rc *RuleContext) Analysis() (*Report, error) {
	if !rc.ran {
		rc.ran = true
		rc.rep, rc.lay, rc.repErr = analyzeImage(rc.ctx, rc.img, rc.workers, rc.tracer)
	}
	return rc.rep, rc.repErr
}

// CallGraph returns the whole-image call graph and the walk's own
// findings, built on first use over the shared layout.
func (rc *RuleContext) CallGraph() (*CallGraph, []Finding, error) {
	if rc.cg == nil {
		if _, err := rc.Analysis(); err != nil {
			return nil, nil, err
		}
		var fs findings
		cg, err := buildCallGraphFrom(rc.ctx, rc.lay, rc.workers, &fs)
		if err != nil {
			return nil, nil, err
		}
		rc.cg = cg
		rc.cgFindings = fs.list
	}
	return rc.cg, rc.cgFindings, nil
}

// Reachability returns the closure of the run's root set over the call
// graph, computed on first use.
func (rc *RuleContext) Reachability() (*Reachability, *CallGraph, error) {
	if rc.reach == nil {
		cg, _, err := rc.CallGraph()
		if err != nil {
			return nil, nil, err
		}
		rc.reach = cg.Reachable(rc.roots)
	}
	return rc.reach, rc.cg, nil
}

// emit records one finding, applying the spec's severity override.
func (rc *RuleContext) emit(f Finding) {
	if rc.spec != nil {
		if sev, ok := rc.spec.severity[f.Rule]; ok {
			f.Severity = sev
		}
	}
	rc.out.list = append(rc.out.list, f)
}

// fail records a rule-infrastructure error (context cancellation).
func (rc *RuleContext) fail(err error) {
	if rc.err == nil {
		rc.err = err
	}
}

// filterRule ports one legacy check onto the engine: it selects that
// rule's findings out of the shared pass. The union of all filter rules
// is exactly the legacy report.
type filterRule struct {
	name string
	doc  string
}

func (r filterRule) Name() string          { return r.name }
func (r filterRule) Doc() string           { return r.doc }
func (r filterRule) Interprocedural() bool { return false }
func (r filterRule) Run(rc *RuleContext) {
	rep, err := rc.Analysis()
	if err != nil {
		rc.fail(err)
		return
	}
	for _, f := range rep.Findings {
		if f.Rule == r.name {
			rc.emit(f)
		}
	}
}

// callgraphRule surfaces the call-graph walk's advisory notes:
// unresolved call targets and malformed ArtMethod constants.
type callgraphRule struct{}

func (callgraphRule) Name() string { return RuleCallGraph }
func (callgraphRule) Doc() string {
	return "call sites the interprocedural walk could not resolve"
}
func (callgraphRule) Interprocedural() bool { return true }
func (callgraphRule) Run(rc *RuleContext) {
	_, cgfs, err := rc.CallGraph()
	if err != nil {
		rc.fail(err)
		return
	}
	for _, f := range cgfs {
		if f.Rule == RuleCallGraph {
			rc.emit(f)
		}
	}
}

// callRemovedRule reports calls whose target lies in no recorded region.
type callRemovedRule struct{}

func (callRemovedRule) Name() string { return RuleCallRemoved }
func (callRemovedRule) Doc() string {
	return "a call targets a removed range or leaves the text segment"
}
func (callRemovedRule) Interprocedural() bool { return true }
func (callRemovedRule) Run(rc *RuleContext) {
	_, cgfs, err := rc.CallGraph()
	if err != nil {
		rc.fail(err)
		return
	}
	for _, f := range cgfs {
		if f.Rule == RuleCallRemoved {
			rc.emit(f)
		}
	}
}

// unreachableRule reports methods no root can reach.
type unreachableRule struct{}

func (unreachableRule) Name() string { return RuleUnreachable }
func (unreachableRule) Doc() string {
	return "a method is unreachable from the root set"
}
func (unreachableRule) Interprocedural() bool { return true }
func (unreachableRule) Run(rc *RuleContext) {
	reach, cg, err := rc.Reachability()
	if err != nil {
		rc.fail(err)
		return
	}
	for _, id := range reach.DeadMethods(cg) {
		rc.emit(Finding{
			Severity: SevInfo, Method: id, Off: -1, Rule: RuleUnreachable,
			Msg: fmt.Sprintf("unreachable from the root set; %d bytes removable", cg.Nodes[id].Size),
		})
	}
}

// deadOutlineRule reports outlined functions no live method calls.
type deadOutlineRule struct{}

func (deadOutlineRule) Name() string { return RuleDeadOutline }
func (deadOutlineRule) Doc() string {
	return "an outlined function is called by no live method"
}
func (deadOutlineRule) Interprocedural() bool { return true }
func (deadOutlineRule) Run(rc *RuleContext) {
	reach, cg, err := rc.Reachability()
	if err != nil {
		rc.fail(err)
		return
	}
	for _, bi := range reach.DeadBlobs() {
		b := cg.Blobs[bi]
		rc.emit(Finding{
			Severity: SevInfo, Method: NoMethod, Off: b.Offset, Rule: RuleDeadOutline,
			Msg: fmt.Sprintf("%s has no live caller; %d bytes removable", codegen.SymName(b.Sym), b.Size),
		})
	}
}

// outlineCycleRule reports call-graph cycles that pass through an
// outlined function. A well-formed blob is straight-line code, so such a
// cycle implies a blob that calls — re-entering it recursively would run
// with a clobbered return address.
type outlineCycleRule struct{}

func (outlineCycleRule) Name() string { return RuleOutlineCycle }
func (outlineCycleRule) Doc() string {
	return "the call graph cycles through an outlined function"
}
func (outlineCycleRule) Interprocedural() bool { return true }
func (outlineCycleRule) Run(rc *RuleContext) {
	cg, _, err := rc.CallGraph()
	if err != nil {
		rc.fail(err)
		return
	}
	for bi, b := range cg.Blobs {
		if len(b.Edges) == 0 {
			continue
		}
		if blobOnCycle(cg, bi) {
			rc.emit(Finding{
				Severity: SevError, Method: NoMethod, Off: b.Offset, Rule: RuleOutlineCycle,
				Msg: fmt.Sprintf("%s participates in a call cycle; recursive re-entry clobbers its return address", codegen.SymName(b.Sym)),
			})
		}
	}
}

// blobOnCycle reports whether blob bi can reach itself through the call
// graph. Node encoding for the search: methods are their slot index,
// blobs are len(Nodes)+index.
func blobOnCycle(cg *CallGraph, bi int) bool {
	base := len(cg.Nodes)
	start := base + bi
	seen := map[int]bool{}
	stack := succs(cg, start)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == start {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, succs(cg, n)...)
	}
	return false
}

// succs lists a search node's call-graph successors.
func succs(cg *CallGraph, n int) []int {
	base := len(cg.Nodes)
	var edges []Edge
	if n < base {
		edges = cg.Nodes[n].Edges
	} else {
		edges = cg.Blobs[n-base].Edges
	}
	var out []int
	for _, e := range edges {
		switch e.Kind {
		case EdgeMethod:
			if int(e.Target) < base {
				out = append(out, int(e.Target))
			}
		case EdgeOutlined:
			if bi, ok := cg.blobIndexOf(e.Sym); ok {
				out = append(out, base+bi)
			}
		}
	}
	return out
}

// legacyRules lists every rule ID the per-method pass can produce, in
// report-section order, with its one-line doc.
var legacyRules = []filterRule{
	{RuleRecord, "a record is out of bounds, misaligned, overlapping, or out of order"},
	{RuleDecode, "a non-data word does not decode as a modeled A64 instruction"},
	{RuleBranchTarget, "a branch leaves its method or misses an instruction boundary"},
	{RuleCallTarget, "a bl does not land on a method, thunk, or outlined-function head"},
	{RuleBlobEntry, "control enters the middle of an outlined function"},
	{RuleIndirect, "a computed branch does not match the switch-table idiom"},
	{RuleBlobShape, "an outlined function is not straight-line code ending in br x30"},
	{RuleSPBalance, "the stack pointer is unbalanced on some path"},
	{RuleStackProbe, "a calling method performs no stack-overflow probe"},
	{RuleCalleeSaved, "a callee-saved register is clobbered across a ret path"},
	{RuleLinkReg, "ret executes without the caller's return address in x30"},
	{RuleSafepoint, "a stack map entry does not sit on a call instruction"},
	{RuleMetadata, "the LTBO metadata disagrees with the code it describes"},
	{RuleLiteral, "a literal access targets bytes outside embedded data"},
	{RuleDeadCode, "instruction words unreachable from the method entry"},
}

// registry holds every known rule in registration order; the engine runs
// enabled rules in this order (findings are sorted at the boundary, so
// the order affects only lazy-artifact build timing, not output).
var registry = buildRegistry()

func buildRegistry() []Rule {
	var rs []Rule
	for _, r := range legacyRules {
		rs = append(rs, r)
	}
	rs = append(rs,
		callgraphRule{},
		callRemovedRule{},
		unreachableRule{},
		deadOutlineRule{},
		outlineCycleRule{},
		reoutlinedBodyRule{},
		liftFrozenRule{},
	)
	return rs
}

// Rules returns the registered rules in registration order.
func Rules() []Rule {
	out := make([]Rule, len(registry))
	copy(out, registry)
	return out
}

// RuleByName looks up a registered rule.
func RuleByName(name string) (Rule, bool) {
	for _, r := range registry {
		if r.Name() == name {
			return r, true
		}
	}
	return nil, false
}

// RuleSpec selects which rules a run evaluates and at what severity.
// The zero value (and DefaultRuleSpec) enables exactly the legacy rules,
// reproducing the classic Analyze output.
type RuleSpec struct {
	enabled  map[string]bool
	severity map[string]Severity
}

// DefaultRuleSpec enables the legacy per-method rules only.
func DefaultRuleSpec() *RuleSpec {
	s := &RuleSpec{enabled: map[string]bool{}, severity: map[string]Severity{}}
	for _, r := range registry {
		if !r.Interprocedural() {
			s.enabled[r.Name()] = true
		}
	}
	return s
}

// AllRuleSpec enables every registered rule with default roots.
func AllRuleSpec() *RuleSpec {
	s := DefaultRuleSpec()
	for _, r := range registry {
		s.enabled[r.Name()] = true
	}
	return s
}

// Enabled reports whether the spec enables a rule.
func (s *RuleSpec) Enabled(name string) bool { return s.enabled[name] }

// Enable turns a rule on.
func (s *RuleSpec) Enable(name string) { s.enabled[name] = true }

// ParseRuleSpec parses the -rules flag grammar: a comma-separated list of
// directives applied left to right onto the default (legacy) set.
//
//	all          enable every rule
//	legacy       reset to the legacy per-method set
//	interproc    additionally enable every interprocedural rule
//	NAME         enable rule NAME
//	-NAME        disable rule NAME
//	NAME=SEV     enable NAME and regrade its findings (info|warn|error)
//
// Unknown rule names and severities are errors: a typo must not silently
// disable a check.
func ParseRuleSpec(spec string) (*RuleSpec, error) {
	s := DefaultRuleSpec()
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		switch {
		case item == "":
		case item == "all":
			for _, r := range registry {
				s.enabled[r.Name()] = true
			}
		case item == "legacy":
			s.enabled = map[string]bool{}
			for _, r := range registry {
				if !r.Interprocedural() {
					s.enabled[r.Name()] = true
				}
			}
		case item == "interproc":
			for _, r := range registry {
				if r.Interprocedural() {
					s.enabled[r.Name()] = true
				}
			}
		case strings.HasPrefix(item, "-"):
			name := item[1:]
			if _, ok := RuleByName(name); !ok {
				return nil, fmt.Errorf("unknown rule %q", name)
			}
			delete(s.enabled, name)
		case strings.Contains(item, "="):
			name, sevName, _ := strings.Cut(item, "=")
			if _, ok := RuleByName(name); !ok {
				return nil, fmt.Errorf("unknown rule %q", name)
			}
			var sev Severity
			switch sevName {
			case "info":
				sev = SevInfo
			case "warn":
				sev = SevWarn
			case "error":
				sev = SevError
			default:
				return nil, fmt.Errorf("unknown severity %q for rule %q", sevName, name)
			}
			s.enabled[name] = true
			s.severity[name] = sev
		default:
			if _, ok := RuleByName(item); !ok {
				return nil, fmt.Errorf("unknown rule %q", item)
			}
			s.enabled[item] = true
		}
	}
	return s, nil
}

// String renders the spec canonically and self-containedly: enabled rules
// in registration order with severity overrides attached, then a -NAME
// entry for every default-on (legacy) rule the spec disables, so parsing
// the string back — which starts from the legacy default — reproduces the
// spec exactly.
func (s *RuleSpec) String() string {
	var parts []string
	for _, r := range registry {
		if !s.enabled[r.Name()] {
			continue
		}
		p := r.Name()
		if sev, ok := s.severity[r.Name()]; ok {
			p += "=" + sev.String()
		}
		parts = append(parts, p)
	}
	for _, r := range registry {
		if !r.Interprocedural() && !s.enabled[r.Name()] {
			parts = append(parts, "-"+r.Name())
		}
	}
	return strings.Join(parts, ",")
}

// RunRules evaluates the spec's enabled rules against an image and
// returns the combined report in canonical finding order. A nil spec
// means DefaultRuleSpec — the legacy rule set, whose output is
// byte-identical to AnalyzeCtx. Roots configures the interprocedural
// rules; the zero RootSet means DefaultRoots (no-caller inference).
func RunRules(ctx context.Context, img *oat.Image, spec *RuleSpec, roots RootSet, workers int, tracer *obs.Tracer) (*Report, error) {
	return RunRulesPaired(ctx, img, nil, spec, roots, workers, tracer)
}

// RunRulesPaired is RunRules over a pair of images: the image under
// analysis plus the original it was derived from by a binary rewrite
// (debloat, re-outline). The paired rules — reoutlined-body-equivalent
// and lift-frozen-untouched — compare the two and prove the rewrite
// preserved every method's flattened instruction stream and every frozen
// method's bytes; on a nil orig they emit nothing, which keeps
// single-image runs (and their goldens) unchanged.
func RunRulesPaired(ctx context.Context, img, orig *oat.Image, spec *RuleSpec, roots RootSet, workers int, tracer *obs.Tracer) (*Report, error) {
	if spec == nil {
		spec = DefaultRuleSpec()
	}
	if len(roots.Methods) == 0 && !roots.NoCallers {
		roots = DefaultRoots()
	}
	rc := &RuleContext{
		ctx: ctx, img: img, workers: workers, tracer: tracer,
		roots: roots, spec: spec, orig: orig,
	}
	names := make([]string, 0, len(spec.enabled))
	for name, on := range spec.enabled {
		if on {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		r, ok := RuleByName(name)
		if !ok {
			continue
		}
		r.Run(rc)
		if rc.err != nil {
			return nil, rc.err
		}
	}
	rep := &Report{
		Thunks:    len(img.Thunks),
		Outlined:  len(img.Outlined),
		TextBytes: img.TextBytes(),
	}
	if rc.ran && rc.repErr == nil {
		rep.Methods = rc.rep.Methods
	}
	sortFindings(rc.out.list)
	rep.Findings = rc.out.list
	return rep, nil
}
