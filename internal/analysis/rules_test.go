package analysis_test

import (
	"testing"

	"repro/internal/a64"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/oat"
)

// TestRuleEngineParity pins the engine's compatibility contract: under the
// default spec (the legacy rule set) RunRules produces findings identical
// to the classic Analyze path, on clean and on corrupt images alike.
func TestRuleEngineParity(t *testing.T) {
	clean := buildApp(t, core.CTOLTBO())
	corrupt := buildApp(t, core.CTOLTBO())
	corrupt.Text[len(corrupt.Text)/2] = 0xFFFFFFFF
	corrupt.Text[len(corrupt.Text)/3] = 0xFFFFFFFF
	for _, tc := range []struct {
		name string
		img  *oat.Image
	}{{"clean", clean}, {"corrupt", corrupt}} {
		t.Run(tc.name, func(t *testing.T) {
			legacy := analysis.AnalyzeParallel(tc.img, 3)
			rep, err := analysis.RunRules(t.Context(), tc.img, nil, analysis.RootSet{}, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Findings) != len(legacy.Findings) {
				t.Fatalf("engine found %d, legacy found %d", len(rep.Findings), len(legacy.Findings))
			}
			for i := range legacy.Findings {
				if rep.Findings[i] != legacy.Findings[i] {
					t.Errorf("finding %d: engine %v, legacy %v", i, rep.Findings[i], legacy.Findings[i])
				}
			}
			if len(rep.Methods) != len(legacy.Methods) {
				t.Errorf("engine report covers %d methods, legacy %d", len(rep.Methods), len(legacy.Methods))
			}
		})
	}
}

// TestRuleSpecParse exercises the -rules grammar: set operations, severity
// regrades, and the typo-is-an-error contract.
func TestRuleSpecParse(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		on      []string
		off     []string
	}{
		{spec: "", on: []string{analysis.RuleRecord, analysis.RuleDecode}, off: []string{analysis.RuleUnreachable}},
		{spec: "all", on: []string{analysis.RuleRecord, analysis.RuleUnreachable, analysis.RuleOutlineCycle}},
		{spec: "interproc", on: []string{analysis.RuleRecord, analysis.RuleUnreachable, analysis.RuleDeadOutline}},
		{spec: "all,legacy", on: []string{analysis.RuleRecord}, off: []string{analysis.RuleUnreachable}},
		{spec: "-dead-code", off: []string{analysis.RuleDeadCode}, on: []string{analysis.RuleRecord}},
		{spec: "unreachable-method", on: []string{analysis.RuleUnreachable}, off: []string{analysis.RuleDeadOutline}},
		{spec: "unreachable-method=warn", on: []string{analysis.RuleUnreachable}},
		{spec: "bogus-rule", wantErr: true},
		{spec: "decode=silly", wantErr: true},
		{spec: "-bogus-rule", wantErr: true},
		{spec: "bogus-rule=warn", wantErr: true},
	}
	for _, tc := range cases {
		s, err := analysis.ParseRuleSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%q: parse succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		for _, name := range tc.on {
			if !s.Enabled(name) {
				t.Errorf("%q: rule %s should be enabled", tc.spec, name)
			}
		}
		for _, name := range tc.off {
			if s.Enabled(name) {
				t.Errorf("%q: rule %s should be disabled", tc.spec, name)
			}
		}
	}

	// The canonical rendering survives a round trip.
	s, err := analysis.ParseRuleSpec("interproc,unreachable-method=warn,-dead-code")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := analysis.ParseRuleSpec(s.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s.String(), err)
	}
	if s2.String() != s.String() {
		t.Errorf("spec does not round-trip: %q -> %q", s.String(), s2.String())
	}
}

// TestInterprocRules checks the reachability-backed rules agree with a
// direct call-graph query, and that severity regrades apply.
func TestInterprocRules(t *testing.T) {
	_, man, img := buildAppFull(t, core.CTOLTBO())
	roots := analysis.RootSet{Methods: man.Drivers}
	cg, _ := analysis.BuildCallGraph(img)
	reach := cg.Reachable(roots)
	wantDead := map[dex.MethodID]bool{}
	for _, id := range reach.DeadMethods(cg) {
		wantDead[id] = true
	}

	spec, err := analysis.ParseRuleSpec("interproc")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.RunRules(t.Context(), img, spec, roots, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotDead := map[dex.MethodID]bool{}
	deadOutlines := 0
	for _, f := range rep.Findings {
		switch f.Rule {
		case analysis.RuleUnreachable:
			gotDead[f.Method] = true
		case analysis.RuleDeadOutline:
			deadOutlines++
		case analysis.RuleOutlineCycle:
			t.Errorf("clean build flagged an outline cycle: %s", f)
		}
	}
	if len(gotDead) != len(wantDead) {
		t.Errorf("rule reported %d unreachable methods, reachability says %d", len(gotDead), len(wantDead))
	}
	for id := range gotDead {
		if !wantDead[id] {
			t.Errorf("rule flagged m%d, reachability says live", id)
		}
	}
	if want := len(reach.DeadBlobs()); deadOutlines != want {
		t.Errorf("rule reported %d dead outlined functions, reachability says %d", deadOutlines, want)
	}

	// Severity regrade: the same findings, re-graded to errors.
	if len(wantDead) > 0 {
		spec, err := analysis.ParseRuleSpec("unreachable-method=error")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.RunRules(t.Context(), img, spec, roots, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for _, f := range rep.Findings {
			if f.Rule == analysis.RuleUnreachable {
				seen++
				if f.Severity != analysis.SevError {
					t.Errorf("regraded finding kept severity %s: %s", f.Severity, f)
				}
			}
		}
		if seen != len(wantDead) {
			t.Errorf("regraded run reported %d unreachable methods, want %d", seen, len(wantDead))
		}
	}

	// Severity regrade on a legacy rule, driven through the engine.
	stomped := buildApp(t, core.CTOLTBO())
	stomped.Text[len(stomped.Text)/2] = 0xFFFFFFFF
	dspec, err := analysis.ParseRuleSpec("decode=info")
	if err != nil {
		t.Fatal(err)
	}
	drep, err := analysis.RunRules(t.Context(), stomped, dspec, analysis.RootSet{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	decodes := 0
	for _, f := range drep.Findings {
		if f.Rule == analysis.RuleDecode {
			decodes++
			if f.Severity != analysis.SevInfo {
				t.Errorf("decode finding not regraded to info: %s", f)
			}
		}
	}
	if decodes == 0 {
		t.Error("stomped word produced no decode finding")
	}
}

// TestOutlineCycleRule crafts the pathology the rule exists for: an
// outlined function whose body calls itself. A blob is supposed to be
// straight-line, so a self-call is a call-graph cycle through the blob —
// an error, because recursive re-entry runs with a clobbered return
// address.
func TestOutlineCycleRule(t *testing.T) {
	img := buildApp(t, core.CTOLTBO())
	if len(img.Outlined) == 0 {
		t.Fatal("build produced no outlined functions")
	}
	b := img.Outlined[0]
	img.Text[b.Offset/a64.WordSize] = a64.MustEncode(a64.Inst{Op: a64.OpBl, Imm: 0}) // bl to its own head

	spec, err := analysis.ParseRuleSpec("recursive-outline-cycle")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.RunRules(t.Context(), img, spec, analysis.RootSet{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cycle *analysis.Finding
	for i, f := range rep.Findings {
		if f.Rule == analysis.RuleOutlineCycle {
			cycle = &rep.Findings[i]
		}
	}
	if cycle == nil {
		t.Fatal("self-calling outlined function produced no cycle finding")
	}
	if cycle.Severity != analysis.SevError {
		t.Errorf("cycle finding severity %s, want error", cycle.Severity)
	}
	if cycle.Off != b.Offset {
		t.Errorf("cycle finding at +%#x, blob is at +%#x", cycle.Off, b.Offset)
	}
}
