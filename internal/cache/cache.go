// Package cache is the content-addressed compilation cache that makes
// warm rebuilds cheap. Per-method code generation is a pure function of
// the method's bytecode, the signatures of the methods it references, and
// the codegen option knobs — exactly the redundancy ShareJIT exploits by
// sharing compiled code across compilations keyed by content. The cache
// maps a stable content hash of those inputs (the Key, built with Hasher)
// to the serialized compiled artifact, so a rebuild of unchanged input
// skips IR construction and code generation entirely.
//
// Layering: this package stores opaque payload bytes under content
// addresses; it knows nothing about what they encode. The payload codec
// for compiled methods — and the key schema that decides what invalidates
// them — lives in internal/codegen, next to the code generator whose
// output it snapshots. What this package owns is everything a *store*
// must get right:
//
//   - a versioned, checksummed on-wire frame (Seal/Open), so corrupt,
//     truncated, or version-skewed entries are detected and degrade to a
//     miss — never an error, never a panic;
//   - a concurrency-safe in-memory map, sharded 16 ways so parallel
//     compile workers never serialize on one cache-wide lock (the strict
//     insertion-order eviction keeps a separate policy mutex off the read
//     path; atomic counters for stats; no lock held during encode/decode
//     or disk I/O);
//   - an optional on-disk directory for cross-process warm starts, with
//     atomic writes (temp file + rename) and read-through promotion into
//     memory.
//
// Determinism contract, inherited from the parallel-build work: the cache
// changes scheduling and work, never output. Entries are immutable once
// stored; readers decode private copies, so a cached artifact can never
// alias state a later pipeline stage mutates.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key is a content address: the SHA-256 of canonical key material fed
// through a Hasher. Equal keys mean "same compilation inputs"; the key
// schema (what goes into the hash, and in what order) is owned by the
// caller and pinned by its own golden tests.
type Key [sha256.Size]byte

// String renders the key as lower-case hex, the on-disk file stem.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hasher accumulates canonical key material. Every field is written with
// an unambiguous fixed-width or length-prefixed encoding, so two
// different field sequences can never collide by concatenation. Fields
// are staged in a fixed buffer and flushed to SHA-256 in large writes:
// key hashing runs once per method per build, warm or cold, so the
// per-Write overhead of the hash state is the warm path's compile cost.
// Buffering changes only the write granularity, never the hashed byte
// stream, so keys are identical to an unbuffered hasher's.
type Hasher struct {
	h   hash.Hash
	n   int
	buf [512]byte
}

// hasherPool recycles Hashers (each carries a 512-byte staging buffer and
// a SHA-256 state). Key hashing runs once per method per build — warm or
// cold — so the pool keeps the warm path allocation-free.
var hasherPool = sync.Pool{New: func() any {
	return &Hasher{h: sha256.New()}
}}

// NewHasher starts a key over the given schema tag. The tag versions the
// whole key layout: bumping it invalidates every existing entry at once,
// which is the safe response to any change in what the key covers.
// Hashers come from an internal pool; Sum returns them to it, which is why
// a Hasher must not be touched after Sum.
func NewHasher(schema string) *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.h.Reset()
	h.n = 0
	h.Str(schema)
	return h
}

func (h *Hasher) flush() {
	if h.n > 0 {
		h.h.Write(h.buf[:h.n])
		h.n = 0
	}
}

// Int writes a fixed-width signed integer.
func (h *Hasher) Int(v int64) {
	if h.n+8 > len(h.buf) {
		h.flush()
	}
	binary.LittleEndian.PutUint64(h.buf[h.n:], uint64(v))
	h.n += 8
}

// Uint writes a fixed-width unsigned integer.
func (h *Hasher) Uint(v uint64) {
	h.Int(int64(v))
}

// Bool writes a boolean as one full-width word (no packing, no ambiguity).
func (h *Hasher) Bool(b bool) {
	var v int64
	if b {
		v = 1
	}
	h.Int(v)
}

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(int64(len(s)))
	for len(s) > 0 {
		if h.n == len(h.buf) {
			h.flush()
		}
		n := copy(h.buf[h.n:], s)
		h.n += n
		s = s[n:]
	}
}

// Sum finalizes the key and releases the Hasher back to the pool. The
// Hasher must not be reused afterwards.
func (h *Hasher) Sum() Key {
	h.flush()
	var k Key
	h.h.Sum(k[:0])
	hasherPool.Put(h)
	return k
}

// Frame layout (little-endian): magic, format version, payload length,
// payload, CRC-32 (IEEE) of everything before the checksum. The version
// is part of the checksummed region, so a version byte flipped in place
// fails the checksum and a genuinely old entry fails the version check —
// both are misses.
const (
	frameMagic   = 0x31454343 // "CCE1"
	frameVersion = 1
	frameHeader  = 12 // magic + version + payload length
	frameFooter  = 4  // crc32
)

// Seal wraps a payload in the versioned, checksummed frame.
func Seal(payload []byte) []byte {
	blob := make([]byte, frameHeader+len(payload)+frameFooter)
	le := binary.LittleEndian
	le.PutUint32(blob[0:], frameMagic)
	le.PutUint32(blob[4:], frameVersion)
	le.PutUint32(blob[8:], uint32(len(payload)))
	copy(blob[frameHeader:], payload)
	sum := crc32.ChecksumIEEE(blob[:frameHeader+len(payload)])
	le.PutUint32(blob[frameHeader+len(payload):], sum)
	return blob
}

// Open validates a frame and returns its payload. Any defect — short
// blob, wrong magic, unknown version, length mismatch, checksum failure —
// returns ok == false: the store treats the entry as absent. The returned
// slice aliases blob and must be treated as read-only.
func Open(blob []byte) (payload []byte, ok bool) {
	if len(blob) < frameHeader+frameFooter {
		return nil, false
	}
	le := binary.LittleEndian
	if le.Uint32(blob[0:]) != frameMagic || le.Uint32(blob[4:]) != frameVersion {
		return nil, false
	}
	plen := int(le.Uint32(blob[8:]))
	if plen != len(blob)-frameHeader-frameFooter {
		return nil, false
	}
	body := blob[:frameHeader+plen]
	if crc32.ChecksumIEEE(body) != le.Uint32(blob[frameHeader+plen:]) {
		return nil, false
	}
	return blob[frameHeader : frameHeader+plen], true
}

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	Entries     int   `json:"entries"`      // entries resident in memory
	MemBytes    int64 `json:"mem_bytes"`    // sealed bytes resident in memory
	Hits        int64 `json:"hits"`         // Get calls served (memory, disk, or remote)
	Misses      int64 `json:"misses"`       // Get calls that found nothing usable
	DiskHits    int64 `json:"disk_hits"`    // subset of Hits served by reading the directory
	RemoteHits  int64 `json:"remote_hits"`  // subset of Hits served by the remote tier
	Corrupt     int64 `json:"corrupt"`      // entries rejected by the frame check (treated as misses)
	Evicted     int64 `json:"evicted"`      // memory entries dropped by the SetLimits safety valve
	BytesStored int64 `json:"bytes_stored"` // cumulative sealed bytes accepted by Put
	BytesServed int64 `json:"bytes_served"` // cumulative payload bytes returned by Get
}

// HitRate is Hits over all Gets, 0 when nothing was looked up — the
// serving-layer health number /metrics reports.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// numShards splits the memory tier's data map. Keys are SHA-256, so the
// first byte is uniformly distributed and a power-of-two mask balances
// the shards.
const numShards = 16

// shard is one slice of the memory tier's data map with its own lock, so
// parallel compile workers hitting different keys never serialize on one
// cache-wide mutex.
type shard struct {
	mu  sync.RWMutex
	mem map[Key][]byte // sealed frames; immutable once stored
}

// Cache is a concurrency-safe content-addressed store: an in-memory map
// of sealed entries, optionally backed by a directory for cross-process
// warm starts. The zero value is not usable; call New or NewDir.
//
// Locking: the hot path (Get on a resident key) takes only its shard's
// read lock. Writes additionally take the policy mutex, which owns the
// cache-wide state the strict global insertion-order eviction needs —
// order, byte tally, limits. Lock order is policy, then shard; nothing
// acquires policy while holding a shard lock.
type Cache struct {
	dir string
	// remote, when non-nil, is the shared fleet tier consulted after a
	// memory and disk miss and populated write-through on Put. Set once
	// with SetRemote before the cache is shared; never mutated after.
	remote *Remote

	shards [numShards]shard

	policy sync.Mutex // guards order, memBytes, limits, and eviction
	order  []Key      // memory-tier insertion order, oldest first
	// memBytes is read under either policy (writers) or atomically
	// (Stats); entries counts resident keys the same way.
	memBytes atomic.Int64
	entries  atomic.Int64
	// Memory-tier limits (0 = unbounded); see SetLimits.
	maxEntries int
	maxBytes   int64

	hits, misses, diskHits, remoteHits, corrupt, evicted atomic.Int64
	bytesStored, bytesServed                             atomic.Int64
}

// New returns a memory-only cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].mem = map[Key][]byte{}
	}
	return c
}

// shardOf picks the shard holding k.
func (c *Cache) shardOf(k Key) *shard { return &c.shards[k[0]&(numShards-1)] }

// NewDir returns a cache backed by the given directory, creating it if
// needed. Entries written by other processes are picked up read-through;
// entries this process stores are persisted write-through.
func NewDir(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := New()
	c.dir = dir
	return c, nil
}

// Dir returns the backing directory, or "" for a memory-only cache.
func (c *Cache) Dir() string { return c.dir }

// SetRemote attaches the shared fleet tier: after a memory and disk
// miss, Get consults it (promoting hits into the local tiers), and Put
// publishes entries to it write-through. Remote failures of every kind
// degrade to misses inside the Remote itself, so attaching a tier can
// slow a Get by at most the remote's bounded request deadline, never
// fail it. Must be called before the cache is shared across goroutines.
func (c *Cache) SetRemote(r *Remote) { c.remote = r }

// Remote returns the attached fleet tier, or nil.
func (c *Cache) Remote() *Remote { return c.remote }

// Contains reports whether k is resident in memory or on disk, without
// touching the hit/miss counters or the remote tier — the existence
// probe the cache server's claim election uses.
func (c *Cache) Contains(k Key) bool {
	sh := c.shardOf(k)
	sh.mu.RLock()
	_, ok := sh.mem[k]
	sh.mu.RUnlock()
	if ok {
		return true
	}
	if c.dir != "" {
		if _, err := os.Stat(c.path(k)); err == nil {
			return true
		}
	}
	return false
}

// SetLimits bounds the memory tier: at most maxEntries entries and
// maxBytes sealed bytes (0 disables either bound). When an insert —
// a Put or a disk read-through promotion — pushes the tier over a limit,
// the oldest-inserted entries are dropped until it fits again. This is
// the safety valve a long-lived process (calibrod) needs: without it
// every distinct compilation ever served stays resident forever.
//
// Eviction touches only the memory tier. A directory-backed cache keeps
// the evicted entry on disk, so a later Get re-promotes it (a DiskHit);
// a memory-only cache genuinely forgets it and the caller recompiles.
// An entry larger than maxBytes by itself is dropped immediately — the
// cache is an accelerator, and an un-cacheable entry is a miss, not an
// error. Limits may be changed at any time; shrinking them evicts
// immediately.
func (c *Cache) SetLimits(maxEntries int, maxBytes int64) {
	c.policy.Lock()
	defer c.policy.Unlock()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	c.evictLocked()
}

// insertLocked stores a sealed frame in the memory tier, maintaining the
// insertion-order list and the byte tally, then applies the limits. The
// caller holds c.policy; the shard lock is taken here. A re-insert keeps
// the key's original place in the insertion order — the eviction policy
// is strictly first-inserted-first-out, overwrite or not.
func (c *Cache) insertLocked(k Key, blob []byte) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	if old, ok := sh.mem[k]; ok {
		c.memBytes.Add(int64(len(blob)) - int64(len(old)))
		sh.mem[k] = blob
	} else {
		sh.mem[k] = blob
		c.order = append(c.order, k)
		c.memBytes.Add(int64(len(blob)))
		c.entries.Add(1)
	}
	sh.mu.Unlock()
	c.evictLocked()
}

// evictLocked drops oldest-inserted entries until the memory tier fits
// the configured limits. The caller holds c.policy.
func (c *Cache) evictLocked() {
	over := func() bool {
		return (c.maxEntries > 0 && c.entries.Load() > int64(c.maxEntries)) ||
			(c.maxBytes > 0 && c.memBytes.Load() > c.maxBytes)
	}
	for len(c.order) > 0 && over() {
		k := c.order[0]
		c.order = c.order[1:]
		sh := c.shardOf(k)
		sh.mu.Lock()
		c.memBytes.Add(-int64(len(sh.mem[k])))
		delete(sh.mem, k)
		sh.mu.Unlock()
		c.entries.Add(-1)
		c.evicted.Add(1)
	}
}

// path is the on-disk location of a key's entry.
func (c *Cache) path(k Key) string { return filepath.Join(c.dir, k.String()+".cce") }

// Get returns the payload stored under k, or ok == false on a miss. A
// frame that fails validation — truncated file, flipped bits, version
// skew — counts as corrupt and reads as a miss; the caller recompiles and
// the subsequent Put heals the entry. The returned payload is shared and
// read-only.
func (c *Cache) Get(k Key) (payload []byte, ok bool) {
	sh := c.shardOf(k)
	sh.mu.RLock()
	blob, inMem := sh.mem[k]
	sh.mu.RUnlock()
	if inMem {
		// Memory entries were validated on the way in, but re-checking
		// keeps one corruption policy for both tiers and costs one CRC.
		if p, ok := Open(blob); ok {
			c.hits.Add(1)
			c.bytesServed.Add(int64(len(p)))
			return p, true
		}
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	if c.dir != "" {
		if blob, err := os.ReadFile(c.path(k)); err == nil {
			if p, ok := Open(blob); ok {
				c.policy.Lock()
				c.insertLocked(k, blob)
				c.policy.Unlock()
				c.hits.Add(1)
				c.diskHits.Add(1)
				c.bytesServed.Add(int64(len(p)))
				return p, true
			}
			c.corrupt.Add(1)
		}
	}
	if c.remote != nil {
		// The fleet tier: another daemon may have compiled this first.
		// Remote.Get returns only validated frames and degrades every
		// failure to a miss internally; a hit is promoted into memory
		// (and disk, for cross-restart warmth) like a disk hit is.
		if blob, ok := c.remote.Get(k); ok {
			if p, valid := Open(blob); valid {
				c.policy.Lock()
				c.insertLocked(k, blob)
				c.policy.Unlock()
				if c.dir != "" {
					c.writeFile(k, blob)
				}
				c.hits.Add(1)
				c.remoteHits.Add(1)
				c.bytesServed.Add(int64(len(p)))
				return p, true
			}
			c.corrupt.Add(1)
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores payload under k, sealing it into the checksummed frame and
// persisting it to the backing directory when one is configured. A re-Put
// of identical bytes (content addressing makes that the common case) is
// skipped; a differing entry — a corrupt or version-skewed blob the
// caller just recompiled past — is overwritten, which is what heals it.
// Disk write failures are deliberately swallowed: the cache is an
// accelerator, never a correctness dependency.
func (c *Cache) Put(k Key, payload []byte) {
	blob := Seal(payload)
	sh := c.shardOf(k)
	// Identical-bytes skip under the shard read lock only: on warm builds
	// every re-Put takes this exit, so the common case never touches the
	// policy mutex. A racing non-identical Put just falls through to
	// insertLocked, which keeps the key's order slot — no duplicate.
	sh.mu.RLock()
	same := bytes.Equal(sh.mem[k], blob)
	sh.mu.RUnlock()
	if same {
		return
	}
	c.policy.Lock()
	c.insertLocked(k, blob)
	c.policy.Unlock()
	c.bytesStored.Add(int64(len(blob)))
	if c.dir != "" {
		c.writeFile(k, blob)
	}
	if c.remote != nil {
		// Write-through to the fleet: failures are counted and swallowed
		// inside the Remote, and its circuit breaker keeps a dead server
		// from stalling every compile worker on the cold path.
		c.remote.Put(k, blob)
	}
}

// writeFile persists one sealed entry atomically: a unique temp file in
// the same directory, then rename. Concurrent writers of the same key
// race harmlessly — both rename identical bytes.
func (c *Cache) writeFile(k Key, blob []byte) {
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(k)); err != nil {
		os.Remove(name)
	}
}

// Len returns the number of entries resident in memory.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Entries:     c.Len(),
		MemBytes:    c.memBytes.Load(),
		Evicted:     c.evicted.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		DiskHits:    c.diskHits.Load(),
		RemoteHits:  c.remoteHits.Load(),
		Corrupt:     c.corrupt.Load(),
		BytesStored: c.bytesStored.Load(),
		BytesServed: c.bytesServed.Load(),
	}
}
