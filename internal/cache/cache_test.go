package cache_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/par"
)

// key derives a distinct Key from an integer.
func key(i int) cache.Key {
	h := cache.NewHasher("cache-test")
	h.Int(int64(i))
	return h.Sum()
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)} {
		blob := cache.Seal(payload)
		got, ok := cache.Open(blob)
		if !ok {
			t.Fatalf("sealed %d-byte payload does not open", len(payload))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload did not round-trip: %v != %v", got, payload)
		}
	}
}

// TestOpenRejectsDamage flips, truncates, and extends a sealed frame and
// checks every damaged variant reads as a miss.
func TestOpenRejectsDamage(t *testing.T) {
	blob := cache.Seal([]byte("the compiled method payload"))
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, ok := cache.Open(bad); ok {
			t.Fatalf("bit flip at byte %d still opens", i)
		}
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, ok := cache.Open(blob[:cut]); ok {
			t.Fatalf("truncation to %d bytes still opens", cut)
		}
	}
	if _, ok := cache.Open(append(append([]byte(nil), blob...), 0)); ok {
		t.Fatal("trailing byte still opens")
	}
}

func TestMemoryGetPut(t *testing.T) {
	c := cache.New()
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(key(1), []byte("one"))
	got, ok := c.Get(key(1))
	if !ok || string(got) != "one" {
		t.Fatalf("Get after Put: %q, %v", got, ok)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("wrong key hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 || s.DiskHits != 0 {
		t.Errorf("stats: %+v", s)
	}
	if s.BytesStored == 0 || s.BytesServed != 3 {
		t.Errorf("byte accounting: %+v", s)
	}
}

// TestDiskWarmStart stores through one cache instance and reads through a
// fresh one over the same directory — the cross-process warm start.
func TestDiskWarmStart(t *testing.T) {
	dir := t.TempDir()
	c1, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key(7), []byte("persisted"))

	c2, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key(7))
	if !ok || string(got) != "persisted" {
		t.Fatalf("disk read-through: %q, %v", got, ok)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 1 {
		t.Errorf("stats after disk hit: %+v", s)
	}
	// Second Get is served from memory after promotion.
	if _, ok := c2.Get(key(7)); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 2 {
		t.Errorf("stats after promoted hit: %+v", s)
	}
}

// TestCorruptDiskEntryIsMiss damages every persisted file in place; reads
// must degrade to misses (counted as corrupt), and a subsequent Put must
// heal the entry.
func TestCorruptDiskEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c1, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key(3), []byte("will be damaged"))

	files, err := filepath.Glob(filepath.Join(dir, "*.cce"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one entry file, got %v (%v)", files, err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(files[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key(3)); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if s := c2.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Errorf("stats after corrupt read: %+v", s)
	}
	// The recompile path Puts the good bytes back; both tiers heal.
	c2.Put(key(3), []byte("healed"))
	if got, ok := c2.Get(key(3)); !ok || string(got) != "healed" {
		t.Fatalf("entry did not heal: %q, %v", got, ok)
	}
	c3, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c3.Get(key(3)); !ok || string(got) != "healed" {
		t.Fatalf("disk did not heal: %q, %v", got, ok)
	}
}

// TestVersionSkewIsMiss fabricates an entry file with a bumped frame
// version; it must read as a miss, not an error.
func TestVersionSkewIsMiss(t *testing.T) {
	dir := t.TempDir()
	c1, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key(9), []byte("current"))
	files, _ := filepath.Glob(filepath.Join(dir, "*.cce"))
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Byte 4 is the low byte of the little-endian version word. The
	// checksum covers it, so recompute nothing: a skewed version must be
	// rejected before (and regardless of) the checksum.
	blob[4]++
	if err := os.WriteFile(files[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key(9)); ok {
		t.Fatal("version-skewed entry served as a hit")
	}
}

// TestCacheRace hammers one cache from par.Map workers with mixed hits
// and misses on overlapping keys — the access pattern a parallel compile
// stage produces. Run under `make race`, this is the pool-contention
// regression test; the assertions also pin that every Get returns either
// nothing or exactly the bytes some Put stored.
func TestCacheRace(t *testing.T) {
	dir := t.TempDir()
	c, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 400
	const distinct = 37 // tasks per key > pool width: plenty of hit/miss races
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 16+i%32)
	}
	err = par.Each(8, tasks, func(i int) error {
		k := i % distinct
		if got, ok := c.Get(key(k)); ok {
			if !bytes.Equal(got, payload(k)) {
				t.Errorf("task %d read foreign bytes for key %d", i, k)
			}
			return nil
		}
		c.Put(key(k), payload(k))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != distinct {
		t.Errorf("cache holds %d entries, want %d", c.Len(), distinct)
	}
	s := c.Stats()
	if s.Hits+s.Misses != tasks {
		t.Errorf("hits %d + misses %d != %d tasks", s.Hits, s.Misses, tasks)
	}
	if s.Hits == 0 || s.Misses < distinct {
		t.Errorf("implausible mix: %+v", s)
	}
	// Every key must be readable afterwards, from memory and from disk.
	c2, err := cache.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < distinct; k++ {
		for _, cc := range []*cache.Cache{c, c2} {
			if got, ok := cc.Get(key(k)); !ok || !bytes.Equal(got, payload(k)) {
				t.Fatalf("key %d unreadable after the race (ok=%v)", k, ok)
			}
		}
	}
}
