// Package cacheserver is the store half of the fleet cache protocol:
// an HTTP front end over one content-addressed cache.Cache (typically
// disk-backed) that N calibrod daemons share as their remote tier. It
// speaks the protocol internal/cache's Remote client consumes:
//
//	GET    /v1/entries/{key}   fetch a sealed CCE1 frame (404 on miss;
//	                           ?wait=5s long-polls until a Put lands)
//	PUT    /v1/entries/{key}   store a sealed frame (frame validated
//	                           server-side; invalid bodies answer 400)
//	POST   /v1/claims/{key}    single-flight election: first claimant
//	                           per key wins until a Put fulfils the
//	                           claim or its TTL expires
//	GET    /healthz            liveness + entry count
//	GET    /metrics            counters (?format=prom for Prometheus)
//
// Every request and response carries the protocol version in the
// X-Calibro-Cache-Proto header. A request naming a different version is
// refused with 400 before it can touch the store — the handshake half of
// the client's degrade-to-miss contract (the client's half is distrusting
// responses without its own version).
//
// Checksums are verified on both ends: a PUT body must open as a valid
// sealed frame or it is rejected, and a GET re-seals the store's payload
// so what goes on the wire is always a freshly framed, CRC-covered blob.
// The store itself already treats corrupt disk entries as misses, so a
// bit flipped at rest surfaces as a 404 here, never as a poisoned 200.
package cacheserver

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Config parameterizes the server. Store is required.
type Config struct {
	// Store holds the entries; share one disk-backed cache.Cache across
	// restarts. The store must not itself have a remote tier attached
	// (the server is the remote tier).
	Store *cache.Cache
	// ClaimTTL bounds how long a single-flight claim stays won without
	// being fulfilled by a Put: past it, the next claimant wins — the
	// crashed-winner escape hatch. Default 1 minute.
	ClaimTTL time.Duration
	// MaxBody bounds a PUT body in bytes. Default 256 MiB.
	MaxBody int64
	// MaxWait clamps the ?wait long-poll window. Default 30s.
	MaxWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.ClaimTTL <= 0 {
		c.ClaimTTL = time.Minute
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 256 << 20
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	return c
}

// waitEntry is the broadcast a long-polling GET parks on: Put closes ch,
// waking every waiter for the key at once.
type waitEntry struct {
	ch   chan struct{}
	refs int
}

// Server handles the fleet cache protocol over one store. Create with
// New; every method is safe for concurrent use.
type Server struct {
	cfg   Config
	store *cache.Cache

	mu      sync.Mutex
	claims  map[cache.Key]time.Time // claim key -> expiry
	waiters map[cache.Key]*waitEntry

	gets, getHits, getMisses        atomic.Int64
	puts, putRejected               atomic.Int64
	claimsWon, claimsLost           atomic.Int64
	waitHits, waitTimeouts          atomic.Int64
	protoSkew, badKeys              atomic.Int64
}

// New returns a Server over cfg.Store.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		store:   cfg.Store,
		claims:  map[cache.Key]time.Time{},
		waiters: map[cache.Key]*waitEntry{},
	}
}

// Store returns the backing cache, for the daemon's stats surfaces.
func (s *Server) Store() *cache.Cache { return s.store }

// Handler returns the protocol's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+cache.RemoteEntriesPath+"{key}", s.handleGet)
	mux.HandleFunc("PUT "+cache.RemoteEntriesPath+"{key}", s.handlePut)
	mux.HandleFunc("POST "+cache.RemoteClaimsPath+"{key}", s.handleClaim)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.versioned(mux)
}

// versioned is the handshake middleware: every response carries the
// protocol version, and a request naming a different version is refused
// before any handler sees it. Requests without the header are allowed —
// curl and scrapers remain first-class citizens; the frame checks
// protect the data path regardless.
func (s *Server) versioned(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cache.RemoteProtoHeader, cache.RemoteProtoVersion)
		if v := r.Header.Get(cache.RemoteProtoHeader); v != "" && v != cache.RemoteProtoVersion {
			s.protoSkew.Add(1)
			writeError(w, http.StatusBadRequest,
				"protocol version "+v+" unsupported; this server speaks "+cache.RemoteProtoVersion)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}

// keyFromPath parses the {key} path segment, answering the 400 itself.
func (s *Server) keyFromPath(w http.ResponseWriter, r *http.Request) (cache.Key, bool) {
	k, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.badKeys.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return k, false
	}
	return k, true
}

// addWaiter registers interest in k, returning the broadcast entry.
func (s *Server) addWaiter(k cache.Key) *waitEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.waiters[k]
	if e == nil {
		e = &waitEntry{ch: make(chan struct{})}
		s.waiters[k] = e
	}
	e.refs++
	return e
}

// dropWaiter releases one registration, deleting the entry when the last
// waiter leaves without a wake (a woken entry was already deleted).
func (s *Server) dropWaiter(k cache.Key, e *waitEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.refs--
	if e.refs <= 0 && s.waiters[k] == e {
		delete(s.waiters, k)
	}
}

// fulfil wakes every long-poller for k and releases its claim — the
// moment a Put lands, losers stop waiting and future claimants are told
// the artifact is ready.
func (s *Server) fulfil(k cache.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.claims, k)
	if e := s.waiters[k]; e != nil {
		close(e.ch)
		delete(s.waiters, k)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	k, ok := s.keyFromPath(w, r)
	if !ok {
		return
	}
	s.gets.Add(1)
	payload, found := s.store.Get(k)
	if !found {
		if wq := r.URL.Query().Get("wait"); wq != "" {
			d, err := time.ParseDuration(wq)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad wait duration: "+err.Error())
				return
			}
			if d > s.cfg.MaxWait {
				d = s.cfg.MaxWait
			}
			payload, found = s.waitFor(r, k, d)
		}
	}
	if !found {
		s.getMisses.Add(1)
		writeError(w, http.StatusNotFound, "no entry "+k.String())
		return
	}
	s.getHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(cache.Seal(payload)) //nolint:errcheck // client disconnects are not server errors
}

// waitFor parks the request until a Put for k lands, the window closes,
// or the client goes away. The entry is re-read after the wake so the
// bytes served are always the store's, never a message payload.
func (s *Server) waitFor(r *http.Request, k cache.Key, d time.Duration) ([]byte, bool) {
	e := s.addWaiter(k)
	defer s.dropWaiter(k, e)
	// Re-check after registering: a Put between the miss and the
	// registration closed nobody's channel.
	if payload, ok := s.store.Get(k); ok {
		return payload, true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-e.ch:
		if payload, ok := s.store.Get(k); ok {
			s.waitHits.Add(1)
			return payload, true
		}
		return nil, false
	case <-t.C:
		s.waitTimeouts.Add(1)
		return nil, false
	case <-r.Context().Done():
		return nil, false
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	k, ok := s.keyFromPath(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		s.putRejected.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "entry over limit: "+err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "reading entry: "+err.Error())
		return
	}
	payload, valid := cache.Open(body)
	if !valid {
		// Checksum verified server-side: a truncated, flipped, or
		// version-skewed frame never enters the store.
		s.putRejected.Add(1)
		writeError(w, http.StatusBadRequest, "body is not a valid sealed frame")
		return
	}
	s.store.Put(k, payload)
	s.puts.Add(1)
	s.fulfil(k)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	k, ok := s.keyFromPath(w, r)
	if !ok {
		return
	}
	res := s.claim(k, time.Now())
	if res.Winner {
		s.claimsWon.Add(1)
	} else {
		s.claimsLost.Add(1)
	}
	writeJSON(w, http.StatusOK, res)
}

// claim runs one election at the given instant. An existing entry means
// nobody should build (ready); an unexpired claim means someone already
// is (lose); otherwise the caller wins and holds the claim until a Put
// fulfils it or the TTL expires.
func (s *Server) claim(k cache.Key, now time.Time) cache.ClaimResult {
	if s.store.Contains(k) {
		return cache.ClaimResult{Winner: false, Ready: true}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if exp, held := s.claims[k]; held && now.Before(exp) {
		return cache.ClaimResult{Winner: false}
	}
	// Keep the table bounded no matter how many claims are abandoned:
	// sweep expired claims once it grows past a small multiple of any
	// sane in-flight count.
	if len(s.claims) > 4096 {
		for ck, exp := range s.claims {
			if now.After(exp) {
				delete(s.claims, ck)
			}
		}
	}
	s.claims[k] = now.Add(s.cfg.ClaimTTL)
	return cache.ClaimResult{Winner: true}
}

// Health is the /healthz body.
type Health struct {
	Status  string `json:"status"`
	Entries int    `json:"entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{Status: "ok", Entries: s.store.Len()})
}

// Metrics is the /metrics JSON body: the server's own protocol counters
// plus the backing store's accounting.
type Metrics struct {
	Gets         int64        `json:"gets"`
	GetHits      int64        `json:"get_hits"`
	GetMisses    int64        `json:"get_misses"`
	Puts         int64        `json:"puts"`
	PutsRejected int64        `json:"puts_rejected"`
	ClaimsWon    int64        `json:"claims_won"`
	ClaimsLost   int64        `json:"claims_lost"`
	WaitHits     int64        `json:"wait_hits"`
	WaitTimeouts int64        `json:"wait_timeouts"`
	ProtoSkew    int64        `json:"proto_skew"`
	BadKeys      int64        `json:"bad_keys"`
	ClaimsOpen   int          `json:"claims_open"`
	Store        cache.Stats  `json:"store"`
}

// Metrics snapshots the server.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	open := len(s.claims)
	s.mu.Unlock()
	return Metrics{
		Gets:         s.gets.Load(),
		GetHits:      s.getHits.Load(),
		GetMisses:    s.getMisses.Load(),
		Puts:         s.puts.Load(),
		PutsRejected: s.putRejected.Load(),
		ClaimsWon:    s.claimsWon.Load(),
		ClaimsLost:   s.claimsLost.Load(),
		WaitHits:     s.waitHits.Load(),
		WaitTimeouts: s.waitTimeouts.Load(),
		ProtoSkew:    s.protoSkew.Load(),
		BadKeys:      s.badKeys.Load(),
		ClaimsOpen:   open,
		Store:        s.store.Stats(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.Metrics())
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w) //nolint:errcheck // response committed
	default:
		writeError(w, http.StatusBadRequest, "unknown metrics format "+format)
	}
}

// WritePrometheus renders the server's counters in the text exposition
// format. Families appear in a fixed order and carry only counters and
// gauges, so the document is deterministic for a deterministic request
// history — the property the golden test pins.
func (s *Server) WritePrometheus(w io.Writer) error {
	m := s.Metrics()
	p := obs.NewPromWriter(w)

	p.Family("calibrocached_entries", "gauge", "Entries resident in the store's memory tier.")
	p.Sample("", nil, float64(m.Store.Entries))
	p.Family("calibrocached_store_bytes", "gauge", "Sealed bytes resident in the store's memory tier.")
	p.Sample("", nil, float64(m.Store.MemBytes))
	p.Family("calibrocached_claims_open", "gauge", "Unfulfilled single-flight claims held right now.")
	p.Sample("", nil, float64(m.ClaimsOpen))

	p.Family("calibrocached_gets_total", "counter", "Entry fetches by result.")
	p.Sample("", []obs.Label{{Key: "result", Value: "hit"}}, float64(m.GetHits))
	p.Sample("", []obs.Label{{Key: "result", Value: "miss"}}, float64(m.GetMisses))
	p.Family("calibrocached_puts_total", "counter", "Entries accepted into the store.")
	p.Sample("", nil, float64(m.Puts))
	p.Family("calibrocached_puts_rejected_total", "counter", "PUT bodies refused by the frame check.")
	p.Sample("", nil, float64(m.PutsRejected))
	p.Family("calibrocached_claims_total", "counter", "Single-flight elections by result.")
	p.Sample("", []obs.Label{{Key: "result", Value: "won"}}, float64(m.ClaimsWon))
	p.Sample("", []obs.Label{{Key: "result", Value: "lost"}}, float64(m.ClaimsLost))
	p.Family("calibrocached_waits_total", "counter", "Long-poll GETs by outcome.")
	p.Sample("", []obs.Label{{Key: "result", Value: "hit"}}, float64(m.WaitHits))
	p.Sample("", []obs.Label{{Key: "result", Value: "timeout"}}, float64(m.WaitTimeouts))
	p.Family("calibrocached_proto_skew_total", "counter", "Requests refused for speaking another protocol version.")
	p.Sample("", nil, float64(m.ProtoSkew))
	p.Family("calibrocached_bad_keys_total", "counter", "Requests with malformed content addresses.")
	p.Sample("", nil, float64(m.BadKeys))

	p.Family("calibrocached_store_hits_total", "counter", "Store lookups served (memory or disk).")
	p.Sample("", nil, float64(m.Store.Hits))
	p.Family("calibrocached_store_misses_total", "counter", "Store lookups that found nothing.")
	p.Sample("", nil, float64(m.Store.Misses))
	p.Family("calibrocached_store_corrupt_total", "counter", "Store entries rejected by the frame check.")
	p.Sample("", nil, float64(m.Store.Corrupt))
	p.Family("calibrocached_store_evicted_total", "counter", "Store entries evicted by the memory bound.")
	p.Sample("", nil, float64(m.Store.Evicted))
	return p.Err()
}
