package cacheserver_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/cacheserver"
)

func newServer(t *testing.T, cfg cacheserver.Config) (*cacheserver.Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = cache.New()
	}
	s := cacheserver.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func key(s string) cache.Key {
	h := cache.NewHasher("test/cacheserver/v1")
	h.Str(s)
	return h.Sum()
}

func doReq(t *testing.T, method, url string, body []byte, proto string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if proto != "" {
		req.Header.Set(cache.RemoteProtoHeader, proto)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEntryPutGetRoundTrip(t *testing.T) {
	_, ts := newServer(t, cacheserver.Config{})
	k := key("roundtrip")
	payload := []byte("artifact bytes")
	sealed := cache.Seal(payload)

	resp := doReq(t, http.MethodPut, ts.URL+cache.RemoteEntriesPath+k.String(), sealed, cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	resp = doReq(t, http.MethodGet, ts.URL+cache.RemoteEntriesPath+k.String(), nil, cache.RemoteProtoVersion)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if v := resp.Header.Get(cache.RemoteProtoHeader); v != cache.RemoteProtoVersion {
		t.Fatalf("response proto = %q", v)
	}
	body, _ := io.ReadAll(resp.Body)
	got, ok := cache.Open(body)
	if !ok {
		t.Fatal("served frame does not validate")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestEntryRejections(t *testing.T) {
	_, ts := newServer(t, cacheserver.Config{})
	k := key("rejections")

	// Missing entry: clean 404.
	resp := doReq(t, http.MethodGet, ts.URL+cache.RemoteEntriesPath+k.String(), nil, cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing entry GET status = %d, want 404", resp.StatusCode)
	}

	// Invalid frame: the server-side checksum check refuses storage.
	resp = doReq(t, http.MethodPut, ts.URL+cache.RemoteEntriesPath+k.String(), []byte("not a frame"), cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT status = %d, want 400", resp.StatusCode)
	}

	// Corrupted real frame: same refusal.
	sealed := cache.Seal([]byte("payload"))
	sealed[len(sealed)/2] ^= 0x01
	resp = doReq(t, http.MethodPut, ts.URL+cache.RemoteEntriesPath+k.String(), sealed, cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT status = %d, want 400", resp.StatusCode)
	}

	// Malformed key.
	resp = doReq(t, http.MethodGet, ts.URL+cache.RemoteEntriesPath+"nothex", nil, cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key GET status = %d, want 400", resp.StatusCode)
	}

	// Version skew: refused before touching the store.
	resp = doReq(t, http.MethodGet, ts.URL+cache.RemoteEntriesPath+k.String(), nil, "999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("skewed GET status = %d, want 400", resp.StatusCode)
	}
}

func TestPutBodyBound(t *testing.T) {
	_, ts := newServer(t, cacheserver.Config{MaxBody: 1024})
	k := key("oversize")
	sealed := cache.Seal(bytes.Repeat([]byte{0xAB}, 4096))
	resp := doReq(t, http.MethodPut, ts.URL+cache.RemoteEntriesPath+k.String(), sealed, cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize PUT status = %d, want 413", resp.StatusCode)
	}
}

func TestClaimElectionAndTTL(t *testing.T) {
	_, ts := newServer(t, cacheserver.Config{ClaimTTL: 150 * time.Millisecond})
	k := key("claim-ttl")
	claim := func() cache.ClaimResult {
		resp := doReq(t, http.MethodPost, ts.URL+cache.RemoteClaimsPath+k.String(), nil, cache.RemoteProtoVersion)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("claim status = %d", resp.StatusCode)
		}
		var res cache.ClaimResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := claim(); !res.Winner {
		t.Fatalf("first claim = %+v, want winner", res)
	}
	if res := claim(); res.Winner {
		t.Fatalf("concurrent claim = %+v, want loser", res)
	}
	// The winner crashed: past the TTL the claim frees up and the next
	// claimant wins instead of the key being wedged forever.
	time.Sleep(200 * time.Millisecond)
	if res := claim(); !res.Winner {
		t.Fatalf("post-TTL claim = %+v, want winner", res)
	}
}

func TestLongPollWakesOnPut(t *testing.T) {
	_, ts := newServer(t, cacheserver.Config{})
	k := key("longpoll")
	sealed := cache.Seal([]byte("published later"))

	done := make(chan []byte, 1)
	go func() {
		resp := doReq(t, http.MethodGet, ts.URL+cache.RemoteEntriesPath+k.String()+"?wait=10s", nil, cache.RemoteProtoVersion)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- nil
			return
		}
		body, _ := io.ReadAll(resp.Body)
		done <- body
	}()

	time.Sleep(100 * time.Millisecond) // let the poller park
	resp := doReq(t, http.MethodPut, ts.URL+cache.RemoteEntriesPath+k.String(), sealed, cache.RemoteProtoVersion)
	resp.Body.Close()

	select {
	case body := <-done:
		if body == nil {
			t.Fatal("long-poll did not serve the published entry")
		}
		if !bytes.Equal(body, sealed) {
			t.Fatal("long-poll served different bytes than published")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke")
	}
}

func TestLongPollTimesOutClean(t *testing.T) {
	_, ts := newServer(t, cacheserver.Config{})
	k := key("longpoll-timeout")
	start := time.Now()
	resp := doReq(t, http.MethodGet, ts.URL+cache.RemoteEntriesPath+k.String()+"?wait=200ms", nil, cache.RemoteProtoVersion)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("timed-out long-poll status = %d, want 404", resp.StatusCode)
	}
	if el := time.Since(start); el < 150*time.Millisecond || el > 5*time.Second {
		t.Fatalf("long-poll window not honored: %s", el)
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newServer(t, cacheserver.Config{})
	s.Store().Put(key("h"), []byte("x"))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h cacheserver.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Entries != 1 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestPrometheusGolden pins the exact exposition document after a fixed
// request history. The server's families are all counters and gauges
// with deterministic values, so the whole document — names, types,
// labels, values, ordering — is asserted byte-for-byte; any drift in
// the metrics surface fails loudly here.
func TestPrometheusGolden(t *testing.T) {
	s, ts := newServer(t, cacheserver.Config{})
	k := key("golden")
	payload := []byte("golden payload")
	sealed := cache.Seal(payload)

	// Fixed history: one rejected PUT, one accepted, one miss, one hit,
	// one claim won, one lost, one skewed request, one bad key.
	for _, step := range []struct {
		method, path string
		body         []byte
		proto        string
	}{
		{http.MethodPut, cache.RemoteEntriesPath + k.String(), []byte("junk"), cache.RemoteProtoVersion},
		{http.MethodGet, cache.RemoteEntriesPath + k.String(), nil, cache.RemoteProtoVersion},
		{http.MethodPut, cache.RemoteEntriesPath + k.String(), sealed, cache.RemoteProtoVersion},
		{http.MethodGet, cache.RemoteEntriesPath + k.String(), nil, cache.RemoteProtoVersion},
		{http.MethodPost, cache.RemoteClaimsPath + key("unbuilt").String(), nil, cache.RemoteProtoVersion},
		{http.MethodPost, cache.RemoteClaimsPath + key("unbuilt").String(), nil, cache.RemoteProtoVersion},
		{http.MethodGet, cache.RemoteEntriesPath + k.String(), nil, "999"},
		{http.MethodGet, cache.RemoteEntriesPath + "zzz", nil, cache.RemoteProtoVersion},
	} {
		resp := doReq(t, step.method, ts.URL+step.path, step.body, step.proto)
		resp.Body.Close()
	}

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP calibrocached_entries Entries resident in the store's memory tier.",
		"# TYPE calibrocached_entries gauge",
		"calibrocached_entries 1",
		"# HELP calibrocached_store_bytes Sealed bytes resident in the store's memory tier.",
		"# TYPE calibrocached_store_bytes gauge",
		"calibrocached_store_bytes 30",
		"# HELP calibrocached_claims_open Unfulfilled single-flight claims held right now.",
		"# TYPE calibrocached_claims_open gauge",
		"calibrocached_claims_open 1",
		"# HELP calibrocached_gets_total Entry fetches by result.",
		"# TYPE calibrocached_gets_total counter",
		`calibrocached_gets_total{result="hit"} 1`,
		`calibrocached_gets_total{result="miss"} 1`,
		"# HELP calibrocached_puts_total Entries accepted into the store.",
		"# TYPE calibrocached_puts_total counter",
		"calibrocached_puts_total 1",
		"# HELP calibrocached_puts_rejected_total PUT bodies refused by the frame check.",
		"# TYPE calibrocached_puts_rejected_total counter",
		"calibrocached_puts_rejected_total 1",
		"# HELP calibrocached_claims_total Single-flight elections by result.",
		"# TYPE calibrocached_claims_total counter",
		`calibrocached_claims_total{result="won"} 1`,
		`calibrocached_claims_total{result="lost"} 1`,
		"# HELP calibrocached_waits_total Long-poll GETs by outcome.",
		"# TYPE calibrocached_waits_total counter",
		`calibrocached_waits_total{result="hit"} 0`,
		`calibrocached_waits_total{result="timeout"} 0`,
		"# HELP calibrocached_proto_skew_total Requests refused for speaking another protocol version.",
		"# TYPE calibrocached_proto_skew_total counter",
		"calibrocached_proto_skew_total 1",
		"# HELP calibrocached_bad_keys_total Requests with malformed content addresses.",
		"# TYPE calibrocached_bad_keys_total counter",
		"calibrocached_bad_keys_total 1",
		"# HELP calibrocached_store_hits_total Store lookups served (memory or disk).",
		"# TYPE calibrocached_store_hits_total counter",
		"calibrocached_store_hits_total 1",
		"# HELP calibrocached_store_misses_total Store lookups that found nothing.",
		"# TYPE calibrocached_store_misses_total counter",
		"calibrocached_store_misses_total 1",
		"# HELP calibrocached_store_corrupt_total Store entries rejected by the frame check.",
		"# TYPE calibrocached_store_corrupt_total counter",
		"calibrocached_store_corrupt_total 0",
		"# HELP calibrocached_store_evicted_total Store entries evicted by the memory bound.",
		"# TYPE calibrocached_store_evicted_total counter",
		"calibrocached_store_evicted_total 0",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The HTTP surface serves the same document.
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != want {
		t.Fatal("/metrics?format=prom differs from WritePrometheus")
	}
}
