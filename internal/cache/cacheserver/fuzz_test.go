package cacheserver_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cache/cacheserver"
)

// FuzzRemoteRequest fuzzes the server half of the wire codec: arbitrary
// method/path/body/version combinations must never panic a handler, and
// the store behind the server must only ever accept bodies that validate
// as sealed frames — a hostile or confused client cannot poison the
// fleet's shared artifacts. Requests run through httptest.NewRecorder,
// so the loop needs no sockets.
func FuzzRemoteRequest(f *testing.F) {
	validKey := func(s string) string {
		h := cache.NewHasher("fuzz/request/v1")
		h.Str(s)
		return h.Sum().String()
	}
	sealed := cache.Seal([]byte("fuzz artifact payload"))
	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)/2] ^= 0x10

	k := validKey("seed")
	f.Add("PUT", cache.RemoteEntriesPath+k, sealed, cache.RemoteProtoVersion)
	f.Add("PUT", cache.RemoteEntriesPath+k, flipped, cache.RemoteProtoVersion)
	f.Add("PUT", cache.RemoteEntriesPath+k, sealed[:len(sealed)-3], cache.RemoteProtoVersion)
	f.Add("GET", cache.RemoteEntriesPath+k, []byte{}, cache.RemoteProtoVersion)
	f.Add("GET", cache.RemoteEntriesPath+k+"?wait=1ms", []byte{}, cache.RemoteProtoVersion)
	f.Add("GET", cache.RemoteEntriesPath+k+"?wait=bogus", []byte{}, cache.RemoteProtoVersion)
	f.Add("POST", cache.RemoteClaimsPath+k, []byte{}, cache.RemoteProtoVersion)
	f.Add("GET", cache.RemoteEntriesPath+"not-a-key", []byte{}, cache.RemoteProtoVersion)
	f.Add("GET", cache.RemoteEntriesPath+strings.Repeat("0", 64), []byte{}, "999")
	f.Add("DELETE", cache.RemoteEntriesPath+k, []byte{}, cache.RemoteProtoVersion)
	f.Add("GET", "/metrics?format=prom", []byte{}, "")
	f.Add("GET", "/healthz", []byte{}, "")
	f.Add("PUT", "/v1/entries/", sealed, cache.RemoteProtoVersion)

	f.Fuzz(func(t *testing.T, method, path string, body []byte, proto string) {
		store := cache.New()
		s := cacheserver.New(cacheserver.Config{Store: store, MaxBody: 1 << 20})
		handler := s.Handler()

		if !strings.HasPrefix(path, "/") {
			path = "/" + path
		}
		req, err := http.NewRequest(method, path, bytes.NewReader(body))
		if err != nil {
			return // not expressible as an HTTP request at all
		}
		if proto != "" {
			req.Header.Set(cache.RemoteProtoHeader, proto)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic

		// Whatever happened, nothing invalid entered the store: every
		// resident entry still opens. (Get revalidates; a poisoned entry
		// would surface as corrupt.)
		if st := store.Stats(); st.Corrupt != 0 {
			t.Fatalf("request %s %s stored a corrupt entry", method, path)
		}
		// A 2xx PUT means the body was accepted — it must have been a
		// valid frame.
		if method == http.MethodPut && rec.Code >= 200 && rec.Code < 300 {
			if _, ok := cache.Open(body); !ok {
				t.Fatalf("PUT of invalid frame accepted with %d", rec.Code)
			}
		}
	})
}
