// Package cachetest provides the fault-injection harness the remote-tier
// and fleet tests share: a real cacheserver wrapped in a proxy that can
// drop connections, stall, answer 500s, truncate or corrupt frames, and
// skew the protocol version — every failure mode the degrade-to-miss
// contract promises to absorb, switchable at runtime so one test can
// cycle a server through healthy, each fault, and healed.
//
// The harness is deliberately a *wrapper around the real server*, not a
// mock: requests that pass through hit genuine cacheserver handlers, so
// the faults are injected on top of true protocol behavior rather than a
// parallel implementation that could drift.
package cachetest

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/cacheserver"
)

// Fault selects the flaky server's current failure mode.
type Fault int32

const (
	// FaultNone passes requests through to the real server.
	FaultNone Fault = iota
	// FaultDrop kills the TCP connection without an HTTP response — the
	// client sees a transport error.
	FaultDrop
	// FaultDelay stalls Delay before answering, to trip client deadlines.
	FaultDelay
	// Fault500 answers 500 without consulting the server.
	Fault500
	// FaultTruncate serves the real response cut off mid-body, so frames
	// fail the client's length/checksum validation.
	FaultTruncate
	// FaultCorrupt serves the real response with one payload byte
	// flipped, so frames fail the client's checksum.
	FaultCorrupt
	// FaultSkew serves the real response under a different protocol
	// version header — a mixed-version fleet.
	FaultSkew
)

// Flaky is a cacheserver behind a switchable fault injector. Create with
// NewFlaky; flip modes with SetFault at any time, concurrently with
// traffic.
type Flaky struct {
	// Server is the real store behind the faults, for direct assertions
	// on its state.
	Server *cacheserver.Server

	mode     atomic.Int32
	delay    atomic.Int64 // nanoseconds, for FaultDelay
	requests atomic.Int64 // all requests, faulted or not
	faulted  atomic.Int64 // requests a non-None mode touched

	inner http.Handler
}

// NewFlaky wraps a fresh memory-backed cacheserver. claimTTL <= 0 keeps
// the server default.
func NewFlaky(claimTTL time.Duration) *Flaky {
	srv := cacheserver.New(cacheserver.Config{Store: cache.New(), ClaimTTL: claimTTL})
	f := &Flaky{Server: srv, inner: srv.Handler()}
	f.delay.Store(int64(250 * time.Millisecond))
	return f
}

// SetFault switches the active failure mode.
func (f *Flaky) SetFault(m Fault) { f.mode.Store(int32(m)) }

// Fault returns the active failure mode.
func (f *Flaky) Fault() Fault { return Fault(f.mode.Load()) }

// SetDelay sets how long FaultDelay stalls (default 250ms).
func (f *Flaky) SetDelay(d time.Duration) { f.delay.Store(int64(d)) }

// Requests returns how many requests arrived; Faulted how many a fault
// touched.
func (f *Flaky) Requests() int64 { return f.requests.Load() }
func (f *Flaky) Faulted() int64  { return f.faulted.Load() }

// Handler returns the fault-injecting front end.
func (f *Flaky) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.requests.Add(1)
		mode := f.Fault()
		if mode != FaultNone {
			f.faulted.Add(1)
		}
		switch mode {
		case FaultNone:
			f.inner.ServeHTTP(w, r)
		case FaultDrop:
			// Sever the connection with no response at all. Panicking
			// with ErrAbortHandler is net/http's sanctioned way to abort;
			// hijacking closes harder when the connection allows it.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		case FaultDelay:
			time.Sleep(time.Duration(f.delay.Load()))
			f.inner.ServeHTTP(w, r)
		case Fault500:
			http.Error(w, "injected failure", http.StatusInternalServerError)
		case FaultTruncate:
			f.rewrite(w, r, func(body []byte) []byte {
				return body[:len(body)/2]
			})
		case FaultCorrupt:
			f.rewrite(w, r, func(body []byte) []byte {
				if len(body) == 0 {
					return body
				}
				b := append([]byte(nil), body...)
				b[len(b)/2] ^= 0x40
				return b
			})
		case FaultSkew:
			f.rewrite(w, r, nil)
			// rewrite already replayed headers; stamp the skewed version
			// over ours in rewrite via the skew flag below.
		}
	})
}

// rewrite runs the real handler into a recorder, applies mangle to the
// body, and replays the response. A FaultSkew caller passes nil mangle
// and gets the version header replaced instead.
func (f *Flaky) rewrite(w http.ResponseWriter, r *http.Request, mangle func([]byte) []byte) {
	rec := httptest.NewRecorder()
	f.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if mangle != nil {
		body = mangle(body)
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	// Replace, not append: the inner handler already set the real version.
	if mangle == nil {
		w.Header().Set(cache.RemoteProtoHeader, "999")
	}
	w.Header().Del("Content-Length") // body length may have changed
	w.WriteHeader(rec.Code)
	w.Write(body) //nolint:errcheck // client disconnects are fine in tests
}

// Serve starts an httptest server over the flaky handler. The caller
// owns Close (or passes cleanup to t.Cleanup).
func (f *Flaky) Serve() *httptest.Server {
	return httptest.NewServer(f.Handler())
}
