package cache

import (
	"fmt"
	"testing"
)

func evictKey(i int) Key {
	h := NewHasher("evict-test")
	h.Int(int64(i))
	return h.Sum()
}

func TestEvictMaxEntriesOldestFirst(t *testing.T) {
	c := New()
	c.SetLimits(3, 0)
	for i := 0; i < 5; i++ {
		c.Put(evictKey(i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// The two oldest entries are gone, the three newest survive.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(evictKey(i)); ok {
			t.Errorf("entry %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		p, ok := c.Get(evictKey(i))
		if !ok {
			t.Errorf("entry %d evicted, want resident", i)
			continue
		}
		if want := fmt.Sprintf("payload-%d", i); string(p) != want {
			t.Errorf("entry %d payload %q, want %q", i, p, want)
		}
	}
	if st := c.Stats(); st.Evicted != 2 {
		t.Errorf("Evicted = %d, want 2", st.Evicted)
	}
}

func TestEvictMaxBytes(t *testing.T) {
	c := New()
	payload := make([]byte, 100)
	sealed := int64(len(Seal(payload)))
	c.SetLimits(0, 3*sealed)
	for i := 0; i < 10; i++ {
		c.Put(evictKey(i), payload)
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("Entries = %d, want 3 at a %d-byte budget", st.Entries, 3*sealed)
	}
	if st.MemBytes != 3*sealed {
		t.Fatalf("MemBytes = %d, want %d", st.MemBytes, 3*sealed)
	}
	if st.Evicted != 7 {
		t.Fatalf("Evicted = %d, want 7", st.Evicted)
	}
}

// TestEvictOversizedEntry pins the degenerate case: one entry bigger than
// the whole byte budget is dropped immediately rather than wedging the
// tier, and the tier keeps working afterwards.
func TestEvictOversizedEntry(t *testing.T) {
	c := New()
	c.SetLimits(0, 64)
	c.Put(evictKey(0), make([]byte, 1024))
	if got := c.Len(); got != 0 {
		t.Fatalf("oversized entry resident (Len = %d)", got)
	}
	c.Put(evictKey(1), []byte("small"))
	if _, ok := c.Get(evictKey(1)); !ok {
		t.Fatal("small entry missing after the oversized one was dropped")
	}
}

// TestShrinkLimitsEvictsImmediately covers runtime re-configuration:
// tightening the bound drops the oldest entries right away.
func TestShrinkLimitsEvictsImmediately(t *testing.T) {
	c := New()
	for i := 0; i < 8; i++ {
		c.Put(evictKey(i), []byte("x"))
	}
	c.SetLimits(2, 0)
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after shrink, want 2", got)
	}
	if _, ok := c.Get(evictKey(7)); !ok {
		t.Fatal("newest entry evicted; eviction is not oldest-first")
	}
}

// TestEvictDiskBackedRePromotes proves eviction is a memory-tier-only
// policy: a directory-backed cache serves the evicted key from disk and
// re-promotes it.
func TestEvictDiskBackedRePromotes(t *testing.T) {
	c, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetLimits(1, 0)
	c.Put(evictKey(0), []byte("zero"))
	c.Put(evictKey(1), []byte("one")) // evicts key 0 from memory
	p, ok := c.Get(evictKey(0))
	if !ok || string(p) != "zero" {
		t.Fatalf("Get after eviction = %q, %v; want disk re-promotion", p, ok)
	}
	st := c.Stats()
	if st.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1 (re-promotion reads the directory)", st.DiskHits)
	}
	// The re-promotion re-entered the memory tier, evicting key 1.
	if got := c.Len(); got != 1 {
		t.Errorf("Len = %d, want 1 (limit still enforced on promotion)", got)
	}
}

// TestEvictOverwriteKeepsAccounting: overwriting a resident key with a
// different payload must adjust the byte tally, not double-count.
func TestEvictOverwriteKeepsAccounting(t *testing.T) {
	c := New()
	k := evictKey(0)
	c.Put(k, make([]byte, 10))
	c.Put(k, make([]byte, 500))
	want := int64(len(Seal(make([]byte, 500))))
	if st := c.Stats(); st.MemBytes != want || st.Entries != 1 {
		t.Fatalf("after overwrite: MemBytes=%d Entries=%d, want %d and 1", st.MemBytes, st.Entries, want)
	}
}
