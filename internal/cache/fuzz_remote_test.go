package cache_test

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/workload"
)

// cannedTransport makes the Remote client talk to an in-process script
// instead of a socket: every request gets the fuzzer's chosen status,
// protocol header, and body. No TCP, so the fuzz loop runs at memory
// speed.
type cannedTransport struct {
	status int
	proto  string
	body   []byte
}

func (c *cannedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h := http.Header{}
	if c.proto != "" {
		h.Set(cache.RemoteProtoHeader, c.proto)
	}
	return &http.Response{
		StatusCode: c.status,
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader(c.body)),
		Request:    req,
	}, nil
}

// FuzzRemoteFrame fuzzes the client half of the wire codec: whatever
// status/version/body combination a server (or a middlebox, or a
// corrupted disk behind a server) produces, Get must neither panic nor
// return unvalidated bytes. ok implies the blob opens as a genuine CCE1
// frame — the degrade-to-miss contract at the byte level.
func FuzzRemoteFrame(f *testing.F) {
	// Seeds: real compiled-method frames, their flipped variants, and the
	// protocol edge cases.
	app, _, err := workload.Generate(workload.Profile{
		Name: "fuzz", Seed: 23, Methods: 12,
		NativeFrac: 0.1, SwitchFrac: 0.1,
	})
	if err != nil {
		f.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{CTO: true, Optimize: true})
	if err != nil {
		f.Fatal(err)
	}
	for _, cm := range methods[:4] {
		f.Add(200, cache.RemoteProtoVersion, cache.Seal(codegen.EncodeCachedMethod(cm)))
	}
	seed := cache.Seal(codegen.EncodeCachedMethod(methods[0]))
	flip := func(i int) []byte {
		b := append([]byte(nil), seed...)
		b[i%len(b)] ^= 0x20
		return b
	}
	f.Add(200, cache.RemoteProtoVersion, flip(len(seed)/2)) // payload damage
	f.Add(200, cache.RemoteProtoVersion, flip(len(seed)-1)) // checksum damage
	f.Add(200, cache.RemoteProtoVersion, flip(4))           // version damage
	f.Add(200, cache.RemoteProtoVersion, seed[:len(seed)-5])
	f.Add(200, "999", seed)   // version skew with a valid body
	f.Add(404, cache.RemoteProtoVersion, []byte{})
	f.Add(500, cache.RemoteProtoVersion, []byte("internal error"))
	f.Add(200, cache.RemoteProtoVersion, []byte{})
	f.Add(301, "", seed)

	f.Fuzz(func(t *testing.T, status int, proto string, body []byte) {
		if status < 100 || status > 599 {
			return // http.Client rejects these before the codec runs
		}
		r := cache.NewRemote(cache.RemoteConfig{
			URL:    "http://fuzzed.invalid",
			Client: &http.Client{Transport: &cannedTransport{status: status, proto: proto, body: body}},
		})
		k := cache.Key{}
		sealed, ok := r.Get(k)
		if !ok {
			return // degrade to miss: always legal
		}
		// The one illegal outcome: claiming a hit on bytes that do not
		// validate, or on a response that should have been distrusted.
		if status != 200 || proto != cache.RemoteProtoVersion {
			t.Fatalf("Get ok on status=%d proto=%q", status, proto)
		}
		if _, valid := cache.Open(sealed); !valid {
			t.Fatal("Get returned a blob that does not validate")
		}
	})
}
