package cache_test

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/workload"
)

// FuzzCacheEntry drives raw bytes through the full entry path a warm
// build trusts: the store's frame validation (Open) and the compiled-
// method codec (DecodeCachedMethod). The contract mirrors the oat
// fuzzers: whatever the frame check rejects is a miss; whatever it
// accepts must decode without panicking; and whatever decodes must
// re-encode to the exact accepted payload, because the codec is the
// canonical form a byte-identical warm build depends on.
func FuzzCacheEntry(f *testing.F) {
	app, _, err := workload.Generate(workload.Profile{
		Name: "fuzz", Seed: 23, Methods: 20,
		NativeFrac: 0.1, SwitchFrac: 0.1,
	})
	if err != nil {
		f.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{CTO: true, Optimize: true})
	if err != nil {
		f.Fatal(err)
	}
	m0 := app.Methods[0]
	for _, cm := range methods {
		f.Add(cache.Seal(codegen.EncodeCachedMethod(cm)))
	}
	// Targeted damage on one real entry: flipped payload byte, flipped
	// checksum byte, truncation, version skew.
	seed := cache.Seal(codegen.EncodeCachedMethod(methods[0]))
	flip := func(i int) []byte {
		b := append([]byte(nil), seed...)
		b[i] ^= 0x20
		return b
	}
	f.Add(flip(len(seed) / 2))
	f.Add(flip(len(seed) - 1))
	f.Add(flip(4))
	f.Add(seed[:len(seed)-5])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		payload, ok := cache.Open(b)
		if !ok {
			return // a miss: recompile, never an error
		}
		cm, err := codegen.DecodeCachedMethod(m0, payload)
		if err != nil {
			return // version skew or structural defect inside a valid frame: a miss
		}
		back := codegen.EncodeCachedMethod(cm)
		if !bytes.Equal(back, payload) {
			t.Fatalf("decoded entry re-encodes to %d bytes != accepted %d bytes", len(back), len(payload))
		}
		reopened, ok := cache.Open(cache.Seal(back))
		if !ok || !bytes.Equal(reopened, payload) {
			t.Fatal("re-sealed entry does not round-trip")
		}
	})
}
