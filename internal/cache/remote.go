// Remote tier: an HTTP client for a shared content-addressed store
// (cmd/calibrocached), slotted above the memory and disk tiers so N
// daemons on N boxes share one artifact pool — the ShareJIT idea at
// fleet scale, enabled by the context-independent SHA-256 key schema.
//
// The tier's one inviolable rule is strict degrade-to-miss: a remote
// cache can make a build faster, it must never make one fail or hang.
// Every failure mode maps onto "the entry is absent":
//
//   - transport errors and per-request deadline expiry (Config.Timeout
//     bounds every request, so a wedged server costs a bounded wait);
//   - 5xx responses and anything else unexpected;
//   - corrupt frames: every body is revalidated with Open on this side,
//     whatever the server claimed;
//   - version skew: requests and responses carry the protocol version in
//     the X-Calibro-Cache-Proto header, and a peer speaking another
//     version is treated as absent, not as an error to surface.
//
// A flapping or down server is additionally contained by a circuit
// breaker: after Threshold consecutive transport-level failures the tier
// stops issuing requests for Cooldown, then lets a single probe through
// (half-open); only a probe's success closes the breaker. While the
// breaker is open every Get is an instant miss and every Put a no-op, so
// a dead fleet store degrades the hit rate, never the build.
package cache

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Wire protocol, shared with internal/cache/cacheserver. Entries are
// sealed CCE1 frames addressed by their hex key; claims are the
// single-flight election the serving layer uses to coalesce identical
// in-flight builds across daemons.
const (
	// RemoteProtoVersion is the protocol generation. Client and server
	// exchange it in RemoteProtoHeader on every request and response; a
	// mismatch on either side is version skew and reads as a miss.
	RemoteProtoVersion = "1"
	// RemoteProtoHeader carries RemoteProtoVersion both ways.
	RemoteProtoHeader = "X-Calibro-Cache-Proto"
	// RemoteEntriesPath prefixes GET/PUT of sealed frames: the key is the
	// final path element, 64 lower-case hex characters.
	RemoteEntriesPath = "/v1/entries/"
	// RemoteClaimsPath prefixes POST of single-flight claims.
	RemoteClaimsPath = "/v1/claims/"
)

// ClaimResult is the body of a claim response: whether the caller won
// the election, and whether the artifact already exists (in which case
// nobody needs to build at all).
type ClaimResult struct {
	Winner bool `json:"winner"`
	Ready  bool `json:"ready"`
}

// RemoteConfig parameterizes the remote tier. Only URL is required.
type RemoteConfig struct {
	// URL is the cache server's base URL (e.g. http://127.0.0.1:7740).
	URL string
	// Timeout bounds every single request; it is the most a healthy
	// build will ever stall on a wedged server. Default 2s.
	Timeout time.Duration
	// BreakerThreshold is how many consecutive transport failures open
	// the circuit breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the open breaker swallows requests
	// before letting a probe through. Default 5s.
	BreakerCooldown time.Duration
	// Client overrides the HTTP client (tests inject transports here);
	// nil uses a plain client. Per-request deadlines come from Timeout
	// either way.
	Client *http.Client
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// RemoteStats is a point-in-time view of the remote tier's counters.
// Every failure class is counted separately so an operator can tell a
// down server (Errors, BreakerSkips) from a poisoned one (Corrupt) from
// a mixed-version fleet (Skew).
type RemoteStats struct {
	Hits         int64 `json:"hits"`           // entries fetched and validated
	Misses       int64 `json:"misses"`         // clean 404s
	Errors       int64 `json:"errors"`         // transport failures, timeouts, 5xx
	Corrupt      int64 `json:"corrupt"`        // 200s whose frame failed validation
	Skew         int64 `json:"skew"`           // responses speaking another protocol version
	Puts         int64 `json:"puts"`           // entries stored
	PutErrors    int64 `json:"put_errors"`     // stores that failed (swallowed)
	ClaimsWon    int64 `json:"claims_won"`     // single-flight elections won
	ClaimsLost   int64 `json:"claims_lost"`    // elections lost (another daemon builds)
	ClaimErrors  int64 `json:"claim_errors"`   // claim requests that failed
	BreakerOpens int64 `json:"breaker_opens"`  // closed -> open transitions
	BreakerSkips int64 `json:"breaker_skips"`  // requests swallowed while open
}

// breaker is the consecutive-failure circuit breaker. Closed until
// threshold transport failures in a row; then open for cooldown; then
// half-open, admitting one probe whose outcome closes or re-opens it.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int
	openUntil time.Time
	probing   bool
}

// allow reports whether a request may be issued now. When it returns
// true the caller must report the outcome with result exactly once.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if time.Now().Before(b.openUntil) {
		return false
	}
	// Half-open: one probe at a time; concurrent requests keep failing
	// fast until the probe reports back.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// result records a request outcome. Only transport-level failures count
// against the breaker; a clean miss is a healthy server.
func (b *breaker) result(ok bool) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		b.openUntil = time.Time{}
		return false
	}
	b.fails++
	if b.fails >= b.threshold {
		first := b.openUntil.IsZero()
		b.openUntil = time.Now().Add(b.cooldown)
		return first
	}
	return false
}

// Remote is the client half of the shared cache tier. Create with
// NewRemote; every method is safe for concurrent use and never returns
// an error — failures are counted and degrade to misses.
type Remote struct {
	cfg RemoteConfig
	url string // base URL without trailing slash
	br  breaker

	hits, misses, errors, corrupt, skew     atomic.Int64
	puts, putErrors                         atomic.Int64
	claimsWon, claimsLost, claimErrors      atomic.Int64
	breakerOpens, breakerSkips              atomic.Int64
}

// NewRemote returns a remote tier talking to cfg.URL.
func NewRemote(cfg RemoteConfig) *Remote {
	cfg = cfg.withDefaults()
	r := &Remote{cfg: cfg, url: strings.TrimRight(cfg.URL, "/")}
	r.br.threshold = cfg.BreakerThreshold
	r.br.cooldown = cfg.BreakerCooldown
	return r
}

// URL returns the server base URL the tier was configured with.
func (r *Remote) URL() string { return r.url }

// Stats returns a snapshot of the tier's counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Hits:         r.hits.Load(),
		Misses:       r.misses.Load(),
		Errors:       r.errors.Load(),
		Corrupt:      r.corrupt.Load(),
		Skew:         r.skew.Load(),
		Puts:         r.puts.Load(),
		PutErrors:    r.putErrors.Load(),
		ClaimsWon:    r.claimsWon.Load(),
		ClaimsLost:   r.claimsLost.Load(),
		ClaimErrors:  r.claimErrors.Load(),
		BreakerOpens: r.breakerOpens.Load(),
		BreakerSkips: r.breakerSkips.Load(),
	}
}

// allow consults the breaker, counting swallowed requests.
func (r *Remote) allow() bool {
	ok := r.br.allow()
	if !ok {
		r.breakerSkips.Add(1)
	}
	return ok
}

// settle reports a request outcome to the breaker, counting transitions.
func (r *Remote) settle(ok bool) {
	if r.br.result(ok) {
		r.breakerOpens.Add(1)
	}
}

// do issues one bounded request with the protocol header attached and
// classifies the response: transport failures and 5xx are errors (and
// breaker fuel), a response without our protocol version is skew, and
// anything else is handed back for the caller to interpret. The body is
// fully read (bounded) so connections are reused.
func (r *Remote) do(ctx context.Context, method, path string, body io.Reader, maxBody int64) (status int, data []byte, ok bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, method, r.url+path, body)
	if err != nil {
		r.errors.Add(1)
		r.settle(false)
		return 0, nil, false
	}
	req.Header.Set(RemoteProtoHeader, RemoteProtoVersion)
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.errors.Add(1)
		r.settle(false)
		return 0, nil, false
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if rerr != nil {
		r.errors.Add(1)
		r.settle(false)
		return 0, nil, false
	}
	if resp.StatusCode >= 500 {
		r.errors.Add(1)
		r.settle(false)
		return resp.StatusCode, nil, false
	}
	if v := resp.Header.Get(RemoteProtoHeader); v != RemoteProtoVersion {
		// A peer speaking another protocol generation — or not our
		// protocol at all. Not an availability failure: the server
		// answered, so the breaker stays closed, but nothing it says is
		// trusted.
		r.skew.Add(1)
		r.settle(true)
		return resp.StatusCode, nil, false
	}
	r.settle(true)
	return resp.StatusCode, data, true
}

// maxFrame bounds how much of a response body the client will read: the
// largest artifact a job can legitimately produce, with headroom.
const maxFrame = 256 << 20

// entryPath renders the entry route for k.
func entryPath(k Key) string { return RemoteEntriesPath + k.String() }

// Get fetches the sealed frame stored under k. ok means the frame was
// fetched and validated; any failure — breaker open, transport, 5xx,
// 404, corrupt frame, version skew — is a miss.
func (r *Remote) Get(k Key) (sealed []byte, ok bool) {
	return r.get(context.Background(), entryPath(k))
}

func (r *Remote) get(ctx context.Context, path string) (sealed []byte, ok bool) {
	if !r.allow() {
		return nil, false
	}
	status, data, ok := r.do(ctx, http.MethodGet, path, nil, maxFrame)
	if !ok {
		return nil, false
	}
	switch status {
	case http.StatusOK:
		if _, valid := Open(data); !valid {
			r.corrupt.Add(1)
			return nil, false
		}
		r.hits.Add(1)
		return data, true
	case http.StatusNotFound:
		r.misses.Add(1)
		return nil, false
	default:
		r.errors.Add(1)
		return nil, false
	}
}

// GetWait long-polls for the frame under k until it appears, ctx is
// done, or wait elapses — the loser's half of cross-daemon single-
// flight. The poll is chunked so each request stays within the server's
// own long-poll bounds, and every chunk gets Timeout of slack on top for
// transport. Failure semantics match Get: anything wrong is a miss.
func (r *Remote) GetWait(ctx context.Context, k Key, wait time.Duration) (sealed []byte, ok bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := time.Now().Add(wait)
	for {
		remain := time.Until(deadline)
		if remain <= 0 || ctx.Err() != nil {
			return nil, false
		}
		chunk := remain
		if chunk > 2*time.Second {
			chunk = 2 * time.Second
		}
		if !r.allow() {
			return nil, false
		}
		// The chunk's own request needs Timeout + chunk to breathe; a
		// dedicated context widens the per-request bound r.do applies.
		wctx, cancel := context.WithTimeout(ctx, chunk+r.cfg.Timeout)
		status, data, ok := r.doWait(wctx, entryPath(k)+"?wait="+chunk.Round(time.Millisecond).String())
		cancel()
		if !ok {
			return nil, false
		}
		if status == http.StatusOK {
			if _, valid := Open(data); !valid {
				r.corrupt.Add(1)
				return nil, false
			}
			r.hits.Add(1)
			return data, true
		}
		if status != http.StatusNotFound {
			r.errors.Add(1)
			return nil, false
		}
		// Clean 404: the winner has not published yet; poll again.
	}
}

// doWait is do without the per-request Timeout clamp — the caller's
// context already carries the long-poll bound.
func (r *Remote) doWait(ctx context.Context, path string) (status int, data []byte, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+path, nil)
	if err != nil {
		r.errors.Add(1)
		r.settle(false)
		return 0, nil, false
	}
	req.Header.Set(RemoteProtoHeader, RemoteProtoVersion)
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.errors.Add(1)
		r.settle(false)
		return 0, nil, false
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxFrame))
	if rerr != nil {
		r.errors.Add(1)
		r.settle(false)
		return 0, nil, false
	}
	if resp.StatusCode >= 500 {
		r.errors.Add(1)
		r.settle(false)
		return resp.StatusCode, nil, false
	}
	if v := resp.Header.Get(RemoteProtoHeader); v != RemoteProtoVersion {
		r.skew.Add(1)
		r.settle(true)
		return resp.StatusCode, nil, false
	}
	r.settle(true)
	return resp.StatusCode, data, true
}

// Put stores the sealed frame under k. Failures are counted and
// swallowed — the remote tier is an accelerator, never a correctness
// dependency. It reports whether the server accepted the entry, which
// the single-flight winner uses purely for accounting.
func (r *Remote) Put(k Key, sealed []byte) bool {
	if _, valid := Open(sealed); !valid {
		// Refuse to publish garbage; the server would bounce it anyway.
		r.putErrors.Add(1)
		return false
	}
	if !r.allow() {
		return false
	}
	status, _, ok := r.do(context.Background(), http.MethodPut, entryPath(k), bytes.NewReader(sealed), 4096)
	if !ok || (status != http.StatusNoContent && status != http.StatusOK) {
		r.putErrors.Add(1)
		return false
	}
	r.puts.Add(1)
	return true
}

// Claim runs the single-flight election for k: exactly one concurrent
// claimant fleet-wide wins and should build then Put; everyone else
// should GetWait for the winner's artifact. ok == false means the
// election itself could not be held (server unreachable, skew) and the
// caller should just build locally — degrade to miss, as everywhere.
func (r *Remote) Claim(k Key) (res ClaimResult, ok bool) {
	if !r.allow() {
		return ClaimResult{}, false
	}
	status, data, ok := r.do(context.Background(), http.MethodPost, RemoteClaimsPath+k.String(), nil, 4096)
	if !ok || status != http.StatusOK {
		r.claimErrors.Add(1)
		return ClaimResult{}, false
	}
	if err := json.Unmarshal(data, &res); err != nil {
		r.claimErrors.Add(1)
		return ClaimResult{}, false
	}
	if res.Winner {
		r.claimsWon.Add(1)
	} else {
		r.claimsLost.Add(1)
	}
	return res, true
}

// ParseKey parses a 64-hex-character content address — the inverse of
// Key.String, shared by the client and the server's route handlers.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != 2*len(k) {
		return k, fmt.Errorf("cache: key %q: want %d hex characters", s, 2*len(k))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("cache: key %q: %v", s, err)
	}
	copy(k[:], b)
	return k, nil
}
