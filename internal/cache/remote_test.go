package cache_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/cachetest"
)

// remotePair starts a flaky cacheserver and returns it plus a Remote
// client tuned for fast tests (short timeout, tight breaker).
func remotePair(t *testing.T) (*cachetest.Flaky, *cache.Remote) {
	t.Helper()
	flaky := cachetest.NewFlaky(0)
	ts := flaky.Serve()
	t.Cleanup(ts.Close)
	r := cache.NewRemote(cache.RemoteConfig{
		URL:              ts.URL,
		Timeout:          500 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
	})
	return flaky, r
}

func testKey(s string) cache.Key {
	h := cache.NewHasher("test/remote/v1")
	h.Str(s)
	return h.Sum()
}

func TestRemoteTierSharesEntriesAcrossCaches(t *testing.T) {
	_, r := remotePair(t)

	// Two daemons' local caches sharing one remote tier.
	a, b := cache.New(), cache.New()
	a.SetRemote(r)
	b.SetRemote(r)

	k := testKey("shared-entry")
	payload := []byte("compiled method bytes")
	a.Put(k, payload)

	got, ok := b.Get(k)
	if !ok {
		t.Fatal("entry published by cache A not visible to cache B through the remote tier")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted in transit: got %q want %q", got, payload)
	}
	if st := b.Stats(); st.RemoteHits != 1 {
		t.Fatalf("RemoteHits = %d, want 1", st.RemoteHits)
	}
	// The hit was promoted into B's memory tier: the next Get must not
	// touch the network.
	reqs := r.Stats().Hits
	if _, ok := b.Get(k); !ok {
		t.Fatal("promoted entry lost")
	}
	if r.Stats().Hits != reqs {
		t.Fatal("second Get went remote despite promotion")
	}
}

// TestRemoteDegradeToMiss is the fault-injection matrix: every failure
// mode must read as a clean miss — no error surfaced, no panic, no hang
// past the bounded deadline — and the tier must heal when the fault
// clears.
func TestRemoteDegradeToMiss(t *testing.T) {
	faults := []struct {
		name  string
		fault cachetest.Fault
		// counter inspects the failure's classification so a fault is
		// not just absorbed but attributed: operators can tell a down
		// server from a poisoned one.
		counter func(cache.RemoteStats) int64
	}{
		{"drop", cachetest.FaultDrop, func(s cache.RemoteStats) int64 { return s.Errors }},
		{"delay", cachetest.FaultDelay, func(s cache.RemoteStats) int64 { return s.Errors }},
		{"500", cachetest.Fault500, func(s cache.RemoteStats) int64 { return s.Errors }},
		{"truncate", cachetest.FaultTruncate, func(s cache.RemoteStats) int64 { return s.Corrupt }},
		{"corrupt", cachetest.FaultCorrupt, func(s cache.RemoteStats) int64 { return s.Corrupt }},
		{"skew", cachetest.FaultSkew, func(s cache.RemoteStats) int64 { return s.Skew }},
	}
	for _, tc := range faults {
		t.Run(tc.name, func(t *testing.T) {
			flaky, r := remotePair(t)
			k := testKey("degrade-" + tc.name)
			payload := []byte(strings.Repeat("artifact ", 64))

			// Seed the entry while healthy so faulted responses carry a
			// real body to mangle.
			if !r.Put(k, cache.Seal(payload)) {
				t.Fatal("healthy Put failed")
			}
			flaky.SetFault(tc.fault)
			flaky.SetDelay(2 * time.Second) // past the client's 500ms deadline

			before := tc.counter(r.Stats())
			start := time.Now()
			if _, ok := r.Get(k); ok {
				t.Fatalf("fault %s: Get succeeded, want degrade to miss", tc.name)
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Fatalf("fault %s: Get stalled %s, deadline not enforced", tc.name, el)
			}
			if after := tc.counter(r.Stats()); after <= before {
				t.Fatalf("fault %s: failure not attributed (counter still %d)", tc.name, after)
			}
			// A faulted Put must also be swallowed, never surfaced.
			r.Put(testKey("degrade-put-"+tc.name), cache.Seal(payload))

			// Heal: the same tier, no new client, serves hits again.
			flaky.SetFault(cachetest.FaultNone)
			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, ok := r.Get(k); ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("fault %s: tier did not heal", tc.name)
				}
				time.Sleep(50 * time.Millisecond) // breaker cooldown may gate the probe
			}
		})
	}
}

// TestRemoteCorruptFrameNotPromoted pins that a corrupted fetch can
// never poison the local cache: the frame fails validation client-side
// and nothing is inserted.
func TestRemoteCorruptFrameNotPromoted(t *testing.T) {
	flaky, r := remotePair(t)
	c := cache.New()
	c.SetRemote(r)
	k := testKey("poison")
	if !r.Put(k, cache.Seal([]byte("clean payload"))) {
		t.Fatal("seed Put failed")
	}
	flaky.SetFault(cachetest.FaultCorrupt)
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt remote frame served as a hit")
	}
	if c.Len() != 0 {
		t.Fatal("corrupt frame promoted into the memory tier")
	}
}

func TestRemoteBreakerOpensAndRecovers(t *testing.T) {
	flaky, r := remotePair(t)
	k := testKey("breaker")

	flaky.SetFault(cachetest.FaultDrop)
	for i := 0; i < 3; i++ { // threshold consecutive transport failures
		r.Get(k)
	}
	st := r.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}

	// Open breaker: requests are swallowed without touching the server.
	reqs := flaky.Requests()
	r.Get(k)
	r.Put(k, cache.Seal([]byte("x")))
	if flaky.Requests() != reqs {
		t.Fatal("open breaker let requests through")
	}
	if r.Stats().BreakerSkips < 2 {
		t.Fatalf("BreakerSkips = %d, want >= 2", r.Stats().BreakerSkips)
	}

	// After cooldown a single probe goes through; its success closes the
	// breaker and normal service resumes.
	flaky.SetFault(cachetest.FaultNone)
	time.Sleep(250 * time.Millisecond)
	if !r.Put(k, cache.Seal([]byte("recovered"))) {
		t.Fatal("probe Put failed after heal")
	}
	if _, ok := r.Get(k); !ok {
		t.Fatal("breaker did not close after successful probe")
	}
}

func TestRemoteClaimSingleFlight(t *testing.T) {
	_, r := remotePair(t)
	k := testKey("claim")

	res, ok := r.Claim(k)
	if !ok || !res.Winner || res.Ready {
		t.Fatalf("first claim = %+v, %v; want winner", res, ok)
	}
	res, ok = r.Claim(k)
	if !ok || res.Winner {
		t.Fatalf("second claim = %+v, %v; want loser", res, ok)
	}

	// The winner publishes; the next claimant is told the artifact is
	// ready instead of being made to build or wait.
	if !r.Put(k, cache.Seal([]byte("artifact"))) {
		t.Fatal("winner Put failed")
	}
	res, ok = r.Claim(k)
	if !ok || res.Winner || !res.Ready {
		t.Fatalf("post-publish claim = %+v, %v; want ready", res, ok)
	}
}

func TestRemoteGetWaitCoalesces(t *testing.T) {
	_, r := remotePair(t)
	k := testKey("getwait")
	payload := cache.Seal([]byte("late artifact"))

	go func() {
		time.Sleep(150 * time.Millisecond)
		r.Put(k, payload)
	}()
	sealed, ok := r.GetWait(context.Background(), k, 10*time.Second)
	if !ok {
		t.Fatal("GetWait missed an artifact published within the window")
	}
	if !bytes.Equal(sealed, payload) {
		t.Fatal("GetWait returned different bytes than published")
	}

	// A wait with no publisher ends at the bound, as a miss.
	start := time.Now()
	if _, ok := r.GetWait(context.Background(), testKey("never"), 300*time.Millisecond); ok {
		t.Fatal("GetWait hit a never-published key")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("GetWait overran its bound: %s", el)
	}
}

func TestParseKey(t *testing.T) {
	k := testKey("roundtrip")
	parsed, err := cache.ParseKey(k.String())
	if err != nil || parsed != k {
		t.Fatalf("ParseKey(%q) = %v, %v", k.String(), parsed, err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("z", 64), strings.Repeat("ab", 33)} {
		if _, err := cache.ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) accepted", bad)
		}
	}
}
