// Compilation caching: per-method code generation is a pure function of
// the method's bytecode, the signatures of the methods it references, and
// the Options knobs that change emitted words. This file owns the two
// halves of that contract the cache store (internal/cache) deliberately
// does not know about:
//
//   - CacheKey, the key schema: exactly which inputs invalidate a cached
//     artifact. Anything that can change the emitted words or the LTBO
//     metadata must be hashed; anything that by the determinism contract
//     cannot (Workers, Tracer, the cache itself) must not be.
//   - The entry codec: a CompiledMethod minus its *dex.Method, serialized
//     in a versioned little-endian layout. Decoding builds fresh slices
//     from immutable bytes, so a cache hit can never alias state the
//     outliner later rewrites in place.

package codegen

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/a64"
	"repro/internal/cache"
	"repro/internal/dex"
	"repro/internal/par"
)

// cacheSchema tags the key layout. Bump it whenever the fields hashed by
// CacheKey — or their order or encoding — change; stale on-disk caches
// then read as misses instead of being silently poisoned. The pinned
// golden in TestCacheKeyStability guards against accidental drift.
const cacheSchema = "calibro/method-key/v1"

// CacheKey returns the content address of m's compiled form under opts.
// methods is the app-wide table (indexed by dex.MethodID) used to resolve
// the signatures of invoked callees: a caller's code embeds only the
// callee's numeric ID, so hashing the callee signature too keeps one
// on-disk cache safe across apps where the same ID names different
// methods.
func CacheKey(m *dex.Method, methods []*dex.Method, opts Options) cache.Key {
	h := cache.NewHasher(cacheSchema)
	// The option knobs that reach the emitter. Workers and Tracer are
	// excluded by the determinism contract: they change scheduling and
	// observation, never output.
	h.Bool(opts.CTO)
	h.Bool(opts.Optimize)
	// The method's own shape and bytecode. Its MethodID is deliberately
	// not hashed: emitted code never depends on the method's own slot.
	h.Int(int64(m.NumRegs))
	h.Int(int64(m.NumIns))
	h.Bool(m.Native)
	h.Int(int64(len(m.Pool)))
	for _, v := range m.Pool {
		h.Uint(v)
	}
	h.Int(int64(len(m.Code)))
	for _, in := range m.Code {
		h.Int(int64(in.Op))
		h.Int(int64(in.A))
		h.Int(int64(in.B))
		h.Int(int64(in.C))
		h.Int(in.Lit)
		h.Int(int64(in.Target))
		h.Int(int64(len(in.Targets)))
		for _, t := range in.Targets {
			h.Int(int64(t))
		}
		h.Int(int64(in.Method))
		h.Int(int64(in.Native))
		if in.Op == dex.OpInvoke {
			if id := int(in.Method); id < len(methods) && methods[id] != nil {
				callee := methods[id]
				h.Str(callee.Class)
				h.Str(callee.Name)
				h.Int(int64(callee.NumRegs))
				h.Int(int64(callee.NumIns))
				h.Bool(callee.Native)
			} else {
				h.Str("<unresolved>")
			}
		}
	}
	return h.Sum()
}

// cacheEntryVersion guards the payload layout below, inside the store's
// own sealed frame. A payload with a different version decodes to an
// error, which the compile path treats as a miss.
const cacheEntryVersion = 1

// EncodeCachedMethod serializes everything of a CompiledMethod except the
// *dex.Method it was compiled from (the key already identifies that; the
// decoder re-binds the caller's method). Call it before the outliner can
// touch the artifact: the snapshot must be the pristine compile output.
func EncodeCachedMethod(cm *CompiledMethod) []byte {
	// One exact-size allocation, appended with direct little-endian puts:
	// this runs once per cache miss, and the reflective binary.Write path
	// it replaces dominated the miss-side encode cost.
	size := 4 * (3 + len(cm.Code) + 1 + 2*len(cm.Meta.PCRel) +
		1 + len(cm.Meta.Terminators) +
		1 + 2*len(cm.Meta.EmbeddedData) + 1 + 2*len(cm.Meta.Slowpaths) +
		1 + 3*len(cm.StackMap) + 1)
	size += 12 * len(cm.Ext)
	buf := make([]byte, 0, size)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u32(cacheEntryVersion)
	u32(uint32(len(cm.Code)))
	for _, word := range cm.Code {
		u32(word)
	}
	flags := uint32(0)
	if cm.Meta.HasIndirectJump {
		flags |= 1
	}
	if cm.Meta.IsNative {
		flags |= 2
	}
	u32(flags)
	u32(uint32(len(cm.Meta.PCRel)))
	for _, r := range cm.Meta.PCRel {
		u32(uint32(r.InstOff))
		u32(uint32(r.TargetOff))
	}
	u32(uint32(len(cm.Meta.Terminators)))
	for _, t := range cm.Meta.Terminators {
		u32(uint32(t))
	}
	writeRanges := func(rs []a64.Range) {
		u32(uint32(len(rs)))
		for _, r := range rs {
			u32(uint32(r.Start))
			u32(uint32(r.End))
		}
	}
	writeRanges(cm.Meta.EmbeddedData)
	writeRanges(cm.Meta.Slowpaths)
	u32(uint32(len(cm.StackMap)))
	for _, s := range cm.StackMap {
		u32(uint32(s.NativeOff))
		u32(uint32(s.DexPC))
		u32(s.Live)
	}
	u32(uint32(len(cm.Ext)))
	for _, e := range cm.Ext {
		u32(uint32(e.InstOff))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Symbol))
	}
	return buf
}

// DecodeCachedMethod parses a cached payload into a fresh CompiledMethod
// bound to m. Any structural defect — wrong version, truncation, trailing
// bytes — is an error, never a panic; the caller recompiles.
func DecodeCachedMethod(m *dex.Method, payload []byte) (*CompiledMethod, error) {
	r := &entryReader{data: payload}
	if v := r.u32(); r.err == nil && v != cacheEntryVersion {
		return nil, fmt.Errorf("codegen: cache entry version %d, want %d", v, cacheEntryVersion)
	}
	cm := &CompiledMethod{M: m}
	// The code array is the bulk of every entry; decode it in one
	// bounds-checked block with an exact allocation instead of per-word
	// reader calls — this loop is the warm build's per-method hot path.
	if nc := int(r.u32()); r.err == nil && nc > 0 {
		if need := nc * 4; r.off+need <= len(payload) {
			cm.Code = make([]uint32, nc)
			for i := range cm.Code {
				cm.Code[i] = binary.LittleEndian.Uint32(payload[r.off+4*i:])
			}
			r.off += need
		} else {
			r.err = fmt.Errorf("codegen: cache entry truncated at offset %d", r.off)
		}
	}
	flags := r.u32()
	if r.err == nil && flags&^3 != 0 {
		// Unknown flag bits mean a newer writer; keeping the codec
		// strictly canonical also makes decode∘encode the identity.
		return nil, fmt.Errorf("codegen: unknown cache entry flags %#x", flags)
	}
	cm.Meta.HasIndirectJump = flags&1 != 0
	cm.Meta.IsNative = flags&2 != 0
	npc := r.u32()
	for i := uint32(0); i < npc && r.err == nil; i++ {
		cm.Meta.PCRel = append(cm.Meta.PCRel, a64.Reloc{InstOff: int(r.u32()), TargetOff: int(r.u32())})
	}
	nt := r.u32()
	for i := uint32(0); i < nt && r.err == nil; i++ {
		cm.Meta.Terminators = append(cm.Meta.Terminators, int(r.u32()))
	}
	readRanges := func() []a64.Range {
		n := r.u32()
		var rs []a64.Range
		for i := uint32(0); i < n && r.err == nil; i++ {
			rs = append(rs, a64.Range{Start: int(r.u32()), End: int(r.u32())})
		}
		return rs
	}
	cm.Meta.EmbeddedData = readRanges()
	cm.Meta.Slowpaths = readRanges()
	ns := r.u32()
	for i := uint32(0); i < ns && r.err == nil; i++ {
		cm.StackMap = append(cm.StackMap, StackMapEntry{
			NativeOff: int(r.u32()), DexPC: int32(r.u32()), Live: r.u32(),
		})
	}
	ne := r.u32()
	for i := uint32(0); i < ne && r.err == nil; i++ {
		cm.Ext = append(cm.Ext, a64.ExtRef{InstOff: int(r.u32()), Symbol: int(r.u64())})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("codegen: %d trailing bytes in cache entry", len(payload)-r.off)
	}
	return cm, nil
}

// entryReader is the bounds-checked little-endian reader the decoder
// uses; it records the first failure instead of panicking, mirroring the
// oat tables reader.
type entryReader struct {
	data []byte
	off  int
	err  error
}

func (r *entryReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.err = fmt.Errorf("codegen: cache entry truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *entryReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.err = fmt.Errorf("codegen: cache entry truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// compileCached is the Compile path with the content-addressed cache in
// front of code generation: a hit decodes the stored artifact and skips
// IR construction and emission entirely; a miss compiles and populates.
// The per-build hit/miss/byte tallies are plain atomics — the pool's hot
// path takes no lock beyond the store's own RLock — and are forwarded to
// the tracer's counters after the batch so they land in the telemetry
// table.
func compileCached(ctx context.Context, app *dex.App, opts Options) ([]*CompiledMethod, error) {
	c := opts.Cache
	// hit[i] is written by the worker that ran task i and read by the
	// observer for task i on the same goroutine, immediately after fn
	// returns — no synchronization needed.
	hit := make([]bool, len(app.Methods))
	var hits, misses, served, stored atomic.Int64
	var observer par.TaskObserver
	if inner := opts.Tracer.PoolObserver("compile", func(i int) string {
		return app.Methods[i].FullName()
	}); inner != nil {
		observer = func(worker, index int, queueWait, run time.Duration) {
			// A cache hit did no code generation; keeping it off the
			// compile lanes is what makes "zero codegen spans on a fully
			// warm build" an assertable telemetry property.
			if hit[index] {
				return
			}
			inner(worker, index, queueWait, run)
		}
	}
	out, err := par.MapObsCtx(ctx, opts.Workers, len(app.Methods), observer, func(id int) (*CompiledMethod, error) {
		m := app.Methods[id]
		key := CacheKey(m, app.Methods, opts)
		if payload, ok := c.Get(key); ok {
			if cm, derr := DecodeCachedMethod(m, payload); derr == nil {
				hit[id] = true
				hits.Add(1)
				served.Add(int64(len(payload)))
				return cm, nil
			}
			// A frame-valid payload the codec rejects (entry version
			// skew) is a miss: recompile, and the Put below heals it.
		}
		misses.Add(1)
		cm, err := compileMethod(m, opts)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", m.FullName(), err)
		}
		payload := EncodeCachedMethod(cm)
		stored.Add(int64(len(payload)))
		c.Put(key, payload)
		return cm, nil
	})
	if t := opts.Tracer; t != nil {
		t.Count("cache.hits", hits.Load())
		t.Count("cache.misses", misses.Load())
		t.Count("cache.bytes_served", served.Load())
		t.Count("cache.bytes_stored", stored.Load())
	}
	return out, err
}
