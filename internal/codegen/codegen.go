// Package codegen translates optimized HGraph methods into AArch64 binary
// code the way DEX2OAT's instruction-template code generator does, and
// implements the compilation-time half of Calibro:
//
//   - CTO (§3.1): the three ART-specific repetitive code patterns — the
//     Java-call pattern, the runtime-entrypoint call pattern, and the
//     stack-overflow check — are emitted as one-instruction calls to shared
//     pattern thunks when Options.CTO is set.
//   - LTBO.1 (§3.2): alongside every method's code the generator records the
//     metadata the link-time outliner needs to avoid disassembly and binary
//     rewriting pitfalls: embedded-data ranges, PC-relative instructions and
//     their targets, terminator offsets, an indirect-jump flag, a native
//     flag, and slow-path ranges.
//
// Code layout per method: prologue, one template per IR instruction, inline
// epilogues at returns, slow paths (cold), then the literal pool (embedded
// data).
package codegen

import (
	"context"
	"fmt"

	"repro/internal/a64"
	"repro/internal/cache"
	"repro/internal/dex"
	"repro/internal/hgraph"
	"repro/internal/obs"
	"repro/internal/par"
)

// Options selects compilation-time behaviour.
type Options struct {
	// CTO enables compilation-time outlining of the three ART-specific
	// patterns (§3.1).
	CTO bool
	// Optimize runs the HGraph pass pipeline before code generation.
	// The baseline configuration of the paper has it enabled.
	Optimize bool
	// Workers bounds the per-method compile fan-out; <= 0 selects
	// runtime.GOMAXPROCS(0). The output is byte-identical for every
	// value: methods land at their MethodID slot and the lowest failing
	// method's error wins.
	Workers int
	// Tracer, when non-nil, records one span per compiled method on the
	// worker lane that ran it (category "compile", with its queue wait).
	// Tracing observes only: the compiled output is byte-identical with
	// tracing on or off.
	Tracer *obs.Tracer
	// Cache, when non-nil, is the content-addressed compilation cache: a
	// method whose CacheKey is already stored decodes the cached artifact
	// instead of being compiled, and every miss populates the store. The
	// cache changes scheduling and work, never output — a warm build is
	// byte-identical to a cold one at every Workers value, and a corrupt
	// or version-skewed entry reads as a miss, never an error.
	Cache *cache.Cache
}

// Meta is the compile-time information recorded for the link-time binary
// outliner (LTBO.1, paper §3.2).
type Meta struct {
	// PCRel lists every intra-method PC-relative instruction with the
	// offset of its target, both relative to the method start.
	PCRel []a64.Reloc
	// Terminators holds byte offsets of control-transfer instructions:
	// basic-block terminators plus calls, the boundaries the outliner may
	// never cross.
	Terminators []int
	// EmbeddedData lists byte ranges inside the code that hold data, not
	// instructions (literal pools, jump tables).
	EmbeddedData []a64.Range
	// Slowpaths lists cold exception-path code ranges; these may be
	// outlined even inside hot methods (§3.4.2).
	Slowpaths []a64.Range
	// HasIndirectJump marks methods containing a computed branch; they are
	// excluded from outlining for correctness (§3.2).
	HasIndirectJump bool
	// IsNative marks JNI stubs; excluded from outlining (§3.2).
	IsNative bool
}

// StackMapEntry maps a native code offset (a safepoint: every call site)
// back to the dex instruction that produced it, together with the set of
// dex registers live across the safepoint — the state mapping ART needs
// for stack walking, GC, and exception delivery. Binary-level optimization
// must keep these consistent (§3.5).
type StackMapEntry struct {
	NativeOff int    // byte offset of the call instruction within the method
	DexPC     int32  // index of the source dex instruction
	Live      uint32 // bitmask of live dex registers v0..v31 after the call
}

// CompiledMethod is the unit the linker consumes.
type CompiledMethod struct {
	M        *dex.Method
	Code     []uint32
	Meta     Meta
	StackMap []StackMapEntry
	Ext      []a64.ExtRef // thunk call sites to bind at link time
}

// CodeBytes returns the code size in bytes.
func (cm *CompiledMethod) CodeBytes() int { return len(cm.Code) * a64.WordSize }

// Compile translates every method of the app. The returned slice is indexed
// by dex.MethodID. Methods compile independently on Options.Workers
// goroutines; the result does not depend on the worker count, and with
// Options.Cache set it does not depend on the cache's state either.
func Compile(app *dex.App, opts Options) ([]*CompiledMethod, error) {
	return CompileCtx(context.Background(), app, opts)
}

// CompileCtx is Compile with cooperative cancellation: the per-method
// fan-out checks ctx before starting every method, so a cancelled or
// deadline-expired context stops the stage at method granularity and
// returns ctx.Err(). context.Background() restores Compile exactly.
func CompileCtx(ctx context.Context, app *dex.App, opts Options) ([]*CompiledMethod, error) {
	if opts.Cache != nil {
		return compileCached(ctx, app, opts)
	}
	observer := opts.Tracer.PoolObserver("compile", func(i int) string {
		return app.Methods[i].FullName()
	})
	return par.MapObsCtx(ctx, opts.Workers, len(app.Methods), observer, func(id int) (*CompiledMethod, error) {
		m := app.Methods[id]
		cm, err := compileMethod(m, opts)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", m.FullName(), err)
		}
		return cm, nil
	})
}

// compileMethod compiles one method.
func compileMethod(m *dex.Method, opts Options) (*CompiledMethod, error) {
	if m.Native {
		return compileJNIStub(m)
	}
	g, err := hgraph.Build(m)
	if err != nil {
		return nil, err
	}
	if opts.Optimize {
		hgraph.Optimize(g)
	}
	e := emitterPool.Get().(*emitter)
	e.reset(m, g, opts)
	cm, err := e.emit()
	e.m, e.g = nil, nil // don't pin the graph while pooled
	emitterPool.Put(e)
	return cm, err
}

// compileJNIStub emits the fixed stub for a Java native method: return the
// first argument. Real ART JNI transitions are far richer; what matters to
// Calibro is only that such methods exist, are flagged, and are skipped.
func compileJNIStub(m *dex.Method) (*CompiledMethod, error) {
	var asm a64.Asm
	asm.Inst(a64.Inst{Op: a64.OpOrrReg, Sf: true, Rd: a64.X0, Rn: a64.XZR, Rm: a64.X1}) // mov x0, x1
	retOff := asm.Inst(a64.Inst{Op: a64.OpRet, Rn: a64.LR})
	p, err := asm.Finalize()
	if err != nil {
		return nil, err
	}
	return &CompiledMethod{
		M:    m,
		Code: p.Words,
		Meta: Meta{IsNative: true, Terminators: []int{retOff}},
	}, nil
}
