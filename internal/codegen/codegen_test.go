package codegen

import (
	"testing"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/dex"
	"repro/internal/workload"
)

func compileOne(t *testing.T, m *dex.Method, opts Options) *CompiledMethod {
	t.Helper()
	cm, err := compileMethod(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func simpleMethod(code []dex.Insn, numRegs, numIns int) *dex.Method {
	return &dex.Method{Class: "LT", Name: "m", NumRegs: numRegs, NumIns: numIns, Code: code}
}

func countOp(words []uint32, op a64.Op) int {
	n := 0
	for _, w := range words {
		if i, ok := a64.Decode(w); ok && i.Op == op {
			n++
		}
	}
	return n
}

// TestJavaCallPattern checks the Figure 4a lowering with and without CTO.
func TestJavaCallPattern(t *testing.T) {
	callee := simpleMethod([]dex.Insn{{Op: dex.OpReturnVoid}}, 1, 0)
	callee.ID = 7
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpInvoke, A: 0, Method: 7, B: 0, C: 0},
		{Op: dex.OpReturn, A: 0},
	}, 2, 0)

	plain := compileOne(t, m, Options{})
	// Inline pattern: ldr x30, [x0, #EntryPointOffset] followed by blr x30.
	found := false
	for i := 0; i+1 < len(plain.Code); i++ {
		first, ok1 := a64.Decode(plain.Code[i])
		second, ok2 := a64.Decode(plain.Code[i+1])
		if ok1 && ok2 && first.Op == a64.OpLdrImm && first.Rd == a64.LR &&
			first.Rn == a64.X0 && first.Imm == abi.EntryPointOffset &&
			second.Op == a64.OpBlr && second.Rn == a64.LR {
			found = true
		}
	}
	if !found {
		t.Error("inline Java-call pattern not emitted")
	}
	_ = callee

	cto := compileOne(t, m, Options{CTO: true})
	if countOp(cto.Code, a64.OpBlr) != 0 {
		t.Error("CTO left a blr behind")
	}
	wantSym := PackSym(SymKindJavaEntry, abi.EntryPointOffset)
	foundSym := false
	for _, e := range cto.Ext {
		if e.Symbol == wantSym {
			foundSym = true
		}
	}
	if !foundSym {
		t.Errorf("no Java-entry thunk reference in %v", cto.Ext)
	}
	if len(cto.Code) >= len(plain.Code) {
		t.Errorf("CTO did not shrink the method: %d >= %d", len(cto.Code), len(plain.Code))
	}
}

// TestStackCheckPattern checks the Figure 4c prologue for non-leaf methods
// and its absence for leaves.
func TestStackCheckPattern(t *testing.T) {
	leaf := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 5},
		{Op: dex.OpReturn, A: 0},
	}, 1, 0)
	nonLeaf := simpleMethod([]dex.Insn{
		{Op: dex.OpNewInstance, A: 0, Lit: 2},
		{Op: dex.OpReturn, A: 0},
	}, 1, 0)

	guard := a64.MustEncode(a64.Inst{Op: a64.OpSubImm, Sf: true, Rd: a64.IP0, Rn: a64.SP,
		Imm: abi.StackGuard >> 12, Shift12: true})
	hasGuard := func(cm *CompiledMethod) bool {
		for _, w := range cm.Code {
			if w == guard {
				return true
			}
		}
		return false
	}
	if hasGuard(compileOne(t, leaf, Options{})) {
		t.Error("leaf method has a stack check")
	}
	if !hasGuard(compileOne(t, nonLeaf, Options{})) {
		t.Error("non-leaf method lacks the stack check")
	}
	// Under CTO the check is a thunk call.
	cm := compileOne(t, nonLeaf, Options{CTO: true})
	if hasGuard(cm) {
		t.Error("CTO left the inline stack check")
	}
	foundSym := false
	for _, e := range cm.Ext {
		if e.Symbol == PackSym(SymKindStackCheck, 0) {
			foundSym = true
		}
	}
	if !foundSym {
		t.Error("no stack-check thunk reference")
	}
}

// TestStackMapLiveness: the live mask at a safepoint reflects IR liveness.
func TestStackMapLiveness(t *testing.T) {
	// v1 is live across the call (used after); v2 is not.
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 1, Lit: 10},
		{Op: dex.OpConst, A: 2, Lit: 20},
		{Op: dex.OpConst, A: 3, Lit: 0},
		{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeGCSafepoint, B: 3, C: 3},
		{Op: dex.OpAdd, A: 0, B: 0, C: 1},
		{Op: dex.OpReturn, A: 0},
	}, 4, 0)
	cm := compileOne(t, m, Options{}) // no IR opt: keep the dead v2 def
	if len(cm.StackMap) != 1 {
		t.Fatalf("stack map entries = %d, want 1", len(cm.StackMap))
	}
	live := cm.StackMap[0].Live
	if live&(1<<1) == 0 {
		t.Errorf("v1 not marked live at safepoint (mask %#x)", live)
	}
	if live&(1<<2) != 0 {
		t.Errorf("dead v2 marked live at safepoint (mask %#x)", live)
	}
	// Safepoint lands on the call instruction.
	w := cm.Code[cm.StackMap[0].NativeOff/4]
	if i, ok := a64.Decode(w); !ok || (i.Op != a64.OpBlr && i.Op != a64.OpBl) {
		t.Errorf("safepoint not on a call: %#08x", w)
	}
}

// TestLargeFrame exercises the >504-byte frame path (NumRegs up to 256).
func TestLargeFrame(t *testing.T) {
	code := []dex.Insn{
		{Op: dex.OpConst, A: 200, Lit: 42},
		{Op: dex.OpMove, A: 0, B: 200},
		{Op: dex.OpReturn, A: 0},
	}
	m := simpleMethod(code, 256, 0)
	cm := compileOne(t, m, Options{})
	// Frame setup must use sub sp / add sp instead of pre/post-indexed pairs.
	first, ok := a64.Decode(cm.Code[0])
	if !ok || first.Op != a64.OpSubImm || first.Rd != a64.SP {
		t.Errorf("large frame prologue starts with %v", first)
	}
	if countOp(cm.Code, a64.OpRet) != 1 {
		t.Error("missing epilogue")
	}
}

// TestLiteralPoolIsEmbeddedData: const-pool constants end up in data
// ranges, deduplicated.
func TestLiteralPoolIsEmbeddedData(t *testing.T) {
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConstPool, A: 0, Lit: 0},
		{Op: dex.OpConstPool, A: 1, Lit: 1}, // same value as slot 0: deduplicated
		{Op: dex.OpConstPool, A: 2, Lit: 2},
		{Op: dex.OpReturn, A: 0},
	}, 3, 0)
	m.Pool = []uint64{0xAABBCCDD_11223344, 0xAABBCCDD_11223344, 0x55667788_99AABBCC}
	cm := compileOne(t, m, Options{})
	var dataWords int
	for _, d := range cm.Meta.EmbeddedData {
		dataWords += d.Len() / 4
	}
	// Two distinct 64-bit constants = 4 data words (deduplicated).
	if dataWords != 4 {
		t.Errorf("embedded data words = %d, want 4", dataWords)
	}
	if countOp(cm.Code, a64.OpLdrLit) != 3 {
		t.Error("missing literal loads")
	}
}

// TestIndirectJumpFlag: packed-switch methods are flagged.
func TestIndirectJumpFlag(t *testing.T) {
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpPackedSwitch, A: 0, Targets: []int32{3}},
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 9},
		{Op: dex.OpReturn, A: 0},
	}, 1, 0)
	cm := compileOne(t, m, Options{})
	if !cm.Meta.HasIndirectJump {
		t.Error("switch method not flagged as indirect-jump")
	}
	if countOp(cm.Code, a64.OpBr) == 0 {
		t.Error("no br emitted for the switch")
	}
	if len(cm.Meta.EmbeddedData) == 0 {
		t.Error("jump table not recorded as embedded data")
	}
}

// TestSlowpathRanges: null checks create recorded cold ranges calling the
// throw entrypoint.
func TestSlowpathRanges(t *testing.T) {
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpNewInstance, A: 0, Lit: 2},
		{Op: dex.OpIGet, A: 1, B: 0, Lit: 1},
		{Op: dex.OpReturn, A: 1},
	}, 2, 0)
	cm := compileOne(t, m, Options{})
	if len(cm.Meta.Slowpaths) != 1 {
		t.Fatalf("slowpath ranges = %d, want 1 (NPE)", len(cm.Meta.Slowpaths))
	}
	sp := cm.Meta.Slowpaths[0]
	if sp.Len() <= 0 || sp.End > len(cm.Code)*4 {
		t.Errorf("bad slowpath range %+v", sp)
	}
	// The range ends with brk (never returns).
	last, ok := a64.Decode(cm.Code[sp.End/4-1])
	if !ok || last.Op != a64.OpBrk {
		t.Errorf("slowpath does not end in brk: %v", last)
	}
}

// TestJNIStubShape: native methods compile to the fixed stub and are
// flagged.
func TestJNIStubShape(t *testing.T) {
	m := &dex.Method{Class: "LT", Name: "jni", Native: true, NumRegs: 2, NumIns: 2}
	cm := compileOne(t, m, Options{CTO: true})
	if !cm.Meta.IsNative {
		t.Error("JNI stub not flagged native")
	}
	if len(cm.Code) != 2 {
		t.Errorf("JNI stub is %d words, want 2", len(cm.Code))
	}
	if len(cm.Ext) != 0 || len(cm.StackMap) != 0 {
		t.Error("JNI stub has calls or safepoints")
	}
}

// TestMetaOffsetsInBounds: every recorded offset must reference the code.
func TestMetaOffsetsInBounds(t *testing.T) {
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 3},
		{Op: dex.OpConst, A: 1, Lit: 4},
		{Op: dex.OpIfLt, A: 0, B: 1, Target: 4},
		{Op: dex.OpAdd, A: 0, B: 0, C: 1},
		{Op: dex.OpReturn, A: 0},
	}, 2, 0)
	for _, opts := range []Options{{}, {CTO: true}, {Optimize: true}, {CTO: true, Optimize: true}} {
		cm := compileOne(t, m, opts)
		size := len(cm.Code) * 4
		for _, t0 := range cm.Meta.Terminators {
			if t0 < 0 || t0 >= size || t0%4 != 0 {
				t.Fatalf("terminator offset %d out of bounds", t0)
			}
		}
		for _, r := range cm.Meta.PCRel {
			if r.InstOff < 0 || r.InstOff >= size || r.TargetOff < 0 || r.TargetOff > size {
				t.Fatalf("pcrel %+v out of bounds", r)
			}
		}
		for _, e := range cm.Ext {
			if e.InstOff < 0 || e.InstOff >= size {
				t.Fatalf("ext %+v out of bounds", e)
			}
		}
		for _, s := range cm.StackMap {
			if s.NativeOff < 0 || s.NativeOff >= size {
				t.Fatalf("stackmap %+v out of bounds", s)
			}
		}
	}
}

// TestThunkWords covers the three thunk shapes and rejection of others.
func TestThunkWords(t *testing.T) {
	for _, sym := range []int{
		PackSym(SymKindJavaEntry, abi.EntryPointOffset),
		PackSym(SymKindNativeEP, 0x208),
		PackSym(SymKindStackCheck, 0),
	} {
		words, err := ThunkWords(sym)
		if err != nil {
			t.Fatalf("%s: %v", SymName(sym), err)
		}
		if len(words) < 2 || len(words) > 3 {
			t.Errorf("%s: %d words", SymName(sym), len(words))
		}
		for _, w := range words {
			if _, ok := a64.Decode(w); !ok {
				t.Errorf("%s contains undecodable word %#08x", SymName(sym), w)
			}
		}
	}
	if _, err := ThunkWords(PackSym(SymKindOutlined, 0)); err == nil {
		t.Error("outlined symbols must not have generated thunks")
	}
}

func TestSymPacking(t *testing.T) {
	for _, kind := range []int{SymKindJavaEntry, SymKindNativeEP, SymKindStackCheck, SymKindOutlined} {
		for _, v := range []int64{0, 1, 0x208, 1 << 31} {
			k, got := UnpackSym(PackSym(kind, v))
			if k != kind || got != v {
				t.Errorf("pack/unpack(%d, %d) = (%d, %d)", kind, v, k, got)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range symbol value")
		}
	}()
	PackSym(SymKindOutlined, 1<<33)
}

func TestCompileWholeApp(t *testing.T) {
	app, _, err := workload.Generate(workload.Profile{
		Name: "cg", Seed: 9, Methods: 40,
		NativeFrac: 0.1, SwitchFrac: 0.2, HotFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {CTO: true, Optimize: true}} {
		methods, err := Compile(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(methods) != app.NumMethods() {
			t.Fatalf("compiled %d of %d methods", len(methods), app.NumMethods())
		}
		var bytes int
		for id, cm := range methods {
			if cm.M.ID != app.Methods[id].ID {
				t.Fatal("method order broken")
			}
			if cm.CodeBytes() != len(cm.Code)*4 {
				t.Fatal("CodeBytes inconsistent")
			}
			bytes += cm.CodeBytes()
		}
		if bytes == 0 {
			t.Fatal("no code")
		}
	}
}

func TestArrayTemplates(t *testing.T) {
	// aget/aput lower through the bounds-checked register-offset sequence;
	// spilled and allocated operand paths both covered (v9 spilled, v1
	// allocated).
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 4},
		{Op: dex.OpNewArray, A: 9, B: 0},
		{Op: dex.OpConst, A: 1, Lit: 2},
		{Op: dex.OpConst, A: 2, Lit: 77},
		{Op: dex.OpAPut, A: 2, B: 9, C: 1},
		{Op: dex.OpAGet, A: 3, B: 9, C: 1},
		{Op: dex.OpArrayLen, A: 4, B: 9},
		{Op: dex.OpAdd, A: 0, B: 3, C: 4},
		{Op: dex.OpReturn, A: 0},
	}, 10, 0)
	cm := compileOne(t, m, Options{})
	if countOp(cm.Code, a64.OpLdrReg) == 0 || countOp(cm.Code, a64.OpStrReg) == 0 {
		t.Error("array templates missing register-offset accesses")
	}
	if len(cm.Meta.Slowpaths) != 2 { // NPE + bounds
		t.Errorf("slowpaths = %d, want 2", len(cm.Meta.Slowpaths))
	}
}

func TestMaterializeNegativeAndWide(t *testing.T) {
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: -1},
		{Op: dex.OpConst, A: 1, Lit: -0x12345678_9ABCDEF0},
		{Op: dex.OpConst, A: 2, Lit: 0x7FFFFFFF_FFFFFFFF},
		{Op: dex.OpAddLit, A: 0, B: 1, Lit: 1 << 20}, // too big for imm12
		{Op: dex.OpReturn, A: 0},
	}, 3, 0)
	cm := compileOne(t, m, Options{})
	if countOp(cm.Code, a64.OpMovn) == 0 {
		t.Error("negative constants should use movn")
	}
	if countOp(cm.Code, a64.OpMovk) < 3 {
		t.Error("wide constants should use movk chains")
	}
}

func TestSymNames(t *testing.T) {
	cases := map[int]string{
		PackSym(SymKindJavaEntry, 32):  "thunk_java_entry_32",
		PackSym(SymKindNativeEP, 0x20): "thunk_native_ep_0x20",
		PackSym(SymKindStackCheck, 0):  "thunk_stack_check",
		PackSym(SymKindOutlined, 7):    "OutlinedFunction_7",
		99 << 32:                       "sym_425201762304",
	}
	for sym, want := range cases {
		if got := SymName(sym); got != want {
			t.Errorf("SymName(%d) = %q, want %q", sym, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	// A switch too wide for the cmp immediate is rejected.
	targets := make([]int32, 5000)
	for i := range targets {
		targets[i] = 1
	}
	m := simpleMethod([]dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpPackedSwitch, A: 0, Targets: targets},
		{Op: dex.OpReturnVoid},
	}, 1, 0)
	if _, err := compileMethod(m, Options{}); err == nil {
		t.Error("oversized switch accepted")
	}
}
