package codegen

import (
	"fmt"
	"sync"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/dex"
	"repro/internal/hgraph"
)

// Register conventions (mirroring ART's arm64 backend in speed mode):
//
//	x0       ArtMethod* on entry / return value
//	x1..x7   arguments
//	x8..x10  template scratch
//	x16,x17  ip0/ip1 scratch
//	x19      thread register
//	x20..x27 callee-saved: dex registers v0..v7 live here
//	x29,x30  frame pointer / link register
//
// Virtual registers v8 and up spill to stack slots. Frame layout:
//
//	[sp, #0]               saved x29, x30
//	[sp, #16 .. #80)       saved x20..x27
//	[sp, #80 + 8*(v-8)]    spill slot of vreg v (v >= 8)
const (
	numAllocRegs  = 8
	firstAllocReg = a64.X20
	spillBase     = 16 + 8*numAllocRegs
)

type emitter struct {
	m    *dex.Method
	g    *hgraph.Graph
	opts Options

	asm         a64.Asm
	blockLabels []a64.Label
	frame       int64

	npeLabel    a64.Label
	boundsLabel a64.Label
	npeUsed     bool
	boundsUsed  bool

	terms    []int
	slow     []a64.Range
	stackmap []StackMapEntry
	indirect bool
	dexPC    int32
	curLive  uint32

	pool      map[uint64]a64.Label
	poolOrder []uint64
	tables    []switchTable
}

type switchTable struct {
	label   a64.Label
	targets []a64.Label
}

// emitterPool recycles emitters (and, through them, the assembler's item
// and label arrays and all metadata scratch slices) across methods. A
// worker compiles thousands of methods per build; once an emitter has
// grown to the largest method seen it emits without allocating, except
// for the output slices that escape into the CompiledMethod.
var emitterPool = sync.Pool{New: func() any {
	return &emitter{pool: map[uint64]a64.Label{}}
}}

// reset prepares a pooled emitter for the next method, keeping every
// backing array.
func (e *emitter) reset(m *dex.Method, g *hgraph.Graph, opts Options) {
	e.m, e.g, e.opts = m, g, opts
	e.asm.Reset()
	e.blockLabels = e.blockLabels[:0]
	e.frame = 0
	e.npeLabel, e.boundsLabel = 0, 0
	e.npeUsed, e.boundsUsed = false, false
	e.terms = e.terms[:0]
	e.slow = e.slow[:0]
	e.stackmap = e.stackmap[:0]
	e.indirect = false
	e.dexPC = 0
	e.curLive = 0
	clear(e.pool)
	e.poolOrder = e.poolOrder[:0]
	e.tables = e.tables[:0]
}

// allocated returns the physical register holding vr, if register-allocated.
func allocated(vr uint8) (a64.Reg, bool) {
	if vr < numAllocRegs {
		return firstAllocReg + a64.Reg(vr), true
	}
	return 0, false
}

// spillOff returns the frame offset of a spilled vreg slot.
func spillOff(vr uint8) int64 { return spillBase + 8*int64(vr-numAllocRegs) }

// emit generates the complete method.
func (e *emitter) emit() (*CompiledMethod, error) {
	spills := e.m.NumRegs - numAllocRegs
	if spills < 0 {
		spills = 0
	}
	e.frame = align16(spillBase + 8*int64(spills))
	if cap(e.blockLabels) < len(e.g.Blocks) {
		e.blockLabels = make([]a64.Label, len(e.g.Blocks))
	} else {
		e.blockLabels = e.blockLabels[:len(e.g.Blocks)]
	}
	for i := range e.blockLabels {
		e.blockLabels[i] = e.asm.NewLabel()
	}
	e.npeLabel = e.asm.NewLabel()
	e.boundsLabel = e.asm.NewLabel()

	liveMasks := hgraph.LiveAfterMasks(e.g)
	e.prologue()
	for bi, b := range e.g.Blocks {
		e.asm.Bind(e.blockLabels[b.ID])
		for idx, in := range b.Insns {
			e.curLive = liveMasks[b.ID][idx]
			if err := e.insn(b, in); err != nil {
				return nil, err
			}
			e.dexPC++
		}
		e.blockFallThrough(bi, b)
	}
	e.slowpaths()
	e.emitTablesAndPool()

	prog, err := e.asm.Finalize()
	if err != nil {
		return nil, err
	}
	// The emitter is pooled: slices that escape into the CompiledMethod are
	// copied out at their exact size so the scratch can be reused.
	return &CompiledMethod{
		M:    e.m,
		Code: prog.Words,
		Meta: Meta{
			PCRel:           prog.PCRel,
			Terminators:     copyOut(e.terms),
			EmbeddedData:    prog.Data,
			Slowpaths:       copyOut(e.slow),
			HasIndirectJump: e.indirect,
		},
		StackMap: copyOut(e.stackmap),
		Ext:      prog.Ext,
	}, nil
}

// copyOut clones a scratch slice at exact size, preserving nil for empty
// so pooled and non-pooled emitters produce identical metadata.
func copyOut[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

func align16(n int64) int64 { return (n + 15) &^ 15 }

// isLeaf reports whether the method can execute without calling anything —
// no invokes, no allocations, and no checks that might reach a throwing
// slow path.
func (e *emitter) isLeaf() bool {
	for _, b := range e.g.Blocks {
		for _, in := range b.Insns {
			switch in.Op {
			case dex.OpInvoke, dex.OpInvokeNative, dex.OpNewInstance, dex.OpNewArray,
				dex.OpIGet, dex.OpIPut, dex.OpAGet, dex.OpAPut, dex.OpArrayLen:
				return false
			}
		}
	}
	return true
}

// src makes vr's value available in a register: the allocated register
// itself, or tmp after a spill load.
func (e *emitter) src(vr uint8, tmp a64.Reg) a64.Reg {
	if r, ok := allocated(vr); ok {
		return r
	}
	e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: tmp, Rn: a64.SP, Imm: spillOff(vr)})
	return tmp
}

// dst returns the register an instruction should compute vr's new value
// into; store must be called afterwards.
func (e *emitter) dst(vr uint8, tmp a64.Reg) a64.Reg {
	if r, ok := allocated(vr); ok {
		return r
	}
	return tmp
}

// store completes a dst: spilled vregs are written back.
func (e *emitter) store(vr uint8, reg a64.Reg) {
	if _, ok := allocated(vr); ok {
		return
	}
	e.asm.Inst(a64.Inst{Op: a64.OpStrImm, Sf: true, Rd: reg, Rn: a64.SP, Imm: spillOff(vr)})
}

// moveTo copies vr's value into a specific physical register (argument
// setup).
func (e *emitter) moveTo(phys a64.Reg, vr uint8) {
	if r, ok := allocated(vr); ok {
		e.asm.Inst(a64.Inst{Op: a64.OpOrrReg, Sf: true, Rd: phys, Rn: a64.XZR, Rm: r})
		return
	}
	e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: phys, Rn: a64.SP, Imm: spillOff(vr)})
}

// setFrom copies a physical register into vr (call results, arguments).
func (e *emitter) setFrom(vr uint8, phys a64.Reg) {
	if r, ok := allocated(vr); ok {
		e.asm.Inst(a64.Inst{Op: a64.OpOrrReg, Sf: true, Rd: r, Rn: a64.XZR, Rm: phys})
		return
	}
	e.asm.Inst(a64.Inst{Op: a64.OpStrImm, Sf: true, Rd: phys, Rn: a64.SP, Imm: spillOff(vr)})
}

// branchTo emits a PC-relative branch to a label and records it as a
// terminator for the outliner.
func (e *emitter) branchTo(i a64.Inst, l a64.Label) {
	e.terms = append(e.terms, e.asm.InstTo(i, l))
}

// termInst emits a non-label control-transfer instruction (ret, br, blr)
// and records it.
func (e *emitter) termInst(i a64.Inst) int {
	off := e.asm.Inst(i)
	e.terms = append(e.terms, off)
	return off
}

// materialize emits movz/movn/movk to load an arbitrary constant.
func (e *emitter) materialize(reg a64.Reg, v int64) {
	chunk := func(x int64, k uint) int64 { return (x >> (16 * k)) & 0xFFFF }
	if v >= 0 {
		first := true
		for k := uint(0); k < 4; k++ {
			c := chunk(v, k)
			if c == 0 {
				continue
			}
			if first {
				e.asm.Inst(a64.Inst{Op: a64.OpMovz, Sf: true, Rd: reg, Imm: c, HW: uint8(k)})
				first = false
			} else {
				e.asm.Inst(a64.Inst{Op: a64.OpMovk, Sf: true, Rd: reg, Imm: c, HW: uint8(k)})
			}
		}
		if first {
			e.asm.Inst(a64.Inst{Op: a64.OpMovz, Sf: true, Rd: reg})
		}
		return
	}
	e.asm.Inst(a64.Inst{Op: a64.OpMovn, Sf: true, Rd: reg, Imm: chunk(^v, 0)})
	for k := uint(1); k < 4; k++ {
		if c := chunk(v, k); c != 0xFFFF {
			e.asm.Inst(a64.Inst{Op: a64.OpMovk, Sf: true, Rd: reg, Imm: c, HW: uint8(k)})
		}
	}
}

// prologue emits the frame setup, callee-saved spills, the stack-overflow
// check (Figure 4c), and argument placement.
func (e *emitter) prologue() {
	if e.frame <= 504 {
		e.asm.Inst(a64.Inst{Op: a64.OpStp, Rd: a64.FP, Rt2: a64.LR, Rn: a64.SP,
			Imm: -e.frame, Index: a64.IndexPre})
	} else {
		e.asm.Inst(a64.Inst{Op: a64.OpSubImm, Sf: true, Rd: a64.SP, Rn: a64.SP, Imm: e.frame})
		e.asm.Inst(a64.Inst{Op: a64.OpStp, Rd: a64.FP, Rt2: a64.LR, Rn: a64.SP})
	}
	// mov x29, sp
	e.asm.Inst(a64.Inst{Op: a64.OpAddImm, Sf: true, Rd: a64.FP, Rn: a64.SP})

	if !e.isLeaf() {
		// The stack-overflow checking pattern. With CTO it collapses to a
		// one-instruction thunk call; x29/x30 are already saved, so
		// clobbering x30 here is safe.
		if e.opts.CTO {
			e.terms = append(e.terms, e.asm.BlSym(PackSym(SymKindStackCheck, 0)))
		} else {
			e.asm.Inst(a64.Inst{Op: a64.OpSubImm, Sf: true, Rd: a64.IP0, Rn: a64.SP,
				Imm: abi.StackGuard >> 12, Shift12: true})
			e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Rd: a64.XZR, Rn: a64.IP0})
		}
	}
	// Save the callee-saved dex-register file.
	for pair := 0; pair < numAllocRegs/2; pair++ {
		e.asm.Inst(a64.Inst{Op: a64.OpStp,
			Rd: firstAllocReg + a64.Reg(2*pair), Rt2: firstAllocReg + a64.Reg(2*pair+1),
			Rn: a64.SP, Imm: 16 + 16*int64(pair)})
	}
	for i := 0; i < e.m.NumIns && i < 2; i++ {
		vr := uint8(e.m.NumRegs - e.m.NumIns + i)
		e.setFrom(vr, a64.X1+a64.Reg(i))
	}
}

// epilogue restores saved registers, tears down the frame, and returns.
func (e *emitter) epilogue() {
	for pair := 0; pair < numAllocRegs/2; pair++ {
		e.asm.Inst(a64.Inst{Op: a64.OpLdp,
			Rd: firstAllocReg + a64.Reg(2*pair), Rt2: firstAllocReg + a64.Reg(2*pair+1),
			Rn: a64.SP, Imm: 16 + 16*int64(pair)})
	}
	if e.frame <= 504 {
		e.asm.Inst(a64.Inst{Op: a64.OpLdp, Rd: a64.FP, Rt2: a64.LR, Rn: a64.SP,
			Imm: e.frame, Index: a64.IndexPost})
	} else {
		e.asm.Inst(a64.Inst{Op: a64.OpLdp, Rd: a64.FP, Rt2: a64.LR, Rn: a64.SP})
		e.asm.Inst(a64.Inst{Op: a64.OpAddImm, Sf: true, Rd: a64.SP, Rn: a64.SP, Imm: e.frame})
	}
	e.termInst(a64.Inst{Op: a64.OpRet, Rn: a64.LR})
}

// blockFallThrough closes a block that does not end in an unconditional
// transfer: if the fall-through successor is not the next block in layout
// order, branch to it.
func (e *emitter) blockFallThrough(bi int, b *hgraph.Block) {
	t := b.Terminator()
	if t != nil && t.Op.IsTerminal() {
		return
	}
	if len(b.Succs) == 0 {
		return
	}
	ft := b.Succs[0]
	if bi+1 < len(e.g.Blocks) && e.g.Blocks[bi+1].ID == ft {
		return
	}
	e.branchTo(a64.Inst{Op: a64.OpB}, e.blockLabels[ft])
}

// poolLabel interns a 64-bit constant in the literal pool.
func (e *emitter) poolLabel(v uint64) a64.Label {
	if l, ok := e.pool[v]; ok {
		return l
	}
	l := e.asm.NewLabel()
	e.pool[v] = l
	e.poolOrder = append(e.poolOrder, v)
	return l
}

// javaCall emits the Java function calling pattern (Figure 4a): the callee
// ArtMethod is already in x0.
func (e *emitter) javaCall() {
	if e.opts.CTO {
		off := e.asm.BlSym(PackSym(SymKindJavaEntry, abi.EntryPointOffset))
		e.terms = append(e.terms, off)
		e.stackmap = append(e.stackmap, StackMapEntry{NativeOff: off, DexPC: e.dexPC, Live: e.curLive})
		return
	}
	e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.LR, Rn: a64.X0, Imm: abi.EntryPointOffset})
	off := e.termInst(a64.Inst{Op: a64.OpBlr, Rn: a64.LR})
	e.stackmap = append(e.stackmap, StackMapEntry{NativeOff: off, DexPC: e.dexPC, Live: e.curLive})
}

// nativeCall emits the ART native function calling pattern (Figure 4b).
func (e *emitter) nativeCall(f dex.NativeFunc) {
	epOff := f.EntrypointOffset()
	if e.opts.CTO {
		off := e.asm.BlSym(PackSym(SymKindNativeEP, epOff))
		e.terms = append(e.terms, off)
		e.stackmap = append(e.stackmap, StackMapEntry{NativeOff: off, DexPC: e.dexPC, Live: e.curLive})
		return
	}
	e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.LR, Rn: a64.TR, Imm: epOff})
	off := e.termInst(a64.Inst{Op: a64.OpBlr, Rn: a64.LR})
	e.stackmap = append(e.stackmap, StackMapEntry{NativeOff: off, DexPC: e.dexPC, Live: e.curLive})
}

// nullCheck branches to the shared null-pointer slow path if reg is zero.
func (e *emitter) nullCheck(reg a64.Reg) {
	e.npeUsed = true
	e.branchTo(a64.Inst{Op: a64.OpCbz, Sf: true, Rd: reg}, e.npeLabel)
}

// arrayElemAddr performs the null check, bounds check, and element base
// computation shared by aget/aput: on return ip0 holds &arr[0] and the
// returned register holds the index for register-offset addressing.
func (e *emitter) arrayElemAddr(arrReg, idxReg uint8) a64.Reg {
	arr := e.src(arrReg, a64.X9)
	e.nullCheck(arr)
	idx := e.src(idxReg, a64.X10)
	e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.IP0, Rn: arr}) // length header
	e.asm.Inst(a64.Inst{Op: a64.OpSubsReg, Sf: true, Rd: a64.XZR, Rn: idx, Rm: a64.IP0})
	e.boundsUsed = true
	e.branchTo(a64.Inst{Op: a64.OpBCond, Cond: a64.HS}, e.boundsLabel)
	e.asm.Inst(a64.Inst{Op: a64.OpAddImm, Sf: true, Rd: a64.IP0, Rn: arr, Imm: abi.ObjectHeaderSize})
	return idx
}

// insn emits one IR instruction.
func (e *emitter) insn(b *hgraph.Block, in hgraph.Insn) error {
	switch in.Op {
	case dex.OpNopCode:

	case dex.OpConst:
		d := e.dst(in.A, a64.X8)
		e.materialize(d, in.Lit)
		e.store(in.A, d)

	case dex.OpConstPool:
		l := e.poolLabel(e.m.Pool[in.Lit])
		d := e.dst(in.A, a64.X8)
		e.asm.InstTo(a64.Inst{Op: a64.OpLdrLit, Sf: true, Rd: d}, l)
		e.store(in.A, d)

	case dex.OpMove:
		s := e.src(in.B, a64.X9)
		if d, ok := allocated(in.A); ok {
			e.asm.Inst(a64.Inst{Op: a64.OpOrrReg, Sf: true, Rd: d, Rn: a64.XZR, Rm: s})
		} else {
			e.store(in.A, s)
		}

	case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
		dex.OpMul, dex.OpShl, dex.OpShr:
		sb := e.src(in.B, a64.X9)
		sc := e.src(in.C, a64.X10)
		var op a64.Op
		switch in.Op {
		case dex.OpAdd:
			op = a64.OpAddReg
		case dex.OpSub:
			op = a64.OpSubReg
		case dex.OpAnd:
			op = a64.OpAndReg
		case dex.OpOr:
			op = a64.OpOrrReg
		case dex.OpMul:
			op = a64.OpMul
		case dex.OpShl:
			op = a64.OpLslReg
		case dex.OpShr:
			op = a64.OpLsrReg
		default:
			op = a64.OpEorReg
		}
		d := e.dst(in.A, a64.X8)
		e.asm.Inst(a64.Inst{Op: op, Sf: true, Rd: d, Rn: sb, Rm: sc})
		e.store(in.A, d)

	case dex.OpAddLit:
		sb := e.src(in.B, a64.X9)
		d := e.dst(in.A, a64.X8)
		switch {
		case in.Lit >= 0 && in.Lit <= 0xFFF:
			e.asm.Inst(a64.Inst{Op: a64.OpAddImm, Sf: true, Rd: d, Rn: sb, Imm: in.Lit})
		case in.Lit < 0 && -in.Lit <= 0xFFF:
			e.asm.Inst(a64.Inst{Op: a64.OpSubImm, Sf: true, Rd: d, Rn: sb, Imm: -in.Lit})
		default:
			e.materialize(a64.X10, in.Lit)
			e.asm.Inst(a64.Inst{Op: a64.OpAddReg, Sf: true, Rd: d, Rn: sb, Rm: a64.X10})
		}
		e.store(in.A, d)

	case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe:
		sa := e.src(in.A, a64.X9)
		sb := e.src(in.B, a64.X10)
		e.asm.Inst(a64.Inst{Op: a64.OpSubsReg, Sf: true, Rd: a64.XZR, Rn: sa, Rm: sb})
		var c a64.Cond
		switch in.Op {
		case dex.OpIfEq:
			c = a64.EQ
		case dex.OpIfNe:
			c = a64.NE
		case dex.OpIfLt:
			c = a64.LT
		default:
			c = a64.GE
		}
		e.branchTo(a64.Inst{Op: a64.OpBCond, Cond: c}, e.blockLabels[in.Target])

	case dex.OpIfEqz:
		e.branchTo(a64.Inst{Op: a64.OpCbz, Sf: true, Rd: e.src(in.A, a64.X9)}, e.blockLabels[in.Target])

	case dex.OpIfNez:
		e.branchTo(a64.Inst{Op: a64.OpCbnz, Sf: true, Rd: e.src(in.A, a64.X9)}, e.blockLabels[in.Target])

	case dex.OpGoto:
		e.branchTo(a64.Inst{Op: a64.OpB}, e.blockLabels[in.Target])

	case dex.OpPackedSwitch:
		e.indirect = true
		tbl := switchTable{label: e.asm.NewLabel()}
		for _, t := range in.Targets {
			tbl.targets = append(tbl.targets, e.blockLabels[t])
		}
		e.tables = append(e.tables, tbl)
		fall := e.blockLabels[b.Succs[0]]
		sa := e.src(in.A, a64.X9)
		if n := int64(len(in.Targets)); n <= 0xFFF {
			e.asm.Inst(a64.Inst{Op: a64.OpSubsImm, Sf: true, Rd: a64.XZR, Rn: sa, Imm: n})
		} else {
			return fmt.Errorf("switch with %d targets", len(in.Targets))
		}
		e.branchTo(a64.Inst{Op: a64.OpBCond, Cond: a64.HS}, fall)
		e.asm.InstTo(a64.Inst{Op: a64.OpAdr, Rd: a64.IP0}, tbl.label)
		e.asm.Inst(a64.Inst{Op: a64.OpLdrReg, Sf: true, Rd: a64.IP1, Rn: a64.IP0, Rm: sa})
		e.asm.Inst(a64.Inst{Op: a64.OpAddReg, Sf: true, Rd: a64.IP1, Rn: a64.IP0, Rm: a64.IP1})
		e.termInst(a64.Inst{Op: a64.OpBr, Rn: a64.IP1})

	case dex.OpInvoke:
		e.moveTo(a64.X1, in.B)
		e.moveTo(a64.X2, in.C)
		e.materialize(a64.X0, abi.ArtMethodAddr(uint32(in.Method)))
		e.javaCall()
		e.setFrom(in.A, a64.X0)

	case dex.OpInvokeNative:
		e.moveTo(a64.X1, in.B)
		e.moveTo(a64.X2, in.C)
		e.nativeCall(in.Native)
		e.setFrom(in.A, a64.X0)

	case dex.OpNewInstance:
		size := in.Lit
		if size <= 0 {
			size = 1
		}
		e.materialize(a64.X1, size)
		e.nativeCall(dex.NativeAllocObjectResolved)
		e.setFrom(in.A, a64.X0)

	case dex.OpNewArray:
		e.moveTo(a64.X1, in.B)
		e.nativeCall(dex.NativeAllocArrayResolved)
		e.setFrom(in.A, a64.X0)

	case dex.OpIGet:
		obj := e.src(in.B, a64.X9)
		e.nullCheck(obj)
		d := e.dst(in.A, a64.X8)
		e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: d, Rn: obj, Imm: abi.FieldOffset(in.Lit)})
		e.store(in.A, d)

	case dex.OpIPut:
		obj := e.src(in.B, a64.X9)
		e.nullCheck(obj)
		val := e.src(in.A, a64.X8)
		e.asm.Inst(a64.Inst{Op: a64.OpStrImm, Sf: true, Rd: val, Rn: obj, Imm: abi.FieldOffset(in.Lit)})

	case dex.OpAGet:
		idx := e.arrayElemAddr(in.B, in.C)
		d := e.dst(in.A, a64.X8)
		e.asm.Inst(a64.Inst{Op: a64.OpLdrReg, Sf: true, Rd: d, Rn: a64.IP0, Rm: idx})
		e.store(in.A, d)

	case dex.OpAPut:
		idx := e.arrayElemAddr(in.B, in.C)
		val := e.src(in.A, a64.X8)
		e.asm.Inst(a64.Inst{Op: a64.OpStrReg, Sf: true, Rd: val, Rn: a64.IP0, Rm: idx})

	case dex.OpArrayLen:
		arr := e.src(in.B, a64.X9)
		e.nullCheck(arr)
		d := e.dst(in.A, a64.X8)
		e.asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: d, Rn: arr})
		e.store(in.A, d)

	case dex.OpReturn:
		e.moveTo(a64.X0, in.A)
		e.epilogue()

	case dex.OpReturnVoid:
		e.asm.Inst(a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0})
		e.epilogue()

	default:
		return fmt.Errorf("unsupported opcode %s", in.Op)
	}
	return nil
}

// slowpaths emits the shared cold exception paths and records their ranges
// (the §3.2 "slowpath" metadata).
func (e *emitter) slowpaths() {
	emitThrow := func(label a64.Label, f dex.NativeFunc) {
		start := e.asm.PC()
		e.asm.Bind(label)
		e.nativeCall(f)
		// The throw entrypoint never returns; a brk documents that.
		e.terms = append(e.terms, e.asm.Inst(a64.Inst{Op: a64.OpBrk}))
		e.slow = append(e.slow, a64.Range{Start: start, End: e.asm.PC()})
	}
	if e.npeUsed {
		emitThrow(e.npeLabel, dex.NativeThrowNullPointer)
	} else {
		e.asm.Bind(e.npeLabel)
	}
	if e.boundsUsed {
		emitThrow(e.boundsLabel, dex.NativeThrowArrayBounds)
	} else {
		e.asm.Bind(e.boundsLabel)
	}
}

// emitTablesAndPool appends switch jump tables and the literal pool.
func (e *emitter) emitTablesAndPool() {
	for _, tbl := range e.tables {
		e.asm.Bind(tbl.label)
		for _, t := range tbl.targets {
			e.asm.RawLabelDiff(t, tbl.label)
		}
	}
	for _, v := range e.poolOrder {
		e.asm.Bind(e.pool[v])
		e.asm.Raw64(v)
	}
}
