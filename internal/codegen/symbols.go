package codegen

import (
	"fmt"

	"repro/internal/a64"
	"repro/internal/abi"
)

// Symbols name link-time-bound call targets. A symbol is packed into an int
// as kind<<32 | value so it can travel through a64.ExtRef without a side
// table.
const (
	// SymKindJavaEntry is the CTO thunk for the Java-call pattern; value is
	// the entry-point offset inside ArtMethod.
	SymKindJavaEntry = 1
	// SymKindNativeEP is the CTO thunk for the runtime-entrypoint pattern;
	// value is the offset from the thread register.
	SymKindNativeEP = 2
	// SymKindStackCheck is the CTO thunk for the stack-overflow check.
	SymKindStackCheck = 3
	// SymKindOutlined is a function created by link-time outlining; value
	// is an index assigned by the outliner.
	SymKindOutlined = 4
	// SymKindReoutlined is a function created by the post-hoc re-outliner
	// (internal/reoutline) on an already-linked image; value is an index
	// assigned by the pass. The distinct kind is the provenance bit: the
	// symbol travels through the serialized FuncRecord unchanged, so dumps
	// and lint rules can tell link-time from post-hoc outlining apart.
	SymKindReoutlined = 5
	// SymKindMethod is a direct method call resolved during lifting; value
	// is the callee's dex.MethodID. It exists only inside a lifted method's
	// Ext table while the re-outliner rewrites it — the relink rebinds and
	// removes it, and it is never serialized into an image.
	SymKindMethod = 6
)

// PackSym builds a symbol int from kind and value.
func PackSym(kind int, value int64) int {
	if value < 0 || value >= 1<<32 {
		panic(fmt.Sprintf("codegen: symbol value %d out of range", value))
	}
	return kind<<32 | int(value)
}

// UnpackSym splits a symbol int.
func UnpackSym(sym int) (kind int, value int64) {
	return sym >> 32, int64(sym & 0xFFFFFFFF)
}

// SymName renders a symbol for dumps.
func SymName(sym int) string {
	kind, v := UnpackSym(sym)
	switch kind {
	case SymKindJavaEntry:
		return fmt.Sprintf("thunk_java_entry_%d", v)
	case SymKindNativeEP:
		return fmt.Sprintf("thunk_native_ep_%#x", v)
	case SymKindStackCheck:
		return "thunk_stack_check"
	case SymKindOutlined:
		return fmt.Sprintf("OutlinedFunction_%d", v)
	case SymKindReoutlined:
		return fmt.Sprintf("ReoutlinedFunction_%d", v)
	case SymKindMethod:
		return fmt.Sprintf("method_%d", v)
	}
	return fmt.Sprintf("sym_%d", sym)
}

// ThunkWords returns the code of a CTO pattern thunk.
//
// The call-pattern thunks forward with ip0 (x16) so the link register still
// holds the original call site and the eventual callee returns straight to
// it; the stack-check thunk returns with ret. The caller's prologue saves
// x29/x30 before the stack check precisely so that this bl is safe (see
// DESIGN.md §4.6 for the deviation from ART's check-first order).
func ThunkWords(sym int) ([]uint32, error) {
	kind, v := UnpackSym(sym)
	var asm a64.Asm
	switch kind {
	case SymKindJavaEntry:
		// ldr x16, [x0, #v]; br x16
		asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.IP0, Rn: a64.X0, Imm: v})
		asm.Inst(a64.Inst{Op: a64.OpBr, Rn: a64.IP0})
	case SymKindNativeEP:
		// ldr x16, [x19, #v]; br x16
		asm.Inst(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.IP0, Rn: a64.TR, Imm: v})
		asm.Inst(a64.Inst{Op: a64.OpBr, Rn: a64.IP0})
	case SymKindStackCheck:
		// sub x16, sp, #StackGuard; ldr wzr, [x16]; ret
		asm.Inst(a64.Inst{Op: a64.OpSubImm, Sf: true, Rd: a64.IP0, Rn: a64.SP,
			Imm: abi.StackGuard >> 12, Shift12: true})
		asm.Inst(a64.Inst{Op: a64.OpLdrImm, Rd: a64.XZR, Rn: a64.IP0})
		asm.Inst(a64.Inst{Op: a64.OpRet, Rn: a64.LR})
	default:
		return nil, fmt.Errorf("codegen: no thunk for symbol %s", SymName(sym))
	}
	p, err := asm.Finalize()
	if err != nil {
		return nil, err
	}
	return p.Words, nil
}
