// Package core orchestrates the Calibro pipeline of Figure 5: per-method
// HGraph optimization and code generation (with CTO and LTBO.1 metadata
// collection), link-time binary outlining (LTBO.2, optionally over K
// parallel suffix trees, optionally hot-function-filtered), and final
// linking into an OAT image. It also implements the profile-guided rebuild
// loop of Figure 6.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/outline"
	"repro/internal/par"
	"repro/internal/profiler"
	"repro/internal/reoutline"
	"repro/internal/workload"
)

// Config selects the optimization configuration, mirroring the paper's
// evaluated method names (§4.1).
type Config struct {
	// CTO enables compilation-time outlining of the three ART patterns.
	CTO bool
	// LTBO enables linking-time binary outlining.
	LTBO bool
	// ParallelTrees is the number of partitioned suffix trees (PlOpti);
	// values <= 1 build one global tree.
	ParallelTrees int
	// DetectShards splits each tree's sequence construction and repeat
	// detection into N parallel shards whose candidates merge into one
	// global selection (outline.Options.DetectShards) — the Table 6
	// global-vs-parallel tradeoff as a tunable. <= 1 keeps the exact
	// global structure per tree.
	DetectShards int
	// HotFilter, together with Profile, excludes the hottest functions
	// from outlining (HfOpti).
	HotFilter bool
	Profile   *profiler.Profile
	// HotFraction is the cycle-coverage cut for the hot set (paper: 0.8).
	HotFraction float64
	// OptimizeIR runs the HGraph pass pipeline; the paper's baseline
	// ("all available code size optimization enabled") keeps it on.
	OptimizeIR bool
	// MinLength/MinBenefit tune the outliner (defaults per §3.3).
	MinLength  int
	MinBenefit int
	// Rounds repeats the outlining cycle (default 1); DedupFunctions
	// merges identical outlined bodies across trees and rounds.
	Rounds         int
	DedupFunctions bool
	// Detector selects the repeat-detection backend (suffix tree by
	// default; outline.DetectorSuffixArray for the low-memory variant).
	Detector outline.DetectorKind
	// VerifyImage runs the static image verifier (internal/analysis) on
	// the linked image and fails the build on any warning or error. It is
	// the image-only counterpart of the always-on outline.VerifyRewrite:
	// it needs no compile-time snapshot, so it checks exactly what a
	// loader of the serialized image could check.
	VerifyImage bool
	// Workers bounds the goroutines every per-method pipeline stage
	// (compile, outline, rewrite verification, image lint) fans out on;
	// <= 0 selects runtime.GOMAXPROCS(0). The determinism contract is
	// that the linked image — and any error — is byte-identical for
	// every value; only wall-clock time changes. The cmd/calibro and
	// cmd/oatlint -j flags set this.
	Workers int
	// Tracer, when non-nil, records the build's telemetry: a root
	// "build" span, one "stage" span per pipeline stage (compile,
	// outline, link, verify), per-method and per-group task spans on
	// worker lanes, and the outline.Stats counters. Tracing observes
	// only — the determinism contract holds with it on: the linked
	// image is byte-identical whether Tracer is live or nil, at every
	// Workers value. The cmd/calibro -trace/-metrics/-stats flags set
	// this.
	Tracer *obs.Tracer
	// Cache, when non-nil, is the content-addressed compilation cache the
	// compile stage consults before generating any code: methods whose
	// bytecode, referenced-method signatures, and codegen knobs are
	// already stored decode the cached artifact instead of compiling. The
	// same determinism contract as Workers and Tracer applies — a warm
	// build serializes to a byte-identical image at every pool width, and
	// corrupt or stale entries degrade to recompilation, never an error.
	// The cmd/calibro -cache/-cache-dir flags set this.
	Cache *cache.Cache
}

// Baseline is the original AOSP configuration.
func Baseline() Config { return Config{OptimizeIR: true} }

// CTOOnly enables only compilation-time outlining.
func CTOOnly() Config { return Config{OptimizeIR: true, CTO: true} }

// CTOLTBO enables both outliners with a single global suffix tree.
func CTOLTBO() Config { return Config{OptimizeIR: true, CTO: true, LTBO: true} }

// CTOLTBOPl adds the paralleled suffix tree optimization.
func CTOLTBOPl(k int) Config {
	c := CTOLTBO()
	c.ParallelTrees = k
	return c
}

// CTOLTBOPlHf adds hot-function filtering on top of CTOLTBOPl; the caller
// supplies the profile from a prior instrumented run.
func CTOLTBOPlHf(k int, p *profiler.Profile) Config {
	c := CTOLTBOPl(k)
	c.HotFilter = true
	c.Profile = p
	return c
}

// Result is a completed build.
type Result struct {
	Image   *oat.Image
	Methods []*codegen.CompiledMethod
	Outline *outline.Stats // nil when LTBO is off

	// Workers is the resolved pool width the parallel stages ran with,
	// so build-time reports (Table 6) can label their columns.
	Workers int

	// Per-stage wall-clock times. Compile, outline, and verify are
	// parallel stages: these are elapsed times at Workers width, not CPU
	// time summed over the pool.
	CompileTime time.Duration
	OutlineTime time.Duration
	LinkTime    time.Duration
	VerifyTime  time.Duration // zero unless Config.VerifyImage

	// WallTime is the true end-to-end build duration, measured from one
	// clock read at Build entry to the successful return. It is >= the
	// stage sum: work between stages (option assembly, hot-set
	// extraction, result bookkeeping) happens on the wall clock but in
	// no stage.
	WallTime time.Duration
}

// StageTime is the sum of the recorded stage durations. Table 6 reports
// WallTime; the difference WallTime - StageTime is the inter-stage
// overhead the old sum silently dropped.
func (r *Result) StageTime() time.Duration {
	return r.CompileTime + r.OutlineTime + r.LinkTime + r.VerifyTime
}

// TextBytes is the paper's code-size metric.
func (r *Result) TextBytes() int { return r.Image.TextBytes() }

// Build compiles and links the app under the given configuration.
func Build(app *dex.App, cfg Config) (*Result, error) {
	return BuildCtx(context.Background(), app, cfg)
}

// BuildCtx is Build with cooperative cancellation: ctx is threaded through
// every parallel stage (compile, outline, rewrite verification, image
// lint), each of which checks it before starting every per-method or
// per-group task. A cancelled or deadline-expired context therefore stops
// the build at task granularity — in-flight tasks finish, nothing new
// starts — and BuildCtx returns ctx.Err(). The determinism contract is
// unchanged: a build that completes is byte-identical whether it ran under
// context.Background() (which restores Build exactly) or any live context.
func BuildCtx(ctx context.Context, app *dex.App, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Workers: par.Workers(cfg.Workers)}
	wall := time.Now()
	build := cfg.Tracer.Start("build", "build "+app.Name).
		Arg("methods", int64(len(app.Methods))).
		Arg("workers", int64(res.Workers))
	defer build.End()

	t0 := time.Now()
	sp := cfg.Tracer.Start("stage", "compile")
	methods, err := codegen.CompileCtx(ctx, app, codegen.Options{
		CTO: cfg.CTO, Optimize: cfg.OptimizeIR, Workers: cfg.Workers,
		Tracer: cfg.Tracer, Cache: cfg.Cache,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	res.CompileTime = time.Since(t0)
	res.Methods = methods

	var blobs []oat.Blob
	if cfg.LTBO {
		opts := outline.Options{
			MinLength:      cfg.MinLength,
			MinBenefit:     cfg.MinBenefit,
			Parallel:       cfg.ParallelTrees,
			DetectShards:   cfg.DetectShards,
			Rounds:         cfg.Rounds,
			DedupFunctions: cfg.DedupFunctions,
			Detector:       cfg.Detector,
			Workers:        cfg.Workers,
			Tracer:         cfg.Tracer,
		}
		if cfg.HotFilter {
			if cfg.Profile == nil {
				return nil, fmt.Errorf("core: hot-function filtering requires a profile (run ProfileGuidedBuild)")
			}
			frac := cfg.HotFraction
			if frac == 0 {
				frac = 0.8
			}
			opts.Hot = cfg.Profile.HotSet(frac)
		}
		t1 := time.Now()
		sp = cfg.Tracer.Start("stage", "outline").Arg("trees", int64(opts.Parallel))
		var stats *outline.Stats
		blobs, stats, err = outline.RunVerifiedCtx(ctx, methods, opts)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.OutlineTime = time.Since(t1)
		res.Outline = stats
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t2 := time.Now()
	sp = cfg.Tracer.Start("stage", "link")
	img, err := oat.Link(methods, blobs)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.LinkTime = time.Since(t2)
	res.Image = img

	if cfg.VerifyImage {
		t3 := time.Now()
		sp = cfg.Tracer.Start("stage", "verify")
		findings, err := analysis.LintCtx(ctx, img, cfg.Workers, cfg.Tracer)
		sp.End()
		if err != nil {
			return nil, err
		}
		if len(findings) > 0 {
			return nil, fmt.Errorf("core: image verification failed: %d findings, first: %s",
				len(findings), findings[0])
		}
		res.VerifyTime = time.Since(t3)
	}
	res.WallTime = time.Since(wall)
	return res, nil
}

// ProfileGuidedBuild implements the Figure 6 workflow: build once with the
// given configuration minus hot filtering, profile the script on the
// resulting image, then rebuild with the hot set excluded from outlining.
func ProfileGuidedBuild(app *dex.App, cfg Config, script []workload.Run) (*Result, *profiler.Profile, error) {
	return ProfileGuidedBuildCtx(context.Background(), app, cfg, script)
}

// ProfileGuidedBuildCtx is ProfileGuidedBuild with cooperative
// cancellation threaded through both builds; the profiling run between
// them is bounded by a context check on entry and exit.
func ProfileGuidedBuildCtx(ctx context.Context, app *dex.App, cfg Config, script []workload.Run) (*Result, *profiler.Profile, error) {
	first := cfg
	first.HotFilter = false
	first.Profile = nil
	r1, err := BuildCtx(ctx, app, first)
	if err != nil {
		return nil, nil, fmt.Errorf("core: initial build: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sp := cfg.Tracer.Start("stage", "profile").Arg("runs", int64(len(script)))
	prof, err := profiler.Collect(r1.Image, script, 0)
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("core: profiling: %w", err)
	}
	cfg.HotFilter = true
	cfg.Profile = prof
	r2, err := BuildCtx(ctx, app, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: guided rebuild: %w", err)
	}
	return r2, prof, nil
}

// DebloatConfig configures the reachability-driven rewrite of an already
// linked image (DebloatImage). The zero value is the conservative
// default: no-caller root inference, automatic worker width, no
// telemetry.
type DebloatConfig struct {
	// Roots are the explicit entry points reachability starts from — an
	// app's activity drivers, a JNI registration table, or a profiler's
	// hot set. Empty Roots with NoCallerRoots unset selects the default
	// no-caller inference.
	Roots []dex.MethodID
	// NoCallerRoots additionally roots every method the call graph
	// records no caller for (the conservative stand-in for "externally
	// visible"). It composes with explicit Roots.
	NoCallerRoots bool
	// Workers bounds the analysis fan-out; <= 0 selects GOMAXPROCS. The
	// output image is byte-identical at every width.
	Workers int
	// Tracer, when non-nil, records the analysis and rewrite telemetry.
	Tracer *obs.Tracer
}

// DebloatImage rewrites a linked image, removing every method body,
// outlined function, and thunk that is provably unreachable from the
// configured roots. The pass refuses unsound inputs (any error-severity
// lint finding), keeps everything on any analysis imprecision, and
// re-verifies its output with the full lint before returning it.
func DebloatImage(img *oat.Image, cfg DebloatConfig) (*oat.Image, *analysis.DebloatStats, error) {
	return DebloatImageCtx(context.Background(), img, cfg)
}

// DebloatImageCtx is DebloatImage with cooperative cancellation.
func DebloatImageCtx(ctx context.Context, img *oat.Image, cfg DebloatConfig) (*oat.Image, *analysis.DebloatStats, error) {
	roots := analysis.RootSet{Methods: cfg.Roots, NoCallers: cfg.NoCallerRoots}
	return analysis.DebloatCtx(ctx, img, roots, cfg.Workers, cfg.Tracer)
}

// ReoutlineConfig configures the post-hoc re-outlining of an already
// linked image (ReoutlineImage). The zero value runs a single global
// suffix tree with the link-time default thresholds.
type ReoutlineConfig struct {
	// MinLength/MinBenefit tune the detector (defaults per §3.3).
	MinLength  int
	MinBenefit int
	// ParallelTrees partitions the lifted methods into K suffix trees
	// (PlOpti); <= 1 builds one global tree.
	ParallelTrees int
	// DetectShards shards detection inside each tree.
	DetectShards int
	// Rounds repeats the outlining cycle; DedupFunctions merges identical
	// re-outlined bodies.
	Rounds         int
	DedupFunctions bool
	// Detector selects the repeat-detection backend.
	Detector outline.DetectorKind
	// Workers bounds every parallel stage; <= 0 selects GOMAXPROCS. The
	// output image is byte-identical at every width.
	Workers int
	// Tracer, when non-nil, records the per-stage spans and counters.
	Tracer *obs.Tracer
}

// ReoutlineImage re-outlines a linked image without its compile-time
// state: it lifts every method the legality mask admits back into
// rewritable form (inlining existing outlined calls, re-symbolizing call
// sites), runs the link-time detector over the lifted corpus, relinks
// preserving region order, and re-verifies the result against the input
// with the paired lint rules. Unsound or layout-pinned inputs are
// refused; frozen methods ride through byte-for-byte.
func ReoutlineImage(img *oat.Image, cfg ReoutlineConfig) (*oat.Image, *reoutline.Stats, error) {
	return ReoutlineImageCtx(context.Background(), img, cfg)
}

// ReoutlineImageCtx is ReoutlineImage with cooperative cancellation.
func ReoutlineImageCtx(ctx context.Context, img *oat.Image, cfg ReoutlineConfig) (*oat.Image, *reoutline.Stats, error) {
	return reoutline.RunCtx(ctx, img, reoutline.Config{
		MinLength:      cfg.MinLength,
		MinBenefit:     cfg.MinBenefit,
		ParallelTrees:  cfg.ParallelTrees,
		DetectShards:   cfg.DetectShards,
		Rounds:         cfg.Rounds,
		DedupFunctions: cfg.DedupFunctions,
		Detector:       cfg.Detector,
		Workers:        cfg.Workers,
		Tracer:         cfg.Tracer,
	})
}
