package core

import (
	"reflect"
	"testing"

	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/hgraph"
	"repro/internal/profiler"
	"repro/internal/workload"
)

func testApp(t *testing.T, methods int) (*dex.App, *workload.Manifest) {
	t.Helper()
	app, man, err := workload.Generate(workload.Profile{
		Name: "core", Seed: 17, Methods: methods,
		NativeFrac: 0.05, SwitchFrac: 0.08, HotFrac: 0.06,
		HotLoopIters: 60, WarmLoopIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app, man
}

// TestConfigLadderShrinksText walks the paper's configuration ladder and
// checks the Table 4 ordering: every optimization shrinks the baseline;
// parallel trees and hot filtering give back some of LTBO's reduction.
func TestConfigLadderShrinksText(t *testing.T) {
	app, man := testApp(t, 120)
	script := workload.Script(man, 3, 1)

	base, err := Build(app, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	cto, err := Build(app, CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(app, CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(app, CTOLTBOPl(6))
	if err != nil {
		t.Fatal(err)
	}
	hf, _, err := ProfileGuidedBuild(app, CTOLTBOPl(6), script)
	if err != nil {
		t.Fatal(err)
	}

	b, c, f, p, h := base.TextBytes(), cto.TextBytes(), full.TextBytes(), par.TextBytes(), hf.TextBytes()
	if !(c < b) {
		t.Errorf("CTO %d !< baseline %d", c, b)
	}
	if !(f < c) {
		t.Errorf("CTO+LTBO %d !< CTO %d", f, c)
	}
	if !(f <= p && p <= h) {
		t.Errorf("ordering violated: full=%d parallel=%d hotfilter=%d", f, p, h)
	}
	if !(h < b) {
		t.Errorf("all optimizations %d !< baseline %d", h, b)
	}
	if full.Outline == nil || full.Outline.OutlinedFunctions == 0 {
		t.Error("LTBO stats missing")
	}
	if base.Outline != nil {
		t.Error("baseline has outline stats")
	}
}

// TestAllConfigsBehaveIdentically: every configuration's image computes
// the same observables as the reference interpreter.
func TestAllConfigsBehaveIdentically(t *testing.T) {
	app, man := testApp(t, 60)
	script := workload.Script(man, 2, 2)

	configs := map[string]func() (*Result, error){
		"baseline": func() (*Result, error) { return Build(app, Baseline()) },
		"cto":      func() (*Result, error) { return Build(app, CTOOnly()) },
		"ltbo":     func() (*Result, error) { return Build(app, CTOLTBO()) },
		"parallel": func() (*Result, error) { return Build(app, CTOLTBOPl(4)) },
		"hotfilter": func() (*Result, error) {
			r, _, err := ProfileGuidedBuild(app, CTOLTBOPl(4), script)
			return r, err
		},
	}
	for name, build := range configs {
		res, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, run := range script[:3] {
			ip := &hgraph.Interp{App: app, MaxDepth: 10_000}
			want, err := ip.Run(run.Entry, run.Args[:])
			if err != nil {
				t.Fatal(err)
			}
			got, err := emu.New(res.Image).Run(run.Entry, run.Args[:])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if want.Ret != got.Ret || want.Exc != got.Exc || !reflect.DeepEqual(want.Log, got.Log) {
				t.Fatalf("%s diverges on m%d%v", name, run.Entry, run.Args)
			}
		}
	}
}

func TestHotFilterRequiresProfile(t *testing.T) {
	app, _ := testApp(t, 20)
	cfg := CTOLTBO()
	cfg.HotFilter = true
	if _, err := Build(app, cfg); err == nil {
		t.Fatal("hot filter without profile accepted")
	}
}

func TestProfileFindsPlantedHotMethods(t *testing.T) {
	app, man := testApp(t, 150)
	script := workload.Script(man, 3, 3)
	res, err := Build(app, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profiler.Collect(res.Image, script, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalSamples == 0 {
		t.Fatal("no samples")
	}
	hot := prof.HotSet(0.8)
	if len(hot) == 0 {
		t.Fatal("empty hot set")
	}
	// The planted hot-loop methods should dominate the measured hot set.
	planted := map[dex.MethodID]bool{}
	for _, id := range man.Hot {
		planted[id] = true
	}
	found := 0
	for _, id := range man.Hot {
		if hot[id] {
			found++
		}
	}
	if found*2 < len(man.Hot) {
		t.Errorf("profiler found %d/%d planted hot methods; hot set %d", found, len(man.Hot), len(hot))
	}
	// The hot set obeys the 80%% coverage rule: it must be a small
	// fraction of all executed methods.
	if len(hot) > len(prof.Functions)/2 {
		t.Errorf("hot set %d of %d functions is not selective", len(hot), len(prof.Functions))
	}
}

func TestBuildTimesRecorded(t *testing.T) {
	app, _ := testApp(t, 30)
	res, err := Build(app, CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompileTime <= 0 || res.OutlineTime <= 0 || res.StageTime() < res.CompileTime {
		t.Errorf("times: compile=%v outline=%v link=%v", res.CompileTime, res.OutlineTime, res.LinkTime)
	}
	if res.WallTime < res.StageTime() {
		t.Errorf("WallTime %v below the stage sum %v; it must cover the whole build", res.WallTime, res.StageTime())
	}
}

// TestVerifyImage exercises the opt-in post-link verification: a clean
// build passes (and records the verification time), and a config that
// would produce findings fails the build rather than returning an image.
func TestVerifyImage(t *testing.T) {
	app, _ := testApp(t, 40)
	cfg := CTOLTBO()
	cfg.VerifyImage = true
	res, err := Build(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyTime <= 0 {
		t.Error("VerifyImage build recorded no verification time")
	}
	if res.StageTime() < res.VerifyTime {
		t.Error("StageTime excludes VerifyTime")
	}
	if res.WallTime < res.VerifyTime {
		t.Error("WallTime excludes VerifyTime")
	}

	off, err := Build(app, CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	if off.VerifyTime != 0 {
		t.Error("verification ran without the flag")
	}
}
