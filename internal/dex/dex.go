// Package dex models a simplified DEX container: classes holding methods
// whose bodies are written in a register-based bytecode in the style of
// Dalvik. It is the input language of the dex2oat-like compilation pipeline
// (internal/hgraph + internal/codegen).
//
// The bytecode is deliberately small but keeps every feature that matters
// to Calibro's code-size story:
//
//   - invoke-virtual lowers to the ART Java-call pattern
//     (ldr x30, [x0, #entryOff]; blr x30);
//   - invoke-native lowers to the thread-register pattern
//     (ldr x30, [x19, #off]; blr x30);
//   - new-instance and array accesses produce slow paths;
//   - const-pool produces embedded data (literal pools) inside code;
//   - packed-switch lowers to an indirect branch, which disqualifies the
//     owning method from link-time outlining;
//   - native methods are compiled as JNI stubs and flagged unoutlinable.
package dex

import "fmt"

// MethodID is a program-wide method index. Invocations refer to callees by
// MethodID; the linker binds them to ArtMethod slots.
type MethodID uint32

// Opcode enumerates the bytecode operations.
type Opcode uint8

// Bytecode operations. Register operands are A, B, C; Lit is a literal.
const (
	OpNopCode      Opcode = iota
	OpConst               // vA = Lit
	OpConstPool           // vA = pool[Lit] (64-bit constant from the method pool)
	OpMove                // vA = vB
	OpAdd                 // vA = vB + vC
	OpSub                 // vA = vB - vC
	OpAnd                 // vA = vB & vC
	OpOr                  // vA = vB | vC
	OpXor                 // vA = vB ^ vC
	OpMul                 // vA = vB * vC
	OpShl                 // vA = vB << (vC & 63)
	OpShr                 // vA = vB >>> (vC & 63), logical
	OpAddLit              // vA = vB + Lit
	OpIfEq                // if vA == vB goto Target
	OpIfNe                // if vA != vB goto Target
	OpIfLt                // if vA <  vB goto Target
	OpIfGe                // if vA >= vB goto Target
	OpIfEqz               // if vA == 0 goto Target
	OpIfNez               // if vA != 0 goto Target
	OpGoto                // goto Target
	OpPackedSwitch        // switch vA: Targets[0..n); fallthrough if out of range
	OpInvoke              // vA = call Method(vB, vC) — Java virtual call
	OpInvokeNative        // vA = call Native(vB, vC) — ART runtime entrypoint
	OpNewInstance         // vA = alloc(type Lit) via pAllocObjectResolved
	OpIGet                // vA = vB.field[Lit] (instance field, null-checked)
	OpIPut                // vB.field[Lit] = vA
	OpAGet                // vA = vB[vC] (array read, bounds-checked)
	OpAPut                // vB[vC] = vA
	OpNewArray            // vA = allocArray(len vB)
	OpArrayLen            // vA = len(vB)
	OpReturn              // return vA
	OpReturnVoid          // return
	opcodeMax
)

var opcodeNames = [...]string{
	"nop", "const", "const-pool", "move", "add", "sub", "and", "or", "xor",
	"mul", "shl", "shr",
	"add-lit", "if-eq", "if-ne", "if-lt", "if-ge", "if-eqz", "if-nez", "goto",
	"packed-switch", "invoke", "invoke-native", "new-instance", "iget", "iput",
	"aget", "aput", "new-array", "array-len", "return", "return-void",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// IsBranch reports whether the opcode can transfer control to Target(s).
func (op Opcode) IsBranch() bool {
	switch op {
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfEqz, OpIfNez, OpGoto, OpPackedSwitch:
		return true
	}
	return false
}

// IsTerminal reports whether control never falls through to the next
// instruction.
func (op Opcode) IsTerminal() bool {
	switch op {
	case OpGoto, OpReturn, OpReturnVoid:
		return true
	}
	return false
}

// NativeFunc identifies an ART runtime entrypoint reachable through the
// thread register. The numeric value determines its offset in the thread's
// entrypoint table.
type NativeFunc uint8

// ART runtime entrypoints modeled by the emulator.
const (
	NativeAllocObjectResolved NativeFunc = iota
	NativeAllocArrayResolved
	NativeThrowNullPointer
	NativeThrowArrayBounds
	NativeThrowStackOverflow
	NativeGCSafepoint
	NativeLogValue
	nativeFuncMax
)

var nativeNames = [...]string{
	"pAllocObjectResolved", "pAllocArrayResolved", "pThrowNullPointer",
	"pThrowArrayBounds", "pThrowStackOverflow", "pGCSafepoint", "pLogValue",
}

func (f NativeFunc) String() string {
	if int(f) < len(nativeNames) {
		return nativeNames[f]
	}
	return fmt.Sprintf("native(%d)", uint8(f))
}

// NumNativeFuncs is the size of the thread entrypoint table.
const NumNativeFuncs = int(nativeFuncMax)

// EntrypointOffset returns the byte offset of f's slot from the thread
// register, mirroring ART's Thread::quick_entrypoints_ layout.
func (f NativeFunc) EntrypointOffset() int64 { return 0x200 + 8*int64(f) }

// Insn is one bytecode instruction.
type Insn struct {
	Op      Opcode
	A, B, C uint8      // register operands
	Lit     int64      // literal / pool index / field offset / type index
	Target  int32      // branch target (instruction index)
	Targets []int32    // packed-switch targets
	Method  MethodID   // invoke callee
	Native  NativeFunc // invoke-native callee
}

func (in Insn) String() string {
	switch {
	case in.Op == OpInvoke:
		return fmt.Sprintf("%s v%d, m%d(v%d, v%d)", in.Op, in.A, in.Method, in.B, in.C)
	case in.Op == OpInvokeNative:
		return fmt.Sprintf("%s v%d, %s(v%d, v%d)", in.Op, in.A, in.Native, in.B, in.C)
	case in.Op == OpPackedSwitch:
		return fmt.Sprintf("%s v%d, %v", in.Op, in.A, in.Targets)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s v%d, v%d, @%d", in.Op, in.A, in.B, in.Target)
	default:
		return fmt.Sprintf("%s v%d, v%d, v%d, #%d", in.Op, in.A, in.B, in.C, in.Lit)
	}
}

// Method is one dex method.
type Method struct {
	ID      MethodID
	Class   string
	Name    string
	NumRegs int      // virtual registers v0..vNumRegs-1
	NumIns  int      // parameters, passed in the trailing registers
	Native  bool     // JNI method: compiled as a stub, never outlined
	Code    []Insn   // empty for native methods
	Pool    []uint64 // 64-bit constants referenced by OpConstPool
}

// FullName returns "Class.Name".
func (m *Method) FullName() string { return m.Class + "." + m.Name }

// Class groups methods, mirroring a dex class_def.
type Class struct {
	Name    string
	Methods []*Method
}

// File is one dex file: a named set of classes.
type File struct {
	Name    string
	Classes []*Class
}

// App models an application package (APK): several dex files plus the
// program-wide method table that MethodIDs index.
type App struct {
	Name    string
	Files   []*File
	Methods []*Method // indexed by MethodID
}

// AddMethod appends m to the app-wide table, assigns its ID, and attaches
// it to the class.
func (a *App) AddMethod(c *Class, m *Method) MethodID {
	m.ID = MethodID(len(a.Methods))
	a.Methods = append(a.Methods, m)
	c.Methods = append(c.Methods, m)
	return m.ID
}

// NumMethods returns the number of methods in the app-wide table.
func (a *App) NumMethods() int { return len(a.Methods) }
