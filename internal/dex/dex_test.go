package dex

import (
	"strings"
	"testing"
)

// buildApp assembles a minimal two-method app used across tests.
func buildApp() (*App, *Class) {
	app := &App{Name: "test"}
	cls := &Class{Name: "LMain"}
	file := &File{Name: "classes.dex", Classes: []*Class{cls}}
	app.Files = []*File{file}

	callee := &Method{
		Class: "LMain", Name: "callee", NumRegs: 2, NumIns: 2,
		Code: []Insn{
			{Op: OpAdd, A: 0, B: 0, C: 1},
			{Op: OpReturn, A: 0},
		},
	}
	app.AddMethod(cls, callee)

	caller := &Method{
		Class: "LMain", Name: "caller", NumRegs: 4, NumIns: 0,
		Pool: []uint64{0xDEADBEEFCAFE},
		Code: []Insn{
			{Op: OpConst, A: 0, Lit: 3},
			{Op: OpConst, A: 1, Lit: 4},
			{Op: OpInvoke, A: 2, Method: callee.ID, B: 0, C: 1},
			{Op: OpConstPool, A: 3, Lit: 0},
			{Op: OpReturn, A: 2},
		},
	}
	app.AddMethod(cls, caller)
	return app, cls
}

func TestValidateOK(t *testing.T) {
	app, _ := buildApp()
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := app.CollectStats()
	if s.Methods != 2 || s.Classes != 1 || s.Files != 1 || s.Insns != 7 || s.Native != 0 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestAddMethodAssignsIDs(t *testing.T) {
	app, cls := buildApp()
	m := &Method{Class: "LMain", Name: "third", NumRegs: 1,
		Code: []Insn{{Op: OpReturnVoid}}}
	id := app.AddMethod(cls, m)
	if id != 2 || m.ID != 2 || app.NumMethods() != 3 {
		t.Errorf("id=%d m.ID=%d n=%d", id, m.ID, app.NumMethods())
	}
	if app.Methods[2] != m || len(cls.Methods) != 3 {
		t.Error("method not registered in both tables")
	}
}

func TestValidateRejects(t *testing.T) {
	mk := func(mut func(app *App, caller *Method)) error {
		app, _ := buildApp()
		mut(app, app.Methods[1])
		return app.Validate()
	}
	cases := map[string]func(app *App, caller *Method){
		"register out of range": func(_ *App, m *Method) { m.Code[0].A = 99 },
		"bad branch target": func(_ *App, m *Method) {
			m.Code[0] = Insn{Op: OpGoto, Target: 100}
		},
		"negative branch target": func(_ *App, m *Method) {
			m.Code[0] = Insn{Op: OpGoto, Target: -1}
		},
		"bad invoke target": func(_ *App, m *Method) { m.Code[2].Method = 77 },
		"bad pool index":    func(_ *App, m *Method) { m.Code[3].Lit = 5 },
		"bad native func": func(_ *App, m *Method) {
			m.Code[2] = Insn{Op: OpInvokeNative, A: 2, Native: NativeFunc(200)}
		},
		"empty switch": func(_ *App, m *Method) {
			m.Code[0] = Insn{Op: OpPackedSwitch, A: 0}
		},
		"switch target out of range": func(_ *App, m *Method) {
			m.Code[0] = Insn{Op: OpPackedSwitch, A: 0, Targets: []int32{50}}
		},
		"no terminal": func(_ *App, m *Method) {
			m.Code = m.Code[:len(m.Code)-1]
		},
		"empty body":       func(_ *App, m *Method) { m.Code = nil },
		"bad opcode":       func(_ *App, m *Method) { m.Code[0].Op = opcodeMax },
		"regs < ins":       func(_ *App, m *Method) { m.NumRegs = 0; m.NumIns = 1 },
		"too many regs":    func(_ *App, m *Method) { m.NumRegs = 300 },
		"native with code": func(_ *App, m *Method) { m.Native = true },
		"id mismatch":      func(app *App, _ *Method) { app.Methods[0].ID = 9 },
		"nil slot":         func(app *App, _ *Method) { app.Methods[0] = nil },
		"duplicate name": func(app *App, m *Method) {
			m.Name = "callee"
			m.NumIns = 2
		},
	}
	for name, mut := range cases {
		if err := mk(mut); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestValidateNativeMethod(t *testing.T) {
	app, cls := buildApp()
	app.AddMethod(cls, &Method{Class: "LMain", Name: "jni", Native: true, NumRegs: 2, NumIns: 2})
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if app.CollectStats().Native != 1 {
		t.Error("native method not counted")
	}
}

func TestEntrypointOffsets(t *testing.T) {
	if NativeAllocObjectResolved.EntrypointOffset() != 0x200 {
		t.Error("first entrypoint offset")
	}
	seen := map[int64]bool{}
	for f := NativeFunc(0); int(f) < NumNativeFuncs; f++ {
		off := f.EntrypointOffset()
		if off%8 != 0 || seen[off] {
			t.Errorf("entrypoint %s offset %#x invalid or duplicated", f, off)
		}
		seen[off] = true
		if !strings.HasPrefix(f.String(), "p") {
			t.Errorf("entrypoint name %q does not match ART style", f)
		}
	}
}

func TestOpcodePredicatesAndStrings(t *testing.T) {
	branches := []Opcode{OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfEqz, OpIfNez, OpGoto, OpPackedSwitch}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s.IsBranch() = false", op)
		}
	}
	for _, op := range []Opcode{OpAdd, OpReturn, OpInvoke, OpConst} {
		if op.IsBranch() {
			t.Errorf("%s.IsBranch() = true", op)
		}
	}
	terminal := map[Opcode]bool{OpGoto: true, OpReturn: true, OpReturnVoid: true}
	for op := OpNopCode; op < opcodeMax; op++ {
		if op.IsTerminal() != terminal[op] {
			t.Errorf("%s.IsTerminal() = %v", op, op.IsTerminal())
		}
		if strings.HasPrefix(op.String(), "opcode(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	// Insn stringification covers the distinct layouts.
	for _, s := range []struct {
		in   Insn
		want string
	}{
		{Insn{Op: OpInvoke, A: 1, Method: 7, B: 2, C: 3}, "invoke v1, m7(v2, v3)"},
		{Insn{Op: OpInvokeNative, A: 1, Native: NativeGCSafepoint}, "invoke-native v1, pGCSafepoint(v0, v0)"},
		{Insn{Op: OpPackedSwitch, A: 2, Targets: []int32{4, 5}}, "packed-switch v2, [4 5]"},
		{Insn{Op: OpIfEq, A: 1, B: 2, Target: 9}, "if-eq v1, v2, @9"},
		{Insn{Op: OpAdd, A: 1, B: 2, C: 3}, "add v1, v2, v3, #0"},
	} {
		if got := s.in.String(); got != s.want {
			t.Errorf("String = %q, want %q", got, s.want)
		}
	}
}
