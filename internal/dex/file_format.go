package dex

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary serialization of an App in the spirit of the dex container: a
// magic ("dex\n035\0" like real dex files), the file/class/method
// hierarchy, and per-instruction encodings whose layout depends on the
// opcode — real dalvik instructions likewise come in opcode-specific
// formats. Immediates use zigzag varints.

var dexMagic = []byte("dex\n035\x00")

// Marshal serializes the app.
func Marshal(app *App) ([]byte, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("dex: refusing to marshal invalid app: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(dexMagic)
	ws := func(s string) {
		if len(s) > 0xFFFF {
			s = s[:0xFFFF]
		}
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		buf.Write(l[:])
		buf.WriteString(s)
	}
	wu := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	wi := func(v int64) {
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
	}

	ws(app.Name)
	wu(uint64(len(app.Files)))
	for _, f := range app.Files {
		ws(f.Name)
		wu(uint64(len(f.Classes)))
		for _, c := range f.Classes {
			ws(c.Name)
			wu(uint64(len(c.Methods)))
			for _, m := range c.Methods {
				ws(m.Name)
				wu(uint64(m.ID))
				wu(uint64(m.NumRegs))
				wu(uint64(m.NumIns))
				if m.Native {
					buf.WriteByte(1)
				} else {
					buf.WriteByte(0)
				}
				wu(uint64(len(m.Pool)))
				for _, p := range m.Pool {
					wu(p)
				}
				wu(uint64(len(m.Code)))
				for _, in := range m.Code {
					buf.WriteByte(byte(in.Op))
					buf.WriteByte(in.A)
					buf.WriteByte(in.B)
					buf.WriteByte(in.C)
					switch in.Op {
					case OpConst, OpConstPool, OpAddLit, OpIGet, OpIPut, OpNewInstance:
						wi(in.Lit)
					case OpPackedSwitch:
						wu(uint64(len(in.Targets)))
						for _, t := range in.Targets {
							wi(int64(t))
						}
					case OpInvoke:
						wu(uint64(in.Method))
					case OpInvokeNative:
						buf.WriteByte(byte(in.Native))
					}
					if in.Op.IsBranch() && in.Op != OpPackedSwitch {
						wi(int64(in.Target))
					}
				}
			}
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalApp parses a serialized app and validates it.
func UnmarshalApp(data []byte) (*App, error) {
	r := &byteReader{data: data}
	magic := r.bytes(len(dexMagic))
	if r.err != nil || !bytes.Equal(magic, dexMagic) {
		return nil, fmt.Errorf("dex: bad magic")
	}
	app := &App{Name: r.str()}
	nFiles := r.uvarint()
	if nFiles > 1<<16 {
		return nil, fmt.Errorf("dex: implausible file count %d", nFiles)
	}
	type slot struct {
		m  *Method
		id MethodID
	}
	var slots []slot
	for i := uint64(0); i < nFiles && r.err == nil; i++ {
		f := &File{Name: r.str()}
		nClasses := r.uvarint()
		if nClasses > 1<<20 {
			return nil, fmt.Errorf("dex: implausible class count %d", nClasses)
		}
		for j := uint64(0); j < nClasses && r.err == nil; j++ {
			c := &Class{Name: r.str()}
			nMethods := r.uvarint()
			if nMethods > 1<<24 {
				return nil, fmt.Errorf("dex: implausible method count %d", nMethods)
			}
			for k := uint64(0); k < nMethods && r.err == nil; k++ {
				m := &Method{Class: c.Name, Name: r.str()}
				id := MethodID(r.uvarint())
				m.ID = id
				m.NumRegs = int(r.uvarint())
				m.NumIns = int(r.uvarint())
				m.Native = r.byte() == 1
				nPool := r.uvarint()
				if nPool > 1<<24 {
					return nil, fmt.Errorf("dex: implausible pool size %d", nPool)
				}
				for p := uint64(0); p < nPool && r.err == nil; p++ {
					m.Pool = append(m.Pool, r.uvarint())
				}
				nCode := r.uvarint()
				if nCode > 1<<26 {
					return nil, fmt.Errorf("dex: implausible code size %d", nCode)
				}
				for p := uint64(0); p < nCode && r.err == nil; p++ {
					in := Insn{Op: Opcode(r.byte()), A: r.byte(), B: r.byte(), C: r.byte()}
					switch in.Op {
					case OpConst, OpConstPool, OpAddLit, OpIGet, OpIPut, OpNewInstance:
						in.Lit = r.varint()
					case OpPackedSwitch:
						nT := r.uvarint()
						if nT > 1<<16 {
							return nil, fmt.Errorf("dex: implausible switch size %d", nT)
						}
						for t := uint64(0); t < nT && r.err == nil; t++ {
							in.Targets = append(in.Targets, int32(r.varint()))
						}
					case OpInvoke:
						in.Method = MethodID(r.uvarint())
					case OpInvokeNative:
						in.Native = NativeFunc(r.byte())
					}
					if in.Op.IsBranch() && in.Op != OpPackedSwitch {
						in.Target = int32(r.varint())
					}
					m.Code = append(m.Code, in)
				}
				c.Methods = append(c.Methods, m)
				slots = append(slots, slot{m: m, id: id})
			}
			f.Classes = append(f.Classes, c)
		}
		app.Files = append(app.Files, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("dex: %d trailing bytes", len(data)-r.off)
	}
	// Rebuild the app-wide method table by ID.
	app.Methods = make([]*Method, len(slots))
	for _, s := range slots {
		if int(s.id) >= len(slots) || app.Methods[s.id] != nil {
			return nil, fmt.Errorf("dex: bad or duplicate method id %d", s.id)
		}
		app.Methods[s.id] = s.m
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

type byteReader struct {
	data []byte
	off  int
	err  error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("dex: "+format, args...)
	}
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) str() string {
	lb := r.bytes(2)
	if lb == nil {
		return ""
	}
	return string(r.bytes(int(binary.LittleEndian.Uint16(lb))))
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}
