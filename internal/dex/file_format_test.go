package dex

import (
	"bytes"
	"reflect"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	app, _ := buildApp()
	// Add richer content: natives, switches, pools.
	cls := app.Files[0].Classes[0]
	app.AddMethod(cls, &Method{Class: cls.Name, Name: "jni", Native: true, NumRegs: 3, NumIns: 2})
	app.AddMethod(cls, &Method{Class: cls.Name, Name: "sw", NumRegs: 2, NumIns: 1, Code: []Insn{
		{Op: OpConst, A: 0, Lit: 7},
		{Op: OpPackedSwitch, A: 1, Targets: []int32{3, 4}},
		{Op: OpReturnVoid},
		{Op: OpConst, A: 0, Lit: -12345},
		{Op: OpInvokeNative, A: 0, Native: NativeLogValue, B: 0, C: 0},
		{Op: OpReturn, A: 0},
	}})
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}

	data, err := Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("dex\n035\x00")) {
		t.Error("missing dex magic")
	}
	back, err := UnmarshalApp(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != app.Name || len(back.Methods) != len(app.Methods) {
		t.Fatalf("shape mismatch")
	}
	for id := range app.Methods {
		a, b := app.Methods[id], back.Methods[id]
		if a.FullName() != b.FullName() || a.Native != b.Native ||
			a.NumRegs != b.NumRegs || a.NumIns != b.NumIns {
			t.Fatalf("method %d header mismatch", id)
		}
		if !reflect.DeepEqual(a.Pool, b.Pool) {
			t.Fatalf("method %d pool mismatch", id)
		}
		if len(a.Code) != len(b.Code) {
			t.Fatalf("method %d code length mismatch", id)
		}
		for pc := range a.Code {
			x, y := a.Code[pc], b.Code[pc]
			if x.Op != y.Op || x.A != y.A || x.B != y.B || x.C != y.C ||
				x.Lit != y.Lit || x.Target != y.Target || x.Method != y.Method ||
				x.Native != y.Native || !reflect.DeepEqual(x.Targets, y.Targets) {
				t.Fatalf("method %d insn %d mismatch: %v vs %v", id, pc, x, y)
			}
		}
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	app, _ := buildApp()
	app.Methods[1].Code[0].A = 99 // register out of range
	if _, err := Marshal(app); err == nil {
		t.Fatal("invalid app marshaled")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	app, _ := buildApp()
	data, err := Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("dex\n036\x00"), data[8:]...),
		"truncated": data[:len(data)-3],
		"trailing":  append(append([]byte{}, data...), 1, 2, 3),
	}
	for name, d := range cases {
		if _, err := UnmarshalApp(d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzUnmarshalApp checks the dex parser never panics and that everything
// it accepts validates and re-marshals.
func FuzzUnmarshalApp(f *testing.F) {
	app, _ := buildApp()
	data, err := Marshal(app)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:12])
	f.Fuzz(func(t *testing.T, b []byte) {
		parsed, err := UnmarshalApp(b)
		if err != nil {
			return
		}
		if err := parsed.Validate(); err != nil {
			t.Fatalf("accepted app fails validation: %v", err)
		}
		if _, err := Marshal(parsed); err != nil {
			t.Fatalf("accepted app fails to re-marshal: %v", err)
		}
	})
}
