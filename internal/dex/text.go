package dex

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Text format for apps, in the spirit of smali: one directive or
// instruction per line, branch targets as :labels, invoke targets as
// Class.method names (resolved app-wide in a second pass).
//
//	.app Demo
//	.file classes.dex
//	.class LMain
//	.method run regs=4 ins=1
//	    const v0, 0
//	  :loop
//	    add v0, v0, v3
//	    add-lit v3, v3, -1
//	    if-nez v3, :loop
//	    return v0
//	.end method
//	.end class
//	.end file
//
// DumpText and ParseText round-trip: ParseText(DumpText(app)) preserves
// every method body.

// DumpText renders the app in the text format.
func DumpText(app *App) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".app %s\n", app.Name)
	for _, f := range app.Files {
		fmt.Fprintf(&b, ".file %s\n", f.Name)
		for _, c := range f.Classes {
			fmt.Fprintf(&b, ".class %s\n", c.Name)
			for _, m := range c.Methods {
				dumpMethod(&b, app, m)
			}
			b.WriteString(".end class\n")
		}
		b.WriteString(".end file\n")
	}
	return b.String()
}

func dumpMethod(b *strings.Builder, app *App, m *Method) {
	if m.Native {
		fmt.Fprintf(b, ".method %s native regs=%d ins=%d\n.end method\n", m.Name, m.NumRegs, m.NumIns)
		return
	}
	fmt.Fprintf(b, ".method %s regs=%d ins=%d\n", m.Name, m.NumRegs, m.NumIns)
	if len(m.Pool) > 0 {
		b.WriteString(".pool")
		for _, p := range m.Pool {
			fmt.Fprintf(b, " %#x", p)
		}
		b.WriteString("\n")
	}
	// Collect label positions.
	labelAt := map[int32]string{}
	var targets []int32
	for _, in := range m.Code {
		if in.Op == OpPackedSwitch {
			targets = append(targets, in.Targets...)
		} else if in.Op.IsBranch() {
			targets = append(targets, in.Target)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, t := range targets {
		if _, ok := labelAt[t]; !ok {
			labelAt[t] = fmt.Sprintf("L%d", len(labelAt))
		}
	}
	ref := func(t int32) string { return ":" + labelAt[t] }

	for pc, in := range m.Code {
		if l, ok := labelAt[int32(pc)]; ok {
			fmt.Fprintf(b, "  :%s\n", l)
		}
		b.WriteString("    ")
		switch in.Op {
		case OpNopCode, OpReturnVoid:
			b.WriteString(in.Op.String())
		case OpConst, OpConstPool, OpNewInstance:
			fmt.Fprintf(b, "%s v%d, %d", in.Op, in.A, in.Lit)
		case OpMove, OpNewArray, OpArrayLen:
			fmt.Fprintf(b, "%s v%d, v%d", in.Op, in.A, in.B)
		case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr, OpAGet, OpAPut:
			fmt.Fprintf(b, "%s v%d, v%d, v%d", in.Op, in.A, in.B, in.C)
		case OpAddLit, OpIGet, OpIPut:
			fmt.Fprintf(b, "%s v%d, v%d, %d", in.Op, in.A, in.B, in.Lit)
		case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
			fmt.Fprintf(b, "%s v%d, v%d, %s", in.Op, in.A, in.B, ref(in.Target))
		case OpIfEqz, OpIfNez:
			fmt.Fprintf(b, "%s v%d, %s", in.Op, in.A, ref(in.Target))
		case OpGoto:
			fmt.Fprintf(b, "goto %s", ref(in.Target))
		case OpPackedSwitch:
			fmt.Fprintf(b, "packed-switch v%d", in.A)
			for _, t := range in.Targets {
				fmt.Fprintf(b, ", %s", ref(t))
			}
		case OpInvoke:
			callee := app.Methods[in.Method]
			fmt.Fprintf(b, "invoke v%d, %s (v%d, v%d)", in.A, callee.FullName(), in.B, in.C)
		case OpInvokeNative:
			fmt.Fprintf(b, "invoke-native v%d, %s (v%d, v%d)", in.A, in.Native, in.B, in.C)
		case OpReturn:
			fmt.Fprintf(b, "return v%d", in.A)
		}
		b.WriteString("\n")
	}
	b.WriteString(".end method\n")
}

// parser state for ParseText.
type textParser struct {
	app     *App
	file    *File
	class   *Class
	method  *Method
	labels  map[string]int32
	fixups  []textFixup // label refs to resolve at .end method
	invokes []invokeFixup
	line    int
}

type textFixup struct {
	pc     int
	target int // index into Insn.Targets, or -1 for Insn.Target
	label  string
	line   int
}

type invokeFixup struct {
	m    *Method
	pc   int
	name string
	line int
}

// ParseText parses the text format and validates the result.
func ParseText(src string) (*App, error) {
	p := &textParser{app: &App{}}
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := p.handle(line); err != nil {
			return nil, fmt.Errorf("dex: line %d: %w", p.line, err)
		}
	}
	if p.method != nil || p.class != nil || p.file != nil {
		return nil, fmt.Errorf("dex: unterminated block at end of input")
	}
	// Resolve invoke names.
	byName := map[string]MethodID{}
	for _, m := range p.app.Methods {
		byName[m.FullName()] = m.ID
	}
	for _, fx := range p.invokes {
		id, ok := byName[fx.name]
		if !ok {
			return nil, fmt.Errorf("dex: line %d: unknown method %q", fx.line, fx.name)
		}
		fx.m.Code[fx.pc].Method = id
	}
	if err := p.app.Validate(); err != nil {
		return nil, err
	}
	return p.app, nil
}

func (p *textParser) handle(line string) error {
	switch {
	case strings.HasPrefix(line, ".app "):
		p.app.Name = strings.TrimSpace(line[5:])
	case strings.HasPrefix(line, ".file "):
		if p.file != nil {
			return fmt.Errorf(".file inside .file")
		}
		p.file = &File{Name: strings.TrimSpace(line[6:])}
	case line == ".end file":
		if p.file == nil {
			return fmt.Errorf("stray .end file")
		}
		p.app.Files = append(p.app.Files, p.file)
		p.file = nil
	case strings.HasPrefix(line, ".class "):
		if p.file == nil || p.class != nil {
			return fmt.Errorf(".class outside .file")
		}
		p.class = &Class{Name: strings.TrimSpace(line[7:])}
	case line == ".end class":
		if p.class == nil {
			return fmt.Errorf("stray .end class")
		}
		p.file.Classes = append(p.file.Classes, p.class)
		p.class = nil
	case strings.HasPrefix(line, ".method "):
		return p.beginMethod(line)
	case line == ".end method":
		return p.endMethod()
	case strings.HasPrefix(line, ".pool"):
		if p.method == nil {
			return fmt.Errorf(".pool outside .method")
		}
		for _, tok := range strings.Fields(line)[1:] {
			v, err := strconv.ParseUint(tok, 0, 64)
			if err != nil {
				return fmt.Errorf("bad pool constant %q", tok)
			}
			p.method.Pool = append(p.method.Pool, v)
		}
	case strings.HasPrefix(line, ":"):
		if p.method == nil {
			return fmt.Errorf("label outside .method")
		}
		name := strings.TrimSpace(line[1:])
		if _, dup := p.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		p.labels[name] = int32(len(p.method.Code))
	default:
		return p.insn(line)
	}
	return nil
}

func (p *textParser) beginMethod(line string) error {
	if p.class == nil || p.method != nil {
		return fmt.Errorf(".method outside .class")
	}
	fields := strings.Fields(line[8:])
	if len(fields) == 0 {
		return fmt.Errorf(".method needs a name")
	}
	m := &Method{Class: p.class.Name, Name: fields[0]}
	for _, f := range fields[1:] {
		switch {
		case f == "native":
			m.Native = true
		case strings.HasPrefix(f, "regs="):
			v, err := strconv.Atoi(f[5:])
			if err != nil {
				return fmt.Errorf("bad regs %q", f)
			}
			m.NumRegs = v
		case strings.HasPrefix(f, "ins="):
			v, err := strconv.Atoi(f[4:])
			if err != nil {
				return fmt.Errorf("bad ins %q", f)
			}
			m.NumIns = v
		default:
			return fmt.Errorf("unknown method attribute %q", f)
		}
	}
	p.method = m
	p.labels = map[string]int32{}
	p.fixups = nil
	return nil
}

func (p *textParser) endMethod() error {
	if p.method == nil {
		return fmt.Errorf("stray .end method")
	}
	for _, fx := range p.fixups {
		t, ok := p.labels[fx.label]
		if !ok {
			return fmt.Errorf("line %d: undefined label %q", fx.line, fx.label)
		}
		if fx.target < 0 {
			p.method.Code[fx.pc].Target = t
		} else {
			p.method.Code[fx.pc].Targets[fx.target] = t
		}
	}
	p.app.AddMethod(p.class, p.method)
	p.method = nil
	return nil
}

// operand parsing helpers.
func parseReg(tok string) (uint8, error) {
	if !strings.HasPrefix(tok, "v") {
		return 0, fmt.Errorf("expected register, got %q", tok)
	}
	v, err := strconv.Atoi(tok[1:])
	if err != nil || v < 0 || v > 255 {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return uint8(v), nil
}

func parseLit(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad literal %q", tok)
	}
	return v, nil
}

var textOpcodes = func() map[string]Opcode {
	m := map[string]Opcode{}
	for op := OpNopCode; op < opcodeMax; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *textParser) insn(line string) error {
	if p.method == nil {
		return fmt.Errorf("instruction outside .method")
	}
	if p.method.Native {
		return fmt.Errorf("native method has a body")
	}
	// Tokenize: mnemonic, then comma-separated operands; parentheses in
	// invokes are decoration.
	line = strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(line)
	tok := strings.Fields(line)
	op, ok := textOpcodes[tok[0]]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", tok[0])
	}
	in := Insn{Op: op}
	pc := len(p.method.Code)
	need := func(n int) error {
		if len(tok) != n+1 {
			return fmt.Errorf("%s expects %d operands, got %d", op, n, len(tok)-1)
		}
		return nil
	}
	labelRef := func(s string, targetIdx int) error {
		if !strings.HasPrefix(s, ":") {
			return fmt.Errorf("expected :label, got %q", s)
		}
		p.fixups = append(p.fixups, textFixup{pc: pc, target: targetIdx, label: s[1:], line: p.line})
		return nil
	}

	var err error
	switch op {
	case OpNopCode, OpReturnVoid:
		err = need(0)
	case OpConst, OpConstPool, OpNewInstance:
		if err = need(2); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				in.Lit, err = parseLit(tok[2])
			}
		}
	case OpMove, OpNewArray, OpArrayLen:
		if err = need(2); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				in.B, err = parseReg(tok[2])
			}
		}
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr, OpAGet, OpAPut:
		if err = need(3); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				if in.B, err = parseReg(tok[2]); err == nil {
					in.C, err = parseReg(tok[3])
				}
			}
		}
	case OpAddLit, OpIGet, OpIPut:
		if err = need(3); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				if in.B, err = parseReg(tok[2]); err == nil {
					in.Lit, err = parseLit(tok[3])
				}
			}
		}
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		if err = need(3); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				if in.B, err = parseReg(tok[2]); err == nil {
					err = labelRef(tok[3], -1)
				}
			}
		}
	case OpIfEqz, OpIfNez:
		if err = need(2); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				err = labelRef(tok[2], -1)
			}
		}
	case OpGoto:
		if err = need(1); err == nil {
			err = labelRef(tok[1], -1)
		}
	case OpPackedSwitch:
		if len(tok) < 3 {
			return fmt.Errorf("packed-switch needs a register and targets")
		}
		if in.A, err = parseReg(tok[1]); err == nil {
			in.Targets = make([]int32, len(tok)-2)
			for i, t := range tok[2:] {
				if err = labelRef(t, i); err != nil {
					break
				}
			}
		}
	case OpInvoke:
		if err = need(4); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				p.invokes = append(p.invokes, invokeFixup{m: p.method, pc: pc, name: tok[2], line: p.line})
				if in.B, err = parseReg(tok[3]); err == nil {
					in.C, err = parseReg(tok[4])
				}
			}
		}
	case OpInvokeNative:
		if err = need(4); err == nil {
			if in.A, err = parseReg(tok[1]); err == nil {
				found := false
				for f := NativeFunc(0); int(f) < NumNativeFuncs; f++ {
					if f.String() == tok[2] {
						in.Native, found = f, true
					}
				}
				if !found {
					return fmt.Errorf("unknown native function %q", tok[2])
				}
				if in.B, err = parseReg(tok[3]); err == nil {
					in.C, err = parseReg(tok[4])
				}
			}
		}
	case OpReturn:
		if err = need(1); err == nil {
			in.A, err = parseReg(tok[1])
		}
	default:
		return fmt.Errorf("mnemonic %q not usable in text form", tok[0])
	}
	if err != nil {
		return err
	}
	p.method.Code = append(p.method.Code, in)
	return nil
}
