package dex

import (
	"strings"
	"testing"
)

const demoText = `
.app Demo
.file classes.dex
.class LMain
.method sum regs=4 ins=1
    const v0, 0
  :loop
    add v0, v0, v3
    add-lit v3, v3, -1
    if-nez v3, :loop
    return v0
.end method
.method helper regs=2 ins=2
    mul v0, v0, v1
    return v0
.end method
.method main regs=4 ins=2
    invoke v0, LMain.sum (v2, v3)
    invoke v1, LMain.helper (v0, v0)
    invoke-native v0, pLogValue (v1, v1)
    return v0
.end method
.method jni native regs=2 ins=2
.end method
.method dispatch regs=3 ins=1
    packed-switch v2, :a, :b
    const v0, -1
    goto :end
  :a
    const v0, 100
    goto :end
  :b
    shl v0, v2, v2
  :end
    return v0
.end method
.end class
.end file
`

func TestParseTextProgram(t *testing.T) {
	app, err := ParseText(demoText)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "Demo" || app.NumMethods() != 5 {
		t.Fatalf("app shape: %s, %d methods", app.Name, app.NumMethods())
	}
	if !app.Methods[3].Native {
		t.Error("jni method not native")
	}
	sw := app.Methods[4]
	if sw.Code[0].Op != OpPackedSwitch || len(sw.Code[0].Targets) != 2 {
		t.Errorf("switch parsed as %v", sw.Code[0])
	}
	// invoke resolution by name.
	main := app.Methods[2]
	if main.Code[0].Method != 0 || main.Code[1].Method != 1 {
		t.Errorf("invoke targets: %v, %v", main.Code[0], main.Code[1])
	}
}

func TestTextRoundTrip(t *testing.T) {
	app, err := ParseText(demoText)
	if err != nil {
		t.Fatal(err)
	}
	dumped := DumpText(app)
	back, err := ParseText(dumped)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, dumped)
	}
	if back.NumMethods() != app.NumMethods() {
		t.Fatal("method count changed")
	}
	for id := range app.Methods {
		a, b := app.Methods[id], back.Methods[id]
		if a.FullName() != b.FullName() || len(a.Code) != len(b.Code) {
			t.Fatalf("method %d differs after round trip", id)
		}
		for pc := range a.Code {
			x, y := a.Code[pc], b.Code[pc]
			if x.Op != y.Op || x.A != y.A || x.B != y.B || x.C != y.C ||
				x.Lit != y.Lit || x.Target != y.Target || x.Method != y.Method {
				t.Fatalf("m%d@%d: %v != %v", id, pc, x, y)
			}
		}
	}
	// Binary marshal of the parsed app also round-trips.
	data, err := Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalApp(data); err != nil {
		t.Fatal(err)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated":    ".app x\n.file f\n.class LC\n.method m regs=1 ins=0\n",
		"stray end":       ".end method\n",
		"unknown op":      ".app x\n.file f\n.class LC\n.method m regs=1 ins=0\nfrob v0\n.end method\n.end class\n.end file\n",
		"bad register":    ".app x\n.file f\n.class LC\n.method m regs=1 ins=0\nconst q0, 1\nreturn-void\n.end method\n.end class\n.end file\n",
		"undefined label": ".app x\n.file f\n.class LC\n.method m regs=1 ins=0\ngoto :nope\n.end method\n.end class\n.end file\n",
		"dup label":       ".app x\n.file f\n.class LC\n.method m regs=1 ins=0\n:a\n:a\nreturn-void\n.end method\n.end class\n.end file\n",
		"unknown invoke":  ".app x\n.file f\n.class LC\n.method m regs=2 ins=1\ninvoke v0, LC.ghost (v1, v1)\nreturn v0\n.end method\n.end class\n.end file\n",
		"unknown native":  ".app x\n.file f\n.class LC\n.method m regs=2 ins=1\ninvoke-native v0, pGhost (v1, v1)\nreturn v0\n.end method\n.end class\n.end file\n",
		"operand count":   ".app x\n.file f\n.class LC\n.method m regs=2 ins=0\nadd v0, v1\nreturn-void\n.end method\n.end class\n.end file\n",
		"body in native":  ".app x\n.file f\n.class LC\n.method m native regs=1 ins=0\nreturn-void\n.end method\n.end class\n.end file\n",
		"bad attr":        ".app x\n.file f\n.class LC\n.method m wat regs=1 ins=0\n.end method\n.end class\n.end file\n",
	}
	for name, src := range cases {
		if _, err := ParseText(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDumpTextOfGeneratedApp(t *testing.T) {
	// The buildApp fixture dumps and reparses cleanly.
	app, _ := buildApp()
	text := DumpText(app)
	if !strings.Contains(text, ".method caller") {
		t.Fatalf("dump missing methods:\n%s", text)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.NumMethods() != app.NumMethods() {
		t.Error("method count changed")
	}
}
