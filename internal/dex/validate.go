package dex

import "fmt"

// Validate checks structural well-formedness of the whole app: register
// numbers in range, branch targets inside the method, invoke targets inside
// the method table, terminated method bodies, and consistent IDs.
func (a *App) Validate() error {
	seen := make(map[string]bool)
	for id, m := range a.Methods {
		if m == nil {
			return fmt.Errorf("dex: method table slot %d is nil", id)
		}
		if m.ID != MethodID(id) {
			return fmt.Errorf("dex: %s: ID %d does not match table slot %d", m.FullName(), m.ID, id)
		}
		if seen[m.FullName()] {
			return fmt.Errorf("dex: duplicate method %s", m.FullName())
		}
		seen[m.FullName()] = true
		if err := a.validateMethod(m); err != nil {
			return err
		}
	}
	return nil
}

func (a *App) validateMethod(m *Method) error {
	fail := func(pc int, format string, args ...any) error {
		return fmt.Errorf("dex: %s@%d: %s", m.FullName(), pc, fmt.Sprintf(format, args...))
	}
	if m.NumRegs < m.NumIns {
		return fmt.Errorf("dex: %s: NumRegs %d < NumIns %d", m.FullName(), m.NumRegs, m.NumIns)
	}
	if m.NumRegs > 256 {
		return fmt.Errorf("dex: %s: NumRegs %d > 256", m.FullName(), m.NumRegs)
	}
	if m.Native {
		if len(m.Code) != 0 {
			return fmt.Errorf("dex: %s: native method has bytecode", m.FullName())
		}
		return nil
	}
	if len(m.Code) == 0 {
		return fmt.Errorf("dex: %s: empty body", m.FullName())
	}
	checkReg := func(pc int, r uint8) error {
		if int(r) >= m.NumRegs {
			return fail(pc, "register v%d out of range (NumRegs=%d)", r, m.NumRegs)
		}
		return nil
	}
	checkTarget := func(pc int, t int32) error {
		if t < 0 || int(t) >= len(m.Code) {
			return fail(pc, "branch target %d out of range", t)
		}
		return nil
	}
	for pc, in := range m.Code {
		if in.Op >= opcodeMax {
			return fail(pc, "bad opcode %d", in.Op)
		}
		regs := insnRegs(in)
		for _, r := range regs {
			if err := checkReg(pc, r); err != nil {
				return err
			}
		}
		switch in.Op {
		case OpConstPool:
			if in.Lit < 0 || int(in.Lit) >= len(m.Pool) {
				return fail(pc, "pool index %d out of range (pool size %d)", in.Lit, len(m.Pool))
			}
		case OpInvoke:
			if int(in.Method) >= len(a.Methods) {
				return fail(pc, "invoke target m%d out of range", in.Method)
			}
		case OpInvokeNative:
			if in.Native >= nativeFuncMax {
				return fail(pc, "bad native function %d", in.Native)
			}
		case OpPackedSwitch:
			if len(in.Targets) == 0 {
				return fail(pc, "packed-switch with no targets")
			}
			for _, t := range in.Targets {
				if err := checkTarget(pc, t); err != nil {
					return err
				}
			}
		}
		if in.Op.IsBranch() && in.Op != OpPackedSwitch {
			if err := checkTarget(pc, in.Target); err != nil {
				return err
			}
		}
	}
	last := m.Code[len(m.Code)-1]
	if !last.Op.IsTerminal() {
		return fmt.Errorf("dex: %s: body does not end in a terminal instruction (%s)", m.FullName(), last.Op)
	}
	return checkDefiniteAssignment(m)
}

// regBits is a bitset over the 256 virtual registers.
type regBits [4]uint64

func (s *regBits) has(r uint8) bool { return s[r>>6]&(1<<(r&63)) != 0 }
func (s *regBits) add(r uint8)      { s[r>>6] |= 1 << (r & 63) }

func (s *regBits) intersect(o regBits) (changed bool) {
	for i := range s {
		n := s[i] & o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// checkDefiniteAssignment enforces the dex verifier's rule that no register
// is read before it is written on any path. The generated binary spills
// virtual registers to uninitialized stack slots, so this rule is what
// makes interpreter semantics (zero registers) and binary semantics (stale
// stack memory) agree.
func checkDefiniteAssignment(m *Method) error {
	var all regBits
	for i := range all {
		all[i] = ^uint64(0)
	}
	in := make([]regBits, len(m.Code))
	seen := make([]bool, len(m.Code))
	for pc := range in {
		in[pc] = all
	}
	var entry regBits
	for i := 0; i < m.NumIns; i++ {
		entry.add(uint8(m.NumRegs - m.NumIns + i))
	}
	in[0] = entry
	seen[0] = true
	work := []int{0}
	propagate := func(to int, defs regBits) {
		if to >= len(m.Code) {
			return
		}
		if !seen[to] {
			seen[to] = true
			in[to] = defs
			work = append(work, to)
			return
		}
		if in[to].intersect(defs) {
			work = append(work, to)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		insn := m.Code[pc]
		defs := in[pc]
		for _, u := range insnUses(insn) {
			if !defs.has(u) {
				return fmt.Errorf("dex: %s@%d: register v%d may be used before assignment", m.FullName(), pc, u)
			}
		}
		if d, ok := insnDef(insn); ok {
			defs.add(d)
		}
		switch {
		case insn.Op == OpPackedSwitch:
			for _, t := range insn.Targets {
				propagate(int(t), defs)
			}
			propagate(pc+1, defs)
		case insn.Op == OpGoto:
			propagate(int(insn.Target), defs)
		case insn.Op.IsBranch():
			propagate(int(insn.Target), defs)
			propagate(pc+1, defs)
		case insn.Op.IsTerminal():
		default:
			propagate(pc+1, defs)
		}
	}
	return nil
}

// insnDef returns the register an instruction writes, if any.
func insnDef(in Insn) (uint8, bool) {
	switch in.Op {
	case OpConst, OpConstPool, OpNewInstance, OpMove, OpAddLit, OpIGet,
		OpNewArray, OpArrayLen, OpAdd, OpSub, OpAnd, OpOr, OpXor,
		OpMul, OpShl, OpShr, OpAGet, OpInvoke, OpInvokeNative:
		return in.A, true
	}
	return 0, false
}

// insnUses returns the registers an instruction reads.
func insnUses(in Insn) []uint8 {
	switch in.Op {
	case OpMove, OpAddLit, OpIGet, OpNewArray, OpArrayLen:
		return []uint8{in.B}
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr, OpAGet:
		return []uint8{in.B, in.C}
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		return []uint8{in.A, in.B}
	case OpIfEqz, OpIfNez, OpReturn, OpPackedSwitch:
		return []uint8{in.A}
	case OpIPut:
		return []uint8{in.A, in.B}
	case OpAPut:
		return []uint8{in.A, in.B, in.C}
	case OpInvoke, OpInvokeNative:
		return []uint8{in.B, in.C}
	}
	return nil
}

// insnRegs returns the register operands an instruction actually uses.
func insnRegs(in Insn) []uint8 {
	switch in.Op {
	case OpNopCode, OpGoto, OpReturnVoid:
		return nil
	case OpConst, OpConstPool, OpNewInstance:
		return []uint8{in.A}
	case OpMove, OpAddLit, OpIfEq, OpIfNe, OpIfLt, OpIfGe,
		OpIGet, OpIPut, OpNewArray, OpArrayLen:
		return []uint8{in.A, in.B}
	case OpIfEqz, OpIfNez, OpReturn, OpPackedSwitch:
		return []uint8{in.A}
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul, OpShl, OpShr,
		OpAGet, OpAPut, OpInvoke, OpInvokeNative:
		return []uint8{in.A, in.B, in.C}
	}
	return nil
}

// Stats summarizes an app for reporting.
type Stats struct {
	Files   int
	Classes int
	Methods int
	Native  int
	Insns   int
}

// CollectStats walks the app and counts its parts.
func (a *App) CollectStats() Stats {
	s := Stats{Files: len(a.Files), Methods: len(a.Methods)}
	for _, f := range a.Files {
		s.Classes += len(f.Classes)
	}
	for _, m := range a.Methods {
		if m.Native {
			s.Native++
		}
		s.Insns += len(m.Code)
	}
	return s
}
