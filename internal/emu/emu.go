// Package emu executes linked OAT images on a model of the paper's
// experimental device: an AArch64 core with the ART runtime environment
// (ArtMethod table, thread-register entrypoint table, bump-allocated heap,
// guarded stack).
//
// The emulator plays two roles:
//
//   - Correctness oracle. A run produces the same observables as the
//     reference bytecode interpreter (internal/hgraph): return value, log,
//     exception. Differential tests between the two validate the code
//     generator and the outliner's semantic preservation.
//   - Measurement device. A cycle cost model (branch and call overheads,
//     a 32 KiB direct-mapped I-cache) stands in for the Pixel 7's CPU
//     counters in the Table 7 experiment, and 4 KiB-page touch tracking
//     stands in for the resident-memory measurement in Table 5.
package emu

import (
	"fmt"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/dex"
	"repro/internal/hgraph"
	"repro/internal/oat"
)

// CostModel gives the cycle weights of the microarchitectural events the
// paper's Table 7 measures. Two presets model the ends of the spectrum:
// an in-order core that pays for every transfer, and a wide out-of-order
// core (like the Pixel 7's Tensor G2) that hides most call overhead behind
// instruction-level parallelism, leaving the I-cache as the dominant cost
// of outlining.
type CostModel struct {
	Base       int64 // any instruction
	Mem        int64 // additional cost of a load or store
	TakenBr    int64 // additional cost of a taken branch
	Call       int64 // additional cost of bl/blr/br/ret
	ICacheMiss int64 // I-cache line fill
	Native     int64 // runtime entrypoint dispatch
	Alloc      int64 // allocation path inside the runtime
}

// InOrderCosts is the default model used throughout the experiments.
var InOrderCosts = CostModel{Base: 1, Mem: 1, TakenBr: 1, Call: 1, ICacheMiss: 20, Native: 30, Alloc: 40}

// OutOfOrderCosts approximates a wide OoO core: transfers are hidden, the
// front-end (I-cache) is what outlining stresses.
var OutOfOrderCosts = CostModel{Base: 1, Mem: 0, TakenBr: 0, Call: 0, ICacheMiss: 16, Native: 30, Alloc: 40}

// exitMagic is the synthetic return address of the entry frame.
const exitMagic int64 = 0x00F1_F1F0

// Result is the observable outcome plus the measurements.
type Result struct {
	Ret int64
	Log []int64
	Exc hgraph.Exception

	Insts        int64
	Cycles       int64
	Calls        int64
	Allocs       int64
	ICacheMisses int64
	CodePages    int // distinct 4 KiB text pages executed
	DataPages    int // distinct 4 KiB data pages touched
}

// Machine is a loaded OAT image ready to run. Zero value is not usable;
// construct with New.
type Machine struct {
	img     *oat.Image
	decoded []a64.Inst
	valid   []bool

	// MaxInsts bounds a run; exceeding it raises ExcStepLimit.
	MaxInsts int64

	// Costs is the cycle model; New installs InOrderCosts.
	Costs CostModel

	// Hook, when non-nil, is invoked before each instruction with the
	// current pc. The profiler uses it for sampling; tests use it for
	// tracing.
	Hook func(pc int64)

	regs       [31]int64
	sp         int64
	n, z, c, v bool
	pc         int64

	stack []int64
	heap  []int64
	bump  int64
	log   []int64
	exc   hgraph.Exception
	halt  bool
	fatal error

	insts, cycles, calls, allocs, icMiss int64
	cacheTags                            []int64
	codePages                            []bool
	stackPages, heapPages                []bool
}

// New predecodes the image's text and prepares a machine.
func New(img *oat.Image) *Machine {
	m := &Machine{
		img:      img,
		decoded:  make([]a64.Inst, len(img.Text)),
		valid:    make([]bool, len(img.Text)),
		MaxInsts: 500_000_000,
		Costs:    InOrderCosts,
	}
	for i, w := range img.Text {
		m.decoded[i], m.valid[i] = a64.Decode(w)
	}
	return m
}

// Run executes the entry method with up to two arguments and returns the
// observables and measurements. Run may be called repeatedly; each call
// starts from a fresh machine state but keeps the warmed page-touch sets
// empty (they are per-run).
func (m *Machine) Run(entry dex.MethodID, args []int64) (Result, error) {
	if int(entry) >= len(m.img.Methods) {
		return Result{}, fmt.Errorf("emu: entry method m%d out of range", entry)
	}
	m.reset()
	m.regs[0] = abi.ArtMethodAddr(uint32(entry))
	for i := 0; i < 2 && i < len(args); i++ {
		m.regs[1+i] = args[i]
	}
	m.regs[19] = abi.ThreadBase
	m.regs[30] = exitMagic
	m.sp = abi.StackTop
	m.pc = m.img.EntryAddr(entry)

	for !m.halt {
		if m.pc == exitMagic {
			break
		}
		if m.insts >= m.MaxInsts {
			m.exc = hgraph.ExcStepLimit
			break
		}
		if m.pc >= abi.NativeStubBase && m.pc < abi.NativeStubAddr(dex.NumNativeFuncs) {
			m.native(dex.NativeFunc((m.pc - abi.NativeStubBase) / abi.NativeStubStride))
			m.pc = m.regs[30]
			continue
		}
		if err := m.step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), m.fatal
}

func (m *Machine) reset() {
	m.regs = [31]int64{}
	m.sp, m.pc = 0, 0
	m.n, m.z, m.c, m.v = false, false, false, false
	m.stack = make([]int64, (abi.StackTop-abi.StackLimit)/8+1)
	m.heap = nil
	m.bump = abi.HeapBase
	m.log = nil
	m.exc = hgraph.ExcNone
	m.halt = false
	m.fatal = nil
	m.insts, m.cycles, m.calls, m.allocs, m.icMiss = 0, 0, 0, 0, 0
	m.cacheTags = make([]int64, 512)
	for i := range m.cacheTags {
		m.cacheTags[i] = -1
	}
	m.codePages = make([]bool, len(m.img.Text)*a64.WordSize/abi.PageSize+1)
	m.stackPages = make([]bool, (abi.StackTop-abi.StackLimit)/abi.PageSize+1)
	m.heapPages = make([]bool, (abi.HeapLimit-abi.HeapBase)/abi.PageSize+1)
}

func countPages(sets ...[]bool) int {
	n := 0
	for _, s := range sets {
		for _, b := range s {
			if b {
				n++
			}
		}
	}
	return n
}

func (m *Machine) result() Result {
	ret := m.regs[0]
	if m.exc != hgraph.ExcNone {
		ret = 0
	}
	return Result{
		Ret: ret, Log: m.log, Exc: m.exc,
		Insts: m.insts, Cycles: m.cycles, Calls: m.calls, Allocs: m.allocs,
		ICacheMisses: m.icMiss,
		CodePages:    countPages(m.codePages),
		DataPages:    countPages(m.stackPages, m.heapPages),
	}
}

// throw records an exception and halts the run, the behaviour of the
// modeled throw entrypoints (unwinding is out of scope; observables match
// the reference interpreter, which also stops the program).
func (m *Machine) throw(e hgraph.Exception) {
	m.exc = e
	m.halt = true
}

// fetch returns the decoded instruction at pc, charging I-cache costs.
func (m *Machine) fetch() (a64.Inst, error) {
	off := m.pc - abi.TextBase
	if off < 0 || off >= int64(len(m.img.Text))*a64.WordSize || off%a64.WordSize != 0 {
		return a64.Inst{}, fmt.Errorf("emu: pc %#x outside text", m.pc)
	}
	idx := off / a64.WordSize
	if !m.valid[idx] {
		return a64.Inst{}, fmt.Errorf("emu: executing data word %#08x at pc %#x (embedded data misread as code)",
			m.img.Text[idx], m.pc)
	}
	m.codePages[(m.pc-abi.TextBase)>>12] = true
	line := (m.pc >> 6) % int64(len(m.cacheTags))
	tag := m.pc >> 6
	if m.cacheTags[line] != tag {
		m.cacheTags[line] = tag
		m.icMiss++
		m.cycles += m.Costs.ICacheMiss
	}
	return m.decoded[idx], nil
}
