package emu

import (
	"reflect"
	"testing"

	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/hgraph"
	"repro/internal/oat"
	"repro/internal/workload"
)

// buildImage compiles and links an app.
func buildImage(t *testing.T, app *dex.App, opts codegen.Options) *oat.Image {
	t.Helper()
	methods, err := codegen.Compile(app, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	img, err := oat.Link(methods, nil)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return img
}

// mkApp wraps methods into a validated app.
func mkApp(t *testing.T, methods ...*dex.Method) *dex.App {
	t.Helper()
	app := &dex.App{Name: "t"}
	cls := &dex.Class{Name: "LTest"}
	app.Files = []*dex.File{{Name: "d", Classes: []*dex.Class{cls}}}
	for _, m := range methods {
		app.AddMethod(cls, m)
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return app
}

// diffRun runs the same entry in the interpreter and the emulator and
// requires identical observables.
func diffRun(t *testing.T, app *dex.App, img *oat.Image, entry dex.MethodID, args []int64) (hgraph.Result, Result) {
	t.Helper()
	ip := &hgraph.Interp{App: app, MaxDepth: 10_000}
	want, err := ip.Run(entry, args)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	m := New(img)
	got, err := m.Run(entry, args)
	if err != nil {
		t.Fatalf("emu: %v", err)
	}
	if want.Ret != got.Ret || want.Exc != got.Exc || !reflect.DeepEqual(want.Log, got.Log) {
		t.Fatalf("emulator diverges from interpreter (entry m%d args %v)\ninterp: ret=%d exc=%v log=%v\nemu:    ret=%d exc=%v log=%v",
			entry, args, want.Ret, want.Exc, want.Log, got.Ret, got.Exc, got.Log)
	}
	return want, got
}

func TestEmuArithmeticLoop(t *testing.T) {
	m := &dex.Method{Class: "LT", Name: "sum", NumRegs: 4, NumIns: 1, Code: []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpMove, A: 1, B: 3},
		{Op: dex.OpIfEqz, A: 1, Target: 6},
		{Op: dex.OpAdd, A: 0, B: 0, C: 1},
		{Op: dex.OpAddLit, A: 1, B: 1, Lit: -1},
		{Op: dex.OpGoto, Target: 2},
		{Op: dex.OpReturn, A: 0},
	}}
	app := mkApp(t, m)
	for _, cto := range []bool{false, true} {
		img := buildImage(t, app, codegen.Options{CTO: cto, Optimize: true})
		want, got := diffRun(t, app, img, 0, []int64{10})
		if want.Ret != 55 {
			t.Fatalf("sum(10) = %d", want.Ret)
		}
		if got.Cycles <= got.Insts {
			t.Errorf("cost model inert: cycles=%d insts=%d", got.Cycles, got.Insts)
		}
	}
}

func TestEmuCallsObjectsArrays(t *testing.T) {
	callee := &dex.Method{Class: "LT", Name: "addmul", NumRegs: 4, NumIns: 2, Code: []dex.Insn{
		{Op: dex.OpAdd, A: 0, B: 2, C: 3},
		{Op: dex.OpAdd, A: 0, B: 0, C: 0},
		{Op: dex.OpReturn, A: 0},
	}}
	main := &dex.Method{Class: "LT", Name: "main", NumRegs: 8, NumIns: 2, Code: []dex.Insn{
		{Op: dex.OpNewInstance, A: 0, Lit: 4},
		{Op: dex.OpConst, A: 1, Lit: 11},
		{Op: dex.OpIPut, A: 1, B: 0, Lit: 3},
		{Op: dex.OpIGet, A: 2, B: 0, Lit: 3},
		{Op: dex.OpConst, A: 3, Lit: 6},
		{Op: dex.OpNewArray, A: 4, B: 3},
		{Op: dex.OpConst, A: 5, Lit: 2},
		{Op: dex.OpAPut, A: 2, B: 4, C: 5},
		{Op: dex.OpAGet, A: 1, B: 4, C: 5},
		{Op: dex.OpArrayLen, A: 3, B: 4},
		{Op: dex.OpInvoke, A: 0, Method: 0, B: 1, C: 3},
		{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeLogValue, B: 0},
		{Op: dex.OpReturn, A: 0},
	}}
	app := mkApp(t, callee, main)
	for _, cto := range []bool{false, true} {
		img := buildImage(t, app, codegen.Options{CTO: cto, Optimize: true})
		want, got := diffRun(t, app, img, 1, []int64{0, 0})
		if want.Ret != 34 { // (11+6)*2
			t.Fatalf("ret = %d, want 34", want.Ret)
		}
		if got.Allocs != 2 {
			t.Errorf("allocs = %d", got.Allocs)
		}
	}
}

func TestEmuExceptions(t *testing.T) {
	cases := []struct {
		name string
		code []dex.Insn
		want hgraph.Exception
	}{
		{"npe", []dex.Insn{
			{Op: dex.OpConst, A: 0, Lit: 0},
			{Op: dex.OpIGet, A: 1, B: 0, Lit: 2},
			{Op: dex.OpReturn, A: 1},
		}, hgraph.ExcNullPointer},
		{"bounds", []dex.Insn{
			{Op: dex.OpConst, A: 0, Lit: 4},
			{Op: dex.OpNewArray, A: 1, B: 0},
			{Op: dex.OpConst, A: 2, Lit: 9},
			{Op: dex.OpAGet, A: 3, B: 1, C: 2},
			{Op: dex.OpReturn, A: 3},
		}, hgraph.ExcArrayBounds},
		{"negative index", []dex.Insn{
			{Op: dex.OpConst, A: 0, Lit: 4},
			{Op: dex.OpNewArray, A: 1, B: 0},
			{Op: dex.OpConst, A: 2, Lit: -3},
			{Op: dex.OpAPut, A: 0, B: 1, C: 2},
			{Op: dex.OpReturnVoid},
		}, hgraph.ExcArrayBounds},
		{"negative length", []dex.Insn{
			{Op: dex.OpConst, A: 0, Lit: -1},
			{Op: dex.OpNewArray, A: 1, B: 0},
			{Op: dex.OpReturnVoid},
		}, hgraph.ExcArrayBounds},
		{"explicit throw", []dex.Insn{
			{Op: dex.OpConst, A: 0, Lit: 0},
			{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeThrowNullPointer},
			{Op: dex.OpReturnVoid},
		}, hgraph.ExcNullPointer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &dex.Method{Class: "LT", Name: "m", NumRegs: 4, NumIns: 0, Code: tc.code}
			app := mkApp(t, m)
			for _, cto := range []bool{false, true} {
				img := buildImage(t, app, codegen.Options{CTO: cto, Optimize: true})
				want, _ := diffRun(t, app, img, 0, nil)
				if want.Exc != tc.want {
					t.Fatalf("exc = %v, want %v", want.Exc, tc.want)
				}
			}
		})
	}
}

func TestEmuStackOverflow(t *testing.T) {
	// Unbounded recursion must be caught by the Figure 4c stack check in
	// the emulator and by the frame-depth limit in the interpreter; both
	// report a stack overflow.
	rec := &dex.Method{Class: "LT", Name: "rec", NumRegs: 3, NumIns: 2, Code: []dex.Insn{
		{Op: dex.OpInvoke, A: 0, Method: 0, B: 1, C: 2},
		{Op: dex.OpReturn, A: 0},
	}}
	app := mkApp(t, rec)
	for _, cto := range []bool{false, true} {
		img := buildImage(t, app, codegen.Options{CTO: cto, Optimize: true})
		m := New(img)
		got, err := m.Run(0, []int64{1, 2})
		if err != nil {
			t.Fatalf("emu: %v", err)
		}
		if got.Exc != hgraph.ExcStackOverflow {
			t.Fatalf("cto=%v: exc = %v, want stack overflow", cto, got.Exc)
		}
	}
}

func TestEmuJNIStub(t *testing.T) {
	jni := &dex.Method{Class: "LT", Name: "jni", Native: true, NumRegs: 2, NumIns: 2}
	main := &dex.Method{Class: "LT", Name: "main", NumRegs: 3, NumIns: 1, Code: []dex.Insn{
		{Op: dex.OpInvoke, A: 0, Method: 0, B: 2, C: 2},
		{Op: dex.OpReturn, A: 0},
	}}
	app := mkApp(t, jni, main)
	img := buildImage(t, app, codegen.Options{CTO: true, Optimize: true})
	_, got := diffRun(t, app, img, 1, []int64{123})
	if got.Ret != 123 {
		t.Fatalf("JNI stub returned %d", got.Ret)
	}
}

func TestEmuPackedSwitch(t *testing.T) {
	m := &dex.Method{Class: "LT", Name: "sw", NumRegs: 3, NumIns: 1, Code: []dex.Insn{
		{Op: dex.OpPackedSwitch, A: 2, Targets: []int32{3, 5, 7}},
		{Op: dex.OpConst, A: 0, Lit: -1},
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 10},
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 20},
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 30},
		{Op: dex.OpReturn, A: 0},
	}}
	app := mkApp(t, m)
	// Switches lower to jump tables through an indirect branch; run without
	// IR optimization too so the table shape survives as written.
	for _, opt := range []bool{false, true} {
		img := buildImage(t, app, codegen.Options{Optimize: opt})
		for _, arg := range []int64{0, 1, 2, 3, -1, 99} {
			diffRun(t, app, img, 0, []int64{arg})
		}
	}
}

func TestEmuConstPool(t *testing.T) {
	m := &dex.Method{Class: "LT", Name: "pool", NumRegs: 2, NumIns: 0,
		Pool: []uint64{0xDEADBEEF_12345678, 0x11111111_22222222, 0xD503201F_D503201F},
		Code: []dex.Insn{
			{Op: dex.OpConstPool, A: 0, Lit: 0},
			{Op: dex.OpConstPool, A: 1, Lit: 2}, // value decodes as two NOPs: embedded data trap
			{Op: dex.OpXor, A: 0, B: 0, C: 1},
			{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeLogValue, B: 0},
			{Op: dex.OpReturn, A: 0},
		}}
	app := mkApp(t, m)
	img := buildImage(t, app, codegen.Options{CTO: true, Optimize: true})
	want, _ := diffRun(t, app, img, 0, nil)
	if want.Ret == 0 {
		t.Fatal("pool constants lost")
	}
}

// TestEmuDifferentialRandomApps is the pipeline-wide differential test:
// random workload apps, both CTO settings, several argument vectors.
func TestEmuDifferentialRandomApps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prof := workload.Profile{
			Name: "rnd", Seed: seed, Methods: 40,
			NativeFrac: 0.1, SwitchFrac: 0.15, HotFrac: 0.05,
			HotLoopIters: 40, WarmLoopIters: 3,
		}
		app, man, err := workload.Generate(prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, cto := range []bool{false, true} {
			img := buildImage(t, app, codegen.Options{CTO: cto, Optimize: true})
			for _, args := range [][]int64{{0, 0}, {5, 3}, {255, 7}, {-9, 9}} {
				for _, entry := range man.Drivers {
					diffRun(t, app, img, entry, args)
				}
			}
		}
	}
}

func TestEmuMeasurements(t *testing.T) {
	prof := workload.Profile{Name: "meas", Seed: 3, Methods: 60, HotFrac: 0.05,
		HotLoopIters: 100}
	app, man, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	img := buildImage(t, app, codegen.Options{CTO: true, Optimize: true})
	m := New(img)
	res, err := m.Run(man.Drivers[0], []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts == 0 || res.Cycles < res.Insts || res.Calls == 0 || res.Allocs == 0 {
		t.Errorf("implausible measurements: %+v", res)
	}
	if res.CodePages == 0 || res.DataPages == 0 {
		t.Errorf("page tracking inert: %+v", res)
	}
	if res.ICacheMisses == 0 {
		t.Errorf("icache model inert")
	}
	// Determinism: same run, same numbers.
	res2, err := m.Run(man.Drivers[0], []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Errorf("runs are not deterministic:\n%+v\n%+v", res, res2)
	}
}

func TestEmuStepBudget(t *testing.T) {
	spin := &dex.Method{Class: "LT", Name: "spin", NumRegs: 1, NumIns: 0, Code: []dex.Insn{
		{Op: dex.OpGoto, Target: 0},
	}}
	app := mkApp(t, spin)
	img := buildImage(t, app, codegen.Options{})
	m := New(img)
	m.MaxInsts = 5000
	res, err := m.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc != hgraph.ExcStepLimit {
		t.Fatalf("exc = %v, want step limit", res.Exc)
	}
}

func TestEmuBadEntry(t *testing.T) {
	app := mkApp(t, &dex.Method{Class: "LT", Name: "m", NumRegs: 1, NumIns: 0,
		Code: []dex.Insn{{Op: dex.OpReturnVoid}}})
	img := buildImage(t, app, codegen.Options{})
	if _, err := New(img).Run(55, nil); err == nil {
		t.Fatal("bad entry accepted")
	}
}
