package emu

import (
	"fmt"

	"repro/internal/a64"
	"repro/internal/hgraph"
)

// getR reads a register in an operand context where 31 means XZR.
func (m *Machine) getR(r a64.Reg) int64 {
	if r == 31 {
		return 0
	}
	return m.regs[r]
}

// getRsp reads a register in a context where 31 means SP.
func (m *Machine) getRsp(r a64.Reg) int64 {
	if r == 31 {
		return m.sp
	}
	return m.regs[r]
}

// setR writes a register where 31 means XZR (write discarded).
func (m *Machine) setR(r a64.Reg, v int64) {
	if r != 31 {
		m.regs[r] = v
	}
}

// setRsp writes a register where 31 means SP.
func (m *Machine) setRsp(r a64.Reg, v int64) {
	if r == 31 {
		m.sp = v
	} else {
		m.regs[r] = v
	}
}

// narrow truncates to 32 bits (zero-extended) when sf is false.
func narrow(sf bool, v int64) int64 {
	if sf {
		return v
	}
	return int64(uint32(v))
}

// setFlagsAdd sets NZCV for a+b (width per sf).
func (m *Machine) setFlagsAdd(sf bool, a, b int64) int64 {
	if !sf {
		a32, b32 := int32(a), int32(b)
		res := a32 + b32
		m.n = res < 0
		m.z = res == 0
		m.c = uint64(uint32(a32))+uint64(uint32(b32)) > 0xFFFFFFFF
		m.v = (a32^res)&(b32^res) < 0
		return int64(uint32(res))
	}
	res := a + b
	m.n = res < 0
	m.z = res == 0
	m.c = uint64(res) < uint64(a)
	m.v = ((a^res)&(b^res))>>63&1 == 1
	return res
}

// setFlagsSub sets NZCV for a-b (width per sf) and returns the result.
func (m *Machine) setFlagsSub(sf bool, a, b int64) int64 {
	if !sf {
		a32, b32 := int32(a), int32(b)
		res := a32 - b32
		m.n = res < 0
		m.z = res == 0
		m.c = uint32(a32) >= uint32(b32)
		m.v = (a32^b32)&(a32^res) < 0
		return int64(uint32(res))
	}
	res := a - b
	m.n = res < 0
	m.z = res == 0
	m.c = uint64(a) >= uint64(b)
	m.v = ((a^b)&(a^res))>>63&1 == 1
	return res
}

// condHolds evaluates a condition against the current flags.
func (m *Machine) condHolds(c a64.Cond) bool {
	switch c {
	case a64.EQ:
		return m.z
	case a64.NE:
		return !m.z
	case a64.HS:
		return m.c
	case a64.LO:
		return !m.c
	case a64.MI:
		return m.n
	case a64.PL:
		return !m.n
	case a64.VS:
		return m.v
	case a64.VC:
		return !m.v
	case a64.HI:
		return m.c && !m.z
	case a64.LS:
		return !(m.c && !m.z)
	case a64.GE:
		return m.n == m.v
	case a64.LT:
		return m.n != m.v
	case a64.GT:
		return !m.z && m.n == m.v
	case a64.LE:
		return m.z || m.n != m.v
	default: // AL, NV
		return true
	}
}

// memFaulted handles a load/store fault; it returns the error for
// structural faults and nil after raising an architectural exception.
func (m *Machine) memFaulted(f *memFault) error {
	if f.exc {
		m.throw(hgraph.ExcStackOverflow)
		return nil
	}
	return f.err
}

// Reg returns the current value of xN (N in 0..30).
func (m *Machine) Reg(n int) int64 { return m.regs[n] }

// SP returns the current stack pointer.
func (m *Machine) SP() int64 { return m.sp }

// step executes one instruction.
func (m *Machine) step() error {
	if m.Hook != nil {
		m.Hook(m.pc)
	}
	i, err := m.fetch()
	if err != nil {
		return err
	}
	m.insts++
	m.cycles += m.Costs.Base
	next := m.pc + a64.WordSize

	size := 8
	if !i.Sf {
		size = 4
	}

	switch i.Op {
	case a64.OpNop:

	case a64.OpAddImm, a64.OpSubImm:
		imm := i.Imm
		if i.Shift12 {
			imm <<= 12
		}
		a := m.getRsp(i.Rn)
		if i.Op == a64.OpSubImm {
			imm = -imm
		}
		m.setRsp(i.Rd, narrow(i.Sf, a+imm))

	case a64.OpAddsImm, a64.OpSubsImm:
		imm := i.Imm
		if i.Shift12 {
			imm <<= 12
		}
		a := m.getRsp(i.Rn)
		var res int64
		if i.Op == a64.OpAddsImm {
			res = m.setFlagsAdd(i.Sf, a, imm)
		} else {
			res = m.setFlagsSub(i.Sf, a, imm)
		}
		m.setR(i.Rd, res)

	case a64.OpAddReg:
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)+m.getR(i.Rm)))
	case a64.OpSubReg:
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)-m.getR(i.Rm)))
	case a64.OpAddsReg:
		m.setR(i.Rd, m.setFlagsAdd(i.Sf, m.getR(i.Rn), m.getR(i.Rm)))
	case a64.OpSubsReg:
		m.setR(i.Rd, m.setFlagsSub(i.Sf, m.getR(i.Rn), m.getR(i.Rm)))
	case a64.OpAndReg:
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)&m.getR(i.Rm)))
	case a64.OpOrrReg:
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)|m.getR(i.Rm)))
	case a64.OpEorReg:
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)^m.getR(i.Rm)))
	case a64.OpMul:
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)*m.getR(i.Rm)))
	case a64.OpLslReg:
		mod := int64(63)
		if !i.Sf {
			mod = 31
		}
		m.setR(i.Rd, narrow(i.Sf, m.getR(i.Rn)<<uint64(m.getR(i.Rm)&mod)))
	case a64.OpLsrReg:
		mod := int64(63)
		if !i.Sf {
			mod = 31
		}
		if i.Sf {
			m.setR(i.Rd, int64(uint64(m.getR(i.Rn))>>uint64(m.getR(i.Rm)&mod)))
		} else {
			m.setR(i.Rd, int64(uint32(m.getR(i.Rn))>>uint64(m.getR(i.Rm)&mod)))
		}

	case a64.OpMovz:
		m.setR(i.Rd, narrow(i.Sf, i.Imm<<(16*int64(i.HW))))
	case a64.OpMovn:
		m.setR(i.Rd, narrow(i.Sf, ^(i.Imm<<(16*int64(i.HW)))))
	case a64.OpMovk:
		old := m.getR(i.Rd)
		shift := 16 * int64(i.HW)
		v := old&^(0xFFFF<<shift) | i.Imm<<shift
		m.setR(i.Rd, narrow(i.Sf, v))

	case a64.OpLdrImm:
		m.cycles += m.Costs.Mem
		v, f := m.read(m.getRsp(i.Rn)+i.Imm, size)
		if f != nil {
			return m.memFaulted(f)
		}
		m.setR(i.Rd, v)
	case a64.OpStrImm:
		m.cycles += m.Costs.Mem
		if f := m.write(m.getRsp(i.Rn)+i.Imm, size, m.getR(i.Rd)); f != nil {
			return m.memFaulted(f)
		}

	case a64.OpLdrReg:
		m.cycles += m.Costs.Mem
		v, f := m.read(m.getRsp(i.Rn)+m.getR(i.Rm)<<3, 8)
		if f != nil {
			return m.memFaulted(f)
		}
		m.setR(i.Rd, v)
	case a64.OpStrReg:
		m.cycles += m.Costs.Mem
		if f := m.write(m.getRsp(i.Rn)+m.getR(i.Rm)<<3, 8, m.getR(i.Rd)); f != nil {
			return m.memFaulted(f)
		}

	case a64.OpLdp, a64.OpStp:
		m.cycles += 2 * m.Costs.Mem
		base := m.getRsp(i.Rn)
		addr := base
		if i.Index != a64.IndexPost {
			addr += i.Imm
		}
		if i.Op == a64.OpLdp {
			v1, f := m.read(addr, 8)
			if f != nil {
				return m.memFaulted(f)
			}
			v2, f := m.read(addr+8, 8)
			if f != nil {
				return m.memFaulted(f)
			}
			m.setR(i.Rd, v1)
			m.setR(i.Rt2, v2)
		} else {
			if f := m.write(addr, 8, m.getR(i.Rd)); f != nil {
				return m.memFaulted(f)
			}
			if f := m.write(addr+8, 8, m.getR(i.Rt2)); f != nil {
				return m.memFaulted(f)
			}
		}
		if i.Index == a64.IndexPre {
			m.setRsp(i.Rn, addr)
		} else if i.Index == a64.IndexPost {
			m.setRsp(i.Rn, base+i.Imm)
		}

	case a64.OpLdrLit:
		m.cycles += m.Costs.Mem
		v, f := m.read(m.pc+i.Imm, size)
		if f != nil {
			return m.memFaulted(f)
		}
		m.setR(i.Rd, v)

	case a64.OpAdr:
		m.setR(i.Rd, m.pc+i.Imm)
	case a64.OpAdrp:
		m.setR(i.Rd, m.pc&^0xFFF+i.Imm)

	case a64.OpB:
		m.cycles += m.Costs.TakenBr
		next = m.pc + i.Imm
	case a64.OpBl:
		m.cycles += m.Costs.Call
		m.calls++
		m.regs[30] = m.pc + a64.WordSize
		next = m.pc + i.Imm
	case a64.OpBCond:
		if m.condHolds(i.Cond) {
			m.cycles += m.Costs.TakenBr
			next = m.pc + i.Imm
		}
	case a64.OpCbz:
		if narrow(i.Sf, m.getR(i.Rd)) == 0 {
			m.cycles += m.Costs.TakenBr
			next = m.pc + i.Imm
		}
	case a64.OpCbnz:
		if narrow(i.Sf, m.getR(i.Rd)) != 0 {
			m.cycles += m.Costs.TakenBr
			next = m.pc + i.Imm
		}
	case a64.OpTbz:
		if m.getR(i.Rd)>>i.Bit&1 == 0 {
			m.cycles += m.Costs.TakenBr
			next = m.pc + i.Imm
		}
	case a64.OpTbnz:
		if m.getR(i.Rd)>>i.Bit&1 == 1 {
			m.cycles += m.Costs.TakenBr
			next = m.pc + i.Imm
		}
	case a64.OpBr:
		m.cycles += m.Costs.Call
		next = m.getR(i.Rn)
	case a64.OpBlr:
		m.cycles += m.Costs.Call
		m.calls++
		target := m.getR(i.Rn)
		m.regs[30] = m.pc + a64.WordSize
		next = target
	case a64.OpRet:
		m.cycles += m.Costs.Call
		next = m.getR(i.Rn)

	case a64.OpBrk:
		return fmt.Errorf("emu: brk executed at pc %#x (fell into a slow path tail)", m.pc)

	default:
		return fmt.Errorf("emu: unimplemented op %s at pc %#x", i.Op, m.pc)
	}

	m.pc = next
	return nil
}
