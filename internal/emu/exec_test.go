package emu

import (
	"testing"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/hgraph"
	"repro/internal/oat"
)

// rawMachine wraps a hand-assembled word sequence as a single-method image.
func rawMachine(t *testing.T, words []uint32) *Machine {
	t.Helper()
	img := &oat.Image{
		Text: words,
		Methods: []oat.MethodRecord{{
			ID: 0, Offset: 0, Size: len(words) * 4,
		}},
	}
	return New(img)
}

// runRaw executes the snippet with the given args and returns x0.
func runRaw(t *testing.T, words []uint32, args ...int64) Result {
	t.Helper()
	m := rawMachine(t, words)
	res, err := m.Run(0, args)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func asm(insts ...a64.Inst) []uint32 {
	var out []uint32
	for _, i := range insts {
		out = append(out, a64.MustEncode(i))
	}
	return out
}

func TestExecArithmeticAndMoves(t *testing.T) {
	// x0 = ((x1 + 5) - x2) ^ x1
	words := asm(
		a64.Inst{Op: a64.OpAddImm, Sf: true, Rd: a64.X3, Rn: a64.X1, Imm: 5},
		a64.Inst{Op: a64.OpSubReg, Sf: true, Rd: a64.X3, Rn: a64.X3, Rm: a64.X2},
		a64.Inst{Op: a64.OpEorReg, Sf: true, Rd: a64.X0, Rn: a64.X3, Rm: a64.X1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	if got := runRaw(t, words, 100, 7).Ret; got != ((100+5)-7)^100 {
		t.Errorf("got %d", got)
	}
}

func TestExecMovWide(t *testing.T) {
	words := asm(
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0, Imm: 0x1234, HW: 1},
		a64.Inst{Op: a64.OpMovk, Sf: true, Rd: a64.X0, Imm: 0x5678},
		a64.Inst{Op: a64.OpMovk, Sf: true, Rd: a64.X0, Imm: 0x9ABC, HW: 2},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	want := int64(0x9ABC_1234_5678)
	if got := runRaw(t, words).Ret; got != want {
		t.Errorf("movz/movk = %#x, want %#x", got, want)
	}
	// movn: x0 = ^(0xFF << 16)
	words = asm(
		a64.Inst{Op: a64.OpMovn, Sf: true, Rd: a64.X0, Imm: 0xFF, HW: 1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	if got := runRaw(t, words).Ret; got != ^int64(0xFF<<16) {
		t.Errorf("movn = %#x", got)
	}
}

// TestExecConditionCodes drives every condition through a cmp.
func TestExecConditionCodes(t *testing.T) {
	cases := []struct {
		a, b  int64
		cond  a64.Cond
		taken bool
	}{
		{5, 5, a64.EQ, true}, {5, 6, a64.EQ, false},
		{5, 6, a64.NE, true},
		{6, 5, a64.HS, true}, {5, 6, a64.HS, false}, {-1, 5, a64.HS, true}, // unsigned
		{5, 6, a64.LO, true}, {-1, 5, a64.LO, false},
		{-3, 2, a64.MI, true}, {3, 2, a64.MI, false},
		{3, 2, a64.PL, true},
		{6, 5, a64.HI, true}, {5, 5, a64.HI, false},
		{5, 5, a64.LS, true}, {6, 5, a64.LS, false},
		{5, 5, a64.GE, true}, {-9, 5, a64.GE, false}, {-1, -9, a64.GE, true},
		{-9, 5, a64.LT, true}, {5, 5, a64.LT, false},
		{6, 5, a64.GT, true}, {5, 5, a64.GT, false},
		{5, 5, a64.LE, true}, {6, 5, a64.LE, false},
	}
	for _, tc := range cases {
		words := asm(
			a64.Inst{Op: a64.OpSubsReg, Sf: true, Rd: a64.XZR, Rn: a64.X1, Rm: a64.X2},
			a64.Inst{Op: a64.OpBCond, Cond: tc.cond, Imm: 12},
			a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0}, // not taken: 0
			a64.Inst{Op: a64.OpRet, Rn: a64.LR},
			a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0, Imm: 1}, // taken: 1
			a64.Inst{Op: a64.OpRet, Rn: a64.LR},
		)
		got := runRaw(t, words, tc.a, tc.b).Ret == 1
		if got != tc.taken {
			t.Errorf("cmp %d,%d b.%v: taken=%v want %v", tc.a, tc.b, tc.cond, got, tc.taken)
		}
	}
}

// TestExecOverflowConditions checks V-flag behaviour (GE/LT across
// overflow), the case naive res<0 comparisons get wrong.
func TestExecOverflowConditions(t *testing.T) {
	const minInt = -9223372036854775808
	words := asm(
		a64.Inst{Op: a64.OpSubsReg, Sf: true, Rd: a64.XZR, Rn: a64.X1, Rm: a64.X2},
		a64.Inst{Op: a64.OpBCond, Cond: a64.LT, Imm: 12},
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0, Imm: 1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	// minInt - 1 overflows positive: LT must still report minInt < 1.
	if got := runRaw(t, words, minInt, 1).Ret; got != 1 {
		t.Errorf("minInt < 1 not detected (V flag broken)")
	}
	if got := runRaw(t, words, 1, minInt).Ret; got != 0 {
		t.Errorf("1 < minInt reported")
	}
}

func TestExecW32Forms(t *testing.T) {
	// 32-bit adds wrap and zero-extend.
	words := asm(
		a64.Inst{Op: a64.OpMovn, Rd: a64.X1},                       // w1 = 0xFFFFFFFF
		a64.Inst{Op: a64.OpAddImm, Rd: a64.X0, Rn: a64.X1, Imm: 2}, // w0 = 1 (wraps)
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	if got := runRaw(t, words).Ret; got != 1 {
		t.Errorf("w-form add wrap = %#x, want 1", got)
	}
	// 32-bit cmp: 0xFFFFFFFF as w is -1 signed: LT 0? N flag from bit 31.
	words = asm(
		a64.Inst{Op: a64.OpMovn, Rd: a64.X1}, // w1 = -1 (32-bit)
		a64.Inst{Op: a64.OpSubsImm, Rd: a64.XZR, Rn: a64.X1, Imm: 0},
		a64.Inst{Op: a64.OpBCond, Cond: a64.MI, Imm: 12},
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0, Imm: 1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	if got := runRaw(t, words).Ret; got != 1 {
		t.Error("32-bit negative not detected by MI")
	}
}

func TestExecTbzTbnz(t *testing.T) {
	words := asm(
		a64.Inst{Op: a64.OpTbnz, Rd: a64.X1, Bit: 33, Imm: 12},
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0, Imm: 1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	if got := runRaw(t, words, 1<<33).Ret; got != 1 {
		t.Error("tbnz missed a set bit")
	}
	if got := runRaw(t, words, 1<<32).Ret; got != 0 {
		t.Error("tbnz fired on a clear bit")
	}
}

func TestExecStackAndPairs(t *testing.T) {
	// Push two values with stp pre-index, reload with ldp post-index.
	words := asm(
		a64.Inst{Op: a64.OpStp, Rd: a64.X1, Rt2: a64.X2, Rn: a64.SP, Imm: -16, Index: a64.IndexPre},
		a64.Inst{Op: a64.OpLdp, Rd: a64.X3, Rt2: a64.X4, Rn: a64.SP, Imm: 16, Index: a64.IndexPost},
		a64.Inst{Op: a64.OpAddReg, Sf: true, Rd: a64.X0, Rn: a64.X3, Rm: a64.X4},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	if got := runRaw(t, words, 30, 12).Ret; got != 42 {
		t.Errorf("stp/ldp round trip = %d", got)
	}
}

func TestExecLdrLiteralAndAdr(t *testing.T) {
	// Load a 64-bit literal placed after the code; also adr into the text.
	var a a64.Asm
	lit := a.NewLabel()
	a.InstTo(a64.Inst{Op: a64.OpLdrLit, Sf: true, Rd: a64.X0}, lit)
	a.Inst(a64.Inst{Op: a64.OpRet, Rn: a64.LR})
	a.Bind(lit)
	a.Raw64(0x1122334455667788)
	p, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if got := runRaw(t, p.Words).Ret; got != 0x1122334455667788 {
		t.Errorf("ldr literal = %#x", got)
	}
}

func TestExecRegisterOffsetLoadStore(t *testing.T) {
	// Store x1 at heap[x2] via register-offset addressing and read it back.
	// Uses the allocation native to obtain heap memory.
	app := mkApp(t, &dex.Method{Class: "LT", Name: "m", NumRegs: 6, NumIns: 2, Code: []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 8},
		{Op: dex.OpNewArray, A: 1, B: 0},
		{Op: dex.OpAPut, A: 4, B: 1, C: 5},
		{Op: dex.OpAGet, A: 0, B: 1, C: 5},
		{Op: dex.OpReturn, A: 0},
	}})
	img := buildImage(t, app, codegen.Options{Optimize: true})
	// The lowering uses OpLdrReg/OpStrReg; verify they are present.
	usesRegOffset := false
	for _, w := range img.Text {
		if i, ok := a64.Decode(w); ok && (i.Op == a64.OpLdrReg || i.Op == a64.OpStrReg) {
			usesRegOffset = true
		}
	}
	if !usesRegOffset {
		t.Fatal("array access does not use register-offset addressing")
	}
	res, err := New(img).Run(0, []int64{77, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 77 {
		t.Errorf("aput/aget via reg-offset = %d, want 77", res.Ret)
	}
}

func TestExecFaults(t *testing.T) {
	// Executing embedded data must be a hard error, not an exception.
	words := []uint32{0xFFFFFFFF}
	m := rawMachine(t, words)
	if _, err := m.Run(0, nil); err == nil {
		t.Error("executing data word succeeded")
	}
	// Wild store: str to an unmapped address.
	words = asm(
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X1, Imm: 0x1234},
		a64.Inst{Op: a64.OpStrImm, Sf: true, Rd: a64.X0, Rn: a64.X1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	m = rawMachine(t, words)
	if _, err := m.Run(0, nil); err == nil {
		t.Error("wild store succeeded")
	}
	// Touching the stack guard raises the architectural exception.
	words = asm(
		a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X1, Imm: abi.StackLimit & 0xFFFF},
		a64.Inst{Op: a64.OpMovk, Sf: true, Rd: a64.X1, Imm: abi.StackLimit >> 16, HW: 1},
		a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.X0, Rn: a64.X1},
		a64.Inst{Op: a64.OpRet, Rn: a64.LR},
	)
	m = rawMachine(t, words)
	res, err := m.Run(0, nil)
	if err != nil {
		t.Fatalf("guard touch errored: %v", err)
	}
	if res.Exc != hgraph.ExcStackOverflow {
		t.Errorf("guard touch exc = %v", res.Exc)
	}
}

func TestExecCycleModelMonotone(t *testing.T) {
	// A taken branch must cost at least as much as a not-taken one.
	loop := func(iters int64) int64 {
		words := asm(
			a64.Inst{Op: a64.OpSubsImm, Sf: true, Rd: a64.X1, Rn: a64.X1, Imm: 1},
			a64.Inst{Op: a64.OpBCond, Cond: a64.NE, Imm: -4},
			a64.Inst{Op: a64.OpRet, Rn: a64.LR},
		)
		return runRaw(t, words, iters).Cycles
	}
	if loop(100) <= loop(1) {
		t.Error("cycle model not monotone in work")
	}
}

func TestICacheWarmup(t *testing.T) {
	// A loop over a straight-line body: the first iteration fills the
	// cache, later iterations must not miss again.
	var a a64.Asm
	a.Inst(a64.Inst{Op: a64.OpMovz, Sf: true, Rd: a64.X0})
	top := a.NewLabel()
	a.Bind(top)
	for k := 0; k < 64; k++ { // 256 bytes = 4 cache lines of body
		a.Inst(a64.Inst{Op: a64.OpAddImm, Sf: true, Rd: a64.X0, Rn: a64.X0, Imm: 1})
	}
	a.Inst(a64.Inst{Op: a64.OpSubsImm, Sf: true, Rd: a64.X1, Rn: a64.X1, Imm: 1})
	a.InstTo(a64.Inst{Op: a64.OpBCond, Cond: a64.NE}, top)
	a.Inst(a64.Inst{Op: a64.OpRet, Rn: a64.LR})
	p, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	run := func(iters int64) Result { return runRaw(t, p.Words, iters) }
	one, many := run(1), run(50)
	if many.ICacheMisses != one.ICacheMisses {
		t.Errorf("icache misses grew with iterations: %d vs %d (cache not retaining lines)",
			many.ICacheMisses, one.ICacheMisses)
	}
	if one.ICacheMisses < 4 {
		t.Errorf("implausibly few cold misses: %d", one.ICacheMisses)
	}
	if got := many.Ret; got != 50*64 {
		t.Errorf("loop result %d, want %d", got, 50*64)
	}
}
