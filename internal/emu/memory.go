package emu

import (
	"fmt"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/dex"
	"repro/internal/hgraph"
)

// memFault distinguishes runtime exceptions (which the program model
// defines, e.g. touching the stack guard) from structural errors (wild
// pointers, which indicate a compiler/outliner bug and fail the run).
type memFault struct {
	exc bool // true: architectural exception; false: structural error
	err error
}

// read performs a size-byte (4 or 8) load.
func (m *Machine) read(addr int64, size int) (int64, *memFault) {
	switch {
	case addr >= abi.TextBase && addr < abi.TextBase+int64(len(m.img.Text))*a64.WordSize:
		if addr%4 != 0 {
			return 0, &memFault{err: fmt.Errorf("emu: unaligned text read at %#x", addr)}
		}
		idx := (addr - abi.TextBase) / 4
		v := int64(m.img.Text[idx])
		if size == 8 {
			if idx+1 >= int64(len(m.img.Text)) {
				return 0, &memFault{err: fmt.Errorf("emu: text read overrun at %#x", addr)}
			}
			v |= int64(m.img.Text[idx+1]) << 32
		}
		return v, nil

	case addr >= abi.ArtMethodBase && addr < abi.ArtMethodAddr(uint32(len(m.img.Methods))):
		id := (addr - abi.ArtMethodBase) / abi.ArtMethodStride
		field := (addr - abi.ArtMethodBase) % abi.ArtMethodStride
		if field != abi.EntryPointOffset || size != 8 {
			return 0, &memFault{err: fmt.Errorf("emu: unmodeled ArtMethod field read at %#x", addr)}
		}
		return m.img.EntryAddr(dex.MethodID(id)), nil

	case addr >= abi.ThreadBase && addr < abi.ThreadBase+0x1000:
		off := addr - abi.ThreadBase
		k := (off - 0x200) / 8
		if off < 0x200 || off%8 != 0 || k >= int64(dex.NumNativeFuncs) || size != 8 {
			return 0, &memFault{err: fmt.Errorf("emu: unmodeled thread field read at %#x", addr)}
		}
		return abi.NativeStubAddr(int(k)), nil

	case addr >= abi.StackLimit && addr <= abi.StackTop:
		if addr < abi.StackLimit+abi.StackGuard {
			// The stack-overflow checking pattern touches the guard region.
			return 0, &memFault{exc: true}
		}
		return m.ramRead(m.stack, addr-abi.StackLimit, addr, size, m.stackPages)

	case addr >= abi.HeapBase && addr < m.bump:
		return m.ramRead(m.heap, addr-abi.HeapBase, addr, size, m.heapPages)
	}
	return 0, &memFault{err: fmt.Errorf("emu: wild read at %#x", addr)}
}

// write performs a size-byte (4 or 8) store.
func (m *Machine) write(addr int64, size int, v int64) *memFault {
	switch {
	case addr >= abi.StackLimit+abi.StackGuard && addr <= abi.StackTop:
		return m.ramWrite(m.stack, addr-abi.StackLimit, addr, size, v, m.stackPages)
	case addr >= abi.HeapBase && addr < m.bump:
		return m.ramWrite(m.heap, addr-abi.HeapBase, addr, size, v, m.heapPages)
	}
	return &memFault{err: fmt.Errorf("emu: wild write at %#x", addr)}
}

func (m *Machine) ramRead(ram []int64, off, addr int64, size int, pages []bool) (int64, *memFault) {
	pages[off>>12] = true
	word := ram[off>>3]
	switch {
	case size == 8 && off%8 == 0:
		return word, nil
	case size == 4 && off%4 == 0:
		if off%8 == 4 {
			return int64(uint32(uint64(word) >> 32)), nil
		}
		return int64(uint32(word)), nil
	}
	return 0, &memFault{err: fmt.Errorf("emu: unaligned %d-byte read at %#x", size, addr)}
}

func (m *Machine) ramWrite(ram []int64, off, addr int64, size int, v int64, pages []bool) *memFault {
	pages[off>>12] = true
	switch {
	case size == 8 && off%8 == 0:
		ram[off>>3] = v
		return nil
	case size == 4 && off%4 == 0:
		old := uint64(ram[off>>3])
		if off%8 == 4 {
			ram[off>>3] = int64(old&0x0000_0000_FFFF_FFFF | uint64(uint32(v))<<32)
		} else {
			ram[off>>3] = int64(old&0xFFFF_FFFF_0000_0000 | uint64(uint32(v)))
		}
		return nil
	}
	return &memFault{err: fmt.Errorf("emu: unaligned %d-byte write at %#x", size, addr)}
}

// native dispatches a runtime entrypoint. Arguments arrive in x1/x2 per the
// code generator's convention; the result is returned in x0.
func (m *Machine) native(f dex.NativeFunc) {
	m.cycles += m.Costs.Native
	a := m.regs[1]
	switch f {
	case dex.NativeAllocObjectResolved:
		size := a
		if size <= 0 {
			size = 1
		}
		m.regs[0] = m.alloc(size)
	case dex.NativeAllocArrayResolved:
		if a < 0 {
			m.throw(hgraph.ExcArrayBounds)
			return
		}
		m.regs[0] = m.alloc(a)
	case dex.NativeThrowNullPointer:
		m.throw(hgraph.ExcNullPointer)
	case dex.NativeThrowArrayBounds:
		m.throw(hgraph.ExcArrayBounds)
	case dex.NativeThrowStackOverflow:
		m.throw(hgraph.ExcStackOverflow)
	case dex.NativeGCSafepoint:
		m.regs[0] = 0
	case dex.NativeLogValue:
		m.log = append(m.log, a)
		m.regs[0] = a
	default:
		m.fatal = fmt.Errorf("emu: unknown native function %d", f)
		m.halt = true
	}
}

// alloc bump-allocates n slots plus the header; memory is zero on arrival.
func (m *Machine) alloc(n int64) int64 {
	m.cycles += m.Costs.Alloc
	m.allocs++
	addr := m.bump
	m.bump += abi.ObjectHeaderSize + 8*n
	if m.bump >= abi.HeapLimit {
		m.fatal = fmt.Errorf("emu: heap exhausted (%d bytes live)", m.bump-abi.HeapBase)
		m.halt = true
		return 0
	}
	need := (m.bump - abi.HeapBase) >> 3
	for int64(len(m.heap)) < need {
		m.heap = append(m.heap, make([]int64, need-int64(len(m.heap)))...)
	}
	m.heap[(addr-abi.HeapBase)>>3] = n // length header
	m.heapPages[(addr-abi.HeapBase)>>12] = true
	return addr
}
