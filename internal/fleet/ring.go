// Package fleet routes work across a set of calibrod daemons with a
// consistent-hash ring. The router's job is affinity, not correctness:
// sending the same app/config to the same daemon maximizes that daemon's
// warm-cache hit rate, while the shared remote tier guarantees a job
// landing anywhere still builds the identical image. Consistent hashing
// (virtual nodes on a 64-bit ring) keeps the mapping stable when the
// daemon list changes: removing one daemon remaps only the keys it
// owned, not the whole fleet's affinity.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultReplicas is how many virtual nodes each address gets on the
// ring. More replicas smooth the load split between daemons at the cost
// of a larger (still tiny) ring; 64 keeps the imbalance low for the
// 2-10 daemon fleets the CLIs drive.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over daemon addresses.
// Create with New; methods are safe for concurrent use.
type Ring struct {
	addrs  []string
	hashes []uint64 // sorted virtual-node positions
	owner  []string // owner[i] is the addr at hashes[i]
}

// New builds a ring over addrs with the given virtual-node count per
// address (<= 0 selects DefaultReplicas). Duplicate and empty addresses
// are dropped; an empty list yields a ring whose Pick returns "".
func New(addrs []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{}
	seen := map[string]bool{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		r.addrs = append(r.addrs, a)
	}
	type vnode struct {
		h    uint64
		addr string
	}
	nodes := make([]vnode, 0, len(r.addrs)*replicas)
	for _, a := range r.addrs {
		for i := 0; i < replicas; i++ {
			nodes = append(nodes, vnode{hashString(a + "#" + strconv.Itoa(i)), a})
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].h != nodes[j].h {
			return nodes[i].h < nodes[j].h
		}
		// Tie-break hash collisions by address so the ring is a pure
		// function of its membership, not of input order.
		return nodes[i].addr < nodes[j].addr
	})
	r.hashes = make([]uint64, len(nodes))
	r.owner = make([]string, len(nodes))
	for i, n := range nodes {
		r.hashes[i] = n.h
		r.owner[i] = n.addr
	}
	return r
}

// hashString is FNV-1a 64 with a murmur3 finalizer: FNV alone clumps on
// the short, similar strings vnode labels are made of, which skews the
// load split; the finalizer's avalanche restores uniform positions. The
// content addresses themselves stay SHA-256 — this hash only places.
func hashString(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s)) //nolint:errcheck // fnv never errors
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Pick returns the daemon owning key: the first virtual node clockwise
// from the key's position. Empty ring picks "".
func (r *Ring) Pick(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := hashString(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: the ring is circular
	}
	return r.owner[i]
}

// Addrs returns the distinct addresses on the ring, in input order.
func (r *Ring) Addrs() []string {
	return append([]string(nil), r.addrs...)
}

// ParseList splits a comma-separated daemon list ("-fleet a:1,b:2"),
// trimming whitespace and dropping empty elements.
func ParseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
