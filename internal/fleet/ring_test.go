package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"h1:7741", "h2:7741", "h3:7741"}, 0)
	b := New([]string{"h3:7741", "h1:7741", "h2:7741", "h1:7741", ""}, 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("Taobao|ltbo|v%d", i)
		if a.Pick(k) != b.Pick(k) {
			t.Fatalf("ring is not a pure function of membership: key %q", k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	addrs := []string{"h1:7741", "h2:7741", "h3:7741", "h4:7741"}
	r := New(addrs, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Pick(fmt.Sprintf("app-%d|config|v1", i))]++
	}
	if len(counts) != len(addrs) {
		t.Fatalf("only %d of %d daemons received keys: %v", len(counts), len(addrs), counts)
	}
	// With 64 vnodes/daemon the split should be within a loose 2x band of
	// even — this guards against a broken hash, not a perfect balance.
	for addr, n := range counts {
		if n < keys/len(addrs)/2 || n > keys/len(addrs)*2 {
			t.Errorf("daemon %s owns %d/%d keys, outside the 2x band", addr, n, keys)
		}
	}
}

// TestRingStability pins the consistent-hashing property: removing one
// daemon remaps only the keys that daemon owned.
func TestRingStability(t *testing.T) {
	full := New([]string{"h1:7741", "h2:7741", "h3:7741", "h4:7741"}, 0)
	less := New([]string{"h1:7741", "h2:7741", "h3:7741"}, 0)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("app-%d|config|v1", i)
		before, after := full.Pick(k), less.Pick(k)
		if before != "h4:7741" && before != after {
			t.Fatalf("key %q moved from surviving daemon %s to %s", k, before, after)
		}
		if before != after {
			moved++
		}
	}
	// Roughly 1/4 of keys lived on the removed daemon; all of them (and
	// only them) remap.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("removal remapped %d/%d keys, want ~%d", moved, keys, keys/4)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := New(nil, 0).Pick("anything"); got != "" {
		t.Fatalf("empty ring picked %q", got)
	}
	one := New([]string{"solo:7741"}, 0)
	for i := 0; i < 50; i++ {
		if got := one.Pick(fmt.Sprintf("k%d", i)); got != "solo:7741" {
			t.Fatalf("single-daemon ring picked %q", got)
		}
	}
}

func TestParseList(t *testing.T) {
	got := ParseList(" h1:7741, h2:7741 ,,h3:7741 ")
	want := []string{"h1:7741", "h2:7741", "h3:7741"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseList = %v, want %v", got, want)
	}
	if ParseList("") != nil {
		t.Fatal("ParseList of empty string should be nil")
	}
	if ParseList(" , ,") != nil {
		t.Fatal("ParseList of separators should be nil")
	}
}
