package hgraph

import (
	"fmt"

	"repro/internal/dex"
)

// Flatten linearizes a graph back into dex bytecode: blocks are laid out in
// ID order, branch targets become instruction indices, and explicit gotos
// are inserted where a block's fall-through successor is not the next block
// in layout order. The result is a method body with the same semantics as
// the graph, suitable for the reference interpreter.
func Flatten(g *Graph) ([]dex.Insn, error) {
	type slot struct {
		in       Insn
		isGoto   bool // synthesized goto
		gotoTo   int  // block ID the synthesized goto targets
		hasBlock bool // slot carries a real instruction from a block
	}
	var slots []slot
	blockStartSlot := make([]int, len(g.Blocks))

	next := func(i int) int {
		if i+1 < len(g.Blocks) {
			return g.Blocks[i+1].ID
		}
		return -1
	}

	for bi, b := range g.Blocks {
		blockStartSlot[b.ID] = len(slots)
		for _, in := range b.Insns {
			slots = append(slots, slot{in: in, hasBlock: true})
		}
		// Decide whether a fall-through goto is needed.
		t := b.Terminator()
		fallsThrough := true
		if t != nil && t.Op.IsTerminal() {
			fallsThrough = false
		}
		if fallsThrough {
			if len(b.Succs) == 0 {
				if t == nil {
					return nil, fmt.Errorf("hgraph: flatten: block B%d is empty with no successors", b.ID)
				}
				// Block ends in a non-terminal with no successor: only legal
				// if it is the method's final return-bearing block, which
				// IsTerminal already covered. Anything else is malformed.
				return nil, fmt.Errorf("hgraph: flatten: block B%d falls off the end", b.ID)
			}
			ft := b.Succs[0]
			if ft != next(bi) {
				slots = append(slots, slot{isGoto: true, gotoTo: ft})
			}
		}
	}

	// Resolve block IDs to instruction indices.
	code := make([]dex.Insn, 0, len(slots))
	for _, s := range slots {
		if s.isGoto {
			code = append(code, dex.Insn{Op: dex.OpGoto, Target: int32(blockStartSlot[s.gotoTo])})
			continue
		}
		in := s.in
		d := dex.Insn{
			Op: in.Op, A: in.A, B: in.B, C: in.C, Lit: in.Lit,
			Method: in.Method, Native: in.Native,
		}
		if in.Op == dex.OpPackedSwitch {
			d.Targets = make([]int32, len(in.Targets))
			for i, t := range in.Targets {
				d.Targets[i] = int32(blockStartSlot[t])
			}
		} else if in.Op.IsBranch() {
			d.Target = int32(blockStartSlot[in.Target])
		}
		code = append(code, d)
	}
	if len(code) == 0 {
		return nil, fmt.Errorf("hgraph: flatten: empty program")
	}
	// A branch targeting a block that flattened to the very end (an empty
	// tail block) points one past the last instruction, and a trailing
	// non-terminal instruction would fall off the end; both are fixed by a
	// single return-void landing pad.
	needPad := !code[len(code)-1].Op.IsTerminal()
	for _, in := range code {
		if in.Op == dex.OpPackedSwitch {
			for _, t := range in.Targets {
				needPad = needPad || int(t) >= len(code)
			}
		} else if in.Op.IsBranch() {
			needPad = needPad || int(in.Target) >= len(code)
		}
	}
	if needPad {
		code = append(code, dex.Insn{Op: dex.OpReturnVoid})
	}
	return code, nil
}

// FlattenInto builds a copy of m with its body replaced by the flattened
// graph, for feeding optimized code back to the reference interpreter.
func FlattenInto(g *Graph, m *dex.Method) (*dex.Method, error) {
	code, err := Flatten(g)
	if err != nil {
		return nil, err
	}
	out := *m
	out.Code = code
	return &out, nil
}
