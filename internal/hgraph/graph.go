// Package hgraph implements the HGraph-style intermediate representation
// that the dex2oat-like pipeline optimizes before code generation, mirroring
// the Android compilation flow in Figure 5 of the Calibro paper: each dex
// method is translated into an HGraph independently, optimized per function,
// and handed to the code generator.
//
// The package also contains a reference interpreter (Run) that defines the
// semantics of a method graph. The binary-code emulator (internal/emu) must
// agree with it; differential tests between the two validate the code
// generator and, transitively, the outliner's semantic preservation.
package hgraph

import (
	"fmt"

	"repro/internal/dex"
)

// Insn is one IR instruction. It mirrors the dex instruction but expresses
// control flow in terms of basic-block IDs rather than bytecode indices.
type Insn struct {
	Op      dex.Opcode
	A, B, C uint8
	Lit     int64
	Target  int            // branch target block ID
	Targets []int          // packed-switch target block IDs
	Method  dex.MethodID   // invoke callee
	Native  dex.NativeFunc // invoke-native callee
}

func (in Insn) String() string {
	switch {
	case in.Op == dex.OpInvoke:
		return fmt.Sprintf("v%d = invoke m%d(v%d, v%d)", in.A, in.Method, in.B, in.C)
	case in.Op == dex.OpInvokeNative:
		return fmt.Sprintf("v%d = %s(v%d, v%d)", in.A, in.Native, in.B, in.C)
	case in.Op == dex.OpPackedSwitch:
		return fmt.Sprintf("switch v%d -> B%v", in.A, in.Targets)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s v%d, v%d -> B%d", in.Op, in.A, in.B, in.Target)
	default:
		return fmt.Sprintf("%s v%d, v%d, v%d, #%d", in.Op, in.A, in.B, in.C, in.Lit)
	}
}

// Block is a basic block: straight-line instructions where only the last
// one may branch.
type Block struct {
	ID    int
	Insns []Insn
	Succs []int // successor block IDs; Succs[0] is the fall-through when the
	// terminator is conditional
	Preds []int
}

// Graph is the per-method IR.
type Graph struct {
	Method *dex.Method
	Blocks []*Block // Blocks[0] is the entry; IDs index this slice
}

// Build translates a dex method body into a control-flow graph.
func Build(m *dex.Method) (*Graph, error) {
	if m.Native {
		return nil, fmt.Errorf("hgraph: %s is native and has no body", m.FullName())
	}
	if len(m.Code) == 0 {
		return nil, fmt.Errorf("hgraph: %s has an empty body", m.FullName())
	}

	// Find leaders: the first instruction, every branch target, and every
	// instruction following a branch.
	leader := make([]bool, len(m.Code))
	leader[0] = true
	for pc, in := range m.Code {
		if !in.Op.IsBranch() {
			continue
		}
		if in.Op == dex.OpPackedSwitch {
			for _, t := range in.Targets {
				leader[t] = true
			}
		} else {
			leader[in.Target] = true
		}
		if pc+1 < len(m.Code) {
			leader[pc+1] = true
		}
	}

	g := &Graph{Method: m}
	numBlocks := 0
	blockAt := make([]int, len(m.Code)) // leader pc -> block ID
	for pc := range m.Code {
		if leader[pc] {
			blockAt[pc] = numBlocks
			numBlocks++
		} else if pc > 0 {
			blockAt[pc] = blockAt[pc-1]
		}
	}

	// Count instructions and edges per block so every slice below is carved
	// out of one backing array; the fill loop then never grows a slice. The
	// edge walk mirrors the fill loop exactly (fall-through first).
	insnCount := make([]int32, numBlocks)
	succCount := make([]int32, numBlocks)
	predCount := make([]int32, numBlocks) // upper bound; Preds dedupe
	forEachEdge(m, leader, blockAt, func(from, to int) {
		succCount[from]++
		predCount[to]++
	})
	for pc := range m.Code {
		insnCount[blockAt[pc]]++
	}
	blocks := make([]Block, numBlocks)
	insns := make([]Insn, len(m.Code))
	totalSucc, totalPred := 0, 0
	for i := range blocks {
		totalSucc += int(succCount[i])
		totalPred += int(predCount[i])
	}
	edges := make([]int, totalSucc+totalPred)
	g.Blocks = make([]*Block, numBlocks)
	insnOff, edgeOff := 0, 0
	for i := range blocks {
		b := &blocks[i]
		b.ID = i
		b.Insns = insns[insnOff:insnOff : insnOff+int(insnCount[i])]
		insnOff += int(insnCount[i])
		b.Succs = edges[edgeOff:edgeOff : edgeOff+int(succCount[i])]
		edgeOff += int(succCount[i])
		b.Preds = edges[edgeOff:edgeOff : edgeOff+int(predCount[i])]
		edgeOff += int(predCount[i])
		g.Blocks[i] = b
	}

	// Fill blocks and record edges.
	for pc, in := range m.Code {
		b := g.Blocks[blockAt[pc]]
		ir := Insn{
			Op: in.Op, A: in.A, B: in.B, C: in.C, Lit: in.Lit,
			Method: in.Method, Native: in.Native,
		}
		last := pc == len(m.Code)-1 || leader[pc+1]
		switch {
		case in.Op == dex.OpPackedSwitch:
			ir.Targets = make([]int, len(in.Targets))
			for i, t := range in.Targets {
				ir.Targets[i] = blockAt[t]
			}
			b.Insns = append(b.Insns, ir)
			// Fall-through first, then the switch targets.
			if pc+1 < len(m.Code) {
				g.addEdge(b.ID, blockAt[pc+1])
			}
			for _, t := range ir.Targets {
				g.addEdge(b.ID, t)
			}
		case in.Op.IsBranch():
			ir.Target = blockAt[in.Target]
			b.Insns = append(b.Insns, ir)
			if in.Op != dex.OpGoto && pc+1 < len(m.Code) {
				g.addEdge(b.ID, blockAt[pc+1]) // fall-through first
			}
			g.addEdge(b.ID, ir.Target)
		default:
			b.Insns = append(b.Insns, ir)
			if last && !in.Op.IsTerminal() && pc+1 < len(m.Code) {
				g.addEdge(b.ID, blockAt[pc+1])
			}
		}
	}
	return g, nil
}

// forEachEdge replays the edge-recording decisions of Build's fill loop
// without materializing blocks, so edge slice capacities can be counted
// up front.
func forEachEdge(m *dex.Method, leader []bool, blockAt []int, emit func(from, to int)) {
	for pc, in := range m.Code {
		from := blockAt[pc]
		last := pc == len(m.Code)-1 || leader[pc+1]
		switch {
		case in.Op == dex.OpPackedSwitch:
			if pc+1 < len(m.Code) {
				emit(from, blockAt[pc+1])
			}
			for _, t := range in.Targets {
				emit(from, blockAt[t])
			}
		case in.Op.IsBranch():
			if in.Op != dex.OpGoto && pc+1 < len(m.Code) {
				emit(from, blockAt[pc+1])
			}
			emit(from, blockAt[in.Target])
		default:
			if last && !in.Op.IsTerminal() && pc+1 < len(m.Code) {
				emit(from, blockAt[pc+1])
			}
		}
	}
}

// addEdge records a CFG edge, keeping duplicates out of Preds but allowing
// duplicate Succs only when a switch lists the same block twice.
func (g *Graph) addEdge(from, to int) {
	f, t := g.Blocks[from], g.Blocks[to]
	f.Succs = append(f.Succs, to)
	for _, p := range t.Preds {
		if p == from {
			return
		}
	}
	t.Preds = append(t.Preds, from)
}

// removeEdge deletes one occurrence of the edge from->to, and the pred link
// if no occurrences remain.
func (g *Graph) removeEdge(from, to int) {
	f := g.Blocks[from]
	for i, s := range f.Succs {
		if s == to {
			f.Succs = append(f.Succs[:i], f.Succs[i+1:]...)
			break
		}
	}
	for _, s := range f.Succs {
		if s == to {
			return // another occurrence keeps the pred link alive
		}
	}
	t := g.Blocks[to]
	for i, p := range t.Preds {
		if p == from {
			t.Preds = append(t.Preds[:i], t.Preds[i+1:]...)
			return
		}
	}
}

// Terminator returns the final instruction of b, or nil if b is empty.
func (b *Block) Terminator() *Insn {
	if len(b.Insns) == 0 {
		return nil
	}
	return &b.Insns[len(b.Insns)-1]
}

// NumInsns counts instructions across all blocks.
func (g *Graph) NumInsns() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Insns)
	}
	return n
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph %s\n", g.Method.FullName())
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		s += fmt.Sprintf("B%d (preds %v, succs %v):\n", b.ID, b.Preds, b.Succs)
		for _, in := range b.Insns {
			s += "  " + in.String() + "\n"
		}
	}
	return s
}

// def returns the register an instruction writes, if any.
func (in Insn) def() (uint8, bool) {
	switch in.Op {
	case dex.OpConst, dex.OpConstPool, dex.OpNewInstance:
		return in.A, true
	case dex.OpMove, dex.OpAddLit, dex.OpIGet, dex.OpNewArray, dex.OpArrayLen:
		return in.A, true
	case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
		dex.OpMul, dex.OpShl, dex.OpShr,
		dex.OpAGet, dex.OpInvoke, dex.OpInvokeNative:
		return in.A, true
	}
	return 0, false
}

// uses returns the registers an instruction reads. The registers are
// returned by value (an instruction reads at most three) so the hot
// liveness and DCE loops never allocate; callers iterate regs[:n].
func (in Insn) uses() (regs [3]uint8, n int) {
	switch in.Op {
	case dex.OpMove, dex.OpAddLit, dex.OpIGet, dex.OpNewArray, dex.OpArrayLen:
		regs[0] = in.B
		return regs, 1
	case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
		dex.OpMul, dex.OpShl, dex.OpShr, dex.OpAGet:
		regs[0], regs[1] = in.B, in.C
		return regs, 2
	case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe:
		regs[0], regs[1] = in.A, in.B
		return regs, 2
	case dex.OpIfEqz, dex.OpIfNez, dex.OpReturn, dex.OpPackedSwitch:
		regs[0] = in.A
		return regs, 1
	case dex.OpIPut:
		regs[0], regs[1] = in.A, in.B
		return regs, 2
	case dex.OpAPut:
		regs[0], regs[1], regs[2] = in.A, in.B, in.C
		return regs, 3
	case dex.OpInvoke, dex.OpInvokeNative:
		regs[0], regs[1] = in.B, in.C
		return regs, 2
	}
	return regs, 0
}

// pure reports whether the instruction can be removed when its result is
// unused: no memory effects, no allocation, no possible exception.
func (in Insn) pure() bool {
	switch in.Op {
	case dex.OpConst, dex.OpConstPool, dex.OpMove, dex.OpAdd, dex.OpSub,
		dex.OpAnd, dex.OpOr, dex.OpXor, dex.OpMul, dex.OpShl, dex.OpShr,
		dex.OpAddLit, dex.OpNopCode:
		return true
	}
	return false
}
