package hgraph

import (
	"testing"

	"repro/internal/dex"
)

func method(name string, numRegs, numIns int, code []dex.Insn) *dex.Method {
	return &dex.Method{Class: "LTest", Name: name, NumRegs: numRegs, NumIns: numIns, Code: code}
}

func TestBuildStraightLine(t *testing.T) {
	m := method("straight", 3, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpConst, A: 1, Lit: 2},
		{Op: dex.OpAdd, A: 2, B: 0, C: 1},
		{Op: dex.OpReturn, A: 2},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 || len(g.Blocks[0].Insns) != 4 {
		t.Fatalf("graph = %s", g)
	}
	if g.NumInsns() != 4 {
		t.Errorf("NumInsns = %d", g.NumInsns())
	}
}

func TestBuildDiamond(t *testing.T) {
	// if v0 == 0 goto @3; v1 = 1; goto @4; @3: v1 = 2; @4: return v1
	m := method("diamond", 2, 1, []dex.Insn{
		{Op: dex.OpIfEqz, A: 0, Target: 3},
		{Op: dex.OpConst, A: 1, Lit: 1},
		{Op: dex.OpGoto, Target: 4},
		{Op: dex.OpConst, A: 1, Lit: 2},
		{Op: dex.OpReturn, A: 1},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d; graph:\n%s", len(g.Blocks), g)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v", entry.Succs)
	}
	// Succs[0] must be the fall-through (the "then" side).
	thenB, elseB := g.Blocks[entry.Succs[0]], g.Blocks[entry.Succs[1]]
	if thenB.Insns[0].Lit != 1 || elseB.Insns[0].Lit != 2 {
		t.Errorf("fall-through ordering broken: %s", g)
	}
	join := g.Blocks[3]
	if len(join.Preds) != 2 || join.Insns[0].Op != dex.OpReturn {
		t.Errorf("join block wrong: %s", g)
	}
}

func TestBuildLoop(t *testing.T) {
	// v0 = 5; @1: v0 = v0 + (-1); if v0 != 0 goto @1; return v0
	m := method("loop", 1, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 5},
		{Op: dex.OpAddLit, A: 0, B: 0, Lit: -1},
		{Op: dex.OpIfNez, A: 0, Target: 1},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d:\n%s", len(g.Blocks), g)
	}
	loop := g.Blocks[1]
	hasSelf := false
	for _, s := range loop.Succs {
		hasSelf = hasSelf || s == loop.ID
	}
	if !hasSelf {
		t.Errorf("loop block lacks back edge: %s", g)
	}
}

func TestBuildSwitch(t *testing.T) {
	m := method("switch", 2, 1, []dex.Insn{
		{Op: dex.OpPackedSwitch, A: 0, Targets: []int32{2, 3}},
		{Op: dex.OpConst, A: 1, Lit: 99}, // fallthrough
		{Op: dex.OpConst, A: 1, Lit: 0},
		{Op: dex.OpReturn, A: 1},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 3 {
		t.Fatalf("switch succs = %v:\n%s", entry.Succs, g)
	}
	sw := entry.Terminator()
	if sw.Op != dex.OpPackedSwitch || len(sw.Targets) != 2 {
		t.Fatalf("terminator = %v", sw)
	}
	// Fall-through is Succs[0].
	ft := g.Blocks[entry.Succs[0]]
	if ft.Insns[0].Lit != 99 {
		t.Errorf("fall-through = %v", ft.Insns[0])
	}
}

func TestBuildRejectsNativeAndEmpty(t *testing.T) {
	if _, err := Build(&dex.Method{Name: "n", Native: true}); err == nil {
		t.Error("Build(native) succeeded")
	}
	if _, err := Build(&dex.Method{Name: "e"}); err == nil {
		t.Error("Build(empty) succeeded")
	}
}

func TestComputeLiveness(t *testing.T) {
	// v0 live across the branch; v1 dead at entry.
	m := method("live", 3, 1, []dex.Insn{
		{Op: dex.OpConst, A: 1, Lit: 7},
		{Op: dex.OpIfEqz, A: 0, Target: 3},
		{Op: dex.OpReturn, A: 1},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)
	entry := g.Blocks[0]
	if !lv.In[entry.ID].has(0) {
		t.Error("v0 not live-in at entry")
	}
	if lv.In[entry.ID].has(1) {
		t.Error("v1 live-in at entry despite being defined first")
	}
	if !lv.Out[entry.ID].has(0) || !lv.Out[entry.ID].has(1) {
		t.Error("v0/v1 not live-out of entry")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	// Argument arrives in v1 (the trailing register); result built in v0.
	m := method("diamond", 2, 1, []dex.Insn{
		{Op: dex.OpIfEqz, A: 1, Target: 3},
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpGoto, Target: 4},
		{Op: dex.OpConst, A: 0, Lit: 2},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := &dex.App{Name: "t"}
	cls := &dex.Class{Name: "LTest"}
	app.Files = []*dex.File{{Name: "d", Classes: []*dex.Class{cls}}}
	app.AddMethod(cls, flat)
	if err := app.Validate(); err != nil {
		t.Fatalf("flattened method invalid: %v", err)
	}
	for _, arg := range []int64{0, 5} {
		ip := &Interp{App: app}
		res, err := ip.Run(flat.ID, []int64{arg})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1)
		if arg == 0 {
			want = 2
		}
		if res.Ret != want {
			t.Errorf("arg %d: ret = %d, want %d", arg, res.Ret, want)
		}
	}
}
