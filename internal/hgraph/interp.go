package hgraph

import (
	"fmt"

	"repro/internal/dex"
)

// Exception enumerates the runtime exceptions the modeled ART can raise.
// The binary-code emulator raises the same set; differential tests require
// the two to agree on kind and timing.
type Exception int

// Exception kinds.
const (
	ExcNone Exception = iota
	ExcNullPointer
	ExcArrayBounds
	ExcStackOverflow
	ExcStepLimit
)

var excNames = [...]string{"none", "null-pointer", "array-bounds", "stack-overflow", "step-limit"}

func (e Exception) String() string {
	if int(e) < len(excNames) {
		return excNames[e]
	}
	return fmt.Sprintf("exception(%d)", int(e))
}

// Result is the observable outcome of a program run: the entry method's
// return value, everything written through pLogValue, the exception that
// terminated the run early (if any), and execution statistics.
type Result struct {
	Ret    int64
	Log    []int64
	Exc    Exception
	Steps  int64
	Calls  int64
	Allocs int64
}

// Interp interprets dex bytecode directly, defining the reference
// semantics of the bytecode independent of the compilation pipeline.
type Interp struct {
	App      *dex.App
	MaxSteps int64 // default 50 million
	MaxDepth int   // default 200 frames

	heap   [][]int64
	log    []int64
	steps  int64
	calls  int64
	allocs int64
}

type excSignal struct{ kind Exception }

// Run executes the entry method with the given arguments (padded or
// truncated to two, matching the binary calling convention).
func (ip *Interp) Run(entry dex.MethodID, args []int64) (Result, error) {
	if ip.App == nil {
		return Result{}, fmt.Errorf("hgraph: interpreter has no app")
	}
	if int(entry) >= len(ip.App.Methods) {
		return Result{}, fmt.Errorf("hgraph: entry method m%d out of range", entry)
	}
	if ip.MaxSteps == 0 {
		ip.MaxSteps = 50_000_000
	}
	if ip.MaxDepth == 0 {
		ip.MaxDepth = 200
	}
	ip.heap, ip.log = nil, nil
	ip.steps, ip.calls, ip.allocs = 0, 0, 0

	a2 := make([]int64, 2)
	copy(a2, args)
	ret, sig, err := ip.call(entry, a2, 0)
	res := Result{Ret: ret, Log: ip.log, Steps: ip.steps, Calls: ip.calls, Allocs: ip.allocs}
	if err != nil {
		return res, err
	}
	if sig != nil {
		res.Exc = sig.kind
		res.Ret = 0
	}
	return res, nil
}

// call executes one method invocation.
func (ip *Interp) call(id dex.MethodID, args []int64, depth int) (int64, *excSignal, error) {
	ip.calls++
	if depth >= ip.MaxDepth {
		return 0, &excSignal{ExcStackOverflow}, nil
	}
	m := ip.App.Methods[id]
	if m.Native {
		// JNI stub semantics: return the first argument.
		return args[0], nil, nil
	}
	regs := make([]int64, m.NumRegs)
	for i := 0; i < m.NumIns && i < len(args); i++ {
		regs[m.NumRegs-m.NumIns+i] = args[i]
	}

	pc := 0
	for {
		if pc < 0 || pc >= len(m.Code) {
			return 0, nil, fmt.Errorf("hgraph: %s: pc %d out of range", m.FullName(), pc)
		}
		ip.steps++
		if ip.steps > ip.MaxSteps {
			return 0, &excSignal{ExcStepLimit}, nil
		}
		in := m.Code[pc]
		switch in.Op {
		case dex.OpNopCode:
		case dex.OpConst:
			regs[in.A] = in.Lit
		case dex.OpConstPool:
			regs[in.A] = int64(m.Pool[in.Lit])
		case dex.OpMove:
			regs[in.A] = regs[in.B]
		case dex.OpAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
		case dex.OpSub:
			regs[in.A] = regs[in.B] - regs[in.C]
		case dex.OpAnd:
			regs[in.A] = regs[in.B] & regs[in.C]
		case dex.OpOr:
			regs[in.A] = regs[in.B] | regs[in.C]
		case dex.OpXor:
			regs[in.A] = regs[in.B] ^ regs[in.C]
		case dex.OpMul:
			regs[in.A] = regs[in.B] * regs[in.C]
		case dex.OpShl:
			regs[in.A] = regs[in.B] << uint64(regs[in.C]&63)
		case dex.OpShr:
			regs[in.A] = int64(uint64(regs[in.B]) >> uint64(regs[in.C]&63))
		case dex.OpAddLit:
			regs[in.A] = regs[in.B] + in.Lit

		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe, dex.OpIfEqz, dex.OpIfNez:
			if branchTaken(in.Op, regs[in.A], regs[in.B]) {
				pc = int(in.Target)
				continue
			}
		case dex.OpGoto:
			pc = int(in.Target)
			continue
		case dex.OpPackedSwitch:
			idx := regs[in.A]
			if idx >= 0 && idx < int64(len(in.Targets)) {
				pc = int(in.Targets[idx])
				continue
			}

		case dex.OpInvoke:
			ret, sig, err := ip.call(in.Method, []int64{regs[in.B], regs[in.C]}, depth+1)
			if sig != nil || err != nil {
				return 0, sig, err
			}
			regs[in.A] = ret
		case dex.OpInvokeNative:
			ret, sig, err := ip.native(in.Native, regs[in.B], regs[in.C])
			if sig != nil || err != nil {
				return 0, sig, err
			}
			regs[in.A] = ret
		case dex.OpNewInstance:
			regs[in.A] = ip.allocObject(in.Lit)

		case dex.OpIGet:
			obj, sig, err := ip.object(m, regs[in.B], in.Lit)
			if sig != nil || err != nil {
				return 0, sig, err
			}
			regs[in.A] = obj[in.Lit]
		case dex.OpIPut:
			obj, sig, err := ip.object(m, regs[in.B], in.Lit)
			if sig != nil || err != nil {
				return 0, sig, err
			}
			obj[in.Lit] = regs[in.A]

		case dex.OpNewArray:
			n := regs[in.B]
			if n < 0 {
				return 0, &excSignal{ExcArrayBounds}, nil
			}
			if n > 1<<20 {
				return 0, nil, fmt.Errorf("hgraph: %s: unreasonable array length %d", m.FullName(), n)
			}
			regs[in.A] = ip.allocArray(n)
		case dex.OpAGet:
			arr, sig, err := ip.array(regs[in.B], regs[in.C])
			if sig != nil || err != nil {
				return 0, sig, err
			}
			regs[in.A] = arr[regs[in.C]]
		case dex.OpAPut:
			arr, sig, err := ip.array(regs[in.B], regs[in.C])
			if sig != nil || err != nil {
				return 0, sig, err
			}
			arr[regs[in.C]] = regs[in.A]
		case dex.OpArrayLen:
			if regs[in.B] == 0 {
				return 0, &excSignal{ExcNullPointer}, nil
			}
			arr, err := ip.deref(regs[in.B])
			if err != nil {
				return 0, nil, err
			}
			regs[in.A] = int64(len(arr))

		case dex.OpReturn:
			return regs[in.A], nil, nil
		case dex.OpReturnVoid:
			return 0, nil, nil
		default:
			return 0, nil, fmt.Errorf("hgraph: %s: bad opcode %s", m.FullName(), in.Op)
		}
		pc++
	}
}

func branchTaken(op dex.Opcode, a, b int64) bool {
	switch op {
	case dex.OpIfEq:
		return a == b
	case dex.OpIfNe:
		return a != b
	case dex.OpIfLt:
		return a < b
	case dex.OpIfGe:
		return a >= b
	case dex.OpIfEqz:
		return a == 0
	case dex.OpIfNez:
		return a != 0
	}
	return false
}

// allocObject allocates size slots (at least one) and returns the handle
// (1-based). The binary allocation stub applies the same minimum.
func (ip *Interp) allocObject(size int64) int64 {
	if size <= 0 {
		size = 1
	}
	return ip.allocArray(size)
}

// allocArray allocates exactly n slots; n may be zero.
func (ip *Interp) allocArray(n int64) int64 {
	ip.allocs++
	ip.heap = append(ip.heap, make([]int64, n))
	return int64(len(ip.heap))
}

// deref resolves a heap handle.
func (ip *Interp) deref(ref int64) ([]int64, error) {
	if ref < 1 || ref > int64(len(ip.heap)) {
		return nil, fmt.Errorf("hgraph: dangling reference %d", ref)
	}
	return ip.heap[ref-1], nil
}

// object resolves a field access base, null-checking first.
func (ip *Interp) object(m *dex.Method, ref, slot int64) ([]int64, *excSignal, error) {
	if ref == 0 {
		return nil, &excSignal{ExcNullPointer}, nil
	}
	obj, err := ip.deref(ref)
	if err != nil {
		return nil, nil, err
	}
	if slot < 0 || slot >= int64(len(obj)) {
		return nil, nil, fmt.Errorf("hgraph: %s: field slot %d out of range (object size %d)", m.FullName(), slot, len(obj))
	}
	return obj, nil, nil
}

// array resolves an array access with null and bounds checks, matching the
// order of checks in the generated binary (null first, then bounds).
func (ip *Interp) array(ref, idx int64) ([]int64, *excSignal, error) {
	if ref == 0 {
		return nil, &excSignal{ExcNullPointer}, nil
	}
	arr, err := ip.deref(ref)
	if err != nil {
		return nil, nil, err
	}
	if idx < 0 || idx >= int64(len(arr)) {
		return nil, &excSignal{ExcArrayBounds}, nil
	}
	return arr, nil, nil
}

// native implements the ART runtime entrypoints.
func (ip *Interp) native(f dex.NativeFunc, a, b int64) (int64, *excSignal, error) {
	switch f {
	case dex.NativeAllocObjectResolved:
		if a > 1<<20 {
			return 0, nil, fmt.Errorf("hgraph: unreasonable object size %d", a)
		}
		return ip.allocObject(a), nil, nil
	case dex.NativeAllocArrayResolved:
		if a < 0 {
			return 0, &excSignal{ExcArrayBounds}, nil
		}
		if a > 1<<20 {
			return 0, nil, fmt.Errorf("hgraph: unreasonable array length %d", a)
		}
		return ip.allocArray(a), nil, nil
	case dex.NativeThrowNullPointer:
		return 0, &excSignal{ExcNullPointer}, nil
	case dex.NativeThrowArrayBounds:
		return 0, &excSignal{ExcArrayBounds}, nil
	case dex.NativeThrowStackOverflow:
		return 0, &excSignal{ExcStackOverflow}, nil
	case dex.NativeGCSafepoint:
		return 0, nil, nil
	case dex.NativeLogValue:
		ip.log = append(ip.log, a)
		return a, nil, nil
	}
	return 0, nil, fmt.Errorf("hgraph: unknown native function %d", f)
}
