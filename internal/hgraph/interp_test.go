package hgraph

import (
	"testing"

	"repro/internal/dex"
)

// newApp wraps methods into a validated app.
func newApp(t *testing.T, methods ...*dex.Method) *dex.App {
	t.Helper()
	app := &dex.App{Name: "t"}
	cls := &dex.Class{Name: "LTest"}
	app.Files = []*dex.File{{Name: "d", Classes: []*dex.Class{cls}}}
	for _, m := range methods {
		app.AddMethod(cls, m)
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return app
}

func run(t *testing.T, app *dex.App, entry dex.MethodID, args ...int64) Result {
	t.Helper()
	ip := &Interp{App: app}
	res, err := ip.Run(entry, args)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestInterpCountdownLoop(t *testing.T) {
	// sum = 0; for i := n; i != 0; i-- { sum += i }; return sum
	m := method("sum", 3, 1, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},         // v0 = 0 (sum)
		{Op: dex.OpMove, A: 1, B: 2},            // v1 = n
		{Op: dex.OpIfEqz, A: 1, Target: 6},      // while v1 != 0
		{Op: dex.OpAdd, A: 0, B: 0, C: 1},       //   sum += v1
		{Op: dex.OpAddLit, A: 1, B: 1, Lit: -1}, //   v1--
		{Op: dex.OpGoto, Target: 2},             //
		{Op: dex.OpReturn, A: 0},                // return sum
	})
	app := newApp(t, m)
	if got := run(t, app, 0, 10).Ret; got != 55 {
		t.Errorf("sum(10) = %d, want 55", got)
	}
	if got := run(t, app, 0, 0).Ret; got != 0 {
		t.Errorf("sum(0) = %d, want 0", got)
	}
}

func TestInterpCallsAndLog(t *testing.T) {
	callee := method("double", 2, 1, []dex.Insn{
		{Op: dex.OpAdd, A: 0, B: 1, C: 1},
		{Op: dex.OpReturn, A: 0},
	})
	caller := method("main", 3, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 21},
		{Op: dex.OpInvoke, A: 1, Method: 0, B: 0, C: 0},
		{Op: dex.OpInvokeNative, A: 2, Native: dex.NativeLogValue, B: 1},
		{Op: dex.OpReturn, A: 2},
	})
	app := newApp(t, callee, caller)
	res := run(t, app, 1)
	if res.Ret != 42 {
		t.Errorf("Ret = %d, want 42", res.Ret)
	}
	if len(res.Log) != 1 || res.Log[0] != 42 {
		t.Errorf("Log = %v", res.Log)
	}
	if res.Calls != 2 {
		t.Errorf("Calls = %d, want 2", res.Calls)
	}
}

func TestInterpObjectsAndArrays(t *testing.T) {
	m := method("mem", 6, 0, []dex.Insn{
		{Op: dex.OpNewInstance, A: 0, Lit: 4}, // v0 = new(4 fields)
		{Op: dex.OpConst, A: 1, Lit: 7},       //
		{Op: dex.OpIPut, A: 1, B: 0, Lit: 2},  // v0.f2 = 7
		{Op: dex.OpIGet, A: 2, B: 0, Lit: 2},  // v2 = v0.f2
		{Op: dex.OpConst, A: 3, Lit: 5},       //
		{Op: dex.OpNewArray, A: 4, B: 3},      // v4 = new[5]
		{Op: dex.OpConst, A: 5, Lit: 3},       //
		{Op: dex.OpAPut, A: 2, B: 4, C: 5},    // v4[3] = v2
		{Op: dex.OpAGet, A: 1, B: 4, C: 5},    // v1 = v4[3]
		{Op: dex.OpArrayLen, A: 3, B: 4},      // v3 = len(v4)
		{Op: dex.OpAdd, A: 0, B: 1, C: 3},     // v0 = 7 + 5
		{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeLogValue, B: 0},
		{Op: dex.OpReturn, A: 0},
	})
	app := newApp(t, m)
	res := run(t, app, 0)
	if res.Ret != 12 || res.Allocs != 2 {
		t.Errorf("Ret = %d Allocs = %d", res.Ret, res.Allocs)
	}
}

func TestInterpExceptions(t *testing.T) {
	cases := []struct {
		name string
		code []dex.Insn
		want Exception
	}{
		{
			"null iget",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: 0},
				{Op: dex.OpIGet, A: 1, B: 0, Lit: 0},
				{Op: dex.OpReturn, A: 1},
			},
			ExcNullPointer,
		},
		{
			"null aget",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: 0},
				{Op: dex.OpAGet, A: 1, B: 0, C: 0},
				{Op: dex.OpReturn, A: 1},
			},
			ExcNullPointer,
		},
		{
			"null arraylen",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: 0},
				{Op: dex.OpArrayLen, A: 1, B: 0},
				{Op: dex.OpReturn, A: 1},
			},
			ExcNullPointer,
		},
		{
			"bounds",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: 2},
				{Op: dex.OpNewArray, A: 1, B: 0},
				{Op: dex.OpAGet, A: 2, B: 1, C: 0}, // v0=2 as index, len 2
				{Op: dex.OpReturn, A: 2},
			},
			ExcArrayBounds,
		},
		{
			"negative bounds",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: 2},
				{Op: dex.OpNewArray, A: 1, B: 0},
				{Op: dex.OpConst, A: 0, Lit: -1},
				{Op: dex.OpAPut, A: 0, B: 1, C: 0},
				{Op: dex.OpReturnVoid},
			},
			ExcArrayBounds,
		},
		{
			"negative array length",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: -3},
				{Op: dex.OpNewArray, A: 1, B: 0},
				{Op: dex.OpReturnVoid},
			},
			ExcArrayBounds,
		},
		{
			"explicit throw",
			[]dex.Insn{
				{Op: dex.OpConst, A: 0, Lit: 0},
				{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeThrowStackOverflow},
				{Op: dex.OpReturnVoid},
			},
			ExcStackOverflow,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := newApp(t, method("m", 3, 0, tc.code))
			res := run(t, app, 0)
			if res.Exc != tc.want {
				t.Errorf("Exc = %v, want %v", res.Exc, tc.want)
			}
		})
	}
}

func TestInterpRecursionOverflows(t *testing.T) {
	// m(n) = m(n) — infinite recursion must hit the depth limit.
	rec := method("rec", 2, 1, []dex.Insn{
		{Op: dex.OpInvoke, A: 0, Method: 0, B: 1, C: 1},
		{Op: dex.OpReturn, A: 0},
	})
	app := newApp(t, rec)
	res := run(t, app, 0, 1)
	if res.Exc != ExcStackOverflow {
		t.Errorf("Exc = %v, want stack overflow", res.Exc)
	}
}

func TestInterpStepLimit(t *testing.T) {
	spin := method("spin", 1, 0, []dex.Insn{
		{Op: dex.OpGoto, Target: 0},
	})
	app := newApp(t, spin)
	ip := &Interp{App: app, MaxSteps: 1000}
	res, err := ip.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc != ExcStepLimit {
		t.Errorf("Exc = %v, want step limit", res.Exc)
	}
}

func TestInterpNativeMethodStub(t *testing.T) {
	jni := &dex.Method{Class: "LTest", Name: "jni", Native: true, NumRegs: 2, NumIns: 2}
	caller := method("main", 2, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 77},
		{Op: dex.OpInvoke, A: 1, Method: 0, B: 0, C: 0},
		{Op: dex.OpReturn, A: 1},
	})
	app := newApp(t, jni, caller)
	if got := run(t, app, 1).Ret; got != 77 {
		t.Errorf("JNI stub returned %d, want 77", got)
	}
}

func TestInterpPackedSwitch(t *testing.T) {
	m := method("sw", 2, 1, []dex.Insn{
		{Op: dex.OpPackedSwitch, A: 1, Targets: []int32{3, 5}},
		{Op: dex.OpConst, A: 0, Lit: -1}, // default
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 100}, // case 0
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 200}, // case 1
		{Op: dex.OpReturn, A: 0},
	})
	app := newApp(t, m)
	for arg, want := range map[int64]int64{0: 100, 1: 200, 2: -1, -5: -1} {
		if got := run(t, app, 0, arg).Ret; got != want {
			t.Errorf("switch(%d) = %d, want %d", arg, got, want)
		}
	}
}

func TestInterpAllocSemantics(t *testing.T) {
	// Zero-length arrays keep length 0; alloc-object clamps to >= 1 slot.
	m := method("alloc", 4, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpNewArray, A: 1, B: 0},
		{Op: dex.OpArrayLen, A: 2, B: 1},
		{Op: dex.OpInvokeNative, A: 3, Native: dex.NativeAllocObjectResolved, B: 0},
		{Op: dex.OpIPut, A: 2, B: 3, Lit: 0}, // must not fault: one slot exists
		{Op: dex.OpReturn, A: 2},
	})
	app := newApp(t, m)
	res := run(t, app, 0)
	if res.Ret != 0 || res.Exc != ExcNone {
		t.Errorf("Ret = %d Exc = %v", res.Ret, res.Exc)
	}
}

func TestInterpErrors(t *testing.T) {
	app := newApp(t, method("m", 1, 0, []dex.Insn{{Op: dex.OpReturnVoid}}))
	ip := &Interp{App: app}
	if _, err := ip.Run(99, nil); err == nil {
		t.Error("Run with bad entry succeeded")
	}
	ip2 := &Interp{}
	if _, err := ip2.Run(0, nil); err == nil {
		t.Error("Run with nil app succeeded")
	}
}
