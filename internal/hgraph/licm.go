package hgraph

import (
	"sort"

	"repro/internal/dex"
)

// Dominators computes the immediate dominator of every reachable block
// with the iterative algorithm of Cooper, Harvey & Kennedy. The entry
// block's idom is itself; unreachable blocks get -1.
func Dominators(g *Graph) []int {
	n := len(g.Blocks)
	// idom escapes to the caller; every DFS scratch slice shares a second
	// backing allocation (the pass runs once per optimization round per
	// method, so its allocation count is hot).
	idom := make([]int, n)
	scratch := make([]int, 4*n)
	order := scratch[0:0:n]
	rpoNum := scratch[n : 2*n : 2*n]
	stack := scratch[2*n : 2*n : 3*n]
	cursor := scratch[3*n:]
	state := make([]uint8, n)
	for i := range idom {
		idom[i] = -1
		rpoNum[i] = -1
	}
	// Iterative post-order DFS (same visit order as the recursive form:
	// successors explored in order, node appended after its children).
	stack = append(stack, 0)
	state[0] = 1
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		descended := false
		for cursor[b] < len(g.Blocks[b].Succs) {
			s := g.Blocks[b].Succs[cursor[b]]
			cursor[b]++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, s)
				descended = true
				break
			}
		}
		if !descended {
			order = append(order, b)
			stack = stack[:len(stack)-1]
		}
	}
	// order is post-order; reverse it.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue // not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominates reports whether a dominates b under the idom tree.
func dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == 0 || idom[b] == -1 {
			return false
		}
		if idom[b] == b {
			return b == a
		}
		b = idom[b]
	}
}

// loop is one natural loop: the header plus the body block set.
type loopInfo struct {
	header int
	blocks map[int]bool
}

// naturalLoops finds the natural loop of every back edge (latch -> header
// where header dominates latch); loops sharing a header are merged.
func naturalLoops(g *Graph, idom []int) []loopInfo {
	var byHeader map[int]map[int]bool // lazy: most methods have no loops
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if idom[s] == -1 || idom[b.ID] == -1 {
				continue
			}
			if !dominates(idom, s, b.ID) {
				continue // not a back edge
			}
			if byHeader == nil {
				byHeader = map[int]map[int]bool{}
			}
			body := byHeader[s]
			if body == nil {
				body = map[int]bool{s: true}
				byHeader[s] = body
			}
			// Walk predecessors from the latch up to the header.
			stack := []int{b.ID}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[cur] {
					continue
				}
				body[cur] = true
				for _, p := range g.Blocks[cur].Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	var loops []loopInfo
	for h, body := range byHeader {
		loops = append(loops, loopInfo{header: h, blocks: body})
	}
	// Map iteration order is random; hoisting processes loops in slice
	// order and mints preheader block IDs as it goes, so the order must be
	// deterministic for the byte-identical-images contract. Methods have a
	// handful of loops at most; insertion sort avoids sort.Slice's closure.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0 && loops[j].header < loops[j-1].header; j-- {
			loops[j], loops[j-1] = loops[j-1], loops[j]
		}
	}
	return loops
}

// hoistInvariants performs loop-invariant code motion, one of the HGraph
// code-size/speed optimizations the dex2oat pipeline runs. A pure
// instruction is hoisted into a freshly created preheader when:
//
//   - every operand is loop-invariant (no definition inside the loop,
//     or defined only by an already-hoisted instruction);
//   - its destination has exactly one definition in the loop;
//   - its destination is not live into the header from outside the loop
//     (hoisting must not clobber a value the first iteration reads);
//   - its block dominates every loop exit (a value computed on a partial
//     iteration must not escape) and every in-loop use of the destination.
func hoistInvariants(g *Graph) bool {
	idom := Dominators(g)
	loops := naturalLoops(g, idom)
	for _, lp := range loops {
		if g.hoistLoop(lp, idom) {
			// CFG shape changed (new preheader); let the caller re-run the
			// pipeline so dominators and loop sets are fresh.
			return true
		}
	}
	return false
}

// hoistLoop hoists what it can out of one loop; returns whether anything
// moved.
func (g *Graph) hoistLoop(lp loopInfo, idom []int) bool {
	// Definition counts per register inside the loop; a dense stack array
	// beats a map here (registers are uint8 and the loop runs per method).
	var defCount [256]int32
	for b := range lp.blocks {
		for _, in := range g.Blocks[b].Insns {
			if d, ok := in.def(); ok {
				defCount[d]++
			}
		}
	}
	// Exit blocks: outside blocks with an in-loop predecessor.
	var exits []int
	for b := range lp.blocks {
		for _, s := range g.Blocks[b].Succs {
			if !lp.blocks[s] {
				exits = append(exits, s)
			}
		}
	}

	loopBlocks := make([]int, 0, len(lp.blocks))
	for b := range lp.blocks {
		loopBlocks = append(loopBlocks, b)
	}
	sort.Ints(loopBlocks)

	hoisted := map[uint8]bool{}
	var hoistedInsns []Insn
	for again := true; again; {
		again = false
		lv := ComputeLiveness(g)
		// The hoisted set is frozen for the round so that instructions
		// hoisted together never depend on one another; dependence chains
		// hoist over successive rounds, which also puts them in dependence
		// order inside the preheader.
		type mark struct{ block, idx int }
		var marks []mark
		var newlyHoisted []uint8
		for _, b := range loopBlocks {
			for idx, in := range g.Blocks[b].Insns {
				if g.canHoist(in, idx, b, lp, idom, lv, &defCount, hoisted, exits) {
					marks = append(marks, mark{b, idx})
					d, _ := in.def()
					newlyHoisted = append(newlyHoisted, d)
					// One hoist per block per round keeps indices valid.
					break
				}
			}
		}
		for _, m := range marks {
			blk := g.Blocks[m.block]
			hoistedInsns = append(hoistedInsns, blk.Insns[m.idx])
			blk.Insns = append(blk.Insns[:m.idx:m.idx], blk.Insns[m.idx+1:]...)
			again = true
		}
		for _, d := range newlyHoisted {
			hoisted[d] = true
		}
	}
	if len(hoistedInsns) == 0 {
		return false
	}

	// Create the preheader and route non-loop predecessors through it.
	pre := &Block{ID: len(g.Blocks), Insns: hoistedInsns}
	g.Blocks = append(g.Blocks, pre)
	h := g.Blocks[lp.header]
	var outside, inside []int
	for _, p := range h.Preds {
		if lp.blocks[p] {
			inside = append(inside, p)
		} else {
			outside = append(outside, p)
		}
	}
	for _, p := range outside {
		pb := g.Blocks[p]
		for i, s := range pb.Succs {
			if s == lp.header {
				pb.Succs[i] = pre.ID
			}
		}
		if t := pb.Terminator(); t != nil {
			if t.Op == dex.OpPackedSwitch {
				for i, tgt := range t.Targets {
					if tgt == lp.header {
						t.Targets[i] = pre.ID
					}
				}
			} else if t.Op.IsBranch() && t.Target == lp.header {
				t.Target = pre.ID
			}
		}
		pre.Preds = append(pre.Preds, p)
	}
	pre.Succs = []int{lp.header}
	h.Preds = append([]int{pre.ID}, inside...)
	return true
}

// canHoist checks the safety conditions for hoisting the instruction at
// g.Blocks[blockID].Insns[inIdx].
func (g *Graph) canHoist(in Insn, inIdx, blockID int, lp loopInfo, idom []int, lv *Liveness,
	defCount *[256]int32, hoisted map[uint8]bool, exits []int) bool {
	if !in.pure() {
		return false
	}
	d, ok := in.def()
	if !ok || defCount[d] != 1 || hoisted[d] {
		return false
	}
	// Self-referencing instructions (d among uses) are induction-like.
	us, n := in.uses()
	for _, u := range us[:n] {
		if u == d {
			return false
		}
		if defCount[u] > 0 && !hoisted[u] {
			return false // operand varies inside the loop
		}
	}
	// The incoming value of d must be dead at the header: hoisting must not
	// clobber a value the first iteration could read.
	if lv.In[lp.header].has(d) {
		return false
	}
	// The defining block must dominate every exit (so the value cannot
	// escape from an iteration that would not have computed it) ...
	for _, e := range exits {
		if !dominates(idom, blockID, e) {
			return false
		}
	}
	// ... and every in-loop use of d.
	for b := range lp.blocks {
		for idx, other := range g.Blocks[b].Insns {
			uses := false
			ous, on := other.uses()
			for _, u := range ous[:on] {
				uses = uses || u == d
			}
			if !uses {
				continue
			}
			if b == blockID {
				if idx < inIdx {
					return false
				}
			} else if !dominates(idom, blockID, b) {
				return false
			}
		}
	}
	return true
}
