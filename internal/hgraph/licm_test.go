package hgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dex"
)

func TestDominators(t *testing.T) {
	// Diamond: B0 -> {B1, B2} -> B3.
	m := method("dom", 2, 1, []dex.Insn{
		{Op: dex.OpIfEqz, A: 1, Target: 3},
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpGoto, Target: 4},
		{Op: dex.OpConst, A: 0, Lit: 2},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	idom := Dominators(g)
	if idom[0] != 0 || idom[1] != 0 || idom[2] != 0 || idom[3] != 0 {
		t.Errorf("idom = %v, want all dominated directly by entry", idom)
	}
	if !dominates(idom, 0, 3) || dominates(idom, 1, 3) || dominates(idom, 2, 3) {
		t.Error("dominance queries wrong on diamond")
	}
}

func TestNaturalLoopDetection(t *testing.T) {
	// v1 counts down; loop body is B1.
	m := method("loop", 3, 1, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpAddLit, A: 0, B: 0, Lit: 1},
		{Op: dex.OpAddLit, A: 2, B: 2, Lit: -1},
		{Op: dex.OpIfNez, A: 2, Target: 1},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	idom := Dominators(g)
	loops := naturalLoops(g, idom)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if !loops[0].blocks[loops[0].header] {
		t.Error("header not in its own loop")
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	// for (v6 = n; v6 != 0; v6--) { v2 = v4 + v5; v0 = v0 + v2 }
	// The v2 computation is invariant; the v0 accumulation is not.
	m := method("licm", 7, 3, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpMove, A: 1, B: 6},      // live counter copy
		{Op: dex.OpAdd, A: 2, B: 4, C: 5}, // invariant
		{Op: dex.OpAdd, A: 0, B: 0, C: 2},
		{Op: dex.OpAddLit, A: 1, B: 1, Lit: -1},
		{Op: dex.OpIfNez, A: 1, Target: 2},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(g)
	// The invariant add must no longer be in a loop block: find the loop
	// and check its body.
	idom := Dominators(g)
	loops := naturalLoops(g, idom)
	if len(loops) != 1 {
		t.Fatalf("loops after optimize = %d:\n%s", len(loops), g)
	}
	for b := range loops[0].blocks {
		for _, in := range g.Blocks[b].Insns {
			if in.Op == dex.OpAdd && in.B == 4 && in.C == 5 {
				t.Errorf("invariant add still inside loop:\n%s", g)
			}
		}
	}
	// Semantics preserved for several trip counts.
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := newApp(t, flat)
	orig := newApp(t, m)
	for _, args := range [][]int64{{3, 4}, {0, 0}} {
		// args fill v5, v6 (the two trailing registers of three ins... use
		// interp directly with 3 ins: v4, v5, v6).
		ipO := &Interp{App: orig}
		want, err := ipO.Run(0, args)
		if err != nil {
			t.Fatal(err)
		}
		ipN := &Interp{App: app}
		got, err := ipN.Run(0, args)
		if err != nil {
			t.Fatal(err)
		}
		if want.Ret != got.Ret {
			t.Errorf("args %v: %d != %d", args, got.Ret, want.Ret)
		}
	}
}

func TestLICMDoesNotHoistVariant(t *testing.T) {
	// The v1 = v3+v3 add depends on the loop counter v3 and feeds the
	// accumulator: it must stay inside the loop.
	m := method("novar", 4, 1, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpAdd, A: 1, B: 3, C: 3},
		{Op: dex.OpAdd, A: 0, B: 0, C: 1},
		{Op: dex.OpAddLit, A: 3, B: 3, Lit: -1},
		{Op: dex.OpIfNez, A: 3, Target: 1},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(g)
	idom := Dominators(g)
	loops := naturalLoops(g, idom)
	if len(loops) != 1 {
		t.Fatalf("loops = %d:\n%s", len(loops), g)
	}
	found := false
	for b := range loops[0].blocks {
		for _, in := range g.Blocks[b].Insns {
			if in.Op == dex.OpAdd && (in.B == 3 || in.C == 3) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("variant computation was hoisted:\n%s", g)
	}
	// And it must still compute sum(2i for i in n..1) = n(n+1).
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := newApp(t, flat)
	if got := run(t, app, 0, 4).Ret; got != 20 {
		t.Errorf("novar(4) = %d, want 20", got)
	}
}

// randLoopMethod extends the random generator with bounded counted loops,
// exercising LICM and the dominator machinery.
func randLoopMethod(r *rand.Rand) *dex.Method {
	m := randMethod(r)
	code := m.Code[:len(m.Code)-1] // drop the trailing return
	retA := m.Code[len(m.Code)-1].A

	// Append up to two self-contained counted loops before the return. The
	// mask register v5 doubles as the loop counter: each loop initializes
	// it, and nothing after the loops (only the logging epilogue) reads the
	// mask, so definite assignment and semantics stay intact.
	nLoops := r.Intn(3)
	for l := 0; l < nLoops; l++ {
		iters := 1 + r.Intn(6)
		code = append(code, dex.Insn{Op: dex.OpConst, A: 5, Lit: int64(iters)})
		top := int32(len(code))
		body := 2 + r.Intn(5)
		for k := 0; k < body; k++ {
			switch r.Intn(4) {
			case 0:
				code = append(code, dex.Insn{Op: dex.OpConst, A: uint8(r.Intn(3)), Lit: int64(r.Intn(100))})
			case 1:
				ops := []dex.Opcode{dex.OpAdd, dex.OpSub, dex.OpXor}
				code = append(code, dex.Insn{Op: ops[r.Intn(3)], A: uint8(r.Intn(3)), B: uint8(r.Intn(3)), C: uint8(r.Intn(3))})
			case 2:
				code = append(code, dex.Insn{Op: dex.OpAddLit, A: uint8(r.Intn(3)), B: uint8(r.Intn(3)), Lit: int64(r.Intn(9))})
			case 3:
				code = append(code, dex.Insn{Op: dex.OpIGet, A: uint8(r.Intn(3)), B: 4, Lit: int64(r.Intn(8))})
			}
		}
		code = append(code,
			dex.Insn{Op: dex.OpAddLit, A: 5, B: 5, Lit: -1},
			dex.Insn{Op: dex.OpIfNez, A: 5, Target: top},
		)
	}
	code = append(code, dex.Insn{Op: dex.OpReturn, A: retA})
	m.Code = code
	return m
}

// TestOptimizeWithLoopsPreservesSemantics is the loop-bearing differential
// property test covering LICM.
func TestOptimizeWithLoopsPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 400; trial++ {
		m := randLoopMethod(r)
		orig := newApp(t, m)
		optApp, _ := optimizeMethod(t, m)
		for _, args := range [][]int64{{0, 0}, {2, -3}, {50, 7}} {
			ipO := &Interp{App: orig}
			want, err := ipO.Run(0, args)
			if err != nil {
				t.Fatal(err)
			}
			ipN := &Interp{App: optApp}
			got, err := ipN.Run(0, args)
			if err != nil {
				t.Fatal(err)
			}
			if want.Ret != got.Ret || want.Exc != got.Exc || !reflect.DeepEqual(want.Log, got.Log) {
				t.Fatalf("trial %d args %v: optimized loop code diverges\nwant ret=%d exc=%v\ngot  ret=%d exc=%v\noriginal: %v\noptimized: %v",
					trial, args, want.Ret, want.Exc, got.Ret, got.Exc, m.Code, optApp.Methods[0].Code)
			}
		}
	}
}
