package hgraph

// regSet is a bitset over the 256 possible virtual registers.
type regSet [4]uint64

func (s *regSet) has(r uint8) bool { return s[r>>6]&(1<<(r&63)) != 0 }
func (s *regSet) add(r uint8)      { s[r>>6] |= 1 << (r & 63) }
func (s *regSet) remove(r uint8)   { s[r>>6] &^= 1 << (r & 63) }

// union merges o into s and reports whether s changed.
func (s *regSet) union(o regSet) bool {
	changed := false
	for i, w := range o {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	In  []regSet
	Out []regSet
}

// ComputeLiveness runs the standard backward dataflow over the graph.
func ComputeLiveness(g *Graph) *Liveness {
	lv := &Liveness{
		In:  make([]regSet, len(g.Blocks)),
		Out: make([]regSet, len(g.Blocks)),
	}
	// Per-block gen (upward-exposed uses) and kill (defs).
	gen := make([]regSet, len(g.Blocks))
	kill := make([]regSet, len(g.Blocks))
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, in := range b.Insns {
			for _, u := range in.uses() {
				if !kill[b.ID].has(u) {
					gen[b.ID].add(u)
				}
			}
			if d, ok := in.def(); ok {
				kill[b.ID].add(d)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			if b == nil {
				continue
			}
			for _, s := range b.Succs {
				if lv.Out[i].union(lv.In[s]) {
					changed = true
				}
			}
			newIn := lv.Out[i]
			for w := range newIn {
				newIn[w] = (newIn[w] &^ kill[i][w]) | gen[i][w]
			}
			if lv.In[i].union(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAfterMasks returns, for every block, the registers live immediately
// after each instruction as 32-bit masks (virtual registers above v31 are
// not represented; the modeled methods use at most 12). The code generator
// records these in stack map entries (§3.5).
func LiveAfterMasks(g *Graph) [][]uint32 {
	lv := ComputeLiveness(g)
	out := make([][]uint32, len(g.Blocks))
	for _, b := range g.Blocks {
		masks := make([]uint32, len(b.Insns))
		live := lv.Out[b.ID]
		for i := len(b.Insns) - 1; i >= 0; i-- {
			masks[i] = uint32(live[0])
			in := b.Insns[i]
			if d, ok := in.def(); ok {
				live.remove(d)
			}
			for _, u := range in.uses() {
				live.add(u)
			}
		}
		out[b.ID] = masks
	}
	return out
}
