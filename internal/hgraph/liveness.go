package hgraph

// regSet is a bitset over the 256 possible virtual registers.
type regSet [4]uint64

func (s *regSet) has(r uint8) bool { return s[r>>6]&(1<<(r&63)) != 0 }
func (s *regSet) add(r uint8)      { s[r>>6] |= 1 << (r & 63) }
func (s *regSet) remove(r uint8)   { s[r>>6] &^= 1 << (r & 63) }

// union merges o into s and reports whether s changed.
func (s *regSet) union(o regSet) bool {
	changed := false
	for i, w := range o {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	In  []regSet
	Out []regSet
}

// ComputeLiveness runs the standard backward dataflow over the graph.
func ComputeLiveness(g *Graph) *Liveness {
	// One backing array serves all four per-block set slices; the dataflow
	// runs once per DCE round per method, so the allocation count matters.
	nb := len(g.Blocks)
	sets := make([]regSet, 4*nb)
	lv := &Liveness{
		In:  sets[0:nb:nb],
		Out: sets[nb : 2*nb : 2*nb],
	}
	// Per-block gen (upward-exposed uses) and kill (defs).
	gen := sets[2*nb : 3*nb : 3*nb]
	kill := sets[3*nb:]
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, in := range b.Insns {
			us, n := in.uses()
			for _, u := range us[:n] {
				if !kill[b.ID].has(u) {
					gen[b.ID].add(u)
				}
			}
			if d, ok := in.def(); ok {
				kill[b.ID].add(d)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(g.Blocks) - 1; i >= 0; i-- {
			b := g.Blocks[i]
			if b == nil {
				continue
			}
			for _, s := range b.Succs {
				if lv.Out[i].union(lv.In[s]) {
					changed = true
				}
			}
			newIn := lv.Out[i]
			for w := range newIn {
				newIn[w] = (newIn[w] &^ kill[i][w]) | gen[i][w]
			}
			if lv.In[i].union(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAfterMasks returns, for every block, the registers live immediately
// after each instruction as 32-bit masks (virtual registers above v31 are
// not represented; the modeled methods use at most 12). The code generator
// records these in stack map entries (§3.5).
func LiveAfterMasks(g *Graph) [][]uint32 {
	lv := ComputeLiveness(g)
	out := make([][]uint32, len(g.Blocks))
	backing := make([]uint32, g.NumInsns())
	for _, b := range g.Blocks {
		masks := backing[:len(b.Insns):len(b.Insns)]
		backing = backing[len(b.Insns):]
		live := lv.Out[b.ID]
		for i := len(b.Insns) - 1; i >= 0; i-- {
			masks[i] = uint32(live[0])
			in := b.Insns[i]
			if d, ok := in.def(); ok {
				live.remove(d)
			}
			us, n := in.uses()
			for _, u := range us[:n] {
				live.add(u)
			}
		}
		out[b.ID] = masks
	}
	return out
}
