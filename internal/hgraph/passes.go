package hgraph

import (
	"math/bits"
	"sync"

	"repro/internal/dex"
)

// Optimize runs the per-function optimization pipeline the way dex2oat's
// HGraph phase does when every code-size optimization is enabled: local
// constant folding and propagation, copy propagation, local value numbering
// (common subexpression elimination), dead code elimination, unreachable
// code elimination, and return merging. The pipeline iterates until a pass
// stops making progress, bounded to a fixed number of rounds.
func Optimize(g *Graph) {
	for round := 0; round < 4; round++ {
		changed := false
		changed = foldAndPropagate(g) || changed
		changed = eliminateDeadCode(g) || changed
		changed = removeUnreachable(g) || changed
		changed = coalesceBlocks(g) || changed
		changed = hoistInvariants(g) || changed
		changed = mergeReturns(g) || changed
		if !changed {
			break
		}
	}
}

// foldAndPropagate performs, per basic block: constant propagation, copy
// propagation, arithmetic constant folding, local value numbering, and
// folding of conditional branches whose outcome is known.
func foldAndPropagate(g *Graph) bool {
	st := foldPool.Get().(*foldState)
	changed := false
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		st.reset()
		if blockFold(g, b, st) {
			changed = true
		}
	}
	foldPool.Put(st)
	return changed
}

// exprKey identifies a pure computation for local value numbering.
type exprKey struct {
	op   dex.Opcode
	b, c uint8
	lit  int64
}

// foldState is the per-block scratch for blockFold. Constant and copy facts
// are keyed by register, so dense arrays guarded by presence bitsets replace
// the maps the fold used to allocate per block; only the value-numbering
// table stays a map (its key is a full expression). States are pooled across
// methods — blockFold runs on every block of every method every round, so
// this is one of the hottest paths in the compiler.
type foldState struct {
	constVal [256]int64 // reg -> known constant (when constSet has reg)
	copyOf   [256]uint8 // reg -> original it copies (when copySet has reg)
	constSet regSet
	copySet  regSet
	exprs    map[exprKey]uint8 // available expression -> holding reg
}

var foldPool = sync.Pool{New: func() any {
	return &foldState{exprs: make(map[exprKey]uint8)}
}}

// reset clears all facts; the arrays need no clearing because the bitsets
// gate every read.
func (st *foldState) reset() {
	st.constSet = regSet{}
	st.copySet = regSet{}
	clear(st.exprs)
}

func (st *foldState) constOf(r uint8) (int64, bool) {
	if !st.constSet.has(r) {
		return 0, false
	}
	return st.constVal[r], true
}

// invalidate removes every fact that mentions r.
func (st *foldState) invalidate(r uint8) {
	st.constSet.remove(r)
	st.copySet.remove(r)
	// Drop copies whose source is r: walk only the registers with facts.
	for w, word := range st.copySet {
		for word != 0 {
			bit := uint8(bits.TrailingZeros64(word))
			word &^= 1 << bit
			k := uint8(w<<6) | bit
			if st.copyOf[k] == r {
				st.copySet.remove(k)
			}
		}
	}
	for k, v := range st.exprs {
		if v == r || k.b == r || k.c == r {
			delete(st.exprs, k)
		}
	}
}

// resolve chases the copy chain for an operand.
func (st *foldState) resolve(r uint8) uint8 {
	if st.copySet.has(r) {
		return st.copyOf[r]
	}
	return r
}

func blockFold(g *Graph, b *Block, st *foldState) bool {
	changed := false
	resolve := st.resolve
	invalidate := st.invalidate

	for idx := range b.Insns {
		in := &b.Insns[idx]

		// Copy-propagate operands first.
		switch in.Op {
		case dex.OpMove, dex.OpAddLit, dex.OpIGet, dex.OpNewArray, dex.OpArrayLen:
			in.B = resolve(in.B)
		case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
			dex.OpMul, dex.OpShl, dex.OpShr, dex.OpAGet:
			in.B, in.C = resolve(in.B), resolve(in.C)
		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe:
			in.A, in.B = resolve(in.A), resolve(in.B)
		case dex.OpIfEqz, dex.OpIfNez, dex.OpReturn, dex.OpPackedSwitch:
			in.A = resolve(in.A)
		case dex.OpIPut:
			in.A, in.B = resolve(in.A), resolve(in.B)
		case dex.OpAPut:
			in.A, in.B, in.C = resolve(in.A), resolve(in.B), resolve(in.C)
		case dex.OpInvoke, dex.OpInvokeNative:
			in.B, in.C = resolve(in.B), resolve(in.C)
		}

		// Fold arithmetic over known constants.
		switch in.Op {
		case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
			dex.OpMul, dex.OpShl, dex.OpShr:
			vb, okb := st.constOf(in.B)
			vc, okc := st.constOf(in.C)
			if okb && okc {
				*in = Insn{Op: dex.OpConst, A: in.A, Lit: foldArith(in.Op, vb, vc)}
				changed = true
			}
		case dex.OpAddLit:
			if vb, ok := st.constOf(in.B); ok {
				*in = Insn{Op: dex.OpConst, A: in.A, Lit: vb + in.Lit}
				changed = true
			}
		case dex.OpMove:
			if vb, ok := st.constOf(in.B); ok {
				*in = Insn{Op: dex.OpConst, A: in.A, Lit: vb}
				changed = true
			}
		}

		// Algebraic simplification / strength reduction, another of the
		// HGraph code-size optimizations dex2oat runs: identities with a
		// constant or repeated operand collapse to moves or constants.
		if simplified, ok := simplifyAlgebraic(*in, st); ok {
			*in = simplified
			changed = true
		}

		// Fold conditional branches with known outcomes. Succs[0] is the
		// fall-through; the recorded Target is the taken edge.
		if taken, known := foldBranch(in, st); known {
			fallThrough := b.Succs[0]
			if taken {
				g.removeEdge(b.ID, fallThrough)
				*in = Insn{Op: dex.OpGoto, Target: in.Target}
			} else {
				g.removeEdge(b.ID, in.Target)
				*in = Insn{Op: dex.OpNopCode}
			}
			changed = true
		}

		// Local value numbering for pure arithmetic.
		switch in.Op {
		case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
			dex.OpMul, dex.OpShl, dex.OpShr, dex.OpAddLit:
			key := exprKey{op: in.Op, b: in.B, lit: in.Lit}
			if in.Op != dex.OpAddLit {
				key.c = in.C
			}
			if holder, ok := st.exprs[key]; ok && holder != in.A {
				*in = Insn{Op: dex.OpMove, A: in.A, B: holder}
				changed = true
			} else {
				d := in.A
				invalidate(d)
				if key.b != d && key.c != d {
					st.exprs[key] = d
				}
				continue
			}
		}

		// Update facts for the (possibly rewritten) instruction.
		if d, ok := in.def(); ok {
			invalidate(d)
			switch in.Op {
			case dex.OpConst:
				st.constVal[d] = in.Lit
				st.constSet.add(d)
			case dex.OpMove:
				if in.B != d {
					st.copyOf[d] = in.B
					st.copySet.add(d)
				}
			}
		}
	}
	// Drop nops introduced by branch folding.
	out := b.Insns[:0]
	for _, in := range b.Insns {
		if in.Op != dex.OpNopCode {
			out = append(out, in)
		}
	}
	b.Insns = out
	return changed
}

// simplifyAlgebraic applies operand identities: x+0, x-0, x|0, x^0 → move;
// x&0 → 0; x-x, x^x → 0; x&x, x|x → move. It returns the replacement and
// whether one applies (and is actually simpler).
func simplifyAlgebraic(in Insn, st *foldState) (Insn, bool) {
	isZero := func(r uint8) bool { v, ok := st.constOf(r); return ok && v == 0 }
	mv := func(dst, src uint8) (Insn, bool) {
		if dst == src {
			return Insn{Op: dex.OpNopCode}, true // self-move: drop entirely
		}
		return Insn{Op: dex.OpMove, A: dst, B: src}, true
	}
	zero := func(dst uint8) (Insn, bool) {
		return Insn{Op: dex.OpConst, A: dst, Lit: 0}, true
	}
	switch in.Op {
	case dex.OpAdd, dex.OpOr, dex.OpXor:
		if in.B == in.C {
			switch in.Op {
			case dex.OpXor:
				return zero(in.A)
			case dex.OpOr:
				return mv(in.A, in.B)
			}
			// x+x has no cheaper form in the modeled set.
			return Insn{}, false
		}
		if isZero(in.C) {
			return mv(in.A, in.B)
		}
		if isZero(in.B) {
			return mv(in.A, in.C)
		}
	case dex.OpSub:
		if in.B == in.C {
			return zero(in.A)
		}
		if isZero(in.C) {
			return mv(in.A, in.B)
		}
	case dex.OpAnd:
		if in.B == in.C {
			return mv(in.A, in.B)
		}
		if isZero(in.B) || isZero(in.C) {
			return zero(in.A)
		}
	case dex.OpMul:
		isOne := func(r uint8) bool { v, ok := st.constOf(r); return ok && v == 1 }
		if isZero(in.B) || isZero(in.C) {
			return zero(in.A)
		}
		if isOne(in.C) {
			return mv(in.A, in.B)
		}
		if isOne(in.B) {
			return mv(in.A, in.C)
		}
	case dex.OpShl, dex.OpShr:
		if isZero(in.C) {
			return mv(in.A, in.B)
		}
		if isZero(in.B) {
			return zero(in.A)
		}
	case dex.OpAddLit:
		if in.Lit == 0 {
			return mv(in.A, in.B)
		}
	}
	return Insn{}, false
}

// foldArith evaluates a binary arithmetic op over int64 operands, matching
// the reference interpreter's semantics exactly.
func foldArith(op dex.Opcode, a, b int64) int64 {
	switch op {
	case dex.OpAdd:
		return a + b
	case dex.OpSub:
		return a - b
	case dex.OpAnd:
		return a & b
	case dex.OpOr:
		return a | b
	case dex.OpXor:
		return a ^ b
	case dex.OpMul:
		return a * b
	case dex.OpShl:
		return a << uint64(b&63)
	case dex.OpShr:
		return int64(uint64(a) >> uint64(b&63))
	}
	panic("hgraph: not an arithmetic op")
}

// foldBranch decides a conditional branch whose operands are constants.
func foldBranch(in *Insn, st *foldState) (taken, known bool) {
	switch in.Op {
	case dex.OpIfEqz, dex.OpIfNez:
		va, ok := st.constOf(in.A)
		if !ok {
			return false, false
		}
		if in.Op == dex.OpIfEqz {
			return va == 0, true
		}
		return va != 0, true
	case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe:
		va, oka := st.constOf(in.A)
		vb, okb := st.constOf(in.B)
		if !oka || !okb {
			return false, false
		}
		switch in.Op {
		case dex.OpIfEq:
			return va == vb, true
		case dex.OpIfNe:
			return va != vb, true
		case dex.OpIfLt:
			return va < vb, true
		default:
			return va >= vb, true
		}
	}
	return false, false
}

// eliminateDeadCode removes pure instructions whose results are never read,
// using global liveness.
func eliminateDeadCode(g *Graph) bool {
	lv := ComputeLiveness(g)
	changed := false
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		live := lv.Out[b.ID]
		// Walk backwards, compacting survivors toward the end of the slice
		// in place (the write cursor never passes the read cursor), then
		// shift them back to the front. No per-block allocation.
		n := len(b.Insns)
		w := n
		for i := n - 1; i >= 0; i-- {
			in := b.Insns[i]
			d, hasDef := in.def()
			if hasDef && in.pure() && !live.has(d) {
				changed = true
				continue
			}
			if hasDef {
				live.remove(d)
			}
			us, un := in.uses()
			for _, u := range us[:un] {
				live.add(u)
			}
			w--
			b.Insns[w] = in
		}
		if w > 0 {
			copy(b.Insns, b.Insns[w:])
			b.Insns = b.Insns[:n-w]
		}
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from the entry and
// compacts block IDs.
func removeUnreachable(g *Graph) bool {
	// newID doubles as the visited set during the DFS (-1 = unreachable);
	// it shares one backing allocation with the DFS stack.
	nb := len(g.Blocks)
	scratch := make([]int, 2*nb)
	newID := scratch[:nb]
	for i := range newID {
		newID[i] = -1
	}
	stack := scratch[nb:nb]
	stack = append(stack, 0)
	newID[0] = 0
	reached := 1
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[id].Succs {
			if newID[s] == -1 {
				newID[s] = 0
				reached++
				stack = append(stack, s)
			}
		}
	}
	if reached == nb {
		return false
	}
	// Renumber.
	kept := make([]*Block, 0, reached)
	for id, b := range g.Blocks {
		if newID[id] == 0 {
			newID[id] = len(kept)
			kept = append(kept, b)
		} else {
			newID[id] = -1
		}
	}
	for _, b := range kept {
		b.ID = newID[b.ID]
		b.Succs = remapIDs(b.Succs, newID)
		b.Preds = remapIDs(b.Preds, newID)
		if t := b.Terminator(); t != nil {
			if t.Op == dex.OpPackedSwitch {
				t.Targets = remapIDs(t.Targets, newID)
			} else if t.Op.IsBranch() {
				t.Target = newID[t.Target]
			}
		}
	}
	g.Blocks = kept
	return true
}

// remapIDs rewrites block IDs through the renumbering table, dropping
// references to removed blocks (only possible for Preds).
func remapIDs(ids []int, newID []int) []int {
	out := ids[:0]
	for _, id := range ids {
		if n := newID[id]; n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

// coalesceBlocks merges a block into its successor when the edge between
// them is the successor's only incoming edge: a trailing goto is dropped and
// the successor's instructions are absorbed. This cleans up the chains that
// branch folding and unreachable elimination leave behind.
func coalesceBlocks(g *Graph) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, b := range g.Blocks {
			if len(b.Succs) != 1 {
				continue
			}
			tid := b.Succs[0]
			if tid == b.ID {
				continue
			}
			t := g.Blocks[tid]
			if len(t.Preds) != 1 {
				continue
			}
			if term := b.Terminator(); term != nil {
				switch term.Op {
				case dex.OpGoto:
					b.Insns = b.Insns[:len(b.Insns)-1]
				case dex.OpReturn, dex.OpReturnVoid, dex.OpPackedSwitch,
					dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe, dex.OpIfEqz, dex.OpIfNez:
					continue // not a plain fall-through/goto edge
				}
			}
			b.Insns = append(b.Insns, t.Insns...)
			b.Succs = append([]int(nil), t.Succs...)
			for _, s := range t.Succs {
				preds := g.Blocks[s].Preds
				for i, p := range preds {
					if p == tid {
						preds[i] = b.ID
					}
				}
				g.Blocks[s].Preds = dedupInts(preds)
			}
			t.Insns, t.Succs, t.Preds = nil, nil, nil
			changed, again = true, true
		}
		if again {
			removeUnreachable(g)
		}
	}
	return changed
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for _, x := range xs {
		dup := false
		for _, y := range out {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// mergeReturns implements the dex2oat "return merging" code-size
// optimization: all blocks that end in an identical return instruction are
// rewritten to jump to one canonical return block, so the code generator
// emits a single epilogue per returned register.
func mergeReturns(g *Graph) bool {
	// Group return blocks by (opcode, returned register) without a map:
	// collect (key, block) pairs and insertion-sort them — methods have a
	// handful of returns, and the sorted walk also makes the group
	// processing order deterministic (a map walk is not, and group order
	// decides the IDs of any synthesized canonical return blocks).
	type retEntry struct {
		op  dex.Opcode
		reg uint8
		id  int
	}
	var entries []retEntry
	for _, b := range g.Blocks {
		t := b.Terminator()
		if t == nil || (t.Op != dex.OpReturn && t.Op != dex.OpReturnVoid) {
			continue
		}
		e := retEntry{op: t.Op, reg: t.A, id: b.ID}
		if t.Op == dex.OpReturnVoid {
			e.reg = 0
		}
		entries = append(entries, e)
	}
	less := func(a, b retEntry) bool {
		if a.op != b.op {
			return a.op < b.op
		}
		if a.reg != b.reg {
			return a.reg < b.reg
		}
		return a.id < b.id
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && less(entries[j], entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	changed := false
	for lo := 0; lo < len(entries); {
		hi := lo + 1
		for hi < len(entries) && entries[hi].op == entries[lo].op && entries[hi].reg == entries[lo].reg {
			hi++
		}
		ids := entries[lo:hi]
		lo = hi
		if len(ids) < 2 {
			continue
		}
		// Prefer an existing bare-return block as the canonical copy.
		canon := -1
		for _, e := range ids {
			if len(g.Blocks[e.id].Insns) == 1 {
				canon = e.id
				break
			}
		}
		if canon == -1 {
			first := g.Blocks[ids[0].id]
			ret := *first.Terminator()
			nb := &Block{ID: len(g.Blocks), Insns: []Insn{ret}}
			g.Blocks = append(g.Blocks, nb)
			canon = nb.ID
		}
		for _, e := range ids {
			if e.id == canon {
				continue
			}
			b := g.Blocks[e.id]
			b.Insns[len(b.Insns)-1] = Insn{Op: dex.OpGoto, Target: canon}
			g.addEdge(e.id, canon)
			changed = true
		}
	}
	return changed
}
