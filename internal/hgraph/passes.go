package hgraph

import "repro/internal/dex"

// Optimize runs the per-function optimization pipeline the way dex2oat's
// HGraph phase does when every code-size optimization is enabled: local
// constant folding and propagation, copy propagation, local value numbering
// (common subexpression elimination), dead code elimination, unreachable
// code elimination, and return merging. The pipeline iterates until a pass
// stops making progress, bounded to a fixed number of rounds.
func Optimize(g *Graph) {
	for round := 0; round < 4; round++ {
		changed := false
		changed = foldAndPropagate(g) || changed
		changed = eliminateDeadCode(g) || changed
		changed = removeUnreachable(g) || changed
		changed = coalesceBlocks(g) || changed
		changed = hoistInvariants(g) || changed
		changed = mergeReturns(g) || changed
		if !changed {
			break
		}
	}
}

// foldAndPropagate performs, per basic block: constant propagation, copy
// propagation, arithmetic constant folding, local value numbering, and
// folding of conditional branches whose outcome is known.
func foldAndPropagate(g *Graph) bool {
	changed := false
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		if blockFold(g, b) {
			changed = true
		}
	}
	return changed
}

// exprKey identifies a pure computation for local value numbering.
type exprKey struct {
	op   dex.Opcode
	b, c uint8
	lit  int64
}

func blockFold(g *Graph, b *Block) bool {
	changed := false
	consts := map[uint8]int64{}  // reg -> known constant
	copies := map[uint8]uint8{}  // reg -> original it copies
	exprs := map[exprKey]uint8{} // available expression -> holding reg

	// invalidate removes every fact that mentions r.
	invalidate := func(r uint8) {
		delete(consts, r)
		delete(copies, r)
		for k, v := range copies {
			if v == r {
				delete(copies, k)
			}
		}
		for k, v := range exprs {
			if v == r || k.b == r || k.c == r {
				delete(exprs, k)
			}
		}
	}
	// resolve chases the copy chain for an operand.
	resolve := func(r uint8) uint8 {
		if o, ok := copies[r]; ok {
			return o
		}
		return r
	}

	for idx := range b.Insns {
		in := &b.Insns[idx]

		// Copy-propagate operands first.
		switch in.Op {
		case dex.OpMove, dex.OpAddLit, dex.OpIGet, dex.OpNewArray, dex.OpArrayLen:
			in.B = resolve(in.B)
		case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
			dex.OpMul, dex.OpShl, dex.OpShr, dex.OpAGet:
			in.B, in.C = resolve(in.B), resolve(in.C)
		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe:
			in.A, in.B = resolve(in.A), resolve(in.B)
		case dex.OpIfEqz, dex.OpIfNez, dex.OpReturn, dex.OpPackedSwitch:
			in.A = resolve(in.A)
		case dex.OpIPut:
			in.A, in.B = resolve(in.A), resolve(in.B)
		case dex.OpAPut:
			in.A, in.B, in.C = resolve(in.A), resolve(in.B), resolve(in.C)
		case dex.OpInvoke, dex.OpInvokeNative:
			in.B, in.C = resolve(in.B), resolve(in.C)
		}

		// Fold arithmetic over known constants.
		switch in.Op {
		case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
			dex.OpMul, dex.OpShl, dex.OpShr:
			vb, okb := consts[in.B]
			vc, okc := consts[in.C]
			if okb && okc {
				*in = Insn{Op: dex.OpConst, A: in.A, Lit: foldArith(in.Op, vb, vc)}
				changed = true
			}
		case dex.OpAddLit:
			if vb, ok := consts[in.B]; ok {
				*in = Insn{Op: dex.OpConst, A: in.A, Lit: vb + in.Lit}
				changed = true
			}
		case dex.OpMove:
			if vb, ok := consts[in.B]; ok {
				*in = Insn{Op: dex.OpConst, A: in.A, Lit: vb}
				changed = true
			}
		}

		// Algebraic simplification / strength reduction, another of the
		// HGraph code-size optimizations dex2oat runs: identities with a
		// constant or repeated operand collapse to moves or constants.
		if simplified, ok := simplifyAlgebraic(*in, consts); ok {
			*in = simplified
			changed = true
		}

		// Fold conditional branches with known outcomes. Succs[0] is the
		// fall-through; the recorded Target is the taken edge.
		if taken, known := foldBranch(in, consts); known {
			fallThrough := b.Succs[0]
			if taken {
				g.removeEdge(b.ID, fallThrough)
				*in = Insn{Op: dex.OpGoto, Target: in.Target}
			} else {
				g.removeEdge(b.ID, in.Target)
				*in = Insn{Op: dex.OpNopCode}
			}
			changed = true
		}

		// Local value numbering for pure arithmetic.
		switch in.Op {
		case dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor,
			dex.OpMul, dex.OpShl, dex.OpShr, dex.OpAddLit:
			key := exprKey{op: in.Op, b: in.B, lit: in.Lit}
			if in.Op != dex.OpAddLit {
				key.c = in.C
			}
			if holder, ok := exprs[key]; ok && holder != in.A {
				*in = Insn{Op: dex.OpMove, A: in.A, B: holder}
				changed = true
			} else {
				d := in.A
				invalidate(d)
				if key.b != d && key.c != d {
					exprs[key] = d
				}
				continue
			}
		}

		// Update facts for the (possibly rewritten) instruction.
		if d, ok := in.def(); ok {
			invalidate(d)
			switch in.Op {
			case dex.OpConst:
				consts[d] = in.Lit
			case dex.OpMove:
				if in.B != d {
					copies[d] = in.B
				}
			}
		}
	}
	// Drop nops introduced by branch folding.
	out := b.Insns[:0]
	for _, in := range b.Insns {
		if in.Op != dex.OpNopCode {
			out = append(out, in)
		}
	}
	b.Insns = out
	return changed
}

// simplifyAlgebraic applies operand identities: x+0, x-0, x|0, x^0 → move;
// x&0 → 0; x-x, x^x → 0; x&x, x|x → move. It returns the replacement and
// whether one applies (and is actually simpler).
func simplifyAlgebraic(in Insn, consts map[uint8]int64) (Insn, bool) {
	isZero := func(r uint8) bool { v, ok := consts[r]; return ok && v == 0 }
	mv := func(dst, src uint8) (Insn, bool) {
		if dst == src {
			return Insn{Op: dex.OpNopCode}, true // self-move: drop entirely
		}
		return Insn{Op: dex.OpMove, A: dst, B: src}, true
	}
	zero := func(dst uint8) (Insn, bool) {
		return Insn{Op: dex.OpConst, A: dst, Lit: 0}, true
	}
	switch in.Op {
	case dex.OpAdd, dex.OpOr, dex.OpXor:
		if in.B == in.C {
			switch in.Op {
			case dex.OpXor:
				return zero(in.A)
			case dex.OpOr:
				return mv(in.A, in.B)
			}
			// x+x has no cheaper form in the modeled set.
			return Insn{}, false
		}
		if isZero(in.C) {
			return mv(in.A, in.B)
		}
		if isZero(in.B) {
			return mv(in.A, in.C)
		}
	case dex.OpSub:
		if in.B == in.C {
			return zero(in.A)
		}
		if isZero(in.C) {
			return mv(in.A, in.B)
		}
	case dex.OpAnd:
		if in.B == in.C {
			return mv(in.A, in.B)
		}
		if isZero(in.B) || isZero(in.C) {
			return zero(in.A)
		}
	case dex.OpMul:
		isOne := func(r uint8) bool { v, ok := consts[r]; return ok && v == 1 }
		if isZero(in.B) || isZero(in.C) {
			return zero(in.A)
		}
		if isOne(in.C) {
			return mv(in.A, in.B)
		}
		if isOne(in.B) {
			return mv(in.A, in.C)
		}
	case dex.OpShl, dex.OpShr:
		if isZero(in.C) {
			return mv(in.A, in.B)
		}
		if isZero(in.B) {
			return zero(in.A)
		}
	case dex.OpAddLit:
		if in.Lit == 0 {
			return mv(in.A, in.B)
		}
	}
	return Insn{}, false
}

// foldArith evaluates a binary arithmetic op over int64 operands, matching
// the reference interpreter's semantics exactly.
func foldArith(op dex.Opcode, a, b int64) int64 {
	switch op {
	case dex.OpAdd:
		return a + b
	case dex.OpSub:
		return a - b
	case dex.OpAnd:
		return a & b
	case dex.OpOr:
		return a | b
	case dex.OpXor:
		return a ^ b
	case dex.OpMul:
		return a * b
	case dex.OpShl:
		return a << uint64(b&63)
	case dex.OpShr:
		return int64(uint64(a) >> uint64(b&63))
	}
	panic("hgraph: not an arithmetic op")
}

// foldBranch decides a conditional branch whose operands are constants.
func foldBranch(in *Insn, consts map[uint8]int64) (taken, known bool) {
	switch in.Op {
	case dex.OpIfEqz, dex.OpIfNez:
		va, ok := consts[in.A]
		if !ok {
			return false, false
		}
		if in.Op == dex.OpIfEqz {
			return va == 0, true
		}
		return va != 0, true
	case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe:
		va, oka := consts[in.A]
		vb, okb := consts[in.B]
		if !oka || !okb {
			return false, false
		}
		switch in.Op {
		case dex.OpIfEq:
			return va == vb, true
		case dex.OpIfNe:
			return va != vb, true
		case dex.OpIfLt:
			return va < vb, true
		default:
			return va >= vb, true
		}
	}
	return false, false
}

// eliminateDeadCode removes pure instructions whose results are never read,
// using global liveness.
func eliminateDeadCode(g *Graph) bool {
	lv := ComputeLiveness(g)
	changed := false
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		live := lv.Out[b.ID]
		// Walk backwards, collecting surviving instructions.
		kept := make([]Insn, 0, len(b.Insns))
		for i := len(b.Insns) - 1; i >= 0; i-- {
			in := b.Insns[i]
			d, hasDef := in.def()
			if hasDef && in.pure() && !live.has(d) {
				changed = true
				continue
			}
			if hasDef {
				live.remove(d)
			}
			for _, u := range in.uses() {
				live.add(u)
			}
			kept = append(kept, in)
		}
		// Reverse kept back into order.
		for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
			kept[l], kept[r] = kept[r], kept[l]
		}
		b.Insns = kept
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from the entry and
// compacts block IDs.
func removeUnreachable(g *Graph) bool {
	reachable := make([]bool, len(g.Blocks))
	stack := []int{0}
	reachable[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[id].Succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	all := true
	for _, r := range reachable {
		all = all && r
	}
	if all {
		return false
	}
	// Renumber.
	newID := make([]int, len(g.Blocks))
	var kept []*Block
	for id, b := range g.Blocks {
		if reachable[id] {
			newID[id] = len(kept)
			kept = append(kept, b)
		} else {
			newID[id] = -1
		}
	}
	for _, b := range kept {
		b.ID = newID[b.ID]
		b.Succs = remapIDs(b.Succs, newID)
		b.Preds = remapIDs(b.Preds, newID)
		if t := b.Terminator(); t != nil {
			if t.Op == dex.OpPackedSwitch {
				t.Targets = remapIDs(t.Targets, newID)
			} else if t.Op.IsBranch() {
				t.Target = newID[t.Target]
			}
		}
	}
	g.Blocks = kept
	return true
}

// remapIDs rewrites block IDs through the renumbering table, dropping
// references to removed blocks (only possible for Preds).
func remapIDs(ids []int, newID []int) []int {
	out := ids[:0]
	for _, id := range ids {
		if n := newID[id]; n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

// coalesceBlocks merges a block into its successor when the edge between
// them is the successor's only incoming edge: a trailing goto is dropped and
// the successor's instructions are absorbed. This cleans up the chains that
// branch folding and unreachable elimination leave behind.
func coalesceBlocks(g *Graph) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, b := range g.Blocks {
			if len(b.Succs) != 1 {
				continue
			}
			tid := b.Succs[0]
			if tid == b.ID {
				continue
			}
			t := g.Blocks[tid]
			if len(t.Preds) != 1 {
				continue
			}
			if term := b.Terminator(); term != nil {
				switch term.Op {
				case dex.OpGoto:
					b.Insns = b.Insns[:len(b.Insns)-1]
				case dex.OpReturn, dex.OpReturnVoid, dex.OpPackedSwitch,
					dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe, dex.OpIfEqz, dex.OpIfNez:
					continue // not a plain fall-through/goto edge
				}
			}
			b.Insns = append(b.Insns, t.Insns...)
			b.Succs = append([]int(nil), t.Succs...)
			for _, s := range t.Succs {
				preds := g.Blocks[s].Preds
				for i, p := range preds {
					if p == tid {
						preds[i] = b.ID
					}
				}
				g.Blocks[s].Preds = dedupInts(preds)
			}
			t.Insns, t.Succs, t.Preds = nil, nil, nil
			changed, again = true, true
		}
		if again {
			removeUnreachable(g)
		}
	}
	return changed
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for _, x := range xs {
		dup := false
		for _, y := range out {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// mergeReturns implements the dex2oat "return merging" code-size
// optimization: all blocks that end in an identical return instruction are
// rewritten to jump to one canonical return block, so the code generator
// emits a single epilogue per returned register.
func mergeReturns(g *Graph) bool {
	type retKey struct {
		op  dex.Opcode
		reg uint8
	}
	keyOf := func(in Insn) retKey {
		k := retKey{op: in.Op, reg: in.A}
		if in.Op == dex.OpReturnVoid {
			k.reg = 0
		}
		return k
	}
	groups := map[retKey][]int{}
	for _, b := range g.Blocks {
		t := b.Terminator()
		if t == nil || (t.Op != dex.OpReturn && t.Op != dex.OpReturnVoid) {
			continue
		}
		k := keyOf(*t)
		groups[k] = append(groups[k], b.ID)
	}
	changed := false
	for _, ids := range groups {
		if len(ids) < 2 {
			continue
		}
		// Prefer an existing bare-return block as the canonical copy.
		canon := -1
		for _, id := range ids {
			if len(g.Blocks[id].Insns) == 1 {
				canon = id
				break
			}
		}
		if canon == -1 {
			first := g.Blocks[ids[0]]
			ret := *first.Terminator()
			nb := &Block{ID: len(g.Blocks), Insns: []Insn{ret}}
			g.Blocks = append(g.Blocks, nb)
			canon = nb.ID
		}
		for _, id := range ids {
			if id == canon {
				continue
			}
			b := g.Blocks[id]
			b.Insns[len(b.Insns)-1] = Insn{Op: dex.OpGoto, Target: canon}
			g.addEdge(id, canon)
			changed = true
		}
	}
	return changed
}
