package hgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dex"
)

// optimizeMethod runs the pipeline and returns the flattened result wrapped
// in an app, plus the optimized insn count.
func optimizeMethod(t *testing.T, m *dex.Method) (*dex.App, int) {
	t.Helper()
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(g)
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := &dex.App{Name: "t"}
	cls := &dex.Class{Name: "LTest"}
	app.Files = []*dex.File{{Name: "d", Classes: []*dex.Class{cls}}}
	app.AddMethod(cls, flat)
	if err := app.Validate(); err != nil {
		t.Fatalf("optimized method invalid: %v\ncode: %v", err, flat.Code)
	}
	return app, len(flat.Code)
}

func TestConstantFolding(t *testing.T) {
	m := method("fold", 3, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 20},
		{Op: dex.OpConst, A: 1, Lit: 22},
		{Op: dex.OpAdd, A: 2, B: 0, C: 1},
		{Op: dex.OpReturn, A: 2},
	})
	app, n := optimizeMethod(t, m)
	if got := run(t, app, 0).Ret; got != 42 {
		t.Errorf("Ret = %d", got)
	}
	// v0/v1 defs become dead after folding; DCE removes them.
	if n != 2 {
		t.Errorf("optimized length = %d, want 2 (const+return): %v", n, app.Methods[0].Code)
	}
	if app.Methods[0].Code[0].Op != dex.OpConst || app.Methods[0].Code[0].Lit != 42 {
		t.Errorf("folding failed: %v", app.Methods[0].Code)
	}
}

func TestBranchFoldingRemovesDeadArm(t *testing.T) {
	m := method("bfold", 2, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpIfEqz, A: 0, Target: 4}, // never taken
		{Op: dex.OpConst, A: 1, Lit: 10},
		{Op: dex.OpGoto, Target: 5},
		{Op: dex.OpConst, A: 1, Lit: 20}, // unreachable
		{Op: dex.OpReturn, A: 1},
	})
	app, n := optimizeMethod(t, m)
	if got := run(t, app, 0).Ret; got != 10 {
		t.Errorf("Ret = %d, want 10", got)
	}
	for _, in := range app.Methods[0].Code {
		if in.Op == dex.OpConst && in.Lit == 20 {
			t.Errorf("dead arm survived: %v", app.Methods[0].Code)
		}
		if in.Op == dex.OpIfEqz {
			t.Errorf("decided branch survived: %v", app.Methods[0].Code)
		}
	}
	if n > 3 {
		t.Errorf("optimized length = %d: %v", n, app.Methods[0].Code)
	}
}

func TestBranchFoldingTakenArm(t *testing.T) {
	m := method("bfold2", 2, 0, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 0},
		{Op: dex.OpIfEqz, A: 0, Target: 4}, // always taken
		{Op: dex.OpConst, A: 1, Lit: 10},   // dead
		{Op: dex.OpGoto, Target: 5},
		{Op: dex.OpConst, A: 1, Lit: 20},
		{Op: dex.OpReturn, A: 1},
	})
	app, _ := optimizeMethod(t, m)
	if got := run(t, app, 0).Ret; got != 20 {
		t.Errorf("Ret = %d, want 20", got)
	}
	for _, in := range app.Methods[0].Code {
		if in.Op == dex.OpConst && in.Lit == 10 {
			t.Errorf("dead arm survived: %v", app.Methods[0].Code)
		}
	}
}

func TestDeadCodeElimination(t *testing.T) {
	m := method("dce", 4, 1, []dex.Insn{
		{Op: dex.OpConst, A: 0, Lit: 1}, // dead
		{Op: dex.OpAdd, A: 1, B: 3, C: 3},
		{Op: dex.OpConst, A: 2, Lit: 9}, // dead
		{Op: dex.OpMove, A: 2, B: 1},    // dead (v2 never read... actually read below)
		{Op: dex.OpReturn, A: 1},
	})
	app, n := optimizeMethod(t, m)
	if got := run(t, app, 0, 21).Ret; got != 42 {
		t.Errorf("Ret = %d, want 42", got)
	}
	if n != 2 {
		t.Errorf("optimized length = %d, want 2: %v", n, app.Methods[0].Code)
	}
}

func TestDCEKeepsImpureInstructions(t *testing.T) {
	m := method("impure", 3, 0, []dex.Insn{
		{Op: dex.OpConst, A: 1, Lit: 7},
		{Op: dex.OpInvokeNative, A: 0, Native: dex.NativeLogValue, B: 1, C: 1}, // result dead, call live
		{Op: dex.OpNewInstance, A: 2, Lit: 2},                                  // result dead, alloc live
		{Op: dex.OpReturnVoid},
	})
	app, _ := optimizeMethod(t, m)
	res := run(t, app, 0)
	if len(res.Log) != 1 || res.Allocs != 1 {
		t.Errorf("side effects eliminated: log=%v allocs=%d", res.Log, res.Allocs)
	}
}

func TestCSE(t *testing.T) {
	m := method("cse", 5, 2, []dex.Insn{
		{Op: dex.OpAdd, A: 0, B: 3, C: 4},
		{Op: dex.OpAdd, A: 1, B: 3, C: 4}, // same expression
		{Op: dex.OpAdd, A: 2, B: 0, C: 1},
		{Op: dex.OpReturn, A: 2},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(g)
	adds := 0
	for _, b := range g.Blocks {
		for _, in := range b.Insns {
			if in.Op == dex.OpAdd {
				adds++
			}
		}
	}
	if adds != 2 {
		t.Errorf("adds after CSE = %d, want 2:\n%s", adds, g)
	}
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := newApp(t, flat)
	if got := run(t, app, 0, 10, 11).Ret; got != 42 {
		t.Errorf("Ret = %d, want 42", got)
	}
}

func TestCopyPropagation(t *testing.T) {
	m := method("copy", 4, 1, []dex.Insn{
		{Op: dex.OpMove, A: 0, B: 3},
		{Op: dex.OpMove, A: 1, B: 0},
		{Op: dex.OpAdd, A: 2, B: 1, C: 0},
		{Op: dex.OpReturn, A: 2},
	})
	app, n := optimizeMethod(t, m)
	if got := run(t, app, 0, 21).Ret; got != 42 {
		t.Errorf("Ret = %d", got)
	}
	// Both moves become dead once uses are rewritten to v3.
	if n != 2 {
		t.Errorf("optimized length = %d, want 2: %v", n, app.Methods[0].Code)
	}
}

func TestReturnMerging(t *testing.T) {
	// Three arms all branching to identical "return v0" blocks.
	m := method("retmerge", 2, 1, []dex.Insn{
		{Op: dex.OpIfEqz, A: 1, Target: 4},
		{Op: dex.OpIfNez, A: 1, Target: 6},
		{Op: dex.OpConst, A: 0, Lit: 1},
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 2},
		{Op: dex.OpReturn, A: 0},
		{Op: dex.OpConst, A: 0, Lit: 3},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(g)
	returns := 0
	for _, b := range g.Blocks {
		for _, in := range b.Insns {
			if in.Op == dex.OpReturn {
				returns++
			}
		}
	}
	if returns > 2 {
		t.Errorf("returns after merging = %d:\n%s", returns, g)
	}
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := newApp(t, flat)
	for arg, want := range map[int64]int64{0: 2, 7: 3} {
		if got := run(t, app, 0, arg).Ret; got != want {
			t.Errorf("retmerge(%d) = %d, want %d", arg, got, want)
		}
	}
}

func TestUnreachableElimination(t *testing.T) {
	m := method("unreach", 1, 0, []dex.Insn{
		{Op: dex.OpGoto, Target: 3},
		{Op: dex.OpConst, A: 0, Lit: 1}, // unreachable
		{Op: dex.OpGoto, Target: 1},     // unreachable loop
		{Op: dex.OpConst, A: 0, Lit: 2},
		{Op: dex.OpReturn, A: 0},
	})
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(g)
	if len(g.Blocks) != 1 {
		t.Errorf("blocks after unreachable elim = %d:\n%s", len(g.Blocks), g)
	}
	flat, err := FlattenInto(g, m)
	if err != nil {
		t.Fatal(err)
	}
	app := newApp(t, flat)
	if got := run(t, app, 0).Ret; got != 2 {
		t.Errorf("Ret = %d, want 2", got)
	}
}

// randMethod generates a structured random method: bounded, deterministic
// control flow (forward branches only), safe memory idioms (masked array
// indices, fixed-size objects), and observable effects through logging.
func randMethod(r *rand.Rand) *dex.Method {
	const (
		tmpRegs = 3 // v0..v2 random scratch
		maskReg = 5
		arrReg  = 3
		objReg  = 4
		arg0    = 6
		arg1    = 7
	)
	var code []dex.Insn
	// Prologue: mask, array, object, and definite assignment of scratch.
	code = append(code,
		dex.Insn{Op: dex.OpConst, A: maskReg, Lit: 15},
		dex.Insn{Op: dex.OpConst, A: 0, Lit: 16},
		dex.Insn{Op: dex.OpNewArray, A: arrReg, B: 0},
		dex.Insn{Op: dex.OpNewInstance, A: objReg, Lit: 8},
		dex.Insn{Op: dex.OpConst, A: 0, Lit: 0},
		dex.Insn{Op: dex.OpConst, A: 1, Lit: 0},
		dex.Insn{Op: dex.OpConst, A: 2, Lit: 0},
	)
	scratch := func() uint8 { return uint8(r.Intn(tmpRegs)) }
	operand := func() uint8 {
		if r.Intn(4) == 0 {
			return uint8(arg0 + r.Intn(2))
		}
		return scratch()
	}
	n := 5 + r.Intn(36)
	type pendingBranch struct {
		at  int
		arm int // -1 for plain branches, else packed-switch target index
	}
	var branches []pendingBranch
	for len(code) < n+4 {
		switch r.Intn(13) {
		case 0, 1:
			code = append(code, dex.Insn{Op: dex.OpConst, A: scratch(), Lit: int64(r.Intn(201) - 100)})
		case 2:
			code = append(code, dex.Insn{Op: dex.OpMove, A: scratch(), B: operand()})
		case 3, 4, 5:
			ops := []dex.Opcode{dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor}
			code = append(code, dex.Insn{Op: ops[r.Intn(len(ops))], A: scratch(), B: operand(), C: operand()})
		case 6:
			code = append(code, dex.Insn{Op: dex.OpAddLit, A: scratch(), B: operand(), Lit: int64(r.Intn(21) - 10)})
		case 7:
			ops := []dex.Opcode{dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe, dex.OpIfEqz, dex.OpIfNez}
			code = append(code, dex.Insn{Op: ops[r.Intn(len(ops))], A: operand(), B: operand()})
			branches = append(branches, pendingBranch{at: len(code) - 1, arm: -1})
		case 12:
			arms := 2 + r.Intn(3)
			code = append(code, dex.Insn{Op: dex.OpPackedSwitch, A: operand(),
				Targets: make([]int32, arms)})
			for arm := 0; arm < arms; arm++ {
				branches = append(branches, pendingBranch{at: len(code) - 1, arm: arm})
			}
		case 8:
			// Masked array access pair.
			code = append(code,
				dex.Insn{Op: dex.OpAnd, A: 2, B: operand(), C: maskReg},
				dex.Insn{Op: dex.OpAGet, A: scratch(), B: arrReg, C: 2},
			)
		case 9:
			code = append(code,
				dex.Insn{Op: dex.OpAnd, A: 2, B: operand(), C: maskReg},
				dex.Insn{Op: dex.OpAPut, A: scratch(), B: arrReg, C: 2},
			)
		case 10:
			slot := int64(r.Intn(8))
			if r.Intn(2) == 0 {
				code = append(code, dex.Insn{Op: dex.OpIGet, A: scratch(), B: objReg, Lit: slot})
			} else {
				code = append(code, dex.Insn{Op: dex.OpIPut, A: scratch(), B: objReg, Lit: slot})
			}
		case 11:
			code = append(code, dex.Insn{Op: dex.OpInvokeNative, A: scratch(), Native: dex.NativeLogValue, B: operand()})
		}
	}
	// Epilogue: log the scratch registers, return v0.
	for reg := uint8(0); reg < tmpRegs; reg++ {
		code = append(code, dex.Insn{Op: dex.OpInvokeNative, A: reg, Native: dex.NativeLogValue, B: reg})
	}
	code = append(code, dex.Insn{Op: dex.OpReturn, A: 0})
	// Bind pending branches to random forward targets.
	for _, pb := range branches {
		lo, hi := pb.at+1, len(code)-1
		t := int32(lo + r.Intn(hi-lo+1))
		if pb.arm < 0 {
			code[pb.at].Target = t
		} else {
			code[pb.at].Targets[pb.arm] = t
		}
	}
	return &dex.Method{
		Class: "LRand", Name: "m", NumRegs: 8, NumIns: 2, Code: code,
	}
}

// TestOptimizePreservesSemantics is the differential property test: for
// random programs, the optimized pipeline output must match the reference
// interpreter on return value, log, and exception behaviour.
func TestOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		m := randMethod(r)
		orig := newApp(t, m)
		optApp, _ := optimizeMethod(t, m)

		for _, args := range [][]int64{{0, 0}, {1, -1}, {13, 64}, {-100, 7}} {
			want := run(t, orig, 0, args...)
			got := run(t, optApp, 0, args...)
			if want.Ret != got.Ret || want.Exc != got.Exc || !reflect.DeepEqual(want.Log, got.Log) {
				t.Fatalf("trial %d args %v: optimized diverges\nwant ret=%d exc=%v log=%v\ngot  ret=%d exc=%v log=%v\noriginal: %v\noptimized: %v",
					trial, args, want.Ret, want.Exc, want.Log, got.Ret, got.Exc, got.Log,
					m.Code, optApp.Methods[0].Code)
			}
		}
	}
}

// TestOptimizeShrinksRandomPrograms checks the pipeline never grows code.
func TestOptimizeShrinksRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	grew := 0
	for trial := 0; trial < 200; trial++ {
		m := randMethod(r)
		before := len(m.Code)
		_, after := optimizeMethod(t, m)
		if after > before+2 { // flattening may add a goto or landing pad
			grew++
		}
	}
	if grew > 0 {
		t.Errorf("%d/200 random programs grew under optimization", grew)
	}
}

func TestAlgebraicSimplification(t *testing.T) {
	// v0 = arg; v1 = 0; checks each identity returns the expected value
	// and that the op disappears from the optimized code.
	cases := []struct {
		name string
		op   dex.Opcode
		b, c uint8 // operands (v3 = arg, v1 = zero)
		want func(arg int64) int64
	}{
		{"x+0", dex.OpAdd, 3, 1, func(a int64) int64 { return a }},
		{"0+x", dex.OpAdd, 1, 3, func(a int64) int64 { return a }},
		{"x-0", dex.OpSub, 3, 1, func(a int64) int64 { return a }},
		{"x-x", dex.OpSub, 3, 3, func(int64) int64 { return 0 }},
		{"x&0", dex.OpAnd, 3, 1, func(int64) int64 { return 0 }},
		{"x&x", dex.OpAnd, 3, 3, func(a int64) int64 { return a }},
		{"x|0", dex.OpOr, 3, 1, func(a int64) int64 { return a }},
		{"x|x", dex.OpOr, 3, 3, func(a int64) int64 { return a }},
		{"x^0", dex.OpXor, 3, 1, func(a int64) int64 { return a }},
		{"x^x", dex.OpXor, 3, 3, func(int64) int64 { return 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := method(tc.name, 4, 1, []dex.Insn{
				{Op: dex.OpConst, A: 1, Lit: 0},
				{Op: tc.op, A: 0, B: tc.b, C: tc.c},
				{Op: dex.OpReturn, A: 0},
			})
			app, n := optimizeMethod(t, m)
			for _, arg := range []int64{0, 42, -7} {
				if got := run(t, app, 0, arg).Ret; got != tc.want(arg) {
					t.Errorf("arg %d: got %d, want %d", arg, got, tc.want(arg))
				}
			}
			for _, in := range app.Methods[0].Code {
				if in.Op == tc.op {
					t.Errorf("identity %s not simplified: %v", tc.name, app.Methods[0].Code)
				}
			}
			_ = n
		})
	}
}

func TestAddLitZeroSimplifies(t *testing.T) {
	m := method("addlit0", 2, 1, []dex.Insn{
		{Op: dex.OpAddLit, A: 0, B: 1, Lit: 0},
		{Op: dex.OpReturn, A: 0},
	})
	app, n := optimizeMethod(t, m)
	if got := run(t, app, 0, 55).Ret; got != 55 {
		t.Errorf("got %d", got)
	}
	for _, in := range app.Methods[0].Code {
		if in.Op == dex.OpAddLit {
			t.Errorf("add-lit #0 survived: %v (n=%d)", app.Methods[0].Code, n)
		}
	}
}
