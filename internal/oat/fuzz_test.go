package oat

import "testing"

// FuzzUnmarshal checks the ELF/OAT parser never panics or over-reads on
// corrupted images, and that accepted images re-marshal.
func FuzzUnmarshal(f *testing.F) {
	methods := buildMethods(f, true)
	img, err := Link(methods, nil)
	if err != nil {
		f.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:64])
	f.Add([]byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		parsed, err := Unmarshal(b)
		if err != nil {
			return
		}
		if _, err := parsed.Marshal(); err != nil {
			t.Fatalf("accepted image fails to marshal: %v", err)
		}
	})
}
