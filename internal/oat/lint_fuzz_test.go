package oat_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/oat"
	"repro/internal/workload"
)

// This file lives outside package oat because it drives the static
// analyzer, which itself imports oat.

// lintFuzzImage builds a small linked image to seed the corpus.
func lintFuzzImage(f *testing.F) *oat.Image {
	f.Helper()
	app, _, err := workload.Generate(workload.Profile{
		Name: "fuzz", Seed: 11, Methods: 25,
		NativeFrac: 0.1, SwitchFrac: 0.1,
	})
	if err != nil {
		f.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{CTO: true, Optimize: true})
	if err != nil {
		f.Fatal(err)
	}
	img, err := oat.Link(methods, nil)
	if err != nil {
		f.Fatal(err)
	}
	return img
}

// FuzzUnmarshalLint feeds mutated serialized images through the parser
// and the full static analyzer: whatever Unmarshal accepts, Analyze must
// process without panicking — every structural defect has to surface as
// a finding, not a crash. This is the analyzer's core robustness
// contract, since its whole purpose is vetting untrusted images.
func FuzzUnmarshalLint(f *testing.F) {
	img := lintFuzzImage(f)
	data, err := img.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	// Seed a few targeted corruptions: flipped branch bits, a stomped
	// record table, a truncated text section.
	if len(data) > 512 {
		for _, off := range []int{200, len(data) / 2, len(data) - 64} {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x40
			f.Add(mut)
		}
		f.Add(data[:len(data)/2])
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		parsed, err := oat.Unmarshal(b)
		if err != nil {
			return
		}
		rep := analysis.Analyze(parsed)
		// The report must be internally consistent even for garbage.
		if len(rep.Methods) != len(parsed.Methods) {
			t.Fatalf("report covers %d of %d methods", len(rep.Methods), len(parsed.Methods))
		}
		for _, fd := range rep.Findings {
			_ = fd.String() // rendering must not panic either
		}
	})
}
