// Package oat models the OAT file: the ELF-like container Android stores
// ahead-of-time compiled code in. The model keeps exactly the structure
// Calibro interacts with — a text segment holding pattern thunks, outlined
// functions, and per-method code, plus per-method metadata (LTBO.1 records
// and stack maps) — and supports binary serialization for the on-disk size
// experiments (Table 4).
package oat

import (
	"fmt"
	"sort"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/dex"
)

// MethodRecord locates one compiled method inside the text segment.
type MethodRecord struct {
	ID       dex.MethodID
	Offset   int // byte offset within the text segment
	Size     int // byte size
	Meta     codegen.Meta
	StackMap []codegen.StackMapEntry
}

// FuncRecord locates a non-method code object (a CTO pattern thunk or an
// LTBO outlined function) inside the text segment.
type FuncRecord struct {
	Sym    int
	Offset int
	Size   int
}

// Blob is an extra code object handed to the linker: the outliner delivers
// outlined functions this way.
type Blob struct {
	Sym  int
	Code []uint32
}

// Image is a linked OAT image.
type Image struct {
	Text     []uint32
	Methods  []MethodRecord // indexed by dex.MethodID
	Thunks   []FuncRecord
	Outlined []FuncRecord
}

// TextBytes returns the text-segment size in bytes: the paper's primary
// code-size metric.
func (img *Image) TextBytes() int { return len(img.Text) * a64.WordSize }

// EntryAddr returns the absolute entry address of a method.
func (img *Image) EntryAddr(id dex.MethodID) int64 {
	return abi.TextBase + int64(img.Methods[id].Offset)
}

// MethodCode returns the code words of one method, or nil when the id or
// its record does not resolve to a word-aligned range inside the text
// segment. Unmarshal accepts record tables Validate would reject (so
// tooling can inspect corrupt images), which makes the nil here — not a
// slice panic — the contract a dumper of untrusted images relies on.
func (img *Image) MethodCode(id dex.MethodID) []uint32 {
	if int(id) < 0 || int(id) >= len(img.Methods) {
		return nil
	}
	r := img.Methods[id]
	if r.Offset < 0 || r.Size < 0 || r.Offset%a64.WordSize != 0 || r.Size%a64.WordSize != 0 ||
		r.Offset+r.Size > img.TextBytes() {
		return nil
	}
	return img.Text[r.Offset/a64.WordSize : (r.Offset+r.Size)/a64.WordSize]
}

// Link lays out the text segment — thunks first, then outlined functions,
// then method code — and binds every symbolic call site to its target.
func Link(methods []*codegen.CompiledMethod, extras []Blob) (*Image, error) {
	img := &Image{}

	// Collect the thunk symbols referenced anywhere.
	thunkSyms := map[int]bool{}
	for _, cm := range methods {
		for _, ref := range cm.Ext {
			kind, _ := codegen.UnpackSym(ref.Symbol)
			switch kind {
			case codegen.SymKindJavaEntry, codegen.SymKindNativeEP, codegen.SymKindStackCheck:
				thunkSyms[ref.Symbol] = true
			case codegen.SymKindOutlined:
				// bound against extras below
			default:
				return nil, fmt.Errorf("oat: unknown symbol kind %d", kind)
			}
		}
	}
	ordered := make([]int, 0, len(thunkSyms))
	for s := range thunkSyms {
		ordered = append(ordered, s)
	}
	sort.Ints(ordered)

	symAddr := map[int]int64{}
	emit := func(words []uint32) (off, size int) {
		off = len(img.Text) * a64.WordSize
		img.Text = append(img.Text, words...)
		return off, len(words) * a64.WordSize
	}

	for _, sym := range ordered {
		words, err := codegen.ThunkWords(sym)
		if err != nil {
			return nil, err
		}
		off, size := emit(words)
		img.Thunks = append(img.Thunks, FuncRecord{Sym: sym, Offset: off, Size: size})
		symAddr[sym] = abi.TextBase + int64(off)
	}
	for _, b := range extras {
		if _, dup := symAddr[b.Sym]; dup {
			return nil, fmt.Errorf("oat: duplicate symbol %s", codegen.SymName(b.Sym))
		}
		off, size := emit(b.Code)
		img.Outlined = append(img.Outlined, FuncRecord{Sym: b.Sym, Offset: off, Size: size})
		symAddr[b.Sym] = abi.TextBase + int64(off)
	}

	img.Methods = make([]MethodRecord, len(methods))
	for i, cm := range methods {
		if cm.M.ID != dex.MethodID(i) {
			return nil, fmt.Errorf("oat: method table out of order at %d", i)
		}
		off, size := emit(cm.Code)
		img.Methods[i] = MethodRecord{
			ID: cm.M.ID, Offset: off, Size: size,
			Meta: cm.Meta, StackMap: cm.StackMap,
		}
	}

	// Bind symbolic call sites now that layout is fixed.
	for i, cm := range methods {
		base := abi.TextBase + int64(img.Methods[i].Offset)
		for _, ref := range cm.Ext {
			target, ok := symAddr[ref.Symbol]
			if !ok {
				return nil, fmt.Errorf("oat: %s: unresolved symbol %s",
					cm.M.FullName(), codegen.SymName(ref.Symbol))
			}
			wordIdx := (img.Methods[i].Offset + ref.InstOff) / a64.WordSize
			patched, err := a64.PatchRel(img.Text[wordIdx], target-(base+int64(ref.InstOff)))
			if err != nil {
				return nil, fmt.Errorf("oat: %s: binding %s: %w",
					cm.M.FullName(), codegen.SymName(ref.Symbol), err)
			}
			img.Text[wordIdx] = patched
		}
	}
	return img, nil
}

// Validate checks the internal consistency of an image, the checks a
// loader would make before mapping it: records in bounds and word-aligned,
// method table indexed by ID, per-method metadata offsets inside the
// method, safepoints on call instructions, and thunk/outlined bodies that
// decode.
func (img *Image) Validate() error {
	size := img.TextBytes()
	checkRecord := func(what string, off, sz int) error {
		if off < 0 || sz < 0 || off%a64.WordSize != 0 || sz%a64.WordSize != 0 || off+sz > size {
			return fmt.Errorf("oat: %s record [%d,%d) outside text of %d bytes", what, off, off+sz, size)
		}
		return nil
	}
	for _, f := range append(append([]FuncRecord(nil), img.Thunks...), img.Outlined...) {
		if err := checkRecord(codegen.SymName(f.Sym), f.Offset, f.Size); err != nil {
			return err
		}
		for w := f.Offset / 4; w < (f.Offset+f.Size)/4; w++ {
			if _, ok := a64.Decode(img.Text[w]); !ok {
				return fmt.Errorf("oat: %s contains undecodable word at +%#x",
					codegen.SymName(f.Sym), w*4-f.Offset)
			}
		}
	}
	for i, m := range img.Methods {
		if m.ID != dex.MethodID(i) {
			return fmt.Errorf("oat: method table slot %d holds m%d", i, m.ID)
		}
		if err := checkRecord(fmt.Sprintf("m%d", m.ID), m.Offset, m.Size); err != nil {
			return err
		}
		inMethod := func(off int) bool { return off >= 0 && off < m.Size && off%a64.WordSize == 0 }
		for _, t := range m.Meta.Terminators {
			if !inMethod(t) {
				return fmt.Errorf("oat: m%d terminator offset %#x out of range", m.ID, t)
			}
		}
		for _, r := range m.Meta.PCRel {
			if !inMethod(r.InstOff) || r.TargetOff < 0 || r.TargetOff > m.Size {
				return fmt.Errorf("oat: m%d PC-relative record %+v out of range", m.ID, r)
			}
		}
		for _, d := range append(append([]a64.Range(nil), m.Meta.EmbeddedData...), m.Meta.Slowpaths...) {
			if d.Start < 0 || d.End < d.Start || d.End > m.Size {
				return fmt.Errorf("oat: m%d range %+v out of range", m.ID, d)
			}
		}
		for _, s := range m.StackMap {
			if !inMethod(s.NativeOff) {
				return fmt.Errorf("oat: m%d safepoint at %#x out of range", m.ID, s.NativeOff)
			}
			inst, ok := a64.Decode(img.Text[(m.Offset+s.NativeOff)/4])
			if !ok || (inst.Op != a64.OpBl && inst.Op != a64.OpBlr) {
				return fmt.Errorf("oat: m%d safepoint at %#x is not a call", m.ID, s.NativeOff)
			}
		}
	}
	return nil
}
