package oat

import (
	"reflect"
	"testing"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/workload"
)

func buildMethods(t testing.TB, cto bool) []*codegen.CompiledMethod {
	t.Helper()
	app, _, err := workload.Generate(workload.Profile{
		Name: "oat", Seed: 5, Methods: 30,
		NativeFrac: 0.1, SwitchFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{CTO: cto, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return methods
}

func TestLinkLayout(t *testing.T) {
	methods := buildMethods(t, true)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Thunks) == 0 {
		t.Fatal("CTO build produced no thunks")
	}
	// Layout: thunks first, then methods, non-overlapping and in order.
	prevEnd := 0
	for _, f := range img.Thunks {
		if f.Offset != prevEnd {
			t.Errorf("thunk %s at %d, want %d", codegen.SymName(f.Sym), f.Offset, prevEnd)
		}
		prevEnd = f.Offset + f.Size
	}
	for i, m := range img.Methods {
		if m.Offset != prevEnd {
			t.Errorf("method %d at %d, want %d", i, m.Offset, prevEnd)
		}
		prevEnd = m.Offset + m.Size
		if got := img.MethodCode(m.ID); len(got)*4 != m.Size {
			t.Errorf("MethodCode(%d) size mismatch", m.ID)
		}
	}
	if prevEnd != img.TextBytes() {
		t.Errorf("text ends at %d, records end at %d", img.TextBytes(), prevEnd)
	}
	if img.EntryAddr(0) != abi.TextBase+int64(img.Methods[0].Offset) {
		t.Error("EntryAddr miscomputed")
	}
}

// TestMethodCodeCorruptRecord checks that MethodCode refuses — with nil,
// not a panic — records that parse but would fail Validate: out-of-range
// ids and offsets/sizes outside or misaligned within the text segment.
func TestMethodCodeCorruptRecord(t *testing.T) {
	methods := buildMethods(t, false)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.MethodCode(dex.MethodID(len(img.Methods))) != nil {
		t.Error("id past the method table returned code")
	}
	if img.MethodCode(^dex.MethodID(0)) != nil {
		t.Error("NoMethod-style id returned code")
	}
	corrupt := func(name string, mutate func(*MethodRecord)) {
		rec := img.Methods[0]
		defer func() { img.Methods[0] = rec }()
		mutate(&img.Methods[0])
		if img.MethodCode(0) != nil {
			t.Errorf("%s: corrupt record returned code", name)
		}
	}
	corrupt("size overruns text", func(m *MethodRecord) { m.Size = img.TextBytes() + a64.WordSize })
	corrupt("negative offset", func(m *MethodRecord) { m.Offset = -4 })
	corrupt("negative size", func(m *MethodRecord) { m.Size = -4 })
	corrupt("misaligned offset", func(m *MethodRecord) { m.Offset += 2 })
	corrupt("misaligned size", func(m *MethodRecord) { m.Size += 2 })
	if img.MethodCode(0) == nil {
		t.Error("restored record no longer returns code")
	}
}

func TestLinkBindsThunkCalls(t *testing.T) {
	methods := buildMethods(t, true)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	thunkAt := map[int]int{}
	for _, f := range img.Thunks {
		thunkAt[f.Sym] = f.Offset
	}
	// Every external reference must resolve to its thunk's offset.
	for mi, cm := range methods {
		base := img.Methods[mi].Offset
		for _, ref := range cm.Ext {
			word := img.Text[(base+ref.InstOff)/4]
			inst, ok := a64.Decode(word)
			if !ok || inst.Op != a64.OpBl {
				t.Fatalf("call site is not a bl: %#08x", word)
			}
			target := base + ref.InstOff + int(inst.Imm)
			if target != thunkAt[ref.Symbol] {
				t.Errorf("bl resolves to %d, want thunk %s at %d",
					target, codegen.SymName(ref.Symbol), thunkAt[ref.Symbol])
			}
		}
	}
}

func TestLinkWithBlobs(t *testing.T) {
	methods := buildMethods(t, false)
	blob := Blob{
		Sym:  codegen.PackSym(codegen.SymKindOutlined, 0),
		Code: []uint32{a64.MustEncode(a64.Inst{Op: a64.OpNop}), a64.MustEncode(a64.Inst{Op: a64.OpBr, Rn: a64.LR})},
	}
	img, err := Link(methods, []Blob{blob})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Outlined) != 1 || img.Outlined[0].Size != 8 {
		t.Fatalf("outlined records: %+v", img.Outlined)
	}
}

func TestLinkErrors(t *testing.T) {
	methods := buildMethods(t, false)
	// Duplicate blob symbols.
	sym := codegen.PackSym(codegen.SymKindOutlined, 1)
	_, err := Link(methods, []Blob{{Sym: sym, Code: []uint32{0}}, {Sym: sym, Code: []uint32{0}}})
	if err == nil {
		t.Error("duplicate symbol accepted")
	}
	// Unresolved symbol: fake an ext ref to a never-provided outlined sym.
	bad := buildMethods(t, false)
	bad[3].Ext = append(bad[3].Ext, a64.ExtRef{InstOff: 0, Symbol: codegen.PackSym(codegen.SymKindOutlined, 99)})
	if _, err := Link(bad, nil); err == nil {
		t.Error("unresolved symbol accepted")
	}
	// Method table out of order.
	swapped := buildMethods(t, false)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := Link(swapped, nil); err == nil {
		t.Error("out-of-order method table accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	methods := buildMethods(t, true)
	img, err := Link(methods, []Blob{{
		Sym:  codegen.PackSym(codegen.SymKindOutlined, 0),
		Code: []uint32{a64.MustEncode(a64.Inst{Op: a64.OpBr, Rn: a64.LR})},
	}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(img, back) {
		t.Fatal("image did not round trip")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	methods := buildMethods(t, false)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte{9, 9, 9, 9}, data[4:]...),
		"truncated":  data[:len(data)/2],
		"trailing":   append(append([]byte{}, data...), 0),
		"huge count": append(append([]byte{}, data[:4]...), append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, data[8:]...)...),
	}
	for name, d := range cases {
		if _, err := Unmarshal(d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTextBytesMatchesWords(t *testing.T) {
	methods := buildMethods(t, false)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, cm := range methods {
		want += cm.CodeBytes()
	}
	if img.TextBytes() != want {
		t.Errorf("TextBytes = %d, want %d (no thunks, no blobs)", img.TextBytes(), want)
	}
	_ = dex.MethodID(0)
}

func TestMarshalProducesValidELF(t *testing.T) {
	methods := buildMethods(t, true)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// ELF identification: magic, 64-bit, little-endian, AArch64, ET_DYN.
	if string(data[1:4]) != "ELF" || data[0] != 0x7F {
		t.Fatal("missing ELF magic")
	}
	if data[4] != 2 || data[5] != 1 {
		t.Error("not ELF64 little-endian")
	}
	if data[16] != 3 { // e_type low byte: ET_DYN
		t.Errorf("e_type = %d, want ET_DYN", data[16])
	}
	if data[18] != 183 { // e_machine low byte: EM_AARCH64
		t.Errorf("e_machine = %d, want EM_AARCH64", data[18])
	}
	// The raw .text bytes must appear right after the header.
	firstWord := uint32(data[64]) | uint32(data[65])<<8 | uint32(data[66])<<16 | uint32(data[67])<<24
	if firstWord != img.Text[0] {
		t.Errorf(".text not at expected offset: %#x != %#x", firstWord, img.Text[0])
	}
}

func TestValidateImage(t *testing.T) {
	methods := buildMethods(t, true)
	img, err := Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("honest image rejected: %v", err)
	}
	// Round-tripped images validate too.
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped image rejected: %v", err)
	}

	corrupt := func(name string, mutate func(*Image)) {
		img2, err := Link(buildMethods(t, true), nil)
		if err != nil {
			t.Fatal(err)
		}
		mutate(img2)
		if err := img2.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	corrupt("method overruns text", func(i *Image) { i.Methods[len(i.Methods)-1].Size += 64 })
	corrupt("misaligned offset", func(i *Image) { i.Methods[2].Offset += 2 })
	corrupt("bad table order", func(i *Image) { i.Methods[1].ID = 5 })
	corrupt("terminator out of range", func(i *Image) {
		i.Methods[3].Meta.Terminators = append(i.Methods[3].Meta.Terminators, 1<<20)
	})
	corrupt("safepoint off a call", func(i *Image) {
		for mi := range i.Methods {
			if len(i.Methods[mi].StackMap) > 0 {
				i.Methods[mi].StackMap[0].NativeOff = 4 // mov x29,sp area
				return
			}
		}
	})
	corrupt("thunk body corrupted", func(i *Image) {
		if len(i.Thunks) > 0 {
			i.Text[i.Thunks[0].Offset/4] = 0xFFFFFFFF
		}
	})
}
