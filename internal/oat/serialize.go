package oat

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/dex"
)

// OAT files are ELF files (paper §1: "OAT files are special ELF files,
// containing a part of Android-specific content"). Marshal produces a
// minimal but valid ELF64 little-endian object with three content
// sections:
//
//	.text        the executable words, linked at abi.TextBase
//	.oat.tables  the Android-specific content: method records with LTBO
//	             metadata and stack maps, thunk and outlined-function
//	             records
//	.shstrtab    section name strings
//
// Unmarshal parses the ELF container and decodes the sections.

// Magic identifies the .oat.tables payload ("oat\x01" little-endian).
const Magic = 0x0174616F

// ELF constants used by the writer/reader.
const (
	elfHeaderSize    = 64
	sectionEntrySize = 64
	elfTypeDyn       = 3   // ET_DYN, like real OAT files
	elfMachineA64    = 183 // EM_AARCH64
	shtProgbits      = 1
	shtStrtab        = 3
	shfAlloc         = 0x2
	shfExecinstr     = 0x4
)

var sectionNames = []string{"", ".text", ".oat.tables", ".shstrtab"}

// Marshal serializes the image to the on-disk ELF format.
func (img *Image) Marshal() ([]byte, error) {
	text := make([]byte, len(img.Text)*a64.WordSize)
	for i, w := range img.Text {
		binary.LittleEndian.PutUint32(text[i*4:], w)
	}
	tables := img.encodeTables()

	// String table: \0 then each name \0.
	var shstr bytes.Buffer
	nameOff := make([]uint32, len(sectionNames))
	shstr.WriteByte(0)
	for i, n := range sectionNames[1:] {
		nameOff[i+1] = uint32(shstr.Len())
		shstr.WriteString(n)
		shstr.WriteByte(0)
	}

	// Layout: ehdr | .text | .oat.tables | .shstrtab | section headers.
	textOff := uint64(elfHeaderSize)
	tablesOff := textOff + uint64(len(text))
	strOff := tablesOff + uint64(len(tables))
	shOff := strOff + uint64(shstr.Len())
	shOff = (shOff + 7) &^ 7

	var buf bytes.Buffer
	w := func(vs ...any) {
		for _, v := range vs {
			binary.Write(&buf, binary.LittleEndian, v) //nolint:errcheck // bytes.Buffer cannot fail
		}
	}
	// ELF header.
	buf.Write([]byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	w(uint16(elfTypeDyn), uint16(elfMachineA64), uint32(1))
	w(uint64(0), uint64(0), shOff)                    // entry, phoff, shoff
	w(uint32(0), uint16(elfHeaderSize))               // flags, ehsize
	w(uint16(0), uint16(0))                           // phentsize, phnum
	w(uint16(sectionEntrySize), uint16(4), uint16(3)) // shentsize, shnum, shstrndx

	buf.Write(text)
	buf.Write(tables)
	buf.Write(shstr.Bytes())
	for buf.Len() < int(shOff) {
		buf.WriteByte(0)
	}

	type sh struct {
		name, typ      uint32
		flags, addr    uint64
		off, size      uint64
		link, info     uint32
		align, entsize uint64
	}
	sections := []sh{
		{}, // SHN_UNDEF
		{name: nameOff[1], typ: shtProgbits, flags: shfAlloc | shfExecinstr,
			addr: abi.TextBase, off: textOff, size: uint64(len(text)), align: 4},
		{name: nameOff[2], typ: shtProgbits, off: tablesOff, size: uint64(len(tables)), align: 4},
		{name: nameOff[3], typ: shtStrtab, off: strOff, size: uint64(shstr.Len()), align: 1},
	}
	for _, s := range sections {
		w(s.name, s.typ, s.flags, s.addr, s.off, s.size, s.link, s.info, s.align, s.entsize)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized ELF image.
func Unmarshal(data []byte) (*Image, error) {
	if len(data) < elfHeaderSize {
		return nil, fmt.Errorf("oat: file too small for an ELF header")
	}
	if !bytes.Equal(data[:4], []byte{0x7F, 'E', 'L', 'F'}) {
		return nil, fmt.Errorf("oat: not an ELF file")
	}
	if data[4] != 2 || data[5] != 1 {
		return nil, fmt.Errorf("oat: not ELF64 little-endian")
	}
	le := binary.LittleEndian
	if le.Uint16(data[18:]) != elfMachineA64 {
		return nil, fmt.Errorf("oat: not an AArch64 image")
	}
	shOff := le.Uint64(data[40:])
	shNum := int(le.Uint16(data[60:]))
	shStrNdx := int(le.Uint16(data[62:]))
	if shNum == 0 || shStrNdx >= shNum {
		return nil, fmt.Errorf("oat: bad section header table")
	}
	if end := shOff + uint64(shNum*sectionEntrySize); end != uint64(len(data)) {
		return nil, fmt.Errorf("oat: file size %d does not match section header end %d", len(data), end)
	}
	type section struct {
		name      uint32
		off, size uint64
	}
	secs := make([]section, shNum)
	for i := range secs {
		base := shOff + uint64(i*sectionEntrySize)
		secs[i] = section{
			name: le.Uint32(data[base:]),
			off:  le.Uint64(data[base+24:]),
			size: le.Uint64(data[base+32:]),
		}
		if secs[i].off+secs[i].size > uint64(len(data)) {
			return nil, fmt.Errorf("oat: section %d out of bounds", i)
		}
	}
	strs := data[secs[shStrNdx].off : secs[shStrNdx].off+secs[shStrNdx].size]
	sectionByName := func(name string) ([]byte, bool) {
		for _, s := range secs {
			if int(s.name) < len(strs) {
				end := bytes.IndexByte(strs[s.name:], 0)
				if end >= 0 && string(strs[s.name:int(s.name)+end]) == name {
					return data[s.off : s.off+s.size], true
				}
			}
		}
		return nil, false
	}

	text, ok := sectionByName(".text")
	if !ok {
		return nil, fmt.Errorf("oat: no .text section")
	}
	if len(text)%4 != 0 {
		return nil, fmt.Errorf("oat: .text size not word aligned")
	}
	tables, ok := sectionByName(".oat.tables")
	if !ok {
		return nil, fmt.Errorf("oat: no .oat.tables section")
	}

	img := &Image{Text: make([]uint32, len(text)/4)}
	for i := range img.Text {
		img.Text[i] = le.Uint32(text[i*4:])
	}
	if err := img.decodeTables(tables); err != nil {
		return nil, err
	}
	return img, nil
}

// encodeTables serializes the Android-specific content.
func (img *Image) encodeTables() []byte {
	var buf bytes.Buffer
	w := func(vs ...any) {
		for _, v := range vs {
			binary.Write(&buf, binary.LittleEndian, v) //nolint:errcheck // bytes.Buffer cannot fail
		}
	}
	w(uint32(Magic), uint32(len(img.Methods)), uint32(len(img.Thunks)), uint32(len(img.Outlined)))

	writeFunc := func(f FuncRecord) { w(uint64(f.Sym), uint32(f.Offset), uint32(f.Size)) }
	for _, f := range img.Thunks {
		writeFunc(f)
	}
	for _, f := range img.Outlined {
		writeFunc(f)
	}
	writeRanges := func(rs []a64.Range) {
		w(uint32(len(rs)))
		for _, r := range rs {
			w(uint32(r.Start), uint32(r.End))
		}
	}
	for _, m := range img.Methods {
		w(uint32(m.ID), uint32(m.Offset), uint32(m.Size))
		flags := uint32(0)
		if m.Meta.HasIndirectJump {
			flags |= 1
		}
		if m.Meta.IsNative {
			flags |= 2
		}
		w(flags)
		w(uint32(len(m.Meta.PCRel)))
		for _, r := range m.Meta.PCRel {
			w(uint32(r.InstOff), uint32(r.TargetOff))
		}
		w(uint32(len(m.Meta.Terminators)))
		for _, t := range m.Meta.Terminators {
			w(uint32(t))
		}
		writeRanges(m.Meta.EmbeddedData)
		writeRanges(m.Meta.Slowpaths)
		w(uint32(len(m.StackMap)))
		for _, s := range m.StackMap {
			w(uint32(s.NativeOff), int32(s.DexPC), s.Live)
		}
	}
	return buf.Bytes()
}

// decodeTables parses the Android-specific content into img.
func (img *Image) decodeTables(data []byte) error {
	r := &reader{data: data}
	if r.u32() != Magic {
		return fmt.Errorf("oat: bad tables magic")
	}
	nm, nt, no := r.u32(), r.u32(), r.u32()
	if r.err != nil {
		return r.err
	}
	const limit = 1 << 28
	if nm > limit || nt > limit || no > limit {
		return fmt.Errorf("oat: implausible table sizes")
	}
	readFunc := func() FuncRecord {
		return FuncRecord{Sym: int(r.u64()), Offset: int(r.u32()), Size: int(r.u32())}
	}
	for i := uint32(0); i < nt && r.err == nil; i++ {
		img.Thunks = append(img.Thunks, readFunc())
	}
	for i := uint32(0); i < no && r.err == nil; i++ {
		img.Outlined = append(img.Outlined, readFunc())
	}
	readRanges := func() []a64.Range {
		n := r.u32()
		var rs []a64.Range
		for i := uint32(0); i < n && r.err == nil; i++ {
			rs = append(rs, a64.Range{Start: int(r.u32()), End: int(r.u32())})
		}
		return rs
	}
	for i := uint32(0); i < nm && r.err == nil; i++ {
		var m MethodRecord
		m.ID = dex.MethodID(r.u32())
		m.Offset, m.Size = int(r.u32()), int(r.u32())
		flags := r.u32()
		m.Meta.HasIndirectJump = flags&1 != 0
		m.Meta.IsNative = flags&2 != 0
		npc := r.u32()
		for j := uint32(0); j < npc && r.err == nil; j++ {
			m.Meta.PCRel = append(m.Meta.PCRel, a64.Reloc{InstOff: int(r.u32()), TargetOff: int(r.u32())})
		}
		ntr := r.u32()
		for j := uint32(0); j < ntr && r.err == nil; j++ {
			m.Meta.Terminators = append(m.Meta.Terminators, int(r.u32()))
		}
		m.Meta.EmbeddedData = readRanges()
		m.Meta.Slowpaths = readRanges()
		nsm := r.u32()
		for j := uint32(0); j < nsm && r.err == nil; j++ {
			m.StackMap = append(m.StackMap, codegen.StackMapEntry{
				NativeOff: int(r.u32()), DexPC: int32(r.u32()), Live: r.u32(),
			})
		}
		img.Methods = append(img.Methods, m)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("oat: %d trailing bytes in tables", len(data)-r.off)
	}
	return nil
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.err = fmt.Errorf("oat: truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.err = fmt.Errorf("oat: truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}
