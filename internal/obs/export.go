package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-event JSON object. The format is the
// trace-event "JSON Object Format" Perfetto and chrome://tracing load:
// complete spans are ph "X" with ts+dur, instants are ph "i", and ph "M"
// metadata events name the lanes. ts/dur are microseconds (fractional
// part carries the nanoseconds).
type traceEvent struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat,omitempty"`
	Ph   string   `json:"ph"`
	PID  int      `json:"pid"`
	TID  int      `json:"tid"`
	TS   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	S    string   `json:"s,omitempty"` // instant scope: "t" = thread
	Args any      `json:"args,omitempty"`
}

// traceFile is the top-level trace container.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func us(d int64) float64 { return float64(d) / 1e3 } // ns -> µs

// WriteTraceRecords renders an arbitrary span log as Chrome trace-event
// JSON: one ph "M" metadata event per named lane, then the spans sorted
// by start timestamp. It is the shared backend of Tracer.WriteTrace and
// of callers that synthesize their own small span sets (the serving
// layer's per-job traces). The spans slice is sorted in place.
func WriteTraceRecords(w io.Writer, spans []SpanRecord, laneNames map[int]string) error {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	lanes := make([]int, 0, len(laneNames))
	for lane := range laneNames {
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)

	events := make([]traceEvent, 0, len(spans)+len(lanes))
	for _, lane := range lanes {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane,
			Args: map[string]string{"name": laneNames[lane]},
		})
	}
	for _, s := range spans {
		ev := traceEvent{Name: s.Name, Cat: s.Cat, PID: 1, TID: s.Lane, TS: us(s.Start.Nanoseconds())}
		if s.Inst {
			ev.Ph = "i"
			ev.S = "t"
		} else {
			ev.Ph = "X"
			d := us(s.Dur.Nanoseconds())
			ev.Dur = &d
		}
		if len(s.Args) > 0 {
			ev.Args = s.Args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTrace emits the recording as Chrome trace-event JSON. Lane 0 is
// named "build", lanes 1..W "worker k", and negative (service) lanes
// "serve"; span events are sorted by start timestamp (metadata first),
// every span carries pid/tid/ts/dur. A nil tracer writes a valid empty
// trace.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans, _, maxLane := t.snapshotState()
	laneNames := map[int]string{}
	if t != nil {
		for lane := 0; lane <= maxLane; lane++ {
			name := "build"
			if lane > 0 {
				name = fmt.Sprintf("worker %d", lane)
			}
			laneNames[lane] = name
		}
		for _, s := range spans {
			if s.Lane < 0 {
				laneNames[s.Lane] = "serve"
			}
		}
	}
	return WriteTraceRecords(w, spans, laneNames)
}

// TaskStats is a duration distribution over one task category (or its
// queue waits): count, total, and nearest-rank p50/p95/p99/max, all in
// microseconds. Percentiles are histogram-quantized (bucket upper
// bounds); count, total, and max are exact.
type TaskStats struct {
	Count   int   `json:"count"`
	TotalUS int64 `json:"total_us"`
	P50US   int64 `json:"p50_us"`
	P95US   int64 `json:"p95_us"`
	P99US   int64 `json:"p99_us"`
	MaxUS   int64 `json:"max_us"`
}

// LaneOccupancy is one worker lane's utilization: how many tasks it ran,
// its total busy time, and busy time as a fraction of the trace wall.
type LaneOccupancy struct {
	Lane   int     `json:"lane"`
	Tasks  int     `json:"tasks"`
	BusyUS int64   `json:"busy_us"`
	Busy   float64 `json:"busy"`
}

// Snapshot is the flat metrics reduction of a recording: what a build
// report or a regression tracker consumes without parsing the full trace.
type Snapshot struct {
	// WallUS is the trace wall clock: the latest span end.
	WallUS int64 `json:"wall_us"`
	// Stages maps lane-0 "stage" span names to their total duration.
	Stages map[string]int64 `json:"stage_us"`
	// Tasks aggregates worker-lane spans per category (e.g. "compile" is
	// the per-method compile distribution).
	Tasks map[string]TaskStats `json:"tasks"`
	// QueueWait aggregates the queue_us arg of worker-lane spans per
	// category: how long tasks sat waiting for a pool slot.
	QueueWait map[string]TaskStats `json:"queue_wait"`
	// Workers is per-lane occupancy, ascending by lane.
	Workers []LaneOccupancy `json:"workers"`
	// Counters are the tracer-level counters (outline.Stats counts etc.).
	Counters map[string]int64 `json:"counters"`
}

// Snapshot reduces the recording to flat metrics. Spans on negative
// (service) lanes are serving-layer annotations, not pool work, and are
// excluded. A nil tracer yields an empty (but usable) snapshot.
func (t *Tracer) Snapshot() *Snapshot {
	spans, counters, _ := t.snapshotState()
	snap := &Snapshot{
		Stages:    map[string]int64{},
		Tasks:     map[string]TaskStats{},
		QueueWait: map[string]TaskStats{},
		Counters:  counters,
	}
	if snap.Counters == nil {
		snap.Counters = map[string]int64{}
	}

	taskDist := map[string]*Histogram{}  // cat -> run µs
	queueDist := map[string]*Histogram{} // cat -> queue µs
	laneBusy := map[int]*LaneOccupancy{}
	for _, s := range spans {
		if s.Lane < 0 {
			continue
		}
		if end := (s.Start + s.Dur).Microseconds(); end > snap.WallUS {
			snap.WallUS = end
		}
		if s.Inst {
			continue
		}
		if s.Lane == 0 {
			if s.Cat == "stage" {
				snap.Stages[s.Name] += s.Dur.Microseconds()
			}
			continue
		}
		hd := taskDist[s.Cat]
		if hd == nil {
			hd = &Histogram{}
			taskDist[s.Cat] = hd
		}
		hd.Observe(s.Dur.Microseconds())
		if q, ok := s.Args["queue_us"]; ok {
			qd := queueDist[s.Cat]
			if qd == nil {
				qd = &Histogram{}
				queueDist[s.Cat] = qd
			}
			qd.Observe(q)
		}
		lo := laneBusy[s.Lane]
		if lo == nil {
			lo = &LaneOccupancy{Lane: s.Lane}
			laneBusy[s.Lane] = lo
		}
		lo.Tasks++
		lo.BusyUS += s.Dur.Microseconds()
	}
	for cat, h := range taskDist {
		snap.Tasks[cat] = h.Stats()
	}
	for cat, h := range queueDist {
		snap.QueueWait[cat] = h.Stats()
	}
	for _, lo := range laneBusy {
		if snap.WallUS > 0 {
			lo.Busy = float64(lo.BusyUS) / float64(snap.WallUS)
		}
		snap.Workers = append(snap.Workers, *lo)
	}
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].Lane < snap.Workers[j].Lane })
	return snap
}

// WriteMetrics writes the Snapshot as indented JSON.
func (t *Tracer) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// Dist reduces a sample of microsecond durations to TaskStats through the
// same bounded histogram every other percentile in the system goes
// through, so ad-hoc collectors (benchmark harnesses, replay clients)
// report comparably quantized numbers. The input is not modified.
func Dist(us []int64) TaskStats {
	var h Histogram
	for _, v := range us {
		h.Observe(v)
	}
	return h.Stats()
}
