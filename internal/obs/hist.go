// Histogram is the bounded replacement for raw-sample duration slices.
// The serving daemon runs for days and observes a latency per job; a
// slice of every sample (what the queue-wait metric used to keep) grows
// the resident set linearly with traffic. A log-bucketed histogram keeps
// the same percentile answers inside a fixed array: counts are exact,
// percentiles are quantized to the bucket bounds (relative error bounded
// by the sub-bucket ratio, <= 25%), and the maximum is tracked exactly so
// the tail never reads as smaller than it was.
//
// The bucket schedule is microsecond-denominated: exact powers of two up
// to 8µs, then four linear sub-buckets per octave (1.25x, 1.5x, 1.75x,
// 2x) up to 2^32µs (~71 minutes), then one overflow bucket. The schedule
// is fixed at compile time, identical in every process, so bucket-level
// output (the Prometheus exposition) is comparable across daemons without
// negotiation.
//
// Observe is safe for concurrent use and allocation-free: one binary
// search over the bounds table plus four atomic updates. Readers
// (Quantile, Stats, Each) see a racy-but-consistent-enough view — counts
// observed mid-scan can be one sample stale, which is the usual metrics
// contract.

package obs

import (
	"sort"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: len(histBounds) finite buckets
// plus one overflow bucket.
const histBuckets = 121

// histBounds holds the inclusive upper bound of each finite bucket, in
// microseconds. Built once at init; see the package comment for the
// schedule.
var histBounds = buildHistBounds()

func buildHistBounds() []int64 {
	var b []int64
	for v := int64(1); v <= 8; v *= 2 {
		b = append(b, v) // 1, 2, 4, 8
	}
	for base := int64(8); base < 1<<32; base *= 2 {
		step := base / 4
		for i := int64(1); i <= 4; i++ {
			b = append(b, base+step*i) // 1.25x .. 2x per octave
		}
	}
	if len(b) != histBuckets-1 {
		panic("obs: histogram bucket schedule does not match histBuckets")
	}
	return b
}

// Histogram is a bounded log-bucketed distribution of microsecond
// durations. The zero value is ready to use. Safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketIndex maps a sample to its bucket: the first bound >= v, or the
// overflow bucket when v exceeds every bound.
func bucketIndex(v int64) int {
	return sort.Search(len(histBounds), func(i int) bool { return histBounds[i] >= v })
}

// Observe records one duration in microseconds. Negative samples clamp
// to zero (they can only come from clock anomalies; losing them to the
// first bucket beats corrupting the sum).
func (h *Histogram) Observe(us int64) {
	if us < 0 {
		us = 0
	}
	h.counts[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumUS returns the exact sum of all observed samples, µs.
func (h *Histogram) SumUS() int64 { return h.sum.Load() }

// MaxUS returns the exact largest observed sample, µs (0 when empty).
func (h *Histogram) MaxUS() int64 { return h.max.Load() }

// Quantile returns the nearest-rank q-quantile (q in [0,1]) as the upper
// bound of the bucket holding that rank, clamped to the exact observed
// maximum so quantization never reports a value beyond the real tail.
// An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Nearest rank: ceil(q*n), at least 1.
	target := int64(q*float64(n) + 0.999999)
	if target < 1 {
		target = 1
	}
	max := h.max.Load()
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += int64(h.counts[i].Load())
		if cum >= target {
			if i >= len(histBounds) || histBounds[i] > max {
				return max
			}
			return histBounds[i]
		}
	}
	// Concurrent observers can leave the per-bucket scan one sample short
	// of the count read above; the tail answer is the max either way.
	return max
}

// Stats reduces the histogram to the flat TaskStats record the metrics
// snapshot and the serving layer report.
func (h *Histogram) Stats() TaskStats {
	return TaskStats{
		Count:   int(h.count.Load()),
		TotalUS: h.sum.Load(),
		P50US:   h.Quantile(0.50),
		P95US:   h.Quantile(0.95),
		P99US:   h.Quantile(0.99),
		MaxUS:   h.max.Load(),
	}
}

// Each visits the finite buckets in ascending bound order with their
// cumulative counts, stopping after the bucket that contains the maximum
// observed sample (every later bucket would repeat the same cumulative
// count). Samples in the overflow bucket appear only in the +Inf bucket,
// which the caller derives from Count() — the shape Prometheus histogram
// exposition wants.
func (h *Histogram) Each(f func(leUS int64, cumulative uint64)) {
	max := h.max.Load()
	var cum uint64
	for i, bound := range histBounds {
		cum += h.counts[i].Load()
		f(bound, cum)
		if bound >= max {
			return
		}
	}
}
