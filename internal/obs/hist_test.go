package obs

import (
	"sync"
	"testing"
)

// TestHistBoundsMonotone pins the bucket schedule's shape: strictly
// increasing bounds, starting at 1µs, ending past 2^32µs territory.
func TestHistBoundsMonotone(t *testing.T) {
	if histBounds[0] != 1 {
		t.Errorf("first bound = %d, want 1", histBounds[0])
	}
	for i := 1; i < len(histBounds); i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d then %d",
				i, histBounds[i-1], histBounds[i])
		}
	}
	if last := histBounds[len(histBounds)-1]; last != 1<<32 {
		t.Errorf("last finite bound = %d, want 2^32", last)
	}
}

// TestHistogramEmpty: the zero value answers zeros everywhere and emits
// no buckets beyond the first.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.SumUS() != 0 || h.MaxUS() != 0 {
		t.Errorf("empty histogram: count=%d sum=%d max=%d", h.Count(), h.SumUS(), h.MaxUS())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty = %d, want 0", q, got)
		}
	}
	st := h.Stats()
	if st.Count != 0 || st.TotalUS != 0 || st.P50US != 0 || st.P99US != 0 || st.MaxUS != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

// TestHistogramSingleSample: every quantile of a one-sample distribution
// is that sample (max-clamped, so exact even off a bucket bound).
func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(37)
	if h.Count() != 1 || h.SumUS() != 37 || h.MaxUS() != 37 {
		t.Errorf("count=%d sum=%d max=%d", h.Count(), h.SumUS(), h.MaxUS())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 37 {
			t.Errorf("Quantile(%v) = %d, want 37 (max clamp)", q, got)
		}
	}
}

// TestHistogramOverflow: samples beyond the last finite bound land in the
// overflow bucket and quantiles report the exact max, not a bound.
func TestHistogramOverflow(t *testing.T) {
	var h Histogram
	huge := int64(1) << 40 // ~13 days in µs, far past the last bound
	h.Observe(huge)
	h.Observe(10)
	if h.MaxUS() != huge {
		t.Errorf("max = %d, want %d", h.MaxUS(), huge)
	}
	if got := h.Quantile(1); got != huge {
		t.Errorf("p100 = %d, want %d", got, huge)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	// The +Inf-only sample must not surface in finite buckets.
	var lastCum uint64
	h.Each(func(le int64, cum uint64) { lastCum = cum })
	if lastCum != 1 {
		t.Errorf("finite buckets hold %d samples, want 1 (overflow excluded)", lastCum)
	}
}

// TestHistogramPercentileMonotonicity: for arbitrary data, p50 <= p95 <=
// p99 <= max, and quantiles never exceed the exact max.
func TestHistogramPercentileMonotonicity(t *testing.T) {
	var h Histogram
	// A deterministic skewed sample: mostly small, long tail.
	v := int64(1)
	for i := 0; i < 1000; i++ {
		h.Observe(v % 90000)
		v = v*1664525 + 1013904223
		if v < 0 {
			v = -v
		}
	}
	st := h.Stats()
	if st.P50US > st.P95US || st.P95US > st.P99US || st.P99US > st.MaxUS {
		t.Errorf("percentiles not monotone: %+v", st)
	}
	if st.Count != 1000 {
		t.Errorf("count = %d, want 1000", st.Count)
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got := h.Quantile(q); got > st.MaxUS {
			t.Errorf("Quantile(%v) = %d exceeds max %d", q, got, st.MaxUS)
		}
	}
}

// TestHistogramQuantileAccuracy: on bucket-bound samples the histogram's
// nearest-rank answers are exact.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i)) // 1..100µs; small values hit dense buckets
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	// p50 over 1..100 has nearest rank 50; bucket (48,56] reports 56.
	if got := h.Quantile(0.5); got < 50 || got > 56 {
		t.Errorf("p50 = %d, want within (50,56]", got)
	}
}

// TestHistogramConcurrentObserve: concurrent observers lose nothing
// (run under -race in make race).
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.MaxUS() != 7*1000+per-1 {
		t.Errorf("max = %d, want %d", h.MaxUS(), 7*1000+per-1)
	}
}

// TestDistMatchesHistogram: the slice convenience and a hand-fed
// histogram agree.
func TestDistMatchesHistogram(t *testing.T) {
	samples := []int64{5, 10, 20, 40, 80, 160}
	var h Histogram
	for _, s := range samples {
		h.Observe(s)
	}
	if got, want := Dist(samples), h.Stats(); got != want {
		t.Errorf("Dist = %+v, histogram = %+v", got, want)
	}
}
