// Package obs is the build telemetry substrate: a zero-dependency (stdlib
// only) tracing and metrics recorder threaded through every pipeline stage.
// The paper's whole evaluation is observability — Table 6 build-time
// growth, Figure 4 pattern counts, Figure 6 simpleperf profiles — and the
// parallel build work needs the same visibility *inside* the build: which
// stage dominates, how per-method compile cost is distributed, how long
// tasks queue behind a saturated worker pool.
//
// The model is deliberately small:
//
//   - A Tracer records spans — named intervals with monotonic timestamps —
//     on integer lanes. Lane 0 is the serial build orchestration (the
//     "build" span and its per-stage children, which nest by containment);
//     lanes 1..W are worker-pool lanes, one per pool goroutine, so a
//     Chrome-trace viewer shows pool occupancy directly.
//   - Counters live on the tracer (monotonic sums, e.g. the outline.Stats
//     counts) and on spans (per-span args, e.g. a task's queue wait).
//     Putting per-task counters on the span that did the work keeps the
//     attribution exact even when thousands of tasks interleave.
//   - A nil *Tracer is the no-op tracer: every method is nil-safe, so the
//     hot path pays one predictable nil check and nothing else, and no
//     call site needs an "is tracing on" branch of its own.
//
// Determinism contract: a Tracer observes, it never steers. Recording
// happens strictly after the traced work completes (or around it, for
// explicit spans), touches only the tracer's own state under its mutex,
// and feeds nothing back into scheduling or output. Building with a live
// tracer vs a nil one therefore yields byte-identical images at any
// worker count — the property TestBuildDeterministicWithTracing pins.
//
// Two exporters turn a recording into artifacts: WriteTrace emits Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing), and
// Snapshot/WriteMetrics reduce the spans to a flat metrics snapshot
// (per-stage totals, per-task-category p50/p95/max, queue waits, worker
// occupancy, counters).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LaneServe is the conventional lane for serving-layer annotation spans
// (job lifecycle intervals recorded by calibrod). Negative lanes are
// "service lanes": WriteTrace names them "serve", and Snapshot excludes
// them from task distributions and worker occupancy — they describe what
// the daemon did *around* builds, not pool work.
const LaneServe = -1

// SpanRecord is one completed span (or instant event) as recorded.
type SpanRecord struct {
	Name  string
	Cat   string // category: "stage", "compile", "outline.group", ...
	Lane  int    // 0 = build orchestration, 1..W = pool workers
	Start time.Duration
	Dur   time.Duration
	Args  map[string]int64
	Inst  bool // instant event: a point in time carrying Args, Dur unused
}

// nStripes splits the tracer's span and counter state. Spans stripe by
// lane (worker-pool lanes are the contended writers; each worker lands on
// a stable stripe), counters by name hash. 16 stripes cover the pool
// widths the build runs at.
const nStripes = 16

// spanStripe is one lane-sharded slice of the span log.
type spanStripe struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// counterStripe is one name-sharded slice of the counter map.
type counterStripe struct {
	mu sync.Mutex
	m  map[string]int64
}

// Tracer records spans and counters. The zero value is not usable; call
// New. A nil *Tracer is the no-op tracer: every method (and the pool
// observer it vends) is safe to call and does nothing.
//
// Recording is striped: every pool worker appends to its own lane's span
// stripe and counter updates hash to independent stripes, so a tracer on
// a saturated pool never funnels all workers through one mutex. Snapshots
// merge the stripes and order spans by start time, which the exporters
// sort by anyway — the merged view is identical to what a single-lock log
// would have held, modulo the order of concurrent records, which was
// scheduling-dependent already.
type Tracer struct {
	t0 time.Time

	stripes  [nStripes]spanStripe
	counters [nStripes]counterStripe
	maxLane  atomic.Int64
}

// New returns a live tracer; its clock starts now.
func New() *Tracer {
	t := &Tracer{t0: time.Now()}
	for i := range t.counters {
		t.counters[i].m = map[string]int64{}
	}
	return t
}

// Noop returns the no-op tracer (nil). It exists to make call sites that
// deliberately disable tracing read as a decision, not an omission.
func Noop() *Tracer { return nil }

// Span is an in-flight interval started by Start/StartLane. End records
// it. A nil *Span (from a nil tracer) ignores every call.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	lane  int
	start time.Duration
	args  map[string]int64
}

// Start opens a span on lane 0, the serial orchestration lane. Spans on
// one lane must nest by containment (Chrome-trace semantics); the build →
// stage hierarchy satisfies this naturally because stages run one at a
// time inside the build span.
func (t *Tracer) Start(cat, name string) *Span { return t.StartLane(cat, name, 0) }

// StartLane opens a span on an explicit lane.
func (t *Tracer) StartLane(cat, name string, lane int) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, lane: lane, start: time.Since(t.t0)}
}

// Arg attaches a counter to the span (visible as Chrome-trace args and
// aggregated by Snapshot where meaningful). Returns s for chaining.
func (s *Span) Arg(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = map[string]int64{}
	}
	s.args[key] = v
	return s
}

// End records the span. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.t.t0)
	s.t.record(SpanRecord{Name: s.name, Cat: s.cat, Lane: s.lane,
		Start: s.start, Dur: end - s.start, Args: s.args})
}

// Count adds delta to a named tracer-level counter.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	cs := &t.counters[hashName(name)%nStripes]
	cs.mu.Lock()
	cs.m[name] += delta
	cs.mu.Unlock()
}

// hashName is FNV-1a over the counter name: cheap, allocation-free, and
// good enough to spread a handful of hot counter names across stripes.
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// SpanAt records a completed span post-hoc from wall-clock endpoints —
// the vehicle for callers (the serving layer) that learn a span's bounds
// from their own timestamps rather than bracketing the work with
// Start/End. Endpoints before the tracer's epoch clamp to it; an end
// before its start records a zero-duration span.
func (t *Tracer) SpanAt(cat, name string, lane int, start, end time.Time, args map[string]int64) {
	if t == nil {
		return
	}
	s := start.Sub(t.t0)
	if s < 0 {
		s = 0
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	t.record(SpanRecord{Name: name, Cat: cat, Lane: lane, Start: s, Dur: d, Args: args})
}

// Instant records a point event carrying args — the vehicle for per-group
// counter bundles (e.g. one outline tree's candidate/occurrence counts)
// that have no natural interval of their own.
func (t *Tracer) Instant(cat, name string, args map[string]int64) {
	if t == nil {
		return
	}
	t.record(SpanRecord{Name: name, Cat: cat, Start: time.Since(t.t0), Args: args, Inst: true})
}

// Task records a completed pool task post-hoc: the span ends now, started
// run ago, on the worker's lane, with its queue wait attached as an arg.
// This is the primitive the pool observer uses — recording after the fact
// keeps the observed work itself untouched.
func (t *Tracer) Task(cat, name string, worker int, queueWait, run time.Duration) {
	if t == nil {
		return
	}
	end := time.Since(t.t0)
	start := end - run
	if start < 0 {
		start = 0
	}
	t.record(SpanRecord{Name: name, Cat: cat, Lane: worker + 1, Start: start, Dur: run,
		Args: map[string]int64{"queue_us": queueWait.Microseconds()}})
}

// PoolObserver vends the callback internal/par's MapObs/EachObs accept:
// one call per completed task with the worker index, the task's queue
// wait, and its run time. name labels task i (nil uses the category).
// Returns nil — observe nothing — on the no-op tracer, so callers can
// pass the result straight through without a branch. The callback is safe
// for concurrent use from pool goroutines.
func (t *Tracer) PoolObserver(cat string, name func(i int) string) func(worker, index int, queueWait, run time.Duration) {
	if t == nil {
		return nil
	}
	return func(worker, index int, queueWait, run time.Duration) {
		n := cat
		if name != nil {
			n = name(index)
		}
		t.Task(cat, n, worker, queueWait, run)
	}
}

func (t *Tracer) record(r SpanRecord) {
	st := &t.stripes[uint(r.Lane)%nStripes]
	st.mu.Lock()
	st.spans = append(st.spans, r)
	st.mu.Unlock()
	for {
		cur := t.maxLane.Load()
		if int64(r.Lane) <= cur || t.maxLane.CompareAndSwap(cur, int64(r.Lane)) {
			return
		}
	}
}

// snapshotState merges the stripes into one consistent copy for export
// without holding any lock during encoding. Spans come back ordered by
// start time (stable across equal starts), so exporters see one log, not
// sixteen.
func (t *Tracer) snapshotState() (spans []SpanRecord, counters map[string]int64, maxLane int) {
	if t == nil {
		return nil, nil, 0
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		spans = append(spans, st.spans...)
		st.mu.Unlock()
	}
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	counters = map[string]int64{}
	for i := range t.counters {
		cs := &t.counters[i]
		cs.mu.Lock()
		for k, v := range cs.m {
			counters[k] = v
		}
		cs.mu.Unlock()
	}
	return spans, counters, int(t.maxLane.Load())
}
