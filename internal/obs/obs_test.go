package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsNoop pins the no-op contract: every method of a nil
// tracer (and of the nil span / nil observer it vends) is callable and
// records nothing, and the exporters still produce valid output.
func TestNilTracerIsNoop(t *testing.T) {
	tr := Noop()
	sp := tr.Start("stage", "compile")
	sp.Arg("k", 1)
	sp.End()
	tr.StartLane("x", "y", 3).End()
	tr.Count("c", 5)
	tr.Instant("cat", "ev", map[string]int64{"a": 1})
	tr.Task("cat", "t", 0, time.Millisecond, time.Millisecond)
	if obs := tr.PoolObserver("cat", nil); obs != nil {
		t.Error("PoolObserver on nil tracer should be nil")
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil tracer: %v", err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 0 {
		t.Errorf("nil trace has %d events", len(tf.TraceEvents))
	}
	snap := tr.Snapshot()
	if snap.WallUS != 0 || len(snap.Stages) != 0 || len(snap.Tasks) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
}

// TestSpanAndCounterRecording drives the live tracer end to end.
func TestSpanAndCounterRecording(t *testing.T) {
	tr := New()
	sp := tr.Start("stage", "compile").Arg("methods", 42)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Count("widgets", 3)
	tr.Count("widgets", 4)
	tr.Task("compile", "m1", 2, 5*time.Microsecond, time.Millisecond)
	tr.Instant("outline", "group 0", map[string]int64{"functions": 7})

	spans, counters, maxLane := tr.snapshotState()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if spans[0].Name != "compile" || spans[0].Cat != "stage" || spans[0].Lane != 0 {
		t.Errorf("stage span: %+v", spans[0])
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("stage span dur %v < 1ms", spans[0].Dur)
	}
	if spans[0].Args["methods"] != 42 {
		t.Errorf("stage span args: %v", spans[0].Args)
	}
	if spans[1].Lane != 3 { // worker 2 -> lane 3
		t.Errorf("task lane = %d, want 3", spans[1].Lane)
	}
	if spans[1].Args["queue_us"] != 5 {
		t.Errorf("task queue_us = %d, want 5", spans[1].Args["queue_us"])
	}
	if !spans[2].Inst {
		t.Error("instant event not marked")
	}
	if counters["widgets"] != 7 {
		t.Errorf("counter = %d, want 7", counters["widgets"])
	}
	if maxLane != 3 {
		t.Errorf("maxLane = %d, want 3", maxLane)
	}
}

// fixedTracer builds a tracer with hand-authored records so exporter
// output is fully deterministic.
func fixedTracer() *Tracer {
	tr := New()
	tr.stripes[0].spans = []SpanRecord{
		// Deliberately out of start order: the exporter must sort.
		{Name: "m0", Cat: "compile", Lane: 1, Start: 10 * time.Microsecond, Dur: 30 * time.Microsecond,
			Args: map[string]int64{"queue_us": 2}},
		{Name: "build", Cat: "build", Lane: 0, Start: 0, Dur: 100 * time.Microsecond},
		{Name: "compile", Cat: "stage", Lane: 0, Start: 5 * time.Microsecond, Dur: 55 * time.Microsecond},
		{Name: "m1", Cat: "compile", Lane: 2, Start: 12 * time.Microsecond, Dur: 40 * time.Microsecond,
			Args: map[string]int64{"queue_us": 4}},
		{Name: "group 0", Cat: "outline", Start: 70 * time.Microsecond, Inst: true,
			Args: map[string]int64{"functions": 3}},
		{Name: "link", Cat: "stage", Lane: 0, Start: 80 * time.Microsecond, Dur: 15 * time.Microsecond},
	}
	tr.maxLane.Store(2)
	tr.Count("outline.functions", 3)
	return tr
}

// TestWriteTraceGolden validates the exact Chrome trace-event shape: the
// metadata lane names, X events with pid/tid/ts/dur, the instant event,
// and sorted timestamps.
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTracer().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	// 3 metadata + 6 spans.
	if len(tf.TraceEvents) != 9 {
		t.Fatalf("%d events, want 9", len(tf.TraceEvents))
	}
	meta, spans := 0, 0
	lastTS := -1.0
	for _, ev := range tf.TraceEvents {
		if ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %q missing pid/tid", ev.Name)
		}
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event %q", ev.Name)
			}
		case "X":
			spans++
			if ev.TS == nil || ev.Dur == nil {
				t.Fatalf("X event %q missing ts/dur", ev.Name)
			}
			if *ev.TS < lastTS {
				t.Errorf("event %q ts %v < previous %v (not sorted)", ev.Name, *ev.TS, lastTS)
			}
			lastTS = *ev.TS
		case "i":
			if ev.TS == nil {
				t.Fatalf("instant %q missing ts", ev.Name)
			}
			if *ev.TS < lastTS {
				t.Errorf("instant %q ts out of order", ev.Name)
			}
			lastTS = *ev.TS
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 || spans != 5 {
		t.Errorf("meta=%d spans=%d, want 3 and 5", meta, spans)
	}
	// The build span sorts first (ts 0) and the first X event after the
	// metadata block is it.
	first := tf.TraceEvents[3]
	if first.Name != "build" || *first.TS != 0 || *first.Dur != 100 {
		t.Errorf("first span = %q ts=%v dur=%v, want build/0/100", first.Name, *first.TS, *first.Dur)
	}
}

// TestSnapshot validates the metrics reduction: stage totals, per-category
// distributions, queue waits, and per-lane occupancy.
func TestSnapshot(t *testing.T) {
	snap := fixedTracer().Snapshot()
	if snap.WallUS != 100 {
		t.Errorf("wall = %d, want 100", snap.WallUS)
	}
	if snap.Stages["compile"] != 55 || snap.Stages["link"] != 15 {
		t.Errorf("stages: %v", snap.Stages)
	}
	ts, ok := snap.Tasks["compile"]
	if !ok {
		t.Fatalf("no compile task stats: %v", snap.Tasks)
	}
	// Percentiles are histogram-quantized: 30µs lands in the (28,32]
	// bucket and reports its upper bound; 40µs is itself a bound; max is
	// exact.
	if ts.Count != 2 || ts.TotalUS != 70 || ts.P50US != 32 || ts.P95US != 40 || ts.MaxUS != 40 {
		t.Errorf("compile stats: %+v", ts)
	}
	qs := snap.QueueWait["compile"]
	if qs.Count != 2 || qs.TotalUS != 6 || qs.MaxUS != 4 {
		t.Errorf("queue stats: %+v", qs)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("workers: %+v", snap.Workers)
	}
	if snap.Workers[0].Lane != 1 || snap.Workers[0].BusyUS != 30 || snap.Workers[0].Busy != 0.3 {
		t.Errorf("lane 1 occupancy: %+v", snap.Workers[0])
	}
	if snap.Workers[1].Lane != 2 || snap.Workers[1].Tasks != 1 || snap.Workers[1].Busy != 0.4 {
		t.Errorf("lane 2 occupancy: %+v", snap.Workers[1])
	}
	if snap.Counters["outline.functions"] != 3 {
		t.Errorf("counters: %v", snap.Counters)
	}
}

// TestWriteMetricsRoundTrip checks the metrics JSON parses back into the
// same snapshot.
func TestWriteMetricsRoundTrip(t *testing.T) {
	tr := fixedTracer()
	var buf bytes.Buffer
	if err := tr.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if got.WallUS != 100 || got.Stages["compile"] != 55 || got.Tasks["compile"].Count != 2 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

// TestSpanAtAndServiceLanes drives the post-hoc span entry point: spans
// land with clamped bounds, service-lane spans show in the trace under a
// "serve" lane but never in the snapshot's worker aggregation.
func TestSpanAtAndServiceLanes(t *testing.T) {
	tr := New()
	start := time.Now()
	tr.SpanAt("job", "queued", LaneServe, start, start.Add(2*time.Millisecond),
		map[string]int64{"job": 7})
	tr.Task("compile", "m0", 0, time.Microsecond, time.Millisecond)

	spans, _, _ := tr.snapshotState()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	var svc *SpanRecord
	for i := range spans {
		if spans[i].Lane == LaneServe {
			svc = &spans[i]
		}
	}
	if svc == nil {
		t.Fatal("no service-lane span recorded")
	}
	if svc.Name != "queued" || svc.Args["job"] != 7 || svc.Dur < 2*time.Millisecond {
		t.Errorf("service span: %+v", svc)
	}

	snap := tr.Snapshot()
	if _, ok := snap.Tasks["job"]; ok {
		t.Error("service-lane span leaked into task stats")
	}
	for _, w := range snap.Workers {
		if w.Lane < 0 {
			t.Errorf("service lane %d in worker occupancy", w.Lane)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"serve"`) {
		t.Error("trace does not name the service lane")
	}

	// Endpoints before the epoch clamp rather than going negative.
	tr.SpanAt("job", "early", LaneServe, start.Add(-time.Hour), start.Add(-2*time.Hour), nil)
	spans, _, _ = tr.snapshotState()
	for _, s := range spans {
		if s.Name == "early" && (s.Start < 0 || s.Dur < 0) {
			t.Errorf("unclamped early span: %+v", s)
		}
	}
}

// TestPoolObserverAdapter checks the par-facing callback records on the
// right lane with the right name.
func TestPoolObserverAdapter(t *testing.T) {
	tr := New()
	obs := tr.PoolObserver("lint", func(i int) string { return "m" + string(rune('0'+i)) })
	obs(1, 2, 3*time.Microsecond, 10*time.Microsecond)
	spans, _, _ := tr.snapshotState()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	s := spans[0]
	if s.Name != "m2" || s.Cat != "lint" || s.Lane != 2 || s.Args["queue_us"] != 3 {
		t.Errorf("span: %+v", s)
	}
}

// TestStartProfile exercises both pprof modes.
func TestStartProfile(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = strings.Repeat("x", 10)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile: %v, size %v", err, fi)
	}

	mem := filepath.Join(dir, "mem.out")
	stop, err = StartProfile(mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Errorf("mem profile: %v", err)
	}
}
