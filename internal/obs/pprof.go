package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// StartProfile starts the runtime/pprof collection the -pprof CLI flag
// asks for and returns the function that finishes it. The profile kind is
// selected by the output file's base name: a name starting with "mem"
// (e.g. mem.out) takes a heap snapshot at stop time; anything else (e.g.
// cpu.out) runs a CPU profile from now until stop. stop must be called
// exactly once; it flushes and closes the file.
func StartProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(filepath.Base(path), "mem") {
		return func() error {
			runtime.GC() // up-to-date heap statistics
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			return cerr
		}, nil
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
