// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): "# HELP"/"# TYPE" headers per family, one sample per
// line, label values escaped. It exists so the serving layer can expose
// its counters and histograms to a standard scraper without taking a
// client-library dependency — the format is small and this writer
// enforces the parts scrapers actually reject: metric-name syntax,
// duplicate family registration, and samples outside a family.
//
// Output is deterministic for deterministic inputs: families appear in
// registration order and callers pass labels as ordered pairs, so a
// golden test can parse (and diff) the exposition byte for byte.

package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one exposition label pair, ordered by the caller.
type Label struct{ Key, Value string }

// PromWriter writes one exposition document. Errors are sticky: the
// first write or validation failure is remembered and every later call
// is a no-op, so call sites chain without per-line checks and read Err
// once at the end.
type PromWriter struct {
	w        io.Writer
	err      error
	families map[string]bool
	cur      string // family currently open for samples
	curTyp   string
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, families: map[string]bool{}}
}

// Err returns the first error the writer hit, nil if none.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("prom: "+format, args...)
	}
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// validName reports whether s is a legal metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*; labels additionally may not contain ':',
// which the caller's names never do either, so one check serves both).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Family opens a metric family: writes its HELP and TYPE lines and makes
// it the target of subsequent Sample/Histo calls. Registering the same
// family twice, or an invalid name or type, is an error — the exact
// mistakes that make a scraper drop the whole scrape.
func (p *PromWriter) Family(name, typ, help string) {
	if p.err != nil {
		return
	}
	if !validName(name) {
		p.fail("invalid metric family name %q", name)
		return
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		p.fail("invalid type %q for family %s", typ, name)
		return
	}
	if p.families[name] {
		p.fail("duplicate metric family %s", name)
		return
	}
	p.families[name] = true
	p.cur, p.curTyp = name, typ
	if help != "" {
		p.printf("# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample of the open family. suffix extends the family
// name ("" for plain counters/gauges, "_bucket"/"_sum"/"_count" inside
// histograms, written by Histo).
func (p *PromWriter) Sample(suffix string, labels []Label, value float64) {
	if p.err != nil {
		return
	}
	if p.cur == "" {
		p.fail("sample before any Family")
		return
	}
	var lb strings.Builder
	for i, l := range labels {
		if !validName(l.Key) || strings.Contains(l.Key, ":") {
			p.fail("invalid label name %q on %s", l.Key, p.cur)
			return
		}
		if i > 0 {
			lb.WriteByte(',')
		}
		fmt.Fprintf(&lb, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if lb.Len() > 0 {
		p.printf("%s%s{%s} %s\n", p.cur, suffix, lb.String(), formatValue(value))
	} else {
		p.printf("%s%s %s\n", p.cur, suffix, formatValue(value))
	}
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, integers without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Histo writes the open histogram family's _bucket/_sum/_count series
// from a bounded Histogram whose samples are microseconds, scaled to
// seconds (the Prometheus base unit for durations). Buckets stop at the
// one containing the observed maximum; the +Inf bucket always carries
// the total count.
func (p *PromWriter) Histo(labels []Label, h *Histogram) {
	if p.err != nil {
		return
	}
	if p.curTyp != "histogram" {
		p.fail("Histo on %s family %s", p.curTyp, p.cur)
		return
	}
	bl := make([]Label, len(labels), len(labels)+1)
	copy(bl, labels)
	h.Each(func(leUS int64, cum uint64) {
		le := strconv.FormatFloat(float64(leUS)/1e6, 'g', -1, 64)
		p.Sample("_bucket", append(bl, Label{"le", le}), float64(cum))
	})
	p.Sample("_bucket", append(bl, Label{"le", "+Inf"}), float64(h.Count()))
	p.Sample("_sum", labels, float64(h.SumUS())/1e6)
	p.Sample("_count", labels, float64(h.Count()))
}
