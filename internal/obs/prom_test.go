package obs

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestPromWriterBasics: families render HELP/TYPE once, samples carry
// escaped labels, and values format without exponents for integers.
func TestPromWriterBasics(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("calibrod_jobs_total", "counter", "Jobs by terminal state.")
	p.Sample("", []Label{{"state", "done"}}, 42)
	p.Sample("", []Label{{"state", `we"ird\state`}}, 1)
	p.Family("calibrod_queue_depth", "gauge", "")
	p.Sample("", nil, 3)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP calibrod_jobs_total Jobs by terminal state.\n",
		"# TYPE calibrod_jobs_total counter\n",
		`calibrod_jobs_total{state="done"} 42` + "\n",
		`calibrod_jobs_total{state="we\"ird\\state"} 1` + "\n",
		"# TYPE calibrod_queue_depth gauge\n",
		"calibrod_queue_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The empty-help family has no HELP line.
	if strings.Contains(out, "# HELP calibrod_queue_depth") {
		t.Error("HELP line written for empty help")
	}
}

// TestPromWriterRejects: the validation cases that would poison a scrape.
func TestPromWriterRejects(t *testing.T) {
	cases := []struct {
		name string
		use  func(p *PromWriter)
	}{
		{"duplicate family", func(p *PromWriter) {
			p.Family("x_total", "counter", "")
			p.Family("x_total", "counter", "")
		}},
		{"bad family name", func(p *PromWriter) { p.Family("2bad", "counter", "") }},
		{"bad type", func(p *PromWriter) { p.Family("ok_total", "meter", "") }},
		{"sample before family", func(p *PromWriter) { p.Sample("", nil, 1) }},
		{"bad label name", func(p *PromWriter) {
			p.Family("ok_total", "counter", "")
			p.Sample("", []Label{{"0bad", "v"}}, 1)
		}},
		{"histo on counter", func(p *PromWriter) {
			p.Family("ok_total", "counter", "")
			p.Histo(nil, &Histogram{})
		}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		p := NewPromWriter(&buf)
		tc.use(p)
		if p.Err() == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestPromWriterHistogram: the bucket series is cumulative, le values
// ascend, +Inf carries the total, and _sum/_count agree with the source.
func TestPromWriterHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{500, 1500, 2_000_000, 30} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("calibrod_job_duration_seconds", "histogram", "End-to-end job latency.")
	p.Histo(nil, &h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var lastCum float64 = -1
	infSeen := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "calibrod_job_duration_seconds_bucket") {
			continue
		}
		var cum float64
		if _, err := parseSampleValue(line, &cum); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		lastCum = cum
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if cum != 4 {
				t.Errorf("+Inf bucket = %v, want 4", cum)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket")
	}
	if !strings.Contains(out, "calibrod_job_duration_seconds_count 4\n") {
		t.Errorf("missing _count in:\n%s", out)
	}
}

// parseSampleValue extracts the float value of one exposition sample
// line.
func parseSampleValue(line string, out *float64) (string, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", errors.New("no value field")
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return "", err
	}
	*out = v
	return line[:i], nil
}
