package outline

import (
	"sort"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/suffixtree"
)

// Analysis is the output of the §2.2 redundancy study: the estimated code
// size saving from outlining (Table 1), and the length/frequency shape of
// the repeats (Figure 3).
type Analysis struct {
	TotalWords          int
	EstimatedSavedWords int
	EstimatedReduction  float64 // Table 1's ratio

	// RepeatFamilies counts distinct maximal repeats per length;
	// OccurrencesByLength sums their repeat counts (Figure 3's y-axis
	// against length on x).
	RepeatFamilies      map[int]int
	OccurrencesByLength map[int]int64

	// Top holds the most frequent repeats, most repeated first.
	Top []RepeatInfo
}

// RepeatInfo describes one repeat family.
type RepeatInfo struct {
	Length int
	Count  int
	Words  []uint32
}

// Analyze performs the paper's §2.2 estimation over compiled methods.
// With respectBoundaries=false it reproduces the idealized Table 1 scan
// (whole-binary, only embedded data and method boundaries separate code);
// with true it applies the outliner's full correctness constraints, which
// is what LTBO can actually capture.
func Analyze(methods []*codegen.CompiledMethod, respectBoundaries bool) *Analysis {
	total := len(methods)
	for _, cm := range methods {
		total += len(cm.Code)
	}
	sym := newSymbolizer(total)
	seq := make([]uint32, 0, total)
	var posWords int

	for _, cm := range methods {
		var sep []bool
		if respectBoundaries {
			sep = separatorWords(cm, false)
		} else {
			sep = make([]bool, len(cm.Code))
			for _, d := range cm.Meta.EmbeddedData {
				for off := d.Start; off < d.End; off += a64.WordSize {
					if off/a64.WordSize < len(sep) {
						sep[off/a64.WordSize] = true
					}
				}
			}
		}
		for w, word := range cm.Code {
			if sep[w] {
				seq = append(seq, sym.separator())
			} else {
				seq = append(seq, sym.word(word))
				posWords++
			}
		}
		seq = append(seq, sym.separator())
	}

	a := &Analysis{
		TotalWords:          totalWords(methods),
		RepeatFamilies:      map[int]int{},
		OccurrencesByLength: map[int]int64{},
	}
	if len(seq) == 0 {
		return a
	}
	tree := suffixtree.Build(seq)
	repeats := tree.Repeats(2, 2)
	for _, r := range repeats {
		a.RepeatFamilies[r.Length]++
		a.OccurrencesByLength[r.Length] += int64(r.Count)
	}

	// Greedy benefit-ordered non-overlapping selection, identical to the
	// outliner's, to estimate achievable savings (Figure 2 model).
	sort.Slice(repeats, func(i, j int) bool {
		bi := suffixtree.Benefit(repeats[i].Length, repeats[i].Count)
		bj := suffixtree.Benefit(repeats[j].Length, repeats[j].Count)
		if bi != bj {
			return bi > bj
		}
		if repeats[i].Length != repeats[j].Length {
			return repeats[i].Length > repeats[j].Length
		}
		return repeats[i].Node < repeats[j].Node
	})
	taken := make([]bool, len(seq))
	for _, rep := range repeats {
		if suffixtree.Benefit(rep.Length, rep.Count) < 1 {
			break
		}
		occs := tree.Occurrences(rep.Node)
		sort.Ints(occs)
		chosen, lastEnd := 0, -1
		for _, o := range occs {
			if o < lastEnd {
				continue
			}
			ok := true
			for p := o; p < o+rep.Length; p++ {
				if taken[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen++
			lastEnd = o + rep.Length
			for p := o; p < o+rep.Length; p++ {
				taken[p] = true
			}
		}
		if b := suffixtree.Benefit(rep.Length, chosen); chosen >= 2 && b > 0 {
			a.EstimatedSavedWords += b
		}
	}
	if a.TotalWords > 0 {
		a.EstimatedReduction = float64(a.EstimatedSavedWords) / float64(a.TotalWords)
	}

	// Top repeats by occurrence count (Observation 3 / Figure 4 material).
	sort.Slice(repeats, func(i, j int) bool {
		if repeats[i].Count != repeats[j].Count {
			return repeats[i].Count > repeats[j].Count
		}
		return repeats[i].Length > repeats[j].Length
	})
	for i := 0; i < len(repeats) && i < 20; i++ {
		a.Top = append(a.Top, RepeatInfo{
			Length: repeats[i].Length,
			Count:  repeats[i].Count,
			Words:  sym.wordsOf(tree.Label(repeats[i].Node)),
		})
	}
	return a
}

func totalWords(methods []*codegen.CompiledMethod) int {
	n := 0
	for _, cm := range methods {
		n += len(cm.Code)
	}
	return n
}

// PatternCounts holds static occurrence counts of the three ART-specific
// patterns of Figure 4. NativeCalls breaks the thread-register pattern
// down by entrypoint offset, matching the paper's per-function counting
// (its example is pAllocObjectResolved).
type PatternCounts struct {
	JavaCall    int // ldr x30, [x0, #entry]; blr x30
	NativeCall  int // ldr x30, [x19, #off]; blr x30 (all offsets)
	NativeAlloc int // the pAllocObjectResolved instance of the above
	StackCheck  int // sub x16, sp, #0x2000; ldr wzr, [x16]
	NativeCalls map[int64]int
}

// CountPatterns scans compiled (pre-CTO) code for the Figure 4 patterns.
func CountPatterns(methods []*codegen.CompiledMethod) PatternCounts {
	pc := PatternCounts{NativeCalls: map[int64]int{}}
	blrLR := a64.MustEncode(a64.Inst{Op: a64.OpBlr, Rn: a64.LR})
	subGuard := a64.MustEncode(a64.Inst{Op: a64.OpSubImm, Sf: true, Rd: a64.IP0, Rn: a64.SP,
		Imm: abi.StackGuard >> 12, Shift12: true})
	ldrWZR := a64.MustEncode(a64.Inst{Op: a64.OpLdrImm, Rd: a64.XZR, Rn: a64.IP0})
	allocOff := dex.NativeAllocObjectResolved.EntrypointOffset()
	for _, cm := range methods {
		for w := 0; w+1 < len(cm.Code); w++ {
			first, ok := a64.Decode(cm.Code[w])
			if !ok {
				continue
			}
			second := cm.Code[w+1]
			switch {
			case second == blrLR && first.Op == a64.OpLdrImm && first.Sf && first.Rd == a64.LR && first.Rn == a64.X0:
				pc.JavaCall++
			case second == blrLR && first.Op == a64.OpLdrImm && first.Sf && first.Rd == a64.LR && first.Rn == a64.TR:
				pc.NativeCall++
				pc.NativeCalls[first.Imm]++
				if first.Imm == allocOff {
					pc.NativeAlloc++
				}
			case cm.Code[w] == subGuard && second == ldrWZR:
				pc.StackCheck++
			}
		}
	}
	return pc
}
