package outline

// The neutral detector entry: repeat detection and greedy selection over
// Sequence units, with no compiled-method types anywhere in the signature.
// Run/RunCtx stay the link-time entry (they rewrite methods in place);
// Detect is the half the post-hoc re-outliner shares — it reports what to
// outline and where, and leaves acting on it to the caller.

import (
	"context"
	"fmt"

	"repro/internal/par"
)

// Site is one selected occurrence of a detected repeat, in unit
// coordinates.
type Site struct {
	Unit int // index into the units slice passed to Detect
	Word int // word offset within that unit
}

// Detected is one repeat family the detector chose to outline: the body
// words and every selected, non-overlapping occurrence.
type Detected struct {
	Words []uint32
	Sites []Site
}

// Detect runs repeat detection and selection over the units and returns
// the chosen families. Options are interpreted exactly as in Run:
// Parallel partitions the units round-robin into K independent groups,
// DetectShards shards detection inside each group, and MinLength /
// MinBenefit gate selection. A nil unit is skipped (contributes nothing);
// the result is deterministic for every Workers value.
func Detect(units []Sequence, opts Options) ([]Detected, *Stats, error) {
	return DetectCtx(context.Background(), units, opts)
}

// DetectCtx is Detect with cooperative cancellation.
func DetectCtx(ctx context.Context, units []Sequence, opts Options) ([]Detected, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	var candidates []int
	for i, u := range units {
		if u != nil {
			candidates = append(candidates, i)
		}
	}
	stats.CandidateMethods = len(candidates)
	if len(candidates) == 0 {
		return nil, stats, nil
	}
	k := opts.Parallel
	if k > len(candidates) {
		k = len(candidates)
	}
	groups := make([][]int, k)
	for idx, ui := range candidates {
		groups[idx%k] = append(groups[idx%k], ui)
	}
	observer := opts.Tracer.PoolObserver("outline.group", func(gi int) string {
		return fmt.Sprintf("tree %d (%d units)", gi, len(groups[gi]))
	})
	type groupResult struct {
		funcs []outlinedFunc
		stats Stats
	}
	results, err := par.MapObsCtx(ctx, opts.Workers, k, observer, func(gi int) (groupResult, error) {
		funcs, st, err := outlineGroup(units, groups[gi], opts)
		return groupResult{funcs: funcs, stats: st}, err
	})
	if err != nil {
		return nil, stats, err
	}
	var out []Detected
	for _, res := range results {
		stats.SequenceSymbols += res.stats.SequenceSymbols
		// Groups overlap on the pool: phase totals take the slowest group,
		// the same fold runPass applies.
		if res.stats.SepScan > stats.SepScan {
			stats.SepScan = res.stats.SepScan
		}
		if res.stats.Symbolize > stats.Symbolize {
			stats.Symbolize = res.stats.Symbolize
		}
		if res.stats.TreeBuild > stats.TreeBuild {
			stats.TreeBuild = res.stats.TreeBuild
		}
		if res.stats.Detect > stats.Detect {
			stats.Detect = res.stats.Detect
		}
		for _, f := range res.funcs {
			d := Detected{Words: f.words}
			for _, occ := range f.occurrences {
				d.Sites = append(d.Sites, Site{Unit: occ.method, Word: occ.wordOff})
			}
			out = append(out, d)
			stats.OutlinedFunctions++
			stats.OutlinedOccurrences += len(d.Sites)
		}
	}
	return out, stats, nil
}
