package outline_test

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

var updateIdentity = flag.Bool("update", false, "rewrite the detector byte-identity golden file")

// TestDetectorByteIdentityPin pins the exact images the outliner produces
// on a fixed ladder slice. The golden file was generated before the
// detector's input was factored behind the Sequence interface, so the
// refactor — and any future change to the detection/selection machinery —
// is held to byte-for-byte identity, not just "tests still pass".
// Regenerate (deliberately) with `go test ./internal/outline -update`.
func TestDetectorByteIdentityPin(t *testing.T) {
	type pinCase struct {
		app  string
		cfg  core.Config
		name string
	}
	plShard := core.CTOLTBOPl(4)
	plShard.DetectShards = 2
	plShard.Rounds = 2
	plShard.DedupFunctions = true
	cases := []pinCase{
		{"Wechat", core.CTOLTBO(), "wechat-ltbo"},
		{"Wechat", plShard, "wechat-plopti4-shards2-rounds2-dedup"},
		{"Taobao", core.CTOLTBOPl(8), "taobao-plopti8"},
	}

	var sb strings.Builder
	for _, c := range cases {
		prof, ok := workload.AppByName(c.app, 0.05)
		if !ok {
			t.Fatalf("unknown app %q", c.app)
		}
		app, _, err := workload.Generate(prof)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Build(app, c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		data, err := res.Image.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(&sb, "%s %s\n", c.name, hex.EncodeToString(sum[:]))
	}

	golden := filepath.Join("testdata", "identity.golden")
	if *updateIdentity {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if sb.String() != string(want) {
		t.Errorf("outlined images changed:\n got:\n%s want:\n%s", sb.String(), string(want))
	}
}
