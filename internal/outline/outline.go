// Package outline implements LTBO.2, the linking-time half of Calibro
// (paper §3.3): choosing candidate methods, detecting repeated binary code
// sequences with a suffix tree, outlining them into functions, and patching
// PC-relative instructions — all driven by the metadata collected at
// compilation time (LTBO.1), so no disassembly or heuristic binary analysis
// is ever needed.
//
// It also implements the two production optimizations of §3.4: K-way
// paralleled suffix trees, and hot-function filtering (hot methods
// contribute only their slow paths).
package outline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/par"
)

// Options controls the outliner.
type Options struct {
	// MinLength is the minimum repeat length in instructions (default 2).
	MinLength int
	// MinBenefit is the minimum Figure 2 benefit, in instructions, for a
	// repeat to be outlined (default 1).
	MinBenefit int
	// Parallel is the number of suffix trees built over disjoint method
	// groups (§3.4.1). 1 builds a single global tree.
	Parallel int
	// Hot marks methods whose non-slow-path code must not be outlined
	// (§3.4.2). Nil disables hot-function filtering.
	Hot map[dex.MethodID]bool
	// Rounds repeats the detect/outline/patch cycle on the rewritten
	// binaries (default 1). Later rounds recover repeats that the greedy
	// non-overlapping selection of earlier rounds fragmented — the
	// multi-round scheme of the iOS outlining line of work the paper
	// builds on. Rounds stop early when a pass creates nothing.
	Rounds int
	// DedupFunctions merges identical outlined-function bodies created by
	// different suffix trees (or rounds) into one copy. The paper accepts
	// the cross-tree duplication as the price of PlOpti (§3.4.1);
	// deduplication recovers part of that loss for one cheap linear pass.
	DedupFunctions bool
	// SymKind is the codegen symbol kind minted for created functions;
	// 0 selects codegen.SymKindOutlined (the link-time path). The post-hoc
	// re-outliner passes codegen.SymKindReoutlined so the provenance of
	// every outlined body survives in the image's symbol table.
	SymKind int
	// Detector selects the repeat-detection backend. The default suffix
	// tree matches the paper; the suffix-array backend finds the identical
	// repeat families with a far smaller memory footprint (the resource
	// the paper's global tree exhausts at production scale).
	Detector DetectorKind
	// DetectShards splits each group's sequence construction and repeat
	// detection into N shards that fan out on the worker pool, merging the
	// per-shard candidate sets by content before one global selection.
	// This is the paper's global-structure-vs-parallel-detection tradeoff
	// (Table 6) as a tunable: <= 1 keeps the exact global structure per
	// group (and is byte-identical to it by construction); N >= 2 trades a
	// little detection power — a repeat whose occurrences all land in
	// different shards is invisible — for a parallel detection stage.
	// Orthogonal to Parallel, which partitions what is *selected over*;
	// DetectShards only partitions what is *detected over*, selection
	// stays global within the group.
	DetectShards int
	// forceSharded routes groups through the sharded machinery even at one
	// shard; tests use it to pin the byte-identity of the two routes.
	forceSharded bool
	// Workers bounds the goroutines the outliner uses for the group
	// fan-out, the per-method separator scans, and the per-method
	// rewrites; <= 0 selects runtime.GOMAXPROCS(0). Distinct from
	// Parallel, which partitions the *input* into K trees and changes
	// what is outlined; Workers changes only scheduling, never output.
	Workers int
	// Tracer, when non-nil, records per-group spans for the tree
	// fan-out, per-method rewrite and verify spans, one instant event
	// per group carrying its tree-build/detect/scan counters, and the
	// final Stats counters. Tracing observes only; output is identical
	// with it on or off.
	Tracer *obs.Tracer
}

// DetectorKind selects a repeat-detection backend.
type DetectorKind int

// Detection backends.
const (
	DetectorSuffixTree DetectorKind = iota
	DetectorSuffixArray
)

func (o Options) withDefaults() Options {
	if o.MinLength == 0 {
		o.MinLength = 2
	}
	if o.MinBenefit == 0 {
		o.MinBenefit = 1
	}
	if o.Parallel == 0 {
		o.Parallel = 1
	}
	if o.Rounds == 0 {
		o.Rounds = 1
	}
	if o.DetectShards == 0 {
		o.DetectShards = 1
	}
	if o.SymKind == 0 {
		o.SymKind = codegen.SymKindOutlined
	}
	return o
}

// Stats reports what the outliner did; the build-time experiment (Table 6)
// reads the phase durations.
type Stats struct {
	CandidateMethods int
	ExcludedIndirect int
	ExcludedNative   int
	HotFiltered      int // hot methods reduced to their slow paths

	SequenceSymbols     int
	OutlinedFunctions   int
	OutlinedOccurrences int
	WordsRemoved        int // call-site words removed (net of inserted bl)
	WordsAdded          int // outlined function words (bodies + returns)

	// Phase wall clocks. With K parallel trees, SepScan through Detect
	// are the slowest group's time (groups overlap); Rewrite is the wall
	// time of the whole rewrite fan-out. Across rounds they accumulate.
	SepScan   time.Duration // per-method separator scans (inside buildSequence)
	Symbolize time.Duration // sequence symbol interning (serial per group)
	TreeBuild time.Duration
	Detect    time.Duration
	Rewrite   time.Duration
}

// NetWordsSaved is the net text-segment saving in instruction words.
func (s *Stats) NetWordsSaved() int { return s.WordsRemoved - s.WordsAdded }

// Counters flattens the counts (not the durations) into named telemetry
// counters — the bundle the metrics snapshot and the -stats table report.
func (s *Stats) Counters() map[string]int64 {
	return map[string]int64{
		"candidate_methods":    int64(s.CandidateMethods),
		"excluded_indirect":    int64(s.ExcludedIndirect),
		"excluded_native":      int64(s.ExcludedNative),
		"hot_filtered":         int64(s.HotFiltered),
		"sequence_symbols":     int64(s.SequenceSymbols),
		"outlined_functions":   int64(s.OutlinedFunctions),
		"outlined_occurrences": int64(s.OutlinedOccurrences),
		"words_removed":        int64(s.WordsRemoved),
		"words_added":          int64(s.WordsAdded),
	}
}

// Run outlines the compiled methods in place and returns the outlined
// functions as linker blobs. Methods' Code, Meta, StackMap, and Ext are
// rewritten; the caller links with oat.Link(methods, blobs).
func Run(methods []*codegen.CompiledMethod, opts Options) ([]oat.Blob, *Stats, error) {
	return RunCtx(context.Background(), methods, opts)
}

// RunCtx is Run with cooperative cancellation: the group fan-out and the
// per-method rewrite pool check ctx before every task, and the round loop
// checks it between rounds, so a cancelled or deadline-expired context
// stops outlining promptly and returns ctx.Err(). context.Background()
// restores Run exactly.
func RunCtx(ctx context.Context, methods []*codegen.CompiledMethod, opts Options) ([]oat.Blob, *Stats, error) {
	opts = opts.withDefaults()
	total := &Stats{}
	var blobs []oat.Blob
	for round := 0; round < opts.Rounds; round++ {
		created, stats, err := runPass(ctx, methods, opts, len(blobs))
		if err != nil {
			return nil, total, err
		}
		accumulate(total, stats)
		blobs = append(blobs, created...)
		if len(created) == 0 {
			break
		}
	}
	if opts.DedupFunctions {
		blobs = dedupBlobs(methods, blobs, total)
	}
	for name, v := range total.Counters() {
		opts.Tracer.Count("outline."+name, v)
	}
	return blobs, total, nil
}

// dedupBlobs merges byte-identical outlined functions: call sites of every
// duplicate are redirected to the first copy, and duplicates are dropped.
// Call sites carry symbols (displacements bind at link), so the redirect is
// a symbol rewrite, no patching needed.
func dedupBlobs(methods []*codegen.CompiledMethod, blobs []oat.Blob, total *Stats) []oat.Blob {
	canon := map[string]int{} // body -> canonical symbol
	remap := map[int]int{}
	var kept []oat.Blob
	for _, b := range blobs {
		key := blobKey(b.Code)
		if sym, ok := canon[key]; ok {
			remap[b.Sym] = sym
			total.OutlinedFunctions--
			total.WordsAdded -= len(b.Code)
			continue
		}
		canon[key] = b.Sym
		kept = append(kept, b)
	}
	if len(remap) == 0 {
		return blobs
	}
	for _, cm := range methods {
		for i, e := range cm.Ext {
			if sym, ok := remap[e.Symbol]; ok {
				cm.Ext[i].Symbol = sym
			}
		}
	}
	return kept
}

func blobKey(words []uint32) string {
	b := make([]byte, 4*len(words))
	for i, w := range words {
		b[4*i] = byte(w)
		b[4*i+1] = byte(w >> 8)
		b[4*i+2] = byte(w >> 16)
		b[4*i+3] = byte(w >> 24)
	}
	return string(b)
}

// accumulate folds one pass's stats into the running total. Counts add;
// phase durations add (rounds run sequentially); exclusion counts are
// identical each round and kept from the first.
func accumulate(total, pass *Stats) {
	if total.CandidateMethods == 0 {
		total.CandidateMethods = pass.CandidateMethods
		total.ExcludedIndirect = pass.ExcludedIndirect
		total.ExcludedNative = pass.ExcludedNative
		total.HotFiltered = pass.HotFiltered
		total.SequenceSymbols = pass.SequenceSymbols
	}
	total.OutlinedFunctions += pass.OutlinedFunctions
	total.OutlinedOccurrences += pass.OutlinedOccurrences
	total.WordsRemoved += pass.WordsRemoved
	total.WordsAdded += pass.WordsAdded
	total.SepScan += pass.SepScan
	total.Symbolize += pass.Symbolize
	total.TreeBuild += pass.TreeBuild
	total.Detect += pass.Detect
	total.Rewrite += pass.Rewrite
}

// runPass performs one detect/outline/patch cycle.
func runPass(ctx context.Context, methods []*codegen.CompiledMethod, opts Options, symBase int) ([]oat.Blob, *Stats, error) {
	stats := &Stats{}

	// §3.3.1: choose candidate methods.
	var candidates []int
	for i, cm := range methods {
		switch {
		case cm.Meta.IsNative:
			stats.ExcludedNative++
		case cm.Meta.HasIndirectJump:
			stats.ExcludedIndirect++
		default:
			if opts.Hot != nil && opts.Hot[cm.M.ID] {
				stats.HotFiltered++
			}
			candidates = append(candidates, i)
		}
	}
	stats.CandidateMethods = len(candidates)
	if len(candidates) == 0 {
		return nil, stats, nil
	}

	// Adapt the candidates onto the neutral detector input. The slice is
	// indexed like methods, so unit coordinates are method coordinates and
	// the rewrite plans below need no translation.
	units := make([]Sequence, len(methods))
	for _, mi := range candidates {
		cm := methods[mi]
		units[mi] = methodSeq{cm: cm, hot: opts.Hot != nil && opts.Hot[cm.M.ID]}
	}

	// §3.4.1: partition the candidates into K groups evenly.
	k := opts.Parallel
	if k > len(candidates) {
		k = len(candidates)
	}
	groups := make([][]int, k)
	for idx, mi := range candidates {
		groups[idx%k] = append(groups[idx%k], mi)
	}

	type groupResult struct {
		funcs []outlinedFunc
		stats Stats
	}
	observer := opts.Tracer.PoolObserver("outline.group", func(gi int) string {
		return fmt.Sprintf("tree %d (%d methods)", gi, len(groups[gi]))
	})
	results, err := par.MapObsCtx(ctx, opts.Workers, k, observer, func(gi int) (groupResult, error) {
		funcs, st, err := outlineGroup(units, groups[gi], opts)
		return groupResult{funcs: funcs, stats: st}, err
	})
	if err != nil {
		return nil, stats, err
	}

	// Merge deterministically in group order.
	var blobs []oat.Blob
	var rewrites []rewritePlan
	for gi, res := range results {
		stats.SequenceSymbols += res.stats.SequenceSymbols
		// Groups run in parallel: phase totals take the slowest group,
		// not the sum over the pool.
		if res.stats.SepScan > stats.SepScan {
			stats.SepScan = res.stats.SepScan
		}
		if res.stats.Symbolize > stats.Symbolize {
			stats.Symbolize = res.stats.Symbolize
		}
		if res.stats.TreeBuild > stats.TreeBuild {
			stats.TreeBuild = res.stats.TreeBuild
		}
		if res.stats.Detect > stats.Detect {
			stats.Detect = res.stats.Detect
		}
		if opts.Tracer != nil {
			occ := 0
			for _, f := range res.funcs {
				occ += len(f.occurrences)
			}
			opts.Tracer.Instant("outline.group", fmt.Sprintf("tree %d stats", gi), map[string]int64{
				"methods":          int64(len(groups[gi])),
				"sequence_symbols": int64(res.stats.SequenceSymbols),
				"functions":        int64(len(res.funcs)),
				"occurrences":      int64(occ),
				"sep_scan_us":      res.stats.SepScan.Microseconds(),
				"symbolize_us":     res.stats.Symbolize.Microseconds(),
				"tree_build_us":    res.stats.TreeBuild.Microseconds(),
				"detect_us":        res.stats.Detect.Microseconds(),
			})
		}
		for _, f := range res.funcs {
			sym := codegen.PackSym(opts.SymKind, int64(symBase+len(blobs)))
			body := append(append([]uint32(nil), f.words...),
				a64.MustEncode(a64.Inst{Op: a64.OpBr, Rn: a64.LR}))
			blobs = append(blobs, oat.Blob{Sym: sym, Code: body})
			stats.OutlinedFunctions++
			stats.WordsAdded += len(body)
			for _, occ := range f.occurrences {
				stats.OutlinedOccurrences++
				stats.WordsRemoved += len(f.words) - 1 // bl replaces the sequence
				rewrites = append(rewrites, rewritePlan{
					method: occ.method, start: occ.wordOff, length: len(f.words), sym: sym,
				})
			}
		}
	}

	// §3.3.3-3.3.4: rewrite the binaries and patch PC-relative
	// instructions, one method at a time. Each rewrite touches only its
	// own method, so the rewrites fan out on the pool; iterating methods
	// in ascending index order makes the first reported error — and the
	// Rewrite timing's attribution — independent of map iteration order.
	start := time.Now()
	byMethod := map[int][]rewritePlan{}
	for _, rp := range rewrites {
		byMethod[rp.method] = append(byMethod[rp.method], rp)
	}
	order := make([]int, 0, len(byMethod))
	for mi := range byMethod {
		order = append(order, mi)
	}
	sort.Ints(order)
	rwObserver := opts.Tracer.PoolObserver("outline.rewrite", func(i int) string {
		return methods[order[i]].M.FullName()
	})
	if err := par.EachObsCtx(ctx, opts.Workers, len(order), rwObserver, func(i int) error {
		mi := order[i]
		if err := rewriteMethod(methods[mi], byMethod[mi]); err != nil {
			return fmt.Errorf("outline: %s: %w", methods[mi].M.FullName(), err)
		}
		return nil
	}); err != nil {
		return nil, stats, err
	}
	stats.Rewrite = time.Since(start)
	return blobs, stats, nil
}

// occurrence locates one selected instance of a repeat.
type occurrence struct {
	method  int // index into methods
	wordOff int // word index within the method's code
}

// outlinedFunc is one function the outliner will emit.
type outlinedFunc struct {
	words       []uint32
	occurrences []occurrence
}

// rewritePlan is one call-site rewrite.
type rewritePlan struct {
	method int
	start  int // word index
	length int // words replaced
	sym    int
}
