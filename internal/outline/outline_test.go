package outline

import (
	"reflect"
	"testing"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/hgraph"
	"repro/internal/oat"
	"repro/internal/workload"
)

func genApp(t *testing.T, seed int64, methods int) (*dex.App, *workload.Manifest) {
	t.Helper()
	app, man, err := workload.Generate(workload.Profile{
		Name: "t", Seed: seed, Methods: methods,
		NativeFrac: 0.08, SwitchFrac: 0.12, HotFrac: 0.06,
		HotLoopIters: 30, WarmLoopIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app, man
}

func compile(t *testing.T, app *dex.App, cto bool) []*codegen.CompiledMethod {
	t.Helper()
	methods, err := codegen.Compile(app, codegen.Options{CTO: cto, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return methods
}

func link(t *testing.T, methods []*codegen.CompiledMethod, blobs []oat.Blob) *oat.Image {
	t.Helper()
	img, err := oat.Link(methods, blobs)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// diff runs interpreter and emulator and requires identical observables.
func diff(t *testing.T, app *dex.App, img *oat.Image, entry dex.MethodID, args []int64) {
	t.Helper()
	ip := &hgraph.Interp{App: app, MaxDepth: 10_000}
	want, err := ip.Run(entry, args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := emu.New(img).Run(entry, args)
	if err != nil {
		t.Fatalf("emu: %v", err)
	}
	if want.Ret != got.Ret || want.Exc != got.Exc || !reflect.DeepEqual(want.Log, got.Log) {
		t.Fatalf("outlined binary diverges (entry m%d args %v)\ninterp: ret=%d exc=%v len(log)=%d\nemu:    ret=%d exc=%v len(log)=%d",
			entry, args, want.Ret, want.Exc, len(want.Log), got.Ret, got.Exc, len(got.Log))
	}
}

// TestOutlinePreservesSemantics is the headline correctness test: for
// random apps, every optimization combination must preserve observable
// behaviour while shrinking the text segment.
func TestOutlinePreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		app, man := genApp(t, seed, 50)
		baseline := link(t, compile(t, app, false), nil)

		for _, cto := range []bool{false, true} {
			for _, parallel := range []int{1, 4} {
				for _, hot := range []bool{false, true} {
					methods := compile(t, app, cto)
					opts := Options{Parallel: parallel}
					if hot {
						opts.Hot = map[dex.MethodID]bool{}
						for _, id := range man.Hot {
							opts.Hot[id] = true
						}
					}
					blobs, stats, err := Run(methods, opts)
					if err != nil {
						t.Fatalf("seed %d cto=%v par=%d hot=%v: %v", seed, cto, parallel, hot, err)
					}
					img := link(t, methods, blobs)
					if img.TextBytes() >= baseline.TextBytes() {
						t.Errorf("seed %d cto=%v par=%d hot=%v: no size reduction (%d >= %d); stats %+v",
							seed, cto, parallel, hot, img.TextBytes(), baseline.TextBytes(), stats)
					}
					for _, entry := range man.Drivers {
						for _, args := range [][]int64{{0, 0}, {7, 3}, {100, 9}} {
							diff(t, app, img, entry, args)
						}
					}
				}
			}
		}
	}
}

func TestOutlineExcludesProtectedMethods(t *testing.T) {
	app, _ := genApp(t, 11, 60)
	methods := compile(t, app, true)
	before := make(map[int][]uint32)
	for i, cm := range methods {
		if cm.Meta.IsNative || cm.Meta.HasIndirectJump {
			before[i] = append([]uint32(nil), cm.Code...)
		}
	}
	if len(before) == 0 {
		t.Fatal("test app has no protected methods")
	}
	_, stats, err := Run(methods, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExcludedNative == 0 || stats.ExcludedIndirect == 0 {
		t.Errorf("exclusions not counted: %+v", stats)
	}
	for i, want := range before {
		if !reflect.DeepEqual(methods[i].Code, want) {
			t.Errorf("protected method %s was modified", methods[i].M.FullName())
		}
	}
}

func TestOutlinedFunctionShape(t *testing.T) {
	app, _ := genApp(t, 21, 50)
	methods := compile(t, app, true)
	blobs, stats, err := Run(methods, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutlinedFunctions == 0 || len(blobs) != stats.OutlinedFunctions {
		t.Fatalf("no outlined functions: %+v", stats)
	}
	brLR := a64.MustEncode(a64.Inst{Op: a64.OpBr, Rn: a64.LR})
	for _, b := range blobs {
		kind, _ := codegen.UnpackSym(b.Sym)
		if kind != codegen.SymKindOutlined {
			t.Errorf("blob has wrong symbol kind %d", kind)
		}
		if len(b.Code) < 3 {
			t.Errorf("outlined function of %d words cannot be beneficial", len(b.Code))
		}
		if b.Code[len(b.Code)-1] != brLR {
			t.Errorf("outlined function does not end in br x30")
		}
		for _, w := range b.Code[:len(b.Code)-1] {
			inst, ok := a64.Decode(w)
			if !ok {
				t.Errorf("outlined function contains data word %#08x", w)
				continue
			}
			if inst.Op.IsBranch() || inst.Op.IsPCRel() || usesLR(inst) {
				t.Errorf("outlined function contains unsafe instruction %s", inst)
			}
		}
	}
	if stats.NetWordsSaved() <= 0 {
		t.Errorf("net saving %d", stats.NetWordsSaved())
	}
}

func TestStackMapsStayConsistent(t *testing.T) {
	app, _ := genApp(t, 31, 40)
	methods := compile(t, app, true)
	type key struct{ m, i int }
	// Remember which instruction word each safepoint covered.
	wordBefore := map[key]uint32{}
	for mi, cm := range methods {
		for si, s := range cm.StackMap {
			wordBefore[key{mi, si}] = cm.Code[s.NativeOff/4]
		}
	}
	if _, _, err := Run(methods, Options{}); err != nil {
		t.Fatal(err)
	}
	for mi, cm := range methods {
		for si, s := range cm.StackMap {
			if s.NativeOff%4 != 0 || s.NativeOff/4 >= len(cm.Code) {
				t.Fatalf("stack map entry out of range after outlining")
			}
			if got := cm.Code[s.NativeOff/4]; got != wordBefore[key{mi, si}] {
				// bl displacements are rebound at link, so compare opcode
				// class rather than raw bits for external call sites.
				gi, ok1 := a64.Decode(got)
				wi, ok2 := a64.Decode(wordBefore[key{mi, si}])
				if !ok1 || !ok2 || gi.Op != wi.Op {
					t.Errorf("safepoint %d of %s moved to a different instruction", si, cm.M.FullName())
				}
			}
		}
	}
}

func TestParallelLosesSomeReduction(t *testing.T) {
	// §3.4.1: partitioned trees may only lose reduction, never gain.
	app, _ := genApp(t, 41, 80)
	m1 := compile(t, app, true)
	_, s1, err := Run(m1, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	m8 := compile(t, app, true)
	_, s8, err := Run(m8, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s8.NetWordsSaved() > s1.NetWordsSaved() {
		t.Errorf("parallel outlining saved more than global: %d > %d",
			s8.NetWordsSaved(), s1.NetWordsSaved())
	}
	if s1.NetWordsSaved() <= 0 || s8.NetWordsSaved() <= 0 {
		t.Errorf("savings: global %d, parallel %d", s1.NetWordsSaved(), s8.NetWordsSaved())
	}
}

func TestHotFilterReducesLess(t *testing.T) {
	app, man := genApp(t, 51, 80)
	mAll := compile(t, app, true)
	_, sAll, err := Run(mAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hot := map[dex.MethodID]bool{}
	for _, id := range man.Hot {
		hot[id] = true
	}
	mHot := compile(t, app, true)
	_, sHot, err := Run(mHot, Options{Hot: hot})
	if err != nil {
		t.Fatal(err)
	}
	if sHot.HotFiltered == 0 {
		t.Fatal("no methods hot-filtered")
	}
	if sHot.NetWordsSaved() > sAll.NetWordsSaved() {
		t.Errorf("hot filtering increased savings: %d > %d", sHot.NetWordsSaved(), sAll.NetWordsSaved())
	}
}

func TestMultiRoundOutlining(t *testing.T) {
	app, man := genApp(t, 91, 70)
	m1 := compile(t, app, true)
	b1, s1, err := Run(m1, Options{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	m3 := compile(t, app, true)
	b3, s3, err := Run(m3, Options{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s3.NetWordsSaved() < s1.NetWordsSaved() {
		t.Errorf("more rounds saved less: %d < %d", s3.NetWordsSaved(), s1.NetWordsSaved())
	}
	if len(b3) < len(b1) {
		t.Errorf("rounds produced fewer functions: %d < %d", len(b3), len(b1))
	}
	// Symbols must stay unique across rounds.
	seen := map[int]bool{}
	for _, b := range b3 {
		if seen[b.Sym] {
			t.Fatalf("duplicate symbol %s across rounds", codegen.SymName(b.Sym))
		}
		seen[b.Sym] = true
	}
	// And the multi-round result must still be semantically intact.
	img := link(t, m3, b3)
	for _, entry := range man.Drivers {
		diff(t, app, img, entry, []int64{3, 7})
	}
}

func TestAnalyze(t *testing.T) {
	app, _ := genApp(t, 61, 60)
	methods := compile(t, app, false)
	ideal := Analyze(methods, false)
	real := Analyze(methods, true)
	if ideal.EstimatedReduction <= 0 || real.EstimatedReduction <= 0 {
		t.Fatalf("estimates: ideal %f real %f", ideal.EstimatedReduction, real.EstimatedReduction)
	}
	if real.EstimatedReduction > ideal.EstimatedReduction {
		t.Errorf("constrained estimate %f exceeds idealized %f",
			real.EstimatedReduction, ideal.EstimatedReduction)
	}
	if len(ideal.Top) == 0 || ideal.Top[0].Count < ideal.Top[len(ideal.Top)-1].Count {
		t.Errorf("top repeats not sorted by count")
	}
	// Observation 2: short repeats dominate. Compare occurrence mass of
	// lengths 2-4 against lengths >= 10.
	var short, long int64
	for l, c := range ideal.OccurrencesByLength {
		if l <= 4 {
			short += c
		} else if l >= 10 {
			long += c
		}
	}
	if short <= long {
		t.Errorf("short repeats (%d) do not dominate long ones (%d)", short, long)
	}
}

func TestCountPatterns(t *testing.T) {
	// Use the paper's app profile: Figure 4's ordering (Java calls most
	// frequent) holds at the evaluated call-site densities.
	prof, ok := workload.AppByName("Wechat", 0.05)
	if !ok {
		t.Fatal("no Wechat profile")
	}
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	methods := compile(t, app, false)
	pc := CountPatterns(methods)
	if pc.JavaCall == 0 || pc.NativeCall == 0 || pc.StackCheck == 0 {
		t.Fatalf("patterns not found: %+v", pc)
	}
	// Figure 4 ordering in the WeChat study: the Java-call pattern is the
	// most frequent, the stack check and the hottest single entrypoint
	// (pAllocObjectResolved) follow at similar magnitude.
	if pc.JavaCall <= pc.StackCheck || pc.JavaCall <= pc.NativeAlloc {
		t.Errorf("java-call pattern should dominate: %+v", pc)
	}
	if pc.NativeAlloc == 0 || pc.NativeAlloc > pc.NativeCall {
		t.Errorf("alloc-pattern accounting broken: %+v", pc)
	}
	// CTO removes every inline pattern instance.
	ctoMethods := compile(t, app, true)
	pcCTO := CountPatterns(ctoMethods)
	if pcCTO.JavaCall != 0 || pcCTO.NativeCall != 0 || pcCTO.StackCheck != 0 {
		t.Errorf("CTO left inline patterns behind: %+v", pcCTO)
	}
}

func TestCTOReducesTextSize(t *testing.T) {
	app, _ := genApp(t, 81, 80)
	plain := link(t, compile(t, app, false), nil)
	cto := link(t, compile(t, app, true), nil)
	if cto.TextBytes() >= plain.TextBytes() {
		t.Errorf("CTO did not shrink text: %d >= %d", cto.TextBytes(), plain.TextBytes())
	}
}

func TestDedupFunctionsAcrossTrees(t *testing.T) {
	app, man := genApp(t, 131, 80)

	mPlain := compile(t, app, true)
	_, sPlain, err := Run(mPlain, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	mDedup := compile(t, app, true)
	blobs, sDedup, err := RunVerified(mDedup, Options{Parallel: 8, DedupFunctions: true})
	if err != nil {
		t.Fatal(err)
	}
	if sDedup.OutlinedFunctions >= sPlain.OutlinedFunctions {
		t.Errorf("dedup did not merge any functions: %d >= %d",
			sDedup.OutlinedFunctions, sPlain.OutlinedFunctions)
	}
	if sDedup.NetWordsSaved() <= sPlain.NetWordsSaved() {
		t.Errorf("dedup did not improve savings: %d <= %d",
			sDedup.NetWordsSaved(), sPlain.NetWordsSaved())
	}
	// No two kept blobs share a body.
	seen := map[string]bool{}
	for _, b := range blobs {
		key := blobKey(b.Code)
		if seen[key] {
			t.Fatal("duplicate bodies survived dedup")
		}
		seen[key] = true
	}
	// Semantics preserved.
	img := link(t, mDedup, blobs)
	for _, entry := range man.Drivers {
		diff(t, app, img, entry, []int64{5, 3})
	}
}

func TestDetectorBackendsAgree(t *testing.T) {
	// The suffix tree and suffix array expose the same repeat families, so
	// the outliner must achieve identical savings with either backend (the
	// functions may differ in order/identity).
	app, man := genApp(t, 151, 70)
	mTree := compile(t, app, true)
	_, sTree, err := Run(mTree, Options{Detector: DetectorSuffixTree})
	if err != nil {
		t.Fatal(err)
	}
	mArr := compile(t, app, true)
	blobs, sArr, err := RunVerified(mArr, Options{Detector: DetectorSuffixArray})
	if err != nil {
		t.Fatal(err)
	}
	if sArr.OutlinedOccurrences == 0 {
		t.Fatal("array backend outlined nothing")
	}
	// Allow a tiny wobble from tie-breaking differences among
	// equal-benefit overlapping candidates.
	d := sTree.NetWordsSaved() - sArr.NetWordsSaved()
	if d < 0 {
		d = -d
	}
	if d*100 > sTree.NetWordsSaved() {
		t.Errorf("backends disagree: tree saves %d, array saves %d",
			sTree.NetWordsSaved(), sArr.NetWordsSaved())
	}
	img := link(t, mArr, blobs)
	for _, entry := range man.Drivers {
		diff(t, app, img, entry, []int64{9, 2})
	}
}
