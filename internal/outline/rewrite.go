package outline

import (
	"fmt"
	"sort"

	"repro/internal/a64"
	"repro/internal/codegen"
)

// rewriteMethod replaces each planned sequence with a single bl to its
// outlined function (§3.3.3) and patches every PC-relative instruction
// whose displacement the rewrite changed (§3.3.4). Metadata and stack maps
// are remapped so they stay consistent with the new code (§3.5).
func rewriteMethod(cm *codegen.CompiledMethod, plans []rewritePlan) error {
	sort.Slice(plans, func(a, b int) bool { return plans[a].start < plans[b].start })
	for i := 1; i < len(plans); i++ {
		if plans[i].start < plans[i-1].start+plans[i-1].length {
			return fmt.Errorf("overlapping rewrite plans at word %d", plans[i].start)
		}
	}

	old := cm.Code
	n := len(old)
	newIdx := make([]int, n+1) // old word index -> new word index
	newCode := make([]uint32, 0, n)
	var addedExt []a64.ExtRef

	pi := 0
	for w := 0; w < n; {
		if pi < len(plans) && plans[pi].start == w {
			p := plans[pi]
			if w+p.length > n {
				return fmt.Errorf("rewrite plan overruns code (start %d len %d of %d)", w, p.length, n)
			}
			// Interior words map to the bl's position; nothing may target
			// them (targets are separators), but metadata ranges that
			// *enclose* the region still map monotonically.
			for j := 0; j < p.length; j++ {
				newIdx[w+j] = len(newCode)
			}
			addedExt = append(addedExt, a64.ExtRef{InstOff: len(newCode) * a64.WordSize, Symbol: p.sym})
			newCode = append(newCode, a64.MustEncode(a64.Inst{Op: a64.OpBl}))
			w += p.length
			pi++
			continue
		}
		newIdx[w] = len(newCode)
		newCode = append(newCode, old[w])
		w++
	}
	newIdx[n] = len(newCode)

	mapOff := func(off int) (int, error) {
		if off%a64.WordSize != 0 || off/a64.WordSize > n {
			return 0, fmt.Errorf("unmappable offset %#x", off)
		}
		return newIdx[off/a64.WordSize] * a64.WordSize, nil
	}

	// §3.3.4: patch PC-relative instructions.
	for i, r := range cm.Meta.PCRel {
		ni, err := mapOff(r.InstOff)
		if err != nil {
			return err
		}
		nt, err := mapOff(r.TargetOff)
		if err != nil {
			return err
		}
		if nt-ni != r.TargetOff-r.InstOff {
			patched, err := a64.PatchRel(newCode[ni/a64.WordSize], int64(nt-ni))
			if err != nil {
				return fmt.Errorf("patching PC-relative at %#x: %w", r.InstOff, err)
			}
			newCode[ni/a64.WordSize] = patched
		}
		cm.Meta.PCRel[i] = a64.Reloc{InstOff: ni, TargetOff: nt}
	}

	// Remap terminators, embedded data, slow paths, stack maps, and the
	// pre-existing external call sites.
	for i, t := range cm.Meta.Terminators {
		nt, err := mapOff(t)
		if err != nil {
			return err
		}
		cm.Meta.Terminators[i] = nt
	}
	mapRanges := func(rs []a64.Range) error {
		for i, rg := range rs {
			s, err := mapOff(rg.Start)
			if err != nil {
				return err
			}
			e, err := mapOff(rg.End)
			if err != nil {
				return err
			}
			rs[i] = a64.Range{Start: s, End: e}
		}
		return nil
	}
	if err := mapRanges(cm.Meta.EmbeddedData); err != nil {
		return err
	}
	if err := mapRanges(cm.Meta.Slowpaths); err != nil {
		return err
	}
	for i, s := range cm.StackMap {
		no, err := mapOff(s.NativeOff)
		if err != nil {
			return err
		}
		// Safepoints sit on call instructions, which are separators and
		// therefore survive verbatim; a safepoint landing on a different
		// word would corrupt runtime stack walking (§3.5).
		if newCode[no/a64.WordSize] != old[s.NativeOff/a64.WordSize] {
			return fmt.Errorf("stack map entry at %#x no longer matches its instruction", s.NativeOff)
		}
		cm.StackMap[i].NativeOff = no
	}
	for i, e := range cm.Ext {
		no, err := mapOff(e.InstOff)
		if err != nil {
			return err
		}
		cm.Ext[i].InstOff = no
	}
	cm.Ext = append(cm.Ext, addedExt...)
	sort.Slice(cm.Ext, func(a, b int) bool { return cm.Ext[a].InstOff < cm.Ext[b].InstOff })
	cm.Code = newCode
	return nil
}
