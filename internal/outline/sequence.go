package outline

import (
	"sort"
	"time"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/par"
	"repro/internal/suffixarray"
	"repro/internal/suffixtree"
)

// Sequence is one unit of detector input: a run of instruction words plus
// the legality mask that marks positions no repeat may include. The
// interface is deliberately free of compile-time types — the link-time
// path adapts *codegen.CompiledMethod onto it (methodSeq), and the
// post-hoc re-outliner (internal/reoutline) adapts lifted method bodies —
// so both paths share one detection and selection machine.
type Sequence interface {
	// Words returns the unit's instruction words. The slice must stay
	// valid and unchanged for the duration of the detection pass.
	Words() []uint32
	// Mask reports, per word, whether the position is a separator — a
	// word that may not take part in any repeat (embedded data, control
	// transfers, PC-relative sites and targets, and so on). len(Mask())
	// must equal len(Words()).
	Mask() []bool
}

// methodSeq adapts a compiled method (plus its hot-filtering state) onto
// the neutral Sequence interface.
type methodSeq struct {
	cm  *codegen.CompiledMethod
	hot bool
}

func (m methodSeq) Words() []uint32 { return m.cm.Code }
func (m methodSeq) Mask() []bool    { return separatorWords(m.cm, m.hot) }

// position maps one sequence index back to a unit word.
type position struct {
	method int32 // index into the units slice; -1 for separators
	word   int32 // word index within the unit's words
}

// separatorWords computes, for one method, which word positions may not
// take part in any repeat. The compile-time metadata (§3.2) makes this
// exact — no disassembly heuristics:
//
//   - embedded data (literal pools, jump tables);
//   - control-transfer instructions (terminators and calls): an outlined
//     body must be single-entry-single-exit straight-line code, and a bl
//     inside it would clobber the x30 the outlined function returns with;
//   - PC-relative instructions and, crucially, their *targets*: an
//     instruction that is a branch target must survive the rewrite at an
//     addressable offset;
//   - unresolved call sites (bl bound at link time);
//   - everything outside slow paths when the method is hot (§3.4.2);
//   - any instruction reading or writing the link register;
//   - any word that does not decode (defense in depth; with LTBO.1
//     metadata this only triggers for data already excluded).
func separatorWords(cm *codegen.CompiledMethod, hot bool) []bool {
	n := len(cm.Code)
	sep := make([]bool, n)
	markByte := func(off int) {
		if off%a64.WordSize == 0 && off/a64.WordSize < n {
			sep[off/a64.WordSize] = true
		}
	}
	for _, t := range cm.Meta.Terminators {
		markByte(t)
	}
	for _, r := range cm.Meta.PCRel {
		markByte(r.InstOff)
		markByte(r.TargetOff)
	}
	for _, e := range cm.Ext {
		markByte(e.InstOff)
	}
	for _, d := range cm.Meta.EmbeddedData {
		for off := d.Start; off < d.End; off += a64.WordSize {
			markByte(off)
		}
	}
	if hot {
		inSlow := make([]bool, n)
		for _, s := range cm.Meta.Slowpaths {
			for off := s.Start; off < s.End; off += a64.WordSize {
				if off/a64.WordSize < n {
					inSlow[off/a64.WordSize] = true
				}
			}
		}
		for w := 0; w < n; w++ {
			if !inSlow[w] {
				sep[w] = true
			}
		}
	}
	for w := 0; w < n; w++ {
		if sep[w] {
			continue
		}
		inst, ok := a64.Decode(cm.Code[w])
		if !ok || usesLR(inst) {
			sep[w] = true
		}
	}
	return sep
}

// usesLR reports whether any register field of the instruction names x30.
// Over-approximate: fields unused by the op are zero and never 30.
func usesLR(i a64.Inst) bool {
	return i.Rd == a64.LR || i.Rn == a64.LR || i.Rm == a64.LR || i.Rt2 == a64.LR
}

// symbolizer interns instruction words into dense symbols and mints unique
// separator symbols from the same counter, so the two can never collide.
type symbolizer struct {
	dict map[uint32]uint32
	rev  []uint32 // symbol -> original word (separators hold 0)
	next uint32
}

// newSymbolizer returns a symbolizer sized for a sequence of sizeHint
// symbols (the rev table gets one entry per distinct word or separator).
func newSymbolizer(sizeHint int) *symbolizer {
	return &symbolizer{
		dict: make(map[uint32]uint32, 256),
		rev:  make([]uint32, 0, sizeHint),
	}
}

func (s *symbolizer) word(w uint32) uint32 {
	if id, ok := s.dict[w]; ok {
		return id
	}
	id := s.next
	s.next++
	s.dict[w] = id
	s.rev = append(s.rev, w)
	return id
}

func (s *symbolizer) separator() uint32 {
	id := s.next
	s.next++
	s.rev = append(s.rev, 0)
	return id
}

// wordsOf translates a symbol label back to instruction words.
func (s *symbolizer) wordsOf(label []uint32) []uint32 {
	out := make([]uint32, len(label))
	for i, id := range label {
		out[i] = s.rev[id]
	}
	return out
}

// buildSequence symbolizes a group of units into one sequence. The
// per-unit mask scans (metadata walks plus a decode of every word) are
// independent and fan out on the worker pool; the symbol interning that
// follows is inherently sequential — symbol identity depends on
// first-seen order — and stays a serial walk in group order, so the
// sequence is identical for every worker count.
//
// The two phases are timed into st (SepScan, Symbolize) rather than
// traced as spans: this pool is nested inside a group task that already
// owns a worker lane, and spans from a nested pool would interleave with
// the outer tasks on the same lanes. The per-group instant event carries
// these durations instead.
func buildSequence(units []Sequence, group []int, opts Options, st *Stats) ([]uint32, []position) {
	t0 := time.Now()
	seps, _ := par.Map(opts.Workers, len(group), func(i int) ([]bool, error) {
		return units[group[i]].Mask(), nil
	})
	st.SepScan = time.Since(t0)
	t1 := time.Now()
	defer func() { st.Symbolize = time.Since(t1) }()
	// One word per code word plus one separator per unit: exact sizes,
	// so the serial symbolize walk never reallocates.
	total := len(group)
	for _, mi := range group {
		total += len(units[mi].Words())
	}
	sym := newSymbolizer(total)
	seq := make([]uint32, 0, total)
	pos := make([]position, 0, total)
	for gi, mi := range group {
		sep := seps[gi]
		for w, word := range units[mi].Words() {
			if sep[w] {
				seq = append(seq, sym.separator())
				pos = append(pos, position{method: -1})
			} else {
				seq = append(seq, sym.word(word))
				pos = append(pos, position{method: int32(mi), word: int32(w)})
			}
		}
		// Method boundary.
		seq = append(seq, sym.separator())
		pos = append(pos, position{method: -1})
	}
	return seq, pos
}

// repeatCand is one detected repeat, detector-agnostic.
type repeatCand struct {
	length, count int
	ord           int          // deterministic tie-break ordinal
	first         int          // one occurrence start, cheap and deterministic
	occurrences   func() []int // start positions in the sequence
}

// detectRepeats runs the configured detection backend.
func detectRepeats(seq []uint32, opts Options, st *Stats) []repeatCand {
	var cands []repeatCand
	switch opts.Detector {
	case DetectorSuffixArray:
		t0 := time.Now()
		arr := suffixarray.Build(seq)
		st.TreeBuild = time.Since(t0)
		t1 := time.Now()
		for _, rep := range arr.Repeats(opts.MinLength, 2) {
			rep := rep
			cands = append(cands, repeatCand{
				length: rep.Length, count: rep.Count,
				ord:         rep.Occurrences()[0]*1000 + rep.Length,
				first:       rep.First(),
				occurrences: rep.Occurrences,
			})
		}
		st.Detect = time.Since(t1)
	default: // DetectorSuffixTree
		t0 := time.Now()
		tree := suffixtree.Build(seq)
		st.TreeBuild = time.Since(t0)
		t1 := time.Now()
		for _, rep := range tree.Repeats(opts.MinLength, 2) {
			rep := rep
			cands = append(cands, repeatCand{
				length: rep.Length, count: rep.Count, ord: rep.Node,
				first:       tree.FirstOccurrence(rep.Node),
				occurrences: func() []int { return tree.Occurrences(rep.Node) },
			})
		}
		st.Detect = time.Since(t1)
	}
	return cands
}

// outlineGroup runs detection and selection over one unit group and
// returns the functions to create (with their chosen occurrences).
//
// Two detection routes share this entry: the paper's global structure (one
// sequence, one tree, selection in sequence coordinates) and the sharded
// route of shard.go (DetectShards >= 2), which partitions the group's
// sequence construction and detection and then selects globally in unit
// coordinates. With one shard the two routes are byte-identical — the
// property shard_test.go pins — which is what makes DetectShards a tunable
// rather than a fork.
func outlineGroup(units []Sequence, group []int, opts Options) ([]outlinedFunc, Stats, error) {
	if opts.DetectShards > 1 || opts.forceSharded {
		return outlineGroupSharded(units, group, opts)
	}
	var st Stats
	seq, pos := buildSequence(units, group, opts, &st)
	st.SequenceSymbols = len(seq)
	if len(seq) == 0 {
		return nil, st, nil
	}

	repeats := detectRepeats(seq, opts, &st)
	t1 := time.Now()
	// Rank by potential benefit, longest first among ties, the detector's
	// ordinal as the deterministic tie-break.
	sort.Slice(repeats, func(a, b int) bool {
		ba := suffixtree.Benefit(repeats[a].length, repeats[a].count)
		bb := suffixtree.Benefit(repeats[b].length, repeats[b].count)
		if ba != bb {
			return ba > bb
		}
		if repeats[a].length != repeats[b].length {
			return repeats[a].length > repeats[b].length
		}
		return repeats[a].ord < repeats[b].ord
	})

	taken := make([]bool, len(seq))
	var funcs []outlinedFunc
	for _, rep := range repeats {
		if suffixtree.Benefit(rep.length, rep.count) < opts.MinBenefit {
			break // sorted by benefit: nothing below can qualify either
		}
		occs := rep.occurrences()
		sort.Ints(occs)
		var chosen []int
		lastEnd := -1
		for _, o := range occs {
			if o < lastEnd {
				continue // overlaps previous occurrence of this repeat
			}
			free := true
			for p := o; p < o+rep.length; p++ {
				if taken[p] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			chosen = append(chosen, o)
			lastEnd = o + rep.length
		}
		if len(chosen) < 2 || suffixtree.Benefit(rep.length, len(chosen)) < opts.MinBenefit {
			continue
		}
		f := outlinedFunc{}
		first := chosen[0]
		for p := first; p < first+rep.length; p++ {
			f.words = append(f.words, units[pos[p].method].Words()[pos[p].word])
		}
		for _, o := range chosen {
			for p := o; p < o+rep.length; p++ {
				taken[p] = true
			}
			f.occurrences = append(f.occurrences, occurrence{
				method:  int(pos[o].method),
				wordOff: int(pos[o].word),
			})
		}
		funcs = append(funcs, f)
	}
	st.Detect += time.Since(t1)
	return funcs, st, nil
}
