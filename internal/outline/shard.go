package outline

// Sharded repeat detection: the serial suffix-structure stage split into
// DetectShards pieces that fan out on the worker pool.
//
// The paper resolves the global-tree-vs-parallel-trees tension (§3.4.1,
// Table 6) by partitioning the whole problem — each parallel tree selects
// and outlines independently, so repeats spanning trees are lost twice:
// once in detection and once in selection. This file splits only the
// expensive part. Each shard symbolizes and builds a suffix structure over
// a contiguous slice of the group; the candidates are then lifted out of
// shard-local sequence coordinates into method coordinates (which all
// shards share), merged by instruction content, and handed to ONE global
// greedy selection. A repeat seen by several shards keeps all its
// occurrences; only a repeat whose occurrences land in different shards
// with fewer than two per shard is lost. With one shard the route is
// byte-identical to the global path — selection in method coordinates is
// order-isomorphic to selection in sequence coordinates because repeats
// never contain separators, so every occurrence is a contiguous run of one
// method's words and sequence order equals (group order, word) order.

import (
	"sort"
	"time"

	"repro/internal/par"
	"repro/internal/suffixtree"
)

// shardOrdStride prefixes a candidate's detector ordinal with its shard
// index so tie-breaks stay deterministic across shard counts. Sequence
// ordinals are bounded by the sequence length (suffix tree: node index)
// or length*1000 (suffix array), both far under 2^40.
const shardOrdStride = 1 << 40

// shardDetect is one shard's detection product.
type shardDetect struct {
	pos   []position
	cands []repeatCand
	stats Stats
}

// mergedCand is one repeat family in method coordinates, the union of the
// shard-local candidates with identical instruction content.
type mergedCand struct {
	words  []uint32 // the repeat's instruction words
	length int
	count  int // occurrences summed over the constituent shards
	ord    int // lowest shard-prefixed detector ordinal
	parts  []mergedPart
}

// mergedPart points back into one shard's candidate so occurrences can be
// materialized lazily — only for candidates that survive the benefit cut.
type mergedPart struct {
	shard int
	cand  repeatCand
}

// outlineGroupSharded is the DetectShards >= 2 route of outlineGroup (and,
// under Options.forceSharded, the test route at one shard).
func outlineGroupSharded(units []Sequence, group []int, opts Options) ([]outlinedFunc, Stats, error) {
	var st Stats
	n := opts.DetectShards
	if n < 1 {
		n = 1
	}
	if n > len(group) {
		n = len(group)
	}
	if len(group) == 0 {
		return nil, st, nil
	}

	// Contiguous even partition: shard bounds depend only on the group, so
	// the shard a method lands in — and therefore what is detected — never
	// depends on scheduling. Group order (ascending method index) is
	// preserved inside every shard.
	shards, err := par.Map(opts.Workers, n, func(s int) (*shardDetect, error) {
		sub := group[s*len(group)/n : (s+1)*len(group)/n]
		sd := &shardDetect{}
		var seq []uint32
		seq, sd.pos = buildSequence(units, sub, opts, &sd.stats)
		sd.stats.SequenceSymbols = len(seq)
		if len(seq) > 0 {
			sd.cands = detectRepeats(seq, opts, &sd.stats)
		}
		return sd, nil
	})
	if err != nil {
		return nil, st, err
	}
	for _, sd := range shards {
		st.SequenceSymbols += sd.stats.SequenceSymbols
		// Shards overlap on the pool: phase totals take the slowest shard,
		// the same fold runPass applies across groups.
		if sd.stats.SepScan > st.SepScan {
			st.SepScan = sd.stats.SepScan
		}
		if sd.stats.Symbolize > st.Symbolize {
			st.Symbolize = sd.stats.Symbolize
		}
		if sd.stats.TreeBuild > st.TreeBuild {
			st.TreeBuild = sd.stats.TreeBuild
		}
		if sd.stats.Detect > st.Detect {
			st.Detect = sd.stats.Detect
		}
	}

	t1 := time.Now()
	funcs := selectMerged(units, shards, mergeCandidates(units, shards), opts)
	st.Detect += time.Since(t1)
	return funcs, st, nil
}

// mergeCandidates unifies the shard-local candidate sets by instruction
// content. Shards are folded in shard order after the barrier, so the
// output order — and every merged ordinal — is deterministic regardless of
// how the shard tasks were scheduled.
func mergeCandidates(units []Sequence, shards []*shardDetect) []*mergedCand {
	byContent := map[string]*mergedCand{}
	var out []*mergedCand
	for si, sd := range shards {
		for _, c := range sd.cands {
			words := make([]uint32, c.length)
			for k := range words {
				p := sd.pos[c.first+k]
				words[k] = units[p.method].Words()[p.word]
			}
			ord := si*shardOrdStride + c.ord
			key := blobKey(words)
			mc := byContent[key]
			if mc == nil {
				mc = &mergedCand{words: words, length: c.length, ord: ord}
				byContent[key] = mc
				out = append(out, mc)
			} else if ord < mc.ord {
				mc.ord = ord
			}
			mc.count += c.count
			mc.parts = append(mc.parts, mergedPart{shard: si, cand: c})
		}
	}
	return out
}

// selectMerged runs the global greedy selection over the merged candidates
// in unit coordinates. It mirrors outlineGroup's sequence-coordinate
// selection exactly: rank by merged benefit (longest first among ties,
// lowest ordinal last), take occurrences in sequence order, skip overlaps
// with anything already outlined, and emit only families that still clear
// the benefit bar with their surviving occurrences.
func selectMerged(units []Sequence, shards []*shardDetect, cands []*mergedCand, opts Options) []outlinedFunc {
	sort.Slice(cands, func(a, b int) bool {
		ba := suffixtree.Benefit(cands[a].length, cands[a].count)
		bb := suffixtree.Benefit(cands[b].length, cands[b].count)
		if ba != bb {
			return ba > bb
		}
		if cands[a].length != cands[b].length {
			return cands[a].length > cands[b].length
		}
		return cands[a].ord < cands[b].ord
	})

	// Lazily built per-method occupancy, the method-coordinate image of the
	// global path's taken[] over sequence positions.
	taken := map[int][]bool{}
	var funcs []outlinedFunc
	for _, mc := range cands {
		if suffixtree.Benefit(mc.length, mc.count) < opts.MinBenefit {
			break // sorted by benefit: nothing below can qualify either
		}
		occs := make([]occurrence, 0, mc.count)
		for _, part := range mc.parts {
			pos := shards[part.shard].pos
			for _, o := range part.cand.occurrences() {
				occs = append(occs, occurrence{method: int(pos[o].method), wordOff: int(pos[o].word)})
			}
		}
		// Methods are disjoint across shards and ascend within the group,
		// so (method, word) order is exactly the sequence-position order
		// the global path iterates in.
		sort.Slice(occs, func(i, j int) bool {
			if occs[i].method != occs[j].method {
				return occs[i].method < occs[j].method
			}
			return occs[i].wordOff < occs[j].wordOff
		})
		var chosen []occurrence
		lastMethod, lastEnd := -1, -1
		for _, o := range occs {
			if o.method == lastMethod && o.wordOff < lastEnd {
				continue // overlaps previous occurrence of this repeat
			}
			tk := taken[o.method]
			free := true
			for p := o.wordOff; tk != nil && p < o.wordOff+mc.length; p++ {
				if tk[p] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			chosen = append(chosen, o)
			lastMethod, lastEnd = o.method, o.wordOff+mc.length
		}
		if len(chosen) < 2 || suffixtree.Benefit(mc.length, len(chosen)) < opts.MinBenefit {
			continue
		}
		f := outlinedFunc{words: mc.words, occurrences: chosen}
		for _, o := range chosen {
			tk := taken[o.method]
			if tk == nil {
				tk = make([]bool, len(units[o.method].Words()))
				taken[o.method] = tk
			}
			for p := o.wordOff; p < o.wordOff+mc.length; p++ {
				tk[p] = true
			}
		}
		funcs = append(funcs, f)
	}
	return funcs
}
