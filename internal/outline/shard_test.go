package outline

import (
	"bytes"
	"testing"
)

// imageBytes builds one app, compiles it fresh (outlining mutates methods
// in place), outlines under opts, links, and serializes.
func imageBytes(t *testing.T, seed int64, methods int, opts Options) []byte {
	t.Helper()
	app, _ := genApp(t, seed, methods)
	cms := compile(t, app, true)
	blobs, _, err := RunVerified(cms, opts)
	if err != nil {
		t.Fatal(err)
	}
	img := link(t, cms, blobs)
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedOneShardMatchesGlobal pins the property that makes
// DetectShards a tunable rather than a fork: the sharded machinery at one
// shard — forced through the merge and the method-coordinate selection —
// serializes to exactly the bytes of the sequence-coordinate global path.
func TestShardedOneShardMatchesGlobal(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		for _, detector := range []DetectorKind{DetectorSuffixTree, DetectorSuffixArray} {
			base := Options{Detector: detector, Rounds: 2}
			global := imageBytes(t, seed, 120, base)

			forced := base
			forced.DetectShards = 1
			forced.forceSharded = true
			sharded := imageBytes(t, seed, 120, forced)

			if !bytes.Equal(global, sharded) {
				t.Fatalf("seed %d detector %d: sharded(1) image differs from global (%d vs %d bytes)",
					seed, detector, len(sharded), len(global))
			}
		}
	}
}

// TestShardedDeterminism pins the contract for real shard counts: the
// image is byte-identical at every worker width and with several parallel
// trees layered on top.
func TestShardedDeterminism(t *testing.T) {
	base := Options{DetectShards: 4}
	want := imageBytes(t, 3, 150, base)
	for _, workers := range []int{1, 3, 8} {
		opts := base
		opts.Workers = workers
		if got := imageBytes(t, 3, 150, opts); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: sharded image differs", workers)
		}
	}
	opts := base
	opts.Parallel = 3
	treed := imageBytes(t, 3, 150, opts)
	again := imageBytes(t, 3, 150, opts)
	if !bytes.Equal(treed, again) {
		t.Fatal("trees+shards image not reproducible")
	}
}

// TestShardedStillOutlines checks the tradeoff stays a tradeoff: sharded
// detection must still find a substantial share of what the global
// structure finds (it can only lose repeats whose occurrences never pair
// up inside one shard).
func TestShardedStillOutlines(t *testing.T) {
	app, _ := genApp(t, 11, 150)
	cms := compile(t, app, true)
	_, globalStats, err := Run(compile(t, app, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, shardStats, err := Run(cms, Options{DetectShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if globalStats.NetWordsSaved() <= 0 {
		t.Fatalf("global path saved nothing (%d words)", globalStats.NetWordsSaved())
	}
	if got, want := shardStats.NetWordsSaved(), globalStats.NetWordsSaved()/2; got < want {
		t.Fatalf("sharded detection saved %d words, want >= %d (global saved %d)",
			got, want, globalStats.NetWordsSaved())
	}
}
