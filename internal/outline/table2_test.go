package outline

import (
	"testing"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/dex"
)

// TestPaperTable2Example reproduces the paper's Table 2 walk-through
// bit-for-bit. The original sequence is
//
//	0x00: cbz w0, #+0xc      ; branches over the ldr/cmp pair
//	0x04: ldr w2, [x0]       ; the repeated pair to outline
//	0x08: cmp w2, w1
//	0x0c: mov x3, x4
//	0x10: ldr x3, [x0]
//	0x14: ret
//
// After outlining the pair into "MethodOutliner" (code 2 of Table 2:
// ldr; cmp; br x30) and replacing it with one bl (code 3), the cbz's
// displacement is stale; the patch step (code 4) updates it from +0xc to
// +0x8 so it still reaches the mov.
func TestPaperTable2Example(t *testing.T) {
	mkWords := func() []uint32 {
		return []uint32{
			a64.MustEncode(a64.Inst{Op: a64.OpCbz, Rd: a64.X0, Imm: 0xc}),
			a64.MustEncode(a64.Inst{Op: a64.OpLdrImm, Rd: a64.X2, Rn: a64.X0}),                        // ldr w2, [x0]
			a64.MustEncode(a64.Inst{Op: a64.OpSubsReg, Rd: a64.XZR, Rn: a64.X2, Rm: a64.X1}),          // cmp w2, w1
			a64.MustEncode(a64.Inst{Op: a64.OpOrrReg, Sf: true, Rd: a64.X3, Rn: a64.XZR, Rm: a64.X4}), // mov x3, x4
			a64.MustEncode(a64.Inst{Op: a64.OpLdrImm, Sf: true, Rd: a64.X3, Rn: a64.X0}),              // ldr x3, [x0]
			a64.MustEncode(a64.Inst{Op: a64.OpRet, Rn: a64.LR}),
		}
	}
	// The pair must repeat enough for the Figure 2 model to approve
	// (length 2, 4 occurrences: benefit 8 - 7 = 1), so build four methods
	// with the same body.
	var methods []*codegen.CompiledMethod
	for i := 0; i < 4; i++ {
		methods = append(methods, &codegen.CompiledMethod{
			M:    &dex.Method{ID: dex.MethodID(i), Class: "LT", Name: "t"},
			Code: mkWords(),
			Meta: codegen.Meta{
				PCRel:       []a64.Reloc{{InstOff: 0x0, TargetOff: 0xc}},
				Terminators: []int{0x0, 0x14},
			},
		})
	}

	blobs, stats, err := RunVerified(methods, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OutlinedFunctions == 0 {
		t.Fatal("nothing outlined")
	}

	// Code 2: an outlined function holding exactly ldr w2,[x0]; cmp; br x30.
	want2 := []uint32{
		a64.MustEncode(a64.Inst{Op: a64.OpLdrImm, Rd: a64.X2, Rn: a64.X0}),
		a64.MustEncode(a64.Inst{Op: a64.OpSubsReg, Rd: a64.XZR, Rn: a64.X2, Rm: a64.X1}),
		a64.MustEncode(a64.Inst{Op: a64.OpBr, Rn: a64.LR}),
	}
	foundPair := false
	for _, b := range blobs {
		if len(b.Code) == len(want2) {
			same := true
			for i := range want2 {
				same = same && b.Code[i] == want2[i]
			}
			foundPair = foundPair || same
		}
	}
	if !foundPair {
		t.Errorf("Table 2 code 2 (MethodOutliner body) not produced; blobs: %d", len(blobs))
	}

	// Codes 3-4 in every method: cbz patched from +0xc to +0x8, pair
	// replaced by a bl.
	for mi, cm := range methods {
		first, ok := a64.Decode(cm.Code[0])
		if !ok || first.Op != a64.OpCbz {
			t.Fatalf("method %d does not start with cbz", mi)
		}
		if first.Imm != 0x8 {
			t.Errorf("method %d: cbz displacement %#x, want 0x8 (Table 2 code 4)", mi, first.Imm)
		}
		second, ok := a64.Decode(cm.Code[1])
		if !ok || second.Op != a64.OpBl {
			t.Errorf("method %d: word 1 is not the bl call site (Table 2 code 3)", mi)
		}
		// The mov the cbz targets must now sit at offset 0x8.
		target, ok := a64.Decode(cm.Code[2])
		if !ok || target.Op != a64.OpOrrReg || target.Rd != a64.X3 {
			t.Errorf("method %d: cbz no longer reaches the mov", mi)
		}
	}
}
