package outline

import (
	"context"
	"fmt"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/par"
)

// Snapshot captures the pre-outlining state of compiled methods so a
// rewrite can be verified afterwards.
type Snapshot struct {
	codes  [][]uint32
	pcrels [][]a64.Reloc
	native []bool
	indir  []bool
}

// Snap copies what VerifyRewrite needs.
func Snap(methods []*codegen.CompiledMethod) *Snapshot {
	s := &Snapshot{
		codes:  make([][]uint32, len(methods)),
		pcrels: make([][]a64.Reloc, len(methods)),
		native: make([]bool, len(methods)),
		indir:  make([]bool, len(methods)),
	}
	for i, cm := range methods {
		s.codes[i] = append([]uint32(nil), cm.Code...)
		s.pcrels[i] = append([]a64.Reloc(nil), cm.Meta.PCRel...)
		s.native[i] = cm.Meta.IsNative
		s.indir[i] = cm.Meta.HasIndirectJump
	}
	return s
}

// VerifyRewrite checks the §3.3/§3.5 structural invariants of an outlining
// rewrite against the pre-state:
//
//  1. Protected methods (native, indirect-jump) are byte-identical.
//  2. Every rewritten method reconstructs its original instruction stream:
//     replaying the new code and inlining each outlined call's body (minus
//     the trailing br x30) yields the original words, modulo PC-relative
//     displacement patches.
//  3. Every patched PC-relative instruction still refers to the same
//     original instruction word.
//  4. Stack map entries land on call instructions.
//
// It returns the first violation found. Methods replay independently on
// runtime.GOMAXPROCS(0) workers (use VerifyRewriteParallel for an
// explicit width); when several methods are violated, the lowest method
// index's error is reported, exactly as a serial scan would.
func VerifyRewrite(methods []*codegen.CompiledMethod, before *Snapshot, blobs []oat.Blob) error {
	return VerifyRewriteParallel(methods, before, blobs, 0)
}

// VerifyRewriteParallel is VerifyRewrite with an explicit worker count
// (<= 0 selects GOMAXPROCS).
func VerifyRewriteParallel(methods []*codegen.CompiledMethod, before *Snapshot, blobs []oat.Blob, workers int) error {
	return VerifyRewriteTraced(methods, before, blobs, workers, nil)
}

// VerifyRewriteTraced is VerifyRewriteParallel with per-method replay
// spans (category "outline.verify") recorded on the tracer; nil traces
// nothing. Findings are identical either way.
func VerifyRewriteTraced(methods []*codegen.CompiledMethod, before *Snapshot, blobs []oat.Blob, workers int, tracer *obs.Tracer) error {
	return VerifyRewriteCtx(context.Background(), methods, before, blobs, workers, tracer)
}

// VerifyRewriteCtx is VerifyRewriteTraced with cooperative cancellation:
// the per-method replay pool checks ctx before every method and returns
// ctx.Err() when it fires.
func VerifyRewriteCtx(ctx context.Context, methods []*codegen.CompiledMethod, before *Snapshot, blobs []oat.Blob, workers int, tracer *obs.Tracer) error {
	bodyBySym := map[int][]uint32{}
	for _, b := range blobs {
		if len(b.Code) < 1 {
			return fmt.Errorf("outline: empty blob %s", codegen.SymName(b.Sym))
		}
		bodyBySym[b.Sym] = b.Code[:len(b.Code)-1] // strip the br x30
	}
	observer := tracer.PoolObserver("outline.verify", func(mi int) string {
		return methods[mi].M.FullName()
	})
	return par.EachObsCtx(ctx, workers, len(methods), observer, func(mi int) error {
		return verifyMethod(methods[mi], mi, before, bodyBySym)
	})
}

// verifyMethod replays one method's rewrite against the snapshot. It reads
// only the method, the snapshot slot mi, and the (read-only) blob bodies,
// so replays are safe to run concurrently.
func verifyMethod(cm *codegen.CompiledMethod, mi int, before *Snapshot, bodyBySym map[int][]uint32) error {
	name := cm.M.FullName()
	if before.native[mi] || before.indir[mi] {
		if !wordsEqual(cm.Code, before.codes[mi]) {
			return fmt.Errorf("outline: protected method %s was modified", name)
		}
		return nil
	}

	// Reconstruct the original stream. Ext entries are sorted by the
	// rewriter; outlined call sites have SymKindOutlined symbols (or
	// SymKindReoutlined when the post-hoc re-outliner drove the rewrite).
	outlinedAt := map[int]int{} // new word index -> symbol
	for _, e := range cm.Ext {
		if kind, _ := codegen.UnpackSym(e.Symbol); kind == codegen.SymKindOutlined || kind == codegen.SymKindReoutlined {
			outlinedAt[e.InstOff/a64.WordSize] = e.Symbol
		}
	}
	var rebuilt []uint32
	newToOld := make(map[int]int) // new word index -> rebuilt (old) word index
	for w := 0; w < len(cm.Code); w++ {
		newToOld[w] = len(rebuilt)
		if sym, ok := outlinedAt[w]; ok {
			body, found := bodyBySym[sym]
			if !found {
				return fmt.Errorf("outline: %s calls unknown %s", name, codegen.SymName(sym))
			}
			rebuilt = append(rebuilt, body...)
			continue
		}
		rebuilt = append(rebuilt, cm.Code[w])
	}
	orig := before.codes[mi]
	if len(rebuilt) != len(orig) {
		return fmt.Errorf("outline: %s reconstructs to %d words, original %d", name, len(rebuilt), len(orig))
	}
	// Identify positions whose displacement was legitimately patched.
	patched := map[int]bool{}
	for _, r := range cm.Meta.PCRel {
		patched[newToOld[r.InstOff/a64.WordSize]] = true
	}
	for w := range rebuilt {
		if rebuilt[w] == orig[w] {
			continue
		}
		if !patched[w] {
			return fmt.Errorf("outline: %s word %d changed (%#08x -> %#08x) without being a PC-relative patch",
				name, w, orig[w], rebuilt[w])
		}
		// A patched word must differ only in its displacement field:
		// re-patching the original with the new displacement must
		// reproduce the new word.
		ni, ok := a64.Decode(rebuilt[w])
		if !ok {
			return fmt.Errorf("outline: %s patched word %d does not decode", name, w)
		}
		same, err := a64.PatchRel(orig[w], ni.Imm)
		if err != nil || same != rebuilt[w] {
			return fmt.Errorf("outline: %s word %d patch altered more than the displacement", name, w)
		}
	}

	// PC-relative instructions must keep their logical targets: the
	// new target word (or the outlined body head) must equal the old
	// target word. Index the pre-state relocs by instruction word once
	// (each instruction has at most one reloc) so the check is linear
	// in the reloc count rather than quadratic.
	origTarget := make(map[int]int, len(before.pcrels[mi]))
	for _, orr := range before.pcrels[mi] {
		origTarget[orr.InstOff/a64.WordSize] = orr.TargetOff / a64.WordSize
	}
	for _, r := range cm.Meta.PCRel {
		oldInst := newToOld[r.InstOff/a64.WordSize]
		oldTarget := newToOld[r.TargetOff/a64.WordSize]
		want, found := origTarget[oldInst]
		if !found {
			return fmt.Errorf("outline: %s has a PC-relative at new offset %#x with no pre-state counterpart",
				name, r.InstOff)
		}
		if want != oldTarget {
			return fmt.Errorf("outline: %s PC-relative at old word %d retargeted from %d to %d",
				name, oldInst, want, oldTarget)
		}
	}

	// Stack maps sit on calls.
	for _, s := range cm.StackMap {
		i, ok := a64.Decode(cm.Code[s.NativeOff/a64.WordSize])
		if !ok || (i.Op != a64.OpBl && i.Op != a64.OpBlr) {
			return fmt.Errorf("outline: %s safepoint at %#x is not a call", name, s.NativeOff)
		}
	}
	return nil
}

// RunVerified is Run followed by VerifyRewrite against an automatic
// snapshot; intended for tooling and tests that want the §3.5 consistency
// guarantees checked explicitly.
func RunVerified(methods []*codegen.CompiledMethod, opts Options) ([]oat.Blob, *Stats, error) {
	return RunVerifiedCtx(context.Background(), methods, opts)
}

// RunVerifiedCtx is RunVerified with cooperative cancellation threaded
// through both the outliner and the rewrite verification; see RunCtx.
func RunVerifiedCtx(ctx context.Context, methods []*codegen.CompiledMethod, opts Options) ([]oat.Blob, *Stats, error) {
	snap := Snap(methods)
	blobs, stats, err := RunCtx(ctx, methods, opts)
	if err != nil {
		return nil, stats, err
	}
	if err := VerifyRewriteCtx(ctx, methods, snap, blobs, opts.Workers, opts.Tracer); err != nil {
		return nil, stats, err
	}
	return blobs, stats, nil
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
