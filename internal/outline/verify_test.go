package outline

import (
	"strings"
	"testing"

	"repro/internal/a64"
	"repro/internal/codegen"
	"repro/internal/oat"
)

func TestRunVerifiedAcceptsHonestRewrites(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		app, _ := genApp(t, 100+seed, 60)
		methods := compile(t, app, true)
		blobs, stats, err := RunVerified(methods, Options{Parallel: 4, Rounds: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.OutlinedFunctions == 0 || len(blobs) == 0 {
			t.Fatalf("seed %d: nothing outlined", seed)
		}
	}
}

// TestVerifyRewriteCatchesCorruption plants defects into an honest rewrite
// and checks the verifier reports each.
func TestVerifyRewriteCatchesCorruption(t *testing.T) {
	setup := func() ([]*codegen.CompiledMethod, *Snapshot, []oat.Blob, int) {
		app, _ := genApp(t, 77, 60)
		methods := compile(t, app, true)
		snap := Snap(methods)
		blobs, _, err := Run(methods, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Find a method with an outlined call site.
		victim := -1
		for mi, cm := range methods {
			for _, e := range cm.Ext {
				if kind, _ := codegen.UnpackSym(e.Symbol); kind == codegen.SymKindOutlined {
					victim = mi
				}
			}
		}
		if victim == -1 {
			t.Fatal("no outlined call sites")
		}
		return methods, snap, blobs, victim
	}

	t.Run("honest passes", func(t *testing.T) {
		methods, snap, blobs, _ := setup()
		if err := VerifyRewrite(methods, snap, blobs); err != nil {
			t.Fatalf("honest rewrite rejected: %v", err)
		}
	})

	t.Run("corrupted blob body", func(t *testing.T) {
		methods, snap, blobs, _ := setup()
		blobs[0].Code[0] = a64.MustEncode(a64.Inst{Op: a64.OpNop})
		err := VerifyRewrite(methods, snap, blobs)
		if err == nil {
			t.Fatal("corrupted blob accepted")
		}
	})

	t.Run("corrupted method word", func(t *testing.T) {
		methods, snap, blobs, victim := setup()
		// Overwrite a non-call word with a nop.
		cm := methods[victim]
		for w := range cm.Code {
			if inst, ok := a64.Decode(cm.Code[w]); ok && inst.Op == a64.OpMovz {
				cm.Code[w] = a64.MustEncode(a64.Inst{Op: a64.OpNop})
				break
			}
		}
		if err := VerifyRewrite(methods, snap, blobs); err == nil {
			t.Fatal("corrupted method accepted")
		}
	})

	t.Run("protected method touched", func(t *testing.T) {
		methods, snap, blobs, _ := setup()
		for _, cm := range methods {
			if cm.Meta.IsNative {
				cm.Code[0] = a64.MustEncode(a64.Inst{Op: a64.OpNop})
				break
			}
		}
		err := VerifyRewrite(methods, snap, blobs)
		if err == nil || !strings.Contains(err.Error(), "protected") {
			t.Fatalf("modified native method not reported: %v", err)
		}
	})

	t.Run("retargeted branch", func(t *testing.T) {
		methods, snap, blobs, _ := setup()
		// Find a method with a conditional branch and bend its displacement.
		for _, cm := range methods {
			if cm.Meta.IsNative || cm.Meta.HasIndirectJump || len(cm.Meta.PCRel) == 0 {
				continue
			}
			r := cm.Meta.PCRel[0]
			w := r.InstOff / 4
			inst, ok := a64.Decode(cm.Code[w])
			if !ok {
				continue
			}
			patched, err := a64.PatchRel(cm.Code[w], inst.Imm+8)
			if err != nil {
				continue
			}
			cm.Code[w] = patched
			cm.Meta.PCRel[0].TargetOff += 8
			break
		}
		if err := VerifyRewrite(methods, snap, blobs); err == nil {
			t.Fatal("retargeted branch accepted")
		}
	})
}
