package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapCtxCancelStopsPromptly proves the daemon's cancellation story at
// the pool level: with workers mid-task when the context is cancelled,
// the in-flight tasks finish, no new task starts, and the call reports
// ctx.Err().
func TestMapCtxCancelStopsPromptly(t *testing.T) {
	const n, workers = 1000, 4
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := MapCtx(ctx, workers, n, func(i int) (int, error) {
		if started.Add(1) == workers {
			// The pool is saturated: every worker is inside a task.
			cancel()
		}
		// Hold the task open until cancellation so the pool cannot race
		// ahead of the cancel; tasks end only after ctx is done.
		<-ctx.Done()
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("all %d tasks ran despite cancellation", got)
	} else if got > workers {
		t.Fatalf("%d tasks started after the pool saturated (workers=%d): cancellation was not checked at pickup", got, workers)
	}
}

// TestMapCtxDeadline exercises the deadline path the per-job timeouts
// use: an expired deadline stops the batch and surfaces DeadlineExceeded.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 2, 10_000, func(i int) (int, error) {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := ran.Load(); got >= 10_000 {
		t.Fatalf("all tasks ran despite the deadline")
	}
}

// TestMapCtxSerialCancel covers the w<=1 fast path, which checks the
// context between tasks rather than at pool pickup.
func TestMapCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	_, err := MapCtx(ctx, 1, 100, func(i int) (int, error) {
		ran++
		if i == 3 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 4 {
		t.Fatalf("ran %d tasks, want exactly 4 (cancel observed before task 4)", ran)
	}
}

// TestMapCtxBackgroundMatchesMap pins that an un-cancellable context is
// free: results and errors are exactly Map's.
func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) {
		if i == 7 {
			return 0, errors.New("boom")
		}
		return i * i, nil
	}
	for _, w := range []int{1, 4} {
		gotC, errC := MapCtx(context.Background(), w, 6, fn)
		got, err := Map(w, 6, fn)
		if (err == nil) != (errC == nil) {
			t.Fatalf("w=%d: error mismatch: %v vs %v", w, err, errC)
		}
		for i := range got {
			if got[i] != gotC[i] {
				t.Fatalf("w=%d: result %d mismatch: %d vs %d", w, i, got[i], gotC[i])
			}
		}
		if _, err := MapCtx(context.Background(), w, 10, fn); err == nil || err.Error() != "boom" {
			t.Fatalf("w=%d: lowest-index error lost: %v", w, err)
		}
	}
}

// TestEachCtxCancel covers the Each wrapper.
func TestEachCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := EachCtx(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran on a pre-cancelled context", ran.Load())
	}
}
