// Package par is the bounded worker pool the per-method pipeline stages
// fan out on. The paper's production blocker is build time (Table 6: the
// global suffix tree alone costs +489.5%), and every stage that works on
// one method at a time — HGraph optimization + code generation, sequence
// symbolization, rewrite verification, image linting — is embarrassingly
// parallel. What makes a pool usable for a *build* tool, though, is
// determinism: the output (and the reported error) must be byte-identical
// whether the pool runs 1 worker or 64. The helpers here guarantee that
// by construction:
//
//   - results land at their input index, never in completion order;
//   - when several inputs fail, the error of the lowest index wins, so a
//     parallel run reports exactly the failure a serial run would;
//   - the worker count changes scheduling only, never the work done.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything positive is returned unchanged. Every
// stage of the pipeline funnels its Config/Options width through this so
// "0 means the machine" is one rule, defined once.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results indexed by i.
//
// Determinism contract: out[i] depends only on fn(i); if any calls fail,
// the returned error is the one from the lowest failing index. A serial
// run stops at the first failure, a parallel run completes the batch and
// then selects the same error — either way the caller observes identical
// results for every worker count.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Each is Map for side-effecting stages: fn(i) must touch only state
// owned by index i. The same lowest-index-error rule applies.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
