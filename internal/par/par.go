// Package par is the bounded worker pool the per-method pipeline stages
// fan out on. The paper's production blocker is build time (Table 6: the
// global suffix tree alone costs +489.5%), and every stage that works on
// one method at a time — HGraph optimization + code generation, sequence
// symbolization, rewrite verification, image linting — is embarrassingly
// parallel. What makes a pool usable for a *build* tool, though, is
// determinism: the output (and the reported error) must be byte-identical
// whether the pool runs 1 worker or 64. The helpers here guarantee that
// by construction:
//
//   - results land at their input index, never in completion order;
//   - when several inputs fail, the error of the lowest index wins, so a
//     parallel run reports exactly the failure a serial run would;
//   - the worker count changes scheduling only, never the work done.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything positive is returned unchanged. Every
// stage of the pipeline funnels its Config/Options width through this so
// "0 means the machine" is one rule, defined once.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// TaskObserver is the pool's telemetry hook: called once per completed
// task with the worker that ran it (0..W-1), the task index, how long the
// task waited for a worker slot (measured from batch submission), and how
// long it ran. A nil observer disables all timing on the hot path. The
// observer is called concurrently from pool goroutines and must be safe
// for concurrent use; it must only observe — a pool user's determinism
// contract assumes the observer feeds nothing back into the work.
// obs.Tracer.PoolObserver vends a compatible callback.
type TaskObserver func(worker, index int, queueWait, run time.Duration)

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results indexed by i.
//
// Determinism contract: out[i] depends only on fn(i); if any calls fail,
// the returned error is the one from the lowest failing index. A serial
// run stops at the first failure, a parallel run completes the batch and
// then selects the same error — either way the caller observes identical
// results for every worker count.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapObs(workers, n, nil, fn)
}

// MapObs is Map with a per-task observer. The observer changes nothing
// about scheduling or results; with obs == nil the timing calls are
// skipped entirely, so Map pays no telemetry cost.
func MapObs[T any](workers, n int, obs TaskObserver, fn func(i int) (T, error)) ([]T, error) {
	return MapObsCtx(context.Background(), workers, n, obs, fn)
}

// MapCtx is Map with cooperative cancellation: the pool checks ctx before
// picking up every task, so a cancelled or deadline-expired context stops
// the batch at task granularity. Tasks already running are never
// interrupted (fn receives no context; pass one through a closure if the
// work itself should observe it), but no new task starts, and the call
// returns ctx.Err(). context.Background() restores Map's behaviour
// exactly.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapObsCtx(ctx, workers, n, nil, fn)
}

// MapObsCtx is the full-generality pool entry point: MapObs plus the
// MapCtx cancellation check.
//
// Cancellation contract: when ctx is cancelled before every task has been
// picked up, the call returns (nil, ctx.Err()) — the batch is incomplete,
// so no partial results escape and the context error wins over any task
// error. When every task completed before cancellation was observed, the
// normal Map contract applies (results indexed by i, lowest failing
// index's error).
func MapObsCtx[T any](ctx context.Context, workers, n int, obs TaskObserver, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if obs == nil {
				v, err := fn(i)
				if err != nil {
					return nil, err
				}
				out[i] = v
				continue
			}
			// Serial queue wait: time spent behind earlier tasks.
			pick := time.Now()
			v, err := fn(i)
			obs(0, i, pick.Sub(t0), time.Since(pick))
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	// Workers claim index *ranges*, not single indices: one shared-counter
	// RMW per batch instead of per task keeps the cache line holding next
	// out of the hot path when tasks are microseconds long. The batch is
	// sized so every worker still makes ~8 trips to the counter, which
	// bounds tail imbalance to batch/n of the work.
	batch := n / (w * 8)
	if batch < 1 {
		batch = 1
	} else if batch > 64 {
		batch = 64
	}
	// Cancellation is probed per *item* — the pool's contract is that no
	// task starts after cancellation is observable, batching or not — but
	// through the Done channel, fetched once: a non-blocking receive costs
	// a few atomics where ctx.Err() takes a mutex on every probe. A nil
	// Done (context.Background) skips the probe entirely, so the
	// un-cancellable case pays nothing.
	done := ctx.Done()
	errs := make([]error, n)
	var next atomic.Int64
	var stopped atomic.Bool // a worker saw cancellation and skipped work
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(batch)))
				lo := hi - batch
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if done != nil {
						select {
						case <-done:
							stopped.Store(true)
							return
						default:
						}
					}
					if obs == nil {
						out[i], errs[i] = fn(i)
						continue
					}
					pick := time.Now()
					out[i], errs[i] = fn(i)
					obs(worker, i, pick.Sub(t0), time.Since(pick))
				}
			}
		}(g)
	}
	wg.Wait()
	if stopped.Load() {
		return nil, ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Each is Map for side-effecting stages: fn(i) must touch only state
// owned by index i. The same lowest-index-error rule applies.
func Each(workers, n int, fn func(i int) error) error {
	return EachObs(workers, n, nil, fn)
}

// EachObs is Each with a per-task observer; see MapObs.
func EachObs(workers, n int, obs TaskObserver, fn func(i int) error) error {
	_, err := MapObs(workers, n, obs, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// EachCtx is Each with the MapCtx cancellation contract.
func EachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return EachObsCtx(ctx, workers, n, nil, fn)
}

// EachObsCtx is EachObs with the MapCtx cancellation contract.
func EachObsCtx(ctx context.Context, workers, n int, obs TaskObserver, fn func(i int) error) error {
	_, err := MapObsCtx(ctx, workers, n, obs, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
