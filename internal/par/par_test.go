package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

// TestMapDeterministicOrder checks that results land at their input index
// for a wide spread of worker counts and sizes.
func TestMapDeterministicOrder(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			got, err := Map(w, n, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", w, n, err)
			}
			if len(got) != n {
				t.Fatalf("w=%d n=%d: %d results", w, n, len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("w=%d n=%d: out[%d] = %d, want %d", w, n, i, v, i*i)
				}
			}
		}
	}
}

// TestMapLowestErrorWins checks that the reported error is the lowest
// failing index's for every worker count, matching the serial run.
func TestMapLowestErrorWins(t *testing.T) {
	fail := map[int]bool{3: true, 41: true, 97: true}
	want := "input 3 failed"
	for _, w := range []int{1, 2, 8, 32} {
		_, err := Map(w, 100, func(i int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("input %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != want {
			t.Errorf("w=%d: err = %v, want %q", w, err, want)
		}
	}
}

// TestMapRunsEverything checks that a parallel Map visits every index
// exactly once.
func TestMapRunsEverything(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	if err := Each(8, n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

// TestBatchedClaimCoversOddSizes sweeps (n, workers) shapes where the
// batched index-range pickup has ragged tails — n not divisible by the
// batch, batches wider than the remainder, more workers than batches —
// and checks every index still runs exactly once.
func TestBatchedClaimCoversOddSizes(t *testing.T) {
	for _, n := range []int{1, 2, 7, 63, 64, 65, 500, 1023, 4099} {
		for _, w := range []int{2, 3, 8, 16} {
			counts := make([]atomic.Int32, n)
			if err := Each(w, n, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("n=%d w=%d: index %d ran %d times", n, w, i, c)
				}
			}
		}
	}
}

// TestEachError checks the Each wrapper propagates failures.
func TestEachError(t *testing.T) {
	err := Each(4, 10, func(i int) error {
		if i >= 5 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom 5" {
		t.Errorf("err = %v, want boom 5", err)
	}
	if err := Each(4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("clean Each: %v", err)
	}
}

// TestMapObsObservesEveryTask checks that the observer fires exactly once
// per index with a valid worker id, at every pool width including the
// serial fast path, and that results are unchanged by observation.
func TestMapObsObservesEveryTask(t *testing.T) {
	const n = 200
	for _, w := range []int{1, 2, 8} {
		var mu sync.Mutex
		seen := make(map[int]int) // index -> observations
		workerMax := 0
		obs := func(worker, index int, queueWait, run time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			seen[index]++
			if worker > workerMax {
				workerMax = worker
			}
			if queueWait < 0 || run < 0 {
				t.Errorf("w=%d: negative timing for index %d: queue %v run %v", w, index, queueWait, run)
			}
		}
		got, err := MapObs(w, n, obs, func(i int) (int, error) { return i * 3, nil })
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("w=%d: out[%d] = %d", w, i, v)
			}
		}
		if len(seen) != n {
			t.Errorf("w=%d: observed %d distinct indices, want %d", w, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Errorf("w=%d: index %d observed %d times", w, i, c)
			}
		}
		bound := Workers(w)
		if bound > n {
			bound = n
		}
		if workerMax >= bound {
			t.Errorf("w=%d: worker id %d out of range [0,%d)", w, workerMax, bound)
		}
	}
}

// TestMapObsErrorStillObserved checks the lowest-index error survives with
// an observer attached, and the serial path observes the failing task.
func TestMapObsErrorStillObserved(t *testing.T) {
	for _, w := range []int{1, 4} {
		var calls atomic.Int32
		obs := func(worker, index int, queueWait, run time.Duration) { calls.Add(1) }
		_, err := MapObs(w, 50, obs, func(i int) (int, error) {
			if i == 7 || i == 31 {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail 7" {
			t.Errorf("w=%d: err = %v, want fail 7", w, err)
		}
		if calls.Load() == 0 {
			t.Errorf("w=%d: observer never called", w)
		}
	}
}

// TestEachObs checks the Each wrapper forwards the observer.
func TestEachObs(t *testing.T) {
	var calls atomic.Int32
	err := EachObs(3, 20, func(worker, index int, queueWait, run time.Duration) {
		calls.Add(1)
	}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 {
		t.Errorf("observer called %d times, want 20", calls.Load())
	}
}
