// Package profiler models simpleperf-based collection of per-function
// execution time (paper §3.4.2, Figure 6): the emulator's instruction
// stream is sampled periodically, samples are attributed to methods by PC
// range, and the hot set is the smallest set of top functions covering a
// target fraction (80% in the paper) of total samples.
package profiler

import (
	"fmt"
	"sort"

	"repro/internal/abi"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/oat"
	"repro/internal/workload"
)

// FunctionProfile is one method's sample count.
type FunctionProfile struct {
	Method  dex.MethodID
	Samples int64
}

// Profile is the aggregated result of profiling a script.
type Profile struct {
	TotalSamples int64
	OtherSamples int64 // thunks, outlined functions: no owning method
	Functions    []FunctionProfile
}

// DefaultSamplePeriod is the instruction-sampling period. A prime keeps
// the sampler from phase-locking with loop bodies.
const DefaultSamplePeriod = 127

// Collect executes the script on the image, sampling every period
// instructions. period <= 0 selects DefaultSamplePeriod.
func Collect(img *oat.Image, script []workload.Run, period int64) (*Profile, error) {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	if len(script) == 0 {
		return nil, fmt.Errorf("profiler: empty script")
	}

	// Method lookup by text offset: records are laid out in ascending
	// offset order with thunks/outlined functions before them.
	starts := make([]int, len(img.Methods))
	for i, m := range img.Methods {
		starts[i] = m.Offset
	}
	methodAt := func(pc int64) (dex.MethodID, bool) {
		off := int(pc - abi.TextBase)
		i := sort.SearchInts(starts, off+1) - 1
		if i < 0 {
			return 0, false
		}
		m := img.Methods[i]
		if off >= m.Offset+m.Size {
			return 0, false
		}
		return m.ID, true
	}

	samples := make(map[dex.MethodID]int64)
	var other, total int64
	machine := emu.New(img)
	var countdown int64
	machine.Hook = func(pc int64) {
		countdown++
		if countdown < period {
			return
		}
		countdown = 0
		total++
		if id, ok := methodAt(pc); ok {
			samples[id]++
		} else {
			other++
		}
	}
	for _, r := range script {
		if _, err := machine.Run(r.Entry, r.Args[:]); err != nil {
			return nil, fmt.Errorf("profiler: run m%d: %w", r.Entry, err)
		}
	}

	p := &Profile{TotalSamples: total, OtherSamples: other}
	for id, s := range samples {
		p.Functions = append(p.Functions, FunctionProfile{Method: id, Samples: s})
	}
	sort.Slice(p.Functions, func(a, b int) bool {
		if p.Functions[a].Samples != p.Functions[b].Samples {
			return p.Functions[a].Samples > p.Functions[b].Samples
		}
		return p.Functions[a].Method < p.Functions[b].Method
	})
	return p, nil
}

// HotSet returns the smallest set of top functions whose samples cover
// frac of all method-attributed samples — the §3.4.2 rule with frac =
// 0.8. Collect returns Functions sorted by descending samples, but a
// caller-constructed or deserialized profile need not be: HotSet sorts a
// local copy (samples descending, MethodID ascending on ties) so the hot
// set never depends on the input order, and p is left untouched.
func (p *Profile) HotSet(frac float64) map[dex.MethodID]bool {
	hot := make(map[dex.MethodID]bool)
	fns := append([]FunctionProfile(nil), p.Functions...)
	sort.Slice(fns, func(a, b int) bool {
		if fns[a].Samples != fns[b].Samples {
			return fns[a].Samples > fns[b].Samples
		}
		return fns[a].Method < fns[b].Method
	})
	var methodTotal int64
	for _, f := range fns {
		methodTotal += f.Samples
	}
	if methodTotal == 0 {
		return hot
	}
	target := int64(frac * float64(methodTotal))
	var acc int64
	for _, f := range fns {
		if acc >= target {
			break
		}
		hot[f.Method] = true
		acc += f.Samples
	}
	return hot
}
