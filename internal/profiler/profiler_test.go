package profiler

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/workload"
)

func buildImage(t *testing.T) (*oat.Image, *workload.Manifest) {
	t.Helper()
	app, man, err := workload.Generate(workload.Profile{
		Name: "p", Seed: 13, Methods: 100, HotFrac: 0.05, HotLoopIters: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	img, err := oat.Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	return img, man
}

func TestCollectAttributesSamples(t *testing.T) {
	img, man := buildImage(t)
	prof, err := Collect(img, workload.Script(man, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalSamples == 0 || len(prof.Functions) == 0 {
		t.Fatalf("no samples: %+v", prof)
	}
	var sum int64
	for i, f := range prof.Functions {
		sum += f.Samples
		if i > 0 && f.Samples > prof.Functions[i-1].Samples {
			t.Fatal("functions not sorted by samples")
		}
	}
	if sum+prof.OtherSamples != prof.TotalSamples {
		t.Errorf("samples do not add up: %d + %d != %d", sum, prof.OtherSamples, prof.TotalSamples)
	}
}

func TestHotSetCoverageRule(t *testing.T) {
	img, man := buildImage(t)
	prof, err := Collect(img, workload.Script(man, 2, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := prof.HotSet(0.8)
	var methodTotal, hotTotal int64
	for _, f := range prof.Functions {
		methodTotal += f.Samples
		if hot[f.Method] {
			hotTotal += f.Samples
		}
	}
	if float64(hotTotal) < 0.8*float64(methodTotal) {
		t.Errorf("hot set covers %d of %d samples (< 80%%)", hotTotal, methodTotal)
	}
	// Removing the smallest hot member must drop coverage below 80%:
	// minimality of the prefix rule.
	var smallest dex.MethodID
	var min int64 = 1 << 62
	for _, f := range prof.Functions {
		if hot[f.Method] && f.Samples < min {
			min, smallest = f.Samples, f.Method
		}
	}
	if float64(hotTotal-min) >= 0.8*float64(methodTotal) {
		t.Errorf("hot set not minimal: dropping m%d keeps coverage", smallest)
	}
}

func TestHotSetEmptyProfile(t *testing.T) {
	p := &Profile{}
	if len(p.HotSet(0.8)) != 0 {
		t.Error("empty profile produced a hot set")
	}
}

func TestCollectEmptyScript(t *testing.T) {
	img, _ := buildImage(t)
	if _, err := Collect(img, nil, 0); err == nil {
		t.Error("empty script accepted")
	}
}

func TestCustomPeriod(t *testing.T) {
	img, man := buildImage(t)
	script := workload.Script(man, 1, 3)
	coarse, err := Collect(img, script, 1009)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Collect(img, script, 31)
	if err != nil {
		t.Fatal(err)
	}
	if fine.TotalSamples <= coarse.TotalSamples {
		t.Errorf("finer period took fewer samples: %d <= %d", fine.TotalSamples, coarse.TotalSamples)
	}
}
