package profiler

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/workload"
)

func buildImage(t *testing.T) (*oat.Image, *workload.Manifest) {
	t.Helper()
	app, man, err := workload.Generate(workload.Profile{
		Name: "p", Seed: 13, Methods: 100, HotFrac: 0.05, HotLoopIters: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	methods, err := codegen.Compile(app, codegen.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	img, err := oat.Link(methods, nil)
	if err != nil {
		t.Fatal(err)
	}
	return img, man
}

func TestCollectAttributesSamples(t *testing.T) {
	img, man := buildImage(t)
	prof, err := Collect(img, workload.Script(man, 2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalSamples == 0 || len(prof.Functions) == 0 {
		t.Fatalf("no samples: %+v", prof)
	}
	var sum int64
	for i, f := range prof.Functions {
		sum += f.Samples
		if i > 0 && f.Samples > prof.Functions[i-1].Samples {
			t.Fatal("functions not sorted by samples")
		}
	}
	if sum+prof.OtherSamples != prof.TotalSamples {
		t.Errorf("samples do not add up: %d + %d != %d", sum, prof.OtherSamples, prof.TotalSamples)
	}
}

func TestHotSetCoverageRule(t *testing.T) {
	img, man := buildImage(t)
	prof, err := Collect(img, workload.Script(man, 2, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := prof.HotSet(0.8)
	var methodTotal, hotTotal int64
	for _, f := range prof.Functions {
		methodTotal += f.Samples
		if hot[f.Method] {
			hotTotal += f.Samples
		}
	}
	if float64(hotTotal) < 0.8*float64(methodTotal) {
		t.Errorf("hot set covers %d of %d samples (< 80%%)", hotTotal, methodTotal)
	}
	// Removing the smallest hot member must drop coverage below 80%:
	// minimality of the prefix rule.
	var smallest dex.MethodID
	var min int64 = 1 << 62
	for _, f := range prof.Functions {
		if hot[f.Method] && f.Samples < min {
			min, smallest = f.Samples, f.Method
		}
	}
	if float64(hotTotal-min) >= 0.8*float64(methodTotal) {
		t.Errorf("hot set not minimal: dropping m%d keeps coverage", smallest)
	}
}

// TestHotSetShuffledProfile feeds HotSet a profile whose function list is
// NOT sorted by descending samples — the shape a caller-constructed or
// future-deserialized profile has. The hot set must equal the one computed
// from the sorted profile, and the input must not be reordered in place.
func TestHotSetShuffledProfile(t *testing.T) {
	sorted := &Profile{
		TotalSamples: 1000,
		Functions: []FunctionProfile{
			{Method: 4, Samples: 500},
			{Method: 1, Samples: 300},
			{Method: 7, Samples: 150},
			{Method: 2, Samples: 40},
			{Method: 9, Samples: 10},
		},
	}
	// Worst-case shuffle: ascending by samples, so a prefix walk over the
	// raw slice would pick the *coldest* functions first.
	shuffled := &Profile{
		TotalSamples: 1000,
		Functions: []FunctionProfile{
			{Method: 9, Samples: 10},
			{Method: 2, Samples: 40},
			{Method: 7, Samples: 150},
			{Method: 1, Samples: 300},
			{Method: 4, Samples: 500},
		},
	}
	want := sorted.HotSet(0.8)
	got := shuffled.HotSet(0.8)
	if len(want) == 0 {
		t.Fatal("sorted profile produced an empty hot set")
	}
	if len(got) != len(want) {
		t.Fatalf("shuffled hot set has %d members, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("shuffled hot set is missing m%d", id)
		}
	}
	// 500+300 = 800 covers exactly 80%: the hot set is {m4, m1}.
	if !got[4] || !got[1] || len(got) != 2 {
		t.Errorf("hot set = %v, want {m4, m1}", got)
	}
	if shuffled.Functions[0].Method != 9 {
		t.Error("HotSet reordered the caller's Functions slice")
	}
}

// TestHotSetTieBreak checks the deterministic MethodID tie-break between
// functions with equal sample counts.
func TestHotSetTieBreak(t *testing.T) {
	p := &Profile{
		Functions: []FunctionProfile{
			{Method: 8, Samples: 100},
			{Method: 3, Samples: 100},
			{Method: 5, Samples: 100},
		},
	}
	// target = 0.5*300 = 150: the first sorted entry (m3) is not enough,
	// the second (m5) tips it over. m8 stays cold.
	hot := p.HotSet(0.5)
	if !hot[3] || !hot[5] || hot[8] {
		t.Errorf("hot set = %v, want {m3, m5}", hot)
	}
}

func TestHotSetEmptyProfile(t *testing.T) {
	p := &Profile{}
	if len(p.HotSet(0.8)) != 0 {
		t.Error("empty profile produced a hot set")
	}
}

func TestCollectEmptyScript(t *testing.T) {
	img, _ := buildImage(t)
	if _, err := Collect(img, nil, 0); err == nil {
		t.Error("empty script accepted")
	}
}

func TestCustomPeriod(t *testing.T) {
	img, man := buildImage(t)
	script := workload.Script(man, 1, 3)
	coarse, err := Collect(img, script, 1009)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Collect(img, script, 31)
	if err != nil {
		t.Fatal(err)
	}
	if fine.TotalSamples <= coarse.TotalSamples {
		t.Errorf("finer period took fewer samples: %d <= %d", fine.TotalSamples, coarse.TotalSamples)
	}
}
