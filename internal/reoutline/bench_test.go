package reoutline_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/reoutline"
	"repro/internal/workload"
)

// BenchmarkReoutline measures the post-hoc pass per ladder app on a
// build without link-time outlining: wall time per pass plus, as extra
// metrics, the bytes it saved and each stage's share of the work —
// the numbers `make bench-reoutline` archives in BENCH_reoutline.json.
func BenchmarkReoutline(b *testing.B) {
	scale := 0.05
	if testing.Short() {
		scale = 0.03
	}
	for _, prof := range workload.Apps(scale) {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			app, _, err := workload.Generate(prof)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Build(app, core.CTOOnly())
			if err != nil {
				b.Fatal(err)
			}
			var st *reoutline.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err = reoutline.Run(res.Image, reoutline.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Saved()), "bytes-saved")
			b.ReportMetric(float64(st.LiftTime.Microseconds()), "lift-us")
			b.ReportMetric(float64(st.DetectTime.Microseconds()), "detect-us")
			b.ReportMetric(float64(st.RelinkTime.Microseconds()), "relink-us")
			b.ReportMetric(float64(st.VerifyTime.Microseconds()), "verify-us")
		})
	}
}
