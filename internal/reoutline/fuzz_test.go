package reoutline_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/oat"
	"repro/internal/reoutline"
	"repro/internal/workload"
)

// FuzzLift feeds mutated serialized images through the whole pass: lift
// either refuses the image (admission or a stage error) or round-trips it
// soundly — the output validates, is no larger, and a second pass over it
// is byte-identical. Whatever the parser accepts must never panic the
// lifter, and a mutation that slips past admission must still come out
// the other side as a structurally sound image.
func FuzzLift(f *testing.F) {
	app, _, err := workload.Generate(workload.Profile{
		Name: "fuzz", Seed: 17, Methods: 20,
		NativeFrac: 0.1, SwitchFrac: 0.1,
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, cfg := range []core.Config{core.CTOOnly(), core.CTOLTBO()} {
		res, err := core.Build(app, cfg)
		if err != nil {
			f.Fatal(err)
		}
		data, err := res.Image.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Targeted corruptions: flipped instruction bits early, mid, and
		// late in the image, and a truncated tail.
		if len(data) > 512 {
			for _, off := range []int{200, len(data) / 2, len(data) - 64} {
				mut := append([]byte(nil), data...)
				mut[off] ^= 0x40
				f.Add(mut)
			}
			f.Add(data[:len(data)/2])
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		img, err := oat.Unmarshal(b)
		if err != nil {
			return
		}
		out, st, err := reoutline.Run(img, reoutline.Config{Workers: 2})
		if err != nil {
			return // refused: admission or a downstream stage said no
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("accepted image re-outlined into an invalid one: %v", err)
		}
		if st.Saved() < 0 {
			t.Fatalf("reoutline grew the image: %d -> %d bytes", st.TextBefore, st.TextAfter)
		}
		out2, _, err := reoutline.Run(out, reoutline.Config{Workers: 2})
		if err != nil {
			t.Fatalf("reoutline refused its own output: %v", err)
		}
		b1, err := out.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := out2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("reoutline of a re-outlined image is not byte-identical (%d vs %d bytes)", len(b1), len(b2))
		}
	})
}
