package reoutline

import (
	"fmt"

	"repro/internal/a64"
	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/dex"
	"repro/internal/oat"
)

// Lifting rewrites one linked method back into the rewritable form the
// outliner consumes: a CompiledMethod whose bl sites are symbolic (Ext
// entries) instead of bound displacements, and whose calls into existing
// outlined functions are expanded back to the callee body so the detector
// sees the original instruction stream, not an opaque call. Everything a
// lift step cannot prove safe freezes the method — it is carried through
// byte-for-byte instead, which is always sound.

// inlinableBodies indexes the outlined functions whose bodies may be
// expanded back into a caller: straight-line decodable code with no
// PC-relative or control-transfer instructions and no use of the link
// register, ending in the single `br x30` return the blob-shape rule
// demands. The returned bodies exclude that trailing return. A blob that
// fails any check is simply absent; its callers freeze.
func inlinableBodies(img *oat.Image) map[int][]uint32 {
	bodies := make(map[int][]uint32, len(img.Outlined))
	for _, f := range img.Outlined {
		if f.Offset < 0 || f.Size <= a64.WordSize || f.Offset%a64.WordSize != 0 ||
			f.Size%a64.WordSize != 0 || f.Offset+f.Size > img.TextBytes() {
			continue
		}
		words := img.Text[f.Offset/a64.WordSize : (f.Offset+f.Size)/a64.WordSize]
		ret, ok := a64.Decode(words[len(words)-1])
		if !ok || ret.Op != a64.OpBr || ret.Rn != a64.LR {
			continue
		}
		body := words[:len(words)-1]
		good := true
		for _, w := range body {
			inst, ok := a64.Decode(w)
			if !ok || inst.Op.IsPCRel() || inst.Op.IsBranch() || inst.Op == a64.OpBrk ||
				inst.Rd == a64.LR || inst.Rn == a64.LR || inst.Rm == a64.LR || inst.Rt2 == a64.LR {
				good = false
				break
			}
		}
		if good {
			bodies[f.Sym] = body
		}
	}
	return bodies
}

// liftThunkSym reports whether sym names a CTO pattern thunk. A bl whose
// edge carries a thunk symbol physically targets the thunk even when the
// edge's Kind reflects who the thunk dispatches to (the java_entry
// pattern resolves through it), so this check must come before any
// Kind-based classification.
func liftThunkSym(sym int) bool {
	kind, _ := codegen.UnpackSym(sym)
	return kind == codegen.SymKindJavaEntry || kind == codegen.SymKindNativeEP ||
		kind == codegen.SymKindStackCheck
}

// liftMethod lifts one method. A nil result means the method must be
// frozen instead, with reason saying why — every reason is a defensive
// refinement of the LiftFrozen mask, never a relaxation of it.
func liftMethod(img *oat.Image, rec *oat.MethodRecord, edges []analysis.Edge, bodies map[int][]uint32) (*codegen.CompiledMethod, string) {
	words := img.MethodCode(rec.ID)
	if words == nil {
		return nil, "malformed method record"
	}
	n := len(words)
	data := make([]bool, n)
	for _, d := range rec.Meta.EmbeddedData {
		if d.Start < 0 || d.End < d.Start || d.End > rec.Size ||
			d.Start%a64.WordSize != 0 || d.End%a64.WordSize != 0 {
			return nil, "malformed embedded-data range"
		}
		for w := d.Start / a64.WordSize; w < d.End/a64.WordSize; w++ {
			data[w] = true
		}
	}
	edgeAt := make(map[int]analysis.Edge, len(edges))
	for _, e := range edges {
		edgeAt[e.Off] = e
	}

	// Plan every word: expanded (calls into outlined functions), symbolic
	// (calls kept as bl + Ext), or verbatim.
	inlined := make([][]uint32, n)
	syms := make([]int, n)
	hasSym := make([]bool, n)
	for w := 0; w < n; w++ {
		if data[w] {
			continue
		}
		inst, ok := a64.Decode(words[w])
		if !ok {
			return nil, "undecodable instruction word"
		}
		switch inst.Op {
		case a64.OpBl:
			e, ok := edgeAt[w*a64.WordSize]
			if !ok {
				return nil, "bl without a recovered call edge"
			}
			switch {
			case e.Kind == analysis.EdgeOutlined:
				body, ok := bodies[e.Sym]
				if !ok {
					return nil, "callee outlined body is not inlinable"
				}
				inlined[w] = body
			case liftThunkSym(e.Sym):
				syms[w], hasSym[w] = e.Sym, true
			case e.Kind == analysis.EdgeMethod:
				syms[w], hasSym[w] = codegen.PackSym(codegen.SymKindMethod, int64(e.Target)), true
			default:
				return nil, "unresolvable call target"
			}
		case a64.OpBlr:
			if inst.Rn != a64.LR {
				return nil, "indirect call off the link register"
			}
		}
	}

	// Old-word -> new-word index map; an expanded call maps to the first
	// word of the inlined body, and interior offsets shift monotonically.
	newIdx := make([]int, n+1)
	fl := 0
	for w := 0; w < n; w++ {
		newIdx[w] = fl
		if inlined[w] != nil {
			fl += len(inlined[w])
		} else {
			fl++
		}
	}
	newIdx[n] = fl
	mapOff := func(o int) int { return newIdx[o/a64.WordSize] * a64.WordSize }

	code := make([]uint32, 0, fl)
	var ext []a64.ExtRef
	for w := 0; w < n; w++ {
		if inlined[w] != nil {
			code = append(code, inlined[w]...)
			continue
		}
		if hasSym[w] {
			// The kept bl word still encodes its pre-lift displacement;
			// the relink rebinds it through this Ext entry, and the
			// outliner treats calls as separators regardless of the
			// encoded value, so the stale bits are never interpreted.
			ext = append(ext, a64.ExtRef{InstOff: newIdx[w] * a64.WordSize, Symbol: syms[w]})
		}
		code = append(code, words[w])
	}

	meta := codegen.Meta{}
	for _, r := range rec.Meta.PCRel {
		if r.InstOff%a64.WordSize != 0 || r.InstOff < 0 || r.InstOff >= rec.Size ||
			r.TargetOff < 0 || r.TargetOff > rec.Size || r.TargetOff%a64.WordSize != 0 {
			return nil, "malformed PC-relative record"
		}
		if inlined[r.InstOff/a64.WordSize] != nil {
			return nil, "PC-relative record on an expanded call site"
		}
		// A branch targeting a call site lands on the first word of the
		// expanded body — same successor semantics — so targets need no
		// freeze, only the remap.
		ni, nt := mapOff(r.InstOff), mapOff(r.TargetOff)
		if nt-ni != r.TargetOff-r.InstOff {
			patched, err := a64.PatchRel(code[ni/a64.WordSize], int64(nt-ni))
			if err != nil {
				return nil, "PC-relative displacement out of range after expansion"
			}
			code[ni/a64.WordSize] = patched
		}
		meta.PCRel = append(meta.PCRel, a64.Reloc{InstOff: ni, TargetOff: nt})
	}
	for _, t := range rec.Meta.Terminators {
		if t < 0 || t >= rec.Size || t%a64.WordSize != 0 {
			return nil, "malformed terminator offset"
		}
		if inlined[t/a64.WordSize] != nil {
			// The call this terminator marked is gone; the expanded body
			// is straight-line, so no boundary replaces it — which is
			// exactly what lets the detector outline across it.
			continue
		}
		meta.Terminators = append(meta.Terminators, mapOff(t))
	}
	for _, d := range rec.Meta.EmbeddedData {
		meta.EmbeddedData = append(meta.EmbeddedData, a64.Range{Start: mapOff(d.Start), End: mapOff(d.End)})
	}
	for _, d := range rec.Meta.Slowpaths {
		if d.Start < 0 || d.End < d.Start || d.End > rec.Size ||
			d.Start%a64.WordSize != 0 || d.End%a64.WordSize != 0 {
			return nil, "malformed slowpath range"
		}
		meta.Slowpaths = append(meta.Slowpaths, a64.Range{Start: mapOff(d.Start), End: mapOff(d.End)})
	}
	var sm []codegen.StackMapEntry
	for _, s := range rec.StackMap {
		if s.NativeOff < 0 || s.NativeOff >= rec.Size || s.NativeOff%a64.WordSize != 0 {
			return nil, "malformed safepoint offset"
		}
		if inlined[s.NativeOff/a64.WordSize] != nil {
			return nil, "safepoint on an expanded call site"
		}
		sm = append(sm, codegen.StackMapEntry{NativeOff: mapOff(s.NativeOff), DexPC: s.DexPC, Live: s.Live})
	}

	return &codegen.CompiledMethod{
		M:        &dex.Method{ID: rec.ID, Class: "oat", Name: fmt.Sprintf("m%d", rec.ID)},
		Code:     code,
		Meta:     meta,
		StackMap: sm,
		Ext:      ext,
	}, ""
}
