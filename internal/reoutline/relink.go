package reoutline

import (
	"fmt"
	"sort"

	"repro/internal/a64"
	"repro/internal/abi"
	"repro/internal/codegen"
	"repro/internal/oat"
)

// relink rebuilds the text segment after lifting and re-outlining. The
// walk preserves the input's region order — the property that makes the
// whole pass idempotent — replacing each lifted method's bytes with its
// rewritten code, dropping outlined functions no frozen method calls
// anymore, and appending the newly created bodies at the end. It cannot
// call oat.Link: the linker lays out from scratch and refuses the
// provenance symbol kinds, while relinking must keep frozen regions where
// their neighbors expect them (modulo the shifts the offset map records).
//
// Two patch disciplines finish the job. Lifted methods carry symbolic
// call sites (Ext), bound here exactly as the linker binds them. Frozen
// methods carry physical bl displacements, repatched by the same total
// decode-walk the debloat pass uses — admission guarantees every bl lands
// on a region head, so the new-offset lookup never misses on a sound
// image.
func relink(img *oat.Image, lifted []*codegen.CompiledMethod, blobs []oat.Blob, retained map[int]bool) (*oat.Image, error) {
	type region struct {
		kind   int // 0 thunk, 1 blob, 2 method
		sym    int
		method int
		off    int
		size   int
	}
	var regions []region
	for _, f := range img.Thunks {
		regions = append(regions, region{kind: 0, sym: f.Sym, off: f.Offset, size: f.Size})
	}
	for _, f := range img.Outlined {
		regions = append(regions, region{kind: 1, sym: f.Sym, off: f.Offset, size: f.Size})
	}
	for i, m := range img.Methods {
		if m.Size > 0 {
			regions = append(regions, region{kind: 2, method: i, off: m.Offset, size: m.Size})
		}
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a].off < regions[b].off })

	out := &oat.Image{}
	newOff := map[int]int{} // old region offset -> new offset
	for _, r := range regions {
		if r.kind == 1 && !retained[r.sym] {
			continue
		}
		newOff[r.off] = out.TextBytes()
		if r.kind == 2 && lifted[r.method] != nil {
			out.Text = append(out.Text, lifted[r.method].Code...)
			continue
		}
		out.Text = append(out.Text, img.Text[r.off/a64.WordSize:(r.off+r.size)/a64.WordSize]...)
	}

	for _, f := range img.Thunks {
		out.Thunks = append(out.Thunks, oat.FuncRecord{Sym: f.Sym, Offset: newOff[f.Offset], Size: f.Size})
	}
	for _, f := range img.Outlined {
		if retained[f.Sym] {
			out.Outlined = append(out.Outlined, oat.FuncRecord{Sym: f.Sym, Offset: newOff[f.Offset], Size: f.Size})
		}
	}
	taken := map[int]bool{}
	for _, f := range out.Outlined {
		taken[f.Sym] = true
	}
	for _, b := range blobs {
		if taken[b.Sym] {
			return nil, fmt.Errorf("reoutline: created symbol %s collides with a retained function", codegen.SymName(b.Sym))
		}
		off := out.TextBytes()
		out.Text = append(out.Text, b.Code...)
		out.Outlined = append(out.Outlined, oat.FuncRecord{Sym: b.Sym, Offset: off, Size: len(b.Code) * a64.WordSize})
	}

	end := out.TextBytes()
	out.Methods = make([]oat.MethodRecord, len(img.Methods))
	for i, m := range img.Methods {
		switch {
		case m.Size == 0:
			// A debloated stub keeps its end-pointed zero-size slot.
			out.Methods[i] = oat.MethodRecord{ID: m.ID, Offset: end, Size: 0}
		case lifted[i] != nil:
			cm := lifted[i]
			out.Methods[i] = oat.MethodRecord{
				ID: m.ID, Offset: newOff[m.Offset], Size: cm.CodeBytes(),
				Meta: cm.Meta, StackMap: cm.StackMap,
			}
		default:
			out.Methods[i] = oat.MethodRecord{
				ID: m.ID, Offset: newOff[m.Offset], Size: m.Size,
				Meta: m.Meta, StackMap: m.StackMap,
			}
		}
	}

	// Bind the lifted methods' symbolic call sites.
	symAddr := map[int]int64{}
	for _, f := range out.Thunks {
		symAddr[f.Sym] = abi.TextBase + int64(f.Offset)
	}
	for _, f := range out.Outlined {
		symAddr[f.Sym] = abi.TextBase + int64(f.Offset)
	}
	for i, cm := range lifted {
		if cm == nil {
			continue
		}
		base := abi.TextBase + int64(out.Methods[i].Offset)
		for _, ref := range cm.Ext {
			var target int64
			if kind, val := codegen.UnpackSym(ref.Symbol); kind == codegen.SymKindMethod {
				if val < 0 || val >= int64(len(out.Methods)) || out.Methods[val].Size == 0 {
					return nil, fmt.Errorf("reoutline: m%d calls missing method m%d", cm.M.ID, val)
				}
				target = abi.TextBase + int64(out.Methods[val].Offset)
			} else {
				addr, ok := symAddr[ref.Symbol]
				if !ok {
					return nil, fmt.Errorf("reoutline: m%d: unresolved symbol %s", cm.M.ID, codegen.SymName(ref.Symbol))
				}
				target = addr
			}
			wordIdx := (out.Methods[i].Offset + ref.InstOff) / a64.WordSize
			patched, err := a64.PatchRel(out.Text[wordIdx], target-(base+int64(ref.InstOff)))
			if err != nil {
				return nil, fmt.Errorf("reoutline: m%d: binding %s: %w", cm.M.ID, codegen.SymName(ref.Symbol), err)
			}
			out.Text[wordIdx] = patched
		}
	}

	// Repatch the frozen methods' physical bl displacements against the
	// new layout: the only cross-region relocations a frozen body holds.
	// Its PC-relative instructions are intra-method (the branch-target and
	// literal rules) and moved with it; its runtime- or entry-dispatched
	// blr sites read their targets from tables, not from the code.
	for i, m := range img.Methods {
		if m.Size == 0 || lifted[i] != nil {
			continue
		}
		data := make([]bool, m.Size/a64.WordSize)
		for _, d := range m.Meta.EmbeddedData {
			if d.Start < 0 || d.End < d.Start || d.End > m.Size || d.Start%a64.WordSize != 0 {
				continue
			}
			for w := d.Start / a64.WordSize; w < d.End/a64.WordSize; w++ {
				data[w] = true
			}
		}
		no := out.Methods[i].Offset
		for w := 0; w < m.Size/a64.WordSize; w++ {
			if data[w] {
				continue
			}
			word := img.Text[m.Offset/a64.WordSize+w]
			inst, ok := a64.Decode(word)
			if !ok || inst.Op != a64.OpBl {
				continue
			}
			oldAbs := m.Offset + w*a64.WordSize + int(inst.Imm)
			nt, ok := newOff[oldAbs]
			if !ok {
				return nil, fmt.Errorf("reoutline: frozen m%d calls a removed region +%#x", m.ID, oldAbs)
			}
			patched, err := a64.PatchRel(word, int64(nt-(no+w*a64.WordSize)))
			if err != nil {
				return nil, fmt.Errorf("reoutline: repatching frozen m%d+%#x: %w", m.ID, w*a64.WordSize, err)
			}
			out.Text[no/a64.WordSize+w] = patched
		}
	}
	return out, nil
}
