// Package reoutline re-outlines an already-linked OAT image: the post-hoc
// counterpart of the link-time LTBO pass, for binaries whose compile-time
// state is gone. It runs in four stages:
//
//  1. Lift. Every method the legality mask (analysis.LiftFrozen) admits is
//     rewritten into the sequence form the outliner consumes: calls into
//     existing outlined functions are inlined back to their body words,
//     and the remaining bl sites become symbolic again (thunk symbols,
//     or SymKindMethod tokens for direct method calls), with the LTBO.1
//     metadata and stack maps remapped through the expansion. Methods the
//     mask — or a defensive check during lifting — freezes are carried
//     through byte-for-byte.
//  2. Detect. The shared outline detector (trees, shards, rounds, dedup —
//     the exact link-time machine) runs over the lifted bodies and
//     rewrites them, minting SymKindReoutlined functions so dumps and
//     lint rules can tell post-hoc outlining from link-time outlining.
//  3. Extract and relink. The text segment is rebuilt in region order:
//     thunks and frozen methods keep their bytes, original outlined
//     functions survive only while a frozen caller still needs them, new
//     bodies are appended at the end, and every call site — symbolic in
//     lifted methods, physical bl displacements in frozen ones — is
//     re-bound to the new layout.
//  4. Re-verify. The output must pass the loader checks (oat.Validate)
//     and the full lint — the legacy per-method rules plus the paired
//     interprocedural rules (reoutlined-body-equivalent,
//     lift-frozen-untouched) against the input image — with zero
//     findings, or the pass fails rather than return the image.
//
// The pass refuses unsound inputs the same way debloat does (any
// error-severity finding at admission), plus one refusal of its own: an
// indirect call through a materialized absolute text address pins its
// target in place, and no freeze mask can make relocation sound, so the
// whole image is rejected (analysis.PinnedIndirect).
package reoutline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/outline"
	"repro/internal/par"
)

// Config tunes the pass. The zero value runs a single global suffix tree
// with the paper's §3.3 thresholds, like the link-time default.
type Config struct {
	// MinLength/MinBenefit gate the detector exactly as at link time.
	MinLength  int
	MinBenefit int
	// ParallelTrees partitions the lifted methods into K independent
	// suffix trees (PlOpti); <= 1 builds one global tree.
	ParallelTrees int
	// DetectShards shards detection inside each tree.
	DetectShards int
	// Rounds repeats the outlining cycle; DedupFunctions merges identical
	// re-outlined bodies across trees and rounds.
	Rounds         int
	DedupFunctions bool
	// Detector selects the repeat-detection backend.
	Detector outline.DetectorKind
	// Workers bounds every parallel stage; <= 0 selects GOMAXPROCS. The
	// output image is byte-identical at every width.
	Workers int
	// Tracer, when non-nil, records per-stage spans (reoutline.admit,
	// reoutline.lift, reoutline.detect, reoutline.relink,
	// reoutline.verify) and the reoutline.* counters.
	Tracer *obs.Tracer
}

// Stats reports what the pass did.
type Stats struct {
	MethodsTotal  int // method-table slots
	MethodsLifted int // rewritten through the detector
	MethodsFrozen int // carried through byte-for-byte (legality mask + defensive)
	MethodsStub   int // zero-size records (debloated stubs)
	// FrozenDefensive counts methods the legality mask admitted but a
	// lift-step check froze anyway; included in MethodsFrozen.
	FrozenDefensive int

	BlobsBefore   int // outlined functions in the input
	BlobsRetained int // kept because a frozen method still calls them
	BlobsCreated  int // new SymKindReoutlined functions (after dedup)
	BlobsDeduped  int // new bodies folded into an identical retained blob

	TextBefore int
	TextAfter  int

	// Outline is the detector's own statistics for the lifted corpus.
	Outline *outline.Stats

	LiftTime   time.Duration
	DetectTime time.Duration
	RelinkTime time.Duration
	VerifyTime time.Duration
}

// Saved is the pass's code-size win in bytes (negative on growth, which
// the ladder tests treat as a failure).
func (s *Stats) Saved() int { return s.TextBefore - s.TextAfter }

// Run re-outlines a linked image. See the package comment for the
// contract; the input image is never modified.
func Run(img *oat.Image, cfg Config) (*oat.Image, *Stats, error) {
	return RunCtx(context.Background(), img, cfg)
}

// RunCtx is Run with cooperative cancellation threaded through every
// parallel stage.
func RunCtx(ctx context.Context, img *oat.Image, cfg Config) (*oat.Image, *Stats, error) {
	st := &Stats{
		MethodsTotal: len(img.Methods),
		BlobsBefore:  len(img.Outlined),
		TextBefore:   img.TextBytes(),
	}

	// Admission: refuse anything the static verifier grades an error, and
	// images whose layout is pinned by a materialized code address.
	sp := cfg.Tracer.Start("stage", "reoutline.admit").Arg("methods", int64(len(img.Methods)))
	lintFs, err := analysis.LintCtx(ctx, img, cfg.Workers, cfg.Tracer)
	if err != nil {
		sp.End()
		return nil, st, err
	}
	for _, f := range lintFs {
		if f.Severity >= analysis.SevError {
			sp.End()
			return nil, st, fmt.Errorf("reoutline: refusing unsound image: %s", f)
		}
	}
	cg, cgFs := analysis.BuildCallGraphCtx(ctx, img, cfg.Workers)
	if cg == nil {
		sp.End()
		return nil, st, ctx.Err()
	}
	for _, f := range cgFs {
		if f.Severity >= analysis.SevError {
			sp.End()
			return nil, st, fmt.Errorf("reoutline: refusing unsound image: %s", f)
		}
	}
	if id, off, pinned := analysis.PinnedIndirect(img, cg); pinned {
		sp.End()
		return nil, st, fmt.Errorf("reoutline: m%d+%#x: indirect call through a materialized text address pins the layout", id, off)
	}
	sp.End()

	// Stage 1: lift.
	t0 := time.Now()
	sp = cfg.Tracer.Start("stage", "reoutline.lift")
	frozen := analysis.LiftFrozen(img, cg)
	bodies := inlinableBodies(img)
	type liftResult struct {
		cm     *codegen.CompiledMethod
		reason string
	}
	results, err := par.MapCtx(ctx, cfg.Workers, len(img.Methods), func(i int) (liftResult, error) {
		if frozen[i] {
			return liftResult{}, nil
		}
		cm, reason := liftMethod(img, &img.Methods[i], cg.Nodes[i].Edges, bodies)
		return liftResult{cm: cm, reason: reason}, nil
	})
	if err != nil {
		sp.End()
		return nil, st, err
	}
	lifted := make([]*codegen.CompiledMethod, len(img.Methods))
	for i, res := range results {
		switch {
		case frozen[i]:
		case res.cm != nil:
			lifted[i] = res.cm
			st.MethodsLifted++
		default:
			// The legality mask admitted the method but a lift step could
			// not be proven safe: freeze it instead. The lift-frozen rule
			// only audits mask-frozen methods, so extra freezes stay
			// within the contract.
			frozen[i] = true
			st.FrozenDefensive++
		}
	}
	for i := range img.Methods {
		switch {
		case img.Methods[i].Size == 0:
			st.MethodsStub++
		case lifted[i] == nil:
			st.MethodsFrozen++
		}
	}
	sp.End()
	st.LiftTime = time.Since(t0)

	// Stage 2: detect and rewrite the lifted bodies with the link-time
	// outlining machine, minting SymKindReoutlined functions.
	t1 := time.Now()
	sp = cfg.Tracer.Start("stage", "reoutline.detect").Arg("lifted", int64(st.MethodsLifted))
	var compact []*codegen.CompiledMethod
	for _, cm := range lifted {
		if cm != nil {
			compact = append(compact, cm)
		}
	}
	blobs, ost, err := outline.RunVerifiedCtx(ctx, compact, outline.Options{
		MinLength:      cfg.MinLength,
		MinBenefit:     cfg.MinBenefit,
		Parallel:       cfg.ParallelTrees,
		DetectShards:   cfg.DetectShards,
		Rounds:         cfg.Rounds,
		DedupFunctions: cfg.DedupFunctions,
		Detector:       cfg.Detector,
		Workers:        cfg.Workers,
		Tracer:         cfg.Tracer,
		SymKind:        codegen.SymKindReoutlined,
	})
	sp.End()
	if err != nil {
		return nil, st, err
	}
	st.Outline = ost
	st.DetectTime = time.Since(t1)

	// Stage 3: extract and relink.
	t2 := time.Now()
	sp = cfg.Tracer.Start("stage", "reoutline.relink").Arg("new_blobs", int64(len(blobs)))
	retained := retainedBlobs(img, cg, frozen)
	blobs = dedupAgainstRetained(img, retained, blobs, lifted, st)
	st.BlobsCreated = len(blobs)
	st.BlobsRetained = len(retained)
	out, err := relink(img, lifted, blobs, retained)
	sp.End()
	if err != nil {
		return nil, st, err
	}
	st.RelinkTime = time.Since(t2)
	st.TextAfter = out.TextBytes()

	// Stage 4: re-verify — loader checks, the full legacy lint, and the
	// paired interprocedural rules against the input image.
	t3 := time.Now()
	sp = cfg.Tracer.Start("stage", "reoutline.verify")
	if err := out.Validate(); err != nil {
		sp.End()
		return nil, st, fmt.Errorf("reoutline: output failed validation: %w", err)
	}
	spec := analysis.DefaultRuleSpec()
	spec.Enable(analysis.RuleReoutlinedBody)
	spec.Enable(analysis.RuleLiftFrozen)
	rep, err := analysis.RunRulesPaired(ctx, out, img, spec, analysis.RootSet{}, cfg.Workers, cfg.Tracer)
	sp.End()
	if err != nil {
		return nil, st, err
	}
	if len(rep.Findings) > 0 {
		return nil, st, fmt.Errorf("reoutline: output failed verification: %d findings, first: %s",
			len(rep.Findings), rep.Findings[0])
	}
	st.VerifyTime = time.Since(t3)

	if cfg.Tracer != nil {
		cfg.Tracer.Count("reoutline.methods_lifted", int64(st.MethodsLifted))
		cfg.Tracer.Count("reoutline.methods_frozen", int64(st.MethodsFrozen))
		cfg.Tracer.Count("reoutline.blobs_created", int64(st.BlobsCreated))
		cfg.Tracer.Count("reoutline.blobs_retained", int64(st.BlobsRetained))
		cfg.Tracer.Count("reoutline.bytes_saved", int64(st.Saved()))
	}
	return out, st, nil
}

// retainedBlobs computes which existing outlined functions must survive:
// those a frozen method still physically calls. Lifted callers had their
// calls inlined back, so a blob with only lifted callers is dropped (its
// body lives on wherever the detector put it).
func retainedBlobs(img *oat.Image, cg *analysis.CallGraph, frozen []bool) map[int]bool {
	retained := map[int]bool{}
	for i := range img.Methods {
		if !frozen[i] || img.Methods[i].Size == 0 {
			continue
		}
		for _, e := range cg.Nodes[i].Edges {
			if e.Kind == analysis.EdgeOutlined {
				retained[e.Sym] = true
			}
		}
	}
	return retained
}

// dedupAgainstRetained folds newly created bodies that are byte-identical
// to a retained original blob: the new function is dropped and its call
// sites re-bound to the survivor, so a frozen caller and a re-outlined
// caller share one body exactly as they did at link time.
func dedupAgainstRetained(img *oat.Image, retained map[int]bool, blobs []oat.Blob, lifted []*codegen.CompiledMethod, st *Stats) []oat.Blob {
	if len(retained) == 0 || len(blobs) == 0 {
		return blobs
	}
	key := func(words []uint32) string {
		b := make([]byte, 0, len(words)*4)
		for _, w := range words {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		return string(b)
	}
	retKey := map[string]int{}
	for _, f := range img.Outlined {
		if retained[f.Sym] {
			retKey[key(img.Text[f.Offset/4:(f.Offset+f.Size)/4])] = f.Sym
		}
	}
	remap := map[int]int{}
	kept := blobs[:0]
	for _, b := range blobs {
		if sym, ok := retKey[key(b.Code)]; ok {
			remap[b.Sym] = sym
			st.BlobsDeduped++
			continue
		}
		kept = append(kept, b)
	}
	if len(remap) > 0 {
		for _, cm := range lifted {
			if cm == nil {
				continue
			}
			for j, e := range cm.Ext {
				if sym, ok := remap[e.Symbol]; ok {
					cm.Ext[j].Symbol = sym
				}
			}
		}
	}
	return kept
}
