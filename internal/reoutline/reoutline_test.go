package reoutline_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/emu"
	"repro/internal/hgraph"
	"repro/internal/oat"
	"repro/internal/reoutline"
	"repro/internal/workload"
)

func ladderScale() float64 {
	if testing.Short() {
		return 0.03
	}
	return 0.12
}

// diffRuns runs a script against the reference interpreter and an image,
// failing on any observable divergence — the acceptance check behind
// every binary rewrite in this repo.
func diffRuns(t *testing.T, what string, app *dex.App, img *oat.Image, runs []workload.Run) {
	t.Helper()
	for i, run := range runs {
		ip := &hgraph.Interp{App: app, MaxDepth: 10_000}
		want, err := ip.Run(run.Entry, run.Args[:])
		if err != nil {
			t.Fatalf("%s: run %d: interp: %v", what, i, err)
		}
		got, err := emu.New(img).Run(run.Entry, run.Args[:])
		if err != nil {
			t.Fatalf("%s: run %d: emu: %v", what, i, err)
		}
		if got.Ret != want.Ret || got.Exc != want.Exc || !reflect.DeepEqual(got.Log, want.Log) {
			t.Errorf("%s: run %d (m%d): ret=%d exc=%v log=%v, want ret=%d exc=%v log=%v",
				what, i, run.Entry, got.Ret, got.Exc, got.Log, want.Ret, want.Exc, want.Log)
		}
	}
}

// requireIdempotent re-runs the pass on its own output and demands a
// byte-identical image: lifting a re-outlined image inlines exactly the
// bodies the first pass created, so the detector reproduces them and the
// relink puts every region back where it was.
func requireIdempotent(t *testing.T, what string, out *oat.Image, cfg reoutline.Config) {
	t.Helper()
	out2, st2, err := reoutline.Run(out, cfg)
	if err != nil {
		t.Fatalf("%s: second reoutline: %v", what, err)
	}
	b1, err := out.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := out2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("%s: reoutline is not idempotent: %d -> %d bytes (saved again: %d)",
			what, len(b1), len(b2), st2.Saved())
	}
}

// TestReoutlineGapLadder is the headline acceptance gate: re-outlining a
// build that shipped with link-time outlining disabled must recover at
// least 90%% of what link-time outlining would have saved, on every app
// of the evaluation ladder. It also pins idempotence and behavior
// preservation on every output.
func TestReoutlineGapLadder(t *testing.T) {
	t.Logf("%-10s %12s %12s %12s %9s", "app", "CTOOnly", "CTO+LTBO", "reoutlined", "recovery")
	for _, prof := range workload.Apps(ladderScale()) {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			app, man, err := workload.Generate(prof)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := core.Build(app, core.CTOOnly())
			if err != nil {
				t.Fatal(err)
			}
			linked, err := core.Build(app, core.CTOLTBO())
			if err != nil {
				t.Fatal(err)
			}
			out, st, err := reoutline.Run(plain.Image, reoutline.Config{})
			if err != nil {
				t.Fatalf("reoutline: %v", err)
			}

			linkSaved := plain.TextBytes() - linked.TextBytes()
			recovery := 1.0
			if linkSaved > 0 {
				recovery = float64(st.Saved()) / float64(linkSaved)
			}
			t.Logf("%-10s %12d %12d %12d %8.1f%%", prof.Name,
				plain.TextBytes(), linked.TextBytes(), out.TextBytes(), 100*recovery)
			if st.Saved() < 0 {
				t.Errorf("reoutline grew text: %d -> %d bytes", st.TextBefore, st.TextAfter)
			}
			if recovery < 0.9 {
				t.Errorf("recovered only %.1f%% of the link-time saving (%d of %d bytes), want >= 90%%",
					100*recovery, st.Saved(), linkSaved)
			}
			if st.TextAfter != out.TextBytes() {
				t.Errorf("stats.TextAfter=%d, image has %d", st.TextAfter, out.TextBytes())
			}

			requireIdempotent(t, prof.Name, out, reoutline.Config{})
			diffRuns(t, prof.Name, app, out, workload.Script(man, 2, 1))
		})
	}
}

// TestReoutlineComposesWithDebloat pins the debloat-then-reoutline
// pipeline the -debloat -reoutline CLI composition runs: the debloated
// image (stub records, removed blobs) must lift, re-outline, and still
// execute the scripted workload unchanged.
func TestReoutlineComposesWithDebloat(t *testing.T) {
	for _, prof := range workload.Apps(ladderScale()) {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			app, man, err := workload.Generate(prof)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Build(app, core.CTOOnly())
			if err != nil {
				t.Fatal(err)
			}
			deb, _, err := core.DebloatImage(res.Image, core.DebloatConfig{Roots: man.Drivers})
			if err != nil {
				t.Fatalf("debloat: %v", err)
			}
			out, st, err := reoutline.Run(deb, reoutline.Config{})
			if err != nil {
				t.Fatalf("reoutline after debloat: %v", err)
			}
			if st.Saved() < 0 {
				t.Errorf("reoutline grew a debloated image: %d -> %d bytes", st.TextBefore, st.TextAfter)
			}
			requireIdempotent(t, prof.Name, out, reoutline.Config{})
			diffRuns(t, prof.Name, app, out, workload.Script(man, 2, 1))
		})
	}
}

// TestReoutlineMostlyFrozen drives the pass over an adversarial profile
// cranked so most methods freeze (indirect jumps and JNI stubs): the pass
// must stay sound, must not regress size, and must still lift and
// re-outline whatever remains legal.
func TestReoutlineMostlyFrozen(t *testing.T) {
	prof, ok := workload.AppByName("Obfuscated", ladderScale())
	if !ok {
		t.Fatal("Obfuscated profile missing")
	}
	prof.SwitchFrac = 0.5
	prof.NativeFrac = 0.25
	app, man, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, core.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := reoutline.Run(res.Image, reoutline.Config{})
	if err != nil {
		t.Fatalf("reoutline: %v", err)
	}
	if st.MethodsFrozen == 0 {
		t.Error("adversarial profile froze nothing; the test lost its teeth")
	}
	if st.Saved() < 0 {
		t.Errorf("reoutline grew a mostly-frozen image: %d -> %d bytes", st.TextBefore, st.TextAfter)
	}
	t.Logf("frozen %d of %d methods (%d defensive), saved %d bytes",
		st.MethodsFrozen, st.MethodsTotal, st.FrozenDefensive, st.Saved())
	requireIdempotent(t, "Obfuscated", out, reoutline.Config{})
	diffRuns(t, "Obfuscated", app, out, workload.Script(man, 2, 1))
}

// TestReoutlineLinkTimeInputDropsNothing pins the interaction with
// link-time outlined images: every existing outlined function is either
// inlined back and re-created (possibly merged) or retained for a frozen
// caller — never silently lost — and the result must not be larger than
// the link-time image.
func TestReoutlineLinkTimeInput(t *testing.T) {
	prof := workload.Apps(ladderScale())[0]
	app, man, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, core.CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := reoutline.Run(res.Image, reoutline.Config{})
	if err != nil {
		t.Fatalf("reoutline: %v", err)
	}
	if st.Saved() < 0 {
		t.Errorf("reoutline grew a link-time-outlined image: %d -> %d bytes", st.TextBefore, st.TextAfter)
	}
	diffRuns(t, prof.Name, app, out, workload.Script(man, 2, 1))
}

// TestReoutlineDeterministic pins the worker-width independence contract:
// the output image is byte-identical at every parallelism.
func TestReoutlineDeterministic(t *testing.T) {
	prof := workload.Apps(0.03)[0]
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, core.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		out, _, err := reoutline.Run(res.Image, reoutline.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := out.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Errorf("workers=%d produced a different image", workers)
		}
	}
}
