// Package report renders the experiment tables in the layout of the
// paper's evaluation section: one column per app, configuration rows, and
// ratio rows relative to the baseline.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	update := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	update(t.Header)
	for _, r := range t.Rows {
		update(r)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bytes renders a byte count the way the paper does (MiB with no decimals
// above 10 MiB, otherwise KiB).
func Bytes(n int) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.0fK", float64(n)/(1<<10))
	}
}

// Pct renders a ratio as a percentage with two decimals, paper style.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// Reduction renders the reduction of v relative to base.
func Reduction(base, v int) string {
	if base == 0 {
		return "n/a"
	}
	return Pct(float64(base-v) / float64(base))
}

// Growth renders the growth of v relative to base.
func Growth(base, v time.Duration) string {
	if base == 0 {
		return "n/a"
	}
	return Pct(float64(v-base) / float64(base))
}

// Dur renders a duration in the paper's m/s style. Negative durations
// (clock skew in subtracted measurements) render with a single leading
// sign — never "-1m-30.0s" — and a value that rounds to zero drops the
// sign entirely.
func Dur(d time.Duration) string {
	neg := d < 0
	if neg {
		d = -d
	}
	d = d.Round(time.Second / 10)
	var s string
	if d >= time.Minute {
		m := d / time.Minute
		sec := (d - m*time.Minute).Seconds()
		s = fmt.Sprintf("%dm%04.1fs", m, sec)
	} else {
		s = fmt.Sprintf("%.1fs", d.Seconds())
	}
	if neg && d != 0 {
		return "-" + s
	}
	return s
}

// Count renders large counts with a k/M suffix (Figure 4 style). The k
// band rounds to the nearest thousand, so 999_999 renders as "1000k" —
// the M band starts at exactly 1_000_000.
func Count(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
