package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"name", "value"}}
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and separator widths differ:\n%s", s)
	}
	if !strings.HasPrefix(lines[4], "longer-name") {
		t.Errorf("row misrendered: %q", lines[4])
	}
}

func TestBytes(t *testing.T) {
	cases := map[int]string{
		512:       "0K",
		2048:      "2K",
		1 << 20:   "1.0M",
		15 << 20:  "15M",
		357 << 20: "357M",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPctAndReduction(t *testing.T) {
	if got := Pct(0.1519); got != "15.19%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Reduction(1000, 808); got != "19.20%" {
		t.Errorf("Reduction = %q", got)
	}
	if got := Reduction(0, 5); got != "n/a" {
		t.Errorf("Reduction(0) = %q", got)
	}
}

func TestGrowthAndDur(t *testing.T) {
	if got := Growth(10*time.Second, 59*time.Second); got != "490.00%" {
		t.Errorf("Growth = %q", got)
	}
	if got := Growth(0, time.Second); got != "n/a" {
		t.Errorf("Growth(0) = %q", got)
	}
	if got := Dur(3*time.Minute + 13*time.Second); got != "3m13.0s" {
		t.Errorf("Dur = %q", got)
	}
	if got := Dur(32 * time.Second); got != "32.0s" {
		t.Errorf("Dur = %q", got)
	}
}

func TestDurBoundariesAndSign(t *testing.T) {
	cases := map[time.Duration]string{
		// Rounding crosses the minute boundary: 59.95s rounds up to
		// sixty seconds and must switch to the m/s form, not "60.0s".
		59*time.Second + 950*time.Millisecond: "1m00.0s",
		59*time.Second + 940*time.Millisecond: "59.9s",
		60 * time.Second:                      "1m00.0s",
		// Negatives carry exactly one leading sign in both forms.
		-90 * time.Second:       "-1m30.0s",
		-5 * time.Second:        "-5.0s",
		-49 * time.Millisecond:  "0.0s", // rounds to zero: no "-0.0s"
		-100 * time.Millisecond: "-0.1s",
		0:                       "0.0s",
	}
	for in, want := range cases {
		if got := Dur(in); got != want {
			t.Errorf("Dur(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCountEdges(t *testing.T) {
	cases := map[int64]string{
		999:     "999",
		1000:    "1k",
		999_999: "1000k", // documented: the k band rounds, M starts at 1e6
		-3:      "-3",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestCount(t *testing.T) {
	cases := map[int64]string{
		17:       "17",
		1006_000: "1.0M",
		217_000:  "217k",
		173_4:    "2k",
		42_107e6: "42107.0M",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}
