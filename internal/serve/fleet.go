// Fleet layer: whole-job artifact sharing and cross-daemon single-flight
// over the remote cache tier. Where internal/cache shares per-method
// compilations, this file shares finished builds — a job's image and
// stats sealed under a content key of the build inputs — so N daemons
// behind a router serve one logical cache.
//
// The flow wraps buildLocal:
//
//  1. eligible job + remote tier configured → Get the artifact by job
//     key; a hit serves the job without occupying this daemon's compile
//     workers at all;
//  2. miss → Claim the key. Exactly one claimant fleet-wide wins; the
//     winner builds locally and publishes the artifact, fulfilling the
//     claim. Losers long-poll the artifact (GetWait) up to FleetWait and
//     coalesce onto the winner's build.
//  3. any failure anywhere — claim unreachable, long-poll timeout,
//     artifact undecodable — falls back to building locally. The fleet
//     tier inherits the cache's contract: it can only ever save work,
//     never fail or wedge a job.
//
// Determinism is why coalescing is sound: an eligible job's image is a
// pure function of the fields the job key hashes (Workers deliberately
// excluded — the parallel-build work proved images are byte-identical at
// any pool width), so another daemon's artifact is byte-identical to
// what a local build would have produced. The differential test in
// fleet_test.go pins exactly that, remote off, on, and fault-injected.

package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"time"

	"repro/internal/cache"
)

// fleetJobSchema versions the job key layout. Bumping it orphans every
// published artifact at once — the safe response to any change in what
// the key covers or what the artifact encodes.
const fleetJobSchema = "calibro/job-key/v1"

// fleetEligible reports whether a job may be served from or published to
// the fleet store. Only profile-named build jobs qualify: their inputs
// are fully described by the request fields the key hashes. Dex payloads
// are excluded (hashing megabytes of client payload buys little over
// just building), as are lint and verify jobs (their outputs carry
// findings the artifact codec does not).
func fleetEligible(req JobRequest) bool {
	return req.Kind == KindBuild && req.App != "" && len(req.Dex) == 0 &&
		!req.Lint && !req.Verify
}

// fleetKey is the content address of an eligible job's output: every
// request field that steers the image, and nothing that doesn't.
// Workers is excluded on purpose — the determinism contract makes the
// image byte-identical at any pool width, which is precisely what lets
// daemons with different -j share artifacts.
func fleetKey(req JobRequest) cache.Key {
	h := cache.NewHasher(fleetJobSchema)
	h.Str(req.App)
	h.Uint(math.Float64bits(req.Scale))
	h.Int(int64(req.Version))
	h.Uint(math.Float64bits(req.Delta))
	h.Str(req.Config)
	h.Int(int64(req.Trees))
	h.Int(int64(req.Shards))
	h.Int(int64(req.Rounds))
	h.Bool(req.Dedup)
	h.Int(int64(req.Runs))
	return h.Sum()
}

// Artifact payload layout (little-endian): format version, image length,
// image bytes, stats JSON to the end. The payload travels inside a CCE1
// frame, which owns integrity; this codec owns only structure.
const fleetArtifactVersion = 1

// encodeArtifact serializes a finished build for publication. Timing
// fields and Workers are zeroed: they describe the builder's machine,
// not the artifact, and zeroing them keeps the published bytes a pure
// function of the job key.
func encodeArtifact(out *buildOutput) []byte {
	stats := *out.stats
	stats.QueueWaitUS = 0
	stats.CompileUS = 0
	stats.OutlineUS = 0
	stats.LinkUS = 0
	stats.VerifyUS = 0
	stats.WallUS = 0
	stats.Workers = 0
	stats.FleetSource = ""
	sj, err := json.Marshal(&stats)
	if err != nil {
		return nil
	}
	buf := make([]byte, 8+len(out.image)+len(sj))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], fleetArtifactVersion)
	le.PutUint32(buf[4:], uint32(len(out.image)))
	copy(buf[8:], out.image)
	copy(buf[8+len(out.image):], sj)
	return buf
}

// decodeArtifact parses a published artifact back into a buildOutput,
// stamping the local queue wait and provenance. ok == false on any
// structural defect — the caller builds locally, it never errors.
func decodeArtifact(payload []byte, queueWait time.Duration, source string) (*buildOutput, bool) {
	if len(payload) < 8 {
		return nil, false
	}
	le := binary.LittleEndian
	if le.Uint32(payload[0:]) != fleetArtifactVersion {
		return nil, false
	}
	ilen := int(le.Uint32(payload[4:]))
	if ilen < 0 || 8+ilen > len(payload) {
		return nil, false
	}
	// Copy the image out of the cache's shared payload: job records
	// outlive any cache entry and must never alias store memory.
	image := append([]byte(nil), payload[8:8+ilen]...)
	stats := &JobStats{}
	if err := json.Unmarshal(payload[8+ilen:], stats); err != nil {
		return nil, false
	}
	stats.QueueWaitUS = queueWait.Microseconds()
	stats.FleetSource = source
	return &buildOutput{image: image, stats: stats}, true
}

// remote returns the fleet tier the server should use, or nil.
func (s *Server) remote() *cache.Remote {
	return s.cfg.Remote
}

// fetchArtifact tries to serve the job from a published artifact.
func (s *Server) fetchArtifact(r *cache.Remote, k cache.Key, queueWait time.Duration, source string) (*buildOutput, bool) {
	sealed, ok := r.Get(k)
	if !ok {
		return nil, false
	}
	payload, valid := cache.Open(sealed)
	if !valid {
		return nil, false
	}
	return decodeArtifact(payload, queueWait, source)
}

// build is what runJob executes: the fleet wrapper around buildLocal.
// With no remote tier, or for an ineligible job, it is buildLocal.
func (s *Server) build(ctx context.Context, req JobRequest, queueWait time.Duration) (*buildOutput, error) {
	r := s.remote()
	if r == nil || !fleetEligible(req) {
		return s.buildLocal(ctx, req, queueWait)
	}
	k := fleetKey(req)

	// Fast path: someone already published this exact build.
	if out, ok := s.fetchArtifact(r, k, queueWait, "artifact"); ok {
		s.fleetHits.Add(1)
		return out, nil
	}

	// Single-flight election. An unreachable election is a local build —
	// never a failure.
	res, ok := r.Claim(k)
	if !ok {
		return s.buildLocal(ctx, req, queueWait)
	}
	if res.Ready {
		// Published between our Get and the claim; fetch again.
		if out, ok := s.fetchArtifact(r, k, queueWait, "artifact"); ok {
			s.fleetHits.Add(1)
			return out, nil
		}
		return s.buildLocal(ctx, req, queueWait)
	}
	if !res.Winner {
		// A peer is already building this. Wait for its artifact, bounded
		// by FleetWait and the job's own context; a winner that crashes or
		// stalls costs us the wait, then we build anyway.
		if sealed, ok := r.GetWait(ctx, k, s.cfg.FleetWait); ok {
			if payload, valid := cache.Open(sealed); valid {
				if out, ok := decodeArtifact(payload, queueWait, "coalesced"); ok {
					s.fleetCoalesced.Add(1)
					return out, nil
				}
			}
		}
		s.fleetFallbacks.Add(1)
		return s.buildLocal(ctx, req, queueWait)
	}

	// We won: build and publish. The Put fulfils the claim, waking every
	// long-polling loser. On error the claim ages out (server TTL) and
	// the losers fall back after FleetWait — degraded, not deadlocked.
	out, err := s.buildLocal(ctx, req, queueWait)
	if err == nil && out.stats != nil {
		if payload := encodeArtifact(out); payload != nil {
			if r.Put(k, cache.Seal(payload)) {
				s.fleetWins.Add(1)
			}
		}
	}
	return out, err
}
